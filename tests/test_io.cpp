// Tests for raw binary IO and the table printer.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "io/raw.hpp"
#include "io/table.hpp"

namespace cuszp2::io {
namespace {

class TempDir {
 public:
  TempDir() {
    path_ = std::filesystem::temp_directory_path() /
            ("cuszp2_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  std::string file(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  std::filesystem::path path_;
};

TEST(RawIo, F32RoundTrip) {
  TempDir tmp;
  const std::vector<f32> data = {1.5f, -2.25f, 0.0f, 3.14159f};
  writeRaw<f32>(tmp.file("a.f32"), data);
  EXPECT_EQ(readRaw<f32>(tmp.file("a.f32")), data);
}

TEST(RawIo, F64RoundTrip) {
  TempDir tmp;
  const std::vector<f64> data = {1e-300, 2.5, -7.125};
  writeRaw<f64>(tmp.file("a.f64"), data);
  EXPECT_EQ(readRaw<f64>(tmp.file("a.f64")), data);
}

TEST(RawIo, EmptyFile) {
  TempDir tmp;
  writeRaw<f32>(tmp.file("empty.f32"), std::vector<f32>{});
  EXPECT_TRUE(readRaw<f32>(tmp.file("empty.f32")).empty());
}

TEST(RawIo, MissingFileThrows) {
  EXPECT_THROW(readRaw<f32>("/nonexistent/path/x.f32"), Error);
  EXPECT_THROW(readBytes("/nonexistent/path/x.bin"), Error);
}

TEST(RawIo, MisalignedSizeThrows) {
  TempDir tmp;
  const std::vector<std::byte> junk(7, std::byte{1});
  writeBytes(tmp.file("junk.bin"), junk);
  EXPECT_THROW(readRaw<f32>(tmp.file("junk.bin")), Error);
  EXPECT_THROW(readRaw<f64>(tmp.file("junk.bin")), Error);
}

TEST(RawIo, BytesRoundTrip) {
  TempDir tmp;
  std::vector<std::byte> data(1000);
  for (usize i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>(i & 0xFF);
  }
  writeBytes(tmp.file("b.bin"), data);
  EXPECT_EQ(readBytes(tmp.file("b.bin")), data);
}

TEST(Table, RendersAligned) {
  Table t({"name", "value"});
  t.addRow({"short", "1"});
  t.addRow({"a-much-longer-name", "23.5"});
  const auto s = t.render();
  EXPECT_NE(s.find("| name"), std::string::npos);
  EXPECT_NE(s.find("a-much-longer-name"), std::string::npos);
  // Every (non-empty) line has the same width; the render ends with '\n'.
  usize width = 0;
  usize lineStart = 0;
  for (usize i = 0; i < s.size(); ++i) {
    if (s[i] == '\n') {
      const usize len = i - lineStart;
      if (width == 0) width = len;
      EXPECT_EQ(len, width);
      lineStart = i + 1;
    }
  }
  EXPECT_EQ(lineStart, s.size());  // terminated by a final newline
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.addRow({"1", "2"});
  EXPECT_EQ(t.csv(), "a,b\n1,2\n");
}

TEST(Table, RowWidthValidated) {
  Table t({"a", "b"});
  EXPECT_THROW(t.addRow({"only-one"}), Error);
  EXPECT_THROW(Table({}), Error);
}

TEST(Table, Formatters) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
  EXPECT_EQ(Table::gbps(123.456), "123.46 GB/s");
}

}  // namespace
}  // namespace cuszp2::io
