// Tests for the CPU-GPU hybrid baselines (cuSZ/cuSZx/MGARD-like) and the
// kernel-vs-end-to-end gap of paper Fig. 2.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "baselines/cuszp2_adapter.hpp"
#include "baselines/hybrid.hpp"
#include "datagen/fields.hpp"
#include "metrics/error_stats.hpp"

namespace cuszp2::baselines {
namespace {

class HybridKindTest
    : public ::testing::TestWithParam<HybridBaseline::Kind> {};

TEST_P(HybridKindTest, ErrorBoundHolds) {
  const auto data = datagen::generateF32("cesm_atm", 0, 1 << 14);
  HybridBaseline hybrid(GetParam());
  const auto r = hybrid.run(data, 1e-3);
  const f64 absEb = 1e-3 * metrics::valueRange<f32>(data);
  EXPECT_TRUE(r.error.withinBoundFp(absEb, Precision::F32))
      << r.compressor << " max " << r.error.maxAbsError;
  EXPECT_GT(r.ratio, 1.0);
}

TEST_P(HybridKindTest, KernelThroughputDwarfsEndToEnd) {
  // THE point of paper Fig. 2: kernel-only throughput is an overly
  // optimistic metric for hybrid designs.
  const auto data = datagen::generateF32("rtm", 2, 1 << 19);
  HybridBaseline hybrid(GetParam());
  const auto r = hybrid.run(data, 1e-3);
  EXPECT_GT(r.compressKernelGBps, r.compressGBps * 5.0)
      << r.compressor;
  EXPECT_LT(r.compressGBps, 5.0) << r.compressor;  // single-digit GB/s
  EXPECT_GT(r.compressKernelGBps, 10.0) << r.compressor;
}

TEST_P(HybridKindTest, SweepOverBounds) {
  const auto data = datagen::generateF32("scale", 0, 1 << 13);
  HybridBaseline hybrid(GetParam());
  f64 prevRatio = 1e30;
  for (f64 rel : {1e-2, 1e-3, 1e-4}) {
    const auto r = hybrid.run(data, rel);
    const f64 absEb = rel * metrics::valueRange<f32>(data);
    EXPECT_TRUE(r.error.withinBoundFp(absEb, Precision::F32)) << r.compressor << " " << rel;
    // Tighter bounds compress less (or equal).
    EXPECT_LE(r.ratio, prevRatio * 1.05);
    prevRatio = r.ratio;
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, HybridKindTest,
                         ::testing::Values(HybridBaseline::Kind::CuszLike,
                                           HybridBaseline::Kind::CuszxLike,
                                           HybridBaseline::Kind::MgardLike));

TEST(Hybrid, Names) {
  EXPECT_EQ(HybridBaseline(HybridBaseline::Kind::CuszLike).name(),
            "cuSZ (hybrid)");
  EXPECT_EQ(HybridBaseline(HybridBaseline::Kind::CuszxLike).name(),
            "cuSZx (hybrid)");
  EXPECT_EQ(HybridBaseline(HybridBaseline::Kind::MgardLike).name(),
            "MGARD-GPU (hybrid)");
}

TEST(Hybrid, PureGpuBeatsHybridsEndToEnd) {
  // Paper Observation I: ~200x of hybrids. Require at least 20x here.
  const auto data = datagen::generateF32("nyx", 0, 1 << 20);
  const auto pure = Cuszp2Baseline::cuszp2Plain()->run(data, 1e-3);
  for (auto kind : {HybridBaseline::Kind::CuszLike,
                    HybridBaseline::Kind::CuszxLike,
                    HybridBaseline::Kind::MgardLike}) {
    const auto hyb = HybridBaseline(kind).run(data, 1e-3);
    EXPECT_GT(pure.compressGBps, hyb.compressGBps * 20.0)
        << hyb.compressor;
  }
}

TEST(Hybrid, CuszHuffmanActuallyCompressesSmoothData) {
  const auto data = datagen::generateF32("cesm_atm", 2, 1 << 14);
  const auto r = HybridBaseline(HybridBaseline::Kind::CuszLike).run(
      data, 1e-2);
  EXPECT_GT(r.ratio, 3.0);
}

TEST(Hybrid, MgardMultilevelIsErrorBoundedOnRoughData) {
  // The interpolation cascade must stay bounded even on low-smoothness
  // input (closed-loop quantization).
  const auto data = datagen::generateF32("qmcpack", 0, 1 << 13);
  const auto r = HybridBaseline(HybridBaseline::Kind::MgardLike).run(
      data, 1e-3);
  const f64 absEb = 1e-3 * metrics::valueRange<f32>(data);
  EXPECT_TRUE(r.error.withinBoundFp(absEb, Precision::F32)) << r.error.maxAbsError;
}

}  // namespace
}  // namespace cuszp2::baselines
