// Tests for the synthetic dataset generators: determinism, registry
// consistency with the paper's tables, and per-dataset character (the
// properties the compression results depend on).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "datagen/fields.hpp"
#include "metrics/error_stats.hpp"

namespace cuszp2::datagen {
namespace {

TEST(Datagen, RegistryMatchesPaperTables) {
  const auto& sp = singlePrecisionDatasets();
  ASSERT_EQ(sp.size(), 9u);  // Table II
  EXPECT_EQ(datasetInfo("cesm_atm").numFields, 33u);
  EXPECT_EQ(datasetInfo("hacc").numFields, 6u);
  EXPECT_EQ(datasetInfo("rtm").numFields, 3u);
  EXPECT_EQ(datasetInfo("scale").numFields, 12u);
  EXPECT_EQ(datasetInfo("qmcpack").numFields, 2u);
  EXPECT_EQ(datasetInfo("nyx").numFields, 6u);
  EXPECT_EQ(datasetInfo("jetin").numFields, 1u);
  EXPECT_EQ(datasetInfo("miranda").numFields, 1u);
  EXPECT_EQ(datasetInfo("syntruss").numFields, 1u);

  const auto& dp = doublePrecisionDatasets();
  ASSERT_EQ(dp.size(), 2u);  // Table IV
  EXPECT_EQ(datasetInfo("s3d").numFields, 5u);
  EXPECT_EQ(datasetInfo("nwchem").numFields, 1u);
  EXPECT_EQ(datasetInfo("s3d").precision, Precision::F64);
  EXPECT_EQ(datasetInfo("jetin").suite, "Open-SciVis");
  EXPECT_EQ(datasetInfo("nyx").suite, "SDRBench");
}

TEST(Datagen, UnknownDatasetThrows) {
  EXPECT_THROW(datasetInfo("nope"), Error);
  EXPECT_THROW(generateF32("nope", 0, 100), Error);
}

TEST(Datagen, FieldIndexValidated) {
  EXPECT_THROW(generateF32("jetin", 1, 100), Error);
  EXPECT_THROW(generateF32("hacc", 6, 100), Error);
  EXPECT_NO_THROW(generateF32("hacc", 5, 100));
}

TEST(Datagen, PrecisionEnforced) {
  EXPECT_THROW(generateF64("cesm_atm", 0, 100), Error);
  EXPECT_THROW(generateF32("s3d", 0, 100), Error);
}

TEST(Datagen, Deterministic) {
  for (const auto& info : singlePrecisionDatasets()) {
    const auto a = generateF32(info.name, 0, 4096);
    const auto b = generateF32(info.name, 0, 4096);
    EXPECT_EQ(a, b) << info.name;
  }
  EXPECT_EQ(generateF64("nwchem", 0, 2048), generateF64("nwchem", 0, 2048));
}

TEST(Datagen, FieldsDiffer) {
  const auto f0 = generateF32("cesm_atm", 0, 2048);
  const auto f1 = generateF32("cesm_atm", 1, 2048);
  EXPECT_NE(f0, f1);
}

TEST(Datagen, RequestedSizeHonoured) {
  for (usize n : {1u, 31u, 1000u, 65536u}) {
    EXPECT_EQ(generateF32("scale", 0, n).size(), n);
  }
  EXPECT_THROW(generateF32("scale", 0, 0), Error);
}

TEST(Datagen, AllFieldsFiniteAndNonDegenerate) {
  for (const auto& info : singlePrecisionDatasets()) {
    for (u32 f = 0; f < std::min<u32>(info.numFields, 4); ++f) {
      const auto data = generateF32(info.name, f, 1 << 14);
      f64 range = metrics::valueRange<f32>(data);
      for (f32 v : data) ASSERT_TRUE(std::isfinite(v)) << info.name;
      EXPECT_GT(range, 0.0) << info.name << " field " << f;
    }
  }
}

// Character assertions: the structural properties the paper's results rely
// on, measured via mean absolute first-order difference relative to range
// ("roughness") and zero fraction ("sparsity").

f64 roughness(const std::vector<f32>& v) {
  const f64 range = metrics::valueRange<f32>(v);
  if (range == 0.0) return 0.0;
  f64 sum = 0.0;
  for (usize i = 1; i < v.size(); ++i) {
    sum += std::abs(static_cast<f64>(v[i]) - static_cast<f64>(v[i - 1]));
  }
  return sum / static_cast<f64>(v.size() - 1) / range;
}

f64 zeroFraction(const std::vector<f32>& v) {
  usize zeros = 0;
  for (f32 x : v) {
    if (x == 0.0f) ++zeros;
  }
  return static_cast<f64>(zeros) / static_cast<f64>(v.size());
}

TEST(Datagen, JetInIsHighlySparse) {
  const auto data = generateF32("jetin", 0, 1 << 17);
  EXPECT_GT(zeroFraction(data), 0.85);
}

TEST(Datagen, RtmSparsityDecreasesWithSnapshot) {
  const auto p1000 = generateF32("rtm", 0, 1 << 17);
  const auto p3000 = generateF32("rtm", 2, 1 << 17);
  EXPECT_GT(zeroFraction(p1000), zeroFraction(p3000));
  EXPECT_GT(zeroFraction(p1000), 0.5);
}

TEST(Datagen, HaccPositionsSmootherThanVelocities) {
  const auto xx = generateF32("hacc", 0, 1 << 15);
  const auto vx = generateF32("hacc", 3, 1 << 15);
  EXPECT_LT(roughness(xx), roughness(vx));
}

TEST(Datagen, QmcpackRougherThanCesm) {
  const auto qmc = generateF32("qmcpack", 0, 1 << 15);
  const auto cesm = generateF32("cesm_atm", 0, 1 << 15);
  EXPECT_GT(roughness(qmc), roughness(cesm));
}

TEST(Datagen, MirandaHasStrongMeanOffset) {
  // Global smoothness with a large DC component — the regime where
  // Outlier-FLE doubles Plain-FLE (paper Table III).
  const auto data = generateF32("miranda", 0, 1 << 15);
  f64 mean = 0.0;
  for (f32 v : data) mean += v;
  mean /= static_cast<f64>(data.size());
  EXPECT_GT(std::abs(mean), metrics::valueRange<f32>(data) * 0.3);
}

TEST(Datagen, NwchemIsHeavyTailed) {
  const auto data = generateF64("nwchem", 0, 1 << 15);
  usize tiny = 0;
  for (f64 v : data) {
    if (std::abs(v) < 1e-5) ++tiny;
  }
  EXPECT_GT(static_cast<f64>(tiny) / static_cast<f64>(data.size()), 0.8);
}

TEST(Datagen, FieldNameHelpers) {
  EXPECT_EQ(haccFieldNames().size(), 6u);
  EXPECT_EQ(haccFieldNames()[3], "vx");
  EXPECT_EQ(rtmFieldNames().size(), 3u);
  EXPECT_EQ(rtmFieldNames()[0], "P1000");
}

}  // namespace
}  // namespace cuszp2::datagen
