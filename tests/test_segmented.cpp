// Tests for the bounded-memory segmented streaming API.
#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/segmented.hpp"
#include "datagen/fields.hpp"
#include "metrics/error_stats.hpp"

namespace cuszp2::core {
namespace {

Config absConfig(f64 eb = 1e-2) {
  Config cfg;
  cfg.absErrorBound = eb;
  return cfg;
}

TEST(Segmented, SingleSegmentRoundTrip) {
  SegmentedCompressor<f32> sc(absConfig(), 4096);
  const auto data = datagen::generateF32("miranda", 0, 1000);
  sc.append(data);
  const auto container = sc.finish();

  SegmentedReader<f32> reader(container);
  EXPECT_EQ(reader.segmentCount(), 1u);
  EXPECT_EQ(reader.totalElements(), 1000u);
  const auto rec = reader.all();
  EXPECT_TRUE(metrics::computeErrorStats<f32>(data, rec)
                  .withinBoundFp(1e-2, Precision::F32));
}

TEST(Segmented, ManySegmentsInManyAppends) {
  const usize segElems = 512;
  SegmentedCompressor<f32> sc(absConfig(), segElems);
  const auto data = datagen::generateF32("cesm_atm", 0, 5000);

  // Append in awkward chunk sizes crossing segment boundaries.
  Rng rng(3);
  usize pos = 0;
  while (pos < data.size()) {
    const usize take = std::min<usize>(1 + rng.uniformInt(700),
                                       data.size() - pos);
    sc.append(std::span<const f32>(data.data() + pos, take));
    pos += take;
  }
  EXPECT_EQ(sc.totalElements(), data.size());
  const auto container = sc.finish();

  SegmentedReader<f32> reader(container);
  EXPECT_EQ(reader.segmentCount(), (5000 + segElems - 1) / segElems);
  EXPECT_EQ(reader.totalElements(), 5000u);
  for (usize s = 0; s < reader.segmentCount(); ++s) {
    const usize expected =
        std::min<usize>(segElems, 5000 - s * segElems);
    EXPECT_EQ(reader.segmentElements(s), expected) << s;
  }
  const auto rec = reader.all();
  ASSERT_EQ(rec.size(), data.size());
  EXPECT_TRUE(metrics::computeErrorStats<f32>(data, rec)
                  .withinBoundFp(1e-2, Precision::F32));
}

TEST(Segmented, IndividualSegmentsDecodeIndependently) {
  SegmentedCompressor<f32> sc(absConfig(), 256);
  const auto data = datagen::generateF32("rtm", 1, 1024);
  sc.append(data);
  const auto container = sc.finish();
  SegmentedReader<f32> reader(container);
  ASSERT_EQ(reader.segmentCount(), 4u);
  // Decode out of order.
  for (usize s : {usize{3}, usize{0}, usize{2}, usize{1}}) {
    const auto seg = reader.segment(s);
    ASSERT_EQ(seg.size(), 256u);
    for (usize i = 0; i < seg.size(); ++i) {
      ASSERT_NEAR(seg[i], data[s * 256 + i], 1e-2 * (1 + 1e-6));
    }
  }
}

TEST(Segmented, EmptyFinishYieldsEmptyContainer) {
  SegmentedCompressor<f32> sc(absConfig(), 128);
  const auto container = sc.finish();
  SegmentedReader<f32> reader(container);
  EXPECT_EQ(reader.segmentCount(), 0u);
  EXPECT_EQ(reader.totalElements(), 0u);
  EXPECT_TRUE(reader.all().empty());
}

TEST(Segmented, CompressorIsReusableAfterFinish) {
  SegmentedCompressor<f32> sc(absConfig(), 64);
  const auto a = datagen::generateF32("nyx", 0, 200);
  sc.append(a);
  const auto c1 = sc.finish();
  const auto b = datagen::generateF32("nyx", 1, 300);
  sc.append(b);
  const auto c2 = sc.finish();

  EXPECT_EQ(SegmentedReader<f32>(c1).totalElements(), 200u);
  EXPECT_EQ(SegmentedReader<f32>(c2).totalElements(), 300u);
}

TEST(Segmented, DoublePrecision) {
  SegmentedCompressor<f64> sc(absConfig(1e-6), 512);
  const auto data = datagen::generateF64("nwchem", 0, 2000);
  sc.append(data);
  const auto container = sc.finish();
  SegmentedReader<f64> reader(container);
  const auto rec = reader.all();
  EXPECT_TRUE(metrics::computeErrorStats<f64>(data, rec)
                  .withinBoundFp(1e-6, Precision::F64));
}

TEST(Segmented, Validation) {
  EXPECT_THROW((SegmentedCompressor<f32>(absConfig(), 0)), Error);

  SegmentedCompressor<f32> sc(absConfig(), 128);
  sc.append(std::vector<f32>(100, 1.0f));
  auto container = sc.finish();

  // Precision mismatch.
  EXPECT_THROW((SegmentedReader<f64>{container}), Error);

  // Corrupt magic.
  auto bad = container;
  bad[0] = std::byte{0};
  EXPECT_THROW((SegmentedReader<f32>{bad}), Error);

  // Truncated container.
  auto truncated = container;
  truncated.resize(truncated.size() - 3);
  EXPECT_THROW((SegmentedReader<f32>{truncated}), Error);

  SegmentedReader<f32> reader(container);
  EXPECT_THROW(reader.segment(99), Error);
}

TEST(Segmented, MemoryStaysBoundedAtSegmentSize) {
  // Indirect check: flushing happens as soon as a segment fills, so after
  // appending exactly N segments' worth, segmentsFlushed() == N.
  SegmentedCompressor<f32> sc(absConfig(), 100);
  sc.append(std::vector<f32>(250, 2.0f));
  EXPECT_EQ(sc.segmentsFlushed(), 2u);  // 50 still buffered
  sc.append(std::vector<f32>(50, 2.0f));
  EXPECT_EQ(sc.segmentsFlushed(), 3u);
  EXPECT_GT(sc.compressedBytes(), 0u);
}

}  // namespace
}  // namespace cuszp2::core
