// Format-v3 pipeline tests: stage primitives (symbol mapping, Huffman
// table, RLE, Lorenzo-2D), the per-block selector's guarantees, the
// mixed-pipeline salvage regression (a corrupted Huffman block between
// intact FLE blocks quarantines exactly one block), dictionary-damage
// quarantine, v3 random access / block replacement, batch parity, and the
// service-layer rule that jobs never batch across pipeline policies.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/pipeline.hpp"
#include "core/stream.hpp"
#include "service/job.hpp"

namespace cuszp2 {
namespace {

using core::BlockCandidates;
using core::CompressorStream;
using core::Config;
using core::HuffDecoder;
using core::HuffTable;
using core::PipelineId;
using core::PipelineMode;
using core::StreamHeader;
using core::V3BlockDesc;

// ---- deterministic data shaped to force a mixed Auto selection ----------
//
// Even blocks are all-zero (FLE encodes them in 0 payload bytes — nothing
// can beat that); odd blocks carry skewed small-alphabet noise plus a few
// in-alphabet spikes, so plain FLE must widen every element to the spike
// magnitude while the shared-table Huffman encoding pays for the spikes
// only where they occur (comfortably beating FLE even with the u16
// entropy size prefix charged).
// With abs bound 0.01 the quantization step is 0.02 and every value below
// is an exact multiple, so the quantizer reproduces the intended residuals.

constexpr u32 kBlock = 32;
constexpr f64 kAbsBound = 0.01;

u64 lcgNext(u64& state) {
  state = state * 6364136223846793005ull + 1442695040888963407ull;
  return state >> 33;
}

/// Residual drawn from a skewed small alphabet: mostly 0/±1, rare ±3.
i32 skewedResidual(u64& state) {
  const u64 r = lcgNext(state) % 16;
  if (r < 7) return 0;
  if (r < 10) return 1;
  if (r < 13) return -1;
  if (r < 14) return 2;
  if (r < 15) return -2;
  return 3;
}

std::vector<f32> mixedSelectionField(usize numBlocks, usize tailElems = 0) {
  std::vector<f32> field;
  field.reserve(numBlocks * kBlock + tailElems);
  u64 state = 0x5eed5eedULL;
  // Values are produced exactly as the decoder dequantizes (f64 multiply,
  // then narrow), so a clean round trip is bit-identical to the input.
  const f64 step = 2.0 * kAbsBound;
  for (usize blk = 0; blk < numBlocks; ++blk) {
    i32 q = 0;
    for (usize i = 0; i < kBlock; ++i) {
      if (blk % 2 == 1) {
        q += skewedResidual(state);
        if (i == 10) q += 37;  // rare large residuals: FLE widens the
        if (i == 20) q -= 53;  // whole block, Huffman pays per occurrence
      }
      field.push_back(static_cast<f32>(static_cast<f64>(q) * step));
    }
  }
  for (usize i = 0; i < tailElems; ++i) {
    field.push_back(static_cast<f32>(static_cast<f64>(i % 3) * step));
  }
  return field;
}

Config v3Config(PipelineMode mode) {
  Config cfg;
  cfg.absErrorBound = kAbsBound;
  cfg.blockSize = kBlock;
  cfg.pipeline = mode;
  return cfg;
}

/// Per-block pipeline ids of a v3 stream, from the descriptor array.
std::vector<PipelineId> streamPipelines(ConstByteSpan stream) {
  const StreamHeader header = StreamHeader::parse(stream);
  std::vector<PipelineId> ids;
  for (u64 blk = 0; blk < header.numBlocks(); ++blk) {
    const V3BlockDesc desc = V3BlockDesc::unpack(
        stream.data() + StreamHeader::offsetsBegin() + blk * core::kV3DescBytes);
    ids.push_back(desc.pipeline);
  }
  return ids;
}

/// Stream-relative byte offset of one block's payload in a v3 stream.
usize v3PayloadOffset(ConstByteSpan stream, u64 block) {
  const StreamHeader header = StreamHeader::parse(stream);
  const core::PayloadSizeTable psize(header.blockSize);
  const usize payloadEnd = stream.size() - header.footerBytes();
  usize cursor = header.payloadBegin();
  for (u64 blk = 0; blk < block; ++blk) {
    const V3BlockDesc desc = V3BlockDesc::unpack(
        stream.data() + StreamHeader::offsetsBegin() + blk * core::kV3DescBytes);
    cursor += desc.payloadBytes(psize, stream.data() + cursor,
                                payloadEnd - cursor);
  }
  return cursor;
}

// ---- stage primitives ---------------------------------------------------

TEST(PipelineStages, ZigzagAndSymbolMapping) {
  for (const i32 v : {0, 1, -1, 2, -2, 511, -511, 1 << 20, -(1 << 20)}) {
    EXPECT_EQ(core::zigzagDecode(core::zigzagEncode(v)), v) << v;
  }
  EXPECT_EQ(core::symbolOf(0), 0u);
  EXPECT_EQ(core::symbolOf(-1), 1u);
  EXPECT_EQ(core::symbolOf(1), 2u);
  // 511 zigzags to 1022 (last in-alphabet symbol); anything larger escapes.
  EXPECT_EQ(core::symbolOf(511), 1022u);
  EXPECT_EQ(core::symbolOf(-512), core::kEscapeSymbol);
  EXPECT_EQ(core::symbolOf(1 << 29), core::kEscapeSymbol);
}

TEST(PipelineStages, RleRoundTripWithRunsAndEscapes) {
  std::vector<i32> residuals;
  residuals.insert(residuals.end(), 300, 5);  // run longer than the 256 cap
  residuals.insert(residuals.end(), 10, -2);
  residuals.push_back(1 << 25);  // escape
  residuals.insert(residuals.end(), 40, 0);
  residuals.push_back(-(1 << 28));  // escape

  const usize bytes = core::rleBlockBytes([&] {
    std::vector<u16> symbols;
    for (const i32 r : residuals) symbols.push_back(core::symbolOf(r));
    return symbols;
  }());
  std::vector<std::byte> payload(bytes);
  ASSERT_EQ(core::encodeRleBlock(residuals, payload.data()), bytes);

  std::vector<i32> decoded(residuals.size());
  core::decodeRleBlock(payload, decoded);
  EXPECT_EQ(decoded, residuals);
}

TEST(PipelineStages, HuffmanTableAndBlockRoundTrip) {
  std::vector<u64> freq(core::kSymbolAlphabet, 0);
  freq[0] = 1000;
  freq[1] = 400;
  freq[2] = 380;
  freq[3] = 70;
  freq[4] = 60;
  freq[5] = 90;
  freq[6] = 85;
  freq[core::kEscapeSymbol] = 3;
  const HuffTable table = HuffTable::fromFrequencies(freq);
  ASSERT_FALSE(table.empty());

  // Wire round trip.
  std::vector<std::byte> wire(table.serializedBytes());
  table.serialize(wire.data());
  const HuffTable parsed = HuffTable::parse(wire);
  EXPECT_EQ(parsed.lengths, table.lengths);
  EXPECT_EQ(parsed.codes, table.codes);

  // Block round trip, escapes included.
  std::vector<i32> residuals = {0,  -1, 1,  0, 0, 2, -3, 0,
                                0,  1,  -1, 0, 0, 0, 1,  0,
                                -1, 0,  0,  1, 0, 0, -1, 1 << 26,
                                0,  0,  1,  0, 0, 0, -1, 0};
  std::vector<u16> symbols;
  for (const i32 r : residuals) symbols.push_back(core::symbolOf(r));
  const usize bytes = core::huffmanBlockBytes(symbols, table);
  ASSERT_NE(bytes, core::kInvalidSize);
  std::vector<std::byte> payload(bytes);
  ASSERT_EQ(core::encodeHuffmanBlock(residuals, table, payload.data()), bytes);

  const HuffDecoder decoder(table);
  std::vector<i32> decoded(residuals.size());
  core::decodeHuffmanBlock(payload, decoder, decoded);
  EXPECT_EQ(decoded, residuals);
}

TEST(PipelineStages, Lorenzo2dRoundTrip) {
  // A 4x8 tile (block of 32) with row/column structure Lorenzo removes.
  std::vector<i32> quants(32);
  for (usize r = 0; r < 4; ++r) {
    for (usize c = 0; c < 8; ++c) {
      quants[r * 8 + c] = static_cast<i32>(10 * r + 3 * c) - 15;
    }
  }
  std::vector<i32> residuals(32);
  ASSERT_TRUE(core::lorenzo2dResiduals(quants, residuals));
  std::vector<i32> rebuilt(32);
  core::lorenzo2dReconstruct(residuals, rebuilt);
  EXPECT_EQ(rebuilt, quants);
  // Interior of a bilinear surface predicts exactly.
  EXPECT_EQ(residuals[9], 0);
  EXPECT_EQ(residuals[31], 0);
}

TEST(PipelineStages, PipelineTableMatchesWireIds) {
  const auto table = core::pipelineTable();
  ASSERT_EQ(table.size(), core::kPipelineCount);
  for (u32 i = 0; i < core::kPipelineCount; ++i) {
    EXPECT_EQ(static_cast<u32>(table[i].id), i);
  }
  EXPECT_EQ(table[0].predict, core::PredictStage::Delta1);
  EXPECT_EQ(table[0].encode, core::EncodeStage::Fle);
  EXPECT_EQ(table[3].predict, core::PredictStage::Lorenzo2D);
  EXPECT_EQ(table[3].encode, core::EncodeStage::Fle);
}

// ---- selector -----------------------------------------------------------

TEST(PipelineSelector, AutoPicksPerBlockMinimumAndChargesTable) {
  std::vector<BlockCandidates> blocks(3);
  // Block 0: FLE wins outright.
  blocks[0].bytes[0] = 4;
  blocks[0].bytes[1] = 10;
  blocks[0].bytes[2] = 12;
  blocks[0].bytes[3] = 9;
  // Block 1: Huffman would save 20 bytes.
  blocks[1].bytes[0] = 30;
  blocks[1].bytes[1] = 10;
  blocks[1].bytes[2] = 40;
  blocks[1].bytes[3] = 28;
  // Block 2: RLE wins.
  blocks[2].bytes[0] = 20;
  blocks[2].bytes[1] = 18;
  blocks[2].bytes[2] = 6;
  blocks[2].bytes[3] = 22;

  // Table cheaper than Huffman's savings: admitted.
  auto sel = core::selectPipelines(blocks, PipelineMode::Auto, 15);
  EXPECT_TRUE(sel.usesHuffman);
  EXPECT_EQ(sel.choice[0], PipelineId::Fle);
  EXPECT_EQ(sel.choice[1], PipelineId::Huffman);
  EXPECT_EQ(sel.choice[2], PipelineId::Rle);
  EXPECT_EQ(sel.totalPayload, 4u + 10u + 6u);

  // Table dearer than the savings: Huffman rejected stream-wide.
  sel = core::selectPipelines(blocks, PipelineMode::Auto, 100);
  EXPECT_FALSE(sel.usesHuffman);
  EXPECT_EQ(sel.choice[1], PipelineId::LorenzoFle);
  EXPECT_EQ(sel.totalPayload, 4u + 28u + 6u);
}

TEST(PipelineSelector, PinnedFallsBackToFleWhenInvalid) {
  std::vector<BlockCandidates> blocks(2);
  blocks[0].bytes[0] = 7;
  blocks[0].bytes[3] = 5;
  blocks[1].bytes[0] = 9;
  blocks[1].bytes[3] = core::kInvalidSize;  // Lorenzo residual overflow

  const auto sel =
      core::selectPipelines(blocks, PipelineMode::LorenzoFle, 0);
  EXPECT_EQ(sel.choice[0], PipelineId::LorenzoFle);
  EXPECT_EQ(sel.choice[1], PipelineId::Fle);
  EXPECT_EQ(sel.totalPayload, 5u + 9u);
  EXPECT_FALSE(sel.usesHuffman);
}

// ---- mixed-stream behaviour and the salvage regression ------------------

TEST(PipelineV3, AutoSelectsMixedPipelinesOnShapedData) {
  const std::vector<f32> field = mixedSelectionField(64);
  CompressorStream codec(v3Config(PipelineMode::Auto));
  const auto c = codec.compress<f32>(std::span<const f32>(field));

  const StreamHeader header = StreamHeader::parse(c.stream);
  EXPECT_EQ(header.version, core::kFormatVersionV3);
  EXPECT_GT(header.dictBytes, 8u);  // shared Huffman table admitted

  usize fle = 0;
  usize huff = 0;
  for (const PipelineId id : streamPipelines(c.stream)) {
    fle += id == PipelineId::Fle;
    huff += id == PipelineId::Huffman;
  }
  EXPECT_GE(fle, 16u);
  EXPECT_GE(huff, 16u);

  // The mixed stream must also beat pinned-FLE on this data.
  CompressorStream pinned(v3Config(PipelineMode::Fle));
  const auto cFle = pinned.compress<f32>(std::span<const f32>(field));
  EXPECT_LT(c.stream.size(), cFle.stream.size());

  const auto d = codec.decompress<f32>(c.stream);
  ASSERT_EQ(d.data.size(), field.size());
  EXPECT_EQ(std::memcmp(d.data.data(), field.data(),
                        field.size() * sizeof(f32)),
            0);
}

/// Regression (the satellite fix): one corrupted Huffman block between two
/// intact FLE blocks quarantines exactly that block; both neighbours and
/// every other block decode bit-exactly, and the dictionary stays good.
TEST(PipelineV3, SalvageQuarantinesOneHuffmanBlockBetweenFleBlocks) {
  const std::vector<f32> field = mixedSelectionField(64);
  CompressorStream codec(v3Config(PipelineMode::Auto));
  const auto c = codec.compress<f32>(std::span<const f32>(field));
  const auto clean = codec.decompress<f32>(c.stream);

  // Find a Huffman block with FLE blocks on both sides (the shaped data's
  // even/odd structure guarantees one exists).
  const std::vector<PipelineId> ids = streamPipelines(c.stream);
  usize victim = ids.size();
  for (usize blk = 1; blk + 1 < ids.size(); ++blk) {
    if (ids[blk] == PipelineId::Huffman && ids[blk - 1] == PipelineId::Fle &&
        ids[blk + 1] == PipelineId::Fle) {
      victim = blk;
      break;
    }
  }
  ASSERT_LT(victim, ids.size()) << "shaped data produced no FLE/Huffman/FLE "
                                   "sandwich; selection changed?";

  std::vector<std::byte> corrupt = c.stream;
  const usize payloadAt = v3PayloadOffset(corrupt, victim);
  corrupt[payloadAt + 2] ^= std::byte{0x5a};

  const auto s = codec.decompressResilient<f32>(
      ConstByteSpan(corrupt), std::numeric_limits<f32>::quiet_NaN());
  EXPECT_TRUE(s.report.headerOk);
  EXPECT_TRUE(s.report.blockChecksums);
  EXPECT_TRUE(s.report.dictionaryOk);
  EXPECT_FALSE(s.report.framingDamaged);
  EXPECT_EQ(s.report.badBlocks, 1u);
  EXPECT_EQ(s.report.goodBlocks, ids.size() - 1);
  EXPECT_EQ(s.report.firstCorruptOffset, payloadAt);
  ASSERT_EQ(s.report.verdicts.size(), ids.size());
  for (usize blk = 0; blk < ids.size(); ++blk) {
    if (blk == victim) {
      EXPECT_EQ(s.report.verdicts[blk], core::BlockVerdict::ChecksumMismatch);
    } else {
      EXPECT_EQ(s.report.verdicts[blk], core::BlockVerdict::Good) << blk;
    }
  }

  // Quarantined elements hold the fill; every other element is bit-exact.
  ASSERT_EQ(s.data.size(), field.size());
  for (usize i = 0; i < s.data.size(); ++i) {
    if (i / kBlock == victim) {
      EXPECT_TRUE(std::isnan(s.data[i])) << i;
    } else {
      EXPECT_EQ(std::memcmp(&s.data[i], &clean.data[i], sizeof(f32)), 0) << i;
    }
  }
}

/// Dictionary damage quarantines exactly the Huffman blocks: the shared
/// table fails its CRC, so table-free pipelines still decode bit-exactly.
TEST(PipelineV3, SalvageSurvivesDictionaryCorruption) {
  const std::vector<f32> field = mixedSelectionField(64);
  CompressorStream codec(v3Config(PipelineMode::Auto));
  const auto c = codec.compress<f32>(std::span<const f32>(field));
  const auto clean = codec.decompress<f32>(c.stream);
  const StreamHeader header = StreamHeader::parse(c.stream);
  ASSERT_GT(header.dictBytes, 8u);

  std::vector<std::byte> corrupt = c.stream;
  corrupt[header.dictBegin() + 8 + 3] ^= std::byte{0xff};

  const auto s = codec.decompressResilient<f32>(ConstByteSpan(corrupt), 0.0f);
  const std::vector<PipelineId> ids = streamPipelines(c.stream);
  EXPECT_TRUE(s.report.headerOk);
  EXPECT_FALSE(s.report.dictionaryOk);
  EXPECT_FALSE(s.report.clean());
  ASSERT_EQ(s.report.verdicts.size(), ids.size());
  usize huffBlocks = 0;
  for (usize blk = 0; blk < ids.size(); ++blk) {
    if (ids[blk] == PipelineId::Huffman) {
      ++huffBlocks;
      EXPECT_EQ(s.report.verdicts[blk], core::BlockVerdict::DecodeError)
          << blk;
      for (usize i = blk * kBlock; i < (blk + 1) * kBlock; ++i) {
        EXPECT_EQ(s.data[i], 0.0f) << i;
      }
    } else {
      EXPECT_EQ(s.report.verdicts[blk], core::BlockVerdict::Good) << blk;
      for (usize i = blk * kBlock; i < (blk + 1) * kBlock; ++i) {
        EXPECT_EQ(std::memcmp(&s.data[i], &clean.data[i], sizeof(f32)), 0)
            << i;
      }
    }
  }
  EXPECT_EQ(s.report.badBlocks, huffBlocks);
  EXPECT_GT(huffBlocks, 0u);
}

TEST(PipelineV3, IntactStreamSalvagesClean) {
  const std::vector<f32> field = mixedSelectionField(16, 13);
  CompressorStream codec(v3Config(PipelineMode::Auto));
  const auto c = codec.compress<f32>(std::span<const f32>(field));
  const auto s = codec.decompressResilient<f32>(ConstByteSpan(c.stream));
  EXPECT_TRUE(s.report.clean());
  EXPECT_EQ(s.report.badBlocks, 0u);
  EXPECT_EQ(s.report.goodBlocks, s.report.totalBlocks);
}

// ---- v3 random access, replacement, batch parity ------------------------

TEST(PipelineV3, RandomAccessMatchesFullDecode) {
  const std::vector<f32> field = mixedSelectionField(32, 7);
  CompressorStream codec(v3Config(PipelineMode::Auto));
  const auto c = codec.compress<f32>(std::span<const f32>(field));
  const auto full = codec.decompress<f32>(c.stream);

  const StreamHeader header = StreamHeader::parse(c.stream);
  const std::vector<std::pair<u64, u64>> ranges = {
      {0, 1}, {3, 5}, {30, 3}, {0, header.numBlocks()}};
  for (const auto& [first, count] : ranges) {
    const auto r = codec.decompressBlocks<f32>(c.stream, first, count);
    EXPECT_EQ(r.firstElement, first * kBlock);
    const usize begin = static_cast<usize>(r.firstElement);
    ASSERT_LE(begin + r.values.size(), full.data.size());
    EXPECT_EQ(std::memcmp(r.values.data(), full.data.data() + begin,
                          r.values.size() * sizeof(f32)),
              0)
        << "blocks [" << first << ", " << first + count << ")";
  }
}

TEST(PipelineV3, ReplaceBlocksReencodesAndPreservesTheRest) {
  const std::vector<f32> field = mixedSelectionField(32);
  CompressorStream codec(v3Config(PipelineMode::Auto));
  const auto c = codec.compress<f32>(std::span<const f32>(field));

  // Overwrite two blocks (one of them Huffman-coded) with fresh values.
  const u64 firstBlock = 4;
  std::vector<f32> replacement(2 * kBlock);
  for (usize i = 0; i < replacement.size(); ++i) {
    replacement[i] = static_cast<f32>(static_cast<i32>(i) - 20) * 0.02f;
  }
  const auto patched = codec.replaceBlocks<f32>(
      ConstByteSpan(c.stream), firstBlock, std::span<const f32>(replacement));

  const StreamHeader header = StreamHeader::parse(patched.stream);
  EXPECT_EQ(header.version, core::kFormatVersionV3);

  const auto d = codec.decompress<f32>(patched.stream);
  ASSERT_EQ(d.data.size(), field.size());
  for (usize i = 0; i < d.data.size(); ++i) {
    const usize blk = i / kBlock;
    if (blk >= firstBlock && blk < firstBlock + 2) {
      const f32 want = replacement[i - firstBlock * kBlock];
      EXPECT_NEAR(d.data[i], want, kAbsBound * (1.0 + 1e-6)) << i;
    } else {
      EXPECT_EQ(std::memcmp(&d.data[i], &field[i], sizeof(f32)), 0) << i;
    }
  }
}

TEST(PipelineV3, BatchCompressAndDecodeMatchSerial) {
  const std::vector<f32> a = mixedSelectionField(16);
  const std::vector<f32> b = mixedSelectionField(24, 11);
  const std::vector<f32> c3 = mixedSelectionField(8, 1);
  const std::vector<std::span<const f32>> fields = {
      std::span<const f32>(a), std::span<const f32>(b),
      std::span<const f32>(c3)};

  CompressorStream codec(v3Config(PipelineMode::Auto));
  const auto batch = codec.compressBatch<f32>(fields);
  ASSERT_EQ(batch.size(), fields.size());
  std::vector<ConstByteSpan> streams;
  for (usize i = 0; i < fields.size(); ++i) {
    const auto serial = codec.compress<f32>(fields[i]);
    EXPECT_EQ(batch[i].stream, serial.stream) << i;
    streams.push_back(ConstByteSpan(batch[i].stream));
  }

  const auto decoded = codec.decompressBatchRaw(streams);
  ASSERT_EQ(decoded.size(), fields.size());
  for (usize i = 0; i < fields.size(); ++i) {
    const auto serial = codec.decompress<f32>(streams[i]);
    ASSERT_EQ(decoded[i].elements, serial.data.size()) << i;
    EXPECT_EQ(std::memcmp(decoded[i].data.data(), serial.data.data(),
                          serial.data.size() * sizeof(f32)),
              0)
        << i;
  }
}

// ---- service batching isolation -----------------------------------------

TEST(PipelineService, JobsNeverBatchAcrossPipelinePolicies) {
  service::detail::Job legacy;
  legacy.kind = service::JobKind::Compress;
  legacy.config = Config{};

  service::detail::Job autoSel;
  autoSel.kind = service::JobKind::Compress;
  autoSel.config = Config{};
  autoSel.config.pipeline = PipelineMode::Auto;

  service::detail::Job huffman;
  huffman.kind = service::JobKind::Compress;
  huffman.config = Config{};
  huffman.config.pipeline = PipelineMode::Huffman;

  service::detail::Job autoToo;
  autoToo.kind = service::JobKind::Compress;
  autoToo.config = Config{};
  autoToo.config.pipeline = PipelineMode::Auto;

  // Identical configs fuse; configs differing only in pipeline never do.
  EXPECT_TRUE(autoSel.batchableWith(autoToo));
  EXPECT_FALSE(legacy.batchableWith(autoSel));
  EXPECT_FALSE(autoSel.batchableWith(huffman));
  EXPECT_FALSE(legacy.batchableWith(huffman));
}

}  // namespace
}  // namespace cuszp2
