// Unit tests for the analytic timing model and device presets.
#include <gtest/gtest.h>

#include "gpusim/device_spec.hpp"
#include "gpusim/timing.hpp"

namespace cuszp2::gpusim {
namespace {

TEST(DeviceSpec, PresetsAreOrderedByBandwidth) {
  EXPECT_GT(a100_40gb().memBandwidthGBps, rtx3090().memBandwidthGBps);
  EXPECT_GT(rtx3090().memBandwidthGBps, rtx3080().memBandwidthGBps);
  EXPECT_EQ(a100_40gb().memBandwidthGBps, 1555.0);  // paper's figure
}

TEST(Timing, EmptyKernelCostsOnlyLaunch) {
  const TimingModel model(a100_40gb());
  MemCounters mem;
  SyncStats sync;
  const auto t = model.kernel(mem, sync);
  EXPECT_DOUBLE_EQ(t.totalSeconds, model.launchSeconds());
}

TEST(Timing, BandwidthTermScalesWithTransactions) {
  const TimingModel model(a100_40gb());
  MemCounters mem;
  mem.noteVectorRead(1'000'000'000, 32);  // 1 GB coalesced
  SyncStats sync;
  const auto t = model.kernel(mem, sync);
  // 1 GB at 1555 GB/s ~ 0.643 ms.
  EXPECT_NEAR(t.bandwidthSeconds, 1.0 / 1555.0, 1e-5);
}

TEST(Timing, StridedAccessCostsMoreThanCoalesced) {
  const TimingModel model(a100_40gb());
  MemCounters coalesced;
  coalesced.noteVectorRead(100'000'000, 32);
  MemCounters strided;
  strided.noteStridedRead(100'000'000, 4);
  SyncStats sync;
  EXPECT_GT(model.kernel(strided, sync).totalSeconds,
            2 * model.kernel(coalesced, sync).totalSeconds);
}

TEST(Timing, VectorizationReducesIssueTime) {
  const TimingModel model(a100_40gb());
  MemCounters vec;
  vec.noteVectorRead(400'000'000, 32);
  MemCounters scalar;
  scalar.noteScalarRead(400'000'000, 4, 32);
  SyncStats sync;
  const auto tv = model.kernel(vec, sync);
  const auto ts = model.kernel(scalar, sync);
  // Same bytes and transactions, but 4x the instructions.
  EXPECT_DOUBLE_EQ(tv.bandwidthSeconds, ts.bandwidthSeconds);
  EXPECT_NEAR(ts.issueSeconds / tv.issueSeconds, 4.0, 0.01);
}

TEST(Timing, ChainedScanSyncScalesLinearly) {
  const TimingModel model(a100_40gb());
  SyncStats sync;
  sync.method = SyncMethod::ChainedScan;
  sync.tiles = 1000;
  const f64 t1000 = model.syncSeconds(sync);
  sync.tiles = 2000;
  EXPECT_NEAR(model.syncSeconds(sync) / t1000, 2.0, 1e-9);
}

TEST(Timing, LookbackBeatsChainedScan) {
  const TimingModel model(a100_40gb());
  SyncStats chained;
  chained.method = SyncMethod::ChainedScan;
  chained.tiles = 5000;
  SyncStats lookback;
  lookback.method = SyncMethod::DecoupledLookback;
  lookback.tiles = 5000;
  lookback.maxLookbackDepth = 12;
  const f64 ratio =
      model.syncSeconds(chained) / model.syncSeconds(lookback);
  // The paper measures ~2.41x; the model should land in the same regime.
  EXPECT_GT(ratio, 1.5);
  EXPECT_LT(ratio, 30.0);
}

TEST(Timing, AtomicsSerializeSeparately) {
  const TimingModel model(a100_40gb());
  MemCounters mem;
  mem.noteAtomics(1'200'000'000);  // one second worth at the preset rate
  SyncStats sync;
  const auto t = model.kernel(mem, sync);
  EXPECT_NEAR(t.atomicSeconds, 1.0, 1e-9);
}

TEST(Timing, MemsetChargedAtMemsetRate) {
  const TimingModel model(a100_40gb());
  MemCounters mem;
  mem.noteMemset(2'000'000'000);
  SyncStats sync;
  const auto t = model.kernel(mem, sync);
  EXPECT_NEAR(t.memsetSeconds, 0.001, 1e-6);  // 2 GB at 2000 GB/s = 1 ms
}

TEST(Timing, PcieMatchesSpec) {
  const TimingModel model(a100_40gb());
  EXPECT_NEAR(model.pcieSeconds(12'000'000'000ull), 1.0, 1e-9);
}

TEST(Timing, MemThroughputIncludesAllBytes) {
  const TimingModel model(a100_40gb());
  MemCounters mem;
  mem.noteVectorRead(500'000'000, 32);
  mem.noteVectorWrite(500'000'000, 32);
  SyncStats sync;
  const auto t = model.kernel(mem, sync);
  EXPECT_GT(t.memThroughputGBps, 100.0);
  EXPECT_LT(t.memThroughputGBps, 1555.0);
}

TEST(Timing, GbpsHelper) {
  EXPECT_DOUBLE_EQ(gbps(1'000'000'000, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(gbps(1'000'000'000, 0.0), 0.0);
}

}  // namespace
}  // namespace cuszp2::gpusim
