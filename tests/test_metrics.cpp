// Tests for PSNR / SSIM / iso-crossing / ratio metrics.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "metrics/error_stats.hpp"
#include "metrics/ratio.hpp"
#include "metrics/ssim.hpp"

namespace cuszp2::metrics {
namespace {

TEST(ErrorStats, IdenticalDataIsPerfect) {
  const std::vector<f32> a = {1.0f, 2.0f, 3.0f, 4.0f};
  const auto s = computeErrorStats<f32>(a, a);
  EXPECT_EQ(s.maxAbsError, 0.0);
  EXPECT_EQ(s.mse, 0.0);
  EXPECT_TRUE(std::isinf(s.psnrDb));
  EXPECT_TRUE(s.withinBound(0.0));
}

TEST(ErrorStats, KnownValues) {
  const std::vector<f32> a = {0.0f, 1.0f, 2.0f, 3.0f};
  const std::vector<f32> b = {0.5f, 1.0f, 2.0f, 3.0f};
  const auto s = computeErrorStats<f32>(a, b);
  EXPECT_DOUBLE_EQ(s.maxAbsError, 0.5);
  EXPECT_DOUBLE_EQ(s.mse, 0.25 / 4.0);
  EXPECT_DOUBLE_EQ(s.valueRange, 3.0);
  // PSNR = 20 log10(3) - 10 log10(0.0625)
  EXPECT_NEAR(s.psnrDb, 20.0 * std::log10(3.0) - 10.0 * std::log10(0.0625),
              1e-9);
  EXPECT_TRUE(s.withinBound(0.5));
  EXPECT_FALSE(s.withinBound(0.49));
}

TEST(ErrorStats, SizeMismatchThrows) {
  const std::vector<f32> a(4, 0.0f);
  const std::vector<f32> b(5, 0.0f);
  EXPECT_THROW(computeErrorStats<f32>(a, b), Error);
}

TEST(ErrorStats, ValueRange) {
  const std::vector<f64> v = {-2.0, 5.0, 1.0};
  EXPECT_DOUBLE_EQ(valueRange<f64>(v), 7.0);
  EXPECT_DOUBLE_EQ(valueRange<f64>(std::vector<f64>{}), 0.0);
  EXPECT_DOUBLE_EQ(valueRange<f64>(std::vector<f64>{3.0}), 0.0);
}

TEST(ErrorStats, PsnrDecreasesWithNoise) {
  Rng rng(1);
  std::vector<f32> orig(10000);
  for (auto& v : orig) v = static_cast<f32>(rng.uniform(0.0, 100.0));
  auto addNoise = [&](f64 sigma) {
    Rng nz(2);
    std::vector<f32> out = orig;
    for (auto& v : out) v += static_cast<f32>(nz.normal(0.0, sigma));
    return computeErrorStats<f32>(orig, out).psnrDb;
  };
  EXPECT_GT(addNoise(0.01), addNoise(0.1));
  EXPECT_GT(addNoise(0.1), addNoise(1.0));
}

TEST(Ssim, PerfectForIdentical) {
  std::vector<f32> v(1024);
  Rng rng(3);
  for (auto& x : v) x = static_cast<f32>(rng.uniform(0.0, 10.0));
  EXPECT_NEAR(ssim<f32>(v, v), 1.0, 1e-12);
}

TEST(Ssim, DegradesWithDistortion) {
  std::vector<f32> v(4096);
  for (usize i = 0; i < v.size(); ++i) {
    v[i] = static_cast<f32>(std::sin(0.01 * static_cast<f64>(i)));
  }
  Rng rng(4);
  std::vector<f32> mild = v;
  std::vector<f32> heavy = v;
  for (usize i = 0; i < v.size(); ++i) {
    mild[i] += static_cast<f32>(rng.normal(0.0, 0.01));
    heavy[i] += static_cast<f32>(rng.normal(0.0, 0.5));
  }
  const f64 sMild = ssim<f32>(v, mild);
  const f64 sHeavy = ssim<f32>(v, heavy);
  EXPECT_GT(sMild, sHeavy);
  EXPECT_GT(sMild, 0.9);
  EXPECT_LT(sHeavy, 0.8);
}

TEST(Ssim, ValidatesArguments) {
  const std::vector<f32> a(10, 0.0f);
  const std::vector<f32> b(11, 0.0f);
  EXPECT_THROW(ssim<f32>(a, b), Error);
  EXPECT_THROW(ssim<f32>(a, a, 1), Error);
}

TEST(IsoCrossing, PerfectMatch) {
  std::vector<f32> v(1000);
  for (usize i = 0; i < v.size(); ++i) {
    v[i] = static_cast<f32>(std::sin(0.1 * static_cast<f64>(i)));
  }
  const auto fid = isoCrossingFidelity<f32>(v, v, 0.0);
  EXPECT_GT(fid.originalCrossings, 10u);
  EXPECT_EQ(fid.matchedCrossings, fid.originalCrossings);
  EXPECT_EQ(fid.spuriousCrossings, 0u);
  EXPECT_DOUBLE_EQ(fid.matchRatio, 1.0);
}

TEST(IsoCrossing, DetectsDestroyedStructure) {
  std::vector<f32> v(1000);
  for (usize i = 0; i < v.size(); ++i) {
    v[i] = static_cast<f32>(std::sin(0.1 * static_cast<f64>(i)));
  }
  const std::vector<f32> flat(1000, 0.5f);  // all structure gone
  const auto fid = isoCrossingFidelity<f32>(v, flat, 0.0);
  EXPECT_EQ(fid.matchedCrossings, 0u);
  EXPECT_DOUBLE_EQ(fid.matchRatio, 0.0);
}

TEST(IsoCrossing, ToleratesOneSampleShift) {
  std::vector<f32> v(200);
  for (usize i = 0; i < v.size(); ++i) {
    v[i] = static_cast<f32>(std::sin(0.2 * static_cast<f64>(i)));
  }
  std::vector<f32> shifted(v.size());
  shifted[0] = v[0];
  for (usize i = 1; i < v.size(); ++i) shifted[i] = v[i - 1];
  const auto fid = isoCrossingFidelity<f32>(v, shifted, 0.0);
  EXPECT_GT(fid.matchRatio, 0.9);
}

TEST(Ratio, CellAggregation) {
  RatioCell cell;
  EXPECT_TRUE(cell.empty());
  EXPECT_EQ(cell.format(), "N.A.");
  cell.add(2.0);
  cell.add(8.0);
  cell.add(5.0);
  EXPECT_DOUBLE_EQ(cell.min(), 2.0);
  EXPECT_DOUBLE_EQ(cell.max(), 8.0);
  EXPECT_DOUBLE_EQ(cell.avg(), 5.0);
  EXPECT_EQ(cell.format(), "2.00~8.00 (avg: 5.00)");
}

TEST(Ratio, CompressionRatioHelper) {
  EXPECT_DOUBLE_EQ(compressionRatio(100, 25), 4.0);
  EXPECT_DOUBLE_EQ(compressionRatio(100, 0), 0.0);
}

}  // namespace
}  // namespace cuszp2::metrics
