// Differential testing: an independent, deliberately naive reference
// implementation of the cuSZp2 block format (straight from the paper's
// Figs. 5/7/8, no shared code with src/core) is cross-checked against the
// production BlockCodec on random and adversarial inputs. Any format
// drift between the two implementations fails here.
#include <gtest/gtest.h>

#include <vector>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/block_codec.hpp"

namespace cuszp2::core {
namespace {

// ---- Reference implementation (kept intentionally simple) -----------------

struct RefEncoded {
  u8 offsetByte = 0;
  std::vector<std::byte> payload;
};

u32 refAbs(i32 v) {
  return v < 0 ? static_cast<u32>(-(static_cast<i64>(v)))
               : static_cast<u32>(v);
}

u32 refBits(u32 v) {
  u32 bits = 0;
  while (v != 0) {
    ++bits;
    v >>= 1;
  }
  return bits;
}

/// Encodes one block exactly as the paper describes, bit by bit.
RefEncoded refEncode(const std::vector<i32>& quants, u32 L,
                     EncodingMode mode) {
  // First-order differences, first element vs 0.
  std::vector<i32> diffs(L);
  i32 prev = 0;
  for (u32 i = 0; i < L; ++i) {
    diffs[i] = quants[i] - prev;
    prev = quants[i];
  }

  u32 maxAbsAll = 0;
  u32 maxAbsTail = 0;
  for (u32 i = 0; i < L; ++i) {
    maxAbsAll = std::max(maxAbsAll, refAbs(diffs[i]));
    if (i > 0) maxAbsTail = std::max(maxAbsTail, refAbs(diffs[i]));
  }
  const u32 flPlain = refBits(maxAbsAll);
  const u32 flTail = refBits(maxAbsTail);
  u32 outBytes = 1;
  if (refAbs(diffs[0]) > 0xFFFFFFu) {
    outBytes = 4;
  } else if (refAbs(diffs[0]) > 0xFFFFu) {
    outBytes = 3;
  } else if (refAbs(diffs[0]) > 0xFFu) {
    outBytes = 2;
  }

  const usize plainSize = flPlain == 0 ? 0 : (1 + flPlain) * (L / 8);
  const usize outlierSize = L / 8 + outBytes + flTail * (L / 8);
  const bool useOutlier =
      mode == EncodingMode::Outlier && outlierSize < plainSize;

  RefEncoded out;
  const u32 fl = useOutlier ? flTail : flPlain;
  out.offsetByte = static_cast<u8>(fl & 0x1F);
  if (useOutlier) {
    out.offsetByte |= 0x80;
    out.offsetByte |= static_cast<u8>(((outBytes - 1) & 0x3) << 5);
  }

  if (!useOutlier && fl == 0) return out;  // zero block

  // Sign bitmap, LSB-first within each byte.
  for (u32 j = 0; j < L / 8; ++j) {
    u32 byte = 0;
    for (u32 k = 0; k < 8; ++k) {
      if (diffs[j * 8 + k] < 0) byte |= 1u << k;
    }
    out.payload.push_back(static_cast<std::byte>(byte));
  }
  // Outlier magnitude, little-endian.
  std::vector<u32> absVals(L);
  for (u32 i = 0; i < L; ++i) absVals[i] = refAbs(diffs[i]);
  if (useOutlier) {
    u32 v = absVals[0];
    for (u32 b = 0; b < outBytes; ++b) {
      out.payload.push_back(static_cast<std::byte>(v & 0xFF));
      v >>= 8;
    }
    absVals[0] = 0;
  }
  // Bit planes, plane-major, 8 elements per byte, LSB-first.
  for (u32 plane = 0; plane < fl; ++plane) {
    for (u32 j = 0; j < L / 8; ++j) {
      u32 byte = 0;
      for (u32 k = 0; k < 8; ++k) {
        byte |= ((absVals[j * 8 + k] >> plane) & 1u) << k;
      }
      out.payload.push_back(static_cast<std::byte>(byte));
    }
  }
  return out;
}

// ---- Differential checks ----------------------------------------------------

void crossCheck(const std::vector<i32>& quants, u32 L, EncodingMode mode) {
  const BlockCodec codec(L);
  const auto plan = codec.plan(quants, mode);
  std::vector<std::byte> payload(plan.payloadBytes);
  codec.encode(quants, plan, payload.data());

  const auto ref = refEncode(quants, L, mode);
  ASSERT_EQ(plan.header.pack(), ref.offsetByte) << "offset byte drift";
  ASSERT_EQ(payload, ref.payload) << "payload drift";

  // And the production decoder must invert the reference encoder.
  std::vector<i32> rec(L);
  codec.decode(BlockHeader::unpack(ref.offsetByte), ref.payload.data(), rec);
  ASSERT_EQ(rec, quants);
}

class DifferentialTest
    : public ::testing::TestWithParam<std::tuple<u32, EncodingMode>> {};

TEST_P(DifferentialTest, RandomBlocksAgree) {
  const auto [L, mode] = GetParam();
  Rng rng(6000 + L);
  for (int trial = 0; trial < 400; ++trial) {
    std::vector<i32> quants(L);
    i32 v = static_cast<i32>(rng.uniformInt(2'000'000)) - 1'000'000;
    const u32 magnitude = 1u << (trial % 24);
    for (auto& q : quants) {
      v += static_cast<i32>(rng.uniformInt(2 * magnitude + 1)) -
           static_cast<i32>(magnitude);
      q = v;
    }
    crossCheck(quants, L, mode);
  }
}

TEST_P(DifferentialTest, AdversarialBlocksAgree) {
  const auto [L, mode] = GetParam();
  const i32 big = (i32{1} << 30) - 1;
  std::vector<std::vector<i32>> cases = {
      std::vector<i32>(L, 0),
      std::vector<i32>(L, 1),
      std::vector<i32>(L, -1),
      std::vector<i32>(L, big),
      std::vector<i32>(L, -big),
      std::vector<i32>(L, 255),    // 1-byte outlier boundary
      std::vector<i32>(L, 256),    // 2-byte outlier boundary
      std::vector<i32>(L, 65536),  // 3-byte outlier boundary
  };
  {
    std::vector<i32> ramp(L);
    for (u32 i = 0; i < L; ++i) ramp[i] = static_cast<i32>(i * 3) - 40;
    cases.push_back(ramp);
  }
  {
    std::vector<i32> saw(L);
    for (u32 i = 0; i < L; ++i) saw[i] = (i % 2) ? big : -big;
    cases.push_back(saw);
  }
  for (const auto& c : cases) {
    crossCheck(c, L, mode);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DifferentialTest,
    ::testing::Combine(::testing::Values<u32>(8, 32, 64),
                       ::testing::Values(EncodingMode::Plain,
                                         EncodingMode::Outlier)));

}  // namespace
}  // namespace cuszp2::core
