// Tests for the lossy conversion step: the error-bound invariant is THE
// correctness property of the compressor, so it gets a property sweep.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/compressor.hpp"
#include "core/quantizer.hpp"

namespace cuszp2::core {
namespace {

TEST(Quantizer, PaperRunningExample) {
  // Paper Fig. 5: eb = 0.1, value 1.12 -> integer 6 -> reconstruct 1.2.
  const Quantizer q(0.1);
  EXPECT_EQ(q.quantize(1.12f), 6);
  EXPECT_FLOAT_EQ(q.dequantize<f32>(6), 1.2f);
  EXPECT_LT(std::abs(1.12 - 1.2), 0.1 + 1e-12);
}

TEST(Quantizer, ZeroMapsToZero) {
  const Quantizer q(1e-3);
  EXPECT_EQ(q.quantize(0.0f), 0);
  EXPECT_EQ(q.quantize(0.0), 0);
  EXPECT_EQ(q.dequantize<f32>(0), 0.0f);
}

TEST(Quantizer, NegativeValues) {
  const Quantizer q(0.5);
  EXPECT_EQ(q.quantize(-1.0f), -1);
  EXPECT_EQ(q.quantize(-2.0f), -2);
  EXPECT_FLOAT_EQ(q.dequantize<f32>(-2), -2.0f);
}

TEST(Quantizer, RejectsNonPositiveBound) {
  EXPECT_THROW(Quantizer(0.0), Error);
  EXPECT_THROW(Quantizer(-1.0), Error);
}

TEST(Quantizer, ThrowsOnRangeOverflow) {
  const Quantizer q(1e-12);
  EXPECT_THROW(q.quantize(1.0e6f), Error);
}

TEST(Quantizer, RejectsNonFiniteValues) {
  const Quantizer q(1e-3);
  EXPECT_THROW(q.quantize(std::numeric_limits<f32>::quiet_NaN()), Error);
  EXPECT_THROW(q.quantize(std::numeric_limits<f32>::infinity()), Error);
  EXPECT_THROW(q.quantize(-std::numeric_limits<f64>::infinity()), Error);
}

TEST(Quantizer, CompressorRejectsNonFiniteData) {
  // A NaN anywhere in the field must abort compression cleanly rather
  // than poison the stream (the launcher propagates the block's error).
  std::vector<f32> data(4096, 1.0f);
  data[1234] = std::numeric_limits<f32>::quiet_NaN();
  core::Config cfg;
  cfg.absErrorBound = 1e-3;
  const core::Compressor comp(cfg);
  EXPECT_THROW(comp.compress<f32>(data), Error);
}

TEST(Quantizer, AbsFromRel) {
  EXPECT_DOUBLE_EQ(Quantizer::absFromRel(1e-2, 100.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantizer::absFromRel(1e-3, 50.0), 0.05);
  // Degenerate zero-range field still gets a positive bound.
  EXPECT_GT(Quantizer::absFromRel(1e-3, 0.0), 0.0);
  EXPECT_THROW(Quantizer::absFromRel(0.0, 1.0), Error);
}

// Property: |v - dequantize(quantize(v))| <= eb for all representable
// inputs, across error bounds, magnitudes, and both precisions.
class QuantizerBoundTest : public ::testing::TestWithParam<f64> {};

TEST_P(QuantizerBoundTest, ErrorBoundHoldsF32) {
  const f64 eb = GetParam();
  const Quantizer q(eb);
  Rng rng(101);
  for (int i = 0; i < 20000; ++i) {
    const f32 v = static_cast<f32>(rng.uniform(-1000.0, 1000.0));
    const f32 rec = q.dequantize<f32>(q.quantize(v));
    // The final f64 -> f32 cast can add up to half an ulp of the value on
    // top of the quantization error; the bound holds modulo that rounding
    // (true of any f32 compressor when eb approaches the ulp scale).
    const f64 halfUlp = std::abs(static_cast<f64>(v)) * 6.0e-8;
    ASSERT_LE(std::abs(static_cast<f64>(v) - static_cast<f64>(rec)),
              eb * (1.0 + 1e-6) + halfUlp)
        << "v=" << v << " eb=" << eb;
  }
}

TEST_P(QuantizerBoundTest, ErrorBoundHoldsF64) {
  const f64 eb = GetParam();
  const Quantizer q(eb);
  Rng rng(202);
  for (int i = 0; i < 20000; ++i) {
    const f64 v = rng.uniform(-1000.0, 1000.0);
    const f64 rec = q.dequantize<f64>(q.quantize(v));
    ASSERT_LE(std::abs(v - rec), eb * (1.0 + 1e-12)) << "v=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(ErrorBounds, QuantizerBoundTest,
                         ::testing::Values(10.0, 1.0, 0.1, 1e-2, 1e-3,
                                           1e-4));

TEST(Quantizer, QuantizationIsIdempotent) {
  const Quantizer q(1e-2);
  Rng rng(303);
  for (int i = 0; i < 1000; ++i) {
    const f32 v = static_cast<f32>(rng.uniform(-10.0, 10.0));
    const i32 code = q.quantize(v);
    const f32 rec = q.dequantize<f32>(code);
    EXPECT_EQ(q.quantize(rec), code) << "v=" << v;
  }
}

TEST(Quantizer, MonotoneInValue) {
  const Quantizer q(0.25);
  i32 prev = q.quantize(-100.0f);
  for (f32 v = -100.0f; v <= 100.0f; v += 0.37f) {
    const i32 code = q.quantize(v);
    EXPECT_GE(code, prev);
    prev = code;
  }
}

TEST(Quantizer, F32AndF64AgreeOnExactValues) {
  const Quantizer q(0.125);
  for (f64 v = -20.0; v <= 20.0; v += 0.5) {
    EXPECT_EQ(q.quantize(static_cast<f32>(v)), q.quantize(v));
  }
}

}  // namespace
}  // namespace cuszp2::core
