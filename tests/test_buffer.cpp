// Unit tests for common/buffer.hpp (aligned owning buffer).
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>

#include "common/buffer.hpp"

namespace cuszp2 {
namespace {

TEST(AlignedBuffer, DefaultIsEmpty) {
  AlignedBuffer<f32> b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(b.data(), nullptr);
}

TEST(AlignedBuffer, AllocatesAligned) {
  for (usize count : {1u, 3u, 64u, 1000u, 4097u}) {
    AlignedBuffer<f32> b(count);
    EXPECT_EQ(b.size(), count);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b.data()) %
                  AlignedBuffer<f32>::kAlignment,
              0u)
        << "count=" << count;
  }
}

TEST(AlignedBuffer, ElementAccess) {
  AlignedBuffer<i32> b(100);
  for (usize i = 0; i < b.size(); ++i) b[i] = static_cast<i32>(i * 3);
  for (usize i = 0; i < b.size(); ++i) {
    EXPECT_EQ(b[i], static_cast<i32>(i * 3));
  }
}

TEST(AlignedBuffer, SpanCoversAll) {
  AlignedBuffer<u8> b(17);
  auto s = b.span();
  EXPECT_EQ(s.size(), 17u);
  EXPECT_EQ(s.data(), b.data());
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  AlignedBuffer<i32> a(8);
  a[0] = 42;
  i32* ptr = a.data();
  AlignedBuffer<i32> b(std::move(a));
  EXPECT_EQ(b.data(), ptr);
  EXPECT_EQ(b[0], 42);
  EXPECT_EQ(a.data(), nullptr);
  EXPECT_TRUE(a.empty());

  AlignedBuffer<i32> c;
  c = std::move(b);
  EXPECT_EQ(c.data(), ptr);
  EXPECT_EQ(c[0], 42);
}

TEST(AlignedBuffer, ResizeDiscardsAndReallocates) {
  AlignedBuffer<f64> b(4);
  b.resize(16);
  EXPECT_EQ(b.size(), 16u);
  b.resize(0);
  EXPECT_TRUE(b.empty());
}

TEST(AlignedBuffer, RangeForIterates) {
  AlignedBuffer<i32> b(5);
  i32 v = 0;
  for (auto& x : b) x = v++;
  v = 0;
  for (const auto& x : std::as_const(b)) EXPECT_EQ(x, v++);
  EXPECT_EQ(v, 5);
}

}  // namespace
}  // namespace cuszp2
