// Unit tests for the gpusim kernel launcher: coverage, counter reduction,
// batching, and concurrency behaviour.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "gpusim/launcher.hpp"

namespace cuszp2::gpusim {
namespace {

TEST(Launcher, EveryBlockRunsExactlyOnce) {
  Launcher launcher;
  std::vector<std::atomic<int>> hits(1000);
  const auto result = launcher.launch(1000, [&](BlockCtx& ctx) {
    hits[ctx.blockIdx].fetch_add(1, std::memory_order_relaxed);
    EXPECT_EQ(ctx.gridSize, 1000u);
  });
  EXPECT_EQ(result.gridSize, 1000u);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Launcher, ZeroGridIsNoop) {
  Launcher launcher;
  const auto result = launcher.launch(0, [](BlockCtx&) { FAIL(); });
  EXPECT_EQ(result.gridSize, 0u);
  EXPECT_EQ(result.mem.totalBytes(), 0u);
}

TEST(Launcher, CountersAreReducedAcrossBlocks) {
  Launcher launcher;
  const auto result = launcher.launch(64, [](BlockCtx& ctx) {
    ctx.mem.noteVectorRead(128, 32);
    ctx.mem.noteOps(10);
  });
  EXPECT_EQ(result.mem.bytesRead, 64u * 128u);
  EXPECT_EQ(result.mem.vectorLoadInstr, 64u * 8u);
  EXPECT_EQ(result.mem.coalescedTransactions, 64u * 4u);
  EXPECT_EQ(result.mem.arithmeticOps, 640u);
}

TEST(Launcher, SyncStatsReduceWithMaxDepth) {
  Launcher launcher;
  const auto result = launcher.launch(8, [](BlockCtx& ctx) {
    ctx.sync.method = SyncMethod::DecoupledLookback;
    ctx.sync.tiles = 1;
    ctx.sync.lookbackSteps = ctx.blockIdx;
    ctx.sync.maxLookbackDepth = ctx.blockIdx;
  });
  EXPECT_EQ(result.sync.tiles, 8u);
  EXPECT_EQ(result.sync.maxLookbackDepth, 7u);
  EXPECT_EQ(result.sync.lookbackSteps, 0u + 1 + 2 + 3 + 4 + 5 + 6 + 7);
}

TEST(Launcher, ExplicitBatchingCoversAllBlocks) {
  Launcher launcher;
  for (u32 blocksPerTask : {1u, 3u, 7u, 100u, 1000u}) {
    std::vector<std::atomic<int>> hits(257);
    launcher.launch(
        257,
        [&](BlockCtx& ctx) {
          hits[ctx.blockIdx].fetch_add(1, std::memory_order_relaxed);
        },
        blocksPerTask);
    for (usize i = 0; i < hits.size(); ++i) {
      ASSERT_EQ(hits[i].load(), 1)
          << "block " << i << " bpt " << blocksPerTask;
    }
  }
}

TEST(Launcher, SharedExternalPool) {
  ThreadPool pool(3);
  Launcher a(pool);
  Launcher b(pool);
  std::atomic<int> count{0};
  a.launch(10, [&](BlockCtx&) { ++count; });
  b.launch(10, [&](BlockCtx&) { ++count; });
  EXPECT_EQ(count.load(), 20);
  EXPECT_EQ(a.workerCount(), 3u);
}

// A block may spin-wait on a lower-indexed block's published value; the
// FIFO launcher must guarantee progress (this deadlocks if dispatch order
// or pool fairness is broken).
TEST(Launcher, BackwardDependenciesMakeProgress) {
  Launcher launcher;
  constexpr u32 kBlocks = 200;
  std::vector<std::atomic<u64>> published(kBlocks);
  for (auto& p : published) p.store(0);
  launcher.launch(
      kBlocks,
      [&](BlockCtx& ctx) {
        u64 sum = 1;
        if (ctx.blockIdx > 0) {
          u64 prev = 0;
          while ((prev = published[ctx.blockIdx - 1].load(
                      std::memory_order_acquire)) == 0) {
            std::this_thread::yield();
          }
          sum += prev;
        }
        published[ctx.blockIdx].store(sum, std::memory_order_release);
      },
      1);
  EXPECT_EQ(published[kBlocks - 1].load(), kBlocks);
}

TEST(Launcher, WallTimeIsPositive) {
  Launcher launcher;
  const auto result = launcher.launch(4, [](BlockCtx&) {});
  EXPECT_GT(result.wallSeconds, 0.0);
}

// Two launches issued concurrently from different host threads against
// the same pool must each wait only on their own tasks and produce
// correct, independent results.
TEST(Launcher, ConcurrentLaunchesOnSharedPool) {
  ThreadPool pool(4);
  Launcher a(pool);
  Launcher b(pool);
  std::atomic<int> countA{0};
  std::atomic<int> countB{0};
  std::thread ta([&] {
    for (int round = 0; round < 5; ++round) {
      a.launch(64, [&](BlockCtx& ctx) {
        ctx.mem.noteOps(1);
        ++countA;
      });
    }
  });
  std::thread tb([&] {
    for (int round = 0; round < 5; ++round) {
      b.launch(64, [&](BlockCtx& ctx) {
        ctx.mem.noteOps(2);
        ++countB;
      });
    }
  });
  ta.join();
  tb.join();
  EXPECT_EQ(countA.load(), 5 * 64);
  EXPECT_EQ(countB.load(), 5 * 64);
}

}  // namespace
}  // namespace cuszp2::gpusim
