// Seeded property sweep: every (dataset, error-bound mode, block-checksum)
// combination must round-trip with |original - decoded| <= bound for every
// element, and the telemetry registry's byte counters must equal the
// actual buffer sizes moved through the stream.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "core/stream.hpp"
#include "datagen/fields.hpp"
#include "metrics/error_stats.hpp"
#include "telemetry/metrics.hpp"

namespace cuszp2 {
namespace {

using core::CompressorStream;
using core::Config;

/// Element-wise bound check with the same half-ULP slack the repo's
/// ErrorStats::withinBoundFp applies: dequantization rounds once in the
/// target precision, so a bound tighter than that is unachievable.
template <FloatingPoint T>
void expectWithinBound(std::span<const T> orig, std::span<const T> dec,
                       f64 absEb, const std::string& label) {
  ASSERT_EQ(orig.size(), dec.size()) << label;
  const f64 ulpScale = std::is_same_v<T, f32> ? 6.0e-8 : 1.2e-16;
  usize violations = 0;
  f64 worst = 0.0;
  usize worstAt = 0;
  for (usize i = 0; i < orig.size(); ++i) {
    const f64 err = std::fabs(static_cast<f64>(orig[i]) -
                              static_cast<f64>(dec[i]));
    const f64 slack =
        std::fabs(static_cast<f64>(orig[i])) * ulpScale;
    if (err > absEb * (1.0 + 1e-12) + slack) {
      ++violations;
      if (err > worst) {
        worst = err;
        worstAt = i;
      }
    }
  }
  EXPECT_EQ(violations, 0u)
      << label << ": " << violations << " elements out of bound "
      << absEb << ", worst |err| " << worst << " at index " << worstAt;
}

struct BoundCase {
  bool relative;
  f64 bound;
};

template <FloatingPoint T>
void sweepDataset(const std::string& dataset, u32 fieldIndex, usize elems) {
  // Odd element count: the final block is partial in every sweep.
  const std::vector<T> field = [&] {
    if constexpr (std::is_same_v<T, f32>) {
      return datagen::generateF32(dataset, fieldIndex, elems);
    } else {
      return datagen::generateF64(dataset, fieldIndex, elems);
    }
  }();
  const std::span<const T> data(field);
  const f64 range = metrics::valueRange<T>(data);

  const BoundCase bounds[] = {
      {true, 1e-2}, {true, 1e-3}, {true, 1e-4},
      {false, range * 5e-3}, {false, range * 5e-5},
  };

  telemetry::MetricsRegistry& reg = telemetry::registry();
  reg.setEnabled(true);

  for (const BoundCase& bc : bounds) {
    for (const bool blockChecksums : {false, true}) {
      Config cfg;
      if (bc.relative) {
        cfg.relErrorBound = bc.bound;
        cfg.absErrorBound = 0.0;
      } else {
        cfg.absErrorBound = bc.bound;
      }
      cfg.blockChecksums = blockChecksums;
      const std::string label =
          dataset + (bc.relative ? "/rel=" : "/abs=") +
          std::to_string(bc.bound) +
          (blockChecksums ? "/v2" : "/v1");

      reg.reset();
      CompressorStream codec(cfg);
      const auto c = codec.compress<T>(data);
      const auto d = codec.decompress<T>(c.stream);

      // REL bounds resolve against the field's value range on-device;
      // the effective ABS bound is recorded in the stream header.
      const f64 absEb = core::StreamHeader::parse(c.stream).absErrorBound;
      if (bc.relative) {
        EXPECT_NEAR(absEb, core::Quantizer::absFromRel(bc.bound, range),
                    absEb * 1e-12)
            << label;
      } else {
        EXPECT_EQ(absEb, bc.bound) << label;
      }
      expectWithinBound<T>(data, d.data, absEb, label);

      // Metrics-reported bytes equal the actual buffer sizes.
      EXPECT_EQ(reg.counter("stream.compress.bytes_in").value(),
                field.size() * sizeof(T))
          << label;
      EXPECT_EQ(reg.counter("stream.compress.bytes_out").value(),
                c.stream.size())
          << label;
      EXPECT_EQ(reg.counter("stream.decompress.bytes_in").value(),
                c.stream.size())
          << label;
      EXPECT_EQ(reg.counter("stream.decompress.bytes_out").value(),
                d.data.size() * sizeof(T))
          << label;
      // Version-2 streams carry the 2-byte-per-block footer.
      const auto header = core::StreamHeader::parse(c.stream);
      EXPECT_EQ(header.hasBlockChecksums(), blockChecksums) << label;
    }
  }

  reg.reset();
  reg.setEnabled(false);
}

TEST(ErrorBoundProperty, CesmAtmF32) { sweepDataset<f32>("cesm_atm", 0, 8191); }
TEST(ErrorBoundProperty, HaccF32) { sweepDataset<f32>("hacc", 1, 8191); }
TEST(ErrorBoundProperty, JetinF32) { sweepDataset<f32>("jetin", 0, 8191); }
TEST(ErrorBoundProperty, NyxF32) { sweepDataset<f32>("nyx", 0, 8191); }
TEST(ErrorBoundProperty, S3dF64) { sweepDataset<f64>("s3d", 0, 8191); }

/// Format-v3 pipeline matrix: for every pipeline mode (Auto plus each
/// pinned pipeline), under a REL and an ABS bound, the stream must
/// (a) declare format v3,
/// (b) respect the element-wise error bound,
/// (c) round-trip the quantized representation exactly — recompressing
///     the decoded data under the resolved ABS bound decodes bit-identical
///     (lossless once past the quantizer, whatever the encoder), and
/// (d) in Auto never exceed the smallest pinned pipeline's stream size
///     (the selector's admission rule for the shared Huffman table).
template <FloatingPoint T>
void sweepPipelineMatrix(const std::string& dataset, u32 fieldIndex,
                         usize elems) {
  using core::PipelineMode;

  const std::vector<T> field = [&] {
    if constexpr (std::is_same_v<T, f32>) {
      return datagen::generateF32(dataset, fieldIndex, elems);
    } else {
      return datagen::generateF64(dataset, fieldIndex, elems);
    }
  }();
  const std::span<const T> data(field);
  const f64 range = metrics::valueRange<T>(data);

  const BoundCase bounds[] = {{true, 1e-3}, {false, range * 1e-4}};
  const PipelineMode modes[] = {PipelineMode::Auto, PipelineMode::Fle,
                                PipelineMode::Huffman, PipelineMode::Rle,
                                PipelineMode::LorenzoFle};

  for (const BoundCase& bc : bounds) {
    usize autoSize = 0;
    usize bestPinned = std::numeric_limits<usize>::max();

    for (const PipelineMode mode : modes) {
      Config cfg;
      if (bc.relative) {
        cfg.relErrorBound = bc.bound;
        cfg.absErrorBound = 0.0;
      } else {
        cfg.absErrorBound = bc.bound;
      }
      cfg.pipeline = mode;
      const std::string label =
          dataset + (bc.relative ? "/rel=" : "/abs=") +
          std::to_string(bc.bound) + "/pipeline=" + core::toString(mode);

      CompressorStream codec(cfg);
      const auto c = codec.compress<T>(data);
      const auto header = core::StreamHeader::parse(c.stream);
      EXPECT_EQ(header.version, core::kFormatVersionV3) << label;

      const auto d = codec.decompress<T>(c.stream);
      const f64 absEb = header.absErrorBound;
      expectWithinBound<T>(data, d.data, absEb, label);

      // Quantized-stream round trip: the decoded values are exactly the
      // dequantized integers, so recompressing them under the *resolved*
      // ABS bound (REL would re-derive a different range) and decoding
      // again must reproduce them bit for bit regardless of the encoder.
      Config cfg2 = cfg;
      cfg2.relErrorBound = 0.0;
      cfg2.absErrorBound = absEb;
      CompressorStream codec2(cfg2);
      const auto c2 = codec2.compress<T>(std::span<const T>(d.data));
      const auto d2 = codec2.decompress<T>(c2.stream);
      ASSERT_EQ(d2.data.size(), d.data.size()) << label;
      EXPECT_EQ(std::memcmp(d2.data.data(), d.data.data(),
                            d.data.size() * sizeof(T)),
                0)
          << label << ": quantized round trip not exact";

      if (mode == PipelineMode::Auto) {
        autoSize = c.stream.size();
      } else {
        bestPinned = std::min(bestPinned, c.stream.size());
      }
    }

    EXPECT_LE(autoSize, bestPinned)
        << dataset << (bc.relative ? "/rel=" : "/abs=") << bc.bound
        << ": auto selection produced a larger stream than the best "
           "pinned pipeline";
  }
}

TEST(PipelineMatrixProperty, CesmAtmF32) {
  sweepPipelineMatrix<f32>("cesm_atm", 0, 8191);
}
TEST(PipelineMatrixProperty, HaccF32) {
  sweepPipelineMatrix<f32>("hacc", 1, 8191);
}
TEST(PipelineMatrixProperty, JetinF32) {
  sweepPipelineMatrix<f32>("jetin", 0, 8191);
}
TEST(PipelineMatrixProperty, NyxF32) {
  sweepPipelineMatrix<f32>("nyx", 0, 8191);
}
// s3d is the repo's double-precision dataset; the others are f32-native
// (datagen rejects cross-precision generation), so together the five
// datasets cover the full pipeline matrix in both element types.
TEST(PipelineMatrixProperty, S3dF64) {
  sweepPipelineMatrix<f64>("s3d", 0, 8191);
}

}  // namespace
}  // namespace cuszp2
