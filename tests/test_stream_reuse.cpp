// Tests for the zero-allocation hot path: the scratch arena, reusable
// CompressorStream (growing/shrinking inputs, precision alternation,
// exception recovery, steady-state allocation behaviour, batched
// launches), and the worker-pool environment override.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <vector>

#include "common/arena.hpp"
#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "core/compressor.hpp"
#include "core/stream.hpp"
#include "datagen/fields.hpp"
#include "gpusim/launcher.hpp"
#include "scan/lookback.hpp"

namespace cuszp2::core {
namespace {

// ---- Arena ----------------------------------------------------------------

TEST(Arena, AllocationsAreAlignedAndBumped) {
  Arena arena;
  void* a = arena.allocate(1);
  void* b = arena.allocate(100);
  void* c = arena.allocate(64);
  for (void* p : {a, b, c}) {
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % Arena::kAlignment, 0u);
  }
  // Small allocations come from one slab, bump-style.
  EXPECT_EQ(arena.stats().slabAllocations, 1u);
  EXPECT_EQ(static_cast<std::byte*>(b) - static_cast<std::byte*>(a), 64);
  EXPECT_EQ(arena.bytesInUse(), 64u + 128u + 64u);
}

TEST(Arena, ResetCoalescesIntoOneSlab) {
  Arena arena;
  // Force several slabs: each allocation exceeds what remains in the last.
  arena.allocate(Arena::kMinSlabBytes);
  arena.allocate(Arena::kMinSlabBytes + 1);
  arena.allocate(3 * Arena::kMinSlabBytes);
  const u64 grownSlabs = arena.stats().slabAllocations;
  EXPECT_GT(grownSlabs, 1u);
  const usize peak = arena.stats().highWater;

  // Coalescing reset: one more slab sized to the high-water mark...
  arena.reset();
  EXPECT_EQ(arena.stats().slabAllocations, grownSlabs + 1);
  EXPECT_GE(arena.stats().bytesReserved, peak);
  EXPECT_EQ(arena.bytesInUse(), 0u);

  // ...after which the same peak usage allocates nothing new.
  arena.allocate(peak);
  arena.reset();
  arena.allocate(peak);
  EXPECT_EQ(arena.stats().slabAllocations, grownSlabs + 1);
}

TEST(Arena, AllocSpanIsUsableAndEmptyOnZero) {
  Arena arena;
  auto span = arena.allocSpan<i32>(1000);
  ASSERT_EQ(span.size(), 1000u);
  for (usize i = 0; i < span.size(); ++i) span[i] = static_cast<i32>(i);
  EXPECT_EQ(span[999], 999);
  EXPECT_TRUE(arena.allocSpan<i32>(0).empty());
  // std::atomic is not trivially constructible: allocSpan must run ctors.
  auto atomics = arena.allocSpan<std::atomic<u64>>(8);
  atomics[0].store(7);
  EXPECT_EQ(atomics[0].load(), 7u);
}

// ---- CompressorStream reuse ----------------------------------------------

Config testConfig() {
  Config cfg;
  cfg.absErrorBound = 1e-3;
  return cfg;
}

template <FloatingPoint T>
void expectRoundTripMatchesOneShot(CompressorStream& stream,
                                   std::span<const T> data) {
  const Compressor oneShot(stream.config());
  const auto expected = oneShot.compress<T>(data);
  const auto actual = stream.compress<T>(data);
  ASSERT_EQ(actual.stream, expected.stream);
  const auto decoded = stream.decompress<T>(actual.stream);
  const auto expectedDecoded = oneShot.decompress<T>(expected.stream);
  ASSERT_EQ(decoded.data, expectedDecoded.data);
}

TEST(StreamReuse, GrowingAndShrinkingSizesMatchOneShot) {
  CompressorStream stream(testConfig());
  // Grow, shrink, regrow — including empty and non-block-multiple sizes.
  for (usize n : {usize{64}, usize{100000}, usize{31}, usize{0}, usize{4097},
                  usize{257}, usize{100000}}) {
    const auto data = datagen::generateF32("miranda", 0, std::max<usize>(n, 1));
    expectRoundTripMatchesOneShot<f32>(
        stream, std::span<const f32>(data.data(), n));
  }
}

TEST(StreamReuse, AlternatingPrecisionsMatchOneShot) {
  CompressorStream stream(testConfig());
  const auto data32 = datagen::generateF32("miranda", 0, 5000);
  const auto data64 = datagen::generateF64("s3d", 0, 3000);
  for (int round = 0; round < 3; ++round) {
    expectRoundTripMatchesOneShot<f32>(stream, data32);
    expectRoundTripMatchesOneShot<f64>(stream, data64);
  }
}

TEST(StreamReuse, ExceptionLeavesStreamReusable) {
  Config cfg;
  cfg.absErrorBound = 1e-12;  // quantizing ~1e0 values overflows i32 range
  CompressorStream stream(cfg);
  const auto data = datagen::generateF32("miranda", 0, 10000);
  EXPECT_THROW(stream.compress<f32>(std::span<const f32>(data)), Error);

  // The stream recovers: next calls succeed and stay byte-identical.
  stream.reconfigure(testConfig());
  expectRoundTripMatchesOneShot<f32>(stream, std::span<const f32>(data));
}

TEST(StreamReuse, SteadyStatePerformsNoArenaAllocations) {
  CompressorStream stream(testConfig());
  const auto big = datagen::generateF32("miranda", 0, 1 << 16);
  const auto small = datagen::generateF32("nyx", 0, 1 << 12);

  // Warm-up at the peak size: one compress grows the arena, the following
  // reset coalesces it into a single high-water slab.
  auto compressed = stream.compress<f32>(std::span<const f32>(big));
  stream.decompress<f32>(compressed.stream);
  const u64 warmSlabs = stream.arenaStats().slabAllocations;

  for (int round = 0; round < 5; ++round) {
    auto c = stream.compress<f32>(std::span<const f32>(big));
    stream.decompress<f32>(c.stream);
    stream.decompressBlocks<f32>(c.stream, 3, 17);
    stream.compress<f32>(std::span<const f32>(small));
  }
  // Zero heap allocations in steady state: the slab counter is unchanged
  // while resets keep ticking.
  EXPECT_EQ(stream.arenaStats().slabAllocations, warmSlabs);
  EXPECT_GT(stream.arenaStats().resets, 5u);
}

TEST(StreamReuse, ReleaseScratchRegrows) {
  CompressorStream stream(testConfig());
  const auto data = datagen::generateF32("miranda", 0, 1 << 14);
  const auto expected = stream.compress<f32>(std::span<const f32>(data));
  stream.releaseScratch();
  const auto again = stream.compress<f32>(std::span<const f32>(data));
  EXPECT_EQ(again.stream, expected.stream);
}

TEST(StreamReuse, BatchMatchesPerFieldCompression) {
  CompressorStream stream(testConfig());
  std::vector<std::vector<f32>> fields;
  fields.push_back(datagen::generateF32("miranda", 0, 7000));
  fields.push_back(datagen::generateF32("hacc", 1, 333));
  fields.push_back({});  // empty field inside a batch
  fields.push_back(datagen::generateF32("cesm_atm", 0, 12000));

  std::vector<std::span<const f32>> views;
  for (const auto& f : fields) views.emplace_back(f);
  const auto batch = stream.compressBatch<f32>(views);
  ASSERT_EQ(batch.size(), fields.size());

  const Compressor oneShot(stream.config());
  for (usize i = 0; i < fields.size(); ++i) {
    const auto expected = oneShot.compress<f32>(views[i]);
    EXPECT_EQ(batch[i].stream, expected.stream) << "field " << i;
    EXPECT_EQ(batch[i].originalBytes, expected.originalBytes);
  }
}

// ---- Batched launches and the shared pool --------------------------------

TEST(LaunchBatch, CountersMatchSeparateLaunches) {
  gpusim::Launcher launcher;
  auto makeBody = [](u64 bytesPerBlock) {
    return [bytesPerBlock](gpusim::BlockCtx& ctx) {
      ctx.mem.noteVectorRead(bytesPerBlock, 32);
      ctx.mem.noteVectorWrite(2 * bytesPerBlock, 32);
    };
  };
  std::vector<gpusim::KernelDesc> descs(3);
  descs[0] = {17, makeBody(64), 0};
  descs[1] = {0, {}, 0};  // empty grid inside a batch
  descs[2] = {33, makeBody(128), 4};

  const auto batch = launcher.launchBatch(descs);
  ASSERT_EQ(batch.size(), 3u);
  for (usize k = 0; k < descs.size(); ++k) {
    if (descs[k].gridSize == 0) {
      EXPECT_EQ(batch[k].mem.bytesRead, 0u);
      continue;
    }
    const auto single =
        launcher.launch(descs[k].gridSize, descs[k].body, descs[k].blocksPerTask);
    EXPECT_EQ(batch[k].gridSize, single.gridSize);
    EXPECT_EQ(batch[k].mem.bytesRead, single.mem.bytesRead);
    EXPECT_EQ(batch[k].mem.bytesWritten, single.mem.bytesWritten);
  }
}

TEST(LaunchBatch, NestedLaunchOnSharedPoolRunsInline) {
  // A kernel body launching another grid on the same pool must not
  // deadlock (every worker could be blocked in a nested wait); the
  // launcher runs nested grids inline on the calling thread instead.
  gpusim::Launcher launcher;
  const u32 outer = static_cast<u32>(launcher.workerCount()) * 2 + 3;
  const u32 inner = 5;
  std::atomic<u64> hits{0};
  launcher.launch(outer, [&](gpusim::BlockCtx&) {
    gpusim::Launcher nested;
    nested.launch(inner, [&](gpusim::BlockCtx&) {
      hits.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(hits.load(), static_cast<u64>(outer) * inner);
}

// ---- Worker-pool environment override ------------------------------------

TEST(ThreadPoolEnv, WorkerCountOverride) {
  const char* old = std::getenv("CUSZP2_WORKERS");
  const std::string saved = old != nullptr ? old : "";

  ::setenv("CUSZP2_WORKERS", "3", 1);
  EXPECT_EQ(ThreadPool::defaultWorkers(), 3u);
  // An explicit 1 is honoured (serial tile order → deterministic sync
  // stats; the perf-regression harness depends on this).
  ::setenv("CUSZP2_WORKERS", "1", 1);
  EXPECT_EQ(ThreadPool::defaultWorkers(), 1u);
  ::setenv("CUSZP2_WORKERS", "0", 1);  // non-positive: hardware default
  EXPECT_GE(ThreadPool::defaultWorkers(), 2u);
  ::setenv("CUSZP2_WORKERS", "9999", 1);  // above the ceiling: clamped
  EXPECT_EQ(ThreadPool::defaultWorkers(), 64u);
  ::setenv("CUSZP2_WORKERS", "junk", 1);  // unparseable: hardware default
  const usize fallback = ThreadPool::defaultWorkers();
  EXPECT_GE(fallback, 2u);
  EXPECT_LE(fallback, 16u);

  if (old != nullptr) {
    ::setenv("CUSZP2_WORKERS", saved.c_str(), 1);
  } else {
    ::unsetenv("CUSZP2_WORKERS");
  }
}

// A single worker must make forward progress through the decoupled
// lookback protocol (tiles only wait on earlier tiles, and one FIFO
// worker runs them in order), and the resulting sync stats must be the
// deterministic serial ones: depth 1 everywhere, zero wait spins.
TEST(ThreadPoolEnv, SingleWorkerLookbackIsSerialAndDeterministic) {
  ThreadPool pool(1);
  gpusim::Launcher launcher(pool);
  constexpr u32 kTiles = 64;
  scan::LookbackState state(kTiles);
  std::vector<u64> exclusive(kTiles);
  const auto result = launcher.launch(kTiles, [&](gpusim::BlockCtx& ctx) {
    exclusive[ctx.blockIdx] =
        state.processTile(ctx.blockIdx, 10, ctx.sync, ctx.mem);
  });
  for (u32 t = 0; t < kTiles; ++t) {
    EXPECT_EQ(exclusive[t], 10u * t);
  }
  EXPECT_EQ(result.sync.maxLookbackDepth, 1u);
  EXPECT_EQ(result.sync.waitSpins, 0u);
}

}  // namespace
}  // namespace cuszp2::core
