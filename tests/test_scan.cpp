// Tests for the device-level prefix-sum protocols: chained scan, decoupled
// lookback, and the standalone device scan driver. Includes concurrency
// stress and parameterized property sweeps.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "gpusim/launcher.hpp"
#include "gpusim/timing.hpp"
#include "scan/chained.hpp"
#include "scan/cpu_scan.hpp"
#include "scan/device_scan.hpp"
#include "core/compressor.hpp"
#include "scan/lookback.hpp"

namespace cuszp2::scan {
namespace {

std::vector<u64> randomValues(usize n, u64 seed, u64 maxValue = 1000) {
  Rng rng(seed);
  std::vector<u64> v(n);
  for (auto& x : v) x = rng.uniformInt(maxValue + 1);
  return v;
}

TEST(CpuScan, ExclusiveScanReference) {
  const std::vector<u64> in = {3, 1, 4, 1, 5};
  std::vector<u64> out(in.size());
  exclusiveScan(in, out);
  EXPECT_EQ(out, (std::vector<u64>{0, 3, 4, 8, 9}));
}

TEST(CpuScan, InclusiveScanReference) {
  const std::vector<u64> in = {3, 1, 4, 1, 5};
  std::vector<u64> out(in.size());
  inclusiveScan(in, out);
  EXPECT_EQ(out, (std::vector<u64>{3, 4, 8, 9, 14}));
}

TEST(CpuScan, Reduce) {
  EXPECT_EQ(reduce(std::vector<u64>{1, 2, 3}), 6u);
  EXPECT_EQ(reduce(std::vector<u64>{}), 0u);
}

// ---- Protocol-level tests (processTile called from launcher blocks) -----

class ScanProtocolTest : public ::testing::TestWithParam<u32> {};

TEST_P(ScanProtocolTest, LookbackComputesExclusivePrefixes) {
  const u32 tiles = GetParam();
  const auto values = randomValues(tiles, 42);
  std::vector<u64> expected(tiles);
  exclusiveScan(values, expected);

  LookbackState state(tiles);
  std::vector<u64> got(tiles, ~u64{0});
  gpusim::Launcher launcher;
  const auto result = launcher.launch(
      tiles,
      [&](gpusim::BlockCtx& ctx) {
        got[ctx.blockIdx] = state.processTile(
            ctx.blockIdx, values[ctx.blockIdx], ctx.sync, ctx.mem);
      },
      1);  // one block per task maximizes interleaving
  EXPECT_EQ(got, expected);
  EXPECT_EQ(result.sync.method, gpusim::SyncMethod::DecoupledLookback);
  EXPECT_EQ(result.sync.tiles, tiles);
}

TEST_P(ScanProtocolTest, ChainedScanComputesExclusivePrefixes) {
  const u32 tiles = GetParam();
  const auto values = randomValues(tiles, 7);
  std::vector<u64> expected(tiles);
  exclusiveScan(values, expected);

  ChainedScanState state(tiles);
  std::vector<u64> got(tiles, ~u64{0});
  gpusim::Launcher launcher;
  const auto result = launcher.launch(
      tiles,
      [&](gpusim::BlockCtx& ctx) {
        got[ctx.blockIdx] = state.processTile(
            ctx.blockIdx, values[ctx.blockIdx], ctx.sync, ctx.mem);
      },
      1);
  EXPECT_EQ(got, expected);
  EXPECT_EQ(result.sync.method, gpusim::SyncMethod::ChainedScan);
}

INSTANTIATE_TEST_SUITE_P(TileCounts, ScanProtocolTest,
                         ::testing::Values(1, 2, 3, 8, 64, 257, 1024));

TEST(Lookback, SingleTileReturnsZero) {
  LookbackState state(1);
  gpusim::SyncStats sync;
  gpusim::MemCounters mem;
  EXPECT_EQ(state.processTile(0, 123, sync, mem), 0u);
  EXPECT_EQ(state.waitInclusivePrefix(0), 123u);
}

TEST(Lookback, InclusivePrefixMatchesReduction) {
  const u32 tiles = 100;
  const auto values = randomValues(tiles, 9);
  LookbackState state(tiles);
  gpusim::Launcher launcher;
  launcher.launch(tiles, [&](gpusim::BlockCtx& ctx) {
    state.processTile(ctx.blockIdx, values[ctx.blockIdx], ctx.sync, ctx.mem);
  });
  EXPECT_EQ(state.waitInclusivePrefix(tiles - 1), reduce(values));
}

TEST(Lookback, ResetAllowsReuse) {
  LookbackState state(4);
  gpusim::Launcher launcher;
  for (int round = 0; round < 3; ++round) {
    state.reset();
    launcher.launch(4, [&](gpusim::BlockCtx& ctx) {
      state.processTile(ctx.blockIdx, 10, ctx.sync, ctx.mem);
    });
    EXPECT_EQ(state.waitInclusivePrefix(3), 40u);
  }
}

TEST(Lookback, RejectsOversizedAggregate) {
  LookbackState state(2);
  gpusim::SyncStats sync;
  gpusim::MemCounters mem;
  EXPECT_THROW(state.processTile(0, u64{1} << 63, sync, mem), Error);
}

TEST(Lookback, RejectsOutOfRangeTile) {
  LookbackState state(2);
  gpusim::SyncStats sync;
  gpusim::MemCounters mem;
  EXPECT_THROW(state.processTile(5, 1, sync, mem), Error);
}

TEST(Lookback, StatsRecordDepth) {
  const u32 tiles = 64;
  LookbackState state(tiles);
  gpusim::Launcher launcher;
  const auto result = launcher.launch(
      tiles,
      [&](gpusim::BlockCtx& ctx) {
        state.processTile(ctx.blockIdx, 1, ctx.sync, ctx.mem);
      },
      1);
  EXPECT_GE(result.sync.lookbackSteps, tiles - 1);  // every tile >= 1 step
  EXPECT_GE(result.sync.maxLookbackDepth, 1u);
  EXPECT_LT(result.sync.maxLookbackDepth, tiles);
}

// Stress: repeated concurrent scans with adversarial value patterns.
TEST(Lookback, StressManyRounds) {
  gpusim::Launcher launcher;
  for (u64 seed = 0; seed < 10; ++seed) {
    const u32 tiles = 128;
    const auto values = randomValues(tiles, seed, 1u << 20);
    std::vector<u64> expected(tiles);
    exclusiveScan(values, expected);
    LookbackState state(tiles);
    std::vector<u64> got(tiles);
    launcher.launch(
        tiles,
        [&](gpusim::BlockCtx& ctx) {
          got[ctx.blockIdx] = state.processTile(
              ctx.blockIdx, values[ctx.blockIdx], ctx.sync, ctx.mem);
        },
        1);
    ASSERT_EQ(got, expected) << "seed " << seed;
  }
}

// ---- Device-scan driver --------------------------------------------------

class DeviceScanTest
    : public ::testing::TestWithParam<std::tuple<usize, u32, Algorithm>> {};

TEST_P(DeviceScanTest, MatchesCpuReference) {
  const auto [n, tileSize, algo] = GetParam();
  const auto values = randomValues(n, 1234 + n);
  std::vector<u64> expected(n);
  exclusiveScan(values, expected);

  gpusim::Launcher launcher;
  const auto result = deviceExclusiveScan(values, tileSize, algo, launcher);
  EXPECT_EQ(result.exclusive, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DeviceScanTest,
    ::testing::Combine(::testing::Values<usize>(0, 1, 31, 32, 1000, 4096,
                                                65537),
                       ::testing::Values<u32>(1, 32, 128),
                       ::testing::Values(Algorithm::ChainedScan,
                                         Algorithm::DecoupledLookback,
                                         Algorithm::ReduceThenScan)));

TEST(DeviceScan, LookbackHasLowerModeledSyncCost) {
  const auto values = randomValues(100000, 5);
  gpusim::Launcher launcher;
  const auto chained =
      deviceExclusiveScan(values, 128, Algorithm::ChainedScan, launcher);
  const auto lookback = deviceExclusiveScan(
      values, 128, Algorithm::DecoupledLookback, launcher);
  const gpusim::TimingModel model(gpusim::a100_40gb());
  EXPECT_LT(model.syncSeconds(lookback.launch.sync),
            model.syncSeconds(chained.launch.sync));
}

TEST(DeviceScan, ReduceThenScanCostOrdering) {
  // At compression-tile data coverage (16 KiB/tile), decoupled lookback
  // is strictly fastest and reduce-then-scan's re-staging keeps it in
  // chained-scan territory — chained scan replaced RTS as the
  // "state-of-the-art" the paper benchmarks against (Sec. IV-C), and
  // lookback beats both.
  const auto values = randomValues(100000, 15);
  gpusim::Launcher launcher;
  const gpusim::TimingModel model(gpusim::a100_40gb());
  const f64 chained = model.syncSeconds(
      deviceExclusiveScan(values, 128, Algorithm::ChainedScan, launcher)
          .launch.sync);
  const f64 lookback = model.syncSeconds(
      deviceExclusiveScan(values, 128, Algorithm::DecoupledLookback,
                          launcher)
          .launch.sync);
  auto rtsResult =
      deviceExclusiveScan(values, 128, Algorithm::ReduceThenScan, launcher);
  rtsResult.launch.sync.tileDataBytes = 16384;  // compression-tile coverage
  const f64 rts = model.syncSeconds(rtsResult.launch.sync);
  EXPECT_LT(lookback, rts);
  EXPECT_LT(lookback, chained);
  EXPECT_GT(rts, chained * 0.5);
  EXPECT_LT(rts, chained * 2.0);
}

TEST(DeviceScan, ReduceThenScanRecordsMethodAndTiles) {
  const auto values = randomValues(1000, 16);
  gpusim::Launcher launcher;
  const auto r =
      deviceExclusiveScan(values, 128, Algorithm::ReduceThenScan, launcher);
  EXPECT_EQ(r.launch.sync.method, gpusim::SyncMethod::ReduceThenScan);
  EXPECT_EQ(r.launch.sync.tiles, 8u);
  EXPECT_GT(r.launch.sync.tileDataBytes, 0u);
  // Three kernels => the values round-trip: read twice, written once.
  EXPECT_GE(r.launch.mem.bytesRead, 2 * values.size() * 8);
}

TEST(DeviceScan, CompressorRejectsReduceThenScan) {
  core::Config cfg;
  cfg.absErrorBound = 1e-3;
  cfg.syncAlgorithm = Algorithm::ReduceThenScan;
  EXPECT_THROW(core::Compressor{cfg}, Error);
}

TEST(DeviceScan, RejectsZeroTileSize) {
  gpusim::Launcher launcher;
  const std::vector<u64> values = {1, 2, 3};
  EXPECT_THROW(
      deviceExclusiveScan(values, 0, Algorithm::ChainedScan, launcher),
      Error);
}

}  // namespace
}  // namespace cuszp2::scan
