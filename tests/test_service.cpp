// CompressionService: scheduling, admission control, batching and
// lifecycle guarantees.
//
// The load-bearing acceptance test is
// ByteIdenticalToSerialStreamAndFewerLaunches: a seeded 4-tenant mixed
// workload through the service must produce byte-identical compressed
// output to serial per-request CompressorStream calls, while the batching
// scheduler shows fewer total launches in the kernel telemetry table and
// the queue/wait metrics appear in snapshotJson.
//
// Determinism recipe used throughout: workers = 1 + startPaused = true +
// submit everything + resume() gives a fully known queue at dispatch time,
// so batch formation and dispatch order are exact, not statistical.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/format.hpp"
#include "core/stream.hpp"
#include "datagen/fields.hpp"
#include "service/chaos.hpp"
#include "service/service.hpp"
#include "telemetry/metrics.hpp"

using namespace cuszp2;

namespace {

core::Config relConfig(f64 rel) {
  core::Config cfg;
  cfg.relErrorBound = rel;
  return cfg;
}

struct Request {
  std::string tenant;
  std::string dataset;
  u32 fieldIndex;
  usize elems;
};

// 4 tenants, mixed sizes, all with the same Config so jobs coalesce
// across tenants.
std::vector<Request> mixedWorkload() {
  return {
      {"climate", "cesm_atm", 0, 4096}, {"physics", "hacc", 0, 8192},
      {"fluids", "jetin", 0, 2048},     {"tiny", "cesm_atm", 1, 512},
      {"climate", "cesm_atm", 2, 4096}, {"physics", "hacc", 1, 8192},
      {"fluids", "jetin", 0, 2048},     {"tiny", "cesm_atm", 3, 512},
      {"climate", "cesm_atm", 4, 4096}, {"physics", "hacc", 2, 8192},
      {"fluids", "jetin", 0, 2048},     {"tiny", "cesm_atm", 5, 512},
  };
}

std::vector<f32> fieldFor(const Request& r) {
  return datagen::generateF32(r.dataset, r.fieldIndex, r.elems);
}

u64 kernelLaunches(const std::string& kernel) {
  for (const telemetry::KernelRow& row :
       telemetry::registry().snapshotKernels()) {
    if (row.name == kernel) return row.launches;
  }
  return 0;
}

}  // namespace

TEST(ServiceTest, ByteIdenticalToSerialStreamAndFewerLaunches) {
  const std::vector<Request> reqs = mixedWorkload();
  const core::Config cfg = relConfig(1e-3);

  // Serial reference, with the registry off so only the service run is
  // counted in the kernel table.
  telemetry::registry().setEnabled(false);
  std::vector<std::vector<std::byte>> expected;
  {
    core::CompressorStream serial(cfg);
    for (const Request& r : reqs) {
      const std::vector<f32> data = fieldFor(r);
      expected.push_back(
          serial.compress<f32>(std::span<const f32>(data)).stream);
    }
  }

  telemetry::registry().setEnabled(true);
  telemetry::registry().reset();

  service::ServiceConfig scfg;
  scfg.workers = 1;
  scfg.startPaused = true;
  scfg.maxBatchJobs = 4;
  service::CompressionService svc(scfg);

  std::vector<service::Ticket> tickets;
  for (const Request& r : reqs) {
    const std::vector<f32> data = fieldFor(r);
    service::SubmitResult s =
        svc.submitCompress<f32>(r.tenant, std::span<const f32>(data), cfg);
    ASSERT_TRUE(s.accepted()) << s.detail;
    tickets.push_back(s.ticket);
  }
  svc.resume();
  EXPECT_TRUE(svc.shutdown());

  for (usize i = 0; i < tickets.size(); ++i) {
    const service::JobResult& r = tickets[i].wait();
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.compressed.stream, expected[i])
        << "job " << i << " (" << reqs[i].tenant
        << ") is not byte-identical to the serial stream";
  }

  const service::ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.completed, reqs.size());
  EXPECT_LT(stats.batches, static_cast<u64>(reqs.size()))
      << "batching scheduler did not coalesce anything";
  EXPECT_GT(stats.launchesSaved(), 0u);

  // The fused launches are visible in the kernel telemetry table: fewer
  // `compress` launches than jobs, exactly one per batch.
  const u64 launches = kernelLaunches("compress");
  EXPECT_GT(launches, 0u);
  EXPECT_LT(launches, static_cast<u64>(reqs.size()));
  EXPECT_EQ(launches, stats.batches);

  // Queue/wait metrics and per-tenant counters appear in the snapshot.
  const std::string json = telemetry::registry().snapshotJson();
  EXPECT_NE(json.find("service.queue_depth"), std::string::npos);
  EXPECT_NE(json.find("service.wait_us"), std::string::npos);
  EXPECT_NE(json.find("service.service_us"), std::string::npos);
  EXPECT_NE(json.find("service.batch_jobs"), std::string::npos);
  EXPECT_NE(json.find("service.tenant.climate.jobs"), std::string::npos);
  EXPECT_NE(json.find("service.tenant.tiny.bytes_out"), std::string::npos);
}

TEST(ServiceTest, UnbatchedModeMatchesJobCount) {
  const std::vector<Request> reqs = mixedWorkload();
  const core::Config cfg = relConfig(1e-3);

  service::ServiceConfig scfg;
  scfg.workers = 1;
  scfg.startPaused = true;
  scfg.maxBatchJobs = 1;
  service::CompressionService svc(scfg);
  std::vector<service::Ticket> tickets;
  for (const Request& r : reqs) {
    const std::vector<f32> data = fieldFor(r);
    tickets.push_back(
        svc.submitCompress<f32>(r.tenant, std::span<const f32>(data), cfg)
            .ticket);
  }
  svc.resume();
  svc.shutdown();
  for (const service::Ticket& t : tickets) EXPECT_TRUE(t.wait().ok);
  const service::ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.batches, static_cast<u64>(reqs.size()));
  EXPECT_EQ(stats.launchesSaved(), 0u);
}

TEST(ServiceTest, BatchedDecompressByteIdenticalAndFewerLaunches) {
  const std::vector<Request> reqs = mixedWorkload();
  const core::Config cfg = relConfig(1e-3);

  // Serial reference: compress each field and decompress it back, with
  // the registry off so only the service run lands in the kernel table.
  telemetry::registry().setEnabled(false);
  std::vector<std::vector<std::byte>> streams;
  std::vector<std::vector<f32>> expected;
  {
    core::CompressorStream serial(cfg);
    for (const Request& r : reqs) {
      const std::vector<f32> data = fieldFor(r);
      streams.push_back(
          serial.compress<f32>(std::span<const f32>(data)).stream);
      expected.push_back(serial.decompress<f32>(streams.back()).data);
    }
  }

  telemetry::registry().setEnabled(true);
  telemetry::registry().reset();

  service::ServiceConfig scfg;
  scfg.workers = 1;
  scfg.startPaused = true;
  scfg.maxBatchJobs = 4;
  service::CompressionService svc(scfg);
  std::vector<service::Ticket> tickets;
  for (usize i = 0; i < reqs.size(); ++i) {
    service::SubmitResult s =
        svc.submitDecompress(reqs[i].tenant, streams[i]);
    ASSERT_TRUE(s.accepted()) << s.detail;
    tickets.push_back(s.ticket);
  }
  svc.resume();
  EXPECT_TRUE(svc.shutdown());

  for (usize i = 0; i < tickets.size(); ++i) {
    const service::JobResult& r = tickets[i].wait();
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.decodedElements, expected[i].size());
    ASSERT_EQ(r.decompressed.size(), expected[i].size() * sizeof(f32));
    EXPECT_EQ(std::memcmp(r.decompressed.data(), expected[i].data(),
                          r.decompressed.size()),
              0)
        << "job " << i << " (" << reqs[i].tenant
        << ") is not byte-identical to the serial decode";
    EXPECT_GT(r.decompressProfile.endToEndGBps, 0.0);
  }

  const service::ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.completed, reqs.size());
  EXPECT_LT(stats.batches, static_cast<u64>(reqs.size()))
      << "decompress jobs were not coalesced";

  const u64 launches = kernelLaunches("decompress");
  EXPECT_GT(launches, 0u);
  EXPECT_LT(launches, static_cast<u64>(reqs.size()));
}

// Guards the whole point of batching: a fused launch must not cost more
// wall-clock than dispatching the same jobs one by one. Uses the bench
// workload shape (4 tenants x 4 rounds, mixed sizes, shared Config)
// against a warm persistent service — cold construction would measure
// arena growth, not scheduling. Minimum over several passes with a noise
// tolerance keeps the assertion stable on loaded machines while still
// catching a real regression of the coalescing path.
TEST(ServiceTest, BatchedWallClockNoSlowerThanUnbatched) {
  const core::Config cfg = relConfig(1e-3);
  std::vector<Request> reqs;
  const char* datasets[4] = {"cesm_atm", "hacc", "jetin", "cesm_atm"};
  const usize sizes[4] = {32768, 65536, 16384, 8192};
  for (u32 round = 0; round < 4; ++round) {
    for (u32 t = 0; t < 4; ++t) {
      const u32 numFields = datagen::datasetInfo(datasets[t]).numFields;
      reqs.push_back(Request{"tenant" + std::to_string(t), datasets[t],
                             round % numFields, sizes[t]});
    }
  }
  std::vector<std::vector<f32>> fields;
  for (const Request& r : reqs) fields.push_back(fieldFor(r));

  const auto measure = [&](u32 maxBatchJobs) {
    service::ServiceConfig scfg;
    scfg.workers = 1;
    scfg.startPaused = true;
    scfg.maxBatchJobs = maxBatchJobs;
    service::CompressionService svc(scfg);
    const auto pass = [&]() {
      svc.pause();
      std::vector<service::Ticket> tickets;
      for (usize i = 0; i < reqs.size(); ++i) {
        service::SubmitResult s = svc.submitCompress<f32>(
            reqs[i].tenant, std::span<const f32>(fields[i]), cfg);
        EXPECT_TRUE(s.accepted()) << s.detail;
        tickets.push_back(s.ticket);
      }
      svc.resume();
      for (const service::Ticket& t : tickets) EXPECT_TRUE(t.wait().ok);
    };
    pass();  // warm-up: grows the arena and pays one-time setup
    f64 best = std::numeric_limits<f64>::infinity();
    for (int i = 0; i < 5; ++i) {
      const auto t0 = std::chrono::steady_clock::now();
      pass();
      const auto t1 = std::chrono::steady_clock::now();
      best = std::min(best, std::chrono::duration<f64>(t1 - t0).count());
    }
    svc.shutdown();
    return best;
  };

  // One OS scheduling spike can invert a ~20 ms comparison; re-measure up
  // to three times and only fail if batched loses every round.
  f64 batched = 0.0;
  f64 unbatched = 0.0;
  for (int attempt = 0; attempt < 3; ++attempt) {
    batched = measure(8);
    unbatched = measure(1);
    if (batched <= unbatched * 1.15) break;
  }
  EXPECT_LE(batched, unbatched * 1.15)
      << "batched " << batched * 1e3 << " ms vs unbatched "
      << unbatched * 1e3 << " ms";
}

TEST(ServiceProperty, PerTenantFifoOrderPreserved) {
  // 3 tenants x 20 interleaved jobs on 2 workers; whatever the global
  // interleaving, each tenant's dispatch ordinals must be increasing in
  // its submission order.
  const std::vector<std::string> tenantNames = {"a", "b", "c"};
  const core::Config cfg = relConfig(1e-3);
  service::ServiceConfig scfg;
  scfg.workers = 2;
  scfg.startPaused = true;
  service::CompressionService svc(scfg);

  std::map<std::string, std::vector<service::Ticket>> perTenant;
  for (u32 j = 0; j < 20; ++j) {
    for (const std::string& tenant : tenantNames) {
      const std::vector<f32> data =
          datagen::generateF32("cesm_atm", j % 6, 256 + 64 * j);
      perTenant[tenant].push_back(
          svc.submitCompress<f32>(tenant, std::span<const f32>(data), cfg)
              .ticket);
    }
  }
  svc.resume();
  EXPECT_TRUE(svc.shutdown());

  for (const auto& [tenant, tickets] : perTenant) {
    u64 lastSeq = 0;
    for (usize i = 0; i < tickets.size(); ++i) {
      const service::JobResult& r = tickets[i].wait();
      ASSERT_TRUE(r.ok) << r.error;
      EXPECT_GT(r.dispatchSeq, lastSeq)
          << "tenant " << tenant << " job " << i
          << " dispatched out of submission order";
      lastSeq = r.dispatchSeq;
    }
  }
}

TEST(ServiceProperty, HotTenantDoesNotStarveColdTenant) {
  // Distinct configs per tenant prevent cross-tenant coalescing, so the
  // round-robin tie-break is directly visible in the dispatch ordinals.
  service::ServiceConfig scfg;
  scfg.workers = 1;
  scfg.startPaused = true;
  scfg.maxBatchJobs = 4;
  service::CompressionService svc(scfg);

  std::vector<service::Ticket> hot;
  std::vector<service::Ticket> cold;
  const std::vector<f32> data = datagen::generateF32("cesm_atm", 0, 1024);
  for (u32 j = 0; j < 100; ++j) {
    hot.push_back(svc.submitCompress<f32>("hot", std::span<const f32>(data),
                                          relConfig(1e-3))
                      .ticket);
  }
  for (u32 j = 0; j < 4; ++j) {
    cold.push_back(svc.submitCompress<f32>(
                          "cold", std::span<const f32>(data), relConfig(1e-2))
                       .ticket);
  }
  svc.resume();
  EXPECT_TRUE(svc.shutdown());

  u64 coldLast = 0;
  for (const service::Ticket& t : cold) {
    coldLast = std::max(coldLast, t.wait().dispatchSeq);
  }
  // Round-robin at equal priority alternates lanes, so all 4 cold jobs are
  // dispatched within the first few batches despite 100 queued hot jobs.
  EXPECT_LE(coldLast, 2u * (4 + 1) * scfg.maxBatchJobs)
      << "cold tenant was starved behind the hot tenant";
  for (const service::Ticket& t : hot) EXPECT_TRUE(t.wait().ok);
}

TEST(ServiceProperty, BackpressureRejectsDeterministicallyAtDepth) {
  service::ServiceConfig scfg;
  scfg.workers = 1;
  scfg.startPaused = true;  // nothing drains: depth is exact
  scfg.maxQueueDepth = 5;
  service::CompressionService svc(scfg);

  const std::vector<f32> data = datagen::generateF32("cesm_atm", 0, 256);
  const core::Config cfg = relConfig(1e-3);
  std::vector<service::Ticket> tickets;
  for (u32 j = 0; j < 5; ++j) {
    service::SubmitResult s =
        svc.submitCompress<f32>("t", std::span<const f32>(data), cfg);
    ASSERT_TRUE(s.accepted()) << "submission " << j << ": " << s.detail;
    tickets.push_back(s.ticket);
  }
  // The (maxQueueDepth + 1)-th outstanding submission is refused — every
  // time, not probabilistically.
  for (u32 j = 0; j < 3; ++j) {
    service::SubmitResult s =
        svc.submitCompress<f32>("t", std::span<const f32>(data), cfg);
    ASSERT_FALSE(s.accepted());
    EXPECT_EQ(s.reason, service::RejectReason::QueueFull);
    EXPECT_FALSE(s.ticket.valid());
    EXPECT_THROW(s.ticket.wait(), Error);
  }
  EXPECT_EQ(svc.queueDepth(), 5u);
  EXPECT_EQ(svc.stats().rejectedQueueFull, 3u);

  // Draining frees the slots; submissions are accepted again.
  svc.resume();
  for (const service::Ticket& t : tickets) EXPECT_TRUE(t.wait().ok);
  service::SubmitResult s =
      svc.submitCompress<f32>("t", std::span<const f32>(data), cfg);
  EXPECT_TRUE(s.accepted());
  svc.shutdown();
  EXPECT_TRUE(s.ticket.wait().ok);
}

TEST(ServiceProperty, TenantQuotaShedsOnlyTheOffendingTenant) {
  const std::vector<f32> data = datagen::generateF32("cesm_atm", 0, 1024);
  const u64 jobBytes = data.size() * sizeof(f32);

  service::ServiceConfig scfg;
  scfg.workers = 1;
  scfg.startPaused = true;
  scfg.tenantQuotaBytes = 2 * jobBytes;
  service::CompressionService svc(scfg);

  const core::Config cfg = relConfig(1e-3);
  std::vector<service::Ticket> tickets;
  for (u32 j = 0; j < 2; ++j) {
    service::SubmitResult s =
        svc.submitCompress<f32>("greedy", std::span<const f32>(data), cfg);
    ASSERT_TRUE(s.accepted()) << s.detail;
    tickets.push_back(s.ticket);
  }
  service::SubmitResult over =
      svc.submitCompress<f32>("greedy", std::span<const f32>(data), cfg);
  ASSERT_FALSE(over.accepted());
  EXPECT_EQ(over.reason, service::RejectReason::QuotaExceeded);

  // Quotas are per tenant: another tenant's bytes are unaffected.
  service::SubmitResult other =
      svc.submitCompress<f32>("frugal", std::span<const f32>(data), cfg);
  EXPECT_TRUE(other.accepted());
  tickets.push_back(other.ticket);

  svc.resume();
  EXPECT_TRUE(svc.shutdown());
  for (const service::Ticket& t : tickets) EXPECT_TRUE(t.wait().ok);
  EXPECT_EQ(svc.stats().rejectedQuota, 1u);
}

TEST(ServiceProperty, ShutdownCompletesAllAcceptedTickets) {
  service::ServiceConfig scfg;
  scfg.workers = 2;
  service::CompressionService svc(scfg);
  const core::Config cfg = relConfig(1e-3);

  std::vector<service::Ticket> tickets;
  for (u32 j = 0; j < 50; ++j) {
    const std::vector<f32> data =
        datagen::generateF32("hacc", j % 6, 512 + 32 * j);
    service::SubmitResult s =
        svc.submitCompress<f32>("t" + std::to_string(j % 4),
                                std::span<const f32>(data), cfg);
    ASSERT_TRUE(s.accepted());
    tickets.push_back(s.ticket);
  }
  EXPECT_TRUE(svc.shutdown());
  for (const service::Ticket& t : tickets) {
    EXPECT_TRUE(t.poll()) << "accepted ticket unfinished after shutdown";
    EXPECT_TRUE(t.result().ok) << t.result().error;
  }

  // Post-shutdown submissions shed with the ShuttingDown reason.
  const std::vector<f32> data = datagen::generateF32("cesm_atm", 0, 256);
  service::SubmitResult late =
      svc.submitCompress<f32>("t0", std::span<const f32>(data), cfg);
  ASSERT_FALSE(late.accepted());
  EXPECT_EQ(late.reason, service::RejectReason::ShuttingDown);
  // Idempotent.
  EXPECT_TRUE(svc.shutdown());
}

TEST(ServiceProperty, ShutdownDeadlineAbandonsQueuedJobsButAllFinish) {
  service::ServiceConfig scfg;
  scfg.workers = 1;
  scfg.startPaused = true;
  scfg.maxBatchJobs = 1;
  service::CompressionService svc(scfg);
  const core::Config cfg = relConfig(1e-3);

  // Pin the single worker on one long job, then queue 10 short ones
  // behind it. The zero-length drain budget expires while the long job is
  // still running, so the queued jobs are abandoned deterministically
  // (scheduler jitter cannot outlast a multi-millisecond compress).
  svc.resume();
  const std::vector<f32> big = datagen::generateF32("hacc", 0, 4 << 20);
  std::vector<service::Ticket> tickets;
  tickets.push_back(
      svc.submitCompress<f32>("t", std::span<const f32>(big), cfg).ticket);
  while (svc.stats().dispatched == 0) std::this_thread::yield();
  const std::vector<f32> data = datagen::generateF32("hacc", 1, 65536);
  for (u32 j = 0; j < 10; ++j) {
    tickets.push_back(
        svc.submitCompress<f32>("t", std::span<const f32>(data), cfg)
            .ticket);
  }
  EXPECT_FALSE(svc.shutdown(std::chrono::milliseconds(0)));
  // Every accepted ticket still finishes — either it ran before the queue
  // was drained or it carries the abandonment error.
  u64 ran = 0;
  u64 abandoned = 0;
  for (const service::Ticket& t : tickets) {
    const service::JobResult& r = t.wait();
    if (r.ok) {
      ++ran;
    } else {
      ++abandoned;
      EXPECT_NE(r.error.find("abandoned"), std::string::npos) << r.error;
    }
  }
  EXPECT_EQ(ran + abandoned, 11u);
  EXPECT_GE(ran, 1u);  // the in-flight job always completes
  EXPECT_GE(abandoned, 1u);
  EXPECT_EQ(svc.stats().completed + svc.stats().abandoned, 11u);
  EXPECT_EQ(svc.queueDepth(), 0u);
}

TEST(ServiceTest, CancelBeforeDispatchReleasesSlot) {
  service::ServiceConfig scfg;
  scfg.workers = 1;
  scfg.startPaused = true;
  scfg.maxQueueDepth = 3;
  service::CompressionService svc(scfg);
  const core::Config cfg = relConfig(1e-3);
  const std::vector<f32> data = datagen::generateF32("cesm_atm", 0, 512);

  std::vector<service::Ticket> tickets;
  for (u32 j = 0; j < 3; ++j) {
    tickets.push_back(
        svc.submitCompress<f32>("t", std::span<const f32>(data), cfg)
            .ticket);
  }
  EXPECT_EQ(svc.queueDepth(), 3u);
  EXPECT_TRUE(tickets[1].cancel());
  EXPECT_FALSE(tickets[1].cancel());  // already canceled
  EXPECT_EQ(svc.queueDepth(), 2u);    // slot released immediately
  EXPECT_TRUE(tickets[1].poll());
  EXPECT_TRUE(tickets[1].result().canceled);

  // The freed slot is usable while still paused.
  service::SubmitResult refill =
      svc.submitCompress<f32>("t", std::span<const f32>(data), cfg);
  EXPECT_TRUE(refill.accepted());

  svc.resume();
  EXPECT_TRUE(svc.shutdown());
  EXPECT_TRUE(tickets[0].wait().ok);
  EXPECT_TRUE(tickets[2].wait().ok);
  EXPECT_TRUE(refill.ticket.wait().ok);
  EXPECT_FALSE(tickets[0].cancel());  // finished jobs cannot be canceled
  EXPECT_EQ(svc.stats().completed, 3u);
}

TEST(ServiceTest, PriorityRunsBeforeBacklogWhenUnbatched) {
  service::ServiceConfig scfg;
  scfg.workers = 1;
  scfg.startPaused = true;
  scfg.maxBatchJobs = 1;  // coalescing off: strict priority order
  service::CompressionService svc(scfg);
  const core::Config cfg = relConfig(1e-3);
  const std::vector<f32> data = datagen::generateF32("cesm_atm", 0, 512);

  std::vector<service::Ticket> background;
  std::vector<service::Ticket> urgent;
  for (u32 j = 0; j < 3; ++j) {
    background.push_back(
        svc.submitCompress<f32>("bg", std::span<const f32>(data), cfg,
                                /*priority=*/5)
            .ticket);
  }
  for (u32 j = 0; j < 3; ++j) {
    urgent.push_back(svc.submitCompress<f32>(
                            "rt", std::span<const f32>(data), cfg,
                            /*priority=*/0)
                         .ticket);
  }
  svc.resume();
  EXPECT_TRUE(svc.shutdown());
  u64 urgentMax = 0;
  u64 backgroundMin = ~u64{0};
  for (const service::Ticket& t : urgent) {
    urgentMax = std::max(urgentMax, t.wait().dispatchSeq);
  }
  for (const service::Ticket& t : background) {
    backgroundMin = std::min(backgroundMin, t.wait().dispatchSeq);
  }
  EXPECT_LT(urgentMax, backgroundMin)
      << "priority-0 jobs must dispatch before the priority-5 backlog";
}

TEST(ServiceTest, DecompressRoundTripThroughService) {
  const std::vector<f32> original = datagen::generateF32("jetin", 0, 4096);
  const core::Config cfg = relConfig(1e-3);
  core::CompressorStream serial(cfg);
  const core::Compressed c =
      serial.compress<f32>(std::span<const f32>(original));
  const core::Decompressed<f32> expected = serial.decompress<f32>(c.stream);

  service::CompressionService svc(service::ServiceConfig{.workers = 1});
  service::SubmitResult s = svc.submitDecompress("t", c.stream);
  ASSERT_TRUE(s.accepted());
  const service::JobResult& r = s.ticket.wait();
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.decodedElements, expected.data.size());
  ASSERT_EQ(r.decompressed.size(), expected.data.size() * sizeof(f32));
  EXPECT_EQ(std::memcmp(r.decompressed.data(), expected.data.data(),
                        r.decompressed.size()),
            0);
  svc.shutdown();
}

TEST(ServiceTest, WorkersAreDeviceAffine) {
  service::ServiceConfig scfg;
  scfg.workers = 3;
  service::CompressionService svc(scfg);
  ASSERT_EQ(svc.devices().size(), 3u);
  for (usize i = 0; i < svc.devices().size(); ++i) {
    EXPECT_NE(svc.devices()[i].name.find("[dev" + std::to_string(i) + "]"),
              std::string::npos)
        << svc.devices()[i].name;
  }

  const core::Config cfg = relConfig(1e-3);
  const std::vector<f32> data = datagen::generateF32("cesm_atm", 0, 1024);
  std::vector<service::Ticket> tickets;
  for (u32 j = 0; j < 24; ++j) {
    tickets.push_back(
        svc.submitCompress<f32>("t", std::span<const f32>(data), cfg)
            .ticket);
  }
  EXPECT_TRUE(svc.shutdown());
  for (const service::Ticket& t : tickets) {
    const service::JobResult& r = t.wait();
    ASSERT_TRUE(r.ok);
    ASSERT_LT(r.worker, 3u);
    // Each job reports the device its worker is pinned to.
    EXPECT_EQ(r.device, svc.devices()[r.worker].name);
  }
}

// ---- Fault tolerance: watchdog, retries, breaker, degraded decode ----------

namespace {

core::Config faultTolerantConfig() {
  core::Config cfg;
  cfg.absErrorBound = 1e-3;
  cfg.checksum = true;
  cfg.blockChecksums = true;
  cfg.faultRetries = 2;
  return cfg;
}

/// A hook faulting exactly the given job id's first attempt.
service::ChaosHook faultJobOnce(u64 jobId, service::ChaosFault fault) {
  return [jobId, fault](const service::ChaosJobInfo& info) {
    if (info.jobId == jobId && info.attempt == 0) return fault;
    return service::ChaosFault{};
  };
}

}  // namespace

// Satellite regression: cancel() must release the tenant's outstanding-byte
// quota at the cancel commit point, not at shutdown — a canceled job's
// bytes were previously stuck in the quota until the service drained.
TEST(ServiceTest, CancelReleasesQuotaAtCommitPoint) {
  const std::vector<f32> data = datagen::generateF32("cesm_atm", 0, 1024);
  const u64 jobBytes = data.size() * sizeof(f32);

  service::ServiceConfig scfg;
  scfg.workers = 1;
  scfg.startPaused = true;
  scfg.tenantQuotaBytes = 2 * jobBytes;
  service::CompressionService svc(scfg);
  const core::Config cfg = relConfig(1e-3);

  service::Ticket a =
      svc.submitCompress<f32>("t", std::span<const f32>(data), cfg).ticket;
  service::Ticket b =
      svc.submitCompress<f32>("t", std::span<const f32>(data), cfg).ticket;
  EXPECT_EQ(svc.tenantOutstandingBytes("t"), 2 * jobBytes);
  ASSERT_FALSE(
      svc.submitCompress<f32>("t", std::span<const f32>(data), cfg)
          .accepted());

  // The cancel commit point releases the quota immediately — while the
  // service is still paused, before any dispatch or shutdown.
  ASSERT_TRUE(b.cancel());
  EXPECT_EQ(svc.tenantOutstandingBytes("t"), jobBytes);
  service::SubmitResult refill =
      svc.submitCompress<f32>("t", std::span<const f32>(data), cfg);
  EXPECT_TRUE(refill.accepted()) << refill.detail;
  EXPECT_EQ(b.result().outcome, service::Outcome::Canceled);

  svc.resume();
  EXPECT_TRUE(svc.shutdown());
  EXPECT_TRUE(a.wait().ok);
  EXPECT_TRUE(refill.ticket.wait().ok);
  EXPECT_EQ(svc.tenantOutstandingBytes("t"), 0u);
}

// Satellite: jobs abandoned by a shutdown deadline carry the typed
// Abandoned outcome, not just a free-text error.
TEST(ServiceTest, AbandonedJobsCarryTypedOutcome) {
  service::ServiceConfig scfg;
  scfg.workers = 1;
  scfg.startPaused = true;
  scfg.maxBatchJobs = 1;
  service::CompressionService svc(scfg);
  const core::Config cfg = relConfig(1e-3);

  svc.resume();
  const std::vector<f32> big = datagen::generateF32("hacc", 0, 4 << 20);
  std::vector<service::Ticket> tickets;
  tickets.push_back(
      svc.submitCompress<f32>("t", std::span<const f32>(big), cfg).ticket);
  while (svc.stats().dispatched == 0) std::this_thread::yield();
  const std::vector<f32> data = datagen::generateF32("hacc", 1, 65536);
  for (u32 j = 0; j < 6; ++j) {
    tickets.push_back(
        svc.submitCompress<f32>("t", std::span<const f32>(data), cfg)
            .ticket);
  }
  EXPECT_FALSE(svc.shutdown(std::chrono::milliseconds(0)));
  u64 abandoned = 0;
  for (const service::Ticket& t : tickets) {
    const service::JobResult& r = t.wait();
    if (r.ok) {
      EXPECT_EQ(r.outcome, service::Outcome::Completed);
      continue;
    }
    ++abandoned;
    EXPECT_EQ(r.outcome, service::Outcome::Abandoned);
    EXPECT_EQ(r.attempts, 0u);  // never dispatched
  }
  EXPECT_GE(abandoned, 1u);
}

// Tentpole: a job wedged by a chaos fault is recovered by the watchdog —
// requeued, relaunched, and completed with byte-identical output while
// the wedged execution's late result is discarded.
TEST(ServiceTest, WatchdogRecoversWedgedJobOnAnotherWorker) {
  const core::Config cfg = faultTolerantConfig();
  const std::vector<f32> data = datagen::generateF32("cesm_atm", 0, 4096);
  core::CompressorStream serial(cfg);
  const std::vector<std::byte> expected =
      serial.compress<f32>(std::span<const f32>(data)).stream;

  service::ServiceConfig scfg;
  scfg.workers = 2;
  scfg.startPaused = true;
  scfg.maxBatchJobs = 1;
  scfg.watchdog.pollMillis = 5;
  scfg.watchdog.minTimeoutMillis = 30;
  scfg.watchdog.maxRecoveries = 1;
  service::ChaosFault wedge;
  wedge.mode = service::ChaosFault::Mode::Wedge;
  wedge.wedgeTicks = 300;  // 300 ms >> the 30 ms watchdog deadline
  scfg.chaosHook = faultJobOnce(1, wedge);
  service::CompressionService svc(scfg);

  std::vector<service::Ticket> tickets;
  for (u32 j = 0; j < 4; ++j) {
    tickets.push_back(
        svc.submitCompress<f32>("t", std::span<const f32>(data), cfg)
            .ticket);
  }
  svc.resume();
  for (const service::Ticket& t : tickets) {
    ASSERT_TRUE(t.waitFor(std::chrono::seconds(30)));
    const service::JobResult& r = t.result();
    EXPECT_EQ(r.outcome, service::Outcome::Completed) << r.error;
    EXPECT_EQ(r.compressed.stream, expected);
  }
  const service::ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.watchdogRecoveries, 1u);
  EXPECT_EQ(stats.chaosInjected, 1u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(tickets[0].result().recoveries, 1u);
  svc.shutdown();
}

// Tentpole: a transient arena-exhaustion fault fails the first attempt;
// the retry policy backs off and the second attempt completes.
TEST(ServiceTest, RetryAbsorbsTransientArenaExhaustion) {
  const core::Config cfg = faultTolerantConfig();
  const std::vector<f32> data = datagen::generateF32("hacc", 0, 4096);

  service::ServiceConfig scfg;
  scfg.workers = 1;
  scfg.startPaused = true;
  scfg.maxBatchJobs = 1;
  scfg.retry.maxAttempts = 2;
  service::ChaosFault fault;
  fault.mode = service::ChaosFault::Mode::ArenaExhaust;
  fault.arenaBudgetBytes = 1;
  scfg.chaosHook = faultJobOnce(1, fault);
  service::CompressionService svc(scfg);

  service::Ticket t =
      svc.submitCompress<f32>("t", std::span<const f32>(data), cfg).ticket;
  svc.resume();
  EXPECT_TRUE(svc.shutdown());
  const service::JobResult& r = t.wait();
  EXPECT_EQ(r.outcome, service::Outcome::Completed) << r.error;
  EXPECT_EQ(r.attempts, 2u);
  const service::ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.retriesExhausted, 0u);
  EXPECT_EQ(stats.failed, 0u);
}

// A fault that outlasts every attempt fails the job with a typed outcome
// and the last error preserved (compress jobs have no degraded fallback).
TEST(ServiceTest, RetriesExhaustedFailsCompressJob) {
  const core::Config cfg = faultTolerantConfig();
  const std::vector<f32> data = datagen::generateF32("hacc", 0, 4096);

  service::ServiceConfig scfg;
  scfg.workers = 1;
  scfg.retry.maxAttempts = 2;
  scfg.retry.backoffBaseMillis = 0;  // no backoff: keep the test fast
  scfg.chaosHook = [](const service::ChaosJobInfo&) {
    service::ChaosFault fault;  // every attempt, every job
    fault.mode = service::ChaosFault::Mode::ArenaExhaust;
    fault.arenaBudgetBytes = 1;
    return fault;
  };
  service::CompressionService svc(scfg);

  service::Ticket t =
      svc.submitCompress<f32>("t", std::span<const f32>(data), cfg).ticket;
  const service::JobResult& r = t.wait();
  EXPECT_EQ(r.outcome, service::Outcome::Failed);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.attempts, 2u);
  EXPECT_NE(r.error.find("exhaustion"), std::string::npos) << r.error;
  const service::ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.retriesExhausted, 1u);
  EXPECT_EQ(stats.failed, 1u);
  svc.shutdown();
}

// Satellite regression: a retry waking from its backoff sleep after the
// shutdown drain already swept the lanes must resolve Abandoned — it used
// to silently re-enter the queue and run past the caller's deadline.
TEST(ServiceTest, RetryRequeueAfterDrainResolvesAbandoned) {
  const core::Config cfg = faultTolerantConfig();
  const std::vector<f32> data = datagen::generateF32("hacc", 0, 4096);

  // Pick a jitter seed whose (job 1, attempt 1) draw sleeps >= 400 ms —
  // same formula as CompressionService::backoffSleep, so the chosen seed
  // deterministically gives shutdown time to sweep the lanes first.
  u64 jitterSeed = 0;
  for (u64 s = 0;; ++s) {
    Rng rng(SplitMix64(s ^ (u64{1} * 0x9E3779B97F4A7C15ull) ^ u64{1})
                .next());
    if (1 + rng.uniformInt(500) >= 400) {
      jitterSeed = s;
      break;
    }
  }

  service::ServiceConfig scfg;
  scfg.workers = 1;
  scfg.watchdog.enabled = false;  // isolate the retry-requeue path
  scfg.retry.maxAttempts = 2;
  scfg.retry.backoffBaseMillis = 500;
  scfg.retry.backoffCapMillis = 500;
  scfg.retry.jitterSeed = jitterSeed;
  service::ChaosFault fault;
  fault.mode = service::ChaosFault::Mode::ArenaExhaust;
  fault.arenaBudgetBytes = 1;
  scfg.chaosHook = faultJobOnce(1, fault);
  service::CompressionService svc(scfg);

  service::Ticket t =
      svc.submitCompress<f32>("t", std::span<const f32>(data), cfg).ticket;

  // Wait for the failed first attempt to enter its backoff sleep...
  while (svc.stats().retries == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // ...then shut down with a deadline far shorter than the backoff. The
  // drain sweep finds the lanes empty (the job is asleep on the worker);
  // when its requeue lands it must resolve, not re-run to completion.
  EXPECT_FALSE(svc.shutdown(std::chrono::milliseconds(10)));

  ASSERT_TRUE(t.poll()) << "shutdown returned with the ticket unresolved";
  const service::JobResult& r = t.result();
  EXPECT_EQ(r.outcome, service::Outcome::Abandoned);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("after the shutdown drain"), std::string::npos)
      << r.error;
  const service::ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.abandoned, 1u);
  EXPECT_EQ(stats.completed, 0u);
}

// Tentpole: a decompress job whose stream is corrupt exhausts its strict
// attempts, then degrades to decompressResilient — typed Degraded outcome,
// salvage report attached, intact blocks delivered.
TEST(ServiceTest, DegradedDecodeSalvagesCorruptStream) {
  const core::Config cfg = faultTolerantConfig();
  const std::vector<f32> data = datagen::generateF32("cesm_atm", 0, 8192);
  core::CompressorStream serial(cfg);
  std::vector<std::byte> stream =
      serial.compress<f32>(std::span<const f32>(data)).stream;
  // Smash payload bytes; the header stays intact so salvage can frame.
  for (usize k = 0; k < 16; ++k) {
    stream[stream.size() / 2 + k * 13] ^= std::byte{0x5A};
  }
  const core::Salvaged<f32> reference =
      serial.decompressResilient<f32>(stream);
  ASSERT_FALSE(reference.report.clean());

  service::ServiceConfig scfg;
  scfg.workers = 1;
  scfg.retry.maxAttempts = 2;
  scfg.retry.backoffBaseMillis = 0;
  service::CompressionService svc(scfg);
  service::Ticket t = svc.submitDecompress("t", stream, cfg).ticket;
  const service::JobResult& r = t.wait();

  EXPECT_EQ(r.outcome, service::Outcome::Degraded);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.attempts, 2u);
  EXPECT_EQ(r.decodeReport.totalBlocks, reference.report.totalBlocks);
  EXPECT_EQ(r.decodeReport.badBlocks, reference.report.badBlocks);
  ASSERT_EQ(r.decompressed.size(), reference.data.size() * sizeof(f32));
  EXPECT_EQ(std::memcmp(r.decompressed.data(), reference.data.data(),
                        r.decompressed.size()),
            0);
  const service::ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.degraded, 1u);
  EXPECT_EQ(stats.failed, 0u);  // degraded is its own terminal bucket
  svc.shutdown();
}

// Degraded decode can be disabled: the job then fails outright.
TEST(ServiceTest, DegradedDecodeCanBeDisabled) {
  const core::Config cfg = faultTolerantConfig();
  const std::vector<f32> data = datagen::generateF32("cesm_atm", 0, 4096);
  core::CompressorStream serial(cfg);
  std::vector<std::byte> stream =
      serial.compress<f32>(std::span<const f32>(data)).stream;
  for (usize k = 0; k < 8; ++k) {
    stream[stream.size() / 2 + k * 17] ^= std::byte{0x5A};
  }

  service::ServiceConfig scfg;
  scfg.workers = 1;
  scfg.retry.maxAttempts = 1;
  scfg.degradedDecode = false;
  service::CompressionService svc(scfg);
  service::Ticket t = svc.submitDecompress("t", stream, cfg).ticket;
  const service::JobResult& r = t.wait();
  EXPECT_EQ(r.outcome, service::Outcome::Failed);
  EXPECT_EQ(svc.stats().degraded, 0u);
  svc.shutdown();
}

// Satellite property test: FaultPlan corruption + decompressResilient
// under the service path. Seeded trials corrupt a stream's payload; the
// degraded result must quarantine exactly the damaged blocks and keep
// every intact block inside the configured error bound.
TEST(ServiceProperty, SalvageUnderServiceQuarantinesAndBoundsIntactBlocks) {
  core::Config cfg;
  cfg.absErrorBound = 1e-2;
  cfg.checksum = true;
  cfg.blockChecksums = true;
  cfg.faultRetries = 1;

  service::ServiceConfig scfg;
  scfg.workers = 2;
  scfg.retry.maxAttempts = 1;
  scfg.retry.backoffBaseMillis = 0;
  scfg.breaker.threshold = 0;  // every trial degrades; don't trip it
  service::CompressionService svc(scfg);

  core::CompressorStream serial(cfg);
  Rng rng(0xC0FFEEull);
  for (u32 trial = 0; trial < 10; ++trial) {
    const usize elems = 2048 + 512 * (trial % 5);
    const std::vector<f32> data =
        datagen::generateF32("scale", trial % 12, elems);
    std::vector<std::byte> stream =
        serial.compress<f32>(std::span<const f32>(data)).stream;
    const auto header = core::StreamHeader::parse(stream);
    const usize payloadBegin = header.payloadBegin();
    if (payloadBegin >= stream.size()) continue;
    const u32 corruptions = 1 + static_cast<u32>(rng.uniformInt(4));
    for (u32 k = 0; k < corruptions; ++k) {
      const usize pos =
          payloadBegin + rng.uniformInt(stream.size() - payloadBegin);
      stream[pos] ^= static_cast<std::byte>(1u << rng.uniformInt(8));
    }

    service::Ticket t = svc.submitDecompress("fuzz", stream, cfg).ticket;
    const service::JobResult& r = t.wait();
    ASSERT_TRUE(r.outcome == service::Outcome::Degraded ||
                r.outcome == service::Outcome::Completed)
        << toString(r.outcome) << ": " << r.error;
    if (r.outcome == service::Outcome::Completed) continue;  // flip undone

    ASSERT_EQ(r.decompressed.size(), data.size() * sizeof(f32));
    const f32* got = reinterpret_cast<const f32*>(r.decompressed.data());
    const auto& rep = r.decodeReport;
    EXPECT_GT(rep.badBlocks, 0u) << "trial " << trial;
    EXPECT_EQ(rep.goodBlocks + rep.badBlocks, rep.totalBlocks);
    ASSERT_EQ(rep.verdicts.size(), rep.totalBlocks);
    const usize blockSize = cfg.blockSize;
    for (u64 b = 0; b < rep.totalBlocks; ++b) {
      const usize begin = b * blockSize;
      const usize end = std::min(begin + blockSize, data.size());
      if (rep.verdicts[b] == core::BlockVerdict::Good) {
        for (usize i = begin; i < end; ++i) {
          ASSERT_LE(std::abs(got[i] - data[i]), cfg.absErrorBound + 1e-7)
              << "trial " << trial << " intact block " << b
              << " violates the bound at element " << i;
        }
      } else {
        for (usize i = begin; i < end; ++i) {
          ASSERT_EQ(got[i], 0.0f)
              << "trial " << trial << " quarantined block " << b
              << " leaked non-fill data at element " << i;
        }
      }
    }
  }
  svc.shutdown();
}

// Tentpole: the per-tenant circuit breaker opens after `threshold`
// consecutive failures, sheds exactly that tenant, and closes again after
// a successful half-open probe. Healthy tenants are never affected.
TEST(ServiceTest, CircuitBreakerIsolatesPoisonedTenant) {
  const core::Config cfg = faultTolerantConfig();
  const std::vector<f32> data = datagen::generateF32("cesm_atm", 0, 4096);
  core::CompressorStream serial(cfg);
  const std::vector<std::byte> good =
      serial.compress<f32>(std::span<const f32>(data)).stream;
  std::vector<std::byte> bad = good;
  for (usize k = 0; k < 8; ++k) {
    bad[bad.size() / 2 + k * 19] ^= std::byte{0x77};
  }

  service::ServiceConfig scfg;
  scfg.workers = 1;
  scfg.retry.maxAttempts = 1;
  scfg.retry.backoffBaseMillis = 0;
  scfg.degradedDecode = true;  // Degraded counts as a breaker failure
  scfg.breaker.threshold = 2;
  scfg.breaker.cooldownMillis = 50;
  scfg.breaker.probeSuccesses = 1;
  service::CompressionService svc(scfg);

  // Two consecutive poisoned decodes trip the breaker.
  for (u32 j = 0; j < 2; ++j) {
    service::SubmitResult s = svc.submitDecompress("poison", bad, cfg);
    ASSERT_TRUE(s.accepted());
    EXPECT_EQ(s.ticket.wait().outcome, service::Outcome::Degraded);
  }
  EXPECT_EQ(svc.breakerState("poison"), service::BreakerState::Open);
  EXPECT_EQ(svc.stats().breakerOpens, 1u);

  // Open: the tenant is shed with the typed reason...
  service::SubmitResult shed = svc.submitDecompress("poison", good, cfg);
  ASSERT_FALSE(shed.accepted());
  EXPECT_EQ(shed.reason, service::RejectReason::CircuitOpen);
  EXPECT_EQ(svc.stats().rejectedCircuitOpen, 1u);

  // ...while other tenants sail through.
  service::SubmitResult healthy = svc.submitDecompress("ok", good, cfg);
  ASSERT_TRUE(healthy.accepted());
  EXPECT_EQ(healthy.ticket.wait().outcome, service::Outcome::Completed);
  EXPECT_EQ(svc.breakerState("ok"), service::BreakerState::Closed);

  // After the cooldown a half-open probe is admitted; its success closes
  // the breaker and the tenant is back in business.
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  service::SubmitResult probe = svc.submitDecompress("poison", good, cfg);
  ASSERT_TRUE(probe.accepted()) << probe.detail;
  EXPECT_EQ(probe.ticket.wait().outcome, service::Outcome::Completed);
  EXPECT_EQ(svc.breakerState("poison"), service::BreakerState::Closed);
  service::SubmitResult after = svc.submitDecompress("poison", good, cfg);
  EXPECT_TRUE(after.accepted());
  EXPECT_TRUE(after.ticket.wait().ok);
  svc.shutdown();
}

// A failed half-open probe reopens the breaker for another cooldown.
TEST(ServiceTest, BreakerReopensOnFailedProbe) {
  const core::Config cfg = faultTolerantConfig();
  const std::vector<f32> data = datagen::generateF32("cesm_atm", 0, 4096);
  core::CompressorStream serial(cfg);
  const std::vector<std::byte> good =
      serial.compress<f32>(std::span<const f32>(data)).stream;
  std::vector<std::byte> bad = good;
  for (usize k = 0; k < 8; ++k) {
    bad[bad.size() / 2 + k * 19] ^= std::byte{0x77};
  }

  service::ServiceConfig scfg;
  scfg.workers = 1;
  scfg.retry.maxAttempts = 1;
  scfg.retry.backoffBaseMillis = 0;
  scfg.breaker.threshold = 1;
  scfg.breaker.cooldownMillis = 40;
  service::CompressionService svc(scfg);

  ASSERT_EQ(svc.submitDecompress("p", bad, cfg).ticket.wait().outcome,
            service::Outcome::Degraded);
  EXPECT_EQ(svc.breakerState("p"), service::BreakerState::Open);

  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  service::SubmitResult probe = svc.submitDecompress("p", bad, cfg);
  ASSERT_TRUE(probe.accepted());  // half-open admits one probe
  EXPECT_EQ(probe.ticket.wait().outcome, service::Outcome::Degraded);
  EXPECT_EQ(svc.breakerState("p"), service::BreakerState::Open);
  EXPECT_EQ(svc.stats().breakerOpens, 2u);  // the reopen is counted
  // Still shedding during the second cooldown.
  EXPECT_FALSE(svc.submitDecompress("p", bad, cfg).accepted());
  svc.shutdown();
}

// The chaos schedule itself: pure, seeded, and exempting.
TEST(ServiceTest, ChaosScheduleIsDeterministicAndExempting) {
  service::ChaosConfig ccfg;
  ccfg.seed = 42;
  ccfg.exemptTenant = "safe";
  const service::SeededChaosSchedule schedule(ccfg);

  u32 faulted = 0;
  for (u64 id = 1; id <= 200; ++id) {
    service::ChaosJobInfo info;
    info.jobId = id;
    info.tenant = "t";
    info.attempt = 0;
    const service::ChaosFault a = schedule.decide(info);
    const service::ChaosFault b = schedule.decide(info);
    EXPECT_EQ(a.mode, b.mode);
    EXPECT_EQ(a.seed, b.seed);
    if (a.mode != service::ChaosFault::Mode::None) ++faulted;

    info.tenant = "safe";  // exempt tenant: never faulted
    EXPECT_EQ(schedule.decide(info).mode, service::ChaosFault::Mode::None);
    info.tenant = "t";
    info.attempt = 1;  // beyond faultedAttempts: retries run clean
    EXPECT_EQ(schedule.decide(info).mode, service::ChaosFault::Mode::None);
  }
  // ~45% of attempts faulted at the default rates; 200 draws cannot
  // plausibly land outside [40, 140].
  EXPECT_GT(faulted, 40u);
  EXPECT_LT(faulted, 140u);

  service::ChaosConfig invalid;
  invalid.bitFlipRate = 0.9;
  invalid.abortRate = 0.9;
  EXPECT_THROW(service::SeededChaosSchedule{invalid}, Error);
}

// CI soak (tools/ci_check.sh runs this filter under ASan): 4 tenants x 200
// jobs with live backpressure, mixed priorities and sprinkled cancels.
TEST(ServiceSoak, FourTenantsTimes200Jobs) {
  service::ServiceConfig scfg;
  scfg.workers = 4;
  scfg.maxQueueDepth = 64;
  scfg.tenantQuotaBytes = u64{8} << 20;
  service::CompressionService svc(scfg);

  const std::vector<std::string> tenants = {"t0", "t1", "t2", "t3"};
  const std::vector<std::string> datasets = {"cesm_atm", "hacc", "jetin",
                                             "cesm_atm"};
  std::vector<service::Ticket> tickets;
  u64 canceled = 0;
  for (u32 j = 0; j < 200; ++j) {
    for (usize t = 0; t < tenants.size(); ++t) {
      const std::vector<f32> data = datagen::generateF32(
          datasets[t], j % datagen::datasetInfo(datasets[t]).numFields,
          256 + 128 * (j % 5));
      for (;;) {
        service::SubmitResult s = svc.submitCompress<f32>(
            tenants[t], std::span<const f32>(data), relConfig(1e-3),
            static_cast<u8>(j % 3));
        if (s.accepted()) {
          if (j % 41 == 0 && s.ticket.cancel()) ++canceled;
          else tickets.push_back(s.ticket);
          break;
        }
        ASSERT_TRUE(s.reason == service::RejectReason::QueueFull ||
                    s.reason == service::RejectReason::QuotaExceeded)
            << s.detail;
        std::this_thread::yield();
      }
    }
  }
  EXPECT_TRUE(svc.shutdown());
  for (const service::Ticket& t : tickets) {
    const service::JobResult& r = t.wait();
    EXPECT_TRUE(r.ok) << r.error;
  }
  const service::ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.completed, tickets.size());
  EXPECT_EQ(stats.completed + canceled, 800u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(svc.queueDepth(), 0u);
}
