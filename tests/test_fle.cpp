// Tests for bit-plane packing and the sign bitmap.
#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/fle.hpp"

namespace cuszp2::core {
namespace {

TEST(Fle, PlaneBytes) {
  EXPECT_EQ(planeBytes(8), 1u);
  EXPECT_EQ(planeBytes(32), 4u);
  EXPECT_EQ(planeBytes(64), 8u);
}

TEST(Fle, ZeroPlanesZeroesOutput) {
  std::vector<u32> vals = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<u32> out(8, 99);
  unpackPlanes(nullptr, 0, out);
  for (u32 v : out) EXPECT_EQ(v, 0u);
  (void)vals;
}

TEST(Fle, SingleBitPlane) {
  const std::vector<u32> vals = {1, 0, 1, 0, 1, 1, 0, 0};
  std::byte buf[1];
  packPlanes(vals, 1, buf);
  // LSB-first within the byte: bit k = element k.
  EXPECT_EQ(std::to_integer<u32>(buf[0]), 0b00110101u);
  std::vector<u32> rec(8);
  unpackPlanes(buf, 1, rec);
  EXPECT_EQ(rec, vals);
}

class FleRoundTripTest
    : public ::testing::TestWithParam<std::tuple<u32, u32>> {};

TEST_P(FleRoundTripTest, PackUnpackIdentity) {
  const auto [blockSize, fl] = GetParam();
  Rng rng(1000 + blockSize * 37 + fl);
  std::vector<u32> vals(blockSize);
  const u32 mask = fl == 32 ? ~0u : ((1u << fl) - 1);
  for (auto& v : vals) v = static_cast<u32>(rng.next()) & mask;

  std::vector<std::byte> buf(static_cast<usize>(fl) *
                             planeBytes(blockSize));
  packPlanes(vals, fl, buf.data());
  std::vector<u32> rec(blockSize);
  unpackPlanes(buf.data(), fl, rec);
  EXPECT_EQ(rec, vals);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FleRoundTripTest,
    ::testing::Combine(::testing::Values<u32>(8, 32, 64, 256),
                       ::testing::Values<u32>(0, 1, 2, 5, 13, 31)));

TEST(Fle, PackedSizeMatchesFixedLength) {
  // The whole point of FLE: fl bits per element, exactly.
  const u32 blockSize = 32;
  for (u32 fl : {1u, 4u, 17u}) {
    EXPECT_EQ(static_cast<usize>(fl) * planeBytes(blockSize),
              fl * blockSize / 8);
  }
}

TEST(Fle, SignsPackAndRead) {
  const std::vector<i32> diffs = {-1, 2, 0, -3, 4, -5, 6, 7,
                                  -8, 9, -10, 11, 12, -13, 14, -15};
  std::vector<std::byte> buf(2);
  packSigns(diffs, buf.data());
  for (usize i = 0; i < diffs.size(); ++i) {
    EXPECT_EQ(signBit(buf.data(), i), diffs[i] < 0) << "i=" << i;
  }
}

TEST(Fle, SignOfZeroIsPositive) {
  const std::vector<i32> diffs(8, 0);
  std::byte buf[1];
  packSigns(diffs, buf);
  EXPECT_EQ(std::to_integer<u32>(buf[0]), 0u);
}

TEST(Fle, PaperExampleThreeBytes) {
  // Paper Fig. 7: 8 diffs with outlier 8 at the head and |tail| <= 1:
  // signs (1 B) + outlier (1 B) + 1 plane (1 B) = 3 bytes.
  const std::vector<u32> absVals = {0 /*outlier removed*/, 1, 0, 1,
                                    1, 0, 1, 0};
  std::byte plane[1];
  packPlanes(absVals, 1, plane);
  std::vector<u32> rec(8);
  unpackPlanes(plane, 1, rec);
  EXPECT_EQ(rec, absVals);
}

}  // namespace
}  // namespace cuszp2::core
