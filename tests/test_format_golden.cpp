// Golden-fixture lock on the serialized stream format.
//
// The fixtures are tiny checked-in streams (hex-embedded below) produced
// by compressing 40 f32 values {0, 0.25, 0.5, ...} at abs bound 0.01 with
// the default config — one version-1 stream and one version-2 stream
// (per-block checksum footer). They pin the byte layout documented in
// docs/FORMAT.md: any change to the writer or the header packing that
// alters the wire format fails here and must come with a format-version
// bump and a FORMAT.md update.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "common/bits.hpp"
#include "core/pipeline.hpp"
#include "core/stream.hpp"

namespace cuszp2 {
namespace {

// cuszp2 compress gold.f32 out.czp2 --abs 0.01            (84 bytes)
constexpr const char* kGoldenV1 =
    "435a503253505a32010001002000000028000000000000007b14ae47e17a843f"
    "000000000000000004a400000000aaaaaaaa00000000fefffffffeffffff0000"
    "00009001aa00000000000000fe000000fe000000";

// cuszp2 compress gold.f32 out.czp2 --abs 0.01 --block-checksum (88 bytes)
constexpr const char* kGoldenV2 =
    "435a503253505a32020001002000000028000000000000007b14ae47e17a843f"
    "000000000000000004a400000000aaaaaaaa00000000fefffffffeffffff0000"
    "00009001aa00000000000000fe000000fe0000004d7cbc81";

// Format-v3 fixtures: the same 40-value input under each pinned pipeline
// (cuszp2 compress gold.f32 out.czp2 --abs 0.01 --pipeline <id>), plus a
// mixed-selection stream. They pin the v3 layout of docs/FORMAT.md: 1-byte
// descriptors (pipeline id folded into the 0x20-0x7F hole of the legacy
// offset byte), the u16 size prefix in front of entropy payloads, the
// dictionary section (8-byte header, Huffman table only when admitted) and
// the unconditional per-block digest footer.

// --pipeline fle (96 bytes)
constexpr const char* kGoldenV3Fle =
    "435a503253505a32030001002000000028000000000000007b14ae47e17a843f"
    "000000000800000004a4000000000000000000000000aaaaaaaa00000000feff"
    "fffffeffffff000000009001aa00000000000000fe000000fe0000004d7cbc81";

// --pipeline huffman (92 bytes; dictBytes = 22 carries the shared table)
constexpr const char* kGoldenV3Huffman =
    "435a503253505a32030001002000000028000000000000007b14ae47e17a843f"
    "000000001600000020200e000000f9ca088304000000011800031a0002200303"
    "0c004e005ad6b5ad6b5ad6b5ad6808002c00f6b5a00000006655b36d";

// --pipeline rle (185 bytes)
constexpr const char* kGoldenV3Rle =
    "435a503253505a32030001002000000028000000000000007b14ae47e17a843f"
    "000000000800000040400000000000000000620020000000001a00001800001a"
    "00001800001a00001800001a00001800001a00001800001a00001800001a0000"
    "1800001a00001800001a00001800001a00001800001a00001800001a00001800"
    "001a00001800001a00001800001a00001800001a00001d0009002003001a0000"
    "1800001a00001800001a00001800001a00000000178e5757d6";

// --pipeline lorenzo-fle (126 bytes)
constexpr const char* kGoldenV3Lorenzo =
    "435a503253505a32030001002000000028000000000000007b14ae47e17a843f"
    "00000000080000006769000000000000000000000000aa00000000000000fe01"
    "0101fe00000000000000000101010001010100fe0000aaaa000000000000fefe"
    "0000feff00000101000000000000000100000100000001000000476bbdf7";

// --pipeline auto on mixedInput() below: the selector picks FLE for the
// all-zero blocks and RLE for the constant-slope blocks (74 bytes).
constexpr const char* kGoldenV3Mixed =
    "435a503253505a32030001002000000080000000000000007b14ae47e17a843f"
    "00000000080000000040004000000000000000000500010004001f0500010001"
    "001f8defbabe8def517c";

std::vector<std::byte> fromHex(const std::string& hex) {
  std::vector<std::byte> out(hex.size() / 2);
  for (usize i = 0; i < out.size(); ++i) {
    out[i] = static_cast<std::byte>(
        std::stoul(hex.substr(2 * i, 2), nullptr, 16));
  }
  return out;
}

std::vector<f32> goldenInput() {
  std::vector<f32> v(40);
  for (usize i = 0; i < v.size(); ++i) v[i] = static_cast<f32>(i) * 0.25f;
  return v;
}

/// 4 blocks of 32 shaped so Auto selection genuinely mixes pipelines:
/// all-zero blocks (FLE encodes them in 0 payload bytes) alternate with
/// constant-slope ramps (one RLE run beats any fixed-length encoding).
/// Values are exact multiples of the 0.02 quantization step, produced the
/// way the decoder dequantizes, so the round trip is bit-identical.
std::vector<f32> mixedInput() {
  std::vector<f32> v;
  for (usize blk = 0; blk < 4; ++blk) {
    i32 q = 0;
    for (usize i = 0; i < 32; ++i) {
      if (blk == 1) q += 2;
      if (blk == 3) q -= 1;
      v.push_back(static_cast<f32>(static_cast<f64>(q) * 0.02));
    }
  }
  return v;
}

u64 readLE64(const std::byte* p) {
  u64 v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | std::to_integer<u64>(p[i]);
  return v;
}

/// Byte-level layout assertions straight from docs/FORMAT.md.
void checkHeaderLayout(const std::vector<std::byte>& s, u8 version) {
  ASSERT_GE(s.size(), core::StreamHeader::kBytes);
  // [0, 8): magic "CZP2SPZ2".
  EXPECT_EQ(std::memcmp(s.data(), "CZP2SPZ2", 8), 0);
  EXPECT_EQ(std::to_integer<u8>(s[8]), version);
  EXPECT_EQ(std::to_integer<u8>(s[9]), 0u);   // precision: f32
  EXPECT_EQ(std::to_integer<u8>(s[10]), 1u);  // mode: outlier
  EXPECT_EQ(std::to_integer<u8>(s[11]), 0u);  // predictor: first-order
  EXPECT_EQ(std::to_integer<u8>(s[12]), 32u); // block size
  EXPECT_EQ(readLE64(s.data() + 16), 40u);    // element count
  EXPECT_EQ(readLE64(s.data() + 24), bitCast<u64>(0.01));  // abs bound
  // [32, 36): stream CRC, 0 = absent under the default config.
  EXPECT_EQ(std::to_integer<u8>(s[32]) | std::to_integer<u8>(s[33]) |
                std::to_integer<u8>(s[34]) | std::to_integer<u8>(s[35]),
            0);
  // Offset bytes begin at 40, one per block.
  EXPECT_EQ(core::StreamHeader::offsetsBegin(), 40u);
}

void checkParsedHeader(const core::StreamHeader& h, bool v2) {
  EXPECT_EQ(h.version, v2 ? core::kFormatVersionV2 : core::kFormatVersion);
  EXPECT_EQ(h.precision, Precision::F32);
  EXPECT_EQ(h.mode, EncodingMode::Outlier);
  EXPECT_EQ(h.predictor, Predictor::FirstOrder);
  EXPECT_EQ(h.blockSize, 32u);
  EXPECT_EQ(h.numElements, 40u);
  EXPECT_EQ(h.absErrorBound, 0.01);
  EXPECT_EQ(h.checksum, 0u);
  EXPECT_EQ(h.numBlocks(), 2u);
  EXPECT_EQ(h.hasBlockChecksums(), v2);
  EXPECT_EQ(h.footerBytes(), v2 ? 4u : 0u);
}

// Dequantization rounds once in f32, so allow the bound plus half an ULP
// of the value (same slack ErrorStats::withinBoundFp uses).
void expectDecodesGoldenInput(const std::vector<f32>& decoded) {
  const auto input = goldenInput();
  ASSERT_EQ(decoded.size(), input.size());
  for (usize i = 0; i < input.size(); ++i) {
    const f64 slack = std::fabs(static_cast<f64>(input[i])) * 6.0e-8;
    EXPECT_NEAR(decoded[i], input[i], 0.01 + slack) << "at " << i;
  }
}

TEST(FormatGolden, V1FixtureParsesAndDecodes) {
  const auto fixture = fromHex(kGoldenV1);
  ASSERT_EQ(fixture.size(), 84u);
  checkHeaderLayout(fixture, 1);
  checkParsedHeader(core::StreamHeader::parse(fixture), /*v2=*/false);

  core::CompressorStream codec(core::Config{.absErrorBound = 0.01});
  expectDecodesGoldenInput(codec.decompress<f32>(fixture).data);
}

TEST(FormatGolden, V2FixtureParsesAndDecodes) {
  const auto fixture = fromHex(kGoldenV2);
  ASSERT_EQ(fixture.size(), 88u);
  checkHeaderLayout(fixture, 2);
  checkParsedHeader(core::StreamHeader::parse(fixture), /*v2=*/true);

  // The v2 payload region is byte-identical to v1 — the footer is purely
  // additive (FORMAT.md: "version 2 appends, never reshapes").
  const auto v1 = fromHex(kGoldenV1);
  EXPECT_EQ(std::memcmp(fixture.data() + core::StreamHeader::kBytes,
                        v1.data() + core::StreamHeader::kBytes,
                        v1.size() - core::StreamHeader::kBytes),
            0);

  core::CompressorStream codec(core::Config{.absErrorBound = 0.01});
  expectDecodesGoldenInput(codec.decompress<f32>(fixture).data);
}

/// Pipeline ids recorded in a v3 stream's descriptor array.
std::vector<core::PipelineId> fixturePipelines(
    const std::vector<std::byte>& s) {
  const auto header = core::StreamHeader::parse(s);
  std::vector<core::PipelineId> ids;
  for (u64 blk = 0; blk < header.numBlocks(); ++blk) {
    ids.push_back(core::V3BlockDesc::unpack(
                      s.data() + core::StreamHeader::offsetsBegin() +
                      blk * core::kV3DescBytes)
                      .pipeline);
  }
  return ids;
}

struct V3Fixture {
  const char* hex;
  core::PipelineMode mode;
  core::PipelineId id;
  u32 dictBytes;
};

const V3Fixture kV3Fixtures[] = {
    {kGoldenV3Fle, core::PipelineMode::Fle, core::PipelineId::Fle, 8},
    {kGoldenV3Huffman, core::PipelineMode::Huffman,
     core::PipelineId::Huffman, 22},
    {kGoldenV3Rle, core::PipelineMode::Rle, core::PipelineId::Rle, 8},
    {kGoldenV3Lorenzo, core::PipelineMode::LorenzoFle,
     core::PipelineId::LorenzoFle, 8},
};

TEST(FormatGolden, V3FixturesParseAndDecodePerPipeline) {
  for (const V3Fixture& fx : kV3Fixtures) {
    const auto fixture = fromHex(fx.hex);
    const auto header = core::StreamHeader::parse(fixture);
    EXPECT_EQ(header.version, core::kFormatVersionV3) << fx.hex;
    EXPECT_EQ(header.numElements, 40u);
    EXPECT_EQ(header.numBlocks(), 2u);
    EXPECT_EQ(header.dictBytes, fx.dictBytes);
    EXPECT_EQ(header.descriptorStride(), 1u);
    EXPECT_TRUE(header.hasBlockChecksums());  // v3 footer is unconditional
    EXPECT_EQ(header.footerBytes(), 4u);
    for (const core::PipelineId id : fixturePipelines(fixture)) {
      EXPECT_EQ(id, fx.id) << core::toString(fx.mode);
    }

    core::CompressorStream codec(core::Config{.absErrorBound = 0.01});
    expectDecodesGoldenInput(codec.decompress<f32>(fixture).data);
  }
}

TEST(FormatGolden, V3MixedFixtureRecordsTwoPipelines) {
  const auto fixture = fromHex(kGoldenV3Mixed);
  const auto header = core::StreamHeader::parse(fixture);
  EXPECT_EQ(header.version, core::kFormatVersionV3);
  EXPECT_EQ(header.numBlocks(), 4u);
  EXPECT_EQ(header.dictBytes, 8u);  // Huffman not admitted: empty table

  const auto ids = fixturePipelines(fixture);
  ASSERT_EQ(ids.size(), 4u);
  EXPECT_EQ(ids[0], core::PipelineId::Fle);
  EXPECT_EQ(ids[1], core::PipelineId::Rle);
  EXPECT_EQ(ids[2], core::PipelineId::Fle);
  EXPECT_EQ(ids[3], core::PipelineId::Rle);

  // The input's values are exact quantization-grid points, so the decode
  // is bit-identical to the input.
  core::CompressorStream codec(core::Config{.absErrorBound = 0.01});
  const auto d = codec.decompress<f32>(fixture);
  const auto input = mixedInput();
  ASSERT_EQ(d.data.size(), input.size());
  EXPECT_EQ(std::memcmp(d.data.data(), input.data(),
                        input.size() * sizeof(f32)),
            0);
}

TEST(FormatGolden, V3WriterStillProducesTheFixtureBytes) {
  const auto input = goldenInput();
  core::CompressorStream codec(core::Config{.absErrorBound = 0.01});
  for (const V3Fixture& fx : kV3Fixtures) {
    core::Config cfg;
    cfg.absErrorBound = 0.01;
    cfg.pipeline = fx.mode;
    codec.reconfigure(cfg);
    const auto c = codec.compress<f32>(std::span<const f32>(input));
    EXPECT_EQ(c.stream, fromHex(fx.hex))
        << core::toString(fx.mode)
        << ": v3 wire format changed — bump the format version and update "
           "docs/FORMAT.md before touching this fixture";
  }

  core::Config cfg;
  cfg.absErrorBound = 0.01;
  cfg.pipeline = core::PipelineMode::Auto;
  codec.reconfigure(cfg);
  const auto mixed = mixedInput();
  const auto c = codec.compress<f32>(std::span<const f32>(mixed));
  EXPECT_EQ(c.stream, fromHex(kGoldenV3Mixed))
      << "v3 mixed-selection output changed — the selector or the wire "
         "format moved; update docs/FORMAT.md and this fixture together";
}

TEST(FormatGolden, WriterStillProducesTheFixtureBytes) {
  const auto input = goldenInput();

  core::Config v1cfg;
  v1cfg.absErrorBound = 0.01;
  core::CompressorStream codec(v1cfg);
  const auto c1 = codec.compress<f32>(std::span<const f32>(input));
  EXPECT_EQ(c1.stream, fromHex(kGoldenV1))
      << "v1 wire format changed — bump the format version and update "
         "docs/FORMAT.md before touching this fixture";

  core::Config v2cfg;
  v2cfg.absErrorBound = 0.01;
  v2cfg.blockChecksums = true;
  codec.reconfigure(v2cfg);
  const auto c2 = codec.compress<f32>(std::span<const f32>(input));
  EXPECT_EQ(c2.stream, fromHex(kGoldenV2))
      << "v2 wire format changed — bump the format version and update "
         "docs/FORMAT.md before touching this fixture";
}

}  // namespace
}  // namespace cuszp2
