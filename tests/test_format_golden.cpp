// Golden-fixture lock on the serialized stream format.
//
// The fixtures are tiny checked-in streams (hex-embedded below) produced
// by compressing 40 f32 values {0, 0.25, 0.5, ...} at abs bound 0.01 with
// the default config — one version-1 stream and one version-2 stream
// (per-block checksum footer). They pin the byte layout documented in
// docs/FORMAT.md: any change to the writer or the header packing that
// alters the wire format fails here and must come with a format-version
// bump and a FORMAT.md update.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "common/bits.hpp"
#include "core/stream.hpp"

namespace cuszp2 {
namespace {

// cuszp2 compress gold.f32 out.czp2 --abs 0.01            (84 bytes)
constexpr const char* kGoldenV1 =
    "435a503253505a32010001002000000028000000000000007b14ae47e17a843f"
    "000000000000000004a400000000aaaaaaaa00000000fefffffffeffffff0000"
    "00009001aa00000000000000fe000000fe000000";

// cuszp2 compress gold.f32 out.czp2 --abs 0.01 --block-checksum (88 bytes)
constexpr const char* kGoldenV2 =
    "435a503253505a32020001002000000028000000000000007b14ae47e17a843f"
    "000000000000000004a400000000aaaaaaaa00000000fefffffffeffffff0000"
    "00009001aa00000000000000fe000000fe0000004d7cbc81";

std::vector<std::byte> fromHex(const std::string& hex) {
  std::vector<std::byte> out(hex.size() / 2);
  for (usize i = 0; i < out.size(); ++i) {
    out[i] = static_cast<std::byte>(
        std::stoul(hex.substr(2 * i, 2), nullptr, 16));
  }
  return out;
}

std::vector<f32> goldenInput() {
  std::vector<f32> v(40);
  for (usize i = 0; i < v.size(); ++i) v[i] = static_cast<f32>(i) * 0.25f;
  return v;
}

u64 readLE64(const std::byte* p) {
  u64 v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | std::to_integer<u64>(p[i]);
  return v;
}

/// Byte-level layout assertions straight from docs/FORMAT.md.
void checkHeaderLayout(const std::vector<std::byte>& s, u8 version) {
  ASSERT_GE(s.size(), core::StreamHeader::kBytes);
  // [0, 8): magic "CZP2SPZ2".
  EXPECT_EQ(std::memcmp(s.data(), "CZP2SPZ2", 8), 0);
  EXPECT_EQ(std::to_integer<u8>(s[8]), version);
  EXPECT_EQ(std::to_integer<u8>(s[9]), 0u);   // precision: f32
  EXPECT_EQ(std::to_integer<u8>(s[10]), 1u);  // mode: outlier
  EXPECT_EQ(std::to_integer<u8>(s[11]), 0u);  // predictor: first-order
  EXPECT_EQ(std::to_integer<u8>(s[12]), 32u); // block size
  EXPECT_EQ(readLE64(s.data() + 16), 40u);    // element count
  EXPECT_EQ(readLE64(s.data() + 24), bitCast<u64>(0.01));  // abs bound
  // [32, 36): stream CRC, 0 = absent under the default config.
  EXPECT_EQ(std::to_integer<u8>(s[32]) | std::to_integer<u8>(s[33]) |
                std::to_integer<u8>(s[34]) | std::to_integer<u8>(s[35]),
            0);
  // Offset bytes begin at 40, one per block.
  EXPECT_EQ(core::StreamHeader::offsetsBegin(), 40u);
}

void checkParsedHeader(const core::StreamHeader& h, bool v2) {
  EXPECT_EQ(h.version, v2 ? core::kFormatVersionV2 : core::kFormatVersion);
  EXPECT_EQ(h.precision, Precision::F32);
  EXPECT_EQ(h.mode, EncodingMode::Outlier);
  EXPECT_EQ(h.predictor, Predictor::FirstOrder);
  EXPECT_EQ(h.blockSize, 32u);
  EXPECT_EQ(h.numElements, 40u);
  EXPECT_EQ(h.absErrorBound, 0.01);
  EXPECT_EQ(h.checksum, 0u);
  EXPECT_EQ(h.numBlocks(), 2u);
  EXPECT_EQ(h.hasBlockChecksums(), v2);
  EXPECT_EQ(h.footerBytes(), v2 ? 4u : 0u);
}

// Dequantization rounds once in f32, so allow the bound plus half an ULP
// of the value (same slack ErrorStats::withinBoundFp uses).
void expectDecodesGoldenInput(const std::vector<f32>& decoded) {
  const auto input = goldenInput();
  ASSERT_EQ(decoded.size(), input.size());
  for (usize i = 0; i < input.size(); ++i) {
    const f64 slack = std::fabs(static_cast<f64>(input[i])) * 6.0e-8;
    EXPECT_NEAR(decoded[i], input[i], 0.01 + slack) << "at " << i;
  }
}

TEST(FormatGolden, V1FixtureParsesAndDecodes) {
  const auto fixture = fromHex(kGoldenV1);
  ASSERT_EQ(fixture.size(), 84u);
  checkHeaderLayout(fixture, 1);
  checkParsedHeader(core::StreamHeader::parse(fixture), /*v2=*/false);

  core::CompressorStream codec(core::Config{.absErrorBound = 0.01});
  expectDecodesGoldenInput(codec.decompress<f32>(fixture).data);
}

TEST(FormatGolden, V2FixtureParsesAndDecodes) {
  const auto fixture = fromHex(kGoldenV2);
  ASSERT_EQ(fixture.size(), 88u);
  checkHeaderLayout(fixture, 2);
  checkParsedHeader(core::StreamHeader::parse(fixture), /*v2=*/true);

  // The v2 payload region is byte-identical to v1 — the footer is purely
  // additive (FORMAT.md: "version 2 appends, never reshapes").
  const auto v1 = fromHex(kGoldenV1);
  EXPECT_EQ(std::memcmp(fixture.data() + core::StreamHeader::kBytes,
                        v1.data() + core::StreamHeader::kBytes,
                        v1.size() - core::StreamHeader::kBytes),
            0);

  core::CompressorStream codec(core::Config{.absErrorBound = 0.01});
  expectDecodesGoldenInput(codec.decompress<f32>(fixture).data);
}

TEST(FormatGolden, WriterStillProducesTheFixtureBytes) {
  const auto input = goldenInput();

  core::Config v1cfg;
  v1cfg.absErrorBound = 0.01;
  core::CompressorStream codec(v1cfg);
  const auto c1 = codec.compress<f32>(std::span<const f32>(input));
  EXPECT_EQ(c1.stream, fromHex(kGoldenV1))
      << "v1 wire format changed — bump the format version and update "
         "docs/FORMAT.md before touching this fixture";

  core::Config v2cfg;
  v2cfg.absErrorBound = 0.01;
  v2cfg.blockChecksums = true;
  codec.reconfigure(v2cfg);
  const auto c2 = codec.compress<f32>(std::span<const f32>(input));
  EXPECT_EQ(c2.stream, fromHex(kGoldenV2))
      << "v2 wire format changed — bump the format version and update "
         "docs/FORMAT.md before touching this fixture";
}

}  // namespace
}  // namespace cuszp2
