// common/simd.hpp: the native (AVX2/NEON) kernels must be bit-identical
// drop-ins for the scalar loops they replace — the stream format, golden
// files and checksums all assume one canonical byte stream regardless of
// CUSZP2_SIMD. Each sweep below compares the native kernel against an
// independently written scalar reference across odd lengths (tails of
// 0..vector_width-1), unaligned base pointers, and — for the bit-plane
// kernels — every fixed-length 0..31.
//
// On hosts without the vector ISA the dispatchers report "not handled"
// and the sweeps skip; the codec-level test still runs (both modes then
// take the scalar path and trivially agree).
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstring>
#include <limits>
#include <span>
#include <vector>

#include "common/bits.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"
#include "common/types.hpp"
#include "core/fle.hpp"
#include "core/quantizer.hpp"
#include "core/stream.hpp"
#include "datagen/fields.hpp"

using namespace cuszp2;

namespace {

/// Restores the dispatch mode on scope exit so test order can't leak an
/// override into unrelated tests.
struct ModeGuard {
  simd::Mode saved = simd::activeMode();
  ~ModeGuard() { simd::setMode(saved); }
};

// Lengths exercising every tail residue of an 8-lane kernel plus a few
// multi-vector sizes.
const usize kLengths[] = {0,  1,  2,  3,  4,  5,   6,   7,   8,   9,
                          15, 16, 17, 31, 32, 33,  63,  64,  65,  100,
                          255, 256, 257, 1000, 1024};

// Base-pointer misalignments (in elements) relative to a fresh vector,
// covering unaligned loads on every sweep.
const usize kOffsets[] = {0, 1, 2, 3, 5};

std::vector<i32> randomResiduals(u64 seed, usize n, i32 magnitude) {
  Rng rng(seed);
  std::vector<i32> v(n);
  for (i32& x : v) {
    x = static_cast<i32>(rng.next() % (2 * static_cast<u64>(magnitude) +
                                          1)) -
        magnitude;
  }
  return v;
}

}  // namespace

TEST(SimdTest, ScalarModeNeverClaimsWork) {
  ModeGuard guard;
  simd::setMode(simd::Mode::Scalar);
  std::vector<i32> v(64, 1);
  std::vector<u32> abs(64);
  u32 m = 0;
  i32 res[64];
  i32 prev = 0;
  std::vector<f32> f(64, 1.0f);
  EXPECT_EQ(simd::quantizeDiffPrefix(1.0, std::span<const f32>(f), res,
                                     &prev),
            0u);
  EXPECT_FALSE(simd::maxAbsU32(v, &m));
  EXPECT_FALSE(simd::absI32(v, abs.data()));
  EXPECT_FALSE(simd::diffI32(v, res));
  EXPECT_FALSE(simd::prefixSumI32(v, res));
}

TEST(SimdTest, QuantizeDiffPrefixMatchesScalarF32) {
  ModeGuard guard;
  simd::setMode(simd::Mode::Native);
  if (!simd::nativeActive()) GTEST_SKIP() << "no vector ISA";
  const f64 eb = 1e-3;
  const f64 recip = 1.0 / (2.0 * eb);
  Rng rng(42);
  for (const usize n : kLengths) {
    for (const usize off : kOffsets) {
      std::vector<f32> buf(off + n);
      for (f32& x : buf) {
        x = static_cast<f32>(rng.uniform() * 2.0 - 1.0);
      }
      const std::span<const f32> values(buf.data() + off, n);

      // Scalar reference: the exact loop quantizeDiffBlock runs.
      std::vector<i32> want(n);
      i32 wantPrev = 0;
      for (usize i = 0; i < n; ++i) {
        const i32 q = static_cast<i32>(core::Quantizer::roundHalfAway(
            static_cast<f64>(values[i]) * recip));
        want[i] = q - wantPrev;
        wantPrev = q;
      }

      std::vector<i32> got(n);
      i32 prev = 0;
      const usize done =
          simd::quantizeDiffPrefix(recip, values, got.data(), &prev);
      ASSERT_NE(done, simd::kLaneFault);
      for (usize i = done; i < n; ++i) {  // caller's scalar tail
        const i32 q = static_cast<i32>(core::Quantizer::roundHalfAway(
            static_cast<f64>(values[i]) * recip));
        got[i] = q - prev;
        prev = q;
      }
      EXPECT_EQ(got, want) << "n=" << n << " off=" << off;
      EXPECT_EQ(prev, wantPrev) << "n=" << n << " off=" << off;
    }
  }
}

TEST(SimdTest, QuantizeDiffPrefixMatchesScalarF64) {
  ModeGuard guard;
  simd::setMode(simd::Mode::Native);
  if (!simd::nativeActive()) GTEST_SKIP() << "no vector ISA";
  const f64 recip = 1.0 / (2.0 * 1e-6);
  Rng rng(43);
  for (const usize n : kLengths) {
    for (const usize off : kOffsets) {
      std::vector<f64> buf(off + n);
      for (f64& x : buf) x = rng.uniform() * 0.5 - 0.25;
      const std::span<const f64> values(buf.data() + off, n);

      std::vector<i32> want(n);
      i32 wantPrev = 0;
      for (usize i = 0; i < n; ++i) {
        const i32 q = static_cast<i32>(
            core::Quantizer::roundHalfAway(values[i] * recip));
        want[i] = q - wantPrev;
        wantPrev = q;
      }

      std::vector<i32> got(n);
      i32 prev = 0;
      const usize done =
          simd::quantizeDiffPrefix(recip, values, got.data(), &prev);
      ASSERT_NE(done, simd::kLaneFault);
      for (usize i = done; i < n; ++i) {
        const i32 q = static_cast<i32>(
            core::Quantizer::roundHalfAway(values[i] * recip));
        got[i] = q - prev;
        prev = q;
      }
      EXPECT_EQ(got, want) << "n=" << n << " off=" << off;
      EXPECT_EQ(prev, wantPrev) << "n=" << n << " off=" << off;
    }
  }
}

TEST(SimdTest, QuantizeDiffPrefixFaultsOnBadLanes) {
  ModeGuard guard;
  simd::setMode(simd::Mode::Native);
  if (!simd::nativeActive()) GTEST_SKIP() << "no vector ISA";
  const f32 bad[] = {std::numeric_limits<f32>::quiet_NaN(),
                     std::numeric_limits<f32>::infinity(),
                     -std::numeric_limits<f32>::infinity(), 1e30f, -1e30f};
  for (const f32 poison : bad) {
    for (usize pos = 0; pos < 8; ++pos) {
      std::vector<f32> values(16, 0.5f);
      values[pos] = poison;
      std::vector<i32> res(values.size());
      i32 prev = 0;
      EXPECT_EQ(simd::quantizeDiffPrefix(
                    1000.0, std::span<const f32>(values), res.data(), &prev),
                simd::kLaneFault)
          << "poison=" << poison << " pos=" << pos;
    }
  }
}

TEST(SimdTest, IntegerKernelsMatchScalar) {
  ModeGuard guard;
  simd::setMode(simd::Mode::Native);
  if (!simd::nativeActive()) GTEST_SKIP() << "no vector ISA";
  const i32 kEdges[] = {0, 1, -1, std::numeric_limits<i32>::max(),
                        std::numeric_limits<i32>::min()};
  u64 seed = 7;
  for (const usize n : kLengths) {
    for (const usize off : kOffsets) {
      std::vector<i32> buf = randomResiduals(seed++, off + n, 1 << 20);
      // Sprinkle the extreme values so abs(INT32_MIN) wrap behavior and
      // saturation-free paths are both covered.
      for (usize i = 0; i < buf.size(); ++i) {
        if (i % 17 == 3) buf[i] = kEdges[i % 5];
      }
      const std::span<const i32> v(buf.data() + off, n);

      u32 gotMax = 0;
      if (simd::maxAbsU32(v, &gotMax)) {
        u32 want = 0;
        for (const i32 x : v) want = std::max(want, absU32(x));
        EXPECT_EQ(gotMax, want) << "maxAbsU32 n=" << n << " off=" << off;
      }

      if (n % 8 == 0 && n > 0) {
        u32 gotTail = 0;
        if (simd::maxAbsTailU32(v, &gotTail)) {
          u32 want = 0;
          for (usize i = 1; i < n; ++i) want = std::max(want, absU32(v[i]));
          EXPECT_EQ(gotTail, want)
              << "maxAbsTailU32 n=" << n << " off=" << off;
        }
      }

      std::vector<u32> gotAbs(n);
      if (simd::absI32(v, gotAbs.data())) {
        for (usize i = 0; i < n; ++i) {
          ASSERT_EQ(gotAbs[i], absU32(v[i]))
              << "absI32 n=" << n << " off=" << off << " i=" << i;
        }
      }

      std::vector<i32> gotDiff(n);
      if (simd::diffI32(v, gotDiff.data())) {
        for (usize i = 0; i < n; ++i) {
          ASSERT_EQ(gotDiff[i], v[i] - (i == 0 ? 0 : v[i - 1]))
              << "diffI32 n=" << n << " off=" << off << " i=" << i;
        }
      }

      std::vector<i32> gotScan(n);
      if (simd::prefixSumI32(v, gotScan.data())) {
        i32 acc = 0;
        for (usize i = 0; i < n; ++i) {
          acc = static_cast<i32>(static_cast<u32>(acc) +
                                 static_cast<u32>(v[i]));
          ASSERT_EQ(gotScan[i], acc)
              << "prefixSumI32 n=" << n << " off=" << off << " i=" << i;
        }
      }
    }
  }
}

TEST(SimdTest, SignAndAbsKernelsMatchScalar) {
  ModeGuard guard;
  simd::setMode(simd::Mode::Native);
  if (!simd::nativeActive()) GTEST_SKIP() << "no vector ISA";
  u64 seed = 11;
  for (const usize n : {usize{8}, usize{16}, usize{32}, usize{64},
                        usize{256}}) {
    for (const usize off : kOffsets) {
      std::vector<i32> buf = randomResiduals(seed++, off + n, 1 << 24);
      buf[off] = std::numeric_limits<i32>::min();  // abs wrap edge
      const std::span<const i32> v(buf.data() + off, n);

      std::vector<std::byte> wantSigns(n / 8);
      for (usize j = 0; j < n / 8; ++j) {
        u32 byte = 0;
        for (u32 k = 0; k < 8; ++k) {
          byte |= (v[j * 8 + k] < 0 ? 1u : 0u) << k;
        }
        wantSigns[j] = static_cast<std::byte>(byte);
      }

      std::vector<std::byte> gotSigns(n / 8);
      if (simd::packSigns(v, gotSigns.data())) {
        EXPECT_EQ(gotSigns, wantSigns)
            << "packSigns n=" << n << " off=" << off;
      }

      std::vector<u32> gotAbs(n);
      std::vector<std::byte> fusedSigns(n / 8);
      if (simd::absAndPackSigns(v, gotAbs.data(), fusedSigns.data())) {
        EXPECT_EQ(fusedSigns, wantSigns)
            << "absAndPackSigns n=" << n << " off=" << off;
        for (usize i = 0; i < n; ++i) {
          ASSERT_EQ(gotAbs[i], absU32(v[i]))
              << "absAndPackSigns abs n=" << n << " i=" << i;
        }
      }

      // applySigns must invert the pair (except the INT32_MIN lane, whose
      // abs is unrepresentable; use representable values for this leg).
      std::vector<u32> absVals(n);
      for (usize i = 0; i < n; ++i) {
        absVals[i] = absU32(v[i] == std::numeric_limits<i32>::min()
                                ? std::numeric_limits<i32>::min() + 1
                                : v[i]);
      }
      std::vector<i32> reconstructed(n);
      if (simd::applySigns(wantSigns.data(), absVals, reconstructed.data())) {
        for (usize i = 0; i < n; ++i) {
          const i32 want = core::signBit(wantSigns.data(), i)
                               ? -static_cast<i32>(absVals[i])
                               : static_cast<i32>(absVals[i]);
          ASSERT_EQ(reconstructed[i], want)
              << "applySigns n=" << n << " i=" << i;
        }
      }
    }
  }
}

TEST(SimdTest, BitPlanePackUnpackAllWidths) {
  ModeGuard guard;
  simd::setMode(simd::Mode::Native);
  Rng rng(99);
  for (u32 fl = 0; fl <= 31; ++fl) {
    for (const usize n : {usize{8}, usize{32}, usize{64}, usize{256}}) {
      std::vector<u32> vals(n);
      const u32 mask = fl == 0 ? 0u : (fl >= 32 ? ~0u : (1u << fl) - 1u);
      for (u32& x : vals) x = static_cast<u32>(rng.next()) & mask;
      if (fl > 0) vals[0] = mask;  // force the top plane to be exercised

      const usize pb = core::planeBytes(static_cast<u32>(n));
      std::vector<std::byte> want(fl * pb);
      core::packPlanesReference(vals, fl, want.data());

      std::vector<std::byte> got(fl * pb, std::byte{0xAA});
      core::packPlanes(vals, fl, got.data());  // dispatches to native
      EXPECT_EQ(got, want) << "packPlanes fl=" << fl << " n=" << n;

      std::vector<u32> back(n, 123u);
      core::unpackPlanes(want.data(), fl, back);
      EXPECT_EQ(back, vals) << "unpackPlanes fl=" << fl << " n=" << n;
    }
  }
}

TEST(SimdTest, DequantizeMatchesScalar) {
  ModeGuard guard;
  simd::setMode(simd::Mode::Native);
  if (!simd::nativeActive()) GTEST_SKIP() << "no vector ISA";
  const f64 twoEb = 2.0 * 1e-3;
  u64 seed = 21;
  for (const usize n : kLengths) {
    for (const usize off : kOffsets) {
      std::vector<i32> buf = randomResiduals(seed++, off + n, 1 << 30);
      const std::span<const i32> q(buf.data() + off, n);

      std::vector<f32> got32(n);
      if (simd::dequantize(q, twoEb, got32.data())) {
        for (usize i = 0; i < n; ++i) {
          const f32 want =
              static_cast<f32>(static_cast<f64>(q[i]) * twoEb);
          ASSERT_EQ(std::bit_cast<u32>(got32[i]), std::bit_cast<u32>(want))
              << "dequantize f32 n=" << n << " i=" << i;
        }
      }

      std::vector<f64> got64(n);
      if (simd::dequantize(q, twoEb, got64.data())) {
        for (usize i = 0; i < n; ++i) {
          const f64 want = static_cast<f64>(q[i]) * twoEb;
          ASSERT_EQ(std::bit_cast<u64>(got64[i]), std::bit_cast<u64>(want))
              << "dequantize f64 n=" << n << " i=" << i;
        }
      }
    }
  }
}

TEST(SimdTest, SumMaskedU64MatchesScalar) {
  ModeGuard guard;
  simd::setMode(simd::Mode::Native);
  if (!simd::nativeActive()) GTEST_SKIP() << "no vector ISA";
  Rng rng(5);
  const u64 masks[] = {0, ~u64{0}, 0xFFFFFFFFull, 0xFFFF00000000ull};
  for (const usize n : kLengths) {
    std::vector<u64> words(n);
    for (u64& w : words) w = rng.next();
    for (const u64 mask : masks) {
      u64 got = 0;
      if (!simd::sumMaskedU64(words, mask, &got)) continue;
      u64 want = 0;
      for (const u64 w : words) want += w & mask;
      EXPECT_EQ(got, want) << "n=" << n << " mask=" << mask;
    }
  }
}

// The end-to-end guarantee the sweeps above exist for: one canonical
// compressed byte stream per input, whatever the dispatch mode.
TEST(SimdTest, CompressedStreamsByteIdenticalAcrossModes) {
  ModeGuard guard;
  core::Config cfg;
  cfg.relErrorBound = 1e-3;
  cfg.checksum = true;
  for (const usize n : {usize{1}, usize{7}, usize{31}, usize{32},
                        usize{33}, usize{100}, usize{1000}, usize{4097}}) {
    const std::vector<f32> data = datagen::generateF32("cesm_atm", 0, n);

    simd::setMode(simd::Mode::Scalar);
    core::CompressorStream scalarCodec(cfg);
    const core::Compressed a =
        scalarCodec.compress<f32>(std::span<const f32>(data));

    simd::setMode(simd::Mode::Native);
    core::CompressorStream nativeCodec(cfg);
    const core::Compressed b =
        nativeCodec.compress<f32>(std::span<const f32>(data));

    ASSERT_EQ(a.stream, b.stream) << "n=" << n;

    // And the decoders agree on the same stream.
    const auto da = scalarCodec.decompress<f32>(a.stream);
    simd::setMode(simd::Mode::Scalar);
    const auto db = nativeCodec.decompress<f32>(b.stream);
    ASSERT_EQ(da.data.size(), db.data.size());
    EXPECT_EQ(std::memcmp(da.data.data(), db.data.data(),
                          da.data.size() * sizeof(f32)),
              0)
        << "n=" << n;
  }
}
