// Tests for the compressed stream header: serialization, validation, and
// corruption detection.
#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "core/format.hpp"

namespace cuszp2::core {
namespace {

StreamHeader sample() {
  StreamHeader h;
  h.precision = Precision::F64;
  h.mode = EncodingMode::Outlier;
  h.blockSize = 32;
  h.numElements = 123456789;
  h.absErrorBound = 1.25e-4;
  return h;
}

std::vector<std::byte> serializeToStream(const StreamHeader& h) {
  std::vector<std::byte> bytes(h.payloadBegin(), std::byte{0});
  h.serialize(bytes.data());
  return bytes;
}

TEST(StreamHeader, RoundTrip) {
  const auto h = sample();
  const auto bytes = serializeToStream(h);
  const auto r = StreamHeader::parse(bytes);
  EXPECT_EQ(r.precision, h.precision);
  EXPECT_EQ(r.mode, h.mode);
  EXPECT_EQ(r.blockSize, h.blockSize);
  EXPECT_EQ(r.numElements, h.numElements);
  EXPECT_DOUBLE_EQ(r.absErrorBound, h.absErrorBound);
}

TEST(StreamHeader, DerivedQuantities) {
  StreamHeader h;
  h.precision = Precision::F32;
  h.blockSize = 32;
  h.numElements = 100;
  h.absErrorBound = 1.0;
  EXPECT_EQ(h.numBlocks(), 4u);  // ceil(100/32)
  EXPECT_EQ(h.originalBytes(), 400u);
  EXPECT_EQ(h.payloadBegin(), StreamHeader::kBytes + 4u);
  h.precision = Precision::F64;
  EXPECT_EQ(h.originalBytes(), 800u);
}

TEST(StreamHeader, TruncatedStreamThrows) {
  const auto bytes = serializeToStream(sample());
  EXPECT_THROW(StreamHeader::parse(
                   ConstByteSpan(bytes.data(), StreamHeader::kBytes - 1)),
               Error);
  EXPECT_THROW(StreamHeader::parse(ConstByteSpan(bytes.data(), 0)), Error);
}

TEST(StreamHeader, BadMagicThrows) {
  auto bytes = serializeToStream(sample());
  bytes[0] = std::byte{0x00};
  EXPECT_THROW(StreamHeader::parse(bytes), Error);
}

TEST(StreamHeader, BadVersionThrows) {
  auto bytes = serializeToStream(sample());
  bytes[8] = std::byte{0xFF};  // version lives in meta byte 0
  EXPECT_THROW(StreamHeader::parse(bytes), Error);
}

TEST(StreamHeader, BadPrecisionThrows) {
  auto bytes = serializeToStream(sample());
  bytes[9] = std::byte{7};  // precision tag
  EXPECT_THROW(StreamHeader::parse(bytes), Error);
}

TEST(StreamHeader, BadModeThrows) {
  auto bytes = serializeToStream(sample());
  bytes[10] = std::byte{9};  // mode tag
  EXPECT_THROW(StreamHeader::parse(bytes), Error);
}

TEST(StreamHeader, BadBlockSizeThrows) {
  auto h = sample();
  h.blockSize = 13;
  auto bytes = serializeToStream(sample());
  h.serialize(bytes.data());
  EXPECT_THROW(StreamHeader::parse(bytes), Error);
}

TEST(StreamHeader, NonPositiveErrorBoundThrows) {
  auto h = sample();
  h.absErrorBound = 0.0;
  std::vector<std::byte> bytes(StreamHeader::kBytes + h.numBlocks(),
                               std::byte{0});
  h.serialize(bytes.data());
  EXPECT_THROW(StreamHeader::parse(bytes), Error);
}

TEST(StreamHeader, StreamShorterThanOffsetsThrows) {
  const auto h = sample();
  std::vector<std::byte> bytes(StreamHeader::kBytes + 10, std::byte{0});
  h.serialize(bytes.data());  // numBlocks >> 10
  EXPECT_THROW(StreamHeader::parse(bytes), Error);
}

}  // namespace
}  // namespace cuszp2::core
