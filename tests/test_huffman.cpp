// Tests for the canonical Huffman codec.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "entropy/huffman.hpp"

namespace cuszp2::entropy {
namespace {

std::vector<u16> roundTrip(const std::vector<u16>& symbols, u32 alphabet) {
  const auto enc = HuffmanCodec::encode(symbols, alphabet);
  return HuffmanCodec::decode(enc);
}

TEST(Huffman, EmptyInput) {
  const std::vector<u16> symbols;
  EXPECT_EQ(roundTrip(symbols, 16), symbols);
}

TEST(Huffman, SingleSymbolRepeated) {
  const std::vector<u16> symbols(100, 7);
  EXPECT_EQ(roundTrip(symbols, 16), symbols);
  const auto enc = HuffmanCodec::encode(symbols, 16);
  // 1-bit codes -> about 100 bits of payload.
  EXPECT_LE(enc.payload.size(), 14u);
}

TEST(Huffman, TwoSymbols) {
  std::vector<u16> symbols;
  for (int i = 0; i < 50; ++i) {
    symbols.push_back(static_cast<u16>(i % 2));
  }
  EXPECT_EQ(roundTrip(symbols, 2), symbols);
}

TEST(Huffman, SkewedDistributionCompresses) {
  Rng rng(3);
  std::vector<u16> symbols;
  for (int i = 0; i < 20000; ++i) {
    // ~95% zeros.
    symbols.push_back(rng.uniform() < 0.95
                          ? 0
                          : static_cast<u16>(rng.uniformInt(256)));
  }
  const auto enc = HuffmanCodec::encode(symbols, 256);
  EXPECT_EQ(HuffmanCodec::decode(enc), symbols);
  // Entropy ~0.3 bits + rare 8-bit symbols; far below 1 byte per symbol.
  EXPECT_LT(enc.payload.size(), symbols.size() / 2);
}

TEST(Huffman, UniformDistributionRoundTrips) {
  Rng rng(4);
  std::vector<u16> symbols;
  for (int i = 0; i < 10000; ++i) {
    symbols.push_back(static_cast<u16>(rng.uniformInt(1000)));
  }
  EXPECT_EQ(roundTrip(symbols, 1000), symbols);
}

TEST(Huffman, FullU16AlphabetRoundTrips) {
  Rng rng(5);
  std::vector<u16> symbols;
  for (int i = 0; i < 30000; ++i) {
    symbols.push_back(static_cast<u16>(rng.uniformInt(65536)));
  }
  EXPECT_EQ(roundTrip(symbols, 65536), symbols);
}

TEST(Huffman, RejectsOutOfRangeSymbol) {
  const std::vector<u16> symbols = {5};
  EXPECT_THROW(HuffmanCodec::encode(symbols, 4), Error);
}

TEST(Huffman, CanonicalCodesArePrefixFree) {
  Rng rng(6);
  std::vector<u16> symbols;
  for (int i = 0; i < 5000; ++i) {
    symbols.push_back(static_cast<u16>(rng.uniformInt(64)));
  }
  const auto enc = HuffmanCodec::encode(symbols, 64);
  const auto codes = HuffmanCodec::canonicalCodes(enc.codeLengths);
  for (usize a = 0; a < codes.size(); ++a) {
    if (enc.codeLengths[a] == 0) continue;
    for (usize b = 0; b < codes.size(); ++b) {
      if (a == b || enc.codeLengths[b] == 0) continue;
      if (enc.codeLengths[a] > enc.codeLengths[b]) continue;
      // code a must not be a prefix of code b.
      const u32 shifted =
          codes[b] >> (enc.codeLengths[b] - enc.codeLengths[a]);
      EXPECT_FALSE(shifted == codes[a] &&
                   enc.codeLengths[a] < enc.codeLengths[b])
          << "symbol " << a << " is a prefix of symbol " << b;
    }
  }
}

TEST(Huffman, KraftInequalityHolds) {
  Rng rng(8);
  std::vector<u16> symbols;
  for (int i = 0; i < 5000; ++i) {
    symbols.push_back(static_cast<u16>(rng.uniformInt(300)));
  }
  const auto enc = HuffmanCodec::encode(symbols, 300);
  f64 kraft = 0.0;
  for (u8 l : enc.codeLengths) {
    if (l > 0) kraft += std::pow(2.0, -static_cast<f64>(l));
  }
  EXPECT_LE(kraft, 1.0 + 1e-9);
}

TEST(Huffman, SizeTracksEntropy) {
  // Four symbols with probabilities 1/2, 1/4, 1/8, 1/8 -> entropy 1.75 bits.
  std::vector<u16> symbols;
  for (int i = 0; i < 8000; ++i) {
    const int r = i % 8;
    symbols.push_back(r < 4 ? 0 : (r < 6 ? 1 : (r < 7 ? 2 : 3)));
  }
  const auto enc = HuffmanCodec::encode(symbols, 4);
  const f64 bitsPerSymbol =
      static_cast<f64>(enc.payload.size()) * 8.0 / symbols.size();
  EXPECT_NEAR(bitsPerSymbol, 1.75, 0.05);
  EXPECT_EQ(HuffmanCodec::decode(enc), symbols);
}

}  // namespace
}  // namespace cuszp2::entropy
