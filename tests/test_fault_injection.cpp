// Failure-path tests: exceptions inside simulated kernels must abort the
// whole launch cleanly (no deadlock, no std::terminate, root cause
// preserved), and corrupted compressed streams must be rejected or decoded
// defensively — never crash or read out of bounds.
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <chrono>
#include <cstring>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/compressor.hpp"
#include "core/lorenzo_nd.hpp"
#include "core/quantizer.hpp"
#include "core/segmented.hpp"
#include "datagen/fields.hpp"
#include "gpusim/launcher.hpp"
#include "scan/lookback.hpp"

namespace cuszp2 {
namespace {

// ---- Launcher abort propagation --------------------------------------------

TEST(FaultInjection, ExceptionInBlockIsRethrown) {
  gpusim::Launcher launcher;
  EXPECT_THROW(launcher.launch(16,
                               [](gpusim::BlockCtx& ctx) {
                                 if (ctx.blockIdx == 7) {
                                   throw Error("boom");
                                 }
                               }),
               Error);
}

TEST(FaultInjection, RootCauseIsPreservedOverAbortErrors) {
  gpusim::Launcher launcher;
  try {
    launcher.launch(8, [](gpusim::BlockCtx& ctx) {
      if (ctx.blockIdx == 3) throw Error("root cause");
    });
    FAIL() << "expected an exception";
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "root cause");
  }
}

// A block throws while a later block spin-waits on its lookback publish:
// the abort flag must release the spinner (this deadlocks without abort
// propagation).
TEST(FaultInjection, LookbackSpinnersUnwindOnAbort) {
  gpusim::Launcher launcher;
  scan::LookbackState state(64);
  EXPECT_THROW(
      launcher.launch(
          64,
          [&](gpusim::BlockCtx& ctx) {
            if (ctx.blockIdx == 10) {
              throw Error("failing block");  // never publishes
            }
            state.processTile(ctx.blockIdx, 1, ctx.sync, ctx.mem);
          },
          1),
      Error);
}

TEST(FaultInjection, LauncherIsReusableAfterAbort) {
  gpusim::Launcher launcher;
  EXPECT_THROW(
      launcher.launch(4, [](gpusim::BlockCtx&) { throw Error("x"); }),
      Error);
  std::atomic<int> count{0};
  launcher.launch(4, [&](gpusim::BlockCtx&) { ++count; });
  EXPECT_EQ(count.load(), 4);
}

TEST(FaultInjection, QuantizerOverflowAbortsCompressionCleanly) {
  core::Config cfg;
  cfg.absErrorBound = 1e-15;  // far too tight for the data range
  const core::Compressor comp(cfg);
  std::vector<f32> data(4096, 1.0e6f);
  EXPECT_THROW(comp.compress<f32>(data), Error);
}

// ---- Stream corruption fuzzing ---------------------------------------------

struct CorpusFixture {
  std::vector<f32> data;
  std::vector<std::byte> stream;

  CorpusFixture() {
    data = datagen::generateF32("scale", 2, 1 << 12);
    core::Config cfg;
    cfg.relErrorBound = 1e-3;
    stream = core::Compressor(cfg).compress<f32>(data).stream;
  }
};

// Any single-byte corruption of the offset array must either throw
// cuszp2::Error or produce a (wrong, but bounded) decode — never crash,
// hang, or read out of bounds.
TEST(FaultInjection, FuzzOffsetBytes) {
  const CorpusFixture fx;
  core::Config cfg;
  cfg.relErrorBound = 1e-3;
  const core::Compressor comp(cfg);
  const auto header = core::StreamHeader::parse(fx.stream);
  Rng rng(42);
  for (int trial = 0; trial < 200; ++trial) {
    auto corrupted = fx.stream;
    const usize pos = core::StreamHeader::offsetsBegin() +
                      rng.uniformInt(header.numBlocks());
    corrupted[pos] ^= static_cast<std::byte>(1u << rng.uniformInt(8));
    try {
      const auto d = comp.decompress<f32>(corrupted);
      EXPECT_EQ(d.data.size(), fx.data.size());
    } catch (const Error&) {
      // Rejection is an acceptable outcome.
    }
  }
}

// Same for payload bytes: corrupt values decode to wrong numbers, but the
// decoder must stay in bounds.
TEST(FaultInjection, FuzzPayloadBytes) {
  const CorpusFixture fx;
  core::Config cfg;
  cfg.relErrorBound = 1e-3;
  const core::Compressor comp(cfg);
  const auto header = core::StreamHeader::parse(fx.stream);
  Rng rng(43);
  const usize payloadBegin = header.payloadBegin();
  for (int trial = 0; trial < 200; ++trial) {
    auto corrupted = fx.stream;
    const usize pos =
        payloadBegin + rng.uniformInt(corrupted.size() - payloadBegin);
    corrupted[pos] ^= static_cast<std::byte>(1u << rng.uniformInt(8));
    try {
      const auto d = comp.decompress<f32>(corrupted);
      EXPECT_EQ(d.data.size(), fx.data.size());
    } catch (const Error&) {
    }
  }
}

// Random truncations anywhere in the stream.
TEST(FaultInjection, FuzzTruncation) {
  const CorpusFixture fx;
  core::Config cfg;
  cfg.relErrorBound = 1e-3;
  const core::Compressor comp(cfg);
  Rng rng(44);
  for (int trial = 0; trial < 100; ++trial) {
    auto truncated = fx.stream;
    truncated.resize(rng.uniformInt(truncated.size()));
    try {
      (void)comp.decompress<f32>(truncated);
    } catch (const Error&) {
    }
  }
}

// Header-field fuzzing: flipped header bytes must be rejected by parse or
// decode, not trusted.
TEST(FaultInjection, FuzzHeaderBytes) {
  const CorpusFixture fx;
  core::Config cfg;
  cfg.relErrorBound = 1e-3;
  const core::Compressor comp(cfg);
  Rng rng(45);
  for (int trial = 0; trial < 200; ++trial) {
    auto corrupted = fx.stream;
    const usize pos = rng.uniformInt(core::StreamHeader::kBytes);
    corrupted[pos] ^= static_cast<std::byte>(1u << rng.uniformInt(8));
    try {
      (void)comp.decompress<f32>(corrupted);
    } catch (const Error&) {
    }
  }
}

// Pure random garbage must never crash the parser.
TEST(FaultInjection, FuzzGarbageStreams) {
  core::Config cfg;
  cfg.relErrorBound = 1e-3;
  const core::Compressor comp(cfg);
  Rng rng(46);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::byte> junk(rng.uniformInt(512));
    for (auto& b : junk) {
      b = static_cast<std::byte>(rng.uniformInt(256));
    }
    EXPECT_THROW((void)comp.decompress<f32>(junk), Error) << trial;
  }
}

// With checksums on, *every* corruption (not just structural ones) must be
// detected.
TEST(FaultInjection, ChecksumCatchesAllPayloadCorruption) {
  const auto data = datagen::generateF32("scale", 2, 1 << 12);
  core::Config cfg;
  cfg.relErrorBound = 1e-3;
  cfg.checksum = true;
  const core::Compressor comp(cfg);
  const auto c = comp.compress<f32>(data);
  Rng rng(47);
  for (int trial = 0; trial < 100; ++trial) {
    auto corrupted = c.stream;
    const usize pos =
        core::StreamHeader::offsetsBegin() +
        rng.uniformInt(corrupted.size() - core::StreamHeader::offsetsBegin());
    corrupted[pos] ^= static_cast<std::byte>(1u << rng.uniformInt(8));
    EXPECT_THROW((void)comp.decompress<f32>(corrupted), Error) << trial;
  }
}

// ND streams: corrupted headers/payloads must be rejected or decoded in
// bounds, never crash.
TEST(FaultInjection, FuzzNdStreams) {
  const core::Dims3 grid{24, 12, 8};
  const auto data = datagen::generateF32("rtm", 1, grid.count());
  core::NdConfig cfg;
  cfg.relErrorBound = 1e-3;
  const core::NdCompressor comp(cfg);
  const auto c = comp.compress<f32>(data, grid);
  Rng rng(48);
  for (int trial = 0; trial < 150; ++trial) {
    auto corrupted = c.stream;
    const usize pos = rng.uniformInt(corrupted.size());
    corrupted[pos] ^= static_cast<std::byte>(1u << rng.uniformInt(8));
    try {
      const auto rec = comp.decompress<f32>(corrupted);
      EXPECT_EQ(rec.size(), data.size());
    } catch (const Error&) {
    }
  }
}

// ---- Seeded soft-error injection + detect-and-retry ------------------------

TEST(FaultPlan, InjectionIsSeededAndDeterministic) {
  std::vector<std::byte> target(1024, std::byte{0});
  gpusim::FaultPlan plan;
  plan.seed = 7;
  plan.triggerLaunch = 0;
  plan.bitFlips = 8;

  const auto runOnce = [&] {
    std::fill(target.begin(), target.end(), std::byte{0});
    gpusim::Launcher launcher;
    launcher.setFaultPlan(plan);
    const auto result =
        launcher.launch(4, [](gpusim::BlockCtx&) {}, 0, target);
    EXPECT_EQ(result.injectedBitFlips, plan.bitFlips);
    return target;
  };
  const auto first = runOnce();
  const auto second = runOnce();
  EXPECT_EQ(first, second);  // same seed -> same damaged bytes

  u32 flippedBits = 0;
  for (const auto b : first) {
    flippedBits += std::popcount(std::to_integer<u32>(b));
  }
  EXPECT_GT(flippedBits, 0u);
  EXPECT_LE(flippedBits, plan.bitFlips);  // collisions can cancel
}

TEST(FaultPlan, FiresOnlyOnTriggerLaunch) {
  std::vector<std::byte> target(256, std::byte{0});
  gpusim::Launcher launcher;
  gpusim::FaultPlan plan;
  plan.triggerLaunch = 1;
  plan.bitFlips = 4;
  launcher.setFaultPlan(plan);

  auto r = launcher.launch(2, [](gpusim::BlockCtx&) {}, 0, target);
  EXPECT_EQ(r.injectedBitFlips, 0u);  // launch 0: not yet
  r = launcher.launch(2, [](gpusim::BlockCtx&) {}, 0, target);
  EXPECT_EQ(r.injectedBitFlips, 4u);  // launch 1: fires
  r = launcher.launch(2, [](gpusim::BlockCtx&) {}, 0, target);
  EXPECT_EQ(r.injectedBitFlips, 0u);  // launch 2: non-sticky, disarmed
}

struct RetryFixture {
  std::vector<f32> data = datagen::generateF32("scale", 2, 1 << 12);
  core::CompressorStream stream;

  RetryFixture() : stream(makeConfig()) {}

  static core::Config makeConfig() {
    core::Config cfg;
    cfg.absErrorBound = 1e-2;
    cfg.checksum = true;
    cfg.blockChecksums = true;
    cfg.faultRetries = 2;
    return cfg;
  }

  /// Arms `plan` to fire on the next launch issued through the stream.
  void armNext(gpusim::FaultPlan plan) {
    plan.triggerLaunch = stream.launcher().launchCount();
    stream.launcher().setFaultPlan(plan);
  }
};

// Acceptance path: a seeded bit-flip lands in decompression output, the
// post-launch write-digest check catches it, and one relaunch absorbs it.
// Decompression faults always hit digest-covered bytes (the target is
// exactly the output array), so detection is deterministic.
TEST(FaultPlan, DecompressRetryAbsorbsBitFlips) {
  RetryFixture fx;
  const auto c = fx.stream.compress<f32>(fx.data);
  const auto clean = fx.stream.decompress<f32>(c.stream);
  ASSERT_EQ(fx.stream.faultsDetected(), 0u);

  gpusim::FaultPlan plan;
  plan.seed = 5;
  plan.bitFlips = 3;
  fx.armNext(plan);
  const auto retried = fx.stream.decompress<f32>(c.stream);
  fx.stream.launcher().clearFaultPlan();

  EXPECT_EQ(0, std::memcmp(retried.data.data(), clean.data.data(),
                           clean.data.size() * sizeof(f32)));
  EXPECT_EQ(fx.stream.faultsDetected(), 1u);
  EXPECT_EQ(fx.stream.faultRelaunches(), 1u);
}

// Same drill on the compression side: flips land in the staged stream
// bytes; when one hits the offset/payload region the digests disagree and
// the relaunch reproduces the original stream byte-identically.
TEST(FaultPlan, CompressRetryReproducesStream) {
  RetryFixture fx;
  const auto reference = fx.stream.compress<f32>(fx.data);

  gpusim::FaultPlan plan;
  plan.seed = 11;
  plan.bitFlips = 64;  // enough to hit used bytes with certainty
  fx.armNext(plan);
  const auto retried = fx.stream.compress<f32>(fx.data);
  fx.stream.launcher().clearFaultPlan();

  EXPECT_EQ(retried.stream, reference.stream);
  EXPECT_GE(fx.stream.faultsDetected(), 1u);
  EXPECT_EQ(fx.stream.faultsDetected(), fx.stream.faultRelaunches());
  // The retried stream passes strict (checksummed) decompression.
  const auto d = fx.stream.decompress<f32>(retried.stream);
  EXPECT_EQ(d.data.size(), fx.data.size());
}

// Aborted-kernel fault mode: the grid throws on the trigger launch; the
// retry policy treats it like a detected fault and relaunches.
TEST(FaultPlan, AbortedLaunchIsRetried) {
  RetryFixture fx;
  const auto c = fx.stream.compress<f32>(fx.data);
  const auto clean = fx.stream.decompress<f32>(c.stream);

  gpusim::FaultPlan plan;
  plan.abortBlock = 0;
  fx.armNext(plan);
  const auto retried = fx.stream.decompress<f32>(c.stream);
  fx.stream.launcher().clearFaultPlan();

  EXPECT_EQ(retried.data, clean.data);
  EXPECT_EQ(fx.stream.faultsDetected(), 1u);
  EXPECT_EQ(fx.stream.faultRelaunches(), 1u);
}

// Sticky faults outlast the retry budget: the Error must propagate and the
// counters must show every attempt was made.
TEST(FaultPlan, StickyFaultExhaustsRetryBudget) {
  core::Config cfg = RetryFixture::makeConfig();
  cfg.faultRetries = 1;
  core::CompressorStream stream(cfg);
  const auto data = datagen::generateF32("scale", 2, 1 << 12);
  const auto c = stream.compress<f32>(data);

  gpusim::FaultPlan plan;
  plan.abortBlock = 0;  // aborts are detected on every attempt
  plan.sticky = true;
  plan.triggerLaunch = stream.launcher().launchCount();
  stream.launcher().setFaultPlan(plan);
  EXPECT_THROW((void)stream.decompress<f32>(c.stream), Error);
  stream.launcher().clearFaultPlan();

  EXPECT_EQ(stream.faultsDetected(), 2u);  // initial try + 1 retry
  EXPECT_EQ(stream.faultRelaunches(), 1u);

  // The stream stays usable once the plan is disarmed.
  const auto d = stream.decompress<f32>(c.stream);
  EXPECT_EQ(d.data.size(), data.size());
}

// With no retry budget there is no verification pass and no fault target:
// the kernel is simply not registered for injection.
TEST(FaultPlan, NoBudgetMeansNoFaultTarget) {
  core::Config cfg = RetryFixture::makeConfig();
  cfg.faultRetries = 0;
  core::CompressorStream stream(cfg);
  const auto data = datagen::generateF32("scale", 2, 1 << 12);
  const auto c = stream.compress<f32>(data);
  const auto clean = stream.decompress<f32>(c.stream);

  gpusim::FaultPlan plan;
  plan.bitFlips = 16;
  plan.triggerLaunch = stream.launcher().launchCount();
  plan.sticky = true;
  stream.launcher().setFaultPlan(plan);
  const auto d = stream.decompress<f32>(c.stream);
  stream.launcher().clearFaultPlan();
  EXPECT_EQ(d.data, clean.data);
  EXPECT_EQ(stream.faultsDetected(), 0u);
  EXPECT_EQ(stream.faultRelaunches(), 0u);
}

// ---- Latency & liveness faults (stall / wedge / arena exhaustion) ----------

// A kernel-stall fault delays the trigger launch by stallTicks model ticks
// but must not change its output: liveness recovery (the service watchdog)
// is exercised elsewhere; here the launch merely takes visibly longer.
TEST(FaultPlan, StallDelaysTriggerLaunch) {
  RetryFixture fx;
  const auto reference = fx.stream.compress<f32>(fx.data);

  gpusim::FaultPlan plan;
  plan.stallTicks = 120;  // 120 ms: far above a clean tiny compress
  fx.armNext(plan);
  const auto t0 = std::chrono::steady_clock::now();
  const auto stalled = fx.stream.compress<f32>(fx.data);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  fx.stream.launcher().clearFaultPlan();

  EXPECT_EQ(stalled.stream, reference.stream);
  EXPECT_GE(elapsed.count(), 100);
  EXPECT_EQ(fx.stream.faultsDetected(), 0u);  // slow, not corrupt
}

// A worker-wedge fault parks the pool thread running the grid's first task.
// With more than one pool worker the rest of the grid keeps draining and
// the launch completes (slowly) with clean output.
TEST(FaultPlan, WedgeDelaysPoolDrainButCompletes) {
  RetryFixture fx;
  const auto c = fx.stream.compress<f32>(fx.data);
  const auto clean = fx.stream.decompress<f32>(c.stream);

  gpusim::FaultPlan plan;
  plan.wedgeTicks = 120;
  fx.armNext(plan);
  const auto t0 = std::chrono::steady_clock::now();
  const auto wedged = fx.stream.decompress<f32>(c.stream);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  fx.stream.launcher().clearFaultPlan();

  EXPECT_EQ(wedged.data, clean.data);
  EXPECT_GE(elapsed.count(), 100);
  EXPECT_EQ(fx.stream.faultsDetected(), 0u);
}

// Arena-exhaustion fault: the stream's next operation fails its scratch
// allocation with a typed Error; the fault is consume-once, so the retry
// (here: the caller's second call) runs clean and the stream recovers.
TEST(FaultPlan, ArenaExhaustionFailsOnceThenRecovers) {
  RetryFixture fx;
  const auto reference = fx.stream.compress<f32>(fx.data);

  gpusim::FaultPlan plan;
  plan.arenaBudgetBytes = 256;  // below any real scratch footprint
  fx.armNext(plan);
  EXPECT_THROW((void)fx.stream.compress<f32>(fx.data), Error);

  const auto retried = fx.stream.compress<f32>(fx.data);
  fx.stream.launcher().clearFaultPlan();
  EXPECT_EQ(retried.stream, reference.stream);
}

// Sticky arena exhaustion keeps refusing until the plan is cleared.
TEST(FaultPlan, StickyArenaExhaustionPersistsUntilCleared) {
  RetryFixture fx;
  gpusim::FaultPlan plan;
  plan.arenaBudgetBytes = 256;
  plan.sticky = true;
  fx.armNext(plan);
  EXPECT_THROW((void)fx.stream.compress<f32>(fx.data), Error);
  EXPECT_THROW((void)fx.stream.compress<f32>(fx.data), Error);
  fx.stream.launcher().clearFaultPlan();
  const auto ok = fx.stream.compress<f32>(fx.data);
  EXPECT_GT(ok.stream.size(), 0u);
}

// The salvage decoder keeps its never-throws contract even with a pending
// arena-exhaustion fault: it clears (rather than consumes) the budget.
TEST(FaultPlan, SalvageDecodeIgnoresArenaExhaustionFault) {
  RetryFixture fx;
  const auto c = fx.stream.compress<f32>(fx.data);

  gpusim::FaultPlan plan;
  plan.arenaBudgetBytes = 256;
  plan.sticky = true;
  fx.armNext(plan);
  const auto salvaged = fx.stream.decompressResilient<f32>(c.stream);
  fx.stream.launcher().clearFaultPlan();
  EXPECT_TRUE(salvaged.report.clean());
  EXPECT_EQ(salvaged.data.size(), fx.data.size());
}

// Segmented containers: corrupted tables of contents or segment bytes.
TEST(FaultInjection, FuzzSegmentedContainers) {
  core::Config cfg;
  cfg.absErrorBound = 1e-2;
  core::SegmentedCompressor<f32> sc(cfg, 512);
  sc.append(datagen::generateF32("scale", 0, 2000));
  const auto container = sc.finish();
  Rng rng(49);
  for (int trial = 0; trial < 150; ++trial) {
    auto corrupted = container;
    const usize pos = rng.uniformInt(corrupted.size());
    corrupted[pos] ^= static_cast<std::byte>(1u << rng.uniformInt(8));
    try {
      core::SegmentedReader<f32> reader(corrupted);
      for (usize s = 0; s < reader.segmentCount(); ++s) {
        (void)reader.segment(s);
      }
    } catch (const Error&) {
    }
  }
}

}  // namespace
}  // namespace cuszp2
