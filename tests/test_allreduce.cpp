// Tests for the simulated ring allreduce with inline compression.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/compressor.hpp"
#include "distributed/allreduce.hpp"

namespace cuszp2::distributed {
namespace {

std::vector<std::vector<f32>> makeGradients(u32 devices, usize n, u64 seed) {
  Rng rng(seed);
  std::vector<std::vector<f32>> grads(devices);
  for (auto& g : grads) {
    g.resize(n);
    for (auto& v : g) v = static_cast<f32>(rng.normal(0.0, 1e-2));
  }
  return grads;
}

ExchangeCodec cuszp2Codec(f64 absEb) {
  ExchangeCodec codec;
  codec.name = "cuSZp2-O";
  codec.transform = [absEb](std::span<const f32> values,
                            std::vector<f32>& reconstructed, u64& wireBytes,
                            f64& codecSeconds) {
    core::Config cfg;
    cfg.absErrorBound = absEb;
    const core::Compressor comp(cfg);
    const auto c = comp.compress<f32>(values);
    auto d = comp.decompress<f32>(c.stream);
    wireBytes = c.stream.size();
    codecSeconds =
        c.profile.endToEndSeconds + d.profile.endToEndSeconds;
    reconstructed = std::move(d.data);
  };
  return codec;
}

TEST(Allreduce, RawMatchesExactSum) {
  for (u32 devices : {2u, 3u, 4u, 8u}) {
    const auto grads = makeGradients(devices, 64 * devices, devices);
    const RingAllreduce ring(devices, LinkSpec{});
    const auto result = ring.run(grads, rawCodec());
    const auto expected = RingAllreduce::exactSum(grads);
    ASSERT_EQ(result.reduced.size(), expected.size());
    for (usize i = 0; i < expected.size(); ++i) {
      ASSERT_NEAR(result.reduced[i], expected[i], 1e-5) << i;
    }
    EXPECT_DOUBLE_EQ(result.errorBound, 0.0);
  }
}

TEST(Allreduce, CompressedStaysWithinReportedBound) {
  const f64 eb = 1e-4;
  for (u32 devices : {2u, 4u}) {
    const auto grads = makeGradients(devices, 256 * devices, 77 + devices);
    const RingAllreduce ring(devices, LinkSpec{});
    const auto result = ring.run(grads, cuszp2Codec(eb), eb);
    const auto expected = RingAllreduce::exactSum(grads);
    EXPECT_DOUBLE_EQ(result.errorBound, eb * devices);
    for (usize i = 0; i < expected.size(); ++i) {
      ASSERT_LE(std::abs(result.reduced[i] - expected[i]),
                result.errorBound * (1.0 + 1e-6) +
                    std::abs(expected[i]) * 1e-6)
          << "device count " << devices << " elem " << i;
    }
  }
}

TEST(Allreduce, CompressionReducesWireBytes) {
  const auto grads = makeGradients(4, 4096, 5);
  const RingAllreduce ring(4, LinkSpec{});
  const auto raw = ring.run(grads, rawCodec());
  const auto compressed = ring.run(grads, cuszp2Codec(1e-4), 1e-4);
  EXPECT_LT(compressed.wireBytes, raw.wireBytes);
}

TEST(Allreduce, CompressionWinsOnSlowLinks) {
  // PCIe-class links: the compressed exchange beats raw wall time once
  // chunks are large enough to amortize the per-hop kernel launches —
  // the paper's Fig. 1 argument at realistic layer sizes.
  const auto grads = makeGradients(4, 1 << 20, 6);
  LinkSpec pcie;
  pcie.bandwidthGBps = 12.0;
  const RingAllreduce ring(4, pcie);
  const auto raw = ring.run(grads, rawCodec());
  const auto compressed = ring.run(grads, cuszp2Codec(1e-4), 1e-4);
  EXPECT_LT(compressed.seconds, raw.seconds);
  EXPECT_GT(compressed.algbwGBps, raw.algbwGBps);
}

TEST(Allreduce, FasterLinksRaiseAlgbw) {
  const auto grads = makeGradients(4, 1 << 14, 7);
  LinkSpec slow;
  slow.bandwidthGBps = 10.0;
  LinkSpec fast;
  fast.bandwidthGBps = 50.0;
  const auto rSlow = RingAllreduce(4, slow).run(grads, rawCodec());
  const auto rFast = RingAllreduce(4, fast).run(grads, rawCodec());
  EXPECT_GT(rFast.algbwGBps, rSlow.algbwGBps);
}

TEST(Allreduce, Validation) {
  EXPECT_THROW(RingAllreduce(1, LinkSpec{}), Error);
  const RingAllreduce ring(3, LinkSpec{});
  // Wrong gradient count.
  EXPECT_THROW(ring.run(makeGradients(2, 6, 1), rawCodec()), Error);
  // Length not divisible by device count.
  EXPECT_THROW(ring.run(makeGradients(3, 7, 1), rawCodec()), Error);
  // Mismatched lengths.
  auto bad = makeGradients(3, 6, 1);
  bad[1].resize(9);
  EXPECT_THROW(ring.run(bad, rawCodec()), Error);
}

TEST(Allreduce, StreamCodecMatchesPerChunkCodec) {
  // The stream-holding codec batches each ring step's P sends through one
  // launch; the reduced vector and wire bytes must match the per-chunk
  // one-shot codec exactly (compressBatch is byte-identical to compress).
  const f64 eb = 1e-4;
  const auto grads = makeGradients(4, 4096, 11);
  const RingAllreduce ring(4, LinkSpec{});
  const auto perChunk = ring.run(grads, cuszp2Codec(eb), eb);
  const auto batched = ring.run(grads, cuszp2StreamCodec(eb), eb);
  EXPECT_EQ(batched.wireBytes, perChunk.wireBytes);
  ASSERT_EQ(batched.reduced.size(), perChunk.reduced.size());
  for (usize i = 0; i < perChunk.reduced.size(); ++i) {
    ASSERT_EQ(batched.reduced[i], perChunk.reduced[i]) << i;
  }
  EXPECT_DOUBLE_EQ(batched.errorBound, eb * 4);
}

TEST(Allreduce, WireBytesAccountsAllHops) {
  const u32 P = 4;
  const usize n = 1024;
  const auto grads = makeGradients(P, n, 8);
  const auto raw = RingAllreduce(P, LinkSpec{}).run(grads, rawCodec());
  // 2*(P-1) steps, P transfers each, chunk bytes each.
  EXPECT_EQ(raw.wireBytes, 2u * (P - 1) * P * (n / P) * 4);
}

}  // namespace
}  // namespace cuszp2::distributed
