// Tests for the pure-GPU baseline compressors (cuSZp v1 adapter, FZ-GPU,
// cuZFP-like fixed rate) and the relationships the paper reports between
// them and cuSZp2.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "baselines/cuszp2_adapter.hpp"
#include "baselines/fzgpu.hpp"
#include "baselines/zfp.hpp"
#include "common/rng.hpp"
#include "datagen/fields.hpp"
#include "metrics/error_stats.hpp"

namespace cuszp2::baselines {
namespace {

// ---- cuSZp2 adapter / cuSZp v1 --------------------------------------------

TEST(Cuszp2Adapter, ErrorBoundHolds) {
  const auto data = datagen::generateF32("cesm_atm", 0, 1 << 15);
  auto compressor = Cuszp2Baseline::cuszp2Outlier();
  const auto r = compressor->run(data, 1e-3);
  const f64 absEb = 1e-3 * metrics::valueRange<f32>(data);
  EXPECT_TRUE(r.error.withinBoundFp(absEb, Precision::F32));
  EXPECT_GT(r.ratio, 1.0);
  EXPECT_GT(r.compressGBps, 0.0);
}

TEST(Cuszp2Adapter, V1MatchesPlainRatio) {
  // Paper Table III note: cuSZp and cuSZp2-P share plain-FLE, so ratios
  // are identical.
  const auto data = datagen::generateF32("scale", 1, 1 << 15);
  const auto rP = Cuszp2Baseline::cuszp2Plain()->run(data, 1e-3);
  const auto rV1 = Cuszp2Baseline::cuszpV1()->run(data, 1e-3);
  EXPECT_DOUBLE_EQ(rP.ratio, rV1.ratio);
}

TEST(Cuszp2Adapter, Cuszp2BeatsV1Throughput) {
  // The two throughput designs (vectorized access + lookback) are what
  // separate cuSZp2-P from cuSZp v1 (paper Fig. 14: ~2x).
  const auto data = datagen::generateF32("rtm", 2, 1 << 21);
  const auto rP = Cuszp2Baseline::cuszp2Plain()->run(data, 1e-3);
  const auto rV1 = Cuszp2Baseline::cuszpV1()->run(data, 1e-3);
  EXPECT_GT(rP.compressGBps, rV1.compressGBps * 1.3);
  EXPECT_GT(rP.memThroughputGBps, rV1.memThroughputGBps);
}

// ---- FZ-GPU -----------------------------------------------------------------

class FzGpuTest : public ::testing::TestWithParam<f64> {};

TEST_P(FzGpuTest, ErrorBoundHoldsAcrossDatasets) {
  const f64 rel = GetParam();
  for (const char* dataset : {"cesm_atm", "rtm", "nyx", "qmcpack"}) {
    const auto data = datagen::generateF32(dataset, 0, 1 << 14);
    FzGpuBaseline fz;
    const auto r = fz.run(data, rel);
    const f64 absEb = rel * metrics::valueRange<f32>(data);
    EXPECT_TRUE(r.error.withinBoundFp(absEb, Precision::F32))
        << dataset << " rel " << rel << " max " << r.error.maxAbsError;
    EXPECT_GT(r.ratio, 1.0) << dataset;
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, FzGpuTest,
                         ::testing::Values(1e-2, 1e-3, 1e-4));

TEST(FzGpu, Cuszp2OBeatsItOnSmoothData) {
  // Table III: CUSZP2-O wins on smooth datasets (CESM, RTM...).
  const auto data = datagen::generateF32("cesm_atm", 0, 1 << 15);
  const auto rFz = FzGpuBaseline().run(data, 1e-3);
  const auto rO = Cuszp2Baseline::cuszp2Outlier()->run(data, 1e-3);
  EXPECT_GT(rO.ratio, rFz.ratio);
}

TEST(FzGpu, LowerMemThroughputThanCuszp2) {
  // Fig. 16: FZ-GPU ~134 GB/s vs cuSZp2 >1100 GB/s.
  const auto data = datagen::generateF32("rtm", 2, 1 << 22);
  const auto rFz = FzGpuBaseline().run(data, 1e-3);
  const auto rP = Cuszp2Baseline::cuszp2Plain()->run(data, 1e-3);
  EXPECT_GT(rP.memThroughputGBps, rFz.memThroughputGBps * 2.0);
}

TEST(FzGpu, SparseDataGetsHighRatio) {
  const auto data = datagen::generateF32("jetin", 0, 1 << 16);
  const auto r = FzGpuBaseline().run(data, 1e-2);
  EXPECT_GT(r.ratio, 20.0);
}

// ---- cuZFP-like -------------------------------------------------------------

TEST(Zfp, LiftingIsExactlyInvertible) {
  Rng rng(10);
  for (int trial = 0; trial < 2000; ++trial) {
    i32 x[ZfpBaseline::kBlock];
    i32 orig[ZfpBaseline::kBlock];
    for (u32 i = 0; i < ZfpBaseline::kBlock; ++i) {
      x[i] = static_cast<i32>(rng.uniformInt(1u << 28)) -
             (1 << 27);
      orig[i] = x[i];
    }
    ZfpBaseline::forwardLift(x);
    ZfpBaseline::inverseLift(x);
    for (u32 i = 0; i < ZfpBaseline::kBlock; ++i) {
      ASSERT_EQ(x[i], orig[i]) << "trial " << trial << " i " << i;
    }
  }
}

TEST(Zfp, NegabinaryRoundTrip) {
  Rng rng(11);
  for (int trial = 0; trial < 10000; ++trial) {
    const i32 v = static_cast<i32>(rng.next());
    ASSERT_EQ(ZfpBaseline::uint2int(ZfpBaseline::int2uint(v)), v);
  }
  EXPECT_EQ(ZfpBaseline::int2uint(0), 0u);
}

TEST(Zfp, NegabinaryOrdersByMagnitude) {
  // Small magnitudes must use fewer high bits, so truncation hurts less.
  EXPECT_LT(ZfpBaseline::int2uint(1), ZfpBaseline::int2uint(1 << 20));
  EXPECT_LT(ZfpBaseline::int2uint(-1), ZfpBaseline::int2uint(1 << 20));
}

TEST(Zfp, RatioIsExactlyFixedRate) {
  const auto data = datagen::generateF32("miranda", 0, 1 << 14);
  for (f64 rate : {4.0, 8.0, 16.0}) {
    ZfpBaseline zfp(rate);
    const auto r = zfp.run(data, 0.0);
    EXPECT_NEAR(r.ratio, 32.0 / rate, 0.02) << rate;
  }
}

TEST(Zfp, QualityImprovesWithRate) {
  const auto data = datagen::generateF32("rtm", 2, 1 << 14);
  const auto r4 = ZfpBaseline(4.0).run(data, 0.0);
  const auto r8 = ZfpBaseline(8.0).run(data, 0.0);
  const auto r16 = ZfpBaseline(16.0).run(data, 0.0);
  EXPECT_GT(r8.error.psnrDb, r4.error.psnrDb);
  EXPECT_GT(r16.error.psnrDb, r8.error.psnrDb);
}

TEST(Zfp, HighRateIsNearLossless) {
  const auto data = datagen::generateF32("cesm_atm", 0, 1 << 13);
  const auto r = ZfpBaseline(24.0).run(data, 0.0);
  EXPECT_GT(r.error.psnrDb, 90.0);
}

TEST(Zfp, AggressiveRateCorruptsStructure) {
  // The Fig. 18 story: at ratio ~64 (rate 0.5) cuZFP destroys structure
  // while cuSZp2's error bound would still hold.
  const auto data = datagen::generateF32("rtm", 0, 1 << 14);
  const auto r = ZfpBaseline(0.5).run(data, 0.0);
  const auto rGood = ZfpBaseline(16.0).run(data, 0.0);
  EXPECT_LT(r.error.psnrDb, rGood.error.psnrDb - 20.0);
}

TEST(Zfp, NotErrorBounded) {
  ZfpBaseline zfp(8.0);
  EXPECT_FALSE(zfp.errorBounded());
  EXPECT_THROW(ZfpBaseline(-1.0), Error);
  EXPECT_THROW(ZfpBaseline(33.0), Error);
}

TEST(Zfp, ZeroBlocksReconstructToZero) {
  std::vector<f32> data(1 << 12, 0.0f);
  const auto r = ZfpBaseline(8.0).run(data, 0.0);
  for (f32 v : r.reconstructed) ASSERT_EQ(v, 0.0f);
}

}  // namespace
}  // namespace cuszp2::baselines
