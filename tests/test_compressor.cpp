// End-to-end tests for the cuSZp2 compressor: error-bound invariants,
// stream determinism, mode/sync/access equivalences, edge sizes, and both
// precisions.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/compressor.hpp"
#include "core/quantizer.hpp"
#include "datagen/fields.hpp"
#include "metrics/error_stats.hpp"

namespace cuszp2::core {
namespace {

Config baseConfig(EncodingMode mode = EncodingMode::Outlier) {
  Config cfg;
  cfg.mode = mode;
  cfg.relErrorBound = 1e-3;
  return cfg;
}

template <FloatingPoint T>
void expectBounded(std::span<const T> original, std::span<const T> rec,
                   f64 absEb) {
  const auto stats = metrics::computeErrorStats<T>(original, rec);
  EXPECT_TRUE(stats.withinBoundFp(absEb, precisionOf<T>()))
      << "max error " << stats.maxAbsError << " bound " << absEb;
}

// ---- Basic round trips ----------------------------------------------------

TEST(Compressor, RoundTripSmallKnownData) {
  Config cfg = baseConfig();
  cfg.absErrorBound = 0.1;
  const Compressor comp(cfg);
  const std::vector<f32> data = {1.12f, 1.02f, 0.98f, 1.04f,
                                 1.11f, 1.09f, 0.91f, 1.01f};
  const auto c = comp.compress<f32>(data);
  const auto d = comp.decompress<f32>(c.stream);
  ASSERT_EQ(d.data.size(), data.size());
  expectBounded<f32>(data, d.data, 0.1);
}

TEST(Compressor, EmptyInput) {
  const Compressor comp(baseConfig());
  const std::vector<f32> data;
  const auto c = comp.compress<f32>(data);
  const auto d = comp.decompress<f32>(c.stream);
  EXPECT_TRUE(d.data.empty());
}

class CompressorSizeTest : public ::testing::TestWithParam<usize> {};

TEST_P(CompressorSizeTest, AwkwardSizesRoundTrip) {
  const usize n = GetParam();
  Config cfg = baseConfig();
  cfg.absErrorBound = 1e-3;
  const Compressor comp(cfg);
  Rng rng(n * 31 + 7);
  std::vector<f32> data(n);
  f64 v = 0.0;
  for (auto& x : data) {
    v += rng.uniform(-0.01, 0.01);
    x = static_cast<f32>(v);
  }
  const auto c = comp.compress<f32>(data);
  const auto d = comp.decompress<f32>(c.stream);
  ASSERT_EQ(d.data.size(), n);
  expectBounded<f32>(data, d.data, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CompressorSizeTest,
                         ::testing::Values<usize>(1, 2, 31, 32, 33, 63, 64,
                                                  4095, 4096, 4097, 100000,
                                                  131072));

// ---- Error-bound property across datasets x bounds x modes -----------------

class CompressorDatasetTest
    : public ::testing::TestWithParam<
          std::tuple<std::string, f64, EncodingMode>> {};

TEST_P(CompressorDatasetTest, ErrorBoundHolds) {
  const auto [dataset, rel, mode] = GetParam();
  const auto data = datagen::generateF32(dataset, 0, 1 << 16);
  const f64 absEb =
      Quantizer::absFromRel(rel, metrics::valueRange<f32>(data));

  Config cfg = baseConfig(mode);
  cfg.absErrorBound = absEb;
  const Compressor comp(cfg);
  const auto c = comp.compress<f32>(data);
  const auto d = comp.decompress<f32>(c.stream);
  expectBounded<f32>(data, d.data, absEb);
  EXPECT_GT(c.ratio, 1.0) << "compression should not expand " << dataset;
}

INSTANTIATE_TEST_SUITE_P(
    Datasets, CompressorDatasetTest,
    ::testing::Combine(
        ::testing::Values("cesm_atm", "hacc", "rtm", "scale", "qmcpack",
                          "nyx", "jetin", "miranda", "syntruss"),
        ::testing::Values(1e-2, 1e-3, 1e-4),
        ::testing::Values(EncodingMode::Plain, EncodingMode::Outlier)));

// ---- Double precision -------------------------------------------------------

TEST(Compressor, DoublePrecisionRoundTrip) {
  for (const char* dataset : {"s3d", "nwchem"}) {
    const auto data = datagen::generateF64(dataset, 0, 1 << 15);
    const f64 absEb =
        Quantizer::absFromRel(1e-3, metrics::valueRange<f64>(data));
    Config cfg = baseConfig();
    cfg.absErrorBound = absEb;
    const Compressor comp(cfg);
    const auto c = comp.compress<f64>(data);
    const auto d = comp.decompress<f64>(c.stream);
    expectBounded<f64>(data, d.data, absEb);
  }
}

TEST(Compressor, PrecisionMismatchThrows) {
  const Compressor comp(baseConfig());
  const std::vector<f32> data(64, 1.0f);
  const auto c = comp.compress<f32>(data);
  EXPECT_THROW(comp.decompress<f64>(c.stream), Error);
}

// ---- Equivalences -----------------------------------------------------------

TEST(Compressor, ModesReconstructIdentically) {
  // P and O share the lossy step: same eb => bit-identical reconstruction
  // (paper Sec. V-D).
  const auto data = datagen::generateF32("cesm_atm", 1, 1 << 14);
  Config p = baseConfig(EncodingMode::Plain);
  p.absErrorBound = 0.01;
  Config o = baseConfig(EncodingMode::Outlier);
  o.absErrorBound = 0.01;
  const auto dp = Compressor(p).decompress<f32>(
      Compressor(p).compress<f32>(data).stream);
  const auto dout = Compressor(o).decompress<f32>(
      Compressor(o).compress<f32>(data).stream);
  EXPECT_EQ(dp.data, dout.data);
}

TEST(Compressor, OutlierRatioAtLeastPlain) {
  for (const char* dataset : {"cesm_atm", "hacc", "miranda", "rtm"}) {
    const auto data = datagen::generateF32(dataset, 0, 1 << 15);
    Config p = baseConfig(EncodingMode::Plain);
    Config o = baseConfig(EncodingMode::Outlier);
    const f64 rp = Compressor(p).compress<f32>(data).ratio;
    const f64 ro = Compressor(o).compress<f32>(data).ratio;
    EXPECT_GE(ro, rp * (1.0 - 1e-9)) << dataset;
  }
}

TEST(Compressor, SyncAlgorithmDoesNotChangeBytes) {
  const auto data = datagen::generateF32("scale", 2, 1 << 14);
  Config a = baseConfig();
  a.syncAlgorithm = scan::Algorithm::DecoupledLookback;
  Config b = baseConfig();
  b.syncAlgorithm = scan::Algorithm::ChainedScan;
  EXPECT_EQ(Compressor(a).compress<f32>(data).stream,
            Compressor(b).compress<f32>(data).stream);
}

TEST(Compressor, VectorizationDoesNotChangeBytes) {
  const auto data = datagen::generateF32("nyx", 1, 1 << 14);
  Config a = baseConfig();
  a.vectorizedAccess = true;
  Config b = baseConfig();
  b.vectorizedAccess = false;
  const auto ca = Compressor(a).compress<f32>(data);
  const auto cb = Compressor(b).compress<f32>(data);
  EXPECT_EQ(ca.stream, cb.stream);
  // ...but it must change the instruction counts (that is the ablation).
  EXPECT_GT(cb.profile.mem.scalarLoadInstr, ca.profile.mem.scalarLoadInstr);
  EXPECT_GT(ca.profile.mem.vectorLoadInstr, 0u);
}

TEST(Compressor, DeterministicStream) {
  const auto data = datagen::generateF32("qmcpack", 0, 1 << 14);
  const Compressor comp(baseConfig());
  const auto c1 = comp.compress<f32>(data);
  const auto c2 = comp.compress<f32>(data);
  EXPECT_EQ(c1.stream, c2.stream);
}

class BlockSizeTest : public ::testing::TestWithParam<u32> {};

TEST_P(BlockSizeTest, RoundTripAcrossBlockSizes) {
  const u32 bs = GetParam();
  const auto data = datagen::generateF32("miranda", 0, 1 << 14);
  Config cfg = baseConfig();
  cfg.blockSize = bs;
  cfg.absErrorBound = 1e-3;
  const Compressor comp(cfg);
  const auto d = comp.decompress<f32>(comp.compress<f32>(data).stream);
  expectBounded<f32>(data, d.data, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, BlockSizeTest,
                         ::testing::Values<u32>(8, 16, 32, 64, 128, 256));

class TileSizeTest : public ::testing::TestWithParam<u32> {};

TEST_P(TileSizeTest, BlocksPerTileDoesNotChangeBytes) {
  const auto data = datagen::generateF32("cesm_atm", 3, 1 << 14);
  Config ref = baseConfig();
  ref.blocksPerTile = 128;
  const auto expected = Compressor(ref).compress<f32>(data).stream;
  Config cfg = baseConfig();
  cfg.blocksPerTile = GetParam();
  EXPECT_EQ(Compressor(cfg).compress<f32>(data).stream, expected);
}

INSTANTIATE_TEST_SUITE_P(TileSizes, TileSizeTest,
                         ::testing::Values<u32>(1, 2, 17, 64, 512));

// ---- Special content --------------------------------------------------------

TEST(Compressor, AllZeroDataCompressesToOffsetBytes) {
  Config cfg = baseConfig();
  cfg.absErrorBound = 1e-3;
  const Compressor comp(cfg);
  const std::vector<f32> data(32 * 1024, 0.0f);
  const auto c = comp.compress<f32>(data);
  // 1 offset byte per 32-element block + header, nothing else.
  EXPECT_EQ(c.stream.size(), StreamHeader::kBytes + 1024u);
  EXPECT_GT(c.ratio, 100.0);
  const auto d = comp.decompress<f32>(c.stream);
  for (f32 v : d.data) ASSERT_EQ(v, 0.0f);
  EXPECT_GT(d.profile.mem.memsetBytes, 0u);  // zero-block fast path taken
}

TEST(Compressor, ConstantDataIsCheapInOutlierMode) {
  Config cfg = baseConfig(EncodingMode::Outlier);
  cfg.absErrorBound = 1e-3;
  const Compressor comp(cfg);
  const std::vector<f32> data(32 * 256, 42.0f);
  const auto c = comp.compress<f32>(data);
  EXPECT_GT(c.ratio, 10.0);
  const auto d = comp.decompress<f32>(c.stream);
  expectBounded<f32>(data, d.data, 1e-3);
}

TEST(Compressor, RelBoundComputesRangePass) {
  // REL-only config must resolve the bound internally and charge the
  // range-reduction time.
  Config cfg;
  cfg.relErrorBound = 1e-3;
  cfg.absErrorBound = 0.0;
  const Compressor comp(cfg);
  const auto data = datagen::generateF32("scale", 0, 1 << 14);
  const auto c = comp.compress<f32>(data);
  const f64 expectedAbs =
      Quantizer::absFromRel(1e-3, metrics::valueRange<f32>(data));
  const auto header = StreamHeader::parse(c.stream);
  EXPECT_DOUBLE_EQ(header.absErrorBound, expectedAbs);
  const auto d = comp.decompress<f32>(c.stream);
  expectBounded<f32>(data, d.data, expectedAbs);
}

// ---- Profiles ---------------------------------------------------------------

TEST(Compressor, ProfileIsPopulated) {
  const auto data = datagen::generateF32("rtm", 2, 1 << 16);
  const Compressor comp(baseConfig());
  const auto c = comp.compress<f32>(data);
  EXPECT_GT(c.profile.endToEndSeconds, 0.0);
  EXPECT_GT(c.profile.endToEndGBps, 0.0);
  EXPECT_EQ(c.profile.sync.method, gpusim::SyncMethod::DecoupledLookback);
  EXPECT_GT(c.profile.mem.bytesRead, data.size() * 4 - 1);
  EXPECT_GT(c.profile.timing.totalSeconds, 0.0);

  const auto d = comp.decompress<f32>(c.stream);
  EXPECT_GT(d.profile.endToEndGBps, 0.0);
  // Decompression reads less (compressed) and skips the analysis loop:
  // its modelled throughput should beat compression on this dataset.
  EXPECT_GT(d.profile.endToEndGBps, c.profile.endToEndGBps * 0.8);
}

TEST(Compressor, CorruptStreamRejected) {
  const Compressor comp(baseConfig());
  const std::vector<f32> data(1000, 1.5f);
  auto c = comp.compress<f32>(data);
  // Truncate the payload.
  c.stream.resize(c.stream.size() - 1);
  EXPECT_THROW(comp.decompress<f32>(c.stream), Error);
}

TEST(Compressor, ConcurrentCompressionsOnOneCompressor) {
  // The Compressor is logically const; concurrent compress() calls share
  // its launcher and must not interfere (per-launch completion latches).
  const auto dataA = datagen::generateF32("nyx", 0, 1 << 14);
  const auto dataB = datagen::generateF32("rtm", 1, 1 << 14);
  Config cfg = baseConfig();
  cfg.absErrorBound = 1e-3;
  const Compressor comp(cfg);
  const auto refA = comp.compress<f32>(dataA).stream;
  const auto refB = comp.compress<f32>(dataB).stream;

  std::vector<std::byte> gotA;
  std::vector<std::byte> gotB;
  std::thread ta([&] {
    for (int i = 0; i < 3; ++i) gotA = comp.compress<f32>(dataA).stream;
  });
  std::thread tb([&] {
    for (int i = 0; i < 3; ++i) gotB = comp.compress<f32>(dataB).stream;
  });
  ta.join();
  tb.join();
  EXPECT_EQ(gotA, refA);
  EXPECT_EQ(gotB, refB);
}

TEST(Compressor, InvalidConfigRejected) {
  Config cfg;
  cfg.relErrorBound = 0.0;
  cfg.absErrorBound = 0.0;
  EXPECT_THROW(Compressor{cfg}, Error);
  Config cfg2 = baseConfig();
  cfg2.blockSize = 12;
  EXPECT_THROW(Compressor{cfg2}, Error);
}

}  // namespace
}  // namespace cuszp2::core
