// Tests for the per-block Plain-FLE / Outlier-FLE codec: header byte
// layout, payload sizes, the selection strategy, and round-trip properties.
#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/block_codec.hpp"

namespace cuszp2::core {
namespace {

std::vector<i32> roundTrip(const BlockCodec& codec,
                           const std::vector<i32>& quants,
                           EncodingMode mode) {
  const auto plan = codec.plan(quants, mode);
  std::vector<std::byte> payload(plan.payloadBytes);
  codec.encode(quants, plan, payload.data());
  std::vector<i32> rec(quants.size());
  const auto header = BlockHeader::unpack(plan.header.pack());
  codec.decode(header, payload.data(), rec);
  return rec;
}

// ---- Header byte layout (paper Fig. 8) ----------------------------------

TEST(BlockHeader, PackUnpackAllCombinations) {
  for (u32 fl = 0; fl <= 31; ++fl) {
    for (u32 ob = 1; ob <= 4; ++ob) {
      for (bool mode : {false, true}) {
        BlockHeader h;
        h.outlierMode = mode;
        h.outlierBytes = ob;
        h.fixedLength = fl;
        const auto r = BlockHeader::unpack(h.pack());
        EXPECT_EQ(r.outlierMode, mode);
        EXPECT_EQ(r.fixedLength, fl);
        if (mode) {
          EXPECT_EQ(r.outlierBytes, ob);
        }
      }
    }
  }
}

TEST(BlockHeader, ModeFlagIsBit7) {
  BlockHeader h;
  h.outlierMode = true;
  h.outlierBytes = 1;
  h.fixedLength = 0;
  EXPECT_EQ(h.pack() & 0x80u, 0x80u);
  h.outlierMode = false;
  EXPECT_EQ(h.pack() & 0x80u, 0u);
}

TEST(BlockHeader, OutlierSizeBitsAre65) {
  BlockHeader h;
  h.outlierMode = true;
  h.fixedLength = 5;
  h.outlierBytes = 3;  // encoded as binary 10
  EXPECT_EQ((h.pack() >> 5) & 0x3u, 2u);
}

// ---- Payload sizes -------------------------------------------------------

TEST(PayloadSize, ZeroBlockIsZeroBytes) {
  BlockHeader h;  // plain, fl = 0
  EXPECT_EQ(payloadSize(h, 32), 0u);
}

TEST(PayloadSize, PaperRunningExamplePlain) {
  // Paper Fig. 5/7: block 8, Plain-FLE with fl=4 -> 1 B signs + 4 B planes
  // = 5 bytes.
  BlockHeader h;
  h.fixedLength = 4;
  EXPECT_EQ(payloadSize(h, 8), 5u);
}

TEST(PayloadSize, PaperRunningExampleOutlier) {
  // Paper Fig. 7: Outlier-FLE with 1-byte outlier and fl=1 -> signs 1 +
  // outlier 1 + plane 1 = 3 bytes (ratio 32/3 = 10.7).
  BlockHeader h;
  h.outlierMode = true;
  h.outlierBytes = 1;
  h.fixedLength = 1;
  EXPECT_EQ(payloadSize(h, 8), 3u);
}

TEST(PayloadSize, MaxPayloadDominates) {
  for (u32 bs : {8u, 32u, 64u}) {
    for (u32 fl = 0; fl <= 31; ++fl) {
      for (bool mode : {false, true}) {
        BlockHeader h;
        h.outlierMode = mode;
        h.outlierBytes = 4;
        h.fixedLength = fl;
        EXPECT_LE(payloadSize(h, bs), maxPayloadSize(bs));
      }
    }
  }
}

// ---- Codec construction ---------------------------------------------------

TEST(BlockCodec, RejectsBadBlockSizes) {
  EXPECT_THROW(BlockCodec(0), Error);
  EXPECT_THROW(BlockCodec(7), Error);
  EXPECT_THROW(BlockCodec(12), Error);
  EXPECT_THROW(BlockCodec(264), Error);
  EXPECT_NO_THROW(BlockCodec(8));
  EXPECT_NO_THROW(BlockCodec(256));
}

// ---- Selection strategy ----------------------------------------------------

TEST(BlockCodec, ZeroBlockCostsNothing) {
  const BlockCodec codec(32);
  const std::vector<i32> quants(32, 0);
  for (auto mode : {EncodingMode::Plain, EncodingMode::Outlier}) {
    const auto plan = codec.plan(quants, mode);
    EXPECT_EQ(plan.payloadBytes, 0u);
    EXPECT_FALSE(plan.header.outlierMode);
    EXPECT_EQ(plan.header.fixedLength, 0u);
  }
}

TEST(BlockCodec, SmoothBlockSelectsOutlier) {
  // Constant value 1000: first diff is 1000, the rest are 0 — the exact
  // motif of paper Fig. 6.
  const BlockCodec codec(32);
  const std::vector<i32> quants(32, 1000);
  const auto plan = codec.plan(quants, EncodingMode::Outlier);
  EXPECT_TRUE(plan.header.outlierMode);
  EXPECT_EQ(plan.header.outlierBytes, 2u);  // 1000 needs 2 bytes
  EXPECT_EQ(plan.header.fixedLength, 0u);   // tail is all zero
  EXPECT_EQ(plan.payloadBytes, 4u + 2u);    // signs + outlier
  EXPECT_LT(plan.payloadBytes, plan.plainBytes);
}

TEST(BlockCodec, PlainModeNeverUsesOutlier) {
  const BlockCodec codec(32);
  const std::vector<i32> quants(32, 1000);
  const auto plan = codec.plan(quants, EncodingMode::Plain);
  EXPECT_FALSE(plan.header.outlierMode);
  EXPECT_EQ(plan.payloadBytes, plan.plainBytes);
}

TEST(BlockCodec, SelectionPicksStrictlySmaller) {
  const BlockCodec codec(32);
  Rng rng(55);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<i32> quants(32);
    i32 v = static_cast<i32>(rng.uniformInt(20000)) - 10000;
    for (auto& q : quants) {
      v += static_cast<i32>(rng.uniformInt(2 * trial + 3)) - trial - 1;
      q = v;
    }
    const auto plan = codec.plan(quants, EncodingMode::Outlier);
    EXPECT_EQ(plan.payloadBytes,
              std::min(plan.plainBytes, plan.outlierBytes));
    if (plan.header.outlierMode) {
      EXPECT_LT(plan.outlierBytes, plan.plainBytes);
    } else {
      EXPECT_LE(plan.plainBytes, plan.outlierBytes);
    }
  }
}

TEST(BlockCodec, OutlierSizesAdaptOneToFourBytes) {
  const BlockCodec codec(32);
  for (u32 magnitude :
       {200u, 60000u, 10'000'000u, 1'000'000'000u}) {
    std::vector<i32> quants(32, static_cast<i32>(magnitude));
    const auto plan = codec.plan(quants, EncodingMode::Outlier);
    ASSERT_TRUE(plan.header.outlierMode) << magnitude;
    u32 expect = 1;
    if (magnitude > 0xFFFFFFu) {
      expect = 4;
    } else if (magnitude > 0xFFFFu) {
      expect = 3;
    } else if (magnitude > 0xFFu) {
      expect = 2;
    }
    EXPECT_EQ(plan.header.outlierBytes, expect) << magnitude;
  }
}

// ---- Round-trip properties -------------------------------------------------

class BlockCodecRoundTrip
    : public ::testing::TestWithParam<std::tuple<u32, EncodingMode>> {};

TEST_P(BlockCodecRoundTrip, RandomWalksRoundTrip) {
  const auto [blockSize, mode] = GetParam();
  const BlockCodec codec(blockSize);
  Rng rng(900 + blockSize);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<i32> quants(blockSize);
    i32 v = static_cast<i32>(rng.uniformInt(100000)) - 50000;
    const i32 step = 1 + static_cast<i32>(rng.uniformInt(1u << (trial % 20)));
    for (auto& q : quants) {
      v += static_cast<i32>(rng.uniformInt(2 * step + 1)) - step;
      q = v;
    }
    ASSERT_EQ(roundTrip(codec, quants, mode), quants)
        << "trial " << trial << " bs " << blockSize;
  }
}

TEST_P(BlockCodecRoundTrip, EdgeBlocksRoundTrip) {
  const auto [blockSize, mode] = GetParam();
  const BlockCodec codec(blockSize);
  const i32 big = (i32{1} << 30) - 1;  // kMaxQuant
  std::vector<std::vector<i32>> cases;
  cases.push_back(std::vector<i32>(blockSize, 0));
  cases.push_back(std::vector<i32>(blockSize, big));
  cases.push_back(std::vector<i32>(blockSize, -big));
  {
    std::vector<i32> alt(blockSize);
    for (usize i = 0; i < blockSize; ++i) alt[i] = (i % 2) ? big : -big;
    cases.push_back(alt);
  }
  {
    std::vector<i32> ramp(blockSize);
    for (usize i = 0; i < blockSize; ++i) {
      ramp[i] = static_cast<i32>(i) - static_cast<i32>(blockSize / 2);
    }
    cases.push_back(ramp);
  }
  {
    std::vector<i32> spike(blockSize, 5);
    spike[blockSize / 2] = big;
    cases.push_back(spike);
  }
  for (const auto& c : cases) {
    EXPECT_EQ(roundTrip(codec, c, mode), c);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BlockCodecRoundTrip,
    ::testing::Combine(::testing::Values<u32>(8, 32, 64, 128),
                       ::testing::Values(EncodingMode::Plain,
                                         EncodingMode::Outlier)));

// ---- Residual-level API -----------------------------------------------------

TEST(BlockCodec, ResidualRoundTrip) {
  const BlockCodec codec(64);
  Rng rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<i32> res(64);
    for (auto& r : res) {
      r = static_cast<i32>(rng.uniformInt(2001)) - 1000;
    }
    res[0] = static_cast<i32>(rng.uniformInt(2'000'000'000u)) -
             1'000'000'000;  // big head outlier
    const auto plan = codec.planResiduals(res, EncodingMode::Outlier);
    std::vector<std::byte> payload(plan.payloadBytes);
    codec.encodeResiduals(res, plan, payload.data());
    std::vector<i32> rec(64);
    codec.decodeResiduals(BlockHeader::unpack(plan.header.pack()),
                          payload.data(), rec);
    ASSERT_EQ(rec, res) << trial;
  }
}

TEST(BlockCodec, PlanRejectsWrongSize) {
  const BlockCodec codec(32);
  const std::vector<i32> tooShort(16, 0);
  EXPECT_THROW(codec.plan(tooShort, EncodingMode::Plain), Error);
}

// Both modes decode to identical integers (the paper's point that P and O
// share the lossy step and reconstruction).
TEST(BlockCodec, ModesReconstructIdentically) {
  const BlockCodec codec(32);
  Rng rng(31337);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<i32> quants(32);
    i32 v = 5000;
    for (auto& q : quants) {
      v += static_cast<i32>(rng.uniformInt(7)) - 3;
      q = v;
    }
    EXPECT_EQ(roundTrip(codec, quants, EncodingMode::Plain),
              roundTrip(codec, quants, EncodingMode::Outlier));
  }
}

}  // namespace
}  // namespace cuszp2::core
