// Telemetry layer: registry instrument semantics (including concurrent
// recording from kernel bodies on the shared worker pool), trace JSON
// structure, and the kernel event names a CompressorStream round trip
// auto-emits through gpusim::Launcher.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/stream.hpp"
#include "datagen/fields.hpp"
#include "gpusim/launcher.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace cuszp2 {
namespace {

using telemetry::Histogram;
using telemetry::MetricsRegistry;
using telemetry::TraceEvent;
using telemetry::TraceSession;

TEST(MetricsRegistryTest, CounterAccumulatesAndFindsByName) {
  MetricsRegistry reg;
  reg.counter("a").add(3);
  reg.counter("a").add(4);
  reg.counter("b").add(1);
  EXPECT_EQ(reg.counter("a").value(), 7u);
  EXPECT_EQ(reg.counter("b").value(), 1u);
  // Find-or-create returns a stable instrument.
  EXPECT_EQ(&reg.counter("a"), &reg.counter("a"));
}

TEST(MetricsRegistryTest, DisabledRegistryRecordsNothing) {
  MetricsRegistry reg(/*enabled=*/false);
  reg.counter("c").add(10);
  reg.gauge("g").set(2.5);
  reg.histogram("h").record(42);
  EXPECT_EQ(reg.counter("c").value(), 0u);
  EXPECT_EQ(reg.gauge("g").value(), 0.0);
  EXPECT_EQ(reg.histogram("h").count(), 0u);

  reg.setEnabled(true);
  reg.counter("c").add(10);
  EXPECT_EQ(reg.counter("c").value(), 10u);
}

TEST(MetricsRegistryTest, HistogramBucketsByBitWidth) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("depth");
  h.record(0);   // bucket 0
  h.record(1);   // bucket 1
  h.record(2);   // bucket 2
  h.record(3);   // bucket 2
  h.record(16);  // bucket 5
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 22u);
  EXPECT_EQ(h.max(), 16u);
  EXPECT_EQ(h.bucketCount(0), 1u);
  EXPECT_EQ(h.bucketCount(1), 1u);
  EXPECT_EQ(h.bucketCount(2), 2u);
  EXPECT_EQ(h.bucketCount(5), 1u);
  EXPECT_DOUBLE_EQ(h.mean(), 22.0 / 5.0);
}

TEST(MetricsRegistryTest, ResetZeroesValuesButKeepsHandles) {
  MetricsRegistry reg;
  telemetry::Counter& c = reg.counter("x");
  c.add(5);
  reg.gauge("y").set(1.0);
  reg.histogram("z").record(9);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(reg.gauge("y").value(), 0.0);
  EXPECT_EQ(reg.histogram("z").count(), 0u);
  c.add(2);
  EXPECT_EQ(reg.counter("x").value(), 2u);
}

// Concurrent recording from kernel blocks running on the shared worker
// pool: every increment must land (relaxed atomics, no lost updates).
TEST(MetricsRegistryTest, ConcurrentRecordingOnWorkerPool) {
  MetricsRegistry reg;
  telemetry::Counter& hits = reg.counter("kernel.hits");
  Histogram& values = reg.histogram("kernel.values");

  gpusim::Launcher launcher;
  constexpr u32 kGrid = 256;
  constexpr u32 kPerBlock = 100;
  launcher.launch(kGrid, [&](gpusim::BlockCtx& ctx) {
    for (u32 i = 0; i < kPerBlock; ++i) {
      hits.add(1);
      values.record(ctx.blockIdx);
    }
  });
  EXPECT_EQ(hits.value(), static_cast<u64>(kGrid) * kPerBlock);
  EXPECT_EQ(values.count(), static_cast<u64>(kGrid) * kPerBlock);
  EXPECT_EQ(values.max(), kGrid - 1u);
}

TEST(MetricsRegistryTest, SnapshotJsonIsDeterministic) {
  MetricsRegistry reg;
  reg.counter("b.count").add(2);
  reg.counter("a.count").add(1);
  reg.gauge("g").set(0.5);
  reg.histogram("h").record(3);
  const std::string s1 = reg.snapshotJson();
  const std::string s2 = reg.snapshotJson();
  EXPECT_EQ(s1, s2);
  // Sorted key order: "a.count" serializes before "b.count".
  EXPECT_LT(s1.find("a.count"), s1.find("b.count"));
  EXPECT_NE(s1.find("\"counters\""), std::string::npos);
  EXPECT_NE(s1.find("\"gauges\""), std::string::npos);
  EXPECT_NE(s1.find("\"histograms\""), std::string::npos);
  EXPECT_NE(s1.find("\"kernels\""), std::string::npos);
}

TEST(TraceSessionTest, BeginEndPairsBalancedAndMonotonic) {
  TraceSession trace;
  trace.begin("outer");
  trace.begin("inner");
  trace.end("inner");
  trace.end("outer");
  trace.instant("marker");

  const std::vector<TraceEvent> events = trace.events();
  ASSERT_EQ(events.size(), 5u);

  // Balanced: every B has a matching E, depth never goes negative.
  int depth = 0;
  f64 lastTs = 0.0;
  for (const TraceEvent& e : events) {
    if (e.phase == 'B') ++depth;
    if (e.phase == 'E') --depth;
    EXPECT_GE(depth, 0);
    EXPECT_GE(e.tsUs, lastTs) << "timestamps must be non-decreasing";
    lastTs = e.tsUs;
  }
  EXPECT_EQ(depth, 0);
}

TEST(TraceSessionTest, JsonIsStructurallyValid) {
  TraceSession trace;
  trace.begin("span", {telemetry::TraceArg::str("key", "va\"lue")});
  trace.end("span");
  trace.complete("kernel", 12.5,
                 {telemetry::TraceArg::num("bytes", 1024.0)});
  const std::string json = trace.json();

  // Shape: one top-level object holding a traceEvents array.
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  // Balanced braces/brackets (no dangling comma can unbalance these).
  int braces = 0;
  int brackets = 0;
  bool inString = false;
  for (usize i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) inString = !inString;
    if (inString) continue;
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_FALSE(inString);
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  // The embedded quote survived escaping.
  EXPECT_NE(json.find("va\\\"lue"), std::string::npos);
  EXPECT_NE(json.find("\"dur\": "), std::string::npos);
}

// A stream round trip with tracing active must emit the auto-instrumented
// kernel events, carrying the modelled-timing and sync attributes.
TEST(TraceSessionTest, StreamRoundTripEmitsKernelEvents) {
  const std::vector<f32> field = datagen::generateF32("cesm_atm", 0, 4096);

  TraceSession trace;
  {
    telemetry::ScopedTrace scoped(trace);
    core::CompressorStream codec(core::Config{.absErrorBound = 1e-3});
    const auto c = codec.compress<f32>(std::span<const f32>(field));
    codec.decompress<f32>(c.stream);
    codec.decompressBlocks<f32>(c.stream, 1, 2);
    codec.decompressResilient<f32>(c.stream);
  }
  EXPECT_EQ(telemetry::activeTrace(), nullptr);

  std::map<std::string, int> launches;
  f64 lastTs = 0.0;
  for (const TraceEvent& e : trace.events()) {
    EXPECT_GE(e.tsUs, lastTs);
    lastTs = e.tsUs;
    if (e.phase != 'X') continue;
    launches[e.name] += 1;
    bool sawModelled = false;
    bool sawSync = false;
    for (const auto& a : e.args) {
      if (a.key == "modelled_seconds") sawModelled = true;
      if (a.key == "sync_method") sawSync = true;
    }
    EXPECT_TRUE(sawModelled) << e.name;
    EXPECT_TRUE(sawSync) << e.name;
  }
  EXPECT_EQ(launches["compress"], 1);
  EXPECT_EQ(launches["decompress"], 1);
  EXPECT_EQ(launches["random_access_decode"], 1);
  EXPECT_EQ(launches["salvage_decode"], 1);
}

// The global registry's per-kernel table aggregates the same launches.
TEST(GlobalRegistryTest, StreamRoundTripFillsKernelTable) {
  MetricsRegistry& reg = telemetry::registry();
  reg.setEnabled(true);
  reg.reset();

  const std::vector<f32> field = datagen::generateF32("hacc", 0, 4096);
  core::CompressorStream codec(core::Config{.absErrorBound = 1e-3});
  const auto c = codec.compress<f32>(std::span<const f32>(field));
  const auto d = codec.decompress<f32>(c.stream);

  EXPECT_EQ(reg.counter("stream.compress.calls").value(), 1u);
  EXPECT_EQ(reg.counter("stream.decompress.calls").value(), 1u);
  // Metrics-reported byte counts match the actual buffer sizes.
  EXPECT_EQ(reg.counter("stream.compress.bytes_in").value(),
            field.size() * sizeof(f32));
  EXPECT_EQ(reg.counter("stream.compress.bytes_out").value(),
            c.stream.size());
  EXPECT_EQ(reg.counter("stream.decompress.bytes_in").value(),
            c.stream.size());
  EXPECT_EQ(reg.counter("stream.decompress.bytes_out").value(),
            d.data.size() * sizeof(f32));

  bool sawCompress = false;
  bool sawDecompress = false;
  for (const auto& row : reg.snapshotKernels()) {
    if (row.name == "compress") {
      sawCompress = true;
      EXPECT_EQ(row.launches, 1u);
      EXPECT_GT(row.dramBytes, 0u);
      EXPECT_GT(row.modelledSeconds, 0.0);
    }
    if (row.name == "decompress") sawDecompress = true;
  }
  EXPECT_TRUE(sawCompress);
  EXPECT_TRUE(sawDecompress);

  // The decoupled-lookback depth histogram saw both kernels' tiles.
  EXPECT_GT(reg.histogram("scan.lookback.depth").count(), 0u);

  reg.reset();
  reg.setEnabled(false);
}

// An aborted run (exception or exit mid-span) closes its open spans
// synthetically so the exported JSON stays balanced and loadable.
TEST(TraceSessionTest, CloseOpenSpansBalancesAbortedSessions) {
  TraceSession trace;
  trace.begin("outer");
  trace.begin("inner");
  EXPECT_EQ(trace.openSpanCount(), 2u);
  trace.end("inner");
  EXPECT_EQ(trace.openSpanCount(), 1u);
  trace.begin("second");

  EXPECT_EQ(trace.closeOpenSpans(), 2u);
  EXPECT_EQ(trace.openSpanCount(), 0u);
  EXPECT_EQ(trace.closeOpenSpans(), 0u);  // idempotent

  const std::vector<TraceEvent> events = trace.events();
  int depth = 0;
  for (const TraceEvent& e : events) {
    if (e.phase == 'B') ++depth;
    if (e.phase == 'E') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0) << "synthetic Es must balance every open B";

  // Innermost-first closure, each tagged as aborted.
  ASSERT_GE(events.size(), 2u);
  const TraceEvent& closeSecond = events[events.size() - 2];
  const TraceEvent& closeOuter = events[events.size() - 1];
  EXPECT_EQ(closeSecond.phase, 'E');
  EXPECT_EQ(closeSecond.name, "second");
  EXPECT_EQ(closeOuter.phase, 'E');
  EXPECT_EQ(closeOuter.name, "outer");
  for (const TraceEvent* e : {&closeSecond, &closeOuter}) {
    ASSERT_EQ(e->args.size(), 1u);
    EXPECT_EQ(e->args[0].key, "aborted");
    EXPECT_EQ(e->args[0].number, 1.0);
  }
}

}  // namespace
}  // namespace cuszp2
