// Unit tests for common/rng.hpp: determinism and distribution sanity.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace cuszp2 {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(1234);
  Rng b(1234);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next(), b.next()) << "diverged at step " << i;
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    const f64 u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const f64 u = rng.uniform(-3.5, 9.25);
    ASSERT_GE(u, -3.5);
    ASSERT_LT(u, 9.25);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(99);
  f64 sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntInRange) {
  Rng rng(5);
  for (u64 n : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) {
      ASSERT_LT(rng.uniformInt(n), n);
    }
  }
  EXPECT_EQ(rng.uniformInt(0), 0u);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(2024);
  const int n = 200000;
  f64 sum = 0.0;
  f64 sumSq = 0.0;
  for (int i = 0; i < n; ++i) {
    const f64 x = rng.normal();
    sum += x;
    sumSq += x * x;
  }
  const f64 mean = sum / n;
  const f64 var = sumSq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, NormalScaledMoments) {
  Rng rng(11);
  const int n = 100000;
  f64 sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(SplitMix64, KnownSequenceIsStable) {
  SplitMix64 sm(0);
  const u64 first = sm.next();
  SplitMix64 sm2(0);
  EXPECT_EQ(sm2.next(), first);
  EXPECT_NE(sm.next(), first);
}

}  // namespace
}  // namespace cuszp2
