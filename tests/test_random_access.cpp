// Tests for random access into compressed streams (paper Sec. VI-B).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "core/compressor.hpp"
#include "core/quantizer.hpp"
#include "datagen/fields.hpp"
#include "metrics/error_stats.hpp"

namespace cuszp2::core {
namespace {

struct Fixture {
  Config cfg;
  std::vector<f32> data;
  Compressed compressed;
  std::vector<f32> full;

  explicit Fixture(const std::string& dataset, usize n = 1 << 15) {
    cfg.mode = EncodingMode::Outlier;
    cfg.relErrorBound = 1e-4;
    data = datagen::generateF32(dataset, 0, n);
    const Compressor comp(cfg);
    compressed = comp.compress<f32>(data);
    full = comp.decompress<f32>(compressed.stream).data;
  }
};

TEST(RandomAccess, SingleBlockMatchesFullDecode) {
  const Fixture fx("rtm");
  const Compressor comp(fx.cfg);
  const auto header = StreamHeader::parse(fx.compressed.stream);
  for (u64 blk : {u64{0}, u64{1}, u64{17}, header.numBlocks() - 1}) {
    const auto range =
        comp.decompressBlocks<f32>(fx.compressed.stream, blk, 1);
    ASSERT_LE(range.values.size(), 32u);
    ASSERT_EQ(range.firstElement, blk * 32);
    for (usize i = 0; i < range.values.size(); ++i) {
      ASSERT_EQ(range.values[i], fx.full[range.firstElement + i])
          << "block " << blk << " elem " << i;
    }
  }
}

TEST(RandomAccess, MultiBlockRanges) {
  const Fixture fx("cesm_atm");
  const Compressor comp(fx.cfg);
  const auto header = StreamHeader::parse(fx.compressed.stream);
  const u64 nb = header.numBlocks();
  const std::vector<std::pair<u64, u64>> ranges = {
      {0, nb}, {0, 1}, {nb / 2, 3}, {nb - 2, 2}, {5, 100}};
  for (const auto& [first, count] : ranges) {
    const auto range =
        comp.decompressBlocks<f32>(fx.compressed.stream, first, count);
    for (usize i = 0; i < range.values.size(); ++i) {
      ASSERT_EQ(range.values[i], fx.full[range.firstElement + i]);
    }
  }
}

TEST(RandomAccess, ErrorBoundHoldsOnRange) {
  const Fixture fx("miranda");
  const Compressor comp(fx.cfg);
  const auto range = comp.decompressBlocks<f32>(fx.compressed.stream, 10, 50);
  const f64 absEb = StreamHeader::parse(fx.compressed.stream).absErrorBound;
  for (usize i = 0; i < range.values.size(); ++i) {
    const f64 v = fx.data[range.firstElement + i];
    // Allow the half-ulp of the final f32 rounding on top of the bound.
    ASSERT_NEAR(range.values[i], v,
                absEb * (1 + 1e-6) + std::abs(v) * 6.0e-8);
  }
}

TEST(RandomAccess, OutOfRangeRejected) {
  const Fixture fx("scale", 1 << 12);
  const Compressor comp(fx.cfg);
  const auto header = StreamHeader::parse(fx.compressed.stream);
  const u64 nb = header.numBlocks();
  EXPECT_THROW(comp.decompressBlocks<f32>(fx.compressed.stream, nb, 1),
               Error);
  EXPECT_THROW(comp.decompressBlocks<f32>(fx.compressed.stream, 0, nb + 1),
               Error);
  EXPECT_THROW(comp.decompressBlocks<f32>(fx.compressed.stream, 0, 0),
               Error);
}

TEST(RandomAccess, PartialFinalBlock) {
  // Element count not a multiple of the block size: the final block is
  // short and the returned range must match.
  Config cfg;
  cfg.relErrorBound = 1e-3;
  const Compressor comp(cfg);
  std::vector<f32> data(1000);  // 1000 = 31*32 + 8
  for (usize i = 0; i < data.size(); ++i) {
    data[i] = static_cast<f32>(i) * 0.01f;
  }
  const auto c = comp.compress<f32>(data);
  const auto header = StreamHeader::parse(c.stream);
  const auto range = comp.decompressBlocks<f32>(
      c.stream, header.numBlocks() - 1, 1);
  EXPECT_EQ(range.values.size(), 1000u - (header.numBlocks() - 1) * 32);
}

TEST(RandomAccess, ReadsFarLessThanFullDecode) {
  const Fixture fx("jetin", 1 << 17);
  const Compressor comp(fx.cfg);
  const auto one = comp.decompressBlocks<f32>(fx.compressed.stream, 100, 1);
  const auto full = comp.decompress<f32>(fx.compressed.stream);
  // Random access reads the offset array + one payload; far less than the
  // full payload + full output writes.
  EXPECT_LT(one.profile.mem.totalBytes(),
            full.profile.mem.totalBytes() / 4);
  // And the modelled throughput relative to the original size is much
  // higher (the paper's TB-level claim).
  EXPECT_GT(one.profile.endToEndGBps, full.profile.endToEndGBps);
}

TEST(RandomAccess, WorksWithChainedScanConfig) {
  Fixture fx("nyx", 1 << 13);
  Config cfg = fx.cfg;
  cfg.syncAlgorithm = scan::Algorithm::ChainedScan;
  const Compressor comp(cfg);
  const auto range = comp.decompressBlocks<f32>(fx.compressed.stream, 3, 5);
  for (usize i = 0; i < range.values.size(); ++i) {
    ASSERT_EQ(range.values[i], fx.full[range.firstElement + i]);
  }
}

TEST(RandomAccess, DoublePrecision) {
  Config cfg;
  cfg.relErrorBound = 1e-3;
  const Compressor comp(cfg);
  const auto data = datagen::generateF64("s3d", 1, 1 << 13);
  const auto c = comp.compress<f64>(data);
  const auto full = comp.decompress<f64>(c.stream);
  const auto range = comp.decompressBlocks<f64>(c.stream, 7, 9);
  for (usize i = 0; i < range.values.size(); ++i) {
    ASSERT_EQ(range.values[i], full.data[range.firstElement + i]);
  }
}

}  // namespace
}  // namespace cuszp2::core
