// Randomized configuration-matrix property test: random fields compressed
// under random valid configurations must always round-trip within the
// bound and decode identically through a default-config compressor (the
// stream is self-describing). This is the broadest invariant sweep in the
// suite — any interaction bug between block size, mode, predictor,
// rounding, sync algorithm, vectorization, and checksums fails here.
#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/compressor.hpp"
#include "core/quantizer.hpp"
#include "datagen/fields.hpp"
#include "metrics/error_stats.hpp"

namespace cuszp2::core {
namespace {

const std::vector<std::string>& corpusDatasets() {
  static const std::vector<std::string> kDatasets = {
      "cesm_atm", "hacc", "rtm", "scale", "qmcpack",
      "nyx",      "jetin", "miranda", "syntruss"};
  return kDatasets;
}

Config randomConfig(Rng& rng, f64 absEb) {
  Config cfg;
  cfg.absErrorBound = absEb;
  const u32 blockSizes[] = {8, 16, 32, 64, 128, 256};
  cfg.blockSize = blockSizes[rng.uniformInt(6)];
  cfg.blocksPerTile = 1 + static_cast<u32>(rng.uniformInt(256));
  cfg.mode = rng.uniform() < 0.5 ? EncodingMode::Plain
                                 : EncodingMode::Outlier;
  cfg.predictor = rng.uniform() < 0.5 ? Predictor::FirstOrder
                                      : Predictor::SecondOrder;
  cfg.roundingMode = rng.uniform() < 0.5 ? RoundingMode::Nearest
                                         : RoundingMode::Ceiling;
  cfg.syncAlgorithm = rng.uniform() < 0.5
                          ? scan::Algorithm::DecoupledLookback
                          : scan::Algorithm::ChainedScan;
  cfg.vectorizedAccess = rng.uniform() < 0.5;
  cfg.checksum = rng.uniform() < 0.5;
  return cfg;
}

TEST(ConfigMatrix, RandomConfigsAlwaysRoundTrip) {
  Rng rng(20260704);
  for (int trial = 0; trial < 40; ++trial) {
    const auto& dataset =
        corpusDatasets()[rng.uniformInt(corpusDatasets().size())];
    const u32 field = static_cast<u32>(
        rng.uniformInt(datagen::datasetInfo(dataset).numFields));
    const usize n = 1 + rng.uniformInt(20000);
    const auto data = datagen::generateF32(dataset, field, n);

    const f64 rel = 10.0e-3 / static_cast<f64>(1 + rng.uniformInt(100));
    const f64 absEb =
        Quantizer::absFromRel(rel, metrics::valueRange<f32>(data));
    const Config cfg = randomConfig(rng, absEb);

    SCOPED_TRACE("trial " + std::to_string(trial) + " dataset " + dataset +
                 " field " + std::to_string(field) + " n " +
                 std::to_string(n) + " bs " +
                 std::to_string(cfg.blockSize) + " mode " +
                 toString(cfg.mode) + " pred " + toString(cfg.predictor));

    const Compressor comp(cfg);
    const auto c = comp.compress<f32>(data);
    ASSERT_GT(c.stream.size(), StreamHeader::kBytes);

    // Decode through a *default* compressor: streams are self-describing.
    Config defaultCfg;
    defaultCfg.absErrorBound = 1.0;
    const auto d = Compressor(defaultCfg).decompress<f32>(c.stream);
    ASSERT_EQ(d.data.size(), data.size());

    const auto stats = metrics::computeErrorStats<f32>(data, d.data);
    if (cfg.roundingMode == RoundingMode::Nearest) {
      ASSERT_TRUE(stats.withinBoundFp(absEb, Precision::F32))
          << "max " << stats.maxAbsError << " eb " << absEb;
    } else {
      // Ceiling: one-sided error in (-2eb, 0].
      ASSERT_TRUE(stats.withinBoundFp(2.0 * absEb, Precision::F32))
          << "max " << stats.maxAbsError << " eb " << absEb;
    }

    // Random access must agree with the full decode on a random range.
    const auto header = StreamHeader::parse(c.stream);
    if (header.numBlocks() > 1) {
      const u64 first = rng.uniformInt(header.numBlocks());
      const u64 count =
          1 + rng.uniformInt(header.numBlocks() - first);
      const auto range = comp.decompressBlocks<f32>(c.stream, first, count);
      for (usize i = 0; i < range.values.size(); ++i) {
        ASSERT_EQ(range.values[i], d.data[range.firstElement + i])
            << "range elem " << i;
      }
    }
  }
}

TEST(ConfigMatrix, RandomConfigsRoundTripF64) {
  Rng rng(777);
  for (int trial = 0; trial < 15; ++trial) {
    const char* dataset = rng.uniform() < 0.5 ? "s3d" : "nwchem";
    const usize n = 1 + rng.uniformInt(10000);
    const auto data = datagen::generateF64(dataset, 0, n);
    const f64 absEb =
        Quantizer::absFromRel(1e-4, metrics::valueRange<f64>(data));
    const Config cfg = randomConfig(rng, absEb);
    SCOPED_TRACE("trial " + std::to_string(trial));

    const Compressor comp(cfg);
    const auto c = comp.compress<f64>(data);
    const auto d = comp.decompress<f64>(c.stream);
    const auto stats = metrics::computeErrorStats<f64>(data, d.data);
    const f64 bound =
        cfg.roundingMode == RoundingMode::Ceiling ? 2.0 * absEb : absEb;
    ASSERT_TRUE(stats.withinBoundFp(bound, Precision::F64))
        << stats.maxAbsError;
  }
}

}  // namespace
}  // namespace cuszp2::core
