// Content-addressed block store: cross-tenant dedup, refcount GC, the
// save/load zero-copy form, and the background compaction worker.
//
// The load-bearing acceptance tests are:
//   * DoublePutAcrossTenantsStoresChunksOnce — two tenants putting the
//     identical field store each unique chunk exactly once, and both
//     logical views read back byte-identically;
//   * DeleteWhileCompactingDropsCommit / RewriteWhileCompacting… — the
//     generation check makes a racing foreground delete/rewrite win over
//     a compactor's stale commit;
//   * ZeroRefcountResurrection… — deferGc parks a dead chunk, an
//     identical re-put revives it for zero bytes, and the threaded race
//     never corrupts refcounts (checkInvariants);
//   * ClusterDeletedArchiveIsNotResurrectedOnRevive — a delete issued
//     while a replica shard is Down is honored after revive: failover
//     re-replication restores only catalog entries (GC mid-failover);
//   * CompactionMigratesColdV1ToV3ByteExact — a cold hot-encoded object
//     is migrated to the v3 pipeline only after the byte-exact round-trip
//     proof, and reads are identical before and after.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "cas/block_store.hpp"
#include "cas/compaction.hpp"
#include "cluster/cluster.hpp"
#include "common/crc32.hpp"
#include "common/error.hpp"
#include "common/hash128.hpp"
#include "core/format.hpp"
#include "core/stream.hpp"
#include "datagen/fields.hpp"
#include "io/archive.hpp"
#include "io/raw.hpp"
#include "telemetry/metrics.hpp"

using namespace cuszp2;

namespace {

// Deterministic aperiodic filler: an affine byte ramp repeats every 256
// bytes and would dedup across chunk boundaries by accident, so mix the
// index through a 64-bit hash instead.
std::vector<std::byte> patternBytes(usize n, u32 salt = 0) {
  std::vector<std::byte> out(n);
  u64 x = 0x9E3779B97F4A7C15ull + salt;
  for (usize i = 0; i < n; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    out[i] = static_cast<std::byte>(x & 0xFF);
  }
  return out;
}

std::vector<std::byte> compressField(const core::Config& cfg,
                                     const std::string& dataset,
                                     u32 fieldIndex, usize elems) {
  const std::vector<f32> field =
      datagen::generateF32(dataset, fieldIndex, elems);
  core::CompressorStream stream(cfg);
  return stream.compress<f32>(std::span<const f32>(field)).stream;
}

core::Config relConfig(f64 rel) {
  core::Config cfg;
  cfg.relErrorBound = rel;
  return cfg;
}

/// Unique scratch path; removed by the guard.
struct TempFile {
  std::string path;
  explicit TempFile(const std::string& stem)
      : path((std::filesystem::temp_directory_path() /
              (stem + "-" + std::to_string(::getpid()) + ".cas"))
                 .string()) {
    std::filesystem::remove(path);
  }
  ~TempFile() { std::filesystem::remove(path); }
};

}  // namespace

// ---------------------------------------------------------------------
// Hash

TEST(Hash128Test, DeterministicSeededAndSpread) {
  const auto a = patternBytes(1000);
  const auto b = patternBytes(1000, 1);
  EXPECT_EQ(hash128(ConstByteSpan(a)), hash128(ConstByteSpan(a)));
  EXPECT_NE(hash128(ConstByteSpan(a)), hash128(ConstByteSpan(b)));
  EXPECT_NE(hash128(ConstByteSpan(a), 1), hash128(ConstByteSpan(a), 2));
  // One-byte perturbation flips the digest (no positional blind spots).
  auto c = a;
  c[999] ^= std::byte{1};
  EXPECT_NE(hash128(ConstByteSpan(a)), hash128(ConstByteSpan(c)));
  EXPECT_EQ(hash128(ConstByteSpan(a)).hex().size(), 32u);
}

// ---------------------------------------------------------------------
// BlockStore basics

TEST(BlockStoreTest, PutGetRoundTripAndAccounting) {
  telemetry::registry().setEnabled(false);
  cas::BlockStore store({.chunkBytes = 1024});
  const auto bytes = patternBytes(3000);

  const cas::PutResult r = store.put("climate", "run-1", ConstByteSpan(bytes));
  EXPECT_EQ(r.logicalBytes, 3000u);
  EXPECT_EQ(r.newChunks, 3u);  // 1024 + 1024 + 952
  EXPECT_EQ(r.dedupChunks, 0u);
  EXPECT_EQ(r.physicalBytesAdded, 3000u);
  EXPECT_FALSE(r.replaced);

  EXPECT_TRUE(store.contains("climate", "run-1"));
  EXPECT_FALSE(store.contains("climate", "run-2"));
  EXPECT_EQ(store.get("climate", "run-1"), bytes);
  EXPECT_EQ(store.crcOf("climate", "run-1"), crc32(ConstByteSpan(bytes)));

  const cas::StoreStats s = store.stats();
  EXPECT_EQ(s.objects, 1u);
  EXPECT_EQ(s.uniqueChunks, 3u);
  EXPECT_EQ(s.logicalChunks, 3u);
  EXPECT_EQ(s.logicalBytes, 3000u);
  EXPECT_EQ(s.physicalBytes, 3000u);
  store.checkInvariants();
  EXPECT_TRUE(store.verifyAll());

  EXPECT_THROW(store.get("climate", "missing"), Error);
  EXPECT_THROW(store.put("", "x", ConstByteSpan(bytes)), Error);
}

TEST(BlockStoreTest, DoublePutAcrossTenantsStoresChunksOnce) {
  telemetry::registry().setEnabled(false);
  cas::BlockStore store({.chunkBytes = 512});
  const auto bytes = patternBytes(2048);

  store.put("climate", "field", ConstByteSpan(bytes));
  const cas::StoreStats one = store.stats();
  const cas::PutResult r = store.put("physics", "field", ConstByteSpan(bytes));

  // The second tenant's put is pure dedup: zero physical bytes, every
  // chunk served by an existing entry.
  EXPECT_EQ(r.newChunks, 0u);
  EXPECT_EQ(r.dedupChunks, 4u);
  EXPECT_EQ(r.physicalBytesAdded, 0u);

  const cas::StoreStats two = store.stats();
  EXPECT_EQ(two.uniqueChunks, one.uniqueChunks);
  EXPECT_EQ(two.physicalBytes, one.physicalBytes);
  EXPECT_EQ(two.objects, 2u);
  EXPECT_EQ(two.logicalBytes, 2 * one.logicalBytes);
  EXPECT_EQ(two.bytesSaved(), 2048u);
  EXPECT_GT(two.dedupRatio(), 1.9);

  EXPECT_EQ(store.get("climate", "field"), bytes);
  EXPECT_EQ(store.get("physics", "field"), bytes);

  // Refcount GC: dropping one tenant's view must not free the shared
  // chunks out from under the other.
  EXPECT_TRUE(store.erase("climate", "field"));
  EXPECT_EQ(store.get("physics", "field"), bytes);
  EXPECT_EQ(store.stats().uniqueChunks, one.uniqueChunks);
  EXPECT_TRUE(store.erase("physics", "field"));
  EXPECT_EQ(store.stats().uniqueChunks, 0u);
  EXPECT_EQ(store.stats().physicalBytes, 0u);
  store.checkInvariants();
}

TEST(BlockStoreTest, RewriteReleasesOldChunksAndBumpsGeneration) {
  telemetry::registry().setEnabled(false);
  cas::BlockStore store({.chunkBytes = 256});
  store.put("t", "obj", ConstByteSpan(patternBytes(1024, 1)));
  const u64 gen0 = store.objects("t")[0].generation;

  const auto next = patternBytes(512, 2);
  const cas::PutResult r = store.put("t", "obj", ConstByteSpan(next));
  EXPECT_TRUE(r.replaced);
  EXPECT_EQ(store.get("t", "obj"), next);
  EXPECT_GT(store.objects("t")[0].generation, gen0);

  const cas::StoreStats s = store.stats();
  EXPECT_EQ(s.objects, 1u);
  EXPECT_EQ(s.uniqueChunks, 2u);  // the old four chunks are gone
  EXPECT_EQ(s.physicalBytes, 512u);
  store.checkInvariants();
}

// ---------------------------------------------------------------------
// Refcount GC edge cases (ISSUE satellite: double-put, delete-while-
// compacting, GC mid-failover, resurrection race)

TEST(BlockStoreTest, ZeroRefcountResurrectionDeterministic) {
  telemetry::registry().setEnabled(false);
  cas::BlockStore store({.chunkBytes = 512, .deferGc = true});
  const auto bytes = patternBytes(1536);

  store.put("t", "a", ConstByteSpan(bytes));
  EXPECT_TRUE(store.erase("t", "a"));
  // Parked, not freed: the entries sit at refcount zero awaiting gc().
  EXPECT_EQ(store.stats().uniqueChunks, 0u);
  EXPECT_EQ(store.stats().parkedChunks, 3u);

  // An identical re-put resurrects every parked chunk for zero bytes.
  const cas::PutResult r = store.put("t", "b", ConstByteSpan(bytes));
  EXPECT_EQ(r.newChunks, 0u);
  EXPECT_EQ(r.dedupChunks, 3u);
  EXPECT_EQ(r.physicalBytesAdded, 0u);
  EXPECT_EQ(store.stats().resurrections, 3u);
  EXPECT_EQ(store.stats().parkedChunks, 0u);
  EXPECT_EQ(store.stats().uniqueChunks, 3u);
  EXPECT_EQ(store.get("t", "b"), bytes);

  // Park again and let the sweep actually free them this time.
  EXPECT_TRUE(store.erase("t", "b"));
  EXPECT_EQ(store.stats().parkedChunks, 3u);
  EXPECT_EQ(store.gc(), 3u);
  EXPECT_EQ(store.stats().parkedChunks, 0u);
  EXPECT_EQ(store.stats().gcFreedChunks, 3u);
  EXPECT_EQ(store.stats().gcFreedBytes, 1536u);
  store.checkInvariants();
}

TEST(BlockStoreTest, ResurrectionRaceUnderThreadsKeepsInvariants) {
  telemetry::registry().setEnabled(false);
  cas::BlockStore store({.chunkBytes = 256, .deferGc = true});
  const auto shared = patternBytes(1024);

  // Writers re-put/erase views of the SAME content while a sweeper runs
  // gc() — the race a parked chunk must survive: either a put wins and
  // resurrects it, or gc wins and the put stores it fresh; never both,
  // never a refcount off by one.
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int w = 0; w < 4; ++w) {
    threads.emplace_back([&, w] {
      const std::string name = "obj-" + std::to_string(w);
      for (int i = 0; i < 200; ++i) {
        store.put("tenant", name, ConstByteSpan(shared));
        EXPECT_EQ(store.get("tenant", name), shared);
        store.erase("tenant", name);
      }
    });
  }
  threads.emplace_back([&] {
    while (!stop.load()) store.gc();
  });
  for (int w = 0; w < 4; ++w) threads[static_cast<usize>(w)].join();
  stop.store(true);
  threads.back().join();

  store.gc();
  store.checkInvariants();
  const cas::StoreStats s = store.stats();
  EXPECT_EQ(s.objects, 0u);
  EXPECT_EQ(s.uniqueChunks, 0u);
  EXPECT_EQ(s.parkedChunks, 0u);
  EXPECT_EQ(s.physicalBytes, 0u);
  // Final put after the storm still round-trips.
  store.put("tenant", "after", ConstByteSpan(shared));
  EXPECT_EQ(store.get("tenant", "after"), shared);
}

TEST(BlockStoreTest, DeleteWhileCompactingDropsCommit) {
  telemetry::registry().setEnabled(false);
  cas::BlockStore store;
  const auto stream = compressField(relConfig(1e-3), "cesm_atm", 0, 4096);
  store.put("t", "cold", ConstByteSpan(stream));

  auto candidates = store.compactionCandidates(0, 8);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].bytes, stream);

  // Foreground delete races ahead of the compactor's commit: the stale
  // generation is refused and nothing reappears.
  EXPECT_TRUE(store.erase("t", "cold"));
  EXPECT_FALSE(store.commitCompaction("t", "cold", ConstByteSpan(stream),
                                      candidates[0].generation));
  EXPECT_FALSE(store.contains("t", "cold"));
  store.checkInvariants();
}

TEST(BlockStoreTest, DeleteRecreateWhileCompactingDropsCommit) {
  telemetry::registry().setEnabled(false);
  cas::BlockStore store;
  const auto oldStream = compressField(relConfig(1e-3), "cesm_atm", 0, 4096);
  const auto fresh = patternBytes(2048, 7);
  store.put("t", "obj", ConstByteSpan(oldStream));

  auto candidates = store.compactionCandidates(0, 8);
  ASSERT_EQ(candidates.size(), 1u);

  // ABA: the foreground deletes the key and RECREATES it with different
  // content while the compactor re-encodes. The recreated object's
  // generation must not replay the scanned one (generations come from the
  // store-global clock), so the stale commit is refused and the fresh
  // content survives.
  EXPECT_TRUE(store.erase("t", "obj"));
  store.put("t", "obj", ConstByteSpan(fresh));
  EXPECT_NE(store.objects("t")[0].generation, candidates[0].generation);
  EXPECT_FALSE(store.commitCompaction("t", "obj", ConstByteSpan(oldStream),
                                      candidates[0].generation));
  EXPECT_EQ(store.get("t", "obj"), fresh);
  store.checkInvariants();
}

TEST(BlockStoreTest, RewriteWhileCompactingDropsCommit) {
  telemetry::registry().setEnabled(false);
  cas::BlockStore store;
  const auto oldStream = compressField(relConfig(1e-3), "cesm_atm", 0, 4096);
  const auto newStream = compressField(relConfig(1e-2), "cesm_atm", 1, 4096);
  store.put("t", "obj", ConstByteSpan(oldStream));

  auto candidates = store.compactionCandidates(0, 8);
  ASSERT_EQ(candidates.size(), 1u);

  // Foreground rewrite wins; the compactor's stale bytes must not
  // clobber the fresh content.
  store.put("t", "obj", ConstByteSpan(newStream));
  EXPECT_FALSE(store.commitCompaction("t", "obj", ConstByteSpan(oldStream),
                                      candidates[0].generation));
  EXPECT_EQ(store.get("t", "obj"), newStream);
}

// ---------------------------------------------------------------------
// Compaction worker

TEST(CompactionTest, MigratesColdV1ToV3ByteExact) {
  telemetry::registry().setEnabled(false);
  cas::BlockStore store;
  const core::Config hot = relConfig(1e-3);
  const std::vector<f32> field = datagen::generateF32("cesm_atm", 2, 8192);
  core::CompressorStream codec(hot);
  const auto v1 = codec.compress<f32>(std::span<const f32>(field)).stream;
  const auto before = codec.decompress<f32>(v1).data;

  store.put("climate", "cold", ConstByteSpan(v1));
  ASSERT_EQ(store.objects()[0].formatVersion, core::kFormatVersion);

  // Make it cold: every put/get advances the logical clock.
  for (int i = 0; i < 8; ++i) {
    store.put("other", "warm-" + std::to_string(i),
              ConstByteSpan(patternBytes(128, static_cast<u32>(i))));
  }

  cas::CompactionConfig ccfg;
  ccfg.coldTicks = 4;
  ccfg.requireSmaller = false;  // migrate even when v3 loses on size
  cas::CompactionWorker worker(store, ccfg);
  EXPECT_EQ(worker.runOnce(), 1u);

  const cas::CompactionStats cs = worker.stats();
  EXPECT_EQ(cs.migrated, 1u);
  EXPECT_EQ(cs.roundTripRejects, 0u);
  EXPECT_EQ(store.stats().compactionMigrations, 1u);

  // The migrated object is a v3 stream that reconstructs the identical
  // element bytes the old stream did.
  const std::vector<std::byte> migrated = store.get("climate", "cold");
  EXPECT_NE(migrated, v1);
  const auto header = core::StreamHeader::tryParse(migrated);
  ASSERT_TRUE(header.has_value());
  EXPECT_EQ(header->version, core::kFormatVersionV3);
  const auto after = codec.decompress<f32>(migrated).data;
  ASSERT_EQ(after.size(), before.size());
  EXPECT_EQ(std::memcmp(after.data(), before.data(),
                        before.size() * sizeof(f32)),
            0);

  // A second sweep finds nothing: v3 objects are not candidates.
  EXPECT_EQ(worker.runOnce(), 0u);
  EXPECT_EQ(worker.stats().scanned, 1u);
}

TEST(CompactionTest, SkipsWarmObjectsAndForeignBytes) {
  telemetry::registry().setEnabled(false);
  cas::BlockStore store;
  store.put("t", "blob", ConstByteSpan(patternBytes(4096)));
  const auto stream = compressField(relConfig(1e-3), "hacc", 0, 4096);
  store.put("t", "warm", ConstByteSpan(stream));

  // coldTicks larger than the store's age: nothing qualifies.
  cas::CompactionConfig coldCfg;
  coldCfg.coldTicks = 1000;
  cas::CompactionWorker coldWorker(store, coldCfg);
  EXPECT_EQ(coldWorker.runOnce(), 0u);
  EXPECT_EQ(coldWorker.stats().scanned, 0u);

  // coldTicks 0 scans the stream but never the unparseable blob (it is
  // not a candidate at all: formatVersion 0).
  cas::CompactionConfig cfg;
  cfg.coldTicks = 0;
  cfg.requireSmaller = false;
  cas::CompactionWorker worker(store, cfg);
  worker.runOnce();
  EXPECT_EQ(worker.stats().scanned, 1u);
  EXPECT_EQ(store.get("t", "blob"), patternBytes(4096));

  // Invalid configs are rejected up front.
  cas::CompactionConfig bad;
  bad.pipeline = core::PipelineMode::Legacy;
  EXPECT_THROW(cas::CompactionWorker(store, bad), Error);
}

TEST(CompactionTest, ChaosAbortLeavesOldObjectIntact) {
  telemetry::registry().setEnabled(false);
  cas::BlockStore store;
  const auto v1 = compressField(relConfig(1e-3), "cesm_atm", 0, 4096);
  store.put("t", "victim", ConstByteSpan(v1));

  cas::CompactionConfig cfg;
  cfg.coldTicks = 0;
  cfg.requireSmaller = false;
  cfg.chaosAbort = [](u64, usize) { return true; };  // kill pre-commit
  cas::CompactionWorker worker(store, cfg);
  EXPECT_EQ(worker.runOnce(), 0u);
  EXPECT_EQ(worker.stats().chaosAborts, 1u);
  EXPECT_EQ(worker.stats().migrated, 0u);

  // The kill window is after re-encode, before commit: the store still
  // serves the original bytes.
  EXPECT_EQ(store.get("t", "victim"), v1);
  EXPECT_EQ(store.objects()[0].formatVersion, core::kFormatVersion);
  store.checkInvariants();
}

TEST(CompactionTest, BackgroundThreadMigratesWithoutBlockingForeground) {
  telemetry::registry().setEnabled(false);
  cas::BlockStore store;
  const auto v1 = compressField(relConfig(1e-3), "cesm_atm", 1, 4096);
  store.put("t", "cold", ConstByteSpan(v1));
  const auto expectCrc = store.crcOf("t", "cold");

  cas::CompactionConfig cfg;
  cfg.coldTicks = 0;
  cfg.requireSmaller = false;
  cfg.pollMillis = 1;
  cas::CompactionWorker worker(store, cfg);
  worker.start();
  EXPECT_TRUE(worker.running());

  // Foreground keeps serving while the worker sweeps; owner-driven
  // runOnce() calls interleave with the background thread's sweeps (the
  // sweep mutex serializes them — the shared codec is never raced).
  for (int i = 0; i < 50; ++i) {
    store.put("fg", "obj", ConstByteSpan(patternBytes(512, static_cast<u32>(i))));
    EXPECT_EQ(store.get("fg", "obj"), patternBytes(512, static_cast<u32>(i)));
    worker.runOnce();
    if (worker.stats().migrated > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  worker.stop();
  EXPECT_FALSE(worker.running());
  store.checkInvariants();

  // Whether or not the sweep won the race, the object decodes to the
  // same content (commit only happens after the byte-exact proof).
  if (worker.stats().migrated > 0) {
    EXPECT_NE(store.crcOf("t", "cold"), expectCrc);  // bytes changed...
    core::CompressorStream codec(relConfig(1e-3));
    const auto a = codec.decompress<f32>(store.get("t", "cold")).data;
    const auto b = codec.decompress<f32>(ConstByteSpan(v1)).data;
    EXPECT_EQ(a, b);  // ...content did not
  } else {
    EXPECT_EQ(store.get("t", "cold"), v1);
  }
}

// ---------------------------------------------------------------------
// Persistence (save/load, zero-copy reads)

TEST(BlockStoreTest, SaveLoadRoundTripServesZeroCopyViews) {
  telemetry::registry().setEnabled(false);
  TempFile file("cas-roundtrip");

  cas::BlockStore store({.chunkBytes = 512});
  const auto a = patternBytes(1500, 1);
  const auto b = patternBytes(1500, 1);  // dedup pair
  const auto c = patternBytes(700, 2);
  store.put("climate", "a", ConstByteSpan(a));
  store.put("physics", "b", ConstByteSpan(b));
  store.put("physics", "c", ConstByteSpan(c));
  const io::ParityOptions parity;
  store.save(file.path, &parity);

  const io::MappedBytes mapped(file.path);
  EXPECT_TRUE(cas::BlockStore::isStoreFile(mapped.bytes()));
  EXPECT_FALSE(cas::BlockStore::isStoreFile(ConstByteSpan(a)));

  const auto loaded = cas::BlockStore::load(file.path);
  // Chunk geometry and seed travel with the file.
  EXPECT_EQ(loaded->config().chunkBytes, 512u);
  EXPECT_EQ(loaded->get("climate", "a"), a);
  EXPECT_EQ(loaded->get("physics", "b"), b);
  EXPECT_EQ(loaded->get("physics", "c"), c);
  EXPECT_EQ(loaded->crcOf("physics", "c"), crc32(ConstByteSpan(c)));
  EXPECT_TRUE(loaded->verifyAll());
  loaded->checkInvariants();

  // Occupancy survives the round trip — including the dedup.
  const cas::StoreStats s = loaded->stats();
  EXPECT_EQ(s.objects, 3u);
  EXPECT_EQ(s.uniqueChunks, 5u);  // 3 shared + 2 unique
  EXPECT_EQ(s.logicalChunks, 8u);
  EXPECT_EQ(s.logicalBytes, 3700u);
  EXPECT_EQ(s.physicalBytes, 2200u);

  // A loaded store keeps working as a store: new puts dedup against
  // mapped chunks, erases release them.
  const cas::PutResult r = loaded->put("newbie", "a2", ConstByteSpan(a));
  EXPECT_EQ(r.physicalBytesAdded, 0u);
  EXPECT_EQ(r.dedupChunks, 3u);
}

namespace {

/// Flips one payload byte of a saved store's "cas.data" section; with
/// `patchTrailer`, recomputes the section's CRC-32 trailer over the
/// tampered payloads so the corruption survives the load-time guard.
void tamperDataSection(const std::string& path, bool patchTrailer) {
  std::vector<std::byte> raw = io::readBytes(path);
  const io::ArchiveReader reader{ConstByteSpan(raw)};
  const ConstByteSpan dataField = reader.field("cas.data");
  ASSERT_GE(dataField.size(), 5u);
  const usize dataOff = static_cast<usize>(dataField.data() - raw.data());
  const usize payloadLen = dataField.size() - 4;

  raw[dataOff + 100] ^= std::byte{0x40};
  if (patchTrailer) {
    const u32 fixed =
        crc32(ConstByteSpan(raw).subspan(dataOff, payloadLen));
    for (int i = 0; i < 4; ++i) {
      raw[dataOff + payloadLen + static_cast<usize>(i)] =
          static_cast<std::byte>((fixed >> (8 * i)) & 0xFF);
    }
  }
  io::writeBytes(path, ConstByteSpan(raw));
}

}  // namespace

TEST(BlockStoreTest, LoadRejectsTamperedDataSection) {
  telemetry::registry().setEnabled(false);
  TempFile file("cas-tamper-trailer");

  cas::BlockStore store({.chunkBytes = 256});
  store.put("t", "obj", ConstByteSpan(patternBytes(600)));
  store.save(file.path);

  // A flipped payload byte breaks the data section's CRC trailer, which
  // load verifies eagerly — corruption never reaches the chunk maps, so
  // even hash-bypassing reads (crcOf, re-save) are safe.
  tamperDataSection(file.path, /*patchTrailer=*/false);
  EXPECT_THROW(cas::BlockStore::load(file.path), Error);
}

TEST(BlockStoreTest, LoadDetectsTamperedPayloadAtGetTime) {
  telemetry::registry().setEnabled(false);
  TempFile file("cas-tamper-hash");

  cas::BlockStore store({.chunkBytes = 256});
  const auto bytes = patternBytes(600);
  store.put("t", "obj", ConstByteSpan(bytes));
  store.save(file.path);

  // Flip a payload byte AND patch the section trailer to match: the
  // whole-section CRC guard passes, so the load succeeds — the per-chunk
  // content hash is the layer that catches the damage when the chunk is
  // actually served.
  tamperDataSection(file.path, /*patchTrailer=*/true);

  const auto tampered = cas::BlockStore::load(file.path);
  EXPECT_THROW(tampered->get("t", "obj"), Error);
  EXPECT_FALSE(tampered->verifyAll());
}

TEST(BlockStoreTest, SaveOverLoadedPathIsAtomicAndKeepsViewsValid) {
  telemetry::registry().setEnabled(false);
  TempFile file("cas-resave");
  const auto a = patternBytes(2000, 1);
  {
    cas::BlockStore store({.chunkBytes = 512});
    store.put("t", "a", ConstByteSpan(a));
    store.save(file.path);
  }

  // Mutate a loaded store and save it back over the SAME path it still
  // maps: the temp+rename write leaves the mapped old inode untouched,
  // so the live store keeps serving its view-backed chunks.
  const auto loaded = cas::BlockStore::load(file.path);
  const auto b = patternBytes(900, 2);
  loaded->put("t", "b", ConstByteSpan(b));
  loaded->save(file.path);

  EXPECT_EQ(loaded->get("t", "a"), a);
  EXPECT_EQ(loaded->crcOf("t", "a"), crc32(ConstByteSpan(a)));
  EXPECT_TRUE(loaded->verifyAll());
  loaded->checkInvariants();

  // And the file on disk is the complete new store.
  const auto reloaded = cas::BlockStore::load(file.path);
  EXPECT_EQ(reloaded->get("t", "a"), a);
  EXPECT_EQ(reloaded->get("t", "b"), b);
  EXPECT_TRUE(reloaded->verifyAll());
}

// ---------------------------------------------------------------------
// Cluster integration (per-shard replica stores, delete vs. revive)

TEST(ClusterCasTest, ReplicaStoresDedupAcrossArchives) {
  telemetry::registry().setEnabled(false);
  cluster::ClusterConfig ccfg;
  ccfg.shards = 2;
  ccfg.replicas = 2;
  ccfg.shard.workers = 1;
  cluster::CompressionCluster cl(ccfg);

  // Two tenants archive the identical payload: with R=2 over 2 shards
  // every shard holds both copies, and each shard's store keeps the
  // shared chunks once.
  const auto payload = patternBytes(100000);
  cl.putArchive("climate", "ckpt", ConstByteSpan(payload));
  cl.putArchive("physics", "ckpt", ConstByteSpan(payload));

  const cas::StoreStats totals = cl.casTotals();
  EXPECT_EQ(totals.objects, 4u);  // 2 archives x 2 replicas
  EXPECT_GT(totals.dedupRatio(), 1.8);
  EXPECT_GT(totals.bytesSaved(), payload.size());

  EXPECT_EQ(cl.getArchive("climate", "ckpt").archive,
            cl.getArchive("physics", "ckpt").archive);
}

TEST(ClusterCasTest, DeletedArchiveIsNotResurrectedOnRevive) {
  telemetry::registry().setEnabled(false);
  cluster::ClusterConfig ccfg;
  ccfg.shards = 4;
  ccfg.replicas = 2;
  ccfg.shard.workers = 1;
  cluster::CompressionCluster cl(ccfg);

  const auto payload = patternBytes(20000);
  cl.putArchive("physics", "ckpt", ConstByteSpan(payload));
  cl.putArchive("physics", "keep", ConstByteSpan(patternBytes(8000, 3)));
  const u32 primary = cl.primaryShardFor("physics/ckpt");

  // GC mid-failover: the primary goes Down, THEN the archive is deleted
  // cluster-wide (Down replicas included). The revived shard re-
  // replicates from the catalog only, so the deleted key must not come
  // back even though the dead shard held a copy when it died.
  cl.killShard(primary);
  EXPECT_TRUE(cl.deleteArchive("physics", "ckpt"));
  EXPECT_FALSE(cl.deleteArchive("physics", "ckpt"));  // already gone

  cl.reviveShard(primary);
  EXPECT_THROW(cl.getArchive("physics", "ckpt"), Error);
  EXPECT_EQ(cl.getArchive("physics", "keep").archive.size(),
            io::withParityTrailer(patternBytes(8000, 3),
                                  ccfg.replicaParity)
                .size());

  // Every shard's store dropped the deleted object (refcounts released;
  // the fleet holds only the surviving archive's copies).
  const cas::StoreStats totals = cl.casTotals();
  EXPECT_EQ(totals.objects, ccfg.replicas);

  const cluster::ClusterStats stats = cl.stats();
  EXPECT_EQ(stats.archiveDeletes, 1u);
  EXPECT_GE(stats.archiveDeleteCopies, 2u);
}

TEST(ClusterCasTest, CorruptedCopyDoesNotDamageDedupPeers) {
  telemetry::registry().setEnabled(false);
  cluster::ClusterConfig ccfg;
  ccfg.shards = 2;
  ccfg.replicas = 2;
  ccfg.shard.workers = 1;
  cluster::CompressionCluster cl(ccfg);

  // Both archives share chunks inside each shard's store. Corrupting one
  // replica is a copy-on-write rewrite of that object only — its dedup
  // peer must keep reading clean bytes from the shared chunks.
  const auto payload = patternBytes(50000);
  cl.putArchive("climate", "a", ConstByteSpan(payload));
  cl.putArchive("physics", "b", ConstByteSpan(payload));
  const std::vector<std::byte> sealed = cl.getArchive("physics", "b").archive;

  const u32 primary = cl.primaryShardFor("climate/a");
  cl.corruptArchiveCopy(primary, "climate", "a", 100);
  EXPECT_EQ(cl.getArchive("physics", "b").archive, sealed);
  // The corrupted copy itself self-heals via its parity trailer.
  EXPECT_EQ(cl.getArchive("climate", "a").archive, sealed);
}
