// Unit tests for the FIFO thread pool, including the start-order guarantee
// the decoupled-lookback scan depends on.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "common/thread_pool.hpp"

namespace cuszp2 {
namespace {

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, AtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_GE(pool.workerCount(), 1u);
  std::atomic<int> ran{0};
  pool.submit([&] { ran = 1; });
  pool.wait();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&] { ++count; });
  pool.wait();
  EXPECT_EQ(count.load(), 1);
  pool.submit([&] { ++count; });
  pool.submit([&] { ++count; });
  pool.wait();
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait();  // must not hang
  SUCCEED();
}

// Tasks must *start* in submission order: a later task may not begin before
// an earlier one has begun. (Completion order is unconstrained.)
TEST(ThreadPool, FifoStartOrder) {
  ThreadPool pool(3);
  std::mutex m;
  std::vector<int> startOrder;
  for (int i = 0; i < 64; ++i) {
    pool.submit([&, i] {
      {
        std::lock_guard<std::mutex> lock(m);
        startOrder.push_back(i);
      }
    });
  }
  pool.wait();
  ASSERT_EQ(startOrder.size(), 64u);
  // With 3 workers, task i can start at most 2 positions early.
  for (usize pos = 0; pos < startOrder.size(); ++pos) {
    EXPECT_LE(static_cast<usize>(startOrder[pos]), pos + 3)
        << "task started far out of order";
  }
}

// A later-submitted task must be able to run while an earlier one blocks on
// it (the forward-progress property lookback needs).
TEST(ThreadPool, LaterTaskRunsWhileEarlierSpins) {
  ThreadPool pool(2);
  std::atomic<bool> flag{false};
  std::atomic<bool> sawFlag{false};
  pool.submit([&] {
    while (!flag.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    sawFlag = true;
  });
  pool.submit([&] { flag.store(true, std::memory_order_release); });
  pool.wait();
  EXPECT_TRUE(sawFlag.load());
}

TEST(ThreadPool, DefaultWorkersAtLeastTwo) {
  EXPECT_GE(ThreadPool::defaultWorkers(), 2u);
  EXPECT_LE(ThreadPool::defaultWorkers(), 16u);
}

TEST(ThreadPool, DestructorJoinsCleanly) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 10; ++i) {
      pool.submit([&] { ++count; });
    }
    pool.wait();
  }
  EXPECT_EQ(count.load(), 10);
}

}  // namespace
}  // namespace cuszp2
