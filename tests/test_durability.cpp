// Crash-consistent durability (docs/DURABILITY.md): the write-ahead
// journal's wire format and torn-tail tolerance, the seeded crash
// injector's purity, the hardened atomic-write primitive, BlockStore
// snapshot+tail recovery, and exactly-once durable service intake
// (including cluster shard journals).
//
// The load-bearing acceptance tests are:
//   * TornTail* — truncated, zero-filled, and garbage suffixes are all
//     discarded at replay, never fatal, with every intact record kept;
//   * BadHeaderIsUnrecoverable — only a damaged header refuses replay;
//   * ConcurrentWritersToOneDestination — the unique-temp-name regression
//     for io::writeBytesAtomic (the old fixed ".tmp" suffix let two
//     writers rename each other's half-written files);
//   * RecoverReplaysTailOntoSnapshot / RecoverSkipsSnapshotCovered… —
//     the tick-skip rule: records the snapshot already covers are
//     skipped, records after it replay, whichever side of the
//     snapshot-rename/journal-reset window a crash lands on;
//   * ServiceReplaysExactlyOnce — a restarted service re-runs exactly
//     the accepted-but-unresolved jobs, byte-identical, and a second
//     restart replays nothing;
//   * ClusterShardRecoversJournalBeforeJoining — a shard with a pending
//     journal replays it during construction, before ring membership.
//
// tools/crash_drill enumerates every crash point exhaustively; these
// tests pin the individual contracts.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "cas/block_store.hpp"
#include "cluster/cluster.hpp"
#include "common/error.hpp"
#include "core/stream.hpp"
#include "datagen/fields.hpp"
#include "io/crash.hpp"
#include "io/journal.hpp"
#include "io/raw.hpp"
#include "service/durability.hpp"
#include "service/service.hpp"

using namespace cuszp2;

namespace {

/// Unique scratch directory; removed by the guard.
struct TempDir {
  std::string path;
  explicit TempDir(const std::string& stem)
      : path((std::filesystem::temp_directory_path() /
              (stem + "-" + std::to_string(::getpid()) + "-" +
               std::to_string(counter++)))
                 .string()) {
    std::filesystem::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string file(const std::string& name) const { return path + "/" + name; }
  static inline int counter = 0;
};

std::vector<std::byte> bytesOf(const std::string& s) {
  const auto* p = reinterpret_cast<const std::byte*>(s.data());
  return {p, p + s.size()};
}

void appendRaw(const std::string& path, const std::vector<std::byte>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
}

usize fileSize(const std::string& path) {
  return static_cast<usize>(std::filesystem::file_size(path));
}

// ---------------------------------------------------------------------
// Journal wire format

TEST(Journal, RoundTripPreservesRecordsAndIdentity) {
  TempDir dir("jnl-roundtrip");
  const std::string path = dir.file("a.jnl");
  {
    io::JournalWriter w(path, /*ownerTag=*/7, /*baseTick=*/5);
    w.append(1, ConstByteSpan(bytesOf("hello")));
    w.append(2, ConstByteSpan());
    w.sync();
    EXPECT_EQ(w.recordsAppended(), 2u);
    EXPECT_EQ(w.recordsSynced(), 2u);
  }
  const io::ReplayResult replay = io::replayJournal(path);
  EXPECT_EQ(replay.ownerTag, 7u);
  EXPECT_EQ(replay.baseTick, 5u);
  ASSERT_EQ(replay.records.size(), 2u);
  EXPECT_EQ(replay.records[0].type, 1u);
  EXPECT_EQ(replay.records[0].payload, bytesOf("hello"));
  EXPECT_EQ(replay.records[1].type, 2u);
  EXPECT_TRUE(replay.records[1].payload.empty());
  EXPECT_FALSE(replay.torn);
  EXPECT_EQ(replay.discardedBytes, 0u);
}

TEST(Journal, UnsyncedRecordsAreHonestlyLost) {
  TempDir dir("jnl-unsynced");
  const std::string path = dir.file("a.jnl");
  {
    io::JournalWriter w(path, 1, 0);
    w.append(1, ConstByteSpan(bytesOf("durable")));
    w.sync();
    w.append(1, ConstByteSpan(bytesOf("never synced")));
    EXPECT_EQ(w.recordsAppended(), 2u);
    EXPECT_EQ(w.recordsSynced(), 1u);
  }  // destructor drops the unsynced suffix
  const io::ReplayResult replay = io::replayJournal(path);
  ASSERT_EQ(replay.records.size(), 1u);
  EXPECT_EQ(replay.records[0].payload, bytesOf("durable"));
  EXPECT_FALSE(replay.torn);
}

TEST(Journal, TornTailTruncatedMidRecord) {
  TempDir dir("jnl-torn-trunc");
  const std::string path = dir.file("a.jnl");
  usize afterFirst = 0;
  {
    io::JournalWriter w(path, 1, 0);
    w.append(1, ConstByteSpan(bytesOf("first record")));
    w.sync();
    afterFirst = fileSize(path);
    w.append(1, ConstByteSpan(bytesOf("second record")));
    w.sync();
  }
  // Cut the last record three bytes short — a mid-write power cut.
  std::filesystem::resize_file(path, fileSize(path) - 3);
  const io::ReplayResult replay = io::replayJournal(path);
  ASSERT_EQ(replay.records.size(), 1u);
  EXPECT_EQ(replay.records[0].payload, bytesOf("first record"));
  EXPECT_TRUE(replay.torn);
  EXPECT_EQ(replay.validBytes, afterFirst);
  EXPECT_GT(replay.discardedBytes, 0u);
}

TEST(Journal, TornTailZeroFilled) {
  TempDir dir("jnl-torn-zero");
  const std::string path = dir.file("a.jnl");
  {
    io::JournalWriter w(path, 1, 0);
    w.append(3, ConstByteSpan(bytesOf("kept")));
    w.sync();
  }
  // A zero-filled tail cannot frame a record (kRecordMagic is nonzero).
  appendRaw(path, std::vector<std::byte>(64, std::byte{0}));
  const io::ReplayResult replay = io::replayJournal(path);
  ASSERT_EQ(replay.records.size(), 1u);
  EXPECT_TRUE(replay.torn);
  EXPECT_EQ(replay.discardedBytes, 64u);
}

TEST(Journal, TornTailGarbage) {
  TempDir dir("jnl-torn-garbage");
  const std::string path = dir.file("a.jnl");
  {
    io::JournalWriter w(path, 1, 0);
    w.append(3, ConstByteSpan(bytesOf("kept")));
    w.sync();
  }
  std::vector<std::byte> junk(41);
  for (usize i = 0; i < junk.size(); ++i) {
    junk[i] = static_cast<std::byte>((i * 37 + 11) & 0xFF);
  }
  appendRaw(path, junk);
  const io::ReplayResult replay = io::replayJournal(path);
  ASSERT_EQ(replay.records.size(), 1u);
  EXPECT_EQ(replay.records[0].payload, bytesOf("kept"));
  EXPECT_TRUE(replay.torn);
  EXPECT_EQ(replay.discardedBytes, junk.size());
}

TEST(Journal, CorruptPayloadCrcStopsReplayAtTheBadFrame) {
  TempDir dir("jnl-crc");
  const std::string path = dir.file("a.jnl");
  {
    io::JournalWriter w(path, 1, 0);
    w.append(1, ConstByteSpan(bytesOf("good")));
    w.append(1, ConstByteSpan(bytesOf("soon bad")));
    w.sync();
  }
  // Flip one payload byte of the LAST record.
  std::vector<std::byte> bytes = io::readBytes(path);
  bytes.back() ^= std::byte{0x40};
  io::writeBytes(path, ConstByteSpan(bytes));
  const io::ReplayResult replay = io::replayJournal(path);
  ASSERT_EQ(replay.records.size(), 1u);
  EXPECT_EQ(replay.records[0].payload, bytesOf("good"));
  EXPECT_TRUE(replay.torn);
}

TEST(Journal, BadHeaderIsUnrecoverable) {
  TempDir dir("jnl-header");
  const std::string path = dir.file("a.jnl");
  {
    io::JournalWriter w(path, 1, 0);
    w.append(1, ConstByteSpan(bytesOf("x")));
    w.sync();
  }
  std::vector<std::byte> bytes = io::readBytes(path);
  bytes[10] ^= std::byte{0xFF};  // inside the ownerTag field
  io::writeBytes(path, ConstByteSpan(bytes));
  EXPECT_THROW(io::replayJournal(path), Error);

  // A header shorter than the fixed frame is equally unrecoverable.
  const std::string shortPath = dir.file("short.jnl");
  io::writeBytes(shortPath, ConstByteSpan(bytesOf("JNL")));
  EXPECT_THROW(io::replayJournal(shortPath), Error);
}

TEST(Journal, ResumeTruncatesTornTailAndAppends) {
  TempDir dir("jnl-resume");
  const std::string path = dir.file("a.jnl");
  {
    io::JournalWriter w(path, 9, 4);
    w.append(1, ConstByteSpan(bytesOf("one")));
    w.sync();
  }
  appendRaw(path, std::vector<std::byte>(17, std::byte{0xAB}));  // torn tail
  const io::ReplayResult before = io::replayJournal(path);
  ASSERT_TRUE(before.torn);
  {
    auto w = io::JournalWriter::resume(path, before.ownerTag, before.baseTick,
                                       before.validBytes);
    w->append(2, ConstByteSpan(bytesOf("two")));
    w->sync();
  }
  const io::ReplayResult after = io::replayJournal(path);
  ASSERT_EQ(after.records.size(), 2u);
  EXPECT_EQ(after.records[1].payload, bytesOf("two"));
  EXPECT_FALSE(after.torn);  // the resume truncated the junk away
}

// ---------------------------------------------------------------------
// Crash injection

TEST(CrashPlan, ActionIsPureInSeedSiteAndOrdinal) {
  io::CrashPlan plan;
  plan.seed = 42;
  plan.pathPattern = "target";
  plan.site = io::CrashSite::Write;
  plan.mode = io::CrashMode::Tear;
  plan.triggerOp = 2;

  const auto runOnce = [&] {
    io::installCrashPlan(plan);
    io::CrashAction fired;
    for (int i = 0; i < 3; ++i) {
      const io::CrashAction act =
          io::crashCheckpoint(io::CrashSite::Write, "/tmp/target-file", 1000);
      if (i < 2) {
        EXPECT_FALSE(act.fire);
      } else {
        EXPECT_TRUE(act.fire);
        fired = act;
      }
    }
    io::clearCrashPlan();
    return fired;
  };

  const io::CrashAction a = runOnce();
  const io::CrashAction b = runOnce();
  EXPECT_EQ(a.keepBytes, b.keepBytes);
  EXPECT_EQ(a.garbage, b.garbage);
  EXPECT_LT(a.keepBytes, 1000u);  // a tear keeps a strict prefix
}

TEST(CrashPlan, PathPatternAndSiteFilterMatching) {
  io::CrashPlan plan;
  plan.pathPattern = "only-this";
  plan.site = io::CrashSite::Sync;
  plan.triggerOp = 0;
  io::installCrashPlan(plan);
  // Wrong path and wrong site never fire.
  EXPECT_FALSE(io::crashCheckpoint(io::CrashSite::Sync, "/other", 0).fire);
  EXPECT_FALSE(
      io::crashCheckpoint(io::CrashSite::Write, "/x/only-this", 10).fire);
  EXPECT_TRUE(
      io::crashCheckpoint(io::CrashSite::Sync, "/x/only-this", 0).fire);
  io::clearCrashPlan();
  EXPECT_FALSE(io::crashPlanArmed());
}

TEST(CrashPlan, CountingEnumeratesMatchingOperations) {
  io::startCrashCounting(io::CrashSite::Rename, "counted");
  for (int i = 0; i < 4; ++i) {
    io::crashCheckpoint(io::CrashSite::Rename, "/a/counted-file", 0);
  }
  io::crashCheckpoint(io::CrashSite::Rename, "/a/other", 0);
  io::crashCheckpoint(io::CrashSite::DirSync, "/a/counted-file", 0);
  EXPECT_EQ(io::stopCrashCounting(), 4u);
}

// ---------------------------------------------------------------------
// writeBytesAtomic hardening

TEST(WriteBytesAtomic, ConcurrentWritersToOneDestination) {
  // Regression: the old implementation derived its temp name solely from
  // the destination ("<path>.tmp"), so two concurrent writers clobbered
  // and renamed each other's half-written files. Unique names make every
  // writer's rename atomic and self-contained.
  TempDir dir("atomic-races");
  const std::string dest = dir.file("contended.bin");
  constexpr int kThreads = 8;
  constexpr int kRounds = 16;

  std::vector<std::vector<std::byte>> payloads;
  for (int t = 0; t < kThreads; ++t) {
    std::vector<std::byte> p(4096 + 512 * t);
    for (usize i = 0; i < p.size(); ++i) {
      p[i] = static_cast<std::byte>((t * 131 + i * 7) & 0xFF);
    }
    payloads.push_back(std::move(p));
  }

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < kRounds; ++r) {
        io::writeBytesAtomic(dest, ConstByteSpan(payloads[t]));
      }
    });
  }
  for (auto& th : threads) th.join();

  // The final content is exactly one writer's payload, never a splice.
  const std::vector<std::byte> got = io::readBytes(dest);
  bool matched = false;
  for (const auto& p : payloads) matched = matched || got == p;
  EXPECT_TRUE(matched) << "destination holds a torn mix of payloads";

  // Every temp file was consumed by its rename.
  usize strays = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir.path)) {
    if (entry.path().filename().string().find(".tmp.") != std::string::npos) {
      ++strays;
    }
  }
  EXPECT_EQ(strays, 0u);
}

TEST(WriteBytesAtomic, InjectedRenameCrashLeavesDestinationAbsent) {
  TempDir dir("atomic-crash");
  const std::string dest = dir.file("victim.bin");
  io::CrashPlan plan;
  plan.pathPattern = "victim.bin";
  plan.site = io::CrashSite::Rename;
  plan.triggerOp = 0;
  io::installCrashPlan(plan);
  EXPECT_THROW(io::writeBytesAtomic(dest, ConstByteSpan(bytesOf("payload"))),
               io::CrashError);
  io::clearCrashPlan();
  // Death before the rename publishes nothing at the destination.
  EXPECT_FALSE(std::filesystem::exists(dest));
  // The retry (the "restarted process") succeeds over the stray temp.
  io::writeBytesAtomic(dest, ConstByteSpan(bytesOf("payload")));
  EXPECT_EQ(io::readBytes(dest), bytesOf("payload"));
}

// ---------------------------------------------------------------------
// BlockStore recovery

cas::StoreConfig smallStore() {
  return {.chunkBytes = 512, .deferGc = true};
}

std::vector<std::byte> pattern(usize n, u32 salt) {
  std::vector<std::byte> out(n);
  u64 x = 0x9E3779B97F4A7C15ull + salt;
  for (usize i = 0; i < n; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    out[i] = static_cast<std::byte>(x & 0xFF);
  }
  return out;
}

TEST(StoreRecovery, ReplaysJournalTailOntoSnapshot) {
  TempDir dir("cas-recover");
  const std::string index = dir.file("store.cas");
  const std::string jnl = index + ".jnl";
  const auto blobA = pattern(3000, 1);
  const auto blobB = pattern(2500, 2);
  const auto blobC = pattern(1800, 3);
  {
    cas::BlockStore store(smallStore());
    store.attachJournal(jnl);
    store.put("t", "a", ConstByteSpan(blobA));
    store.put("t", "b", ConstByteSpan(blobB));
    store.erase("t", "a");
    store.save(index);  // snapshot; the journal resets behind it
    store.put("t", "c", ConstByteSpan(blobC));
    store.gc();
  }  // "crash": the process dies with c + gc only in the journal

  cas::RecoveryReport rep;
  auto store = cas::BlockStore::recover(index, jnl, smallStore(), &rep);
  EXPECT_TRUE(rep.snapshotLoaded);
  EXPECT_EQ(rep.replayedRecords, 2u);  // put c, gc
  EXPECT_EQ(rep.skippedRecords, 0u);
  EXPECT_FALSE(rep.tornTail);
  store->checkInvariants();
  std::string err;
  EXPECT_TRUE(store->verifyAll(&err)) << err;
  EXPECT_FALSE(store->contains("t", "a"));
  EXPECT_EQ(store->get("t", "b"), blobB);
  EXPECT_EQ(store->get("t", "c"), blobC);
  // The journal resumed: new acknowledged work lands in it.
  EXPECT_TRUE(store->journalStatus().attached);
  store->put("t", "d", ConstByteSpan(blobA));
  EXPECT_GE(store->journalStatus().recordsSynced, 1u);
}

TEST(StoreRecovery, MissingSnapshotReplaysOntoFreshStore) {
  TempDir dir("cas-nosnap");
  const std::string index = dir.file("never-saved.cas");
  const std::string jnl = dir.file("store.jnl");
  const auto blob = pattern(2000, 4);
  {
    cas::BlockStore store(smallStore());
    store.attachJournal(jnl);
    store.put("t", "only", ConstByteSpan(blob));
  }
  cas::RecoveryReport rep;
  auto store = cas::BlockStore::recover(index, jnl, smallStore(), &rep);
  EXPECT_FALSE(rep.snapshotLoaded);
  EXPECT_EQ(rep.replayedRecords, 1u);
  EXPECT_EQ(store->get("t", "only"), blob);
}

TEST(StoreRecovery, SkipsRecordsTheSnapshotAlreadyCovers) {
  // Crash in the window between the snapshot rename and the journal
  // reset: the snapshot is new, the journal still holds the records it
  // covers. The tick-skip rule must not double-apply them.
  TempDir dir("cas-skip");
  const std::string index = dir.file("store.cas");
  const std::string jnl = index + ".jnl";
  const auto blob = pattern(2600, 5);
  {
    cas::BlockStore store(smallStore());
    store.attachJournal(jnl);
    store.put("t", "x", ConstByteSpan(blob));
    store.put("t", "y", ConstByteSpan(blob));  // full-object dedup
    io::CrashPlan plan;
    plan.pathPattern = jnl;  // fire on the journal's reset header write
    plan.site = io::CrashSite::Rename;
    plan.triggerOp = 0;
    io::installCrashPlan(plan);
    EXPECT_THROW(store.save(index), io::CrashError);
    io::clearCrashPlan();
  }
  ASSERT_TRUE(std::filesystem::exists(index));  // the snapshot did land
  cas::RecoveryReport rep;
  auto store = cas::BlockStore::recover(index, jnl, smallStore(), &rep);
  EXPECT_TRUE(rep.snapshotLoaded);
  EXPECT_EQ(rep.replayedRecords, 0u);
  EXPECT_EQ(rep.skippedRecords, 2u);
  store->checkInvariants();
  EXPECT_EQ(store->get("t", "x"), blob);
  EXPECT_EQ(store->get("t", "y"), blob);
  EXPECT_EQ(store->stats().objects, 2u);
}

TEST(StoreRecovery, ForeignOwnerTagIsUnrecoverable) {
  TempDir dir("cas-owner");
  const std::string index = dir.file("store.cas");
  const std::string jnl = dir.file("store.jnl");
  {
    // A journal stamped by some OTHER store (different hashSeed): replay
    // onto this store would apply records addressed by a foreign hash.
    io::JournalWriter w(jnl, /*ownerTag=*/0xDEADBEEFull, 0);
    w.append(1, ConstByteSpan(bytesOf("foreign")));
    w.sync();
  }
  EXPECT_THROW(cas::BlockStore::recover(index, jnl, smallStore()), Error);
}

// ---------------------------------------------------------------------
// Durable service intake

core::Config jobConfig() {
  core::Config cfg;
  cfg.absErrorBound = 1e-3;
  cfg.checksum = true;
  return cfg;
}

std::vector<std::byte> fieldBytes(const std::vector<f32>& v) {
  std::vector<std::byte> bytes(v.size() * sizeof(f32));
  std::memcpy(bytes.data(), v.data(), bytes.size());
  return bytes;
}

service::ServiceConfig durableConfig(const std::string& jnl) {
  service::ServiceConfig sc;
  sc.workers = 1;
  sc.maxBatchJobs = 1;
  sc.startPaused = true;
  sc.jobJournalPath = jnl;
  return sc;
}

TEST(ServiceDurability, ReplaysExactlyOnce) {
  TempDir dir("svc-replay");
  const std::string jnl = dir.file("jobs.jnl");
  const core::Config cfg = jobConfig();
  core::CompressorStream ref(cfg);
  const auto field1 = datagen::generateF32("cesm_atm", 0, 2048);
  const auto field2 = datagen::generateF32("cesm_atm", 1, 2048);
  const auto expected1 =
      ref.compress<f32>(std::span<const f32>(field1)).stream;

  {
    io::JournalWriter w(jnl, service::kJobJournalOwnerTag, 0);
    for (u64 id : {1ull, 2ull}) {
      service::JobAcceptRecord acc;
      acc.jobId = id;
      acc.tenant = "climate";
      acc.kind = service::JobKind::Compress;
      acc.precision = Precision::F32;
      acc.config = cfg;
      acc.input = fieldBytes(id == 1 ? field1 : field2);
      const auto payload = service::encodeJobAccept(acc);
      w.append(service::kJobRecordAccept, ConstByteSpan(payload));
    }
    const auto resolved =
        service::encodeJobResolve(2, service::Outcome::Completed);
    w.append(service::kJobRecordResolve, ConstByteSpan(resolved));
    w.sync();
  }

  {
    service::CompressionService svc(durableConfig(jnl));
    ASSERT_EQ(svc.replayedJobs().size(), 1u);
    const service::ReplayedJob& rj = svc.replayedJobs().front();
    EXPECT_EQ(rj.originalJobId, 1u);
    svc.resume();
    ASSERT_TRUE(rj.ticket.waitFor(std::chrono::seconds(120)));
    const service::JobResult& r = rj.ticket.result();
    EXPECT_EQ(r.outcome, service::Outcome::Completed);
    EXPECT_EQ(r.compressed.stream, expected1);
    EXPECT_TRUE(svc.jobJournalStatus().attached);
    svc.shutdown();
  }
  {
    // Exactly-once: the replayed job is resolved in the journal now.
    service::CompressionService svc(durableConfig(jnl));
    EXPECT_TRUE(svc.replayedJobs().empty());
    svc.shutdown();
  }
}

TEST(ServiceDurability, AcceptIsDurableBeforeTheTicketReturns) {
  TempDir dir("svc-ack");
  const std::string jnl = dir.file("jobs.jnl");
  const auto field = datagen::generateF32("hacc", 0, 1024);
  {
    service::CompressionService svc(durableConfig(jnl));
    const service::SubmitResult r = svc.submitCompress<f32>(
        "cosmo", std::span<const f32>(field), jobConfig());
    ASSERT_TRUE(r.accepted());
    // The accept record is on disk BEFORE the job ever runs (the service
    // is paused): kill the process here and nothing is lost.
    const io::ReplayResult replay = io::replayJournal(jnl);
    const service::JobJournalSummary summary =
        service::summarizeJobJournal(replay);
    ASSERT_EQ(summary.pending.size(), 1u);
    EXPECT_EQ(summary.pending[0].jobId, r.ticket.id());
    EXPECT_EQ(summary.pending[0].tenant, "cosmo");
    EXPECT_EQ(summary.pending[0].input, fieldBytes(field));
    svc.resume();
    svc.shutdown();
  }
  // After the clean run, the resolve retired the accept.
  const service::JobJournalSummary after =
      service::summarizeJobJournal(io::replayJournal(jnl));
  EXPECT_TRUE(after.pending.empty());
  EXPECT_EQ(after.resolves, 1u);
}

TEST(ServiceDurability, DamagedJournalHeaderRefusesStartup) {
  TempDir dir("svc-badheader");
  const std::string jnl = dir.file("jobs.jnl");
  io::writeBytes(jnl, ConstByteSpan(bytesOf("this is not a journal header")));
  EXPECT_THROW(service::CompressionService svc(durableConfig(jnl)), Error);
}

TEST(ClusterDurability, ShardRecoversJournalBeforeJoining) {
  TempDir dir("cluster-jnl");
  const core::Config cfg = jobConfig();
  core::CompressorStream ref(cfg);
  const auto field = datagen::generateF32("jetin", 0, 2048);
  const u32 shardJobs = 2;
  {
    // A previous shard-0 life accepted two jobs and died unresolved.
    io::JournalWriter w(dir.file("shard-0.jobs.jnl"),
                        service::kJobJournalOwnerTag, 0);
    for (u64 id = 1; id <= shardJobs; ++id) {
      service::JobAcceptRecord acc;
      acc.jobId = id;
      acc.tenant = "fusion";
      acc.kind = service::JobKind::Compress;
      acc.precision = Precision::F32;
      acc.config = cfg;
      acc.input = fieldBytes(field);
      const auto payload = service::encodeJobAccept(acc);
      w.append(service::kJobRecordAccept, ConstByteSpan(payload));
    }
    w.sync();
  }

  cluster::ClusterConfig ccfg;
  ccfg.shards = 2;
  ccfg.replicas = 1;
  ccfg.shard.workers = 1;
  ccfg.shard.maxBatchJobs = 1;
  ccfg.journalDir = dir.path;
  cluster::CompressionCluster cl(ccfg);

  auto infos = cl.shardInfos();
  ASSERT_EQ(infos.size(), 2u);
  EXPECT_EQ(infos[0].replayedJobs, shardJobs);
  EXPECT_EQ(infos[1].replayedJobs, 0u);

  // The replayed jobs drain on the shard's own service.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(120);
  while (std::chrono::steady_clock::now() < deadline) {
    if (cl.shardInfos()[0].stats.completed >= shardJobs) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GE(cl.shardInfos()[0].stats.completed, shardJobs);
  cl.shutdown();
}

}  // namespace
