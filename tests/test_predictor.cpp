// Tests for the pluggable in-block predictor (first-order = paper
// pipeline; second-order = extension for locally linear data).
#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/compressor.hpp"
#include "core/quantizer.hpp"
#include "datagen/fields.hpp"
#include "metrics/error_stats.hpp"

namespace cuszp2::core {
namespace {

Config withPredictor(Predictor p, f64 absEb = 1e-3) {
  Config cfg;
  cfg.absErrorBound = absEb;
  cfg.predictor = p;
  return cfg;
}

class PredictorRoundTrip
    : public ::testing::TestWithParam<std::tuple<std::string, Predictor>> {};

TEST_P(PredictorRoundTrip, ErrorBoundHolds) {
  const auto [dataset, predictor] = GetParam();
  const auto data = datagen::generateF32(dataset, 0, 1 << 14);
  const f64 absEb =
      Quantizer::absFromRel(1e-3, metrics::valueRange<f32>(data));
  const Compressor comp(withPredictor(predictor, absEb));
  const auto c = comp.compress<f32>(data);
  const auto d = comp.decompress<f32>(c.stream);
  EXPECT_TRUE(metrics::computeErrorStats<f32>(data, d.data)
                  .withinBoundFp(absEb, Precision::F32));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PredictorRoundTrip,
    ::testing::Combine(::testing::Values("cesm_atm", "hacc", "rtm",
                                         "qmcpack", "jetin"),
                       ::testing::Values(Predictor::FirstOrder,
                                         Predictor::SecondOrder)));

TEST(Predictor, HeaderRecordsPredictor) {
  const std::vector<f32> data(1024, 1.5f);
  const auto c =
      Compressor(withPredictor(Predictor::SecondOrder)).compress<f32>(data);
  EXPECT_EQ(StreamHeader::parse(c.stream).predictor,
            Predictor::SecondOrder);
}

TEST(Predictor, StreamIsSelfDescribing) {
  // A default-config compressor must decode a second-order stream
  // correctly: the predictor comes from the header, not the config.
  const auto data = datagen::generateF32("miranda", 0, 1 << 13);
  const f64 absEb =
      Quantizer::absFromRel(1e-3, metrics::valueRange<f32>(data));
  const auto c = Compressor(withPredictor(Predictor::SecondOrder, absEb))
                     .compress<f32>(data);
  Config plainCfg;
  plainCfg.absErrorBound = 1.0;  // irrelevant for decode
  const auto d = Compressor(plainCfg).decompress<f32>(c.stream);
  EXPECT_TRUE(metrics::computeErrorStats<f32>(data, d.data)
                  .withinBoundFp(absEb, Precision::F32));
}

TEST(Predictor, SecondOrderCannotBeatTheSingleOutlierFormat) {
  // Design-validation ablation: even on perfectly quadratic data — the
  // best case for a second difference — the block's residual r_1 = d_1
  // still carries the full first-difference magnitude, and the single-
  // outlier block format only exempts r_0 from the fixed length. So the
  // fixed length is pinned by d_1 either way and second order lands at
  // parity (within a few percent). This is structural evidence for the
  // paper's first-order + Outlier-FLE design: deeper prediction cannot
  // pay under this format.
  std::vector<f32> data(1 << 15);
  for (usize i = 0; i < data.size(); ++i) {
    const f64 x = static_cast<f64>(i);
    data[i] = static_cast<f32>(0.5 * x + 1e-5 * x * x / 2.0);
  }
  const f64 absEb =
      Quantizer::absFromRel(1e-6, metrics::valueRange<f32>(data));
  const f64 r1 = Compressor(withPredictor(Predictor::FirstOrder, absEb))
                     .compress<f32>(data)
                     .ratio;
  const f64 r2 = Compressor(withPredictor(Predictor::SecondOrder, absEb))
                     .compress<f32>(data)
                     .ratio;
  EXPECT_GT(r2, r1 * 0.8);
  EXPECT_LT(r2, r1 * 1.2);
}

TEST(Predictor, SecondOrderNeverPathologicalOnNoise) {
  // On rough data the second difference doubles the noise, so the ratio
  // may drop — but it must stay within a small factor (the sign/plane
  // format caps the damage at one extra bit).
  const auto data = datagen::generateF32("qmcpack", 0, 1 << 14);
  const f64 absEb =
      Quantizer::absFromRel(1e-3, metrics::valueRange<f32>(data));
  const f64 r1 = Compressor(withPredictor(Predictor::FirstOrder, absEb))
                     .compress<f32>(data)
                     .ratio;
  const f64 r2 = Compressor(withPredictor(Predictor::SecondOrder, absEb))
                     .compress<f32>(data)
                     .ratio;
  EXPECT_GT(r2, r1 * 0.5);
}

TEST(Predictor, FirstOrderStreamsUnchangedByTheFeature) {
  // Guard: adding the predictor field must not perturb default streams
  // (first-order encodes byte-identically to the pre-feature pipeline,
  // modulo the header tag which is 0 for first order).
  const auto data = datagen::generateF32("scale", 1, 1 << 13);
  Config cfg;
  cfg.absErrorBound = 1e-3;
  const auto c = Compressor(cfg).compress<f32>(data);
  EXPECT_EQ(StreamHeader::parse(c.stream).predictor, Predictor::FirstOrder);
  const auto d = Compressor(cfg).decompress<f32>(c.stream);
  EXPECT_TRUE(metrics::computeErrorStats<f32>(data, d.data)
                  .withinBoundFp(1e-3, Precision::F32));
}

TEST(Predictor, RandomAccessRespectsPredictor) {
  const auto data = datagen::generateF32("cesm_atm", 0, 1 << 13);
  const f64 absEb =
      Quantizer::absFromRel(1e-3, metrics::valueRange<f32>(data));
  const Compressor comp(withPredictor(Predictor::SecondOrder, absEb));
  const auto c = comp.compress<f32>(data);
  const auto full = comp.decompress<f32>(c.stream);
  const auto range = comp.decompressBlocks<f32>(c.stream, 5, 7);
  for (usize i = 0; i < range.values.size(); ++i) {
    ASSERT_EQ(range.values[i], full.data[range.firstElement + i]);
  }
}

TEST(Predictor, ReplaceBlocksRespectsPredictor) {
  const auto data = datagen::generateF32("nyx", 1, 1 << 12);
  const f64 absEb =
      Quantizer::absFromRel(1e-3, metrics::valueRange<f32>(data));
  const Compressor comp(withPredictor(Predictor::SecondOrder, absEb));
  const auto c = comp.compress<f32>(data);
  const std::vector<f32> replacement(64, 3.25f);
  const auto updated = comp.replaceBlocks<f32>(c.stream, 2, replacement);
  const auto d = comp.decompress<f32>(updated.stream);
  for (usize i = 2 * 32; i < 4 * 32; ++i) {
    ASSERT_NEAR(d.data[i], 3.25f, absEb * (1 + 1e-6) + 3.25 * 6e-8);
  }
}

TEST(Predictor, BothPredictorsReconstructIdentically) {
  // The lossy step is shared: at the same bound, reconstructions are
  // bit-identical regardless of the predictor.
  const auto data = datagen::generateF32("syntruss", 0, 1 << 13);
  const f64 absEb =
      Quantizer::absFromRel(1e-3, metrics::valueRange<f32>(data));
  const auto d1 =
      Compressor(withPredictor(Predictor::FirstOrder, absEb))
          .decompress<f32>(
              Compressor(withPredictor(Predictor::FirstOrder, absEb))
                  .compress<f32>(data)
                  .stream);
  const auto d2 =
      Compressor(withPredictor(Predictor::SecondOrder, absEb))
          .decompress<f32>(
              Compressor(withPredictor(Predictor::SecondOrder, absEb))
                  .compress<f32>(data)
                  .stream);
  EXPECT_EQ(d1.data, d2.data);
}

TEST(Predictor, DoublePrecisionSecondOrder) {
  const auto data = datagen::generateF64("s3d", 0, 1 << 13);
  const f64 absEb =
      Quantizer::absFromRel(1e-3, metrics::valueRange<f64>(data));
  const Compressor comp(withPredictor(Predictor::SecondOrder, absEb));
  const auto d = comp.decompress<f64>(comp.compress<f64>(data).stream);
  EXPECT_TRUE(metrics::computeErrorStats<f64>(data, d.data)
                  .withinBoundFp(absEb, Precision::F64));
}

}  // namespace
}  // namespace cuszp2::core
