// Tests for random-access writes: Compressor::replaceBlocks splices
// re-encoded blocks into an existing stream (paper Sec. VI-B).
#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/compressor.hpp"
#include "core/quantizer.hpp"
#include "core/stream.hpp"
#include "datagen/fields.hpp"
#include "metrics/error_stats.hpp"

namespace cuszp2::core {
namespace {

struct Fixture {
  Config cfg;
  std::vector<f32> data;
  Compressed compressed;

  explicit Fixture(usize n = 1 << 13, EncodingMode mode =
                                          EncodingMode::Outlier) {
    cfg.mode = mode;
    cfg.relErrorBound = 1e-4;
    data = datagen::generateF32("scale", 1, n);
    cfg.absErrorBound =
        Quantizer::absFromRel(1e-4, metrics::valueRange<f32>(data));
    compressed = Compressor(cfg).compress<f32>(data);
  }
};

std::vector<f32> replacementValues(usize n, u64 seed) {
  Rng rng(seed);
  std::vector<f32> v(n);
  f64 x = 50.0;
  for (auto& e : v) {
    x += rng.uniform(-0.5, 0.5);
    e = static_cast<f32>(x);
  }
  return v;
}

TEST(ReplaceBlocks, MiddleRangeSplicesCorrectly) {
  const Fixture fx;
  const Compressor comp(fx.cfg);
  const auto header = StreamHeader::parse(fx.compressed.stream);
  const u64 firstBlock = header.numBlocks() / 3;
  const auto newValues = replacementValues(32 * 5, 1);

  const auto updated =
      comp.replaceBlocks<f32>(fx.compressed.stream, firstBlock, newValues);
  const auto d = comp.decompress<f32>(updated.stream);
  ASSERT_EQ(d.data.size(), fx.data.size());

  const u64 eFirst = firstBlock * 32;
  for (usize i = 0; i < d.data.size(); ++i) {
    if (i >= eFirst && i < eFirst + newValues.size()) {
      ASSERT_NEAR(d.data[i], newValues[i - eFirst],
                  header.absErrorBound * (1 + 1e-6) +
                      std::abs(newValues[i - eFirst]) * 6e-8)
          << i;
    } else {
      ASSERT_NEAR(d.data[i], fx.data[i],
                  header.absErrorBound * (1 + 1e-6) +
                      std::abs(fx.data[i]) * 6e-8)
          << i;
    }
  }
}

TEST(ReplaceBlocks, UntouchedBlocksAreBitIdentical) {
  const Fixture fx;
  const Compressor comp(fx.cfg);
  const auto before = comp.decompress<f32>(fx.compressed.stream);
  const auto newValues = replacementValues(32 * 3, 2);
  const auto updated =
      comp.replaceBlocks<f32>(fx.compressed.stream, 10, newValues);
  const auto after = comp.decompress<f32>(updated.stream);
  for (usize i = 0; i < before.data.size(); ++i) {
    if (i >= 10 * 32 && i < 13 * 32) continue;
    ASSERT_EQ(before.data[i], after.data[i]) << i;
  }
}

TEST(ReplaceBlocks, FirstAndLastBlocks) {
  const Fixture fx;
  const Compressor comp(fx.cfg);
  const auto header = StreamHeader::parse(fx.compressed.stream);

  // First block.
  auto updated = comp.replaceBlocks<f32>(fx.compressed.stream, 0,
                                         replacementValues(32, 3));
  EXPECT_NO_THROW(comp.decompress<f32>(updated.stream));

  // Final (full) block.
  const u64 last = header.numBlocks() - 1;
  const u64 lastElems = header.numElements - last * 32;
  updated = comp.replaceBlocks<f32>(fx.compressed.stream, last,
                                    replacementValues(lastElems, 4));
  const auto d = comp.decompress<f32>(updated.stream);
  EXPECT_EQ(d.data.size(), header.numElements);
}

TEST(ReplaceBlocks, PartialFinalBlockTail) {
  // Stream whose final block is short: replacement must cover exactly the
  // tail.
  Config cfg;
  cfg.absErrorBound = 1e-3;
  const Compressor comp(cfg);
  const auto data = replacementValues(1000, 5);  // 31 blocks + 8 elems
  const auto c = comp.compress<f32>(data);
  const auto header = StreamHeader::parse(c.stream);
  const u64 last = header.numBlocks() - 1;

  // Correct tail size (8 elements) works.
  const auto updated =
      comp.replaceBlocks<f32>(c.stream, last, replacementValues(8, 6));
  EXPECT_EQ(comp.decompress<f32>(updated.stream).data.size(), 1000u);

  // Wrong sizes are rejected: a full block at the short tail, and a size
  // that neither fills whole blocks nor ends at the stream tail.
  EXPECT_THROW(
      comp.replaceBlocks<f32>(c.stream, last, replacementValues(32, 7)),
      Error);
  EXPECT_THROW(
      comp.replaceBlocks<f32>(c.stream, 0, replacementValues(33, 8)),
      Error);
  // 40 values at the second-to-last block are valid: one full block plus
  // the 8-element tail.
  EXPECT_NO_THROW(
      comp.replaceBlocks<f32>(c.stream, last - 1, replacementValues(40, 8)));
}

// Regression: replacing the final partial block of a version-2 stream.
// The 2-byte-per-block footer sits right after the short tail block, so a
// payload-size miscalculation over-reads into (or past) the footer — run
// under ASan this test catches any such read, and the digest rebuild must
// still validate strictly afterwards.
TEST(ReplaceBlocks, FinalPartialBlockWithBlockChecksums) {
  Config cfg;
  cfg.absErrorBound = 1e-3;
  cfg.blockChecksums = true;
  CompressorStream codec(cfg);
  const auto data = replacementValues(1000, 5);  // 31 blocks + 8 elems
  const auto c = codec.compress<f32>(data);
  const auto header = StreamHeader::parse(c.stream);
  ASSERT_TRUE(header.hasBlockChecksums());
  const u64 last = header.numBlocks() - 1;
  const u64 tail = header.numElements - last * header.blockSize;
  ASSERT_LT(tail, header.blockSize);

  // Replace exactly the 8-element tail; strict decode re-verifies every
  // rebuilt digest, including the final partial block's.
  const auto repl = replacementValues(tail, 6);
  const auto updated = codec.replaceBlocks<f32>(c.stream, last, repl);
  EXPECT_EQ(StreamHeader::parse(updated.stream).version, kFormatVersionV2);
  const auto d = codec.decompress<f32>(updated.stream);
  ASSERT_EQ(d.data.size(), data.size());
  for (u64 i = 0; i < tail; ++i) {
    EXPECT_NEAR(d.data[last * header.blockSize + i], repl[i], 1e-3 * 1.01);
  }

  // Full-block-plus-tail replacement crossing into the partial block.
  const auto repl2 = replacementValues(header.blockSize + tail, 7);
  const auto updated2 =
      codec.replaceBlocks<f32>(c.stream, last - 1, repl2);
  EXPECT_EQ(codec.decompress<f32>(updated2.stream).data.size(), data.size());
}

TEST(ReplaceBlocks, Validation) {
  const Fixture fx;
  const Compressor comp(fx.cfg);
  const auto header = StreamHeader::parse(fx.compressed.stream);
  EXPECT_THROW(comp.replaceBlocks<f32>(fx.compressed.stream,
                                       header.numBlocks(),
                                       replacementValues(32, 9)),
               Error);
  EXPECT_THROW(
      comp.replaceBlocks<f32>(fx.compressed.stream, 0, std::span<const f32>{}),
      Error);
  EXPECT_THROW(comp.replaceBlocks<f64>(fx.compressed.stream, 0,
                                       std::vector<f64>(32, 0.0)),
               Error);
}

TEST(ReplaceBlocks, ShrinksWhenNewBlocksCompressBetter) {
  const Fixture fx;
  const Compressor comp(fx.cfg);
  // All-zero replacement: blocks become 1-byte (offset only).
  const std::vector<f32> zeros(32 * 8, 0.0f);
  const auto updated = comp.replaceBlocks<f32>(fx.compressed.stream, 4,
                                               zeros);
  EXPECT_LT(updated.stream.size(), fx.compressed.stream.size());
  const auto d = comp.decompress<f32>(updated.stream);
  for (usize i = 4 * 32; i < 12 * 32; ++i) {
    ASSERT_EQ(d.data[i], 0.0f);
  }
}

TEST(ReplaceBlocks, RepeatedUpdatesStayConsistent) {
  Fixture fx(1 << 12);
  const Compressor comp(fx.cfg);
  std::vector<f32> expected = fx.data;
  auto stream = fx.compressed.stream;
  Rng rng(99);
  const auto header = StreamHeader::parse(stream);
  for (int round = 0; round < 10; ++round) {
    const u64 blk = rng.uniformInt(header.numBlocks() - 3);
    const auto vals = replacementValues(32 * 2, 1000 + round);
    const auto updated = comp.replaceBlocks<f32>(stream, blk, vals);
    stream = updated.stream;
    std::copy(vals.begin(), vals.end(), expected.begin() + blk * 32);
  }
  const auto d = comp.decompress<f32>(stream);
  const auto stats = metrics::computeErrorStats<f32>(expected, d.data);
  EXPECT_TRUE(stats.withinBoundFp(header.absErrorBound, Precision::F32))
      << stats.maxAbsError;
}

TEST(ReplaceBlocks, PlainModeStreams) {
  Fixture fx(1 << 12, EncodingMode::Plain);
  const Compressor comp(fx.cfg);
  const auto updated = comp.replaceBlocks<f32>(fx.compressed.stream, 2,
                                               replacementValues(32 * 2, 11));
  const auto header = StreamHeader::parse(updated.stream);
  EXPECT_EQ(header.mode, EncodingMode::Plain);
  EXPECT_NO_THROW(comp.decompress<f32>(updated.stream));
}

TEST(ReplaceBlocks, ProfileReportsWriteThroughput) {
  const Fixture fx;
  const Compressor comp(fx.cfg);
  const auto updated = comp.replaceBlocks<f32>(fx.compressed.stream, 1,
                                               replacementValues(32 * 4, 12));
  EXPECT_GT(updated.profile.endToEndGBps, 0.0);
  EXPECT_GT(updated.profile.mem.bytesRead, 0u);
}

}  // namespace
}  // namespace cuszp2::core
