// Tests for the multi-dimensional (2-D/3-D Lorenzo) cuSZp2 variant
// (paper Sec. VI-D, Table VI).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/lorenzo_nd.hpp"
#include "core/quantizer.hpp"
#include "metrics/error_stats.hpp"

namespace cuszp2::core {
namespace {

std::vector<f32> smooth3d(Dims3 dims, u64 seed) {
  Rng rng(seed);
  std::vector<f32> out(dims.count());
  const f64 fx = rng.uniform(0.02, 0.1);
  const f64 fy = rng.uniform(0.02, 0.1);
  const f64 fz = rng.uniform(0.02, 0.1);
  for (u64 z = 0; z < dims.nz; ++z) {
    for (u64 y = 0; y < dims.ny; ++y) {
      for (u64 x = 0; x < dims.nx; ++x) {
        out[(z * dims.ny + y) * dims.nx + x] = static_cast<f32>(
            100.0 + 10.0 * std::sin(fx * static_cast<f64>(x)) *
                        std::cos(fy * static_cast<f64>(y)) *
                        std::sin(fz * static_cast<f64>(z)));
      }
    }
  }
  return out;
}

TEST(NdCompressor, BlockShapesMatchPaperTableVI) {
  u64 bx = 0;
  u64 by = 0;
  u64 bz = 0;
  NdCompressor({.dims = LorenzoDims::D1}).blockShape(bx, by, bz);
  EXPECT_EQ(bx * by * bz, 64u);
  EXPECT_EQ(bx, 64u);
  NdCompressor({.dims = LorenzoDims::D2}).blockShape(bx, by, bz);
  EXPECT_EQ(bx, 8u);
  EXPECT_EQ(by, 8u);
  EXPECT_EQ(bz, 1u);
  NdCompressor({.dims = LorenzoDims::D3}).blockShape(bx, by, bz);
  EXPECT_EQ(bx, 4u);
  EXPECT_EQ(by, 4u);
  EXPECT_EQ(bz, 4u);
}

class NdRoundTripTest
    : public ::testing::TestWithParam<std::tuple<LorenzoDims, f64>> {};

TEST_P(NdRoundTripTest, ErrorBoundHolds) {
  const auto [dims, rel] = GetParam();
  const Dims3 grid{40, 24, 12};
  const auto data = smooth3d(grid, 99);
  NdConfig cfg;
  cfg.dims = dims;
  cfg.relErrorBound = rel;
  const NdCompressor comp(cfg);
  const auto c = comp.compress<f32>(data, grid);
  const auto rec = comp.decompress<f32>(c.stream);
  ASSERT_EQ(rec.size(), data.size());
  const f64 absEb =
      Quantizer::absFromRel(rel, metrics::valueRange<f32>(data));
  const auto stats = metrics::computeErrorStats<f32>(data, rec);
  EXPECT_TRUE(stats.withinBoundFp(absEb, Precision::F32)) << "max " << stats.maxAbsError;
  EXPECT_GT(c.ratio, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NdRoundTripTest,
    ::testing::Combine(::testing::Values(LorenzoDims::D1, LorenzoDims::D2,
                                         LorenzoDims::D3),
                       ::testing::Values(1e-2, 1e-3, 1e-4)));

TEST(NdCompressor, NonDivisibleDimensions) {
  // Partial blocks at every boundary.
  const Dims3 grid{13, 9, 5};
  const auto data = smooth3d(grid, 3);
  for (auto d : {LorenzoDims::D1, LorenzoDims::D2, LorenzoDims::D3}) {
    NdConfig cfg;
    cfg.dims = d;
    cfg.relErrorBound = 1e-3;
    const NdCompressor comp(cfg);
    const auto c = comp.compress<f32>(data, grid);
    const auto rec = comp.decompress<f32>(c.stream);
    const f64 absEb =
        Quantizer::absFromRel(1e-3, metrics::valueRange<f32>(data));
    EXPECT_TRUE(
        metrics::computeErrorStats<f32>(data, rec).withinBoundFp(absEb, Precision::F32))
        << toString(d);
  }
}

TEST(NdCompressor, HigherDimsImproveRatioOnSmooth3dData) {
  // On spatially smooth 3-D data, 2-D/3-D Lorenzo should beat 1-D — the
  // effect Table VI quantifies (and 1-D stays close at tight bounds).
  const Dims3 grid{32, 32, 32};
  const auto data = smooth3d(grid, 12);
  auto ratioFor = [&](LorenzoDims d) {
    NdConfig cfg;
    cfg.dims = d;
    cfg.relErrorBound = 1e-2;
    return NdCompressor(cfg).compress<f32>(data, grid).ratio;
  };
  const f64 r1 = ratioFor(LorenzoDims::D1);
  const f64 r2 = ratioFor(LorenzoDims::D2);
  const f64 r3 = ratioFor(LorenzoDims::D3);
  EXPECT_GT(r2, r1 * 0.95);
  EXPECT_GT(r3, r1 * 0.95);
}

TEST(NdCompressor, SizeMismatchThrows) {
  const NdCompressor comp({});
  const std::vector<f32> data(10);
  EXPECT_THROW(comp.compress<f32>(data, Dims3{100, 1, 1}), Error);
}

TEST(NdCompressor, BadStreamRejected) {
  const NdCompressor comp({});
  std::vector<std::byte> junk(128, std::byte{0x5A});
  EXPECT_THROW(comp.decompress<f32>(junk), Error);
}

TEST(NdCompressor, PrecisionMismatchThrows) {
  const Dims3 grid{16, 4, 1};
  const auto data = smooth3d(grid, 8);
  NdConfig cfg;
  cfg.relErrorBound = 1e-3;
  const NdCompressor comp(cfg);
  const auto c = comp.compress<f32>(data, grid);
  EXPECT_THROW(comp.decompress<f64>(c.stream), Error);
}

TEST(NdCompressor, DoublePrecisionRoundTrip) {
  const Dims3 grid{20, 10, 4};
  std::vector<f64> data(grid.count());
  Rng rng(5);
  f64 v = 0.0;
  for (auto& x : data) {
    v += rng.uniform(-0.05, 0.05);
    x = v;
  }
  NdConfig cfg;
  cfg.dims = LorenzoDims::D3;
  cfg.relErrorBound = 1e-3;
  const NdCompressor comp(cfg);
  const auto c = comp.compress<f64>(data, grid);
  const auto rec = comp.decompress<f64>(c.stream);
  const f64 absEb =
      Quantizer::absFromRel(1e-3, metrics::valueRange<f64>(data));
  EXPECT_TRUE(metrics::computeErrorStats<f64>(data, rec).withinBoundFp(absEb, Precision::F64));
}

}  // namespace
}  // namespace cuszp2::core
