// CompressionCluster: consistent-hash routing, replicated archives,
// shard failover and supervision.
//
// The load-bearing acceptance tests are:
//   * KilledShardFailsOverByteIdentical — a seeded kill mid-load resolves
//     every ticket with a typed Outcome and the surviving executions are
//     byte-identical to a no-fault serial run;
//   * RingRemoveMovesOnlyOwnedKeys / killShard rebalance — membership
//     changes move only the keys whose owning arc changed hands (~1/N);
//   * SeededChaosDrillIsDeterministic — two runs of the same chaos seed
//     produce identical ClusterStats snapshots and identical bytes;
//   * ArchiveReplicaLossRepairsBitExactly — a lost/corrupted primary is
//     served from a replica, read-repaired, and revived bit-exactly.
//
// Determinism recipe: startPaused + submit everything + heartbeat (kills
// happen while every shard is paused, so the queued/running partition is
// exact) + resume. See docs/SERVICE.md "Cluster topology".
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "core/stream.hpp"
#include "datagen/fields.hpp"
#include "io/archive.hpp"
#include "telemetry/metrics.hpp"

using namespace cuszp2;

namespace {

core::Config relConfig(f64 rel) {
  core::Config cfg;
  cfg.relErrorBound = rel;
  return cfg;
}

struct Request {
  std::string tenant;
  std::string dataset;
  u32 fieldIndex;
  usize elems;
};

// 4 tenants, mixed sizes, one shared Config (jobs coalesce per shard).
std::vector<Request> mixedWorkload() {
  return {
      {"climate", "cesm_atm", 0, 4096}, {"physics", "hacc", 0, 8192},
      {"fluids", "jetin", 0, 2048},     {"tiny", "cesm_atm", 1, 512},
      {"climate", "cesm_atm", 2, 4096}, {"physics", "hacc", 1, 8192},
      {"fluids", "jetin", 0, 2048},     {"tiny", "cesm_atm", 3, 512},
      {"climate", "cesm_atm", 4, 4096}, {"physics", "hacc", 2, 8192},
      {"fluids", "jetin", 0, 2048},     {"tiny", "cesm_atm", 5, 512},
  };
}

std::vector<f32> fieldFor(const Request& r) {
  return datagen::generateF32(r.dataset, r.fieldIndex, r.elems);
}

// Serial no-fault reference: one CompressorStream, one compress per
// request — the byte-identity baseline every cluster run must match.
std::vector<std::vector<std::byte>> serialStreams(
    const std::vector<Request>& reqs, const core::Config& cfg) {
  std::vector<std::vector<std::byte>> out;
  core::CompressorStream serial(cfg);
  for (const Request& r : reqs) {
    const std::vector<f32> data = fieldFor(r);
    out.push_back(serial.compress<f32>(std::span<const f32>(data)).stream);
  }
  return out;
}

std::vector<cluster::ClusterTicket> submitAll(
    cluster::CompressionCluster& cl, const std::vector<Request>& reqs,
    const core::Config& cfg) {
  std::vector<cluster::ClusterTicket> tickets;
  for (const Request& r : reqs) {
    const std::vector<f32> data = fieldFor(r);
    cluster::ClusterSubmitResult s =
        cl.submitCompress<f32>(r.tenant, std::span<const f32>(data), cfg);
    EXPECT_TRUE(s.accepted()) << s.detail;
    tickets.push_back(s.ticket);
  }
  return tickets;
}

u32 liveShards(const cluster::CompressionCluster& cl) {
  u32 n = 0;
  for (const cluster::ShardInfo& info : cl.shardInfos()) {
    if (info.state != cluster::ShardState::Down) ++n;
  }
  return n;
}

}  // namespace

// ---------------------------------------------------------------------
// Consistent-hash ring

TEST(ClusterRing, DeterministicBalancedAndDistinctReplicas) {
  cluster::ConsistentHashRing a(64, 42);
  cluster::ConsistentHashRing b(64, 42);
  for (u32 s = 0; s < 4; ++s) {
    a.addShard(s);
    b.addShard(s);
  }

  std::map<u32, u32> share;
  const u32 keys = 4000;
  for (u32 i = 0; i < keys; ++i) {
    const std::string key = "tenant-" + std::to_string(i);
    const u32 p = a.primaryFor(key);
    EXPECT_EQ(p, b.primaryFor(key)) << "ring placement is not seeded";
    share[p] += 1;

    const std::vector<u32> reps = a.replicasFor(key, 3);
    ASSERT_EQ(reps.size(), 3u);
    EXPECT_EQ(reps[0], p) << "replica walk must start at the primary";
    EXPECT_EQ(std::set<u32>(reps.begin(), reps.end()).size(), reps.size())
        << "replicas must be distinct shards";
  }

  // Virtual nodes smooth the share toward 1/N = 25%.
  for (const auto& [shard, count] : share) {
    const f64 frac = static_cast<f64>(count) / keys;
    EXPECT_GT(frac, 0.12) << "shard " << shard << " owns too little";
    EXPECT_LT(frac, 0.42) << "shard " << shard << " owns too much";
  }
  EXPECT_EQ(share.size(), 4u);

  // A different seed is a different placement (at least one key moves).
  cluster::ConsistentHashRing c(64, 43);
  for (u32 s = 0; s < 4; ++s) c.addShard(s);
  u32 moved = 0;
  for (u32 i = 0; i < 200; ++i) {
    const std::string key = "tenant-" + std::to_string(i);
    if (a.primaryFor(key) != c.primaryFor(key)) ++moved;
  }
  EXPECT_GT(moved, 0u);
}

TEST(ClusterRing, RemoveMovesOnlyOwnedKeysAddMovesOneNth) {
  cluster::ConsistentHashRing ring(64, 7);
  for (u32 s = 0; s < 5; ++s) ring.addShard(s);

  const u32 keys = 4000;
  std::vector<u32> before(keys);
  for (u32 i = 0; i < keys; ++i) {
    before[i] = ring.primaryFor("k" + std::to_string(i));
  }

  // removeShard(2): exactly the keys whose primary was 2 move.
  ring.removeShard(2);
  EXPECT_FALSE(ring.contains(2));
  u32 owned = 0;
  for (u32 i = 0; i < keys; ++i) {
    const u32 after = ring.primaryFor("k" + std::to_string(i));
    if (before[i] == 2) {
      ++owned;
      EXPECT_NE(after, 2u);
    } else {
      EXPECT_EQ(after, before[i])
          << "key k" << i << " moved although shard 2 never owned it";
    }
  }
  const f64 movedFrac = static_cast<f64>(owned) / keys;
  EXPECT_GT(movedFrac, 0.08) << "shard 2 owned suspiciously few keys";
  EXPECT_LT(movedFrac, 0.35) << "a remove moved far more than ~1/N keys";

  // Adding it back restores the original placement exactly (same seed,
  // same virtual-node points).
  ring.addShard(2);
  for (u32 i = 0; i < keys; ++i) {
    EXPECT_EQ(ring.primaryFor("k" + std::to_string(i)), before[i]);
  }

  // addShard(5): only keys landing on the new shard's arcs move.
  ring.addShard(5);
  u32 gained = 0;
  for (u32 i = 0; i < keys; ++i) {
    const u32 after = ring.primaryFor("k" + std::to_string(i));
    if (after != before[i]) {
      ++gained;
      EXPECT_EQ(after, 5u)
          << "a key moved to a shard other than the new one";
    }
  }
  const f64 gainedFrac = static_cast<f64>(gained) / keys;
  EXPECT_GT(gainedFrac, 0.05);
  EXPECT_LT(gainedFrac, 0.35) << "an add moved far more than ~1/N keys";
}

// ---------------------------------------------------------------------
// Routing + byte identity

TEST(ClusterTest, ByteIdenticalAcrossHeterogeneousShardsAndRoundTrip) {
  telemetry::registry().setEnabled(false);
  const std::vector<Request> reqs = mixedWorkload();
  const core::Config cfg = relConfig(1e-3);
  const std::vector<std::vector<std::byte>> expected =
      serialStreams(reqs, cfg);

  cluster::ClusterConfig ccfg;
  ccfg.shards = 3;  // heterogeneous fleet: A100 / 3090 / 3080
  ccfg.shard.workers = 1;
  ccfg.startPaused = true;
  cluster::CompressionCluster cl(ccfg);
  ASSERT_EQ(cl.shardCount(), 3u);

  // The fleet really is heterogeneous.
  std::set<std::string> deviceNames;
  for (const cluster::ShardInfo& info : cl.shardInfos()) {
    deviceNames.insert(info.device);
  }
  EXPECT_EQ(deviceNames.size(), 3u);

  std::vector<cluster::ClusterTicket> tickets = submitAll(cl, reqs, cfg);
  cl.resume();

  std::set<u32> shardsUsed;
  for (usize i = 0; i < tickets.size(); ++i) {
    const cluster::ClusterJobResult& r = tickets[i].wait();
    ASSERT_TRUE(r.job.ok) << r.job.error;
    EXPECT_EQ(r.job.compressed.stream, expected[i])
        << "job " << i << " (" << reqs[i].tenant << " on shard "
        << r.shard << ") is not byte-identical to the serial stream";
    EXPECT_EQ(r.failovers, 0u);
    EXPECT_EQ(r.shard, cl.primaryShardFor(reqs[i].tenant));
    shardsUsed.insert(r.shard);
  }
  EXPECT_GT(shardsUsed.size(), 1u)
      << "4 tenants all hashed to one shard — ring is not spreading";

  // Decompress round trip through the cluster (F32): byte-identical to
  // a serial decompress of the same stream.
  const std::vector<f32> original = fieldFor(reqs[0]);
  core::CompressorStream serial(cfg);
  const core::Decompressed<f32> reference =
      serial.decompress<f32>(expected[0]);
  cluster::ClusterSubmitResult d =
      cl.submitDecompress("climate", ConstByteSpan(expected[0]), cfg);
  ASSERT_TRUE(d.accepted()) << d.detail;
  const cluster::ClusterJobResult& dr = d.ticket.wait();
  ASSERT_TRUE(dr.job.ok) << dr.job.error;
  ASSERT_EQ(dr.job.decodedElements, reference.data.size());
  ASSERT_EQ(dr.job.decompressed.size(),
            reference.data.size() * sizeof(f32));
  EXPECT_EQ(std::memcmp(dr.job.decompressed.data(),
                        reference.data.data(),
                        dr.job.decompressed.size()),
            0);

  // F64 precision routes through the same envelope.
  std::vector<f64> wide(original.begin(), original.begin() + 1024);
  const std::vector<std::byte> wideExpected =
      serial.compress<f64>(std::span<const f64>(wide)).stream;
  cluster::ClusterSubmitResult w =
      cl.submitCompress<f64>("physics", std::span<const f64>(wide), cfg);
  ASSERT_TRUE(w.accepted()) << w.detail;
  EXPECT_EQ(w.ticket.wait().job.compressed.stream, wideExpected);

  cl.shutdown();
  const cluster::ClusterStats stats = cl.stats();
  EXPECT_EQ(stats.accepted, reqs.size() + 2);
  EXPECT_EQ(stats.completed, reqs.size() + 2);
  EXPECT_EQ(stats.failovers, 0u);
  EXPECT_EQ(stats.failed, 0u);
}

// ---------------------------------------------------------------------
// Failover

TEST(ClusterTest, KilledShardFailsOverByteIdentical) {
  telemetry::registry().setEnabled(false);
  const std::vector<Request> reqs = mixedWorkload();
  const core::Config cfg = relConfig(1e-3);
  const std::vector<std::vector<std::byte>> expected =
      serialStreams(reqs, cfg);

  cluster::ClusterConfig ccfg;
  ccfg.shards = 3;
  ccfg.shard.workers = 1;
  ccfg.startPaused = true;
  cluster::CompressionCluster cl(ccfg);

  // Primary placement before the kill, for the rebalance assertion.
  std::vector<std::string> probes;
  std::vector<u32> before;
  for (u32 i = 0; i < 300; ++i) {
    probes.push_back("probe-tenant-" + std::to_string(i));
    before.push_back(cl.primaryShardFor(probes.back()));
  }

  std::vector<cluster::ClusterTicket> tickets = submitAll(cl, reqs, cfg);
  const u32 victim = cl.primaryShardFor("climate");
  std::vector<bool> onVictim;
  for (const Request& r : reqs) {
    onVictim.push_back(cl.primaryShardFor(r.tenant) == victim);
  }
  ASSERT_GT(std::count(onVictim.begin(), onVictim.end(), true), 0);

  cl.killShard(victim);
  EXPECT_EQ(cl.shardState(victim), cluster::ShardState::Down);
  EXPECT_EQ(liveShards(cl), 2u);

  // Rebalance invariant at the cluster level: only the victim's tenants
  // moved, and that is ~1/N of them.
  u32 moved = 0;
  for (usize i = 0; i < probes.size(); ++i) {
    const u32 after = cl.primaryShardFor(probes[i]);
    if (before[i] == victim) {
      ++moved;
      EXPECT_NE(after, victim);
    } else {
      EXPECT_EQ(after, before[i]) << probes[i] << " moved needlessly";
    }
  }
  EXPECT_GT(moved, 0u);
  EXPECT_LT(static_cast<f64>(moved) / probes.size(), 0.6)
      << "a single shard kill rerouted most of the tenant space";

  cl.resume();
  for (usize i = 0; i < tickets.size(); ++i) {
    ASSERT_TRUE(tickets[i].waitFor(std::chrono::milliseconds(20000)))
        << "ticket " << i << " never resolved after the kill";
    const cluster::ClusterJobResult& r = tickets[i].result();
    ASSERT_TRUE(r.job.ok) << "job " << i << ": " << r.job.error;
    EXPECT_EQ(r.job.compressed.stream, expected[i])
        << "failover changed bytes for job " << i;
    EXPECT_NE(r.shard, victim);
    if (onVictim[i]) {
      EXPECT_GE(r.failovers, 1u) << "victim job " << i << " never moved";
    }
  }

  cl.shutdown();
  const cluster::ClusterStats stats = cl.stats();
  EXPECT_EQ(stats.completed, reqs.size());
  EXPECT_EQ(stats.shardKills, 1u);
  EXPECT_GE(stats.failovers,
            static_cast<u64>(
                std::count(onVictim.begin(), onVictim.end(), true)));
}

TEST(ClusterTest, SeededChaosDrillIsDeterministic) {
  telemetry::registry().setEnabled(false);
  const std::vector<Request> reqs = mixedWorkload();
  const core::Config cfg = relConfig(1e-3);

  struct DrillRun {
    cluster::ClusterStats stats;
    std::vector<service::Outcome> outcomes;
    std::vector<std::vector<std::byte>> streams;
    std::vector<u32> shards;
  };
  const auto drill = [&](u64 seed) {
    cluster::ClusterConfig ccfg;
    ccfg.shards = 4;
    ccfg.shard.workers = 1;
    ccfg.startPaused = true;
    ccfg.minShardsUp = 2;
    cluster::ShardChaosConfig chaos;
    chaos.seed = seed;
    chaos.killRate = 0.6;
    chaos.degradeRate = 0.2;
    ccfg.shardChaos = cluster::ShardChaosSchedule(chaos).hook();
    cluster::CompressionCluster cl(ccfg);

    std::vector<cluster::ClusterTicket> tickets =
        submitAll(cl, reqs, cfg);
    for (int beat = 0; beat < 5; ++beat) cl.heartbeat();
    EXPECT_GE(liveShards(cl), 2u) << "minShardsUp floor was breached";
    cl.resume();

    DrillRun run;
    for (cluster::ClusterTicket& t : tickets) {
      EXPECT_TRUE(t.waitFor(std::chrono::milliseconds(20000)));
      const cluster::ClusterJobResult& r = t.result();
      run.outcomes.push_back(r.job.outcome);
      run.streams.push_back(r.job.compressed.stream);
      run.shards.push_back(r.shard);
    }
    cl.shutdown();
    run.stats = cl.stats();
    return run;
  };

  const DrillRun a = drill(20260808);
  const DrillRun b = drill(20260808);
  EXPECT_TRUE(a.stats == b.stats)
      << "same seed, different cluster counter snapshots";
  EXPECT_EQ(a.outcomes, b.outcomes);
  EXPECT_EQ(a.shards, b.shards);
  EXPECT_EQ(a.streams, b.streams);
  EXPECT_GT(a.stats.shardKills, 0u) << "drill never killed a shard";
  EXPECT_GT(a.stats.failovers, 0u) << "drill never failed a job over";

  // Every completed job is still byte-identical to the no-fault serial
  // run — failover resumed work, it did not re-derive different bytes.
  const std::vector<std::vector<std::byte>> expected =
      serialStreams(reqs, cfg);
  for (usize i = 0; i < reqs.size(); ++i) {
    if (a.outcomes[i] == service::Outcome::Completed) {
      EXPECT_EQ(a.streams[i], expected[i]) << "job " << i;
    }
  }

  // A different seed is a different drill.
  const DrillRun c = drill(911);
  EXPECT_FALSE(a.stats == c.stats);
}

// ---------------------------------------------------------------------
// Supervision ladder

TEST(ClusterTest, DegradedShardIsRoutedAroundThenEscalatesToDown) {
  telemetry::registry().setEnabled(false);
  // Compute the victim ahead of construction with an identical ring.
  cluster::ConsistentHashRing ring(64, 0xC1A57E12u);
  for (u32 s = 0; s < 3; ++s) ring.addShard(s);
  const u32 victim = ring.primaryFor("alpha");

  cluster::ClusterConfig ccfg;
  ccfg.shards = 3;
  ccfg.shard.workers = 1;
  ccfg.startPaused = true;
  ccfg.workStealing = false;
  ccfg.degradedProbesToDown = 2;
  ccfg.shardChaos = [victim](const cluster::ShardProbeInfo& p) {
    cluster::ShardFault f;
    if (p.shard == victim && p.heartbeat <= 2) {
      f.mode = cluster::ShardFault::Mode::Degrade;
    }
    return f;
  };
  cluster::CompressionCluster cl(ccfg);
  ASSERT_EQ(cl.primaryShardFor("alpha"), victim);

  // Beat 1: Up -> Degraded. New submissions route around the shard while
  // an Up replica exists; the ring itself has not changed.
  cl.heartbeat();
  EXPECT_EQ(cl.shardState(victim), cluster::ShardState::Degraded);
  EXPECT_NE(cl.primaryShardFor("alpha"), victim);

  const std::vector<f32> data = datagen::generateF32("cesm_atm", 0, 1024);
  cluster::ClusterSubmitResult s = cl.submitCompress<f32>(
      "alpha", std::span<const f32>(data), relConfig(1e-3));
  ASSERT_TRUE(s.accepted());

  // Beat 2: a second consecutive Degrade escalates Degraded -> Down.
  cl.heartbeat();
  EXPECT_EQ(cl.shardState(victim), cluster::ShardState::Down);

  cl.resume();
  const cluster::ClusterJobResult& r = s.ticket.wait();
  EXPECT_TRUE(r.job.ok) << r.job.error;
  EXPECT_NE(r.shard, victim);
  cl.shutdown();

  const cluster::ClusterStats stats = cl.stats();
  EXPECT_EQ(stats.shardDegrades, 1u);
  EXPECT_EQ(stats.shardKills, 1u);
  EXPECT_EQ(stats.probeFaults, 2u);
}

TEST(ClusterTest, DegradedShardRecoversOnHealthyProbe) {
  telemetry::registry().setEnabled(false);
  cluster::ClusterConfig ccfg;
  ccfg.shards = 2;
  ccfg.shard.workers = 1;
  ccfg.shardChaos = [](const cluster::ShardProbeInfo& p) {
    cluster::ShardFault f;
    if (p.shard == 0 && p.heartbeat == 1) {
      f.mode = cluster::ShardFault::Mode::Degrade;
    }
    return f;
  };
  cluster::CompressionCluster cl(ccfg);
  cl.heartbeat();
  EXPECT_EQ(cl.shardState(0), cluster::ShardState::Degraded);
  cl.heartbeat();  // healthy probe: Degraded -> Up
  EXPECT_EQ(cl.shardState(0), cluster::ShardState::Up);
  const cluster::ClusterStats stats = cl.stats();
  EXPECT_EQ(stats.shardDegrades, 1u);
  EXPECT_EQ(stats.shardRecoveries, 1u);
  EXPECT_EQ(stats.shardKills, 0u);
}

TEST(ClusterTest, MinShardsUpVetoesTheLastKill) {
  telemetry::registry().setEnabled(false);
  const std::vector<Request> reqs = mixedWorkload();
  const core::Config cfg = relConfig(1e-3);

  cluster::ClusterConfig ccfg;
  ccfg.shards = 3;
  ccfg.shard.workers = 1;
  ccfg.startPaused = true;
  ccfg.minShardsUp = 1;
  ccfg.shardChaos = [](const cluster::ShardProbeInfo&) {
    cluster::ShardFault f;
    f.mode = cluster::ShardFault::Mode::Kill;
    return f;
  };
  cluster::CompressionCluster cl(ccfg);

  std::vector<cluster::ClusterTicket> tickets = submitAll(cl, reqs, cfg);
  cl.heartbeat();  // kills shards 0 and 1; the kill of 2 is vetoed

  EXPECT_EQ(liveShards(cl), 1u);
  const cluster::ClusterStats mid = cl.stats();
  EXPECT_EQ(mid.shardKills, 2u);
  EXPECT_GE(mid.killsVetoed, 1u);

  cl.resume();
  u32 survivor = 0;
  for (const cluster::ShardInfo& info : cl.shardInfos()) {
    if (info.state != cluster::ShardState::Down) survivor = info.id;
  }
  for (usize i = 0; i < tickets.size(); ++i) {
    ASSERT_TRUE(tickets[i].waitFor(std::chrono::milliseconds(20000)));
    const cluster::ClusterJobResult& r = tickets[i].result();
    ASSERT_TRUE(r.job.ok) << "job " << i << ": " << r.job.error;
    EXPECT_EQ(r.shard, survivor);
  }
  cl.shutdown();
  EXPECT_EQ(cl.stats().completed, reqs.size());
}

// ---------------------------------------------------------------------
// Work stealing

TEST(ClusterTest, WorkStealingMovesQueuedJobsToIdleShard) {
  telemetry::registry().setEnabled(false);
  const core::Config cfg = relConfig(1e-3);

  cluster::ClusterConfig ccfg;
  ccfg.shards = 2;
  ccfg.shard.workers = 1;
  ccfg.startPaused = true;
  ccfg.maxStealsPerHeartbeat = 8;
  cluster::CompressionCluster cl(ccfg);
  const u32 hot = cl.primaryShardFor("hot-tenant");
  const u32 idle = 1 - hot;

  const std::vector<f32> data = datagen::generateF32("hacc", 0, 8192);
  std::vector<cluster::ClusterTicket> tickets;
  for (u32 i = 0; i < 8; ++i) {
    cluster::ClusterSubmitResult s = cl.submitCompress<f32>(
        "hot-tenant", std::span<const f32>(data), cfg);
    ASSERT_TRUE(s.accepted()) << s.detail;
    tickets.push_back(s.ticket);
  }

  cl.heartbeat();  // placement-cost-aware stealing while paused
  const cluster::ClusterStats mid = cl.stats();
  EXPECT_GT(mid.steals, 0u) << "an empty shard stole nothing";

  cl.resume();
  u32 stolen = 0;
  for (cluster::ClusterTicket& t : tickets) {
    const cluster::ClusterJobResult& r = t.wait();
    ASSERT_TRUE(r.job.ok) << r.job.error;
    if (r.steals > 0) {
      ++stolen;
      EXPECT_EQ(r.shard, idle);
    } else {
      EXPECT_EQ(r.shard, hot);
    }
  }
  EXPECT_EQ(static_cast<u64>(stolen), mid.steals);
  cl.shutdown();

  // Byte identity survives the move: compare one stolen result against
  // a serial compress of the same input.
  core::CompressorStream serial(cfg);
  const std::vector<std::byte> expected =
      serial.compress<f32>(std::span<const f32>(data)).stream;
  for (cluster::ClusterTicket& t : tickets) {
    EXPECT_EQ(t.result().job.compressed.stream, expected);
  }
}

// ---------------------------------------------------------------------
// Replicated archives

TEST(ClusterTest, ArchiveReplicaLossRepairsBitExactly) {
  telemetry::registry().setEnabled(false);
  cluster::ClusterConfig ccfg;
  ccfg.shards = 4;
  ccfg.replicas = 2;
  ccfg.shard.workers = 1;
  cluster::CompressionCluster cl(ccfg);

  // A real archive payload, sealed exactly as putArchive seals it.
  io::ArchiveWriter writer;
  const std::vector<f32> field = datagen::generateF32("cesm_atm", 0, 4096);
  core::CompressorStream stream(relConfig(1e-3));
  writer.addField(
      "t", stream.compress<f32>(std::span<const f32>(field)).stream);
  const std::vector<std::byte> raw = writer.finalize();
  const std::vector<std::byte> sealed =
      io::withParityTrailer(raw, ccfg.replicaParity);

  cl.putArchive("climate", "run-001", ConstByteSpan(raw));
  const u32 primary = cl.primaryShardFor("climate/run-001");

  // Clean read: served by the primary, byte-exact, no failover.
  cluster::CompressionCluster::ArchiveFetch clean =
      cl.getArchive("climate", "run-001");
  EXPECT_EQ(clean.archive, sealed);
  EXPECT_EQ(clean.shard, primary);
  EXPECT_EQ(clean.failovers, 0u);
  EXPECT_EQ(clean.repairs, 0u);

  // One flipped byte = one damaged chunk: the parity trailer self-heals
  // it without touching a replica.
  cl.corruptArchiveCopy(primary, "climate", "run-001", 100);
  cluster::CompressionCluster::ArchiveFetch healed =
      cl.getArchive("climate", "run-001");
  EXPECT_EQ(healed.archive, sealed);
  EXPECT_EQ(healed.shard, primary);
  EXPECT_EQ(healed.failovers, 0u);
  EXPECT_GE(healed.repairs, 1u);

  // Two damaged chunks in one parity group defeat XOR parity: the read
  // fails over to a replica and read-repairs the primary copy.
  cl.corruptArchiveCopy(primary, "climate", "run-001", 10);
  cl.corruptArchiveCopy(primary, "climate", "run-001",
                        ccfg.replicaParity.chunkBytes + 10);
  cluster::CompressionCluster::ArchiveFetch failed =
      cl.getArchive("climate", "run-001");
  EXPECT_EQ(failed.archive, sealed);
  EXPECT_NE(failed.shard, primary);
  EXPECT_GE(failed.failovers, 1u);
  EXPECT_GE(failed.repairs, 1u);

  // Read-repair restored the primary: the next read is clean again.
  cluster::CompressionCluster::ArchiveFetch again =
      cl.getArchive("climate", "run-001");
  EXPECT_EQ(again.archive, sealed);
  EXPECT_EQ(again.shard, primary);
  EXPECT_EQ(again.failovers, 0u);
  EXPECT_EQ(again.repairs, 0u);

  const cluster::ClusterStats stats = cl.stats();
  EXPECT_EQ(stats.archivePuts, 1u);
  EXPECT_EQ(stats.archiveCopies, 2u);
  EXPECT_EQ(stats.archiveReads, 4u);
  EXPECT_GE(stats.archiveReadFailovers, 1u);
  EXPECT_GE(stats.archiveRepairs, 2u);
}

TEST(ClusterTest, ArchiveSurvivesPrimaryKillAndReviveReReplicates) {
  telemetry::registry().setEnabled(false);
  cluster::ClusterConfig ccfg;
  ccfg.shards = 4;
  ccfg.replicas = 2;
  ccfg.shard.workers = 1;
  cluster::CompressionCluster cl(ccfg);

  std::vector<std::byte> raw(10000);
  for (usize i = 0; i < raw.size(); ++i) {
    raw[i] = static_cast<std::byte>((i * 31 + 7) & 0xFF);
  }
  const std::vector<std::byte> sealed =
      io::withParityTrailer(raw, ccfg.replicaParity);

  cl.putArchive("physics", "ckpt", ConstByteSpan(raw));
  const u32 primary = cl.primaryShardFor("physics/ckpt");

  // Lose the primary entirely: the read fails over to the follower and
  // read-repairs the set back to R=2 intact copies on live shards.
  cl.killShard(primary);
  cluster::CompressionCluster::ArchiveFetch fetch =
      cl.getArchive("physics", "ckpt");
  EXPECT_EQ(fetch.archive, sealed);
  EXPECT_NE(fetch.shard, primary);

  // Revive: the shard comes back empty and is re-replicated bit-exactly
  // from a digest-verified survivor. Prove it by killing every OTHER
  // shard and reading again — only the revived copy can serve.
  cl.reviveShard(primary);
  EXPECT_EQ(cl.shardState(primary), cluster::ShardState::Up);
  for (u32 s = 0; s < cl.shardCount(); ++s) {
    if (s != primary) cl.killShard(s);
  }
  cluster::CompressionCluster::ArchiveFetch revived =
      cl.getArchive("physics", "ckpt");
  EXPECT_EQ(revived.archive, sealed);
  EXPECT_EQ(revived.shard, primary);

  const cluster::ClusterStats stats = cl.stats();
  EXPECT_GE(stats.shardRevives, 1u);
  EXPECT_GE(stats.archiveRepairs, 1u);
}

// ---------------------------------------------------------------------
// Lifecycle

TEST(ClusterTest, ShutdownResolvesEveryTicketAndRejectsNewWork) {
  telemetry::registry().setEnabled(false);
  const std::vector<Request> reqs = mixedWorkload();
  const core::Config cfg = relConfig(1e-3);

  cluster::ClusterConfig ccfg;
  ccfg.shards = 2;
  ccfg.shard.workers = 1;
  ccfg.startPaused = true;
  cluster::CompressionCluster cl(ccfg);
  std::vector<cluster::ClusterTicket> tickets = submitAll(cl, reqs, cfg);

  // Shutdown drains paused shards fully: accepted work completes.
  cl.shutdown();
  for (cluster::ClusterTicket& t : tickets) {
    ASSERT_TRUE(t.poll()) << "shutdown left a ticket unresolved";
    EXPECT_EQ(t.result().job.outcome, service::Outcome::Completed);
  }

  const std::vector<f32> data = datagen::generateF32("hacc", 0, 256);
  cluster::ClusterSubmitResult late =
      cl.submitCompress<f32>("climate", std::span<const f32>(data), cfg);
  EXPECT_FALSE(late.accepted());
  EXPECT_EQ(late.reason, service::RejectReason::ShuttingDown);
  EXPECT_GE(cl.stats().rejected, 1u);
}

TEST(ClusterTest, ClientCancelBeforeDispatchResolvesCanceled) {
  telemetry::registry().setEnabled(false);
  cluster::ClusterConfig ccfg;
  ccfg.shards = 2;
  ccfg.shard.workers = 1;
  ccfg.startPaused = true;
  cluster::CompressionCluster cl(ccfg);

  const std::vector<f32> data = datagen::generateF32("jetin", 0, 2048);
  cluster::ClusterSubmitResult s = cl.submitCompress<f32>(
      "fluids", std::span<const f32>(data), relConfig(1e-3));
  ASSERT_TRUE(s.accepted());
  EXPECT_TRUE(s.ticket.cancel());
  EXPECT_TRUE(s.ticket.poll());
  EXPECT_EQ(s.ticket.result().job.outcome, service::Outcome::Canceled);

  cl.resume();
  cl.shutdown();
  const cluster::ClusterStats stats = cl.stats();
  EXPECT_EQ(stats.canceled, 1u);
  EXPECT_EQ(stats.completed, 0u);
}

TEST(ClusterTest, ClusterMetricsAppearInSnapshot) {
  telemetry::registry().setEnabled(true);
  telemetry::registry().reset();

  cluster::ClusterConfig ccfg;
  ccfg.shards = 2;
  ccfg.shard.workers = 1;
  cluster::CompressionCluster cl(ccfg);

  const std::vector<f32> data = datagen::generateF32("cesm_atm", 0, 1024);
  cluster::ClusterSubmitResult s = cl.submitCompress<f32>(
      "climate", std::span<const f32>(data), relConfig(1e-3));
  ASSERT_TRUE(s.accepted());
  s.ticket.wait();
  cl.heartbeat();
  const std::vector<std::byte> blob(64, std::byte{0x5A});
  cl.putArchive("climate", "m", ConstByteSpan(blob));
  cl.getArchive("climate", "m");
  cl.shutdown();

  const std::string json = telemetry::registry().snapshotJson();
  EXPECT_NE(json.find("cluster.submitted"), std::string::npos);
  EXPECT_NE(json.find("cluster.accepted"), std::string::npos);
  EXPECT_NE(json.find("cluster.completed"), std::string::npos);
  EXPECT_NE(json.find("cluster.heartbeats"), std::string::npos);
  EXPECT_NE(json.find("cluster.shard.0.state"), std::string::npos);
  EXPECT_NE(json.find("cluster.shard.1.queue_depth"), std::string::npos);
  EXPECT_NE(json.find("cluster.archive.puts"), std::string::npos);
  EXPECT_NE(json.find("cluster.archive.reads"), std::string::npos);
  telemetry::registry().setEnabled(false);
}
