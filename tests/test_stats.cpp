// Tests for the field-statistics module.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "datagen/fields.hpp"
#include "datagen/stats.hpp"

namespace cuszp2::datagen {
namespace {

TEST(FieldStats, ConstantField) {
  const std::vector<f32> v(256, 5.0f);
  const auto s = computeFieldStats<f32>(v);
  EXPECT_DOUBLE_EQ(s.min, 5.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.stddev, 0.0, 1e-9);
  EXPECT_DOUBLE_EQ(s.zeroFraction, 0.0);
  EXPECT_DOUBLE_EQ(s.roughness, 0.0);
  // Constant nonzero blocks are the canonical outlier motif: head |5|,
  // tail diffs all zero.
  EXPECT_DOUBLE_EQ(s.outlierBlockFraction, 1.0);
}

TEST(FieldStats, ZeroField) {
  const std::vector<f32> v(128, 0.0f);
  const auto s = computeFieldStats<f32>(v);
  EXPECT_DOUBLE_EQ(s.zeroFraction, 1.0);
  EXPECT_DOUBLE_EQ(s.outlierBlockFraction, 0.0);  // head is 0, not outlier
}

TEST(FieldStats, KnownMoments) {
  const std::vector<f64> v = {1.0, 2.0, 3.0, 4.0};
  const auto s = computeFieldStats<f64>(v);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_NEAR(s.stddev, std::sqrt(1.25), 1e-12);
  EXPECT_DOUBLE_EQ(s.range(), 3.0);
  // Mean |diff| = 1, range 3.
  EXPECT_NEAR(s.roughness, 1.0 / 3.0, 1e-12);
}

TEST(FieldStats, ZeroFractionCounts) {
  std::vector<f32> v(100, 1.0f);
  for (usize i = 0; i < 25; ++i) v[i * 4] = 0.0f;
  EXPECT_DOUBLE_EQ(computeFieldStats<f32>(v).zeroFraction, 0.25);
}

TEST(FieldStats, RoughnessOrdersNoiseLevels) {
  Rng rng(9);
  std::vector<f32> smooth(4096);
  std::vector<f32> rough(4096);
  for (usize i = 0; i < smooth.size(); ++i) {
    smooth[i] = static_cast<f32>(std::sin(0.01 * static_cast<f64>(i)));
    rough[i] = static_cast<f32>(rng.uniform(-1.0, 1.0));
  }
  EXPECT_LT(computeFieldStats<f32>(smooth).roughness,
            computeFieldStats<f32>(rough).roughness);
}

TEST(FieldStats, EmptyFieldThrows) {
  EXPECT_THROW(computeFieldStats<f32>(std::vector<f32>{}), Error);
}

TEST(FieldStats, SyntheticDatasetCharactersHold) {
  // The generators must keep the characters that drive the paper's
  // results (cross-checked against the compression tests).
  const auto jetin = computeFieldStats<f32>(generateF32("jetin", 0, 1 << 16));
  EXPECT_GT(jetin.zeroFraction, 0.8);

  const auto miranda =
      computeFieldStats<f32>(generateF32("miranda", 0, 1 << 16));
  EXPECT_GT(miranda.outlierBlockFraction, 0.5);  // smooth + DC offset

  const auto qmcpack =
      computeFieldStats<f32>(generateF32("qmcpack", 0, 1 << 16));
  EXPECT_LT(qmcpack.outlierBlockFraction, 0.3);  // oscillatory
}

}  // namespace
}  // namespace cuszp2::datagen
