// Corruption-matrix tests for format v2 (per-block CRC footer) and the
// salvage decoder: strict decode must reject damage with a precise Error,
// decompressResilient must quarantine exactly the damaged blocks and
// recover every other block bit-exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/block_codec.hpp"
#include "core/compressor.hpp"
#include "core/segmented.hpp"
#include "datagen/fields.hpp"
#include "telemetry/metrics.hpp"

namespace cuszp2::core {
namespace {

constexpr f32 kFill = -7.0f;

struct V2Fixture {
  std::vector<f32> data;
  std::vector<std::byte> stream;    // version 2, stream CRC + block CRCs
  std::vector<std::byte> v1Stream;  // same data, version 1
  std::vector<f32> clean;           // reference decode
  StreamHeader header;
  std::vector<usize> blockPos;   // payload-relative start per block
  std::vector<usize> blockSize;  // payload bytes per block

  V2Fixture() {
    data = datagen::generateF32("scale", 3, 1 << 12);
    // A full aligned zero block, to distinguish "decoded zero" from the
    // salvage fill value.
    std::fill(data.begin() + 64, data.begin() + 96, 0.0f);

    Config cfg;
    cfg.absErrorBound = 1e-2;
    cfg.checksum = true;
    cfg.blockChecksums = true;
    CompressorStream codec(cfg);
    stream = codec.compress<f32>(data).stream;
    clean = codec.decompress<f32>(stream).data;

    cfg.blockChecksums = false;
    codec.reconfigure(cfg);
    v1Stream = codec.compress<f32>(data).stream;

    header = StreamHeader::parse(stream);
    usize cursor = 0;
    for (u64 blk = 0; blk < header.numBlocks(); ++blk) {
      const auto h = BlockHeader::unpack(std::to_integer<u8>(
          stream[StreamHeader::offsetsBegin() + blk]));
      blockPos.push_back(cursor);
      blockSize.push_back(payloadSize(h, header.blockSize));
      cursor += blockSize.back();
    }
  }

  /// Elements covered by one block.
  std::pair<u64, u64> blockElems(u64 blk) const {
    const u64 first = blk * header.blockSize;
    return {first,
            std::min<u64>(header.numElements, first + header.blockSize)};
  }
};

CompressorStream& salvageCodec() {
  static CompressorStream codec(Config{.absErrorBound = 1e-2});
  return codec;
}

/// Every Good-verdict block must match the clean decode bit-exactly;
/// every quarantined block must hold the fill value.
void expectVerdictsHonoured(const V2Fixture& fx, const Salvaged<f32>& s) {
  ASSERT_TRUE(s.report.headerOk);
  ASSERT_EQ(s.report.verdicts.size(), fx.header.numBlocks());
  ASSERT_EQ(s.data.size(), fx.clean.size());
  for (u64 blk = 0; blk < fx.header.numBlocks(); ++blk) {
    const auto [first, last] = fx.blockElems(blk);
    if (s.report.verdicts[blk] == BlockVerdict::Good) {
      EXPECT_EQ(0, std::memcmp(s.data.data() + first,
                               fx.clean.data() + first,
                               (last - first) * sizeof(f32)))
          << "good block " << blk << " not bit-exact";
    } else {
      for (u64 e = first; e < last; ++e) {
        EXPECT_EQ(s.data[e], kFill) << "bad block " << blk << " elem " << e;
      }
    }
  }
}

TEST(FormatV2, LayoutIsV1PlusFooter) {
  const V2Fixture fx;
  EXPECT_EQ(fx.header.version, kFormatVersionV2);
  EXPECT_TRUE(fx.header.hasBlockChecksums());
  EXPECT_EQ(StreamHeader::parse(fx.v1Stream).version, kFormatVersion);

  // Offsets + payload are byte-identical to the version-1 stream; only
  // the header words and the appended footer differ.
  ASSERT_EQ(fx.stream.size(),
            fx.v1Stream.size() + 2 * fx.header.numBlocks());
  EXPECT_EQ(0, std::memcmp(fx.stream.data() + StreamHeader::kBytes,
                           fx.v1Stream.data() + StreamHeader::kBytes,
                           fx.v1Stream.size() - StreamHeader::kBytes));
}

TEST(FormatV2, StrictRoundTripAndRandomAccess) {
  const V2Fixture fx;
  CompressorStream& codec = salvageCodec();
  EXPECT_EQ(codec.decompress<f32>(fx.stream).data, fx.clean);
  const auto range = codec.decompressBlocks<f32>(fx.stream, 3, 5);
  for (usize i = 0; i < range.values.size(); ++i) {
    EXPECT_EQ(range.values[i], fx.clean[range.firstElement + i]);
  }
}

TEST(FormatV2, ReplaceBlocksRebuildsFooter) {
  const V2Fixture fx;
  CompressorStream& codec = salvageCodec();
  std::vector<f32> repl(fx.header.blockSize * 2, 3.25f);
  const auto patched = codec.replaceBlocks<f32>(fx.stream, 4, repl);
  EXPECT_EQ(StreamHeader::parse(patched.stream).version, kFormatVersionV2);
  // The patched stream must still pass full strict validation.
  const auto d = codec.decompress<f32>(patched.stream);
  for (u32 i = 0; i < fx.header.blockSize * 2; ++i) {
    EXPECT_NEAR(d.data[4 * fx.header.blockSize + i], 3.25f, 1e-2);
  }
}

TEST(Salvage, CleanStreamReportsClean) {
  const V2Fixture fx;
  const auto s = salvageCodec().decompressResilient<f32>(fx.stream, kFill);
  EXPECT_TRUE(s.report.clean());
  EXPECT_TRUE(s.report.blockChecksums);
  EXPECT_TRUE(s.report.streamChecksumOk);
  EXPECT_EQ(s.report.goodBlocks, fx.header.numBlocks());
  EXPECT_EQ(s.report.badBlocks, 0u);
  EXPECT_EQ(s.report.firstCorruptOffset, DecodeReport::kNoCorruption);
  EXPECT_EQ(s.data, fx.clean);
}

// The ISSUE's acceptance shape: k damaged blocks -> exactly k quarantined,
// everything else recovered bit-exactly.
TEST(Salvage, ExactlyKCorruptBlocksQuarantined) {
  const V2Fixture fx;
  // Pick 3 spread-out blocks with non-empty payloads.
  std::vector<u64> victims;
  for (u64 blk = 2; blk < fx.header.numBlocks() && victims.size() < 3;
       blk += 41) {
    if (fx.blockSize[blk] > 0) victims.push_back(blk);
  }
  ASSERT_EQ(victims.size(), 3u);

  auto corrupted = fx.stream;
  const usize payloadBegin = fx.header.payloadBegin();
  for (const u64 blk : victims) {
    corrupted[payloadBegin + fx.blockPos[blk]] ^= std::byte{0x10};
  }

  CompressorStream& codec = salvageCodec();
  EXPECT_THROW((void)codec.decompress<f32>(corrupted), Error);

  const auto s = codec.decompressResilient<f32>(corrupted, kFill);
  EXPECT_EQ(s.report.badBlocks, victims.size());
  EXPECT_EQ(s.report.goodBlocks,
            fx.header.numBlocks() - victims.size());
  EXPECT_FALSE(s.report.streamChecksumOk);
  EXPECT_EQ(s.report.firstCorruptOffset,
            payloadBegin + fx.blockPos[victims.front()]);
  for (const u64 blk : victims) {
    EXPECT_EQ(s.report.verdicts[blk], BlockVerdict::ChecksumMismatch);
  }
  expectVerdictsHonoured(fx, s);
}

TEST(Salvage, ZeroBlocksDecodeToZeroNotFill) {
  const V2Fixture fx;
  const u64 zeroBlk = 64 / fx.header.blockSize;  // the zeroed range
  ASSERT_EQ(fx.blockSize[zeroBlk], 0u);

  auto corrupted = fx.stream;
  corrupted[fx.header.payloadBegin() + fx.blockPos[2]] ^= std::byte{1};
  const auto s = salvageCodec().decompressResilient<f32>(corrupted, kFill);
  ASSERT_EQ(s.report.verdicts[zeroBlk], BlockVerdict::Good);
  const auto [first, last] = fx.blockElems(zeroBlk);
  for (u64 e = first; e < last; ++e) EXPECT_EQ(s.data[e], 0.0f);
}

// Truncation at every region boundary (and just past each): strict must
// throw, salvage must survive and honour its verdicts.
TEST(Salvage, TruncationMatrix) {
  const V2Fixture fx;
  CompressorStream& codec = salvageCodec();
  const usize payloadBegin = fx.header.payloadBegin();
  const usize payloadEnd = fx.stream.size() - fx.header.footerBytes();
  const usize cuts[] = {0,
                        1,
                        StreamHeader::kBytes / 2,     // mid-header
                        StreamHeader::kBytes - 1,
                        StreamHeader::kBytes,         // header/offsets edge
                        StreamHeader::kBytes + 5,     // mid-offsets
                        payloadBegin - 1,
                        payloadBegin,                 // offsets/payload edge
                        payloadBegin + 1,
                        (payloadBegin + payloadEnd) / 2,  // mid-payload
                        payloadEnd - 1,
                        payloadEnd,                   // payload/footer edge
                        payloadEnd + 1,               // mid-footer
                        fx.stream.size() - 1};
  for (const usize cut : cuts) {
    auto truncated = fx.stream;
    truncated.resize(cut);
    EXPECT_THROW((void)codec.decompress<f32>(truncated), Error)
        << "cut " << cut;
    const auto s = codec.decompressResilient<f32>(truncated, kFill);
    EXPECT_FALSE(s.report.clean()) << "cut " << cut;
    if (!s.report.headerOk) {
      EXPECT_TRUE(s.data.empty()) << "cut " << cut;
      EXPECT_FALSE(s.report.headerError.empty()) << "cut " << cut;
    } else {
      expectVerdictsHonoured(fx, s);
    }
  }
}

// 200 seeded single-bit mutants over offsets + payload + footer: strict
// either rejects or succeeds, salvage honours verdicts (never crashes,
// Good blocks stay bit-exact).
TEST(Salvage, SeededByteFlipMutants) {
  const V2Fixture fx;
  CompressorStream& codec = salvageCodec();
  Rng rng(0xC0FFEEull);
  for (int trial = 0; trial < 200; ++trial) {
    auto corrupted = fx.stream;
    const usize pos =
        StreamHeader::kBytes +
        rng.uniformInt(corrupted.size() - StreamHeader::kBytes);
    corrupted[pos] ^= static_cast<std::byte>(1u << rng.uniformInt(8));
    try {
      (void)codec.decompress<f32>(corrupted);
      FAIL() << "stream-CRC'd mutant accepted, trial " << trial;
    } catch (const Error&) {
    }
    const auto s = codec.decompressResilient<f32>(corrupted, kFill);
    expectVerdictsHonoured(fx, s);
    EXPECT_GT(s.report.badBlocks + (s.report.streamChecksumOk ? 0 : 1), 0u)
        << "trial " << trial;
  }
}

// Version-1 salvage is structural only: a truncated stream splits into a
// bit-exact Good prefix and a Truncated suffix.
TEST(Salvage, V1TruncationSplitsPrefixSuffix) {
  const V2Fixture fx;
  CompressorStream& codec = salvageCodec();
  auto truncated = fx.v1Stream;
  truncated.resize(truncated.size() * 3 / 4);
  const auto s = codec.decompressResilient<f32>(truncated, kFill);
  ASSERT_TRUE(s.report.headerOk);
  EXPECT_FALSE(s.report.blockChecksums);
  EXPECT_GT(s.report.badBlocks, 0u);
  EXPECT_GT(s.report.goodBlocks, 0u);
  bool seenBad = false;
  for (u64 blk = 0; blk < fx.header.numBlocks(); ++blk) {
    const bool good = s.report.verdicts[blk] == BlockVerdict::Good;
    if (!good) {
      EXPECT_EQ(s.report.verdicts[blk], BlockVerdict::Truncated);
      seenBad = true;
    } else {
      EXPECT_FALSE(seenBad) << "Good block after a Truncated one";
      const auto [first, last] = fx.blockElems(blk);
      EXPECT_EQ(0, std::memcmp(s.data.data() + first,
                               fx.clean.data() + first,
                               (last - first) * sizeof(f32)));
    }
  }
}

// Regression: degenerate streams (unparseable header, zero elements) must
// not push bogus block or byte counts into the telemetry registry — only
// the salvage call counter moves, and a zero-element strict decode records
// its true (header-only, zero-output) byte counts.
TEST(Salvage, DegenerateStreamsKeepRegistrySane) {
  telemetry::MetricsRegistry& reg = telemetry::registry();
  reg.setEnabled(true);
  reg.reset();
  CompressorStream codec(Config{.absErrorBound = 1e-2});

  // Empty byte stream: header unparseable, nothing beyond the call
  // counter is trustworthy.
  const auto empty = codec.decompressResilient<f32>({}, kFill);
  EXPECT_FALSE(empty.report.headerOk);
  EXPECT_TRUE(empty.data.empty());
  EXPECT_EQ(reg.counter("stream.salvage.calls").value(), 1u);
  EXPECT_EQ(reg.counter("stream.salvage.bad_blocks").value(), 0u);
  EXPECT_EQ(reg.counter("stream.decompress.bytes_out").value(), 0u);

  // Zero-element stream: a bare 40-byte header. Salvage parses it, finds
  // zero blocks, and reports nothing bad.
  const auto zc = codec.compress<f32>(std::span<const f32>{});
  ASSERT_EQ(zc.stream.size(), StreamHeader::kBytes);
  const auto zs = codec.decompressResilient<f32>(zc.stream, kFill);
  EXPECT_TRUE(zs.report.headerOk);
  EXPECT_EQ(zs.report.totalBlocks, 0u);
  EXPECT_TRUE(zs.data.empty());
  EXPECT_EQ(reg.counter("stream.salvage.calls").value(), 2u);
  EXPECT_EQ(reg.counter("stream.salvage.bad_blocks").value(), 0u);

  // Strict decode of the same stream records accurate byte counts: the
  // header-only input, zero bytes out.
  const auto zd = codec.decompress<f32>(zc.stream);
  EXPECT_TRUE(zd.data.empty());
  EXPECT_EQ(reg.counter("stream.decompress.bytes_in").value(),
            zc.stream.size());
  EXPECT_EQ(reg.counter("stream.decompress.bytes_out").value(), 0u);

  reg.reset();
  reg.setEnabled(false);
}

TEST(Salvage, UnusableHeadersNeverThrow) {
  CompressorStream& codec = salvageCodec();
  // Garbage bytes.
  std::vector<std::byte> junk(200, std::byte{0xAB});
  auto s = codec.decompressResilient<f32>(junk, kFill);
  EXPECT_FALSE(s.report.headerOk);
  EXPECT_FALSE(s.report.headerError.empty());
  EXPECT_TRUE(s.data.empty());
  // Empty input.
  s = codec.decompressResilient<f32>(ConstByteSpan{}, kFill);
  EXPECT_FALSE(s.report.headerOk);
  // Precision mismatch is a header-level failure, not a throw.
  const V2Fixture fx;
  const auto s64 = codec.decompressResilient<f64>(fx.stream, -7.0);
  EXPECT_FALSE(s64.report.headerOk);
  EXPECT_FALSE(s64.report.headerError.empty());
}

// Satellite: strict decode errors must name the failing block and byte
// offset.
TEST(Salvage, StrictErrorsNameBlockAndOffset) {
  // No stream CRC so the layout validator (not the checksum) rejects.
  Config cfg;
  cfg.absErrorBound = 1e-2;
  CompressorStream codec(cfg);
  const auto data = datagen::generateF32("scale", 3, 1 << 12);
  auto stream = codec.compress<f32>(data).stream;
  const auto header = StreamHeader::parse(stream);
  stream.resize(header.payloadBegin() + 3);  // deep payload truncation
  try {
    (void)codec.decompress<f32>(stream);
    FAIL() << "expected a payload-overrun Error";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("block"), std::string::npos) << msg;
    EXPECT_NE(msg.find("byte offset"), std::string::npos) << msg;
  }
  try {
    (void)codec.decompressBlocks<f32>(stream, 0, 2);
    FAIL() << "expected a payload-overrun Error";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("decompressBlocks"), std::string::npos) << msg;
    EXPECT_NE(msg.find("block"), std::string::npos) << msg;
  }
}

TEST(Salvage, SegmentedReaderSalvagesDamagedSegment) {
  Config cfg;
  cfg.absErrorBound = 1e-2;
  cfg.blockChecksums = true;
  SegmentedCompressor<f32> sc(cfg, 512);
  const auto data = datagen::generateF32("scale", 0, 2048);
  sc.append(data);
  auto container = sc.finish();

  // Damage one payload byte of segment 1 (its stream sits after the TOC).
  SegmentedReader<f32> probe(container);
  ASSERT_EQ(probe.segmentCount(), 4u);
  const auto seg0 = probe.segment(0);
  container[container.size() - 300] ^= std::byte{0x40};

  SegmentedReader<f32> reader(container);
  EXPECT_EQ(reader.segment(0), seg0);  // undamaged segment unaffected
  bool anyDamaged = false;
  for (usize i = 0; i < reader.segmentCount(); ++i) {
    const auto s = reader.segmentResilient(i, kFill);
    ASSERT_TRUE(s.report.headerOk) << "segment " << i;
    anyDamaged |= !s.report.clean();
  }
  EXPECT_TRUE(anyDamaged);
}

}  // namespace
}  // namespace cuszp2::core
