// Arena: the bump allocator behind every compressor scratch buffer. The
// SIMD kernels rely on its 64-byte alignment promise — an unaligned span
// would silently fall back to slower unaligned loads (or fault with
// alignment-checked instructions) — so alignment is asserted here for
// every allocation pattern the codec produces, not just the first.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/arena.hpp"
#include "common/types.hpp"

using namespace cuszp2;

namespace {

bool aligned64(const void* p) {
  return reinterpret_cast<std::uintptr_t>(p) % Arena::kAlignment == 0;
}

}  // namespace

TEST(ArenaTest, EveryAllocationIs64ByteAligned) {
  Arena arena;
  // Odd sizes force the bump pointer through non-multiple-of-64 requests;
  // alignment must still hold for the *next* allocation.
  const usize sizes[] = {1, 3, 63, 64, 65, 100, 1000, 4096, 65537};
  for (int cycle = 0; cycle < 3; ++cycle) {
    for (const usize bytes : sizes) {
      void* p = arena.allocate(bytes);
      EXPECT_TRUE(aligned64(p)) << "bytes=" << bytes << " cycle=" << cycle;
    }
    arena.reset();
  }
}

TEST(ArenaTest, TypedSpansAre64ByteAligned) {
  Arena arena;
  const auto i32s = arena.allocSpan<i32>(17);
  const auto f64s = arena.allocSpan<f64>(33);
  const auto bytes = arena.allocSpan<std::byte>(5);
  const auto u64s = arena.allocSpan<u64>(1);
  EXPECT_TRUE(aligned64(i32s.data()));
  EXPECT_TRUE(aligned64(f64s.data()));
  EXPECT_TRUE(aligned64(bytes.data()));
  EXPECT_TRUE(aligned64(u64s.data()));
}

TEST(ArenaTest, AlignmentSurvivesSlabSpillAndCoalesce) {
  Arena arena;
  // Spill past the first slab so addSlab() runs mid-cycle, then reset to
  // trigger the coalescing path; alignment must hold in both regimes.
  std::vector<void*> ptrs;
  for (int i = 0; i < 8; ++i) ptrs.push_back(arena.allocate(Arena::kMinSlabBytes / 2 + 1));
  for (void* p : ptrs) EXPECT_TRUE(aligned64(p));
  EXPECT_GT(arena.stats().slabAllocations, 1u);
  arena.reset();
  EXPECT_TRUE(aligned64(arena.allocate(123)));
}
