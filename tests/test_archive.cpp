// Tests for the multi-field archive container.
#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/compressor.hpp"
#include "core/quantizer.hpp"
#include "datagen/fields.hpp"
#include "io/archive.hpp"
#include "metrics/error_stats.hpp"

namespace cuszp2::io {
namespace {

std::vector<std::byte> bytesOf(std::initializer_list<int> vals) {
  std::vector<std::byte> out;
  for (int v : vals) out.push_back(static_cast<std::byte>(v));
  return out;
}

TEST(Archive, EmptyArchiveRoundTrips) {
  ArchiveWriter w;
  const auto bytes = w.finalize();
  ArchiveReader r(bytes);
  EXPECT_EQ(r.fieldCount(), 0u);
  EXPECT_TRUE(r.fieldNames().empty());
  EXPECT_FALSE(r.hasField("x"));
}

TEST(Archive, SingleFieldRoundTrips) {
  ArchiveWriter w;
  const auto payload = bytesOf({1, 2, 3, 4, 5});
  w.addField("vx", payload);
  const auto bytes = w.finalize();
  ArchiveReader r(bytes);
  ASSERT_TRUE(r.hasField("vx"));
  const auto got = r.field("vx");
  ASSERT_EQ(got.size(), payload.size());
  EXPECT_TRUE(std::equal(got.begin(), got.end(), payload.begin()));
}

TEST(Archive, ManyFieldsPreserveOrderAndContent) {
  ArchiveWriter w;
  std::vector<std::vector<std::byte>> payloads;
  for (int f = 0; f < 20; ++f) {
    std::vector<std::byte> p(static_cast<usize>(f * 13 + 1));
    for (usize i = 0; i < p.size(); ++i) {
      p[i] = static_cast<std::byte>((f * 31 + i) & 0xFF);
    }
    payloads.push_back(p);
    w.addField("field_" + std::to_string(f), p);
  }
  const auto bytes = w.finalize();
  ArchiveReader r(bytes);
  EXPECT_EQ(r.fieldCount(), 20u);
  const auto names = r.fieldNames();
  for (int f = 0; f < 20; ++f) {
    EXPECT_EQ(names[static_cast<usize>(f)], "field_" + std::to_string(f));
    const auto got = r.field("field_" + std::to_string(f));
    ASSERT_EQ(got.size(), payloads[static_cast<usize>(f)].size());
    EXPECT_TRUE(std::equal(got.begin(), got.end(),
                           payloads[static_cast<usize>(f)].begin()));
  }
}

TEST(Archive, EmptyFieldPayloadAllowed) {
  ArchiveWriter w;
  w.addField("empty", ConstByteSpan{});
  w.addField("other", bytesOf({9}));
  ArchiveReader r1(w.finalize());
  // finalize() must be re-runnable and consistent.
  const auto bytes = w.finalize();
  ArchiveReader r(bytes);
  EXPECT_EQ(r.field("empty").size(), 0u);
  EXPECT_EQ(r.field("other").size(), 1u);
}

TEST(Archive, WriterValidation) {
  ArchiveWriter w;
  EXPECT_THROW(w.addField("", bytesOf({1})), Error);
  w.addField("dup", bytesOf({1}));
  EXPECT_THROW(w.addField("dup", bytesOf({2})), Error);
}

TEST(Archive, ReaderRejectsCorruption) {
  ArchiveWriter w;
  w.addField("a", bytesOf({1, 2, 3}));
  auto bytes = w.finalize();

  // Bad magic.
  auto bad = bytes;
  bad[0] = std::byte{0};
  EXPECT_THROW(ArchiveReader{bad}, Error);

  // Truncated payload region.
  auto truncated = bytes;
  truncated.resize(truncated.size() - 2);
  EXPECT_THROW(ArchiveReader{truncated}, Error);

  // Truncated header.
  EXPECT_THROW(ArchiveReader(ConstByteSpan(bytes.data(), 4)), Error);
}

TEST(Archive, MissingFieldThrows) {
  ArchiveWriter w;
  w.addField("present", bytesOf({1}));
  const auto bytes = w.finalize();
  ArchiveReader r(bytes);
  EXPECT_THROW(r.field("absent"), Error);
}

// End-to-end: a whole multi-field dataset archived and restored.
TEST(Archive, CompressedDatasetRoundTrip) {
  core::Config cfg;
  cfg.relErrorBound = 1e-3;
  const core::Compressor compressor(cfg);

  ArchiveWriter w;
  std::vector<std::vector<f32>> originals;
  std::vector<std::vector<std::byte>> streams;
  for (u32 f = 0; f < 4; ++f) {
    originals.push_back(datagen::generateF32("hacc", f, 1 << 13));
    streams.push_back(
        compressor.compress<f32>(originals.back()).stream);
    w.addField(datagen::haccFieldNames()[f], streams.back());
  }
  const auto archive = w.finalize();

  ArchiveReader r(archive);
  for (u32 f = 0; f < 4; ++f) {
    const auto stream = r.field(datagen::haccFieldNames()[f]);
    const auto header = core::StreamHeader::parse(stream);
    const auto d = compressor.decompress<f32>(stream);
    EXPECT_TRUE(metrics::computeErrorStats<f32>(originals[f], d.data)
                    .withinBoundFp(header.absErrorBound, Precision::F32))
        << "field " << f;
  }
}

// Batched helper: one compressBatch launch per addFieldsCompressed call,
// streams byte-identical to per-field addField + compress.
TEST(Archive, AddFieldsCompressedMatchesPerField) {
  core::Config cfg;
  cfg.absErrorBound = 1e-3;
  core::CompressorStream stream(cfg);
  const core::Compressor oneShot(cfg);

  std::vector<std::vector<f32>> fields;
  std::vector<std::string> names;
  std::vector<std::span<const f32>> views;
  for (u32 f = 0; f < 3; ++f) {
    fields.push_back(datagen::generateF32("hacc", f, 4096 + 17 * f));
    names.push_back(datagen::haccFieldNames()[f]);
    views.emplace_back(fields.back());
  }

  ArchiveWriter w;
  const auto results = w.addFieldsCompressed<f32>(stream, names, views);
  ASSERT_EQ(results.size(), 3u);
  const auto archive = w.finalize();

  ArchiveReader r(archive);
  for (u32 f = 0; f < 3; ++f) {
    const auto expected = oneShot.compress<f32>(views[f]).stream;
    const auto got = r.field(names[f]);
    ASSERT_EQ(got.size(), expected.size()) << "field " << f;
    EXPECT_TRUE(std::equal(got.begin(), got.end(), expected.begin()))
        << "field " << f;
  }

  // Duplicate or mismatched names are rejected before anything is added.
  EXPECT_THROW(w.addFieldsCompressed<f32>(stream, names, views), Error);
  std::vector<std::string> tooFew(names.begin(), names.end() - 1);
  EXPECT_THROW(w.addFieldsCompressed<f32>(stream, tooFew, views), Error);
  EXPECT_EQ(w.fieldCount(), 3u);
}

// ---- XOR parity trailer ----------------------------------------------------

// Small chunks so a modest archive spans several parity groups.
constexpr ParityOptions kParity{.chunkBytes = 64, .groupSize = 4};

std::vector<std::byte> parityArchive(std::vector<std::byte>* firstField =
                                         nullptr) {
  ArchiveWriter w;
  std::vector<std::byte> payload(1500);
  for (usize i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::byte>((i * 7 + 3) & 0xFF);
  }
  w.addField("a", payload);
  w.addField("b", bytesOf({9, 8, 7}));
  if (firstField != nullptr) *firstField = payload;
  return w.finalize(kParity);
}

TEST(ArchiveParity, TrailerIsInvisibleToPlainReaders) {
  std::vector<std::byte> payload;
  const auto bytes = parityArchive(&payload);
  ArchiveReader r(bytes);  // old reader: tolerates the trailing bytes
  EXPECT_EQ(r.fieldCount(), 2u);
  const auto got = r.field("a");
  ASSERT_EQ(got.size(), payload.size());
  EXPECT_TRUE(std::equal(got.begin(), got.end(), payload.begin()));
  EXPECT_TRUE(isArchive(bytes));
}

TEST(ArchiveParity, CleanArchiveVerifies) {
  const auto bytes = parityArchive();
  const auto rep = verifyParity(bytes);
  EXPECT_TRUE(rep.parityPresent);
  EXPECT_TRUE(rep.trailerOk);
  EXPECT_EQ(rep.badChunks, 0u);
  EXPECT_GT(rep.totalChunks, 8u);  // several groups with 64-byte chunks
  EXPECT_TRUE(rep.clean());

  // An archive finalized without parity reports absence, not damage.
  ArchiveWriter w;
  w.addField("x", bytesOf({1}));
  const auto plain = verifyParity(w.finalize());
  EXPECT_FALSE(plain.parityPresent);
  EXPECT_TRUE(plain.clean());
}

// Acceptance path: one damaged chunk per group is repaired bit-exactly.
TEST(ArchiveParity, RepairsOneChunkPerGroup) {
  const auto original = parityArchive();
  auto damaged = original;
  const auto rep0 = verifyParity(original);
  // Damage one chunk in each of three different groups (chunk indices 1,
  // 5, 9 with groupSize 4), several bytes each.
  for (const usize chunk : {1u, 5u, 9u}) {
    ASSERT_LT(chunk, rep0.totalChunks);
    for (usize i = 0; i < 5; ++i) {
      damaged[chunk * kParity.chunkBytes + i * 11] ^= std::byte{0xFF};
    }
  }

  auto report = verifyParity(damaged);
  EXPECT_EQ(report.badChunks, 3u);
  EXPECT_EQ(report.repairableChunks, 3u);
  EXPECT_EQ(report.unrepairableChunks, 0u);
  EXPECT_EQ(report.repairedChunks, 0u);  // verify never mutates

  report = repairParity(damaged);
  EXPECT_EQ(report.repairedChunks, 3u);
  EXPECT_EQ(report.unrepairableChunks, 0u);
  EXPECT_EQ(damaged, original);  // bit-exact restoration
  EXPECT_TRUE(verifyParity(damaged).clean());
}

TEST(ArchiveParity, TwoBadChunksInOneGroupAreUnrepairable) {
  const auto original = parityArchive();
  auto damaged = original;
  damaged[0 * kParity.chunkBytes] ^= std::byte{1};  // group 0, chunk 0
  damaged[1 * kParity.chunkBytes] ^= std::byte{1};  // group 0, chunk 1

  const auto report = repairParity(damaged);
  EXPECT_EQ(report.badChunks, 2u);
  EXPECT_EQ(report.repairedChunks, 0u);
  EXPECT_EQ(report.unrepairableChunks, 2u);
  EXPECT_FALSE(report.clean());
  EXPECT_NE(damaged, original);  // left untouched, not half-repaired
}

TEST(ArchiveParity, DamagedTrailerIsReportedNotTrusted) {
  const auto original = parityArchive();

  // Flip a byte inside the parity data: the trailer CRC must catch it.
  auto bytes = original;
  bytes[bytes.size() - 25] ^= std::byte{0x10};
  auto rep = verifyParity(bytes);
  EXPECT_TRUE(rep.parityPresent);
  EXPECT_FALSE(rep.trailerOk);
  EXPECT_FALSE(rep.clean());

  // Destroy the trailing magic: no parity is detected at all.
  bytes = original;
  bytes[bytes.size() - 1] ^= std::byte{0xFF};
  rep = verifyParity(bytes);
  EXPECT_FALSE(rep.parityPresent);
}

// End-to-end: a damaged compressed stream inside a parity archive is
// repaired and then decodes bit-exactly.
TEST(ArchiveParity, RepairedStreamDecodesBitExactly) {
  core::Config cfg;
  cfg.absErrorBound = 1e-2;
  cfg.checksum = true;
  cfg.blockChecksums = true;
  const core::Compressor compressor(cfg);
  const auto data = datagen::generateF32("hacc", 0, 1 << 12);
  const auto stream = compressor.compress<f32>(data).stream;
  const auto clean = compressor.decompress<f32>(stream).data;

  ArchiveWriter w;
  w.addField("vx", stream);
  const auto original = w.finalize(ParityOptions{.chunkBytes = 256,
                                                 .groupSize = 8});
  auto damaged = original;
  damaged[damaged.size() / 2] ^= std::byte{0x42};  // inside the payload

  const auto report = repairParity(damaged);
  EXPECT_EQ(report.repairedChunks, 1u);
  ASSERT_EQ(damaged, original);
  const auto restored = ArchiveReader(damaged).field("vx");
  EXPECT_EQ(compressor.decompress<f32>(restored).data, clean);
}

}  // namespace
}  // namespace cuszp2::io
