// Model-regression guardrails: the calibrated timing model must keep the
// reproduction's headline numbers inside their paper-shaped bands. These
// are deliberately wide (the claims are about regimes, not digits), but
// any accidental perturbation of the model constants, the counter
// recording, or the kernels' traffic shape trips them.
#include <gtest/gtest.h>

#include "baselines/cuszp2_adapter.hpp"
#include "baselines/fzgpu.hpp"
#include "baselines/zfp.hpp"
#include "common/error.hpp"
#include "datagen/fields.hpp"

namespace cuszp2 {
namespace {

constexpr usize kElems = 1 << 21;  // the bench harness default

struct Corpus {
  std::vector<f32> rtm = datagen::generateF32("rtm", 2, kElems);
  baselines::RunResult p =
      baselines::Cuszp2Baseline::cuszp2Plain()->run(rtm, 1e-3);
  baselines::RunResult o =
      baselines::Cuszp2Baseline::cuszp2Outlier()->run(rtm, 1e-3);
  baselines::RunResult v1 =
      baselines::Cuszp2Baseline::cuszpV1()->run(rtm, 1e-3);
};

const Corpus& corpus() {
  static const Corpus kCorpus;
  return kCorpus;
}

TEST(RegressionBands, Cuszp2EndToEndThroughput) {
  // Paper regime: ~330 comp / ~520 decomp GB/s; at 8 MB fields the model
  // sits somewhat below its asymptote.
  EXPECT_GT(corpus().p.compressGBps, 180.0);
  EXPECT_LT(corpus().p.compressGBps, 450.0);
  EXPECT_GT(corpus().p.decompressGBps, 280.0);
  EXPECT_LT(corpus().p.decompressGBps, 700.0);
}

TEST(RegressionBands, DecompressionBeatsCompression) {
  EXPECT_GT(corpus().p.decompressGBps, corpus().p.compressGBps * 1.15);
}

TEST(RegressionBands, MemoryPipelineNearPeak) {
  // Fig. 16 regime: >60% of the A100's 1555 GB/s.
  EXPECT_GT(corpus().p.memThroughputGBps, 950.0);
  EXPECT_LT(corpus().p.memThroughputGBps, 1555.0);
}

TEST(RegressionBands, Cuszp2LeadsCuszpByAboutTwo) {
  const f64 lead = corpus().p.compressGBps / corpus().v1.compressGBps;
  EXPECT_GT(lead, 1.4);
  EXPECT_LT(lead, 3.5);
}

TEST(RegressionBands, BaselinesStayInTheirRegimes) {
  const auto& rtm = corpus().rtm;
  const auto fz = baselines::FzGpuBaseline().run(rtm, 1e-3);
  EXPECT_GT(fz.compressGBps, 30.0);
  EXPECT_LT(fz.compressGBps, corpus().p.compressGBps);

  const auto zfp = baselines::ZfpBaseline(8.0).run(rtm, 0.0);
  EXPECT_GT(zfp.compressGBps, 60.0);
  EXPECT_LT(zfp.compressGBps, 250.0);
}

TEST(RegressionBands, OutlierModeNeverLosesRatio) {
  EXPECT_GE(corpus().o.ratio, corpus().p.ratio * 0.999);
  // And cuSZp v1's ratio is bit-identical to plain mode.
  EXPECT_DOUBLE_EQ(corpus().v1.ratio, corpus().p.ratio);
}

}  // namespace
}  // namespace cuszp2
