// Unit tests for common/bits.hpp.
#include <gtest/gtest.h>

#include <limits>

#include "common/bits.hpp"

namespace cuszp2 {
namespace {

TEST(Bits, EffectiveBitsZero) { EXPECT_EQ(effectiveBits(0u), 0u); }

TEST(Bits, EffectiveBitsPowersOfTwo) {
  for (u32 b = 0; b < 31; ++b) {
    EXPECT_EQ(effectiveBits(1u << b), b + 1) << "bit " << b;
    if (b > 0) {
      EXPECT_EQ(effectiveBits((1u << b) - 1), b) << "bit " << b;
    }
  }
}

TEST(Bits, EffectiveBitsMax) {
  EXPECT_EQ(effectiveBits(std::numeric_limits<u32>::max()), 32u);
}

TEST(Bits, BytesForBoundaries) {
  EXPECT_EQ(bytesFor(0u), 0u);
  EXPECT_EQ(bytesFor(1u), 1u);
  EXPECT_EQ(bytesFor(0xFFu), 1u);
  EXPECT_EQ(bytesFor(0x100u), 2u);
  EXPECT_EQ(bytesFor(0xFFFFu), 2u);
  EXPECT_EQ(bytesFor(0x10000u), 3u);
  EXPECT_EQ(bytesFor(0xFFFFFFu), 3u);
  EXPECT_EQ(bytesFor(0x1000000u), 4u);
  EXPECT_EQ(bytesFor(0xFFFFFFFFu), 4u);
}

TEST(Bits, RoundUpAndCeilDiv) {
  EXPECT_EQ(roundUp(0, 8), 0u);
  EXPECT_EQ(roundUp(1, 8), 8u);
  EXPECT_EQ(roundUp(8, 8), 8u);
  EXPECT_EQ(roundUp(9, 8), 16u);
  EXPECT_EQ(ceilDiv(0, 4), 0u);
  EXPECT_EQ(ceilDiv(1, 4), 1u);
  EXPECT_EQ(ceilDiv(4, 4), 1u);
  EXPECT_EQ(ceilDiv(5, 4), 2u);
}

TEST(Bits, AbsU32HandlesIntMin) {
  EXPECT_EQ(absU32(0), 0u);
  EXPECT_EQ(absU32(5), 5u);
  EXPECT_EQ(absU32(-5), 5u);
  EXPECT_EQ(absU32(std::numeric_limits<i32>::min()), 0x80000000u);
  EXPECT_EQ(absU32(std::numeric_limits<i32>::max()), 0x7FFFFFFFu);
}

TEST(Bits, LoadStoreLERoundTrip) {
  std::byte buf[4];
  for (u32 nbytes = 1; nbytes <= 4; ++nbytes) {
    const u32 mask = nbytes == 4 ? 0xFFFFFFFFu : (1u << (8 * nbytes)) - 1;
    for (u32 v : {0u, 1u, 0xABu, 0x1234u, 0xABCDEFu, 0xDEADBEEFu}) {
      storeLE(buf, v & mask, nbytes);
      EXPECT_EQ(loadLE(buf, nbytes), v & mask);
    }
  }
}

TEST(Bits, StoreLEIsLittleEndian) {
  std::byte buf[4];
  storeLE(buf, 0x0A0B0C0Du, 4);
  EXPECT_EQ(std::to_integer<u32>(buf[0]), 0x0Du);
  EXPECT_EQ(std::to_integer<u32>(buf[1]), 0x0Cu);
  EXPECT_EQ(std::to_integer<u32>(buf[2]), 0x0Bu);
  EXPECT_EQ(std::to_integer<u32>(buf[3]), 0x0Au);
}

TEST(Bits, BitCastRoundTrip) {
  const f64 x = 3.14159;
  EXPECT_EQ(bitCast<f64>(bitCast<u64>(x)), x);
  const f32 y = -2.5f;
  EXPECT_EQ(bitCast<f32>(bitCast<u32>(y)), y);
}

}  // namespace
}  // namespace cuszp2
