// End-to-end tests of the cuszp2 command-line tool: real process
// invocations over real files (the path is injected by CMake).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/compressor.hpp"
#include "io/archive.hpp"
#include "io/raw.hpp"

#ifndef CUSZP2_CLI_PATH
#error "CUSZP2_CLI_PATH must be defined by the build"
#endif

namespace cuszp2 {
namespace {

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("cuszp2_cli_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);

    Rng rng(1);
    data_.resize(10000);
    f64 v = 0.0;
    for (auto& x : data_) {
      v += rng.uniform(-0.05, 0.05);
      x = static_cast<f32>(v);
    }
    io::writeRaw<f32>(file("in.f32"), data_);
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string file(const std::string& name) const {
    return (dir_ / name).string();
  }

  int run(const std::string& args) const {
    const std::string cmd =
        std::string(CUSZP2_CLI_PATH) + " " + args + " > " + file("log.txt") +
        " 2>&1";
    const int rc = std::system(cmd.c_str());
    return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
  }

  std::string lastLog() const {
    const auto bytes = io::readBytes(file("log.txt"));
    return std::string(reinterpret_cast<const char*>(bytes.data()),
                       bytes.size());
  }

  std::filesystem::path dir_;
  std::vector<f32> data_;
};

TEST_F(CliTest, CompressDecompressVerifyPipeline) {
  ASSERT_EQ(run("compress " + file("in.f32") + " " + file("out.czp2") +
                " --rel 1e-3 --mode outlier"),
            0)
      << lastLog();
  EXPECT_NE(lastLog().find("ratio:"), std::string::npos);

  ASSERT_EQ(run("info " + file("out.czp2")), 0) << lastLog();
  EXPECT_NE(lastLog().find("encoding mode:   outlier"), std::string::npos);

  ASSERT_EQ(run("decompress " + file("out.czp2") + " " + file("rec.f32")),
            0)
      << lastLog();
  const auto rec = io::readRaw<f32>(file("rec.f32"));
  ASSERT_EQ(rec.size(), data_.size());

  ASSERT_EQ(run("verify " + file("in.f32") + " " + file("out.czp2")), 0)
      << lastLog();
  EXPECT_NE(lastLog().find("Pass error check!"), std::string::npos);
}

TEST_F(CliTest, PlainModeAndAbsBound) {
  ASSERT_EQ(run("compress " + file("in.f32") + " " + file("p.czp2") +
                " --abs 0.01 --mode plain --block 64"),
            0)
      << lastLog();
  ASSERT_EQ(run("info " + file("p.czp2")), 0);
  EXPECT_NE(lastLog().find("encoding mode:   plain"), std::string::npos);
  EXPECT_NE(lastLog().find("block size:      64"), std::string::npos);
  EXPECT_NE(lastLog().find("abs error bound: 0.01"), std::string::npos);
}

TEST_F(CliTest, DoublePrecisionFiles) {
  std::vector<f64> d(data_.begin(), data_.end());
  io::writeRaw<f64>(file("in.f64"), d);
  ASSERT_EQ(run("compress " + file("in.f64") + " " + file("d.czp2") +
                " --rel 1e-4 --precision f64"),
            0)
      << lastLog();
  ASSERT_EQ(run("decompress " + file("d.czp2") + " " + file("rec.f64")), 0);
  EXPECT_EQ(io::readRaw<f64>(file("rec.f64")).size(), d.size());
  ASSERT_EQ(run("verify " + file("in.f64") + " " + file("d.czp2")), 0);
}

TEST_F(CliTest, VerifyFailsOnWrongOriginal) {
  ASSERT_EQ(run("compress " + file("in.f32") + " " + file("out.czp2")), 0);
  // A different original with the same length: error check must fail.
  std::vector<f32> other(data_.size(), 1234.5f);
  io::writeRaw<f32>(file("other.f32"), other);
  EXPECT_NE(run("verify " + file("other.f32") + " " + file("out.czp2")), 0);
}

TEST_F(CliTest, ErrorPaths) {
  EXPECT_NE(run(""), 0);
  EXPECT_NE(run("unknown-command x y"), 0);
  EXPECT_NE(run("compress /nonexistent.f32 " + file("x.czp2")), 0);
  EXPECT_NE(run("info /nonexistent.czp2"), 0);
  EXPECT_NE(run("compress " + file("in.f32") + " " + file("x.czp2") +
                " --mode bogus"),
            0);
  // info on a non-stream file.
  EXPECT_NE(run("info " + file("in.f32")), 0);
}

// ---- Integrity exit codes and salvage / repair commands --------------------

TEST_F(CliTest, InfoShowsFormatVersionAndBlockChecksums) {
  ASSERT_EQ(run("compress " + file("in.f32") + " " + file("v1.czp2") +
                " --abs 0.01"),
            0)
      << lastLog();
  ASSERT_EQ(run("info " + file("v1.czp2")), 0);
  EXPECT_NE(lastLog().find("format version:  1"), std::string::npos);
  EXPECT_NE(lastLog().find("block checksums: no"), std::string::npos);

  ASSERT_EQ(run("compress " + file("in.f32") + " " + file("v2.czp2") +
                " --abs 0.01 --checksum --block-checksum"),
            0)
      << lastLog();
  ASSERT_EQ(run("info " + file("v2.czp2")), 0);
  EXPECT_NE(lastLog().find("format version:  2"), std::string::npos);
  EXPECT_NE(lastLog().find("block checksums: yes"), std::string::npos);
  EXPECT_NE(lastLog().find("checksum:        yes"), std::string::npos);
}

// Exit-code contract: bound violations exit 1, integrity failures exit 2.
TEST_F(CliTest, VerifyDistinguishesBoundViolationFromCorruption) {
  ASSERT_EQ(run("compress " + file("in.f32") + " " + file("out.czp2") +
                " --abs 0.01 --checksum --block-checksum"),
            0)
      << lastLog();

  // Wrong original, intact stream: an error-bound violation -> exit 1.
  std::vector<f32> other(data_.size(), 1234.5f);
  io::writeRaw<f32>(file("other.f32"), other);
  EXPECT_EQ(run("verify " + file("other.f32") + " " + file("out.czp2")), 1)
      << lastLog();

  // Corrupted stream, correct original: an integrity failure -> exit 2.
  auto bytes = io::readBytes(file("out.czp2"));
  bytes[bytes.size() - 100] ^= std::byte{0x20};
  io::writeBytes(file("bad.czp2"), bytes);
  EXPECT_EQ(run("verify " + file("in.f32") + " " + file("bad.czp2")), 2);
  EXPECT_NE(lastLog().find("integrity failure"), std::string::npos);
}

TEST_F(CliTest, VerifyIntegrityOnlyForm) {
  ASSERT_EQ(run("compress " + file("in.f32") + " " + file("out.czp2") +
                " --abs 0.01 --checksum --block-checksum"),
            0);
  EXPECT_EQ(run("verify " + file("out.czp2")), 0) << lastLog();
  EXPECT_NE(lastLog().find("integrity ok (format v2, with per-block "
                           "checksums)"),
            std::string::npos);

  auto bytes = io::readBytes(file("out.czp2"));
  bytes[bytes.size() - 100] ^= std::byte{0x20};
  io::writeBytes(file("bad.czp2"), bytes);
  EXPECT_EQ(run("verify " + file("bad.czp2")), 2) << lastLog();
  EXPECT_NE(lastLog().find("quarantined"), std::string::npos);
}

TEST_F(CliTest, SalvageDecompressRecoversDamagedStream) {
  ASSERT_EQ(run("compress " + file("in.f32") + " " + file("out.czp2") +
                " --abs 0.01 --block-checksum"),
            0);
  auto bytes = io::readBytes(file("out.czp2"));
  bytes[bytes.size() / 2] ^= std::byte{0x08};  // payload damage
  io::writeBytes(file("bad.czp2"), bytes);

  // Strict decompression refuses.
  EXPECT_NE(run("decompress " + file("bad.czp2") + " " + file("rec.f32")),
            0);

  // Salvage writes the output, reports the damage, and exits 2.
  EXPECT_EQ(run("decompress " + file("bad.czp2") + " " + file("rec.f32") +
                " --salvage --fill -7"),
            2)
      << lastLog();
  EXPECT_NE(lastLog().find("quarantined"), std::string::npos);
  const auto rec = io::readRaw<f32>(file("rec.f32"));
  ASSERT_EQ(rec.size(), data_.size());
  EXPECT_NE(std::find(rec.begin(), rec.end(), -7.0f), rec.end());

  // On a clean stream salvage exits 0.
  EXPECT_EQ(run("decompress " + file("out.czp2") + " " + file("rec2.f32") +
                " --salvage"),
            0)
      << lastLog();
}

TEST_F(CliTest, RepairFixesDamagedParityArchive) {
  // Build a parity-protected archive holding one compressed stream.
  core::Config cfg;
  cfg.absErrorBound = 0.01;
  cfg.blockChecksums = true;
  const core::Compressor compressor(cfg);
  const auto stream = compressor.compress<f32>(data_).stream;
  io::ArchiveWriter w;
  w.addField("in", stream);
  const auto archive =
      w.finalize(io::ParityOptions{.chunkBytes = 256, .groupSize = 8});
  io::writeBytes(file("a.czar"), archive);

  EXPECT_EQ(run("verify " + file("a.czar")), 0) << lastLog();

  auto damaged = archive;
  damaged[damaged.size() / 3] ^= std::byte{0x11};
  io::writeBytes(file("a.czar"), damaged);
  EXPECT_EQ(run("verify " + file("a.czar")), 2) << lastLog();
  EXPECT_EQ(run("repair " + file("a.czar") + " --dry-run"), 2) << lastLog();

  EXPECT_EQ(run("repair " + file("a.czar")), 0) << lastLog();
  EXPECT_NE(lastLog().find("repaired"), std::string::npos);
  const auto repaired = io::readBytes(file("a.czar"));
  EXPECT_EQ(repaired, archive);  // bit-exact restoration
  EXPECT_EQ(run("verify " + file("a.czar")), 0) << lastLog();

  // Repair on a non-archive input is an operational error (exit 1).
  EXPECT_EQ(run("repair " + file("in.f32")), 1);
}

TEST_F(CliTest, ServeRunsManifestAndPrintsTenantSummary) {
  io::writeBytes(
      file("jobs.txt"),
      [] {
        const std::string text =
            "# tenant dataset elems jobs [rel]\n"
            "climate  cesm_atm 2048 4 1e-3\n"
            "physics  hacc     4096 3 1e-3\n"
            "fluids   jetin    1024 3 1e-3\n"
            "tiny     cesm_atm 512  2 1e-2\n";
        std::vector<std::byte> bytes(text.size());
        std::memcpy(bytes.data(), text.data(), text.size());
        return bytes;
      }());
  ASSERT_EQ(run("serve --jobs " + file("jobs.txt") + " --workers 2"), 0)
      << lastLog();
  const std::string log = lastLog();
  EXPECT_NE(log.find("served 12 jobs from 4 tenants"), std::string::npos);
  EXPECT_NE(log.find("per-tenant summary:"), std::string::npos);
  for (const char* tenant : {"climate", "physics", "fluids", "tiny"}) {
    EXPECT_NE(log.find(tenant), std::string::npos) << tenant;
  }
  // Paused-start submission makes coalescing deterministic: the 10
  // rel=1e-3 jobs share a Config and must fuse, so savings are certain.
  EXPECT_NE(log.find("fused launches"), std::string::npos);
  EXPECT_EQ(log.find("(0 launches saved)"), std::string::npos);
  EXPECT_NE(log.find("per-kernel summary:"), std::string::npos);

  // Same manifest with batching off: one launch per job, nothing saved.
  ASSERT_EQ(run("serve --jobs " + file("jobs.txt") + " --unbatched"), 0)
      << lastLog();
  EXPECT_NE(lastLog().find("12 jobs in 12 fused launches (0 launches saved)"),
            std::string::npos);

  // Unknown dataset in the manifest is an operational error.
  io::writeBytes(file("bad.txt"), [] {
    const std::string text = "t no_such_dataset 128 1\n";
    std::vector<std::byte> bytes(text.size());
    std::memcpy(bytes.data(), text.data(), text.size());
    return bytes;
  }());
  EXPECT_EQ(run("serve --jobs " + file("bad.txt")), 1);
}

TEST_F(CliTest, ServeChaosSeedDrillResolvesEveryJob) {
  io::writeBytes(file("jobs.txt"), [] {
    const std::string text =
        "climate cesm_atm 2048 4 1e-3\n"
        "physics hacc     4096 3 1e-3\n";
    std::vector<std::byte> bytes(text.size());
    std::memcpy(bytes.data(), text.data(), text.size());
    return bytes;
  }());
  // Seeded fault drill: injected faults must be absorbed by retries, the
  // watchdog and in-stream relaunches — exit 0, no failed jobs.
  ASSERT_EQ(run("serve --jobs " + file("jobs.txt") +
                " --workers 2 --unbatched --chaos-seed 7"),
            0)
      << lastLog();
  const std::string log = lastLog();
  EXPECT_NE(log.find("served 7 jobs from 2 tenants"), std::string::npos);
  EXPECT_NE(log.find("health: 7 completed, 0 failed"), std::string::npos);
  EXPECT_EQ(log.find("FAILED"), std::string::npos);

  // The health summary is printed on fault-free runs too.
  ASSERT_EQ(run("serve --jobs " + file("jobs.txt")), 0) << lastLog();
  EXPECT_NE(lastLog().find("health: 7 completed, 0 failed"),
            std::string::npos);
  EXPECT_NE(lastLog().find("chaos injections 0"), std::string::npos);
}

TEST_F(CliTest, ServeClusterShardsManifestAcrossHeterogeneousFleet) {
  io::writeBytes(file("jobs.txt"), [] {
    const std::string text =
        "climate cesm_atm 2048 4 1e-3\n"
        "physics hacc     4096 3 1e-3\n"
        "fluids  jetin    1024 3 1e-3\n"
        "tiny    cesm_atm 512  2 1e-2\n";
    std::vector<std::byte> bytes(text.size());
    std::memcpy(bytes.data(), text.data(), text.size());
    return bytes;
  }());
  ASSERT_EQ(run("serve --jobs " + file("jobs.txt") +
                " --shards 4 --replicas 2"),
            0)
      << lastLog();
  const std::string log = lastLog();
  EXPECT_NE(log.find("served 12 jobs from 4 tenants on 4 shards"),
            std::string::npos);
  EXPECT_NE(log.find("per-tenant summary:"), std::string::npos);
  EXPECT_NE(log.find("per-shard summary:"), std::string::npos);
  // The cluster health line tallies every typed outcome plus the
  // failover counters.
  EXPECT_NE(log.find("health: 12 completed, 0 failed, 0 degraded, "
                     "0 abandoned, 0 canceled"),
            std::string::npos);
  EXPECT_NE(log.find("failovers 0"), std::string::npos);
  EXPECT_NE(log.find("shard kills 0"), std::string::npos);
  // The heterogeneous fleet shows up in the per-shard table.
  EXPECT_NE(log.find("A100"), std::string::npos);
  EXPECT_NE(log.find("up"), std::string::npos);

  // The seeded service-level fault drill also resolves under sharding.
  ASSERT_EQ(run("serve --jobs " + file("jobs.txt") +
                " --shards 2 --chaos-seed 7"),
            0)
      << lastLog();
  EXPECT_NE(lastLog().find("served 12 jobs from 4 tenants on 2 shards"),
            std::string::npos);
  EXPECT_EQ(lastLog().find("FAILED"), std::string::npos);
}

TEST_F(CliTest, TraceIsFlushedOnErrorAndUsagePaths) {
  // Operational error mid-run: the trace file must still be complete JSON.
  EXPECT_EQ(run("--trace " + file("err.json") + " compress " +
                file("missing.raw") + " " + file("out.czp2")),
            1);
  ASSERT_TRUE(std::filesystem::exists(file("err.json")));
  const auto errTrace = io::readBytes(file("err.json"));
  const std::string errJson(
      reinterpret_cast<const char*>(errTrace.data()), errTrace.size());
  EXPECT_NE(errJson.find("\"traceEvents\""), std::string::npos);
  EXPECT_EQ(errJson.back(), '\n');

  // usage() exits with 2 without running dispatch; the trace still lands.
  EXPECT_EQ(run("--trace " + file("usage.json") + " no-such-subcommand"), 2);
  ASSERT_TRUE(std::filesystem::exists(file("usage.json")));
  const auto usageTrace = io::readBytes(file("usage.json"));
  EXPECT_NE(std::string(reinterpret_cast<const char*>(usageTrace.data()),
                        usageTrace.size())
                .find("\"traceEvents\""),
            std::string::npos);
}

TEST_F(CliTest, ServeWithTraceEmitsPerJobSpans) {
  io::writeBytes(file("jobs.txt"), [] {
    const std::string text = "a cesm_atm 1024 3\nb hacc 1024 2\n";
    std::vector<std::byte> bytes(text.size());
    std::memcpy(bytes.data(), text.data(), text.size());
    return bytes;
  }());
  ASSERT_EQ(run("--trace " + file("serve.json") + " serve --jobs " +
                file("jobs.txt")),
            0)
      << lastLog();
  const auto trace = io::readBytes(file("serve.json"));
  const std::string json(reinterpret_cast<const char*>(trace.data()),
                         trace.size());
  EXPECT_NE(json.find("service.job"), std::string::npos);
  EXPECT_NE(json.find("\"tenant\""), std::string::npos);
}

TEST_F(CliTest, StoreSubcommandDedupsAcrossTenantsAndCompacts) {
  // put the same compressed stream under two tenants: the second put is
  // pure dedup (zero physical bytes added).
  ASSERT_EQ(run("compress " + file("in.f32") + " " + file("s.czp2") +
                " --rel 1e-3"),
            0);
  ASSERT_EQ(run("store put " + file("st.cas") + " climate run1 " +
                file("s.czp2")),
            0)
      << lastLog();
  ASSERT_EQ(run("store put " + file("st.cas") + " physics run1 " +
                file("s.czp2")),
            0)
      << lastLog();
  EXPECT_NE(lastLog().find("0 new +"), std::string::npos);
  EXPECT_NE(lastLog().find("(0 physical bytes added)"), std::string::npos);

  // `info` on a store file prints the dedup health line, not stream
  // fields.
  ASSERT_EQ(run("info " + file("st.cas")), 0) << lastLog();
  EXPECT_NE(lastLog().find("cuSZp2 CAS store:"), std::string::npos);
  EXPECT_NE(lastLog().find("cas: 2 objects"), std::string::npos);
  EXPECT_NE(lastLog().find("bytes saved"), std::string::npos);

  // get returns the exact stored bytes; decompress proves it end-to-end.
  ASSERT_EQ(run("store get " + file("st.cas") + " climate run1 " +
                file("back.czp2")),
            0)
      << lastLog();
  EXPECT_EQ(io::readBytes(file("back.czp2")), io::readBytes(file("s.czp2")));
  ASSERT_EQ(run("verify " + file("in.f32") + " " + file("back.czp2")), 0);

  // compact migrates cold v1 objects to v3 when it wins; either way the
  // stream must still verify against the original after the sweep.
  ASSERT_EQ(run("store compact " + file("st.cas")), 0) << lastLog();
  EXPECT_NE(lastLog().find("compact: scanned"), std::string::npos);
  ASSERT_EQ(run("store get " + file("st.cas") + " climate run1 " +
                file("after.czp2")),
            0);
  ASSERT_EQ(run("verify " + file("in.f32") + " " + file("after.czp2")), 0);

  // rm + gc drop the last reference and sweep the parked chunks.
  ASSERT_EQ(run("store rm " + file("st.cas") + " climate run1"), 0);
  ASSERT_EQ(run("store rm " + file("st.cas") + " physics run1"), 0);
  ASSERT_EQ(run("store gc " + file("st.cas")), 0) << lastLog();
  ASSERT_EQ(run("store stat " + file("st.cas")), 0) << lastLog();
  EXPECT_NE(lastLog().find("objects:         0"), std::string::npos);

  // Error paths: unknown object, unknown verb.
  EXPECT_NE(run("store get " + file("st.cas") + " nosuch x " +
                file("y.bin")),
            0);
  EXPECT_NE(run("store frobnicate " + file("st.cas")), 0);
}

TEST_F(CliTest, ServeCasPrintsDedupHealthLine) {
  io::writeBytes(file("jobs.txt"), [] {
    // Two tenants compressing the SAME dataset fields: their compressed
    // streams are identical, so the CAS dedups across tenants.
    const std::string text =
        "climate cesm_atm 2048 3 1e-3\n"
        "mirror  cesm_atm 2048 3 1e-3\n";
    std::vector<std::byte> bytes(text.size());
    std::memcpy(bytes.data(), text.data(), text.size());
    return bytes;
  }());
  ASSERT_EQ(run("serve --jobs " + file("jobs.txt") + " --cas"), 0)
      << lastLog();
  std::string log = lastLog();
  EXPECT_NE(log.find("cas: 6 objects"), std::string::npos);
  EXPECT_NE(log.find("bytes saved"), std::string::npos);
  // Identical per-tenant streams: half the logical blocks are shared.
  EXPECT_NE(log.find("dedup)"), std::string::npos);
  EXPECT_EQ(log.find("(1.00x dedup)"), std::string::npos);

  // Cluster mode: the health line sums every shard's replica store.
  ASSERT_EQ(run("serve --jobs " + file("jobs.txt") +
                " --shards 2 --replicas 2 --cas"),
            0)
      << lastLog();
  log = lastLog();
  EXPECT_NE(log.find("cas: 12 objects"), std::string::npos);

  // Without --cas no dedup line is printed.
  ASSERT_EQ(run("serve --jobs " + file("jobs.txt")), 0);
  EXPECT_EQ(lastLog().find("cas:"), std::string::npos);
}

}  // namespace
}  // namespace cuszp2
