// End-to-end tests of the cuszp2 command-line tool: real process
// invocations over real files (the path is injected by CMake).
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "io/raw.hpp"

#ifndef CUSZP2_CLI_PATH
#error "CUSZP2_CLI_PATH must be defined by the build"
#endif

namespace cuszp2 {
namespace {

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("cuszp2_cli_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);

    Rng rng(1);
    data_.resize(10000);
    f64 v = 0.0;
    for (auto& x : data_) {
      v += rng.uniform(-0.05, 0.05);
      x = static_cast<f32>(v);
    }
    io::writeRaw<f32>(file("in.f32"), data_);
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string file(const std::string& name) const {
    return (dir_ / name).string();
  }

  int run(const std::string& args) const {
    const std::string cmd =
        std::string(CUSZP2_CLI_PATH) + " " + args + " > " + file("log.txt") +
        " 2>&1";
    const int rc = std::system(cmd.c_str());
    return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
  }

  std::string lastLog() const {
    const auto bytes = io::readBytes(file("log.txt"));
    return std::string(reinterpret_cast<const char*>(bytes.data()),
                       bytes.size());
  }

  std::filesystem::path dir_;
  std::vector<f32> data_;
};

TEST_F(CliTest, CompressDecompressVerifyPipeline) {
  ASSERT_EQ(run("compress " + file("in.f32") + " " + file("out.czp2") +
                " --rel 1e-3 --mode outlier"),
            0)
      << lastLog();
  EXPECT_NE(lastLog().find("ratio:"), std::string::npos);

  ASSERT_EQ(run("info " + file("out.czp2")), 0) << lastLog();
  EXPECT_NE(lastLog().find("encoding mode:   outlier"), std::string::npos);

  ASSERT_EQ(run("decompress " + file("out.czp2") + " " + file("rec.f32")),
            0)
      << lastLog();
  const auto rec = io::readRaw<f32>(file("rec.f32"));
  ASSERT_EQ(rec.size(), data_.size());

  ASSERT_EQ(run("verify " + file("in.f32") + " " + file("out.czp2")), 0)
      << lastLog();
  EXPECT_NE(lastLog().find("Pass error check!"), std::string::npos);
}

TEST_F(CliTest, PlainModeAndAbsBound) {
  ASSERT_EQ(run("compress " + file("in.f32") + " " + file("p.czp2") +
                " --abs 0.01 --mode plain --block 64"),
            0)
      << lastLog();
  ASSERT_EQ(run("info " + file("p.czp2")), 0);
  EXPECT_NE(lastLog().find("encoding mode:   plain"), std::string::npos);
  EXPECT_NE(lastLog().find("block size:      64"), std::string::npos);
  EXPECT_NE(lastLog().find("abs error bound: 0.01"), std::string::npos);
}

TEST_F(CliTest, DoublePrecisionFiles) {
  std::vector<f64> d(data_.begin(), data_.end());
  io::writeRaw<f64>(file("in.f64"), d);
  ASSERT_EQ(run("compress " + file("in.f64") + " " + file("d.czp2") +
                " --rel 1e-4 --precision f64"),
            0)
      << lastLog();
  ASSERT_EQ(run("decompress " + file("d.czp2") + " " + file("rec.f64")), 0);
  EXPECT_EQ(io::readRaw<f64>(file("rec.f64")).size(), d.size());
  ASSERT_EQ(run("verify " + file("in.f64") + " " + file("d.czp2")), 0);
}

TEST_F(CliTest, VerifyFailsOnWrongOriginal) {
  ASSERT_EQ(run("compress " + file("in.f32") + " " + file("out.czp2")), 0);
  // A different original with the same length: error check must fail.
  std::vector<f32> other(data_.size(), 1234.5f);
  io::writeRaw<f32>(file("other.f32"), other);
  EXPECT_NE(run("verify " + file("other.f32") + " " + file("out.czp2")), 0);
}

TEST_F(CliTest, ErrorPaths) {
  EXPECT_NE(run(""), 0);
  EXPECT_NE(run("unknown-command x y"), 0);
  EXPECT_NE(run("compress /nonexistent.f32 " + file("x.czp2")), 0);
  EXPECT_NE(run("info /nonexistent.czp2"), 0);
  EXPECT_NE(run("compress " + file("in.f32") + " " + file("x.czp2") +
                " --mode bogus"),
            0);
  // info on a non-stream file.
  EXPECT_NE(run("info " + file("in.f32")), 0);
}

}  // namespace
}  // namespace cuszp2
