// Traceability tests: the worked equations documented in docs/MODEL.md
// must match what TimingModel actually computes, term by term. If the
// model changes, either these tests or the document must change with it.
#include <gtest/gtest.h>

#include "gpusim/device_spec.hpp"
#include "gpusim/timing.hpp"

namespace cuszp2::gpusim {
namespace {

TEST(ModelTraceability, BandwidthTerm) {
  const TimingModel model(a100_40gb());
  MemCounters mem;
  mem.coalescedTransactions = 1'000'000;
  SyncStats sync;
  const auto t = model.kernel(mem, sync);
  // t_bandwidth = transactions * 32 B / 1555 GB/s
  EXPECT_NEAR(t.bandwidthSeconds, 1e6 * 32.0 / 1555e9, 1e-12);
}

TEST(ModelTraceability, IssueTerm) {
  const TimingModel model(a100_40gb());
  MemCounters mem;
  mem.scalarLoadInstr = 90'000'000;  // one millisecond at 90 G/s
  SyncStats sync;
  EXPECT_NEAR(model.kernel(mem, sync).issueSeconds, 1e-3, 1e-9);
}

TEST(ModelTraceability, ComputeTerm) {
  const TimingModel model(a100_40gb());
  MemCounters mem;
  mem.arithmeticOps = 2'000'000'000;  // one millisecond at 2 T/s
  SyncStats sync;
  EXPECT_NEAR(model.kernel(mem, sync).computeSeconds, 1e-3, 1e-9);
}

TEST(ModelTraceability, OverlappingTermsTakeTheMax) {
  const TimingModel model(a100_40gb());
  MemCounters mem;
  mem.coalescedTransactions = 1'000'000;   // ~20.6 us
  mem.vectorLoadInstr = 90'000;            // 1 us
  mem.arithmeticOps = 2'000'000;           // 1 us
  SyncStats sync;
  const auto t = model.kernel(mem, sync);
  EXPECT_DOUBLE_EQ(t.totalSeconds,
                   t.bandwidthSeconds + t.launchSeconds);  // bw dominates
}

TEST(ModelTraceability, SerializingTermsAdd) {
  const TimingModel model(a100_40gb());
  MemCounters mem;
  mem.atomicOps = 1'200'000;   // 1 ms at 1.2 G/s
  mem.memsetBytes = 2'000'000; // 1 us at 2000 GB/s
  SyncStats sync;
  sync.method = SyncMethod::ChainedScan;
  sync.tiles = 1000;           // 45 us at 45 ns/hop
  const auto t = model.kernel(mem, sync);
  EXPECT_NEAR(t.totalSeconds,
              t.atomicSeconds + t.memsetSeconds + t.syncSeconds +
                  t.launchSeconds,
              1e-12);
  EXPECT_NEAR(t.atomicSeconds, 1e-3, 1e-9);
  EXPECT_NEAR(t.syncSeconds, 1000 * 45e-9, 1e-12);
}

TEST(ModelTraceability, LookbackEquation) {
  const TimingModel model(a100_40gb());
  SyncStats sync;
  sync.method = SyncMethod::DecoupledLookback;
  sync.tiles = 2600;
  sync.maxLookbackDepth = 10;
  // tiles * 45 ns / 2.6 + 10 * 45 ns
  EXPECT_NEAR(model.syncSeconds(sync), 2600 * 45e-9 / 2.6 + 10 * 45e-9,
              1e-12);
}

TEST(ModelTraceability, ReduceThenScanEquation) {
  const TimingModel model(a100_40gb());
  SyncStats sync;
  sync.method = SyncMethod::ReduceThenScan;
  sync.tiles = 1000;
  sync.tileDataBytes = 16384;
  // 2 launches + tiles * bytes * 2 / BW + tiles * 2 ns
  EXPECT_NEAR(model.syncSeconds(sync),
              2 * 6e-6 + 1000.0 * 16384 * 2 / 1555e9 + 1000 * 2e-9, 1e-12);
}

TEST(ModelTraceability, CalibrationAnchors) {
  // The MODEL.md anchor claims, verified numerically.
  const auto spec = a100_40gb();
  EXPECT_EQ(spec.memBandwidthGBps, 1555.0);  // A100 datasheet
  // Chained-scan sync throughput of a 16 KiB tile at 45 ns/hop ~ 364 GB/s.
  EXPECT_NEAR(16384.0 / (spec.chainHopNs * 1e-9) / 1e9, 364.1, 0.5);
  // Lookback overlap reproduces the ~2.4-2.6x Fig. 17 speedup regime.
  EXPECT_GE(spec.lookbackOverlap, 2.4);
  EXPECT_LE(spec.lookbackOverlap, 2.8);
}

TEST(ModelTraceability, MemThroughputIncludesHierarchyBytes) {
  const TimingModel model(a100_40gb());
  MemCounters mem;
  mem.noteVectorRead(1'000'000, 32);
  mem.noteL1(3'000'000);
  SyncStats sync;
  const auto t = model.kernel(mem, sync);
  EXPECT_NEAR(t.memThroughputGBps,
              4'000'000 / t.totalSeconds / 1e9, 1e-6);
}

}  // namespace
}  // namespace cuszp2::gpusim
