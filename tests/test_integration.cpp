// Cross-module integration tests: full pipelines over the synthetic
// datasets, stream persistence through the IO layer, consistency between
// full decode and random access, and the paper's headline relationships.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/error.hpp"
#include "baselines/cuszp2_adapter.hpp"
#include "baselines/fzgpu.hpp"
#include "baselines/zfp.hpp"
#include "core/compressor.hpp"
#include "core/lorenzo_nd.hpp"
#include "core/quantizer.hpp"
#include "datagen/fields.hpp"
#include "io/raw.hpp"
#include "metrics/error_stats.hpp"
#include "metrics/ssim.hpp"

namespace cuszp2 {
namespace {

TEST(Integration, CompressWriteReadDecompress) {
  const auto data = datagen::generateF32("nyx", 2, 1 << 15);
  core::Config cfg;
  cfg.relErrorBound = 1e-3;
  const core::Compressor comp(cfg);
  const auto c = comp.compress<f32>(data);

  const auto path = (std::filesystem::temp_directory_path() /
                     "cuszp2_integration.czp2")
                        .string();
  io::writeBytes(path, c.stream);
  const auto loaded = io::readBytes(path);
  std::remove(path.c_str());
  ASSERT_EQ(loaded, c.stream);

  const auto d = comp.decompress<f32>(loaded);
  const auto header = core::StreamHeader::parse(loaded);
  EXPECT_TRUE(metrics::computeErrorStats<f32>(data, d.data)
                  .withinBoundFp(header.absErrorBound, Precision::F32));
}

TEST(Integration, RandomAccessAgreesWithFullDecodeEverywhere) {
  const auto data = datagen::generateF32("scale", 5, 1 << 14);
  core::Config cfg;
  cfg.relErrorBound = 1e-4;
  const core::Compressor comp(cfg);
  const auto c = comp.compress<f32>(data);
  const auto full = comp.decompress<f32>(c.stream);
  const auto header = core::StreamHeader::parse(c.stream);

  // Cover the whole stream in irregular chunks.
  u64 blk = 0;
  u64 step = 1;
  while (blk < header.numBlocks()) {
    const u64 count = std::min(step, header.numBlocks() - blk);
    const auto range = comp.decompressBlocks<f32>(c.stream, blk, count);
    for (usize i = 0; i < range.values.size(); ++i) {
      ASSERT_EQ(range.values[i], full.data[range.firstElement + i])
          << "blk " << blk;
    }
    blk += count;
    step = step % 7 + 1;
  }
}

TEST(Integration, ErrorBoundedCompressorsShareReconstruction) {
  // cuSZp2-P, cuSZp2-O and cuSZp v1 share the lossy step: identical
  // reconstructions at the same bound (paper Sec. V-D).
  const auto data = datagen::generateF32("miranda", 0, 1 << 14);
  const auto rP = baselines::Cuszp2Baseline::cuszp2Plain()->run(data, 1e-3);
  const auto rO =
      baselines::Cuszp2Baseline::cuszp2Outlier()->run(data, 1e-3);
  const auto rV1 = baselines::Cuszp2Baseline::cuszpV1()->run(data, 1e-3);
  EXPECT_EQ(rP.reconstructed, rO.reconstructed);
  EXPECT_EQ(rP.reconstructed, rV1.reconstructed);
}

TEST(Integration, HeadlineThroughputOrdering) {
  // Fig. 14 shape: cuSZp2 modes beat cuSZp v1 and FZ-GPU end-to-end.
  const auto data = datagen::generateF32("rtm", 2, 1 << 17);
  const auto rP = baselines::Cuszp2Baseline::cuszp2Plain()->run(data, 1e-3);
  const auto rO =
      baselines::Cuszp2Baseline::cuszp2Outlier()->run(data, 1e-3);
  const auto rV1 = baselines::Cuszp2Baseline::cuszpV1()->run(data, 1e-3);
  const auto rFz = baselines::FzGpuBaseline().run(data, 1e-3);
  EXPECT_GT(rP.compressGBps, rV1.compressGBps);
  EXPECT_GT(rO.compressGBps, rV1.compressGBps);
  EXPECT_GT(rP.compressGBps, rFz.compressGBps);
  EXPECT_GT(rP.decompressGBps, rV1.decompressGBps);
}

TEST(Integration, QualityAtMatchedRatioBeatsZfp) {
  // Fig. 18 shape: at a matched aggressive ratio, the error-bounded
  // compressor preserves structure better than the fixed-rate one.
  const auto data = datagen::generateF32("rtm", 0, 1 << 16);

  // Find a cuSZp2 ratio at REL 1e-3, then run zfp at the same ratio.
  const auto rO =
      baselines::Cuszp2Baseline::cuszp2Outlier()->run(data, 1e-3);
  const f64 matchedRate = 32.0 / rO.ratio;
  if (matchedRate < 0.1) GTEST_SKIP() << "ratio too extreme to match";
  const auto rZ = baselines::ZfpBaseline(matchedRate).run(data, 0.0);

  const f64 ssimO = metrics::ssim<f32>(data, rO.reconstructed);
  const f64 ssimZ = metrics::ssim<f32>(data, rZ.reconstructed);
  EXPECT_GT(ssimO, ssimZ);

  const auto isoO = metrics::isoCrossingFidelity<f32>(
      data, rO.reconstructed, 100.0);
  const auto isoZ = metrics::isoCrossingFidelity<f32>(
      data, rZ.reconstructed, 100.0);
  EXPECT_GE(isoO.matchRatio, isoZ.matchRatio);
}

TEST(Integration, DoublePrecisionFasterThanSingle) {
  // Sec. VI-A: same integer pipeline, double the input bytes => roughly
  // 2x the modelled GB/s.
  core::Config cfg;
  cfg.relErrorBound = 1e-3;
  const core::Compressor comp(cfg);
  const auto dataF = datagen::generateF32("miranda", 0, 1 << 16);
  std::vector<f64> dataD(dataF.begin(), dataF.end());
  const auto cF = comp.compress<f32>(dataF);
  const auto cD = comp.compress<f64>(dataD);
  EXPECT_GT(cD.profile.endToEndGBps, cF.profile.endToEndGBps * 1.3);
}

TEST(Integration, NdAndOneDAgreeOnErrorBound) {
  const core::Dims3 grid{32, 32, 16};
  const auto data = datagen::generateF32("cesm_atm", 0, grid.count());
  const f64 absEb = core::Quantizer::absFromRel(
      1e-3, metrics::valueRange<f32>(data));

  core::Config cfg1;
  cfg1.absErrorBound = absEb;
  const auto d1 = core::Compressor(cfg1).decompress<f32>(
      core::Compressor(cfg1).compress<f32>(data).stream);

  core::NdConfig cfg3;
  cfg3.absErrorBound = absEb;
  cfg3.dims = core::LorenzoDims::D3;
  const core::NdCompressor nd(cfg3);
  const auto d3 = nd.decompress<f32>(nd.compress<f32>(data, grid).stream);

  EXPECT_TRUE(metrics::computeErrorStats<f32>(data, d1.data)
                  .withinBoundFp(absEb, Precision::F32));
  EXPECT_TRUE(
      metrics::computeErrorStats<f32>(data, d3).withinBoundFp(absEb, Precision::F32));
}

TEST(Integration, SparseDatasetGetsMemsetFastPath) {
  // JetIn decompression flushes zero blocks with memset (Sec. V-B).
  const auto data = datagen::generateF32("jetin", 0, 1 << 17);
  core::Config cfg;
  cfg.relErrorBound = 1e-2;
  const core::Compressor comp(cfg);
  const auto c = comp.compress<f32>(data);
  const auto d = comp.decompress<f32>(c.stream);
  EXPECT_GT(d.profile.mem.memsetBytes, data.size());  // many zero blocks
  // And that fast path shows up as higher decompression throughput than a
  // dense dataset of the same size.
  const auto dense = datagen::generateF32("miranda", 0, 1 << 17);
  const auto cDense = comp.compress<f32>(dense);
  const auto dDense = comp.decompress<f32>(cDense.stream);
  EXPECT_GT(d.profile.endToEndGBps, dDense.profile.endToEndGBps);
}

TEST(Integration, DesignMatrixTableI) {
  // Table I self-check: cuSZp2 is pure-GPU (no PCIe/CPU stage in its
  // profile), single kernel, and uses lookback latency control.
  const auto data = datagen::generateF32("qmcpack", 1, 1 << 14);
  core::Config cfg;
  cfg.absErrorBound = 1e-3;  // pre-resolved bound: no range pass needed
  const core::Compressor comp(cfg);
  const auto c = comp.compress<f32>(data);
  EXPECT_EQ(c.profile.sync.method, gpusim::SyncMethod::DecoupledLookback);
  // End-to-end equals the single kernel + launch overhead: no hidden
  // stages.
  EXPECT_NEAR(c.profile.endToEndSeconds, c.profile.timing.totalSeconds,
              1e-12);
}

}  // namespace
}  // namespace cuszp2
