// Tests for CRC-32, the optional stream checksum, and the Ceiling
// rounding mode.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/crc32.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/compressor.hpp"
#include "core/quantizer.hpp"
#include "datagen/fields.hpp"
#include "metrics/error_stats.hpp"

namespace cuszp2 {
namespace {

ConstByteSpan asBytes(const std::string& s) {
  return ConstByteSpan(reinterpret_cast<const std::byte*>(s.data()),
                       s.size());
}

// ---- CRC-32 ---------------------------------------------------------------

TEST(Crc32, KnownVectors) {
  // Standard test vector: CRC32("123456789") = 0xCBF43926.
  EXPECT_EQ(crc32(asBytes("123456789")), 0xCBF43926u);
  EXPECT_EQ(crc32(asBytes("")), 0u);
  // CRC32("a") = 0xE8B7BE43.
  EXPECT_EQ(crc32(asBytes("a")), 0xE8B7BE43u);
}

TEST(Crc32, ChainingMatchesWhole) {
  const std::string s = "the quick brown fox jumps over the lazy dog";
  for (usize split : {usize{0}, usize{1}, usize{10}, s.size()}) {
    const u32 part1 = crc32(asBytes(s.substr(0, split)));
    const u32 chained = crc32(asBytes(s.substr(split)), part1);
    EXPECT_EQ(chained, crc32(asBytes(s))) << "split " << split;
  }
}

TEST(Crc32, DetectsSingleBitFlips) {
  Rng rng(1);
  std::vector<std::byte> data(4096);
  for (auto& b : data) {
    b = static_cast<std::byte>(rng.uniformInt(256));
  }
  const u32 base = crc32(data);
  for (int trial = 0; trial < 64; ++trial) {
    auto copy = data;
    const usize pos = rng.uniformInt(copy.size());
    const u32 bit = static_cast<u32>(rng.uniformInt(8));
    copy[pos] ^= static_cast<std::byte>(1u << bit);
    EXPECT_NE(crc32(copy), base) << "trial " << trial;
  }
}

// ---- Stream checksum --------------------------------------------------------

core::Config checksumConfig() {
  core::Config cfg;
  cfg.absErrorBound = 1e-3;
  cfg.checksum = true;
  return cfg;
}

TEST(Checksum, RoundTripsCleanly) {
  const auto data = datagen::generateF32("nyx", 0, 1 << 13);
  const core::Compressor comp(checksumConfig());
  const auto c = comp.compress<f32>(data);
  const auto header = core::StreamHeader::parse(c.stream);
  EXPECT_NE(header.checksum, 0u);
  EXPECT_NO_THROW(comp.decompress<f32>(c.stream));
}

TEST(Checksum, CorruptionDetected) {
  const auto data = datagen::generateF32("miranda", 0, 1 << 13);
  const core::Compressor comp(checksumConfig());
  auto c = comp.compress<f32>(data);
  // Flip a payload byte (past header + offsets).
  const auto header = core::StreamHeader::parse(c.stream);
  const usize pos = header.payloadBegin() + 17;
  ASSERT_LT(pos, c.stream.size());
  c.stream[pos] ^= std::byte{0x40};
  EXPECT_THROW(comp.decompress<f32>(c.stream), Error);
}

TEST(Checksum, OffsetCorruptionDetected) {
  const auto data = datagen::generateF32("scale", 0, 1 << 13);
  const core::Compressor comp(checksumConfig());
  auto c = comp.compress<f32>(data);
  c.stream[core::StreamHeader::offsetsBegin() + 3] ^= std::byte{0x01};
  EXPECT_THROW(comp.decompress<f32>(c.stream), Error);
}

TEST(Checksum, DisabledStreamsSkipVerification) {
  core::Config cfg;
  cfg.absErrorBound = 1e-3;
  cfg.checksum = false;
  const core::Compressor comp(cfg);
  const auto data = datagen::generateF32("nyx", 1, 1 << 12);
  const auto c = comp.compress<f32>(data);
  EXPECT_EQ(core::StreamHeader::parse(c.stream).checksum, 0u);
}

TEST(Checksum, SurvivesReplaceBlocks) {
  const auto data = datagen::generateF32("cesm_atm", 0, 1 << 12);
  const core::Compressor comp(checksumConfig());
  const auto c = comp.compress<f32>(data);
  const std::vector<f32> replacement(64, 1.25f);
  const auto updated = comp.replaceBlocks<f32>(c.stream, 5, replacement);
  // The spliced stream must carry a re-computed, valid checksum.
  EXPECT_NE(core::StreamHeader::parse(updated.stream).checksum, 0u);
  EXPECT_NO_THROW(comp.decompress<f32>(updated.stream));
}

TEST(Checksum, ChecksumCostsExtraModelledTime) {
  const auto data = datagen::generateF32("qmcpack", 0, 1 << 15);
  core::Config plain;
  plain.absErrorBound = 1e-3;
  core::Config checked = plain;
  checked.checksum = true;
  const auto cPlain = core::Compressor(plain).compress<f32>(data);
  const auto cChecked = core::Compressor(checked).compress<f32>(data);
  EXPECT_GT(cChecked.profile.endToEndSeconds,
            cPlain.profile.endToEndSeconds);
}

// ---- Ceiling rounding mode --------------------------------------------------

TEST(RoundingMode, CeilingNeverUndershoots) {
  const f64 eb = 0.05;
  const core::Quantizer q(eb, core::RoundingMode::Ceiling);
  Rng rng(7);
  for (int i = 0; i < 20000; ++i) {
    const f64 v = rng.uniform(-100.0, 100.0);
    const f64 rec = q.dequantize<f64>(q.quantize(v));
    // One-sided error: rec >= v, rec - v < 2*eb.
    ASSERT_GE(rec, v - 1e-12);
    ASSERT_LT(rec - v, 2.0 * eb * (1.0 + 1e-9));
  }
}

TEST(RoundingMode, CeilingCompressorRoundTrip) {
  const auto data = datagen::generateF32("hacc", 0, 1 << 13);
  core::Config cfg;
  cfg.absErrorBound =
      core::Quantizer::absFromRel(1e-3, metrics::valueRange<f32>(data));
  cfg.roundingMode = core::RoundingMode::Ceiling;
  const core::Compressor comp(cfg);
  const auto d = comp.decompress<f32>(comp.compress<f32>(data).stream);
  for (usize i = 0; i < data.size(); ++i) {
    const f64 err = static_cast<f64>(d.data[i]) -
                    static_cast<f64>(data[i]);
    ASSERT_GE(err, -cfg.absErrorBound * 1e-6 -
                       std::abs(data[i]) * 6e-8)
        << i;  // never (meaningfully) below the original
    ASSERT_LT(err, 2.0 * cfg.absErrorBound * (1.0 + 1e-6) +
                       std::abs(data[i]) * 6e-8)
        << i;
  }
}

TEST(RoundingMode, NearestIsDefault) {
  const core::Quantizer q(0.5);
  EXPECT_EQ(q.rounding(), core::RoundingMode::Nearest);
  EXPECT_EQ(q.quantize(0.4f), 0);   // nearest
  const core::Quantizer qc(0.5, core::RoundingMode::Ceiling);
  EXPECT_EQ(qc.quantize(0.4f), 1);  // ceiling of 0.4
}

}  // namespace
}  // namespace cuszp2
