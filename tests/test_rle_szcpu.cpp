// Tests for the RLE codec and the wall-clock SZ CPU baseline.
#include <gtest/gtest.h>

#include <vector>

#include "baselines/sz_cpu.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "datagen/fields.hpp"
#include "entropy/rle.hpp"
#include "metrics/error_stats.hpp"

namespace cuszp2 {
namespace {

using entropy::RleCodec;

TEST(Rle, EmptyInput) {
  const std::vector<u16> symbols;
  const auto enc = RleCodec::encode(symbols);
  EXPECT_TRUE(enc.runs.empty());
  EXPECT_EQ(RleCodec::decode(enc), symbols);
}

TEST(Rle, SingleRun) {
  const std::vector<u16> symbols(1000, 7);
  const auto enc = RleCodec::encode(symbols);
  ASSERT_EQ(enc.runs.size(), 1u);
  EXPECT_EQ(enc.runs[0], (std::pair<u16, u16>{7, 1000}));
  EXPECT_EQ(RleCodec::decode(enc), symbols);
}

TEST(Rle, AlternatingWorstCase) {
  std::vector<u16> symbols;
  for (int i = 0; i < 500; ++i) {
    symbols.push_back(static_cast<u16>(i % 2));
  }
  const auto enc = RleCodec::encode(symbols);
  EXPECT_EQ(enc.runs.size(), 500u);  // no compression, still correct
  EXPECT_EQ(RleCodec::decode(enc), symbols);
}

TEST(Rle, RunsSplitAtMaxLength) {
  const std::vector<u16> symbols(70000, 9);  // > 2^16 - 1
  const auto enc = RleCodec::encode(symbols);
  ASSERT_EQ(enc.runs.size(), 2u);
  EXPECT_EQ(enc.runs[0].second, 65535u);
  EXPECT_EQ(enc.runs[1].second, 70000u - 65535u);
  EXPECT_EQ(RleCodec::decode(enc), symbols);
}

TEST(Rle, RandomRoundTrips) {
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<u16> symbols(1 + rng.uniformInt(5000));
    u16 current = 0;
    for (auto& s : symbols) {
      if (rng.uniform() < 0.2) {
        current = static_cast<u16>(rng.uniformInt(100));
      }
      s = current;
    }
    const auto enc = RleCodec::encode(symbols);
    ASSERT_EQ(RleCodec::decode(enc), symbols) << trial;
  }
}

TEST(Rle, CompressesLongRuns) {
  std::vector<u16> symbols;
  for (int block = 0; block < 10; ++block) {
    symbols.insert(symbols.end(), 1000, static_cast<u16>(block));
  }
  const auto enc = RleCodec::encode(symbols);
  EXPECT_LT(enc.totalBytes(), symbols.size());  // << 2 bytes/symbol
}

TEST(SzCpu, ErrorBoundHolds) {
  const auto data = datagen::generateF32("cesm_atm", 0, 1 << 14);
  baselines::SzCpuBaseline sz;
  const auto r = sz.run(data, 1e-3);
  const f64 absEb = 1e-3 * metrics::valueRange<f32>(data);
  EXPECT_TRUE(r.error.withinBoundFp(absEb, Precision::F32))
      << r.error.maxAbsError;
  EXPECT_GT(r.ratio, 1.0);
}

TEST(SzCpu, MeasuredThroughputIsRealisticallyCpuBound) {
  const auto data = datagen::generateF32("miranda", 0, 1 << 16);
  baselines::SzCpuBaseline sz;
  const auto r = sz.run(data, 1e-3);
  EXPECT_GT(r.compressGBps, 0.0);
  // No host on earth Huffman-encodes at GPU rates; this also guards
  // against accidentally reporting modelled time as measured.
  EXPECT_LT(r.compressGBps, 50.0);
}

TEST(SzCpu, RoughDataStillBounded) {
  const auto data = datagen::generateF32("qmcpack", 0, 1 << 13);
  baselines::SzCpuBaseline sz;
  const auto r = sz.run(data, 1e-4);
  const f64 absEb = 1e-4 * metrics::valueRange<f32>(data);
  EXPECT_TRUE(r.error.withinBoundFp(absEb, Precision::F32));
}

}  // namespace
}  // namespace cuszp2
