// Tests for the LSB-first bit reader/writer.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "entropy/bitstream.hpp"

namespace cuszp2::entropy {
namespace {

TEST(BitStream, EmptyWriter) {
  BitWriter w;
  EXPECT_EQ(w.bitCount(), 0u);
  EXPECT_TRUE(w.bytes().empty());
}

TEST(BitStream, SingleBits) {
  BitWriter w;
  w.writeBit(true);
  w.writeBit(false);
  w.writeBit(true);
  EXPECT_EQ(w.bitCount(), 3u);
  BitReader r(w.bytes());
  EXPECT_EQ(r.readBit(), 1u);
  EXPECT_EQ(r.readBit(), 0u);
  EXPECT_EQ(r.readBit(), 1u);
}

TEST(BitStream, LsbFirstWithinByte) {
  BitWriter w;
  w.write(0b1011, 4);  // bits 1,1,0,1 LSB first
  const auto& bytes = w.bytes();
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(std::to_integer<u32>(bytes[0]), 0b1011u);
}

TEST(BitStream, MultiByteValues) {
  BitWriter w;
  w.write(0xDEADBEEFu, 32);
  w.write(0x123u, 12);
  BitReader r(w.bytes());
  EXPECT_EQ(r.read(32), 0xDEADBEEFu);
  EXPECT_EQ(r.read(12), 0x123u);
}

TEST(BitStream, ZeroWidthWrite) {
  BitWriter w;
  w.write(0xFF, 0);
  EXPECT_EQ(w.bitCount(), 0u);
}

TEST(BitStream, SixtyFourBitValues) {
  BitWriter w;
  const u64 v = 0xFEDCBA9876543210ull;
  w.write(v, 64);
  BitReader r(w.bytes());
  EXPECT_EQ(r.read(64), v);
}

TEST(BitStream, RandomRoundTrip) {
  Rng rng(77);
  std::vector<std::pair<u64, u32>> items;
  BitWriter w;
  for (int i = 0; i < 5000; ++i) {
    const u32 bits = static_cast<u32>(rng.uniformInt(65));
    const u64 value = rng.next() & (bits == 64 ? ~u64{0}
                                               : ((u64{1} << bits) - 1));
    items.emplace_back(value, bits);
    w.write(value, bits);
  }
  BitReader r(w.bytes());
  for (const auto& [value, bits] : items) {
    ASSERT_EQ(r.read(bits), value);
  }
}

TEST(BitStream, ReadPastEndThrows) {
  BitWriter w;
  w.write(0x5, 3);
  BitReader r(w.bytes());
  r.read(3);
  // The stream is padded to a whole byte, so 5 more bits exist; 6+ do not.
  r.read(5);
  EXPECT_THROW(r.readBit(), Error);
}

TEST(BitStream, WriterRejectsOver64) {
  BitWriter w;
  EXPECT_THROW(w.write(0, 65), Error);
}

TEST(BitStream, BitsRemaining) {
  BitWriter w;
  w.write(0xABCD, 16);
  BitReader r(w.bytes());
  EXPECT_EQ(r.bitsRemaining(), 16u);
  r.read(5);
  EXPECT_EQ(r.bitsRemaining(), 11u);
  EXPECT_EQ(r.bitPosition(), 5u);
}

}  // namespace
}  // namespace cuszp2::entropy
