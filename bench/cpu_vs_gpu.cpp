// Supplementary / Sec. I-A — why compression must run on the GPU: the
// LCLS acquisition stream arrives at ~250 GB/s, far beyond CPU lossy
// compressors. This harness measures a real SZ-style CPU pipeline's
// wall-clock throughput on this host and contrasts it with the modelled
// A100 cuSZp2 rates and the acquisition requirement.
//
// (The CPU number is genuinely measured and machine-dependent; the GPU
// numbers are modelled — see DESIGN.md. The orders-of-magnitude gap is
// the point, not the exact figure.)
#include <cstdio>

#include "baselines/cuszp2_adapter.hpp"
#include "baselines/sz_cpu.hpp"
#include "bench_util.hpp"
#include "datagen/fields.hpp"
#include "io/table.hpp"

using namespace cuszp2;

int main() {
  bench::banner("Supplementary / Sec. I-A",
                "CPU wall-clock vs GPU modelled throughput");

  const auto data = datagen::generateF32("cesm_atm", 0, bench::fieldElems());
  const f64 rel = 1e-3;

  baselines::SzCpuBaseline szCpu;
  const auto cpu = szCpu.run(data, rel);
  const auto gpu = baselines::Cuszp2Baseline::cuszp2Outlier()->run(data, rel);

  io::Table table({"pipeline", "compression", "decompression", "ratio",
                   "meets 250 GB/s stream?"});
  table.addRow({cpu.compressor, io::Table::gbps(cpu.compressGBps),
                io::Table::gbps(cpu.decompressGBps),
                io::Table::num(cpu.ratio, 2),
                cpu.compressGBps >= 250.0 ? "yes" : "no"});
  table.addRow({"cuSZp2-O (A100 model)", io::Table::gbps(gpu.compressGBps),
                io::Table::gbps(gpu.decompressGBps),
                io::Table::num(gpu.ratio, 2),
                gpu.compressGBps >= 250.0 ? "yes" : "no"});
  table.print();

  std::printf(
      "\nGPU/CPU compression throughput gap on this run: %.0fx\n",
      gpu.compressGBps / cpu.compressGBps);
  std::printf(
      "\nPaper context: LCLS raw acquisition is ~250 GB/s (Sec. I-A);\n"
      "CPU error-bounded compressors deliver well under 1 GB/s per core,\n"
      "so inline reduction has to live on the accelerator.\n");
  return 0;
}
