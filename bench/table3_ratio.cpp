// E7 — Paper Table III: compression ratios of CUSZP2-O, FZ-GPU, and cuSZp
// across the 9 single-precision datasets x 3 REL bounds, formatted as the
// paper's "min~max (avg)" cells. CUSZP2-P is omitted exactly as in the
// paper (its ratios match cuSZp to <0.01% by construction).
//
// Expected shape: CUSZP2-O posts the highest average in most cells,
// especially on smooth datasets (CESM, HACC, Miranda) and sparse ones
// (RTM, JetIn); FZ-GPU competes on some rough datasets.
#include <cstdio>

#include "baselines/cuszp2_adapter.hpp"
#include "baselines/fzgpu.hpp"
#include "bench_util.hpp"
#include "datagen/fields.hpp"
#include "io/table.hpp"
#include "metrics/ratio.hpp"

using namespace cuszp2;

int main() {
  bench::banner("E7 / Table III",
                "Compression ratios: CUSZP2-O vs FZ-GPU vs cuSZp");

  const usize elems = bench::fieldElems();
  const u32 maxFields = bench::maxFieldsPerDataset();

  for (const f64 rel : bench::relBounds()) {
    std::printf("\n--- REL %s ---\n", bench::formatRel(rel).c_str());
    io::Table table({"dataset", "CUSZP2-O", "FZ-GPU", "cuSZp", "best"});
    u32 winsO = 0;
    u32 cells = 0;
    for (const auto& info : datagen::singlePrecisionDatasets()) {
      metrics::RatioCell o;
      metrics::RatioCell fz;
      metrics::RatioCell v1;
      for (u32 f = 0; f < std::min(info.numFields, maxFields); ++f) {
        const auto data = datagen::generateF32(info.name, f, elems);
        o.add(baselines::Cuszp2Baseline::cuszp2Outlier()
                  ->run(data, rel)
                  .ratio);
        fz.add(baselines::FzGpuBaseline().run(data, rel).ratio);
        v1.add(baselines::Cuszp2Baseline::cuszpV1()->run(data, rel).ratio);
      }
      const bool oWins = o.avg() >= fz.avg() && o.avg() >= v1.avg();
      winsO += oWins ? 1 : 0;
      ++cells;
      table.addRow({info.name, o.format(), fz.format(), v1.format(),
                    oWins ? "CUSZP2-O"
                          : (fz.avg() > v1.avg() ? "FZ-GPU" : "cuSZp")});
    }
    table.print();
    std::printf("CUSZP2-O has the best average in %u/%u datasets at this "
                "bound.\n",
                winsO, cells);
  }
  std::printf(
      "\nPaper reference: CUSZP2-O posts the highest averages in 24/27\n"
      "cells; FZ-GPU wins NYX at loose bounds. (FZ-GPU's published binary\n"
      "crashes on 4 datasets — our reimplementation runs them all, so\n"
      "those cells have values instead of the paper's N.A.)\n");
  return 0;
}
