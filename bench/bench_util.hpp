// Shared helpers for the paper-reproduction bench harness.
//
// Every binary regenerates one table or figure from the paper. Sizes are
// scaled down from the paper's multi-GB fields so a full sweep finishes in
// minutes on a laptop; the *shape* of each result (who wins, by what
// factor) is what the harness reproduces, and throughput numbers come from
// the gpusim timing model, not wall clock, so they are size-stable once
// fields are large enough to amortize launch overheads.
//
// Environment knobs:
//   CUSZP2_BENCH_ELEMS   elements per field        (default 2097152)
//   CUSZP2_BENCH_FIELDS  max fields per dataset    (default 2)
#pragma once

#include <cstdlib>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace cuszp2::bench {

inline usize fieldElems() {
  if (const char* env = std::getenv("CUSZP2_BENCH_ELEMS")) {
    const long long v = std::atoll(env);
    if (v > 0) return static_cast<usize>(v);
  }
  return usize{1} << 21;
}

inline u32 maxFieldsPerDataset() {
  if (const char* env = std::getenv("CUSZP2_BENCH_FIELDS")) {
    const long long v = std::atoll(env);
    if (v > 0) return static_cast<u32>(v);
  }
  return 2;
}

/// Prints the standard experiment banner.
void banner(const std::string& experimentId, const std::string& title);

/// The REL error bounds swept throughout the paper's evaluation.
inline const std::vector<f64>& relBounds() {
  static const std::vector<f64> kBounds = {1e-2, 1e-3, 1e-4};
  return kBounds;
}

std::string formatRel(f64 rel);

}  // namespace cuszp2::bench
