// Shared helpers for the paper-reproduction bench harness.
//
// Every binary regenerates one table or figure from the paper. Sizes are
// scaled down from the paper's multi-GB fields so a full sweep finishes in
// minutes on a laptop; the *shape* of each result (who wins, by what
// factor) is what the harness reproduces, and throughput numbers come from
// the gpusim timing model, not wall clock, so they are size-stable once
// fields are large enough to amortize launch overheads.
//
// Environment knobs:
//   CUSZP2_BENCH_ELEMS   elements per field        (default 2097152)
//   CUSZP2_BENCH_FIELDS  max fields per dataset    (default 2)
#pragma once

#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace cuszp2::bench {

inline usize fieldElems() {
  if (const char* env = std::getenv("CUSZP2_BENCH_ELEMS")) {
    const long long v = std::atoll(env);
    if (v > 0) return static_cast<usize>(v);
  }
  return usize{1} << 21;
}

inline u32 maxFieldsPerDataset() {
  if (const char* env = std::getenv("CUSZP2_BENCH_FIELDS")) {
    const long long v = std::atoll(env);
    if (v > 0) return static_cast<u32>(v);
  }
  return 2;
}

/// Prints the standard experiment banner.
void banner(const std::string& experimentId, const std::string& title);

/// The REL error bounds swept throughout the paper's evaluation.
inline const std::vector<f64>& relBounds() {
  static const std::vector<f64> kBounds = {1e-2, 1e-3, 1e-4};
  return kBounds;
}

std::string formatRel(f64 rel);

/// Wall-clock statistics over N warm repetitions of one operation.
/// Median (not mean) is the headline: it is robust to one-off scheduler
/// hiccups, and min gives the best-case floor.
struct RepeatStats {
  f64 minSeconds = 0.0;
  f64 medianSeconds = 0.0;
  f64 maxSeconds = 0.0;
  u32 reps = 0;
};

/// Runs `fn` once untimed (warm-up: populates scratch arenas, page-faults
/// buffers in, spins up the shared worker pool), then times `reps`
/// repetitions and returns min/median/max.
RepeatStats measureRepeated(u32 reps, const std::function<void()>& fn);

/// Machine-readable microbenchmark report. Rows accumulate via addRow and
/// serialize as a JSON array of objects:
///   [{"name": "...", "reps": N, "min_ms": ..., "median_ms": ...,
///     "max_ms": ..., "gbps_median": ...}, ...]
/// gbps_median is bytesPerRep / median (omitted as 0 when bytesPerRep is
/// unset). CI consumes this file to track hot-path regressions.
class JsonReport {
 public:
  void addRow(const std::string& name, const RepeatStats& stats,
              f64 bytesPerRep = 0.0);

  /// Writes the array to `path` (truncating). Returns false (and prints a
  /// warning) if the file cannot be opened.
  bool write(const std::string& path) const;

 private:
  struct Row {
    std::string name;
    RepeatStats stats;
    f64 bytesPerRep;
  };
  std::vector<Row> rows_;
};

}  // namespace cuszp2::bench
