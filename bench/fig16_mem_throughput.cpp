// E5 — Paper Fig. 16: GPU memory-pipeline throughput of the compression
// kernels, now including CUSZP2-P and CUSZP2-O.
//
// Expected shape: both cuSZp2 modes approach the A100's 1555 GB/s (paper:
// 1175.34 and 1103.45 GB/s) while the baselines sit at 134-411 GB/s —
// vectorized, coalesced access is the difference.
#include <cstdio>

#include "baselines/cuszp2_adapter.hpp"
#include "baselines/fzgpu.hpp"
#include "baselines/zfp.hpp"
#include "bench_util.hpp"
#include "datagen/fields.hpp"
#include "io/table.hpp"
#include "metrics/ratio.hpp"

using namespace cuszp2;

int main() {
  bench::banner("E5 / Figure 16",
                "Compression-kernel memory throughput incl. cuSZp2");

  const usize elems = bench::fieldElems();
  const u32 maxFields = bench::maxFieldsPerDataset();
  const f64 rel = 1e-3;

  metrics::RatioCell p;
  metrics::RatioCell o;
  metrics::RatioCell v1;
  metrics::RatioCell fz;
  metrics::RatioCell zf;
  for (const auto& info : datagen::singlePrecisionDatasets()) {
    for (u32 f = 0; f < std::min(info.numFields, maxFields); ++f) {
      const auto data = datagen::generateF32(info.name, f, elems);
      p.add(baselines::Cuszp2Baseline::cuszp2Plain()
                ->run(data, rel)
                .memThroughputGBps);
      o.add(baselines::Cuszp2Baseline::cuszp2Outlier()
                ->run(data, rel)
                .memThroughputGBps);
      v1.add(baselines::Cuszp2Baseline::cuszpV1()
                 ->run(data, rel)
                 .memThroughputGBps);
      fz.add(baselines::FzGpuBaseline().run(data, rel).memThroughputGBps);
      zf.add(baselines::ZfpBaseline(8.0).run(data, 0.0).memThroughputGBps);
    }
  }

  io::Table table({"compressor", "avg mem throughput", "% of peak"});
  auto row = [&](const std::string& name, const metrics::RatioCell& c) {
    table.addRow({name, io::Table::gbps(c.avg()),
                  io::Table::num(c.avg() / 1555.0 * 100.0, 1) + "%"});
  };
  row("CUSZP2-P", p);
  row("CUSZP2-O", o);
  row("cuSZp", v1);
  row("FZ-GPU", fz);
  row("cuZFP(r8)", zf);
  table.print();
  std::printf(
      "\nPaper reference: CUSZP2-P 1175.34 and CUSZP2-O 1103.45 GB/s vs\n"
      "134.10 (FZ-GPU, atomics) ~ 410.90 GB/s (cuSZp, strided scalar).\n");
  return 0;
}
