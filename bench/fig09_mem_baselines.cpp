// E2 — Paper Fig. 9: memory throughput of the pure-GPU baselines (cuZFP,
// FZ-GPU, cuSZp) on RTM field P3000, profiled on the A100 model.
//
// Expected shape: every baseline sits far below the A100's 1555 GB/s —
// the motivation for cuSZp2's vectorized memory accesses. The paper
// measures 159.95 (FZ-GPU) to 397.26 GB/s (cuSZp).
#include <cstdio>

#include "baselines/cuszp2_adapter.hpp"
#include "baselines/fzgpu.hpp"
#include "baselines/zfp.hpp"
#include "bench_util.hpp"
#include "datagen/fields.hpp"
#include "io/table.hpp"

using namespace cuszp2;

int main() {
  bench::banner("E2 / Figure 9",
                "Memory throughput of pure-GPU baselines (RTM P3000)");

  const auto data = datagen::generateF32("rtm", 2, bench::fieldElems());

  io::Table table({"compressor", "mem throughput", "% of A100 peak"});
  auto addRow = [&](const std::string& name, f64 gbps) {
    table.addRow({name, io::Table::gbps(gbps),
                  io::Table::num(gbps / 1555.0 * 100.0, 1) + "%"});
  };

  {
    baselines::ZfpBaseline zfp(8.0);
    addRow(zfp.name(), zfp.run(data, 0.0).memThroughputGBps);
  }
  {
    baselines::FzGpuBaseline fz;
    addRow(fz.name(), fz.run(data, 1e-3).memThroughputGBps);
  }
  {
    auto v1 = baselines::Cuszp2Baseline::cuszpV1();
    addRow(v1->name(), v1->run(data, 1e-3).memThroughputGBps);
  }
  table.print();
  std::printf(
      "\nPaper reference: 159.95 GB/s (FZ-GPU) ~ 397.26 GB/s (cuSZp),\n"
      "all far below the A100's 1555 GB/s peak bandwidth.\n");
  return 0;
}
