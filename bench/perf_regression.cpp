// Deterministic perf-regression harness.
//
// Sweeps three datagen fields through {compress, decompress, round-trip}
// and writes BENCH_perf.json at the repo root (or the path given as
// argv[1]): per case the modelled throughput, modelled seconds, the
// compression ratio, and the host wall-clock median.
//
// Modelled metrics must be bit-identical run to run so CI can diff the
// file: the harness pins CUSZP2_WORKERS=1 before the shared pool exists
// (the decoupled-lookback sync term depends on the measured lookback
// depth, which is scheduling-dependent under >1 worker; single-worker
// dispatch makes every depth exactly 1), runs every case twice, and fails
// hard if the two passes disagree. Wall-clock numbers are diagnostic only
// and excluded from the determinism check.
//
// Against a pre-existing BENCH_perf.json the harness soft-compares
// modelled throughput within a tolerance band: drift prints a WARN line
// (CI surfaces it) but does not fail the run — regenerating the file is
// the fix when the model intentionally changed.
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "cas/block_store.hpp"
#include "cluster/cluster.hpp"
#include "core/stream.hpp"
#include "datagen/fields.hpp"
#include "gpusim/timing.hpp"
#include "service/chaos.hpp"
#include "service/service.hpp"

using namespace cuszp2;

namespace {

constexpr f64 kTolerance = 0.10;  // soft WARN band on modelled GB/s

struct CaseResult {
  std::string name;
  u64 elems = 0;
  f64 ratio = 0.0;
  f64 modelledSeconds = 0.0;
  f64 modelledGBps = 0.0;
  f64 wallMsMedian = 0.0;
  f64 wallBudgetMs = 0.0;
  u64 launches = 0;    // fused-launch count; service cases only
  u64 recoveries = 0;  // retries + in-stream relaunches; chaos case only
};

/// Soft wall-clock budgets per scenario, ≈2x a healthy single-core run:
/// generous enough that scheduler noise never flaps CI, tight enough that
/// a real regression (a SIMD path silently degraded to scalar, an O(n^2)
/// walk) blows straight through. Exceeding one prints a
/// `WARN perf.wall_budget` line — wall time stays advisory because it is
/// hardware-dependent; the budget column in the JSON is what CI requires
/// to exist.
struct WallBudget {
  const char* name;
  f64 ms;
};

constexpr WallBudget kWallBudgets[] = {
    {"cesm_atm/compress", 16.0},     {"cesm_atm/decompress", 10.0},
    {"cesm_atm/round_trip", 28.0},   {"hacc/compress", 14.0},
    {"hacc/decompress", 9.0},        {"hacc/round_trip", 24.0},
    {"jetin/compress", 14.0},        {"jetin/decompress", 4.5},
    {"jetin/round_trip", 17.0},      {"service/batched", 42.0},
    {"service/unbatched", 45.0},     {"service/batched_decompress", 20.0},
    {"service/chaos", 80.0},         {"cluster/failover", 90.0},
    {"ratio/v3", 60.0},              {"cas/dedup", 25.0},
    // fsync-barrier bound, not CPU bound: budget leaves room for a slow
    // or contended disk (two passes x (10 journal syncs + 10 snapshots)).
    {"cas/journal", 90.0},
};

f64 wallBudgetMs(const std::string& name) {
  for (const WallBudget& b : kWallBudgets) {
    if (name == b.name) return b.ms;
  }
  return 0.0;
}

/// Formats an f64 so it round-trips bit-exactly; two runs producing the
/// same doubles produce byte-identical JSON.
std::string f64Str(f64 v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

struct Modelled {
  f64 ratio = 0.0;
  f64 seconds = 0.0;
  f64 gbps = 0.0;

  bool operator==(const Modelled& o) const {
    return ratio == o.ratio && seconds == o.seconds && gbps == o.gbps;
  }
};

/// One pass of all three operations over a freshly constructed stream.
/// Returns the modelled metrics per operation (compress, decompress,
/// round-trip) — everything the determinism contract covers.
std::vector<Modelled> modelOnce(const std::vector<f32>& field) {
  core::Config cfg;
  cfg.relErrorBound = 1e-3;
  core::CompressorStream codec(cfg);
  const auto c = codec.compress<f32>(field);
  const auto d = codec.decompress<f32>(c.stream);

  const f64 origBytes = static_cast<f64>(c.originalBytes);
  const f64 rtSeconds =
      c.profile.endToEndSeconds + d.profile.endToEndSeconds;
  return {
      {c.ratio, c.profile.endToEndSeconds, c.profile.endToEndGBps},
      {c.ratio, d.profile.endToEndSeconds, d.profile.endToEndGBps},
      {c.ratio, rtSeconds,
       rtSeconds > 0.0 ? origBytes / rtSeconds / 1e9 : 0.0},
  };
}

/// One mixed-tenant job of the service_throughput scenario.
struct ServiceJob {
  std::string tenant;
  std::string dataset;
  u32 fieldIndex;
  usize elems;
};

/// 4 tenants with mixed request sizes, all sharing one Config so the
/// batching scheduler can coalesce across tenants.
std::vector<ServiceJob> serviceWorkload(usize elems) {
  std::vector<ServiceJob> jobs;
  const std::string datasets[4] = {"cesm_atm", "hacc", "jetin", "cesm_atm"};
  const usize sizes[4] = {elems / 8, elems / 4, elems / 16, elems / 32};
  for (u32 round = 0; round < 4; ++round) {
    for (u32 t = 0; t < 4; ++t) {
      const u32 numFields = datagen::datasetInfo(datasets[t]).numFields;
      jobs.push_back(ServiceJob{"tenant" + std::to_string(t), datasets[t],
                                round % numFields, sizes[t]});
    }
  }
  return jobs;
}

/// Fields for the service workload, generated once up front. datagen
/// (libm-heavy Box-Muller) must stay outside every measured region: on a
/// single core it costs more than the codec itself and would hide the
/// batching advantage the service cases exist to guard.
std::vector<std::vector<f32>> serviceFields(
    const std::vector<ServiceJob>& jobs) {
  std::vector<std::vector<f32>> fields;
  fields.reserve(jobs.size());
  for (const ServiceJob& job : jobs) {
    fields.push_back(
        datagen::generateF32(job.dataset, job.fieldIndex, job.elems));
  }
  return fields;
}

/// One pass of the workload through a CompressionService (1 worker +
/// paused start + submit-all-then-resume, so batch formation and with it
/// the modelled metrics are exact). Modelled seconds is the sum of the
/// per-job modelled end-to-end times; `launches` counts fused launches.
Modelled modelServiceOnce(const std::vector<ServiceJob>& jobs,
                          const std::vector<std::vector<f32>>& fields,
                          bool batched, u64* launches) {
  service::ServiceConfig scfg;
  scfg.workers = 1;
  scfg.startPaused = true;
  scfg.maxBatchJobs = batched ? 8 : 1;
  service::CompressionService svc(scfg);

  core::Config cfg;
  cfg.relErrorBound = 1e-3;
  std::vector<service::Ticket> tickets;
  for (usize i = 0; i < jobs.size(); ++i) {
    tickets.push_back(svc.submitCompress<f32>(jobs[i].tenant,
                                              std::span<const f32>(fields[i]),
                                              cfg)
                          .ticket);
  }
  svc.resume();
  svc.shutdown();

  f64 seconds = 0.0;
  f64 bytesIn = 0.0;
  f64 bytesOut = 0.0;
  for (const service::Ticket& t : tickets) {
    const service::JobResult& r = t.wait();
    if (!r.ok) {
      std::fprintf(stderr, "FAIL service job: %s\n", r.error.c_str());
      std::exit(1);
    }
    seconds += r.compressed.profile.endToEndSeconds;
    bytesIn += static_cast<f64>(r.compressed.originalBytes);
    bytesOut += static_cast<f64>(r.compressed.stream.size());
  }
  if (launches != nullptr) *launches = svc.stats().batches;
  return {bytesOut > 0.0 ? bytesIn / bytesOut : 0.0, seconds,
          seconds > 0.0 ? bytesIn / seconds / 1e9 : 0.0};
}

/// The service workload under a seeded chaos schedule: bit flips, aborted
/// blocks and arena exhaustion, all absorbed by in-stream relaunches and
/// service retries. Guards the cost of recovery — and that the recovery
/// counters themselves are deterministic (same seed, same `recoveries`).
/// Stall/wedge faults are excluded: they burn real wall time and need the
/// watchdog, which this single-pass modelled case doesn't exercise.
/// One warm pass of the compress workload through a long-lived service:
/// pause, submit everything, resume, wait. Used for the wall-clock
/// measurement — the worker streams' arenas are already grown, so the
/// number is steady-state service throughput. (A cold service pays arena
/// growth per run: the batched variant's arena is maxBatchJobs times
/// larger, which used to swamp the 1-2 ms the launch amortization wins.)
void wallServiceOnce(service::CompressionService& svc,
                     const std::vector<ServiceJob>& jobs,
                     const std::vector<std::vector<f32>>& fields) {
  core::Config cfg;
  cfg.relErrorBound = 1e-3;
  svc.pause();
  std::vector<service::Ticket> tickets;
  tickets.reserve(jobs.size());
  for (usize i = 0; i < jobs.size(); ++i) {
    tickets.push_back(svc.submitCompress<f32>(jobs[i].tenant,
                                              std::span<const f32>(fields[i]),
                                              cfg)
                          .ticket);
  }
  svc.resume();
  for (const service::Ticket& t : tickets) {
    if (!t.wait().ok) {
      std::fprintf(stderr, "FAIL warm service job\n");
      std::exit(1);
    }
  }
}

/// Warm decompress pass, mirroring wallServiceOnce.
void wallServiceDecompressOnce(
    service::CompressionService& svc,
    const std::vector<std::vector<std::byte>>& streams) {
  core::Config cfg;
  cfg.relErrorBound = 1e-3;
  svc.pause();
  std::vector<service::Ticket> tickets;
  tickets.reserve(streams.size());
  for (usize i = 0; i < streams.size(); ++i) {
    tickets.push_back(
        svc.submitDecompress("tenant" + std::to_string(i % 4), streams[i],
                             cfg)
            .ticket);
  }
  svc.resume();
  for (const service::Ticket& t : tickets) {
    if (!t.wait().ok) {
      std::fprintf(stderr, "FAIL warm service decompress job\n");
      std::exit(1);
    }
  }
}

/// One pass of the pre-compressed workload back through the service as
/// decompress jobs. Same submit-all-then-resume discipline; `launches`
/// counts fused launches (a batched run must fuse the jobs into fewer
/// launches than jobs — the decompress-side coalescing this PR adds).
Modelled modelServiceDecompressOnce(
    const std::vector<std::vector<std::byte>>& streams, bool batched,
    u64* launches) {
  service::ServiceConfig scfg;
  scfg.workers = 1;
  scfg.startPaused = true;
  scfg.maxBatchJobs = batched ? 8 : 1;
  service::CompressionService svc(scfg);

  core::Config cfg;
  cfg.relErrorBound = 1e-3;
  std::vector<service::Ticket> tickets;
  for (usize i = 0; i < streams.size(); ++i) {
    tickets.push_back(
        svc.submitDecompress("tenant" + std::to_string(i % 4), streams[i],
                             cfg)
            .ticket);
  }
  svc.resume();
  svc.shutdown();

  f64 seconds = 0.0;
  f64 bytesIn = 0.0;   // compressed
  f64 bytesOut = 0.0;  // decoded (original) — the throughput reference
  for (const service::Ticket& t : tickets) {
    const service::JobResult& r = t.wait();
    if (!r.ok) {
      std::fprintf(stderr, "FAIL service decompress job: %s\n",
                   r.error.c_str());
      std::exit(1);
    }
    seconds += r.decompressProfile.endToEndSeconds;
    bytesOut += static_cast<f64>(r.decompressed.size());
  }
  for (const std::vector<std::byte>& s : streams) {
    bytesIn += static_cast<f64>(s.size());
  }
  if (launches != nullptr) *launches = svc.stats().batches;
  return {bytesIn > 0.0 ? bytesOut / bytesIn : 0.0, seconds,
          seconds > 0.0 ? bytesOut / seconds / 1e9 : 0.0};
}

Modelled modelChaosOnce(const std::vector<ServiceJob>& jobs,
                        const std::vector<std::vector<f32>>& fields,
                        u64* recoveries) {
  service::ServiceConfig scfg;
  scfg.workers = 1;
  scfg.startPaused = true;
  scfg.maxBatchJobs = 1;
  scfg.watchdog.enabled = false;
  scfg.breaker.threshold = 0;
  scfg.retry.backoffBaseMillis = 0;
  service::ChaosConfig ccfg;
  ccfg.seed = 20260805;
  ccfg.bitFlipRate = 0.2;
  ccfg.abortRate = 0.2;
  ccfg.arenaRate = 0.1;
  ccfg.stallRate = 0.0;
  ccfg.wedgeRate = 0.0;
  scfg.chaosHook = service::SeededChaosSchedule(ccfg).hook();
  service::CompressionService svc(scfg);

  core::Config cfg;
  cfg.relErrorBound = 1e-3;
  cfg.checksum = true;
  cfg.blockChecksums = true;
  cfg.faultRetries = 2;
  std::vector<service::Ticket> tickets;
  for (usize i = 0; i < jobs.size(); ++i) {
    tickets.push_back(svc.submitCompress<f32>(jobs[i].tenant,
                                              std::span<const f32>(fields[i]),
                                              cfg)
                          .ticket);
  }
  svc.resume();
  svc.shutdown();

  f64 seconds = 0.0;
  f64 bytesIn = 0.0;
  f64 bytesOut = 0.0;
  for (const service::Ticket& t : tickets) {
    const service::JobResult& r = t.wait();
    if (!r.ok) {
      std::fprintf(stderr, "FAIL chaos job: %s\n", r.error.c_str());
      std::exit(1);
    }
    seconds += r.compressed.profile.endToEndSeconds;
    bytesIn += static_cast<f64>(r.compressed.originalBytes);
    bytesOut += static_cast<f64>(r.compressed.stream.size());
  }
  const service::ServiceStats stats = svc.stats();
  if (recoveries != nullptr) {
    *recoveries = stats.retries + stats.streamFaultRelaunches;
  }
  return {bytesOut > 0.0 ? bytesIn / bytesOut : 0.0, seconds,
          seconds > 0.0 ? bytesIn / seconds / 1e9 : 0.0};
}

/// The mixed workload over a 3-shard cluster with the hottest tenant's
/// primary shard killed mid-load. Paused drill: submit everything, kill
/// while no worker is running (the cancel-first victim sweep makes the
/// requeue set exact), then resume — so the failover count and with it
/// the modelled cost of re-running the orphaned jobs on survivors is
/// deterministic. Guards the price of a shard loss: modelled seconds is
/// the sum of per-job end-to-end profiles on the shard that finally
/// completed each job.
Modelled modelClusterFailoverOnce(const std::vector<ServiceJob>& jobs,
                                  const std::vector<std::vector<f32>>& fields,
                                  u64* failovers) {
  cluster::ClusterConfig ccfg;
  ccfg.shards = 3;
  ccfg.replicas = 2;
  ccfg.shard.workers = 1;
  ccfg.shard.maxBatchJobs = 8;
  ccfg.startPaused = true;
  cluster::CompressionCluster cl(ccfg);

  core::Config cfg;
  cfg.relErrorBound = 1e-3;
  std::vector<cluster::ClusterTicket> tickets;
  for (usize i = 0; i < jobs.size(); ++i) {
    tickets.push_back(cl.submitCompress<f32>(jobs[i].tenant,
                                             std::span<const f32>(fields[i]),
                                             cfg)
                          .ticket);
  }
  cl.killShard(cl.primaryShardFor(jobs[0].tenant));
  cl.resume();
  cl.shutdown();

  f64 seconds = 0.0;
  f64 bytesIn = 0.0;
  f64 bytesOut = 0.0;
  for (const cluster::ClusterTicket& t : tickets) {
    const cluster::ClusterJobResult& r = t.wait();
    if (!r.job.ok) {
      std::fprintf(stderr, "FAIL cluster failover job: %s\n",
                   r.job.error.c_str());
      std::exit(1);
    }
    seconds += r.job.compressed.profile.endToEndSeconds;
    bytesIn += static_cast<f64>(r.job.compressed.originalBytes);
    bytesOut += static_cast<f64>(r.job.compressed.stream.size());
  }
  if (failovers != nullptr) *failovers = cl.stats().failovers;
  return {bytesOut > 0.0 ? bytesIn / bytesOut : 0.0, seconds,
          seconds > 0.0 ? bytesIn / seconds / 1e9 : 0.0};
}

/// Pulls `"modelled_gbps": <num>` for the named case out of a previous
/// report. Deliberately string-level: the file is machine-written with a
/// fixed shape, and the comparison is advisory.
bool previousGbps(const std::string& report, const std::string& name,
                  f64* out) {
  const std::string needle = "\"name\": \"" + name + "\"";
  const usize at = report.find(needle);
  if (at == std::string::npos) return false;
  const std::string key = "\"modelled_gbps\": ";
  const usize k = report.find(key, at);
  if (k == std::string::npos) return false;
  *out = std::atof(report.c_str() + k + key.size());
  return true;
}

std::string readFileIfAny(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {};
  std::string out;
  char buf[4096];
  usize n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  // Must precede the first Launcher: the shared pool is sized once.
  setenv("CUSZP2_WORKERS", "1", 1);

  const std::string outPath = argc > 1 ? argv[1] : "BENCH_perf.json";
  const std::string previous = readFileIfAny(outPath);

  bench::banner("perf_regression",
                "Deterministic perf baseline: 3 fields x "
                "{compress, decompress, round-trip}");

  const std::vector<std::string> datasets = {"cesm_atm", "hacc", "jetin"};
  const char* opNames[3] = {"compress", "decompress", "round_trip"};
  const usize elems = bench::fieldElems();

  std::vector<CaseResult> results;
  bool deterministic = true;
  int warns = 0;

  for (const std::string& ds : datasets) {
    const std::vector<f32> field = datagen::generateF32(ds, 0, elems);
    const u64 origBytes = field.size() * sizeof(f32);

    // Two independent passes; modelled metrics must agree bit-for-bit.
    const auto pass1 = modelOnce(field);
    const auto pass2 = modelOnce(field);
    for (usize op = 0; op < 3; ++op) {
      if (!(pass1[op] == pass2[op])) {
        std::fprintf(stderr,
                     "FAIL %s/%s: modelled metrics differ between runs "
                     "(%.17g vs %.17g GB/s)\n",
                     ds.c_str(), opNames[op], pass1[op].gbps,
                     pass2[op].gbps);
        deterministic = false;
      }
    }

    // Wall clock per operation (diagnostic; not diffed).
    core::Config cfg;
    cfg.relErrorBound = 1e-3;
    core::CompressorStream codec(cfg);
    const auto c = codec.compress<f32>(std::span<const f32>(field));
    const bench::RepeatStats wallCompress = bench::measureRepeated(
        5, [&] { codec.compress<f32>(std::span<const f32>(field)); });
    const bench::RepeatStats wallDecompress =
        bench::measureRepeated(5, [&] { codec.decompress<f32>(c.stream); });
    const bench::RepeatStats wallRoundTrip = bench::measureRepeated(5, [&] {
      const auto cc = codec.compress<f32>(std::span<const f32>(field));
      codec.decompress<f32>(cc.stream);
    });
    const f64 wallMs[3] = {wallCompress.medianSeconds * 1e3,
                           wallDecompress.medianSeconds * 1e3,
                           wallRoundTrip.medianSeconds * 1e3};

    for (usize op = 0; op < 3; ++op) {
      CaseResult r;
      r.name = ds + "/" + opNames[op];
      r.elems = field.size();
      r.ratio = pass1[op].ratio;
      r.modelledSeconds = pass1[op].seconds;
      r.modelledGBps = pass1[op].gbps;
      r.wallMsMedian = wallMs[op];
      std::printf("%-24s %8.2f GB/s modelled  ratio %6.2f  wall %7.2f ms\n",
                  r.name.c_str(), r.modelledGBps, r.ratio, r.wallMsMedian);

      f64 prior = 0.0;
      if (!previous.empty() && previousGbps(previous, r.name, &prior) &&
          prior > 0.0) {
        const f64 drift = std::fabs(r.modelledGBps - prior) / prior;
        if (drift > kTolerance) {
          std::printf("WARN %s: modelled throughput drifted %.1f%% "
                      "(%.2f -> %.2f GB/s)\n",
                      r.name.c_str(), drift * 100.0, prior, r.modelledGBps);
          ++warns;
        }
      }
      results.push_back(std::move(r));
    }
    (void)origBytes;
  }

  // service_throughput scenario: the 4-tenant mixed workload through the
  // CompressionService, batched vs. unbatched. The modelled advantage of
  // coalescing (fewer fused launches, amortized launch overhead) is the
  // number this case guards.
  {
    const std::vector<ServiceJob> jobs = serviceWorkload(elems);
    const std::vector<std::vector<f32>> fields = serviceFields(jobs);
    u64 totalElems = 0;
    for (const ServiceJob& j : jobs) totalElems += j.elems;

    const bool batchedFlag[2] = {true, false};
    const char* caseNames[2] = {"service/batched", "service/unbatched"};
    for (usize v = 0; v < 2; ++v) {
      u64 launches = 0;
      const Modelled pass1 =
          modelServiceOnce(jobs, fields, batchedFlag[v], &launches);
      const Modelled pass2 =
          modelServiceOnce(jobs, fields, batchedFlag[v], nullptr);
      if (!(pass1 == pass2)) {
        std::fprintf(stderr,
                     "FAIL %s: modelled metrics differ between runs "
                     "(%.17g vs %.17g GB/s)\n",
                     caseNames[v], pass1.gbps, pass2.gbps);
        deterministic = false;
      }
      service::ServiceConfig wcfg;
      wcfg.workers = 1;
      wcfg.startPaused = true;
      wcfg.maxBatchJobs = batchedFlag[v] ? 8 : 1;
      service::CompressionService warmSvc(wcfg);
      wallServiceOnce(warmSvc, jobs, fields);  // warm the worker's arena
      const bench::RepeatStats wall = bench::measureRepeated(
          3, [&] { wallServiceOnce(warmSvc, jobs, fields); });

      CaseResult r;
      r.name = caseNames[v];
      r.elems = totalElems;
      r.ratio = pass1.ratio;
      r.modelledSeconds = pass1.seconds;
      r.modelledGBps = pass1.gbps;
      r.wallMsMedian = wall.medianSeconds * 1e3;
      r.launches = launches;
      std::printf("%-24s %8.2f GB/s modelled  ratio %6.2f  wall %7.2f ms"
                  "  (%zu jobs, %llu launches)\n",
                  r.name.c_str(), r.modelledGBps, r.ratio, r.wallMsMedian,
                  jobs.size(), static_cast<unsigned long long>(launches));

      f64 prior = 0.0;
      if (!previous.empty() && previousGbps(previous, r.name, &prior) &&
          prior > 0.0) {
        const f64 drift = std::fabs(r.modelledGBps - prior) / prior;
        if (drift > kTolerance) {
          std::printf("WARN %s: modelled throughput drifted %.1f%% "
                      "(%.2f -> %.2f GB/s)\n",
                      r.name.c_str(), drift * 100.0, prior, r.modelledGBps);
          ++warns;
        }
      }
      results.push_back(std::move(r));
    }

    // service/batched_decompress: the same mixed workload pre-compressed
    // OUTSIDE the timed region, then decoded through the service with
    // coalescing on. Guards the decompress-side fusion: the launch count
    // must stay below the job count.
    {
      core::Config cfg;
      cfg.relErrorBound = 1e-3;
      core::CompressorStream codec(cfg);
      std::vector<std::vector<std::byte>> streams;
      streams.reserve(jobs.size());
      for (usize i = 0; i < jobs.size(); ++i) {
        streams.push_back(
            codec.compress<f32>(std::span<const f32>(fields[i])).stream);
      }

      u64 launches = 0;
      const Modelled pass1 =
          modelServiceDecompressOnce(streams, true, &launches);
      const Modelled pass2 = modelServiceDecompressOnce(streams, true,
                                                        nullptr);
      if (!(pass1 == pass2)) {
        std::fprintf(stderr,
                     "FAIL service/batched_decompress: modelled metrics "
                     "differ between runs (%.17g vs %.17g GB/s)\n",
                     pass1.gbps, pass2.gbps);
        deterministic = false;
      }
      if (launches >= jobs.size()) {
        std::fprintf(stderr,
                     "FAIL service/batched_decompress: %llu launches for "
                     "%zu jobs — decompress coalescing is not fusing\n",
                     static_cast<unsigned long long>(launches), jobs.size());
        deterministic = false;
      }
      service::ServiceConfig wcfg;
      wcfg.workers = 1;
      wcfg.startPaused = true;
      wcfg.maxBatchJobs = 8;
      service::CompressionService warmSvc(wcfg);
      wallServiceDecompressOnce(warmSvc, streams);  // warm the arena
      const bench::RepeatStats wall = bench::measureRepeated(
          3, [&] { wallServiceDecompressOnce(warmSvc, streams); });

      CaseResult r;
      r.name = "service/batched_decompress";
      r.elems = totalElems;
      r.ratio = pass1.ratio;
      r.modelledSeconds = pass1.seconds;
      r.modelledGBps = pass1.gbps;
      r.wallMsMedian = wall.medianSeconds * 1e3;
      r.launches = launches;
      std::printf("%-24s %8.2f GB/s modelled  ratio %6.2f  wall %7.2f ms"
                  "  (%zu jobs, %llu launches)\n",
                  r.name.c_str(), r.modelledGBps, r.ratio, r.wallMsMedian,
                  jobs.size(), static_cast<unsigned long long>(launches));

      f64 prior = 0.0;
      if (!previous.empty() && previousGbps(previous, r.name, &prior) &&
          prior > 0.0) {
        const f64 drift = std::fabs(r.modelledGBps - prior) / prior;
        if (drift > kTolerance) {
          std::printf("WARN %s: modelled throughput drifted %.1f%% "
                      "(%.2f -> %.2f GB/s)\n",
                      r.name.c_str(), drift * 100.0, prior, r.modelledGBps);
          ++warns;
        }
      }
      results.push_back(std::move(r));
    }

    // service/chaos: the same workload with seeded fault injection. Both
    // the modelled metrics AND the recovery counters must be identical
    // between passes — the chaos schedule is pure in (seed, jobId,
    // attempt), so any divergence is a determinism regression.
    {
      u64 rec1 = 0;
      u64 rec2 = 0;
      const Modelled pass1 = modelChaosOnce(jobs, fields, &rec1);
      const Modelled pass2 = modelChaosOnce(jobs, fields, &rec2);
      if (!(pass1 == pass2) || rec1 != rec2) {
        std::fprintf(stderr,
                     "FAIL service/chaos: runs differ (%.17g vs %.17g GB/s, "
                     "%llu vs %llu recoveries)\n",
                     pass1.gbps, pass2.gbps,
                     static_cast<unsigned long long>(rec1),
                     static_cast<unsigned long long>(rec2));
        deterministic = false;
      }
      const bench::RepeatStats wall = bench::measureRepeated(
          3, [&] { modelChaosOnce(jobs, fields, nullptr); });

      CaseResult r;
      r.name = "service/chaos";
      r.elems = totalElems;
      r.ratio = pass1.ratio;
      r.modelledSeconds = pass1.seconds;
      r.modelledGBps = pass1.gbps;
      r.wallMsMedian = wall.medianSeconds * 1e3;
      r.recoveries = rec1;
      std::printf("%-24s %8.2f GB/s modelled  ratio %6.2f  wall %7.2f ms"
                  "  (%zu jobs, %llu recoveries)\n",
                  r.name.c_str(), r.modelledGBps, r.ratio, r.wallMsMedian,
                  jobs.size(), static_cast<unsigned long long>(rec1));

      f64 prior = 0.0;
      if (!previous.empty() && previousGbps(previous, r.name, &prior) &&
          prior > 0.0) {
        const f64 drift = std::fabs(r.modelledGBps - prior) / prior;
        if (drift > kTolerance) {
          std::printf("WARN %s: modelled throughput drifted %.1f%% "
                      "(%.2f -> %.2f GB/s)\n",
                      r.name.c_str(), drift * 100.0, prior, r.modelledGBps);
          ++warns;
        }
      }
      results.push_back(std::move(r));
    }

    // cluster/failover: the same workload over a 3-shard cluster with a
    // shard killed mid-load. Both the modelled metrics AND the failover
    // count must match between passes — the paused kill drill is
    // deterministic, so any divergence is a routing/failover regression.
    {
      u64 fo1 = 0;
      u64 fo2 = 0;
      const Modelled pass1 = modelClusterFailoverOnce(jobs, fields, &fo1);
      const Modelled pass2 = modelClusterFailoverOnce(jobs, fields, &fo2);
      if (!(pass1 == pass2) || fo1 != fo2) {
        std::fprintf(stderr,
                     "FAIL cluster/failover: runs differ (%.17g vs %.17g "
                     "GB/s, %llu vs %llu failovers)\n",
                     pass1.gbps, pass2.gbps,
                     static_cast<unsigned long long>(fo1),
                     static_cast<unsigned long long>(fo2));
        deterministic = false;
      }
      if (fo1 == 0) {
        std::fprintf(stderr,
                     "FAIL cluster/failover: the killed shard produced no "
                     "failovers — the drill is not exercising recovery\n");
        deterministic = false;
      }
      const bench::RepeatStats wall = bench::measureRepeated(
          3, [&] { modelClusterFailoverOnce(jobs, fields, nullptr); });

      CaseResult r;
      r.name = "cluster/failover";
      r.elems = totalElems;
      r.ratio = pass1.ratio;
      r.modelledSeconds = pass1.seconds;
      r.modelledGBps = pass1.gbps;
      r.wallMsMedian = wall.medianSeconds * 1e3;
      r.recoveries = fo1;
      std::printf("%-24s %8.2f GB/s modelled  ratio %6.2f  wall %7.2f ms"
                  "  (%zu jobs, %llu failovers)\n",
                  r.name.c_str(), r.modelledGBps, r.ratio, r.wallMsMedian,
                  jobs.size(), static_cast<unsigned long long>(fo1));

      f64 prior = 0.0;
      if (!previous.empty() && previousGbps(previous, r.name, &prior) &&
          prior > 0.0) {
        const f64 drift = std::fabs(r.modelledGBps - prior) / prior;
        if (drift > kTolerance) {
          std::printf("WARN %s: modelled throughput drifted %.1f%% "
                      "(%.2f -> %.2f GB/s)\n",
                      r.name.c_str(), drift * 100.0, prior, r.modelledGBps);
          ++warns;
        }
      }
      results.push_back(std::move(r));
    }
  }

  // ratio/v3 scenario: the jetin field under the Auto pipeline (format
  // v3) against the same field through the v2 FLE writer (same per-block
  // CRC footer v3 always carries). The selector's per-block Huffman/RLE
  // wins are the point of format v3, so this case hard-fails the run —
  // not a warning — if the v3 stream stops being smaller than the v2 one.
  {
    const std::vector<f32> field = datagen::generateF32("jetin", 0, elems);
    core::Config v2cfg;
    v2cfg.relErrorBound = 1e-3;
    v2cfg.blockChecksums = true;
    core::Config v3cfg = v2cfg;
    v3cfg.pipeline = core::PipelineMode::Auto;

    const auto onePass = [&](const core::Config& cfg) {
      core::CompressorStream codec(cfg);
      const auto c = codec.compress<f32>(std::span<const f32>(field));
      return Modelled{c.ratio, c.profile.endToEndSeconds,
                      c.profile.endToEndGBps};
    };
    const Modelled v2a = onePass(v2cfg);
    const Modelled v3a = onePass(v3cfg);
    if (!(v2a == onePass(v2cfg)) || !(v3a == onePass(v3cfg))) {
      std::fprintf(stderr, "FAIL ratio/v3: modelled metrics differ "
                           "between runs\n");
      deterministic = false;
    }
    if (!(v3a.ratio > v2a.ratio)) {
      std::fprintf(stderr,
                   "FAIL ratio/v3: v3 auto ratio %.4f does not improve on "
                   "the v2 FLE ratio %.4f\n",
                   v3a.ratio, v2a.ratio);
      deterministic = false;
    }

    core::CompressorStream codec(v3cfg);
    const bench::RepeatStats wall = bench::measureRepeated(
        5, [&] { codec.compress<f32>(std::span<const f32>(field)); });

    CaseResult r;
    r.name = "ratio/v3";
    r.elems = field.size();
    r.ratio = v3a.ratio;
    r.modelledSeconds = v3a.seconds;
    r.modelledGBps = v3a.gbps;
    r.wallMsMedian = wall.medianSeconds * 1e3;
    std::printf("%-24s %8.2f GB/s modelled  ratio %6.2f  wall %7.2f ms"
                "  (v2 fle ratio %.2f, +%.1f%%)\n",
                r.name.c_str(), r.modelledGBps, r.ratio, r.wallMsMedian,
                v2a.ratio, 100.0 * (v3a.ratio / v2a.ratio - 1.0));

    f64 prior = 0.0;
    if (!previous.empty() && previousGbps(previous, r.name, &prior) &&
        prior > 0.0) {
      const f64 drift = std::fabs(r.modelledGBps - prior) / prior;
      if (drift > kTolerance) {
        std::printf("WARN %s: modelled throughput drifted %.1f%% "
                    "(%.2f -> %.2f GB/s)\n",
                    r.name.c_str(), drift * 100.0, prior, r.modelledGBps);
        ++warns;
      }
    }
    results.push_back(std::move(r));
  }

  // cas/dedup scenario: a repeated-timestep corpus — two tenants each put
  // eight timesteps that cycle through two unique compressed fields — so
  // the content-addressed store should collapse 16 logical objects onto 2
  // physical copies. The row hard-fails (not a warning) if the store's
  // physical-bytes reduction drops below the pinned 1.8x floor, or if the
  // occupancy/counter snapshot differs between two identical passes.
  {
    const usize casElems = elems / 4;
    core::Config cfg;
    cfg.relErrorBound = 1e-3;
    cfg.pipeline = core::PipelineMode::Auto;
    core::CompressorStream codec(cfg);
    std::vector<std::vector<std::byte>> unique;
    for (u32 i = 0; i < 2; ++i) {
      const std::vector<f32> field = datagen::generateF32("cesm_atm", i,
                                                          casElems);
      unique.push_back(
          codec.compress<f32>(std::span<const f32>(field)).stream);
    }

    u64 logicalBytes = 0;
    const auto onePass = [&]() {
      cas::BlockStore store({.chunkBytes = 16 * 1024});
      for (u32 t = 0; t < 8; ++t) {
        for (const char* tenant : {"climate", "mirror"}) {
          const std::vector<std::byte>& body = unique[t % 2];
          store.put(tenant, "step-" + std::to_string(t),
                    ConstByteSpan(body.data(), body.size()));
        }
      }
      const cas::StoreStats s = store.stats();
      logicalBytes = s.logicalBytes;
      return s;
    };
    const cas::StoreStats pass1 = onePass();
    if (!(pass1 == onePass())) {
      std::fprintf(stderr, "FAIL cas/dedup: store stats differ between "
                           "identical passes\n");
      deterministic = false;
    }
    const f64 dedup = pass1.dedupRatio();
    if (!(dedup >= 1.8)) {
      std::fprintf(stderr,
                   "FAIL cas/dedup: dedup ratio %.4f below the pinned 1.8x "
                   "floor on the repeated-timestep dataset\n",
                   dedup);
      deterministic = false;
    }

    const bench::RepeatStats wall = bench::measureRepeated(5, [&] {
      onePass();
    });

    CaseResult r;
    r.name = "cas/dedup";
    r.elems = casElems;
    r.ratio = dedup;
    r.modelledSeconds = 0.0;
    r.modelledGBps = 0.0;
    r.wallMsMedian = wall.medianSeconds * 1e3;
    std::printf("%-24s %8s           ratio %6.2f  wall %7.2f ms"
                "  (%llu logical -> %llu physical bytes)\n",
                r.name.c_str(), "-", r.ratio, r.wallMsMedian,
                static_cast<unsigned long long>(logicalBytes),
                static_cast<unsigned long long>(pass1.physicalBytes));
    results.push_back(std::move(r));
  }

  // cas/journal scenario: the cost of incremental durability. One pass
  // journals ten distinct puts (each acked behind a sync barrier), kills
  // the store, and recovers from the snapshot-less journal; the baseline
  // rewrites a full snapshot after every put — the pre-journal way to get
  // the same crash safety. The row hard-fails (not a warning) if recovery
  // loses or corrupts any acked object, if the journal's disk cost fails
  // to amortize at least 2x under the snapshot-per-put baseline, or if
  // two identical passes disagree on bytes written or recovered stats.
  {
    constexpr u32 kOps = 10;
    constexpr usize kBlobBytes = 48 * 1024;
    std::vector<std::vector<std::byte>> blobs;
    u64 x = 0x243F6A8885A308D3ull;
    for (u32 i = 0; i < kOps; ++i) {
      std::vector<std::byte> blob(kBlobBytes);
      for (usize j = 0; j < kBlobBytes; ++j) {
        x += 0x9E3779B97F4A7C15ull;
        u64 z = x;
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
        blob[j] = static_cast<std::byte>((z ^ (z >> 31)) & 0xFF);
      }
      blobs.push_back(std::move(blob));
    }

    const std::string dir =
        (std::filesystem::temp_directory_path() /
         ("cuszp2-bench-journal-" + std::to_string(::getpid())))
            .string();
    const cas::StoreConfig storeCfg{.chunkBytes = 16 * 1024};

    struct JournalPass {
      u64 journalBytes = 0;     // disk cost of the journaled run
      u64 savePerPutBytes = 0;  // disk cost of the snapshot-per-put run
      u64 replayed = 0;
      cas::StoreStats recovered;
      bool intact = true;
    };
    const auto onePass = [&] {
      JournalPass ps;
      std::filesystem::remove_all(dir);
      std::filesystem::create_directories(dir);
      const std::string index = dir + "/store.cas";
      const std::string jnl = index + ".jnl";
      {
        cas::BlockStore store(storeCfg);
        store.attachJournal(jnl);
        for (u32 i = 0; i < kOps; ++i) {
          store.put("bench", "blob-" + std::to_string(i),
                    ConstByteSpan(blobs[i]));
        }
        ps.journalBytes =
            static_cast<u64>(std::filesystem::file_size(jnl));
      }  // process death: nothing was ever snapshotted
      cas::RecoveryReport rep;
      auto store = cas::BlockStore::recover(index, jnl, storeCfg, &rep);
      ps.replayed = rep.replayedRecords;
      ps.recovered = store->stats();
      std::string err;
      if (!store->verifyAll(&err)) ps.intact = false;
      for (u32 i = 0; i < kOps; ++i) {
        if (store->get("bench", "blob-" + std::to_string(i)) != blobs[i]) {
          ps.intact = false;
        }
      }
      store.reset();

      const std::string base = dir + "/baseline.cas";
      cas::BlockStore baseline(storeCfg);
      for (u32 i = 0; i < kOps; ++i) {
        baseline.put("bench", "blob-" + std::to_string(i),
                     ConstByteSpan(blobs[i]));
        baseline.save(base);
        ps.savePerPutBytes +=
            static_cast<u64>(std::filesystem::file_size(base));
      }
      return ps;
    };

    const JournalPass pass1 = onePass();
    const JournalPass pass2 = onePass();
    if (!pass1.intact || !pass2.intact) {
      std::fprintf(stderr, "FAIL cas/journal: recovery lost or corrupted "
                           "an acknowledged put\n");
      deterministic = false;
    }
    if (pass1.journalBytes != pass2.journalBytes ||
        pass1.savePerPutBytes != pass2.savePerPutBytes ||
        pass1.replayed != pass2.replayed ||
        !(pass1.recovered == pass2.recovered)) {
      std::fprintf(stderr, "FAIL cas/journal: disk cost or recovered stats "
                           "differ between identical passes\n");
      deterministic = false;
    }
    const f64 amortize =
        pass1.journalBytes > 0
            ? static_cast<f64>(pass1.savePerPutBytes) /
                  static_cast<f64>(pass1.journalBytes)
            : 0.0;
    if (!(amortize >= 2.0)) {
      std::fprintf(stderr,
                   "FAIL cas/journal: journal amortization %.2fx below the "
                   "pinned 2x floor (journal %llu B vs snapshot-per-put "
                   "%llu B)\n",
                   amortize,
                   static_cast<unsigned long long>(pass1.journalBytes),
                   static_cast<unsigned long long>(pass1.savePerPutBytes));
      deterministic = false;
    }

    const bench::RepeatStats wall = bench::measureRepeated(5, [&] {
      onePass();
    });
    std::filesystem::remove_all(dir);

    CaseResult r;
    r.name = "cas/journal";
    r.elems = kOps * kBlobBytes;
    r.ratio = amortize;  // snapshot-per-put bytes / journaled bytes
    r.modelledSeconds = 0.0;
    r.modelledGBps = 0.0;
    r.wallMsMedian = wall.medianSeconds * 1e3;
    std::printf("%-24s %8s           ratio %6.2f  wall %7.2f ms"
                "  (%llu journal B vs %llu snapshot-per-put B, "
                "%llu replayed)\n",
                r.name.c_str(), "-", r.ratio, r.wallMsMedian,
                static_cast<unsigned long long>(pass1.journalBytes),
                static_cast<unsigned long long>(pass1.savePerPutBytes),
                static_cast<unsigned long long>(pass1.replayed));
    results.push_back(std::move(r));
  }

  // Soft wall-clock budget check: advisory WARN lines, never a failure
  // (wall time is hardware-dependent); the budget column itself is
  // required by ci_check.sh so regressions stay visible in the diff.
  for (CaseResult& r : results) {
    r.wallBudgetMs = wallBudgetMs(r.name);
    if (r.wallBudgetMs > 0.0 && r.wallMsMedian > r.wallBudgetMs) {
      std::printf("WARN perf.wall_budget %s: wall %.2f ms exceeds budget "
                  "%.2f ms\n",
                  r.name.c_str(), r.wallMsMedian, r.wallBudgetMs);
      ++warns;
    }
  }

  // Hand-rolled writer: modelled fields use %.17g so identical runs give
  // byte-identical files (JsonReport rounds for readability; this file is
  // diffed by CI).
  std::string json = "[\n";
  for (usize i = 0; i < results.size(); ++i) {
    const CaseResult& r = results[i];
    json += "  {\"name\": \"" + r.name + "\"";
    json += ", \"elems\": " + std::to_string(r.elems);
    json += ", \"ratio\": " + f64Str(r.ratio);
    json += ", \"modelled_seconds\": " + f64Str(r.modelledSeconds);
    json += ", \"modelled_gbps\": " + f64Str(r.modelledGBps);
    json += ", \"wall_ms_median\": " + f64Str(r.wallMsMedian);
    json += ", \"wall_budget_ms\": " + f64Str(r.wallBudgetMs);
    if (r.launches > 0) {
      json += ", \"launches\": " + std::to_string(r.launches);
    }
    if (r.recoveries > 0) {
      json += ", \"recoveries\": " + std::to_string(r.recoveries);
    }
    json += "}";
    if (i + 1 < results.size()) json += ",";
    json += "\n";
  }
  json += "]\n";

  std::FILE* f = std::fopen(outPath.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", outPath.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("wrote %s (%zu cases, %d drift warnings)\n", outPath.c_str(),
              results.size(), warns);

  return deterministic ? 0 : 1;
}
