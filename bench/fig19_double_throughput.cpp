// E9 — Paper Fig. 19: cuSZp2 throughput on the double-precision datasets
// (NWChem, S3D) at REL 1e-2/1e-3/1e-4.
//
// Expected shape: roughly 2x the single-precision GB/s (same integer
// pipeline, double the input bytes). Paper averages: CUSZP2-P
// 612.83/780.33, CUSZP2-O 628.54/809.71 GB/s.
#include <cstdio>

#include "bench_util.hpp"
#include "core/compressor.hpp"
#include "core/quantizer.hpp"
#include "datagen/fields.hpp"
#include "io/table.hpp"
#include "metrics/error_stats.hpp"

using namespace cuszp2;

namespace {

struct Result {
  f64 comp;
  f64 decomp;
  f64 ratio;
};

Result runMode(std::span<const f64> data, f64 rel, EncodingMode mode) {
  core::Config cfg;
  cfg.mode = mode;
  cfg.absErrorBound =
      core::Quantizer::absFromRel(rel, metrics::valueRange<f64>(data));
  const core::Compressor comp(cfg);
  const auto c = comp.compress<f64>(data);
  const auto d = comp.decompress<f64>(c.stream);
  return {c.profile.endToEndGBps, d.profile.endToEndGBps, c.ratio};
}

}  // namespace

int main() {
  bench::banner("E9 / Figure 19",
                "Double-precision throughput (NWChem + S3D)");

  const usize elems = bench::fieldElems();
  const u32 maxFields = bench::maxFieldsPerDataset();

  f64 sumPc = 0.0;
  f64 sumPd = 0.0;
  f64 sumOc = 0.0;
  f64 sumOd = 0.0;
  u32 n = 0;

  io::Table table({"dataset", "REL", "P comp", "P decomp", "O comp",
                   "O decomp"});
  for (const auto& info : datagen::doublePrecisionDatasets()) {
    for (const f64 rel : bench::relBounds()) {
      f64 pc = 0.0;
      f64 pd = 0.0;
      f64 oc = 0.0;
      f64 od = 0.0;
      const u32 fields = std::min(info.numFields, maxFields);
      for (u32 f = 0; f < fields; ++f) {
        const auto data = datagen::generateF64(info.name, f, elems);
        const auto p = runMode(data, rel, EncodingMode::Plain);
        const auto o = runMode(data, rel, EncodingMode::Outlier);
        pc += p.comp;
        pd += p.decomp;
        oc += o.comp;
        od += o.decomp;
      }
      pc /= fields;
      pd /= fields;
      oc /= fields;
      od /= fields;
      sumPc += pc;
      sumPd += pd;
      sumOc += oc;
      sumOd += od;
      ++n;
      table.addRow({info.name, bench::formatRel(rel), io::Table::gbps(pc),
                    io::Table::gbps(pd), io::Table::gbps(oc),
                    io::Table::gbps(od)});
    }
  }
  table.addRow({"AVERAGE", "-", io::Table::gbps(sumPc / n),
                io::Table::gbps(sumPd / n), io::Table::gbps(sumOc / n),
                io::Table::gbps(sumOd / n)});
  table.print();
  std::printf(
      "\nPaper reference: CUSZP2-P 612.83/780.33 GB/s, CUSZP2-O\n"
      "628.54/809.71 GB/s — about 2x the single-precision rates because\n"
      "both precisions funnel into the same integer pipeline (Sec. VI-A).\n");
  return 0;
}
