#include "bench_util.hpp"

#include <cstdio>

namespace cuszp2::bench {

void banner(const std::string& experimentId, const std::string& title) {
  std::printf("================================================================\n");
  std::printf("cuSZp2 reproduction | %s\n", experimentId.c_str());
  std::printf("%s\n", title.c_str());
  std::printf("field elems: %zu | max fields/dataset: %u\n", fieldElems(),
              maxFieldsPerDataset());
  std::printf("(throughput numbers are modelled on the device's parameter\n"
              " sheet from recorded memory/sync counters; see DESIGN.md)\n");
  std::printf("================================================================\n");
}

std::string formatRel(f64 rel) {
  char buf[32];
  if (rel >= 1e-2) {
    std::snprintf(buf, sizeof(buf), "1E-2");
  } else if (rel >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "1E-3");
  } else {
    std::snprintf(buf, sizeof(buf), "1E-4");
  }
  return buf;
}

}  // namespace cuszp2::bench
