#include "bench_util.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace cuszp2::bench {

void banner(const std::string& experimentId, const std::string& title) {
  std::printf("================================================================\n");
  std::printf("cuSZp2 reproduction | %s\n", experimentId.c_str());
  std::printf("%s\n", title.c_str());
  std::printf("field elems: %zu | max fields/dataset: %u\n", fieldElems(),
              maxFieldsPerDataset());
  std::printf("(throughput numbers are modelled on the device's parameter\n"
              " sheet from recorded memory/sync counters; see DESIGN.md)\n");
  std::printf("================================================================\n");
}

std::string formatRel(f64 rel) {
  char buf[32];
  if (rel >= 1e-2) {
    std::snprintf(buf, sizeof(buf), "1E-2");
  } else if (rel >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "1E-3");
  } else {
    std::snprintf(buf, sizeof(buf), "1E-4");
  }
  return buf;
}

RepeatStats measureRepeated(u32 reps, const std::function<void()>& fn) {
  using Clock = std::chrono::steady_clock;
  if (reps == 0) reps = 1;
  fn();  // warm-up: arenas grown, pages faulted in, pool started
  std::vector<f64> samples;
  samples.reserve(reps);
  for (u32 r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    fn();
    const auto t1 = Clock::now();
    samples.push_back(std::chrono::duration<f64>(t1 - t0).count());
  }
  std::sort(samples.begin(), samples.end());
  RepeatStats stats;
  stats.reps = reps;
  stats.minSeconds = samples.front();
  stats.maxSeconds = samples.back();
  stats.medianSeconds = reps % 2 == 1
                            ? samples[reps / 2]
                            : 0.5 * (samples[reps / 2 - 1] + samples[reps / 2]);
  return stats;
}

void JsonReport::addRow(const std::string& name, const RepeatStats& stats,
                        f64 bytesPerRep) {
  rows_.push_back({name, stats, bytesPerRep});
}

bool JsonReport::write(const std::string& path) const {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "[\n");
  for (usize i = 0; i < rows_.size(); ++i) {
    const Row& r = rows_[i];
    const f64 gbps = r.bytesPerRep > 0.0 && r.stats.medianSeconds > 0.0
                         ? r.bytesPerRep / r.stats.medianSeconds / 1e9
                         : 0.0;
    std::fprintf(f,
                 "  {\"name\": \"%s\", \"reps\": %u, \"min_ms\": %.6f, "
                 "\"median_ms\": %.6f, \"max_ms\": %.6f, "
                 "\"gbps_median\": %.4f}%s\n",
                 r.name.c_str(), r.stats.reps, r.stats.minSeconds * 1e3,
                 r.stats.medianSeconds * 1e3, r.stats.maxSeconds * 1e3, gbps,
                 i + 1 < rows_.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  return true;
}

}  // namespace cuszp2::bench
