// Supplementary — dataset character report: the structural statistics of
// every synthetic field next to the compression behaviour they induce.
// This documents why each Table III cell comes out the way it does
// (smoothness -> Outlier-FLE gain, sparsity -> zero blocks, roughness ->
// ratio ceiling), making the substitution of real SDRBench data with
// generators auditable.
#include <cstdio>

#include "baselines/cuszp2_adapter.hpp"
#include "bench_util.hpp"
#include "datagen/fields.hpp"
#include "datagen/stats.hpp"
#include "io/table.hpp"

using namespace cuszp2;

int main() {
  bench::banner("Supplementary", "Synthetic dataset character report");

  const usize elems = bench::fieldElems();

  io::Table table({"dataset", "field", "zero frac", "roughness",
                   "outlier blocks", "P ratio", "O ratio", "O/P"});
  for (const auto& info : datagen::singlePrecisionDatasets()) {
    for (u32 f = 0; f < std::min(info.numFields, 2u); ++f) {
      const auto data = datagen::generateF32(info.name, f, elems);
      const auto stats = datagen::computeFieldStats<f32>(data);
      const auto rP =
          baselines::Cuszp2Baseline::cuszp2Plain()->run(data, 1e-3);
      const auto rO =
          baselines::Cuszp2Baseline::cuszp2Outlier()->run(data, 1e-3);
      table.addRow({info.name, std::to_string(f),
                    io::Table::num(stats.zeroFraction * 100.0, 1) + "%",
                    io::Table::num(stats.roughness, 4),
                    io::Table::num(stats.outlierBlockFraction * 100.0, 1) +
                        "%",
                    io::Table::num(rP.ratio, 2), io::Table::num(rO.ratio, 2),
                    io::Table::num(rO.ratio / rP.ratio, 2) + "x"});
    }
  }
  table.print();
  std::printf(
      "\nReading guide: high outlier-block fractions (smooth data) drive\n"
      "the O/P ratio gap (paper Sec. IV-A); high zero fractions drive the\n"
      "huge sparse-dataset ratios and the memset decompression fast path;\n"
      "high roughness caps the ratio regardless of mode.\n");
  return 0;
}
