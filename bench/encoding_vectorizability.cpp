// Supplementary / Sec. IV-B + Fig. 10 — why cuSZp2 uses fixed-length
// encoding: FLE treats every element uniformly (4 consecutive elements ->
// one 128-bit instruction, no divergence), whereas Huffman emits a
// data-dependent number of bits per symbol and RLE branches per run —
// both serialize a GPU warp.
//
// This harness encodes the same quantization codes with all three codecs
// (real encoders, real ratios) and models each one's GPU throughput:
// FLE with vectorized instructions, Huffman/RLE with per-element serial
// bit emission and warp-divergence penalties.
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "core/block_codec.hpp"
#include "core/quantizer.hpp"
#include "datagen/fields.hpp"
#include "entropy/huffman.hpp"
#include "entropy/rle.hpp"
#include "gpusim/timing.hpp"
#include "io/table.hpp"
#include "metrics/error_stats.hpp"

using namespace cuszp2;

int main() {
  bench::banner("Supplementary / Sec. IV-B",
                "Encoding vectorizability: FLE vs Huffman vs RLE");

  const auto data = datagen::generateF32("cesm_atm", 0, bench::fieldElems());
  const f64 absEb =
      core::Quantizer::absFromRel(1e-3, metrics::valueRange<f32>(data));
  const core::Quantizer quantizer(absEb);
  const u64 n = data.size();
  const u64 rawBytes = n * sizeof(f32);

  // Shared front end: quantize + first-order difference -> u16 codes.
  std::vector<u16> codes(n);
  {
    i32 prev = 0;
    for (usize i = 0; i < n; ++i) {
      const i32 q = quantizer.quantize(data[i]);
      i32 d = q - prev;
      prev = q;
      d = std::clamp(d, -32767, 32767);
      codes[i] = static_cast<u16>(d + 32768);
    }
  }

  const gpusim::TimingModel model(gpusim::a100_40gb());
  io::Table table({"encoding", "ratio", "mem instr / elem",
                   "modelled enc GB/s", "control flow"});

  // ---- Fixed-length encoding (cuSZp2's choice) --------------------------
  {
    const core::BlockCodec codec(32);
    usize bytes = 0;
    std::vector<i32> quants(32);
    for (usize blk = 0; blk * 32 + 32 <= n; ++blk) {
      for (usize i = 0; i < 32; ++i) {
        quants[i] = static_cast<i32>(codes[blk * 32 + i]) - 32768;
      }
      bytes += 1 + codec.planResiduals(quants, EncodingMode::Outlier)
                       .payloadBytes;
    }
    gpusim::MemCounters mem;
    mem.noteVectorRead(rawBytes, 32);
    mem.noteVectorWrite(bytes, 32);
    mem.noteOps(n * 8);
    const auto t = model.kernel(mem, {});
    table.addRow({"Fixed-length (cuSZp2)",
                  io::Table::num(static_cast<f64>(rawBytes) / bytes, 2),
                  "0.31 (128-bit)",
                  io::Table::num(gpusim::gbps(rawBytes, t.totalSeconds), 1),
                  "uniform, no divergence"});
  }

  // ---- Huffman ------------------------------------------------------------
  {
    const auto enc = entropy::HuffmanCodec::encode(codes, 65536);
    // Variable-length emission: every output bit is a dependent shift+or;
    // warp lanes emit different counts -> divergence serializes the warp.
    const f64 avgBits =
        static_cast<f64>(enc.payload.size()) * 8.0 / static_cast<f64>(n);
    gpusim::MemCounters mem;
    mem.noteVectorRead(rawBytes, 32);
    mem.noteScalarWrite(enc.totalBytes(), 4, 32);
    mem.noteOps(static_cast<u64>(static_cast<f64>(n) *
                                 (8.0 + 6.0 * avgBits)));  // per-bit chain
    const auto t = model.kernel(mem, {});
    table.addRow({"Huffman (cuSZ-style)",
                  io::Table::num(static_cast<f64>(rawBytes) /
                                     enc.totalBytes(),
                                 2),
                  "per-bit serial",
                  io::Table::num(gpusim::gbps(rawBytes, t.totalSeconds), 1),
                  "variable-length emission"});
  }

  // ---- RLE ------------------------------------------------------------------
  {
    const auto enc = entropy::RleCodec::encode(codes);
    const auto roundTrip = entropy::RleCodec::decode(enc);
    if (roundTrip != codes) {
      std::fprintf(stderr, "RLE round trip failed\n");
      return 1;
    }
    // Run detection is a data-dependent branch per element; warp lanes
    // disagree on run boundaries (modelled 4x divergence on the op chain).
    gpusim::MemCounters mem;
    mem.noteVectorRead(rawBytes, 32);
    mem.noteScalarWrite(enc.totalBytes(), 4, 32);
    mem.noteOps(n * 8 * 4);
    const auto t = model.kernel(mem, {});
    table.addRow({"Run-length",
                  io::Table::num(static_cast<f64>(rawBytes) /
                                     enc.totalBytes(),
                                 2),
                  "branch / elem",
                  io::Table::num(gpusim::gbps(rawBytes, t.totalSeconds), 1),
                  "data-dependent branches"});
  }

  table.print();
  std::printf(
      "\nReading guide: FLE's regularity is what makes the whole cuSZp2\n"
      "pipeline vectorizable (paper Fig. 10); Huffman/RLE may compress\n"
      "comparably but their control flow forfeits the throughput that is\n"
      "the point of a GPU compressor (Sec. IV-B).\n");
  return 0;
}
