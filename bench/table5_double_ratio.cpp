// E10 — Paper Table V: compression ratios of CUSZP2-P and CUSZP2-O on the
// double-precision datasets (NWChem, S3D) at REL 1e-2/1e-3/1e-4.
//
// Expected shape: NWChem compresses extremely well with P and O nearly
// identical; on S3D (globally smooth) Outlier-FLE reaches up to ~3x
// Plain-FLE at tight bounds (paper: 13.74 vs 37.48 at 1e-4... i.e. the
// O/P gap grows as the bound tightens).
#include <cstdio>

#include "bench_util.hpp"
#include "core/compressor.hpp"
#include "core/quantizer.hpp"
#include "datagen/fields.hpp"
#include "io/table.hpp"
#include "metrics/error_stats.hpp"
#include "metrics/ratio.hpp"

using namespace cuszp2;

namespace {

f64 ratioFor(std::span<const f64> data, f64 rel, EncodingMode mode) {
  core::Config cfg;
  cfg.mode = mode;
  cfg.absErrorBound =
      core::Quantizer::absFromRel(rel, metrics::valueRange<f64>(data));
  return core::Compressor(cfg).compress<f64>(data).ratio;
}

}  // namespace

int main() {
  bench::banner("E10 / Table V", "Double-precision compression ratios");

  const usize elems = bench::fieldElems();
  const u32 maxFields = bench::maxFieldsPerDataset();

  io::Table table({"dataset", "REL", "CUSZP2-P", "CUSZP2-O", "O/P"});
  for (const auto& info : datagen::doublePrecisionDatasets()) {
    for (const f64 rel : bench::relBounds()) {
      metrics::RatioCell p;
      metrics::RatioCell o;
      for (u32 f = 0; f < std::min(info.numFields, maxFields); ++f) {
        const auto data = datagen::generateF64(info.name, f, elems);
        p.add(ratioFor(data, rel, EncodingMode::Plain));
        o.add(ratioFor(data, rel, EncodingMode::Outlier));
      }
      table.addRow({info.name, bench::formatRel(rel), p.format(), o.format(),
                    io::Table::num(o.avg() / p.avg(), 2) + "x"});
    }
  }
  table.print();
  std::printf(
      "\nPaper reference (Table V): NWChem ~82.5 at 1E-2 with P and O\n"
      "nearly identical; S3D shows Outlier-FLE reaching ~3x Plain-FLE at\n"
      "tight bounds thanks to global smoothness.\n");
  return 0;
}
