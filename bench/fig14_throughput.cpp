// E3 — Paper Fig. 14: end-to-end compression and decompression throughput
// of CUSZP2-P, CUSZP2-O, cuSZp, FZ-GPU (REL 1e-2/1e-3/1e-4) and cuZFP
// (rates 4/8/16) across the 9 single-precision datasets.
//
// Also prints the Table I design-matrix self-check (E15).
//
// Expected shape: both cuSZp2 modes lead every baseline at every setting;
// sparse datasets (JetIn, RTM early snapshots) decompress fastest thanks
// to the zero-block memset path; decompression beats compression (no
// encoding-analysis loop). The paper averages: CUSZP2-P 334.91 / 538.27,
// CUSZP2-O 329.94 / 597.29 GB/s; baselines 107-189 GB/s.
#include <cstdio>
#include <map>
#include <memory>
#include <vector>

#include "baselines/cuszp2_adapter.hpp"
#include "baselines/fzgpu.hpp"
#include "baselines/zfp.hpp"
#include "bench_util.hpp"
#include "datagen/fields.hpp"
#include "io/table.hpp"

using namespace cuszp2;

namespace {

struct Avg {
  f64 comp = 0.0;
  f64 decomp = 0.0;
  u32 n = 0;
  void add(f64 c, f64 d) {
    comp += c;
    decomp += d;
    ++n;
  }
  f64 avgComp() const { return n == 0 ? 0.0 : comp / n; }
  f64 avgDecomp() const { return n == 0 ? 0.0 : decomp / n; }
};

void printTableI() {
  std::printf("\nTable I design-matrix self-check (from code structure):\n");
  io::Table t({"compressor", "pure GPU?", "single kernel?",
               "high MB utilization?", "latency control?"});
  t.addRow({"cuSZ (hybrid)", "no", "no", "no", "-"});
  t.addRow({"MGARD-GPU (hybrid)", "no", "no", "no", "-"});
  t.addRow({"cuSZx (hybrid)", "no", "yes", "no", "-"});
  t.addRow({"cuZFP", "yes", "yes", "no", "-"});
  t.addRow({"FZ-GPU", "yes", "no (2 kernels)", "no", "no (atomics)"});
  t.addRow({"cuSZp", "yes", "yes", "no (scalar/strided)",
            "no (chained scan)"});
  t.addRow({"CUSZP2", "yes", "yes", "yes (vectorized)",
            "yes (decoupled lookback)"});
  t.print();
}

}  // namespace

int main() {
  bench::banner("E3 / Figure 14",
                "End-to-end throughput, 9 datasets x 3 error bounds");

  const usize elems = bench::fieldElems();
  const u32 maxFields = bench::maxFieldsPerDataset();

  std::map<std::string, Avg> overall;  // compressor -> average over all runs

  for (const f64 rel : bench::relBounds()) {
    std::printf("\n--- REL %s (compression | decompression, GB/s) ---\n",
                bench::formatRel(rel).c_str());
    io::Table table({"dataset", "CUSZP2-P", "CUSZP2-O", "cuSZp", "FZ-GPU",
                     "cuZFP(r8)"});
    for (const auto& info : datagen::singlePrecisionDatasets()) {
      const u32 fields = std::min(info.numFields, maxFields);
      Avg p;
      Avg o;
      Avg v1;
      Avg fz;
      Avg zf;
      for (u32 f = 0; f < fields; ++f) {
        const auto data = datagen::generateF32(info.name, f, elems);
        const auto rP = baselines::Cuszp2Baseline::cuszp2Plain()->run(data,
                                                                      rel);
        const auto rO =
            baselines::Cuszp2Baseline::cuszp2Outlier()->run(data, rel);
        const auto rV1 = baselines::Cuszp2Baseline::cuszpV1()->run(data, rel);
        const auto rFz = baselines::FzGpuBaseline().run(data, rel);
        const auto rZf = baselines::ZfpBaseline(8.0).run(data, 0.0);
        p.add(rP.compressGBps, rP.decompressGBps);
        o.add(rO.compressGBps, rO.decompressGBps);
        v1.add(rV1.compressGBps, rV1.decompressGBps);
        fz.add(rFz.compressGBps, rFz.decompressGBps);
        zf.add(rZf.compressGBps, rZf.decompressGBps);
      }
      auto cell = [](const Avg& a) {
        return io::Table::num(a.avgComp(), 1) + " | " +
               io::Table::num(a.avgDecomp(), 1);
      };
      table.addRow({info.name, cell(p), cell(o), cell(v1), cell(fz),
                    cell(zf)});
      overall["CUSZP2-P"].add(p.avgComp(), p.avgDecomp());
      overall["CUSZP2-O"].add(o.avgComp(), o.avgDecomp());
      overall["cuSZp"].add(v1.avgComp(), v1.avgDecomp());
      overall["FZ-GPU"].add(fz.avgComp(), fz.avgDecomp());
      overall["cuZFP"].add(zf.avgComp(), zf.avgDecomp());
    }
    table.print();
  }

  std::printf("\n--- Overall averages (GB/s) ---\n");
  io::Table summary({"compressor", "compression", "decompression"});
  for (const auto& [name, avg] : overall) {
    summary.addRow({name, io::Table::num(avg.avgComp(), 2),
                    io::Table::num(avg.avgDecomp(), 2)});
  }
  summary.print();
  std::printf(
      "\nPaper reference (A100): CUSZP2-P 334.91/538.27, CUSZP2-O\n"
      "329.94/597.29; baselines 107.10 (cuZFP comp) ~ 188.74 GB/s (cuSZp\n"
      "decomp). JetIn decompression peaks above 1 TB/s at REL 1e-2.\n");

  printTableI();
  return 0;
}
