// E8 — Paper Fig. 18: reconstruction quality of cuSZp2 vs cuZFP on the
// three RTM fields at matched compression ratios (~64, ~30, ~3 in the
// paper). The paper shows isosurface renderings; this harness substitutes
// quantitative stand-ins: PSNR, SSIM, max error, and iso-crossing
// fidelity at a representative isovalue (see DESIGN.md substitutions).
//
// Expected shape: at aggressive matched ratios (P1000/P2000) cuZFP's
// fixed-rate truncation corrupts structure (low SSIM / iso fidelity)
// while cuSZp2 stays error-bounded; at the mild P3000 ratio both are
// high-quality.
#include <cstdio>

#include "baselines/cuszp2_adapter.hpp"
#include "baselines/zfp.hpp"
#include "bench_util.hpp"
#include "datagen/fields.hpp"
#include "io/table.hpp"
#include "metrics/error_stats.hpp"
#include "metrics/ssim.hpp"

using namespace cuszp2;

int main() {
  bench::banner("E8 / Figure 18",
                "Quality at matched ratio: cuSZp2 vs cuZFP (RTM fields)");

  const usize elems = bench::fieldElems();
  // REL bound per field chosen so cuSZp2's ratio spans aggressive to mild,
  // mirroring the paper's ~64 / ~30 / ~3 setups.
  const f64 relForField[3] = {1e-2, 1e-3, 1e-4};

  io::Table table({"field", "ratio", "compressor", "PSNR (dB)", "SSIM",
                   "max err", "iso fidelity"});
  for (u32 f = 0; f < 3; ++f) {
    const auto data = datagen::generateF32("rtm", f, elems);
    const auto rO = baselines::Cuszp2Baseline::cuszp2Outlier()->run(
        data, relForField[f]);
    const f64 matchedRate = 32.0 / rO.ratio;
    const auto rZ =
        baselines::ZfpBaseline(std::max(0.125, matchedRate)).run(data, 0.0);

    const f64 iso = 100.0;  // representative wavefront isovalue
    auto addRow = [&](const std::string& name,
                      const baselines::RunResult& r) {
      const auto fid =
          metrics::isoCrossingFidelity<f32>(data, r.reconstructed, iso);
      table.addRow({datagen::rtmFieldNames()[f], io::Table::num(r.ratio, 1),
                    name, io::Table::num(r.error.psnrDb, 2),
                    io::Table::num(metrics::ssim<f32>(data, r.reconstructed),
                                   4),
                    io::Table::num(r.error.maxAbsError, 4),
                    io::Table::num(fid.matchRatio * 100.0, 1) + "%"});
    };
    addRow("CUSZP2 (ours)", rO);
    addRow("cuZFP", rZ);
  }
  table.print();
  std::printf(
      "\nPaper reference: at ratios ~64 and ~30 cuZFP corrupts the RTM\n"
      "isosurfaces while cuSZp2 preserves them via error control; at ~3\n"
      "both look identical to the original (Fig. 18 renderings).\n");
  return 0;
}
