// E12 — Paper Fig. 21: compatibility with lower-end NVIDIA GPUs — RTM
// P3000 throughput on RTX 3090 and RTX 3080 device models, all
// compressors, averaged over the three REL settings (cuZFP over its three
// rates).
//
// Expected shape: absolute numbers scale down with each card's bandwidth,
// but cuSZp2 keeps its ~2x lead over every baseline on every device
// (paper: 232.45/405.09 GB/s on 3090, 180.94/329.62 on 3080).
#include <cstdio>

#include "baselines/cuszp2_adapter.hpp"
#include "baselines/fzgpu.hpp"
#include "baselines/zfp.hpp"
#include "bench_util.hpp"
#include "datagen/fields.hpp"
#include "io/table.hpp"

using namespace cuszp2;

int main() {
  bench::banner("E12 / Figure 21",
                "RTM P3000 on RTX 3090 / RTX 3080 device models");

  const auto data = datagen::generateF32("rtm", 2, bench::fieldElems());

  for (const auto& device : {gpusim::rtx3090(), gpusim::rtx3080()}) {
    std::printf("\n--- %s ---\n", device.name.c_str());
    io::Table table({"compressor", "compression", "decompression"});

    auto addErrorBounded = [&](std::unique_ptr<baselines::Cuszp2Baseline>
                                   make) {
      f64 c = 0.0;
      f64 d = 0.0;
      for (const f64 rel : bench::relBounds()) {
        const auto r = make->run(data, rel);
        c += r.compressGBps;
        d += r.decompressGBps;
      }
      table.addRow({make->name(), io::Table::gbps(c / 3.0),
                    io::Table::gbps(d / 3.0)});
    };
    addErrorBounded(baselines::Cuszp2Baseline::cuszp2Plain(device));
    addErrorBounded(baselines::Cuszp2Baseline::cuszp2Outlier(device));
    addErrorBounded(baselines::Cuszp2Baseline::cuszpV1(device));
    {
      baselines::FzGpuBaseline fz(device);
      f64 c = 0.0;
      f64 d = 0.0;
      for (const f64 rel : bench::relBounds()) {
        const auto r = fz.run(data, rel);
        c += r.compressGBps;
        d += r.decompressGBps;
      }
      table.addRow({fz.name(), io::Table::gbps(c / 3.0),
                    io::Table::gbps(d / 3.0)});
    }
    {
      f64 c = 0.0;
      f64 d = 0.0;
      for (const f64 rate : {4.0, 8.0, 16.0}) {
        baselines::ZfpBaseline zfp(rate, device);
        const auto r = zfp.run(data, 0.0);
        c += r.compressGBps;
        d += r.decompressGBps;
      }
      table.addRow({"cuZFP (rates 4/8/16)", io::Table::gbps(c / 3.0),
                    io::Table::gbps(d / 3.0)});
    }
    table.print();
  }
  std::printf(
      "\nPaper reference: cuSZp2 reaches 232.45/405.09 GB/s on the 3090\n"
      "and 180.94/329.62 GB/s on the 3080, keeping ~2x over all baselines\n"
      "— the optimizations are generic across devices (Sec. VI-C).\n");
  return 0;
}
