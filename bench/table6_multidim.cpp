// E13 — Paper Table VI: rationale for 1-D processing — compression ratios
// of CUSZP2-1D/2D/3D (outlier encoding, 64-element blocks: 64 / 8x8 /
// 4x4x4) on the three RTM fields at REL 1e-2/1e-3/1e-4.
//
// Expected shape: 2-D/3-D help on the sparse early snapshot at loose
// bounds but the advantage shrinks to a few percent on the dense field at
// tight bounds — not worth the >50% throughput cost of irregular access.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "core/lorenzo_nd.hpp"
#include "datagen/fields.hpp"
#include "io/table.hpp"

using namespace cuszp2;

int main() {
  bench::banner("E13 / Table VI",
                "1D vs 2D vs 3D cuSZp2 ratios on RTM fields");

  // The ND compressor needs true 3-D geometry: derive a cube from the
  // element budget (matching the generator's own internal dims).
  const usize elems = bench::fieldElems();
  const usize nx = static_cast<usize>(std::cbrt(static_cast<f64>(elems)));
  const core::Dims3 grid{nx, nx, (elems + nx * nx - 1) / (nx * nx)};
  const usize total = grid.count();

  io::Table table({"variant", "REL", "P1000", "P2000", "P3000",
                   "comp GB/s"});
  for (const auto dims :
       {core::LorenzoDims::D1, core::LorenzoDims::D2, core::LorenzoDims::D3}) {
    for (const f64 rel : bench::relBounds()) {
      std::vector<std::string> row = {
          std::string("CUSZP2-") + core::toString(dims),
          bench::formatRel(rel)};
      f64 gbps = 0.0;
      for (u32 f = 0; f < 3; ++f) {
        auto data = datagen::generateF32("rtm", f, total);
        core::NdConfig cfg;
        cfg.dims = dims;
        cfg.relErrorBound = rel;
        const core::NdCompressor comp(cfg);
        const auto c = comp.compress<f32>(data, grid);
        row.push_back(io::Table::num(c.ratio, 2));
        gbps += c.profile.endToEndGBps;
      }
      row.push_back(io::Table::num(gbps / 3.0, 1));
      table.addRow(row);
    }
  }
  table.print();
  std::printf(
      "\nPaper reference (Table VI): e.g. P3000 at 1E-3 is 11.19 (1D) vs\n"
      "11.29 (2D) vs 10.96 (3D) — a wash; the gains concentrate in sparse\n"
      "fields at loose bounds, while multi-dimensional access patterns\n"
      "would cost >50%% throughput (Sec. VI-D). A 1-D design is also what\n"
      "nvCOMP, the industry compressor, uses.\n");
  return 0;
}
