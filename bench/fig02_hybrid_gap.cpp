// E1 — Paper Fig. 2: kernel throughput vs end-to-end throughput for
// CPU-GPU hybrid lossy compressors (cuSZ-, cuSZx-, MGARD-GPU-like).
//
// Expected shape: kernel-only bars in the tens-to-hundreds of GB/s while
// end-to-end bars collapse to single-digit GB/s (the paper reports 0.32 to
// 1.79 GB/s), because PCIe transfers and host stages dominate.
#include <cstdio>
#include <memory>

#include "baselines/hybrid.hpp"
#include "bench_util.hpp"
#include "datagen/fields.hpp"
#include "io/table.hpp"

using namespace cuszp2;

int main() {
  bench::banner("E1 / Figure 2",
                "Kernel vs end-to-end throughput of CPU-GPU hybrids");

  const auto data = datagen::generateF32("rtm", 2, bench::fieldElems());
  const f64 rel = 1e-3;

  io::Table table({"compressor", "comp kernel", "comp end-to-end",
                   "decomp kernel", "decomp end-to-end", "kernel/e2e gap"});
  for (auto kind : {baselines::HybridBaseline::Kind::CuszLike,
                    baselines::HybridBaseline::Kind::CuszxLike,
                    baselines::HybridBaseline::Kind::MgardLike}) {
    baselines::HybridBaseline hybrid(kind);
    const auto r = hybrid.run(data, rel);
    table.addRow({r.compressor, io::Table::gbps(r.compressKernelGBps),
                  io::Table::gbps(r.compressGBps),
                  io::Table::gbps(r.decompressKernelGBps),
                  io::Table::gbps(r.decompressGBps),
                  io::Table::num(r.compressKernelGBps / r.compressGBps, 1) +
                      "x"});
  }
  table.print();
  std::printf(
      "\nPaper reference: kernel up to 177.48 GB/s; end-to-end only 0.32\n"
      "(MGARD comp) to 1.79 GB/s (cuSZx comp). Kernel throughput is an\n"
      "overly optimistic metric for hybrid designs.\n");
  return 0;
}
