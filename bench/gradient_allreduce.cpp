// Supplementary / Fig. 1 — gradient allreduce with inline compression:
// the paper's motivating distributed-training scenario turned into a
// measurable experiment. A ring allreduce over P simulated GPUs exchanges
// layer gradients; the exchange runs uncompressed, with cuSZp2-O, and
// with a cuSZ-like hybrid whose CPU stage + PCIe hops are charged.
//
// Expected shape: on bandwidth-limited links, cuSZp2 compression turns
// its ratio into near-proportional speedup; the hybrid's host stages cost
// more than the transfer time they save.
#include <cstdio>

#include "baselines/hybrid.hpp"
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "core/compressor.hpp"
#include "distributed/allreduce.hpp"
#include "io/table.hpp"

using namespace cuszp2;
using distributed::ExchangeCodec;
using distributed::LinkSpec;
using distributed::RingAllreduce;

namespace {

std::vector<std::vector<f32>> makeGradients(u32 devices, usize n) {
  std::vector<std::vector<f32>> grads(devices);
  for (u32 d = 0; d < devices; ++d) {
    Rng rng(900 + d);
    grads[d].resize(n);
    for (auto& v : grads[d]) {
      v = static_cast<f32>(rng.uniform() < 0.97 ? rng.normal(0.0, 1e-4)
                                                : rng.normal(0.0, 1e-2));
    }
  }
  return grads;
}

ExchangeCodec hybridCodec(f64 relEb) {
  ExchangeCodec codec;
  codec.name = "cuSZ (hybrid)";
  codec.transform = [relEb](std::span<const f32> values,
                            std::vector<f32>& reconstructed, u64& wireBytes,
                            f64& codecSeconds) {
    baselines::HybridBaseline hybrid(baselines::HybridBaseline::Kind::CuszLike);
    const auto r = hybrid.run(values, relEb);
    const u64 rawBytes = values.size() * sizeof(f32);
    wireBytes = static_cast<u64>(static_cast<f64>(rawBytes) / r.ratio);
    codecSeconds = static_cast<f64>(rawBytes) / (r.compressGBps * 1e9) +
                   static_cast<f64>(rawBytes) / (r.decompressGBps * 1e9);
    reconstructed = r.reconstructed;
  };
  return codec;
}

}  // namespace

int main() {
  bench::banner("Supplementary / Figure 1",
                "Gradient ring-allreduce with inline compression");

  const u32 devices = 8;
  // One full layer per device (chunks must be large enough that per-hop
  // kernel launches amortize, as in real fused collectives).
  const usize n = bench::fieldElems() / devices * devices;
  const auto grads = makeGradients(devices, n);
  const f64 absEb = 1e-5;  // tight enough for training stability

  io::Table table(
      {"link", "codec", "wire MB", "collective time", "algbw", "speedup"});
  struct Link {
    const char* name;
    f64 gbps;
  };
  for (const Link link : {Link{"PCIe-class 12 GB/s", 12.0},
                          Link{"NVLink-class 50 GB/s", 50.0}}) {
    LinkSpec spec;
    spec.bandwidthGBps = link.gbps;
    const RingAllreduce ring(devices, spec);

    // The stream codec holds one warm CompressorStream across all hops and
    // compresses each ring step's P sends through a single batched launch.
    const auto raw = ring.run(grads, distributed::rawCodec());
    const auto ours = ring.run(grads, distributed::cuszp2StreamCodec(absEb),
                               absEb);
    const auto hybrid = ring.run(grads, hybridCodec(1e-4), absEb);

    auto addRow = [&](const char* codecName,
                      const distributed::AllreduceResult& r) {
      char timeBuf[32];
      std::snprintf(timeBuf, sizeof(timeBuf), "%.1f us", r.seconds * 1e6);
      table.addRow({link.name, codecName,
                    io::Table::num(static_cast<f64>(r.wireBytes) / 1e6, 2),
                    timeBuf, io::Table::gbps(r.algbwGBps),
                    io::Table::num(raw.seconds / r.seconds, 2) + "x"});
    };
    addRow("uncompressed", raw);
    addRow("cuSZp2-O", ours);
    addRow("cuSZ (hybrid)", hybrid);
  }
  table.print();
  std::printf(
      "\nReading guide: the pure-GPU compressor converts its ratio into\n"
      "collective speedup on bandwidth-limited links; the hybrid's CPU\n"
      "stages and PCIe hops cost more time than its ratio saves — the\n"
      "paper's Figs. 1/2 argument, end to end.\n");
  return 0;
}
