// Supplementary — throughput vs field size: shows where the modelled
// curves leave the launch/sync-dominated regime and approach their
// asymptotes. Explains why MB-scale reproduction fields understate the
// paper's GB-scale numbers (EXPERIMENTS.md "known deviations").
#include <cstdio>

#include "bench_util.hpp"
#include "core/compressor.hpp"
#include "core/quantizer.hpp"
#include "datagen/fields.hpp"
#include "io/table.hpp"
#include "metrics/error_stats.hpp"

using namespace cuszp2;

int main() {
  bench::banner("Supplementary",
                "Throughput vs field size (launch/sync amortization)");

  io::Table table({"elements", "MB", "comp GB/s", "decomp GB/s",
                   "random access GB/s"});
  for (const usize elems :
       {usize{1} << 16, usize{1} << 18, usize{1} << 20, usize{1} << 22,
        usize{1} << 24}) {
    const auto data = datagen::generateF32("miranda", 0, elems);
    core::Config cfg;
    cfg.absErrorBound =
        core::Quantizer::absFromRel(1e-3, metrics::valueRange<f32>(data));
    const core::Compressor comp(cfg);
    const auto c = comp.compress<f32>(data);
    const auto d = comp.decompress<f32>(c.stream);
    const auto header = core::StreamHeader::parse(c.stream);
    const auto ra =
        comp.decompressBlocks<f32>(c.stream, header.numBlocks() / 2, 1);
    table.addRow({std::to_string(elems),
                  io::Table::num(elems * 4.0 / 1e6, 1),
                  io::Table::num(c.profile.endToEndGBps, 1),
                  io::Table::num(d.profile.endToEndGBps, 1),
                  io::Table::num(ra.profile.endToEndGBps, 1)});
  }
  table.print();
  std::printf(
      "\nReading guide: the 6 us launch overhead and the per-tile sync\n"
      "chain dominate below ~1 MB and amortize above ~16 MB; the paper's\n"
      "multi-GB fields sit on the asymptote, which is why its absolute\n"
      "GB/s run above this harness's defaults.\n");
  return 0;
}
