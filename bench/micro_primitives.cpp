// Microbenchmarks of the primitives behind the paper's designs:
// quantization, block planning/encoding/decoding, bit-plane packing, and
// the two device-level scan protocols. These measure real host CPU time
// (unlike the figure harnesses, which report modelled device time) and
// exist to catch performance regressions in the library itself.
//
// The binary first prints a hot-path table — median-of-N wall times for
// repeated compress/decompress of a large field plus before/after rows
// for the fused quantize+diff and branch-free bit-plane kernels — and
// writes it to BENCH_micro.json for CI. The google-benchmark suite runs
// afterwards (normal --benchmark_* flags apply).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/crc32.hpp"
#include "common/rng.hpp"
#include "core/block_codec.hpp"
#include "core/fle.hpp"
#include "core/segmented.hpp"
#include "core/compressor.hpp"
#include "core/quantizer.hpp"
#include "core/stream.hpp"
#include "datagen/fields.hpp"
#include "entropy/huffman.hpp"
#include "entropy/rle.hpp"
#include "io/table.hpp"
#include "metrics/ssim.hpp"
#include "gpusim/launcher.hpp"
#include "scan/device_scan.hpp"

namespace {

using namespace cuszp2;

std::vector<f32> benchData(usize n) {
  return datagen::generateF32("miranda", 0, n);
}

void BM_Quantize(benchmark::State& state) {
  const auto data = benchData(1 << 16);
  const core::Quantizer q(1e-3);
  for (auto _ : state) {
    i32 acc = 0;
    for (f32 v : data) acc += q.quantize(v);
    benchmark::DoNotOptimize(acc);
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(data.size() * 4));
}
BENCHMARK(BM_Quantize);

void BM_BlockPlan(benchmark::State& state) {
  const core::BlockCodec codec(32);
  Rng rng(1);
  std::vector<i32> quants(32);
  i32 v = 1000;
  for (auto& qv : quants) {
    v += static_cast<i32>(rng.uniformInt(7)) - 3;
    qv = v;
  }
  for (auto _ : state) {
    auto plan = codec.plan(quants, EncodingMode::Outlier);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_BlockPlan);

void BM_BlockEncodeDecode(benchmark::State& state) {
  const core::BlockCodec codec(32);
  Rng rng(2);
  std::vector<i32> quants(32);
  i32 v = 1000;
  for (auto& qv : quants) {
    v += static_cast<i32>(rng.uniformInt(31)) - 15;
    qv = v;
  }
  const auto plan = codec.plan(quants, EncodingMode::Outlier);
  std::vector<std::byte> payload(plan.payloadBytes);
  std::vector<i32> rec(32);
  for (auto _ : state) {
    codec.encode(quants, plan, payload.data());
    codec.decode(plan.header, payload.data(), rec);
    benchmark::DoNotOptimize(rec.data());
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) * 128);
}
BENCHMARK(BM_BlockEncodeDecode);

void BM_PackPlanes(benchmark::State& state) {
  const u32 fl = static_cast<u32>(state.range(0));
  Rng rng(3);
  std::vector<u32> vals(32);
  for (auto& x : vals) {
    x = static_cast<u32>(rng.next()) & ((1u << fl) - 1);
  }
  std::vector<std::byte> buf(fl * 4);
  for (auto _ : state) {
    core::packPlanes(vals, fl, buf.data());
    benchmark::DoNotOptimize(buf.data());
  }
}
BENCHMARK(BM_PackPlanes)->Arg(1)->Arg(4)->Arg(8)->Arg(16)->Arg(31);

void BM_DeviceScan(benchmark::State& state) {
  const auto algo = state.range(0) == 0 ? scan::Algorithm::ChainedScan
                                        : scan::Algorithm::DecoupledLookback;
  Rng rng(4);
  std::vector<u64> values(1 << 16);
  for (auto& v : values) v = rng.uniformInt(200);
  gpusim::Launcher launcher;
  for (auto _ : state) {
    auto result = scan::deviceExclusiveScan(values, 128, algo, launcher);
    benchmark::DoNotOptimize(result.exclusive.data());
  }
  state.SetLabel(scan::toString(algo));
}
BENCHMARK(BM_DeviceScan)->Arg(0)->Arg(1);

void BM_EndToEndCompress(benchmark::State& state) {
  const auto data = benchData(1 << 18);
  core::Config cfg;
  cfg.absErrorBound = 1e-3;
  const core::Compressor comp(cfg);
  for (auto _ : state) {
    auto c = comp.compress<f32>(data);
    benchmark::DoNotOptimize(c.stream.data());
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(data.size() * 4));
}
BENCHMARK(BM_EndToEndCompress);

void BM_Crc32(benchmark::State& state) {
  std::vector<std::byte> data(1 << 20);
  Rng rng(5);
  for (auto& b : data) b = static_cast<std::byte>(rng.uniformInt(256));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32(data));
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(data.size()));
}
BENCHMARK(BM_Crc32);

void BM_HuffmanEncode(benchmark::State& state) {
  Rng rng(6);
  std::vector<u16> symbols(1 << 16);
  for (auto& s : symbols) {
    s = rng.uniform() < 0.9 ? 0 : static_cast<u16>(rng.uniformInt(512));
  }
  for (auto _ : state) {
    auto enc = entropy::HuffmanCodec::encode(symbols, 512);
    benchmark::DoNotOptimize(enc.payload.data());
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(symbols.size() * 2));
}
BENCHMARK(BM_HuffmanEncode);

void BM_RleEncode(benchmark::State& state) {
  Rng rng(7);
  std::vector<u16> symbols(1 << 16);
  u16 current = 0;
  for (auto& s : symbols) {
    if (rng.uniform() < 0.05) current = static_cast<u16>(rng.uniformInt(64));
    s = current;
  }
  for (auto _ : state) {
    auto enc = entropy::RleCodec::encode(symbols);
    benchmark::DoNotOptimize(enc.runs.data());
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(symbols.size() * 2));
}
BENCHMARK(BM_RleEncode);

void BM_SegmentedAppend(benchmark::State& state) {
  const auto data = benchData(1 << 16);
  core::Config cfg;
  cfg.absErrorBound = 1e-3;
  for (auto _ : state) {
    core::SegmentedCompressor<f32> sc(cfg, 1 << 14);
    sc.append(data);
    auto container = sc.finish();
    benchmark::DoNotOptimize(container.data());
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(data.size() * 4));
}
BENCHMARK(BM_SegmentedAppend);

void BM_Ssim(benchmark::State& state) {
  const auto a = benchData(1 << 16);
  auto b = a;
  b[100] += 0.01f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(metrics::ssim<f32>(a, b));
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(a.size() * 4));
}
BENCHMARK(BM_Ssim);

// ---- Hot-path table -------------------------------------------------------
// Median-of-N wall times of the end-to-end hot path and the two tightened
// inner kernels, each next to its pre-optimization counterpart. The rows
// land in BENCH_micro.json so CI can diff medians across commits.

void runHotPath() {
  // ~16 MB of f32 unless the user overrides the field size.
  const usize n = std::getenv("CUSZP2_BENCH_ELEMS") != nullptr
                      ? bench::fieldElems()
                      : usize{1} << 22;
  u32 reps = 9;
  if (const char* env = std::getenv("CUSZP2_BENCH_REPS")) {
    const long long v = std::atoll(env);
    if (v > 0) reps = static_cast<u32>(v);
  }
  const auto data = benchData(n);
  const f64 fieldBytes = static_cast<f64>(n) * sizeof(f32);
  core::Config cfg;
  cfg.absErrorBound = 1e-3;

  bench::JsonReport report;
  io::Table table({"hot path", "min", "median", "max", "median GB/s"});
  auto ms = [](f64 s) { return io::Table::num(s * 1e3, 2) + " ms"; };
  auto add = [&](const std::string& name, f64 bytesPerRep,
                 const std::function<void()>& fn) {
    const auto stats = bench::measureRepeated(reps, fn);
    report.addRow(name, stats, bytesPerRep);
    table.addRow({name, ms(stats.minSeconds), ms(stats.medianSeconds),
                  ms(stats.maxSeconds),
                  io::Table::gbps(bytesPerRep / stats.medianSeconds / 1e9)});
  };

  // End-to-end: the one-shot wrapper (thread-local stream) and an
  // explicitly held stream; both hit the zero-allocation steady state
  // after the warm-up rep.
  const core::Compressor oneshot(cfg);
  add("oneshot_roundtrip", 2.0 * fieldBytes, [&] {
    const auto c = oneshot.compress<f32>(data);
    const auto d = oneshot.decompress<f32>(c.stream);
    benchmark::DoNotOptimize(d.data.data());
  });
  core::CompressorStream stream(cfg);
  add("stream_roundtrip", 2.0 * fieldBytes, [&] {
    const auto c = stream.compress<f32>(std::span<const f32>(data));
    const auto d = stream.decompress<f32>(c.stream);
    benchmark::DoNotOptimize(d.data.data());
  });
  add("stream_compress", fieldBytes, [&] {
    const auto c = stream.compress<f32>(std::span<const f32>(data));
    benchmark::DoNotOptimize(c.stream.data());
  });
  const auto compressed = stream.compress<f32>(std::span<const f32>(data));
  add("stream_decompress", fieldBytes, [&] {
    const auto d = stream.decompress<f32>(compressed.stream);
    benchmark::DoNotOptimize(d.data.data());
  });

  // Fused quantize+diff vs the pre-optimization two-pass form (quantize
  // into scratch, then a separate differencing sweep).
  const core::Quantizer quantizer(1e-3);
  std::vector<i32> residuals(n);
  std::vector<i32> scratch(n);
  add("quantize_diff_two_pass(before)", fieldBytes, [&] {
    for (usize i = 0; i < n; ++i) scratch[i] = quantizer.quantize(data[i]);
    i32 prev = 0;
    for (usize i = 0; i < n; ++i) {
      residuals[i] = scratch[i] - prev;
      prev = scratch[i];
    }
    benchmark::DoNotOptimize(residuals.data());
  });
  add("quantize_diff_fused(after)", fieldBytes, [&] {
    core::quantizeDiffBlock<f32>(quantizer, data, residuals);
    benchmark::DoNotOptimize(residuals.data());
  });

  // Branch-free bit-plane pack/unpack vs the reference bit-at-a-time
  // loops, amortized over many 32-value blocks at a mid-range bit width.
  constexpr u32 kFl = 16;
  constexpr usize kBlocks = 1u << 14;
  Rng rng(42);
  std::vector<u32> vals(32);
  for (auto& v : vals) v = static_cast<u32>(rng.next()) & ((1u << kFl) - 1);
  std::vector<std::byte> planes(kFl * core::planeBytes(32));
  std::vector<u32> unpacked(32);
  const f64 packBytes = static_cast<f64>(kBlocks) * 32 * sizeof(u32);
  add("pack_planes_reference(before)", packBytes, [&] {
    for (usize b = 0; b < kBlocks; ++b) {
      core::packPlanesReference(vals, kFl, planes.data());
    }
    benchmark::DoNotOptimize(planes.data());
  });
  add("pack_planes_branch_free(after)", packBytes, [&] {
    for (usize b = 0; b < kBlocks; ++b) {
      core::packPlanes(vals, kFl, planes.data());
    }
    benchmark::DoNotOptimize(planes.data());
  });
  add("unpack_planes_reference(before)", packBytes, [&] {
    for (usize b = 0; b < kBlocks; ++b) {
      core::unpackPlanesReference(planes.data(), kFl, unpacked);
    }
    benchmark::DoNotOptimize(unpacked.data());
  });
  add("unpack_planes_branch_free(after)", packBytes, [&] {
    for (usize b = 0; b < kBlocks; ++b) {
      core::unpackPlanes(planes.data(), kFl, unpacked);
    }
    benchmark::DoNotOptimize(unpacked.data());
  });

  std::printf("Hot path, %zu elements, median of %u warm reps "
              "(host wall time):\n", n, reps);
  table.print();
  if (report.write("BENCH_micro.json")) {
    std::printf("\nwrote BENCH_micro.json\n\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  runHotPath();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
