// Google-benchmark microbenchmarks of the primitives behind the paper's
// designs: quantization, block planning/encoding/decoding, bit-plane
// packing, and the two device-level scan protocols. These measure real
// host CPU time (unlike the figure harnesses, which report modelled device
// time) and exist to catch performance regressions in the library itself.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/crc32.hpp"
#include "common/rng.hpp"
#include "core/block_codec.hpp"
#include "core/fle.hpp"
#include "core/segmented.hpp"
#include "core/compressor.hpp"
#include "core/quantizer.hpp"
#include "datagen/fields.hpp"
#include "entropy/huffman.hpp"
#include "entropy/rle.hpp"
#include "metrics/ssim.hpp"
#include "gpusim/launcher.hpp"
#include "scan/device_scan.hpp"

namespace {

using namespace cuszp2;

std::vector<f32> benchData(usize n) {
  return datagen::generateF32("miranda", 0, n);
}

void BM_Quantize(benchmark::State& state) {
  const auto data = benchData(1 << 16);
  const core::Quantizer q(1e-3);
  for (auto _ : state) {
    i32 acc = 0;
    for (f32 v : data) acc += q.quantize(v);
    benchmark::DoNotOptimize(acc);
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(data.size() * 4));
}
BENCHMARK(BM_Quantize);

void BM_BlockPlan(benchmark::State& state) {
  const core::BlockCodec codec(32);
  Rng rng(1);
  std::vector<i32> quants(32);
  i32 v = 1000;
  for (auto& qv : quants) {
    v += static_cast<i32>(rng.uniformInt(7)) - 3;
    qv = v;
  }
  for (auto _ : state) {
    auto plan = codec.plan(quants, EncodingMode::Outlier);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_BlockPlan);

void BM_BlockEncodeDecode(benchmark::State& state) {
  const core::BlockCodec codec(32);
  Rng rng(2);
  std::vector<i32> quants(32);
  i32 v = 1000;
  for (auto& qv : quants) {
    v += static_cast<i32>(rng.uniformInt(31)) - 15;
    qv = v;
  }
  const auto plan = codec.plan(quants, EncodingMode::Outlier);
  std::vector<std::byte> payload(plan.payloadBytes);
  std::vector<i32> rec(32);
  for (auto _ : state) {
    codec.encode(quants, plan, payload.data());
    codec.decode(plan.header, payload.data(), rec);
    benchmark::DoNotOptimize(rec.data());
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) * 128);
}
BENCHMARK(BM_BlockEncodeDecode);

void BM_PackPlanes(benchmark::State& state) {
  const u32 fl = static_cast<u32>(state.range(0));
  Rng rng(3);
  std::vector<u32> vals(32);
  for (auto& x : vals) {
    x = static_cast<u32>(rng.next()) & ((1u << fl) - 1);
  }
  std::vector<std::byte> buf(fl * 4);
  for (auto _ : state) {
    core::packPlanes(vals, fl, buf.data());
    benchmark::DoNotOptimize(buf.data());
  }
}
BENCHMARK(BM_PackPlanes)->Arg(1)->Arg(4)->Arg(8)->Arg(16)->Arg(31);

void BM_DeviceScan(benchmark::State& state) {
  const auto algo = state.range(0) == 0 ? scan::Algorithm::ChainedScan
                                        : scan::Algorithm::DecoupledLookback;
  Rng rng(4);
  std::vector<u64> values(1 << 16);
  for (auto& v : values) v = rng.uniformInt(200);
  gpusim::Launcher launcher;
  for (auto _ : state) {
    auto result = scan::deviceExclusiveScan(values, 128, algo, launcher);
    benchmark::DoNotOptimize(result.exclusive.data());
  }
  state.SetLabel(scan::toString(algo));
}
BENCHMARK(BM_DeviceScan)->Arg(0)->Arg(1);

void BM_EndToEndCompress(benchmark::State& state) {
  const auto data = benchData(1 << 18);
  core::Config cfg;
  cfg.absErrorBound = 1e-3;
  const core::Compressor comp(cfg);
  for (auto _ : state) {
    auto c = comp.compress<f32>(data);
    benchmark::DoNotOptimize(c.stream.data());
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(data.size() * 4));
}
BENCHMARK(BM_EndToEndCompress);

void BM_Crc32(benchmark::State& state) {
  std::vector<std::byte> data(1 << 20);
  Rng rng(5);
  for (auto& b : data) b = static_cast<std::byte>(rng.uniformInt(256));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32(data));
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(data.size()));
}
BENCHMARK(BM_Crc32);

void BM_HuffmanEncode(benchmark::State& state) {
  Rng rng(6);
  std::vector<u16> symbols(1 << 16);
  for (auto& s : symbols) {
    s = rng.uniform() < 0.9 ? 0 : static_cast<u16>(rng.uniformInt(512));
  }
  for (auto _ : state) {
    auto enc = entropy::HuffmanCodec::encode(symbols, 512);
    benchmark::DoNotOptimize(enc.payload.data());
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(symbols.size() * 2));
}
BENCHMARK(BM_HuffmanEncode);

void BM_RleEncode(benchmark::State& state) {
  Rng rng(7);
  std::vector<u16> symbols(1 << 16);
  u16 current = 0;
  for (auto& s : symbols) {
    if (rng.uniform() < 0.05) current = static_cast<u16>(rng.uniformInt(64));
    s = current;
  }
  for (auto _ : state) {
    auto enc = entropy::RleCodec::encode(symbols);
    benchmark::DoNotOptimize(enc.runs.data());
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(symbols.size() * 2));
}
BENCHMARK(BM_RleEncode);

void BM_SegmentedAppend(benchmark::State& state) {
  const auto data = benchData(1 << 16);
  core::Config cfg;
  cfg.absErrorBound = 1e-3;
  for (auto _ : state) {
    core::SegmentedCompressor<f32> sc(cfg, 1 << 14);
    sc.append(data);
    auto container = sc.finish();
    benchmark::DoNotOptimize(container.data());
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(data.size() * 4));
}
BENCHMARK(BM_SegmentedAppend);

void BM_Ssim(benchmark::State& state) {
  const auto a = benchData(1 << 16);
  auto b = a;
  b[100] += 0.01f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(metrics::ssim<f32>(a, b));
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(a.size() * 4));
}
BENCHMARK(BM_Ssim);

}  // namespace

BENCHMARK_MAIN();
