// Supplementary — rate-distortion curves (paper Observation III states
// cuSZp2 "exhibits the best rate-distortion curves among GPU error-bounded
// lossy compressors"; Sec. V-D argues it from ratio dominance at equal
// reconstruction). This harness prints PSNR-vs-bitrate series for
// CUSZP2-O, cuSZp (plain FLE), FZ-GPU, and cuZFP on one field so the claim
// is checkable numerically.
#include <cstdio>

#include "baselines/cuszp2_adapter.hpp"
#include "baselines/fzgpu.hpp"
#include "baselines/zfp.hpp"
#include "bench_util.hpp"
#include "datagen/fields.hpp"
#include "io/table.hpp"

using namespace cuszp2;

int main() {
  bench::banner("Supplementary / Sec. V-D",
                "Rate-distortion curves (bits/value vs PSNR)");

  const auto data = datagen::generateF32("cesm_atm", 0, bench::fieldElems());

  io::Table table({"compressor", "setting", "bits/value", "PSNR (dB)"});
  // Error-bounded compressors: sweep REL bounds; the same bound gives the
  // same PSNR, so the curve separation comes from bitrate alone.
  const f64 bounds[] = {3e-2, 1e-2, 3e-3, 1e-3, 3e-4, 1e-4};
  for (const f64 rel : bounds) {
    char setting[32];
    std::snprintf(setting, sizeof(setting), "REL %.0e", rel);
    {
      const auto r = baselines::Cuszp2Baseline::cuszp2Outlier()->run(data,
                                                                     rel);
      table.addRow({"CUSZP2-O", setting, io::Table::num(32.0 / r.ratio, 3),
                    io::Table::num(r.error.psnrDb, 2)});
    }
    {
      const auto r = baselines::Cuszp2Baseline::cuszpV1()->run(data, rel);
      table.addRow({"cuSZp", setting, io::Table::num(32.0 / r.ratio, 3),
                    io::Table::num(r.error.psnrDb, 2)});
    }
    {
      const auto r = baselines::FzGpuBaseline().run(data, rel);
      table.addRow({"FZ-GPU", setting, io::Table::num(32.0 / r.ratio, 3),
                    io::Table::num(r.error.psnrDb, 2)});
    }
  }
  for (const f64 rate : {1.0, 2.0, 4.0, 8.0}) {
    char setting[32];
    std::snprintf(setting, sizeof(setting), "rate %g", rate);
    const auto r = baselines::ZfpBaseline(rate).run(data, 0.0);
    table.addRow({"cuZFP", setting, io::Table::num(rate, 3),
                  io::Table::num(r.error.psnrDb, 2)});
  }
  table.print();
  std::printf(
      "\nReading guide: at equal PSNR (same REL bound), CUSZP2-O spends\n"
      "fewer bits/value than cuSZp and FZ-GPU => its R-D curve dominates\n"
      "(Observation III). cuZFP trades along its own transform-coding\n"
      "curve, strong at high rates, collapsing at low ones (Fig. 18).\n");
  return 0;
}
