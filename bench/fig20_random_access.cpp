// E11 — Paper Fig. 20: throughput of random-accessing one arbitrary data
// block from the compressed stream, per dataset, at REL 1e-4.
//
// Expected shape: TB-level throughput relative to the original data size
// (paper: 1010.07 GB/s average, 793 ~ 1305 GB/s), because only the 1-byte-
// per-block offset array is scanned plus a single payload decode.
#include <cstdio>

#include "bench_util.hpp"
#include "core/compressor.hpp"
#include "core/quantizer.hpp"
#include "datagen/fields.hpp"
#include "io/table.hpp"
#include "metrics/error_stats.hpp"

using namespace cuszp2;

int main() {
  bench::banner("E11 / Figure 20",
                "Random access of one block, REL 1E-4");

  // Random access amortizes per-launch overhead over the offset-array
  // scan only; use a larger field so the modelled numbers approach the
  // paper's asymptotic TB-level regime.
  const usize elems = bench::fieldElems() * 4;
  f64 sum = 0.0;
  u32 n = 0;

  io::Table table({"dataset", "random-access throughput",
                   "full-decode throughput", "speedup"});
  for (const auto& info : datagen::singlePrecisionDatasets()) {
    const auto data = datagen::generateF32(info.name, 0, elems);
    core::Config cfg;
    cfg.absErrorBound =
        core::Quantizer::absFromRel(1e-4, metrics::valueRange<f32>(data));
    const core::Compressor comp(cfg);
    const auto c = comp.compress<f32>(data);
    const auto header = core::StreamHeader::parse(c.stream);

    // One arbitrary block (deterministically mid-stream).
    const u64 blk = header.numBlocks() / 2;
    const auto range = comp.decompressBlocks<f32>(c.stream, blk, 1);
    const auto full = comp.decompress<f32>(c.stream);

    sum += range.profile.endToEndGBps;
    ++n;
    table.addRow({info.name, io::Table::gbps(range.profile.endToEndGBps),
                  io::Table::gbps(full.profile.endToEndGBps),
                  io::Table::num(range.profile.endToEndGBps /
                                     full.profile.endToEndGBps,
                                 1) +
                      "x"});
  }
  table.addRow({"AVERAGE", io::Table::gbps(sum / n), "-", "-"});
  table.print();
  std::printf(
      "\nPaper reference: 1010.07 GB/s on average (793.14 on SCALE to\n"
      "1305.32 on JetIn); accessing multiple blocks and random-access\n"
      "writes behave similarly (Sec. VI-B).\n");
  return 0;
}
