// E14 — Paper Sec. VI-E: breakdown of cuSZp2's throughput gains by
// individually disabling each design: vectorized memory access and
// decoupled-lookback latency hiding. (Inline PTX and loop unrolling
// contribute <3% in the paper and are below this model's resolution.)
//
// Expected shape: memory optimization contributes the larger share
// (paper: 56.23%) and latency hiding most of the rest (41.29%).
#include <cstdio>

#include "baselines/cuszp2_adapter.hpp"
#include "bench_util.hpp"
#include "datagen/fields.hpp"
#include "io/table.hpp"

using namespace cuszp2;

namespace {

core::Config variant(bool vectorized, bool lookback) {
  core::Config cfg;
  cfg.mode = EncodingMode::Plain;  // isolate the throughput designs
  cfg.vectorizedAccess = vectorized;
  cfg.syncAlgorithm = lookback ? scan::Algorithm::DecoupledLookback
                               : scan::Algorithm::ChainedScan;
  return cfg;
}

}  // namespace

int main() {
  bench::banner("E14 / Sec. VI-E",
                "Ablation: -vectorization / -lookback / -both");

  const usize elems = bench::fieldElems();
  const u32 maxFields = bench::maxFieldsPerDataset();
  const f64 rel = 1e-3;

  struct Cfg {
    const char* name;
    bool vec;
    bool lb;
  };
  const Cfg variants[] = {
      {"full cuSZp2 (vec + lookback)", true, true},
      {"- vectorized access", false, true},
      {"- decoupled lookback", true, false},
      {"- both (cuSZp v1)", false, false},
  };

  f64 gbps[4] = {0, 0, 0, 0};
  u32 n = 0;
  for (const auto& info : datagen::singlePrecisionDatasets()) {
    for (u32 f = 0; f < std::min(info.numFields, maxFields); ++f) {
      const auto data = datagen::generateF32(info.name, f, elems);
      for (int v = 0; v < 4; ++v) {
        baselines::Cuszp2Baseline compressor(
            variants[v].name, variant(variants[v].vec, variants[v].lb));
        gbps[v] += compressor.run(data, rel).compressGBps;
      }
      ++n;
    }
  }
  for (auto& g : gbps) g /= n;

  io::Table table({"variant", "avg compression", "vs full"});
  for (int v = 0; v < 4; ++v) {
    table.addRow({variants[v].name, io::Table::gbps(gbps[v]),
                  io::Table::num(gbps[v] / gbps[0] * 100.0, 1) + "%"});
  }
  table.print();

  // Contribution split, attributing the full-vs-none gain to each design
  // by its solo removal cost (the paper's methodology).
  const f64 totalGain = gbps[0] - gbps[3];
  const f64 vecLoss = gbps[0] - gbps[1];
  const f64 lbLoss = gbps[0] - gbps[2];
  if (totalGain > 0 && vecLoss + lbLoss > 0) {
    std::printf(
        "\nContribution to the throughput gain over the unoptimized\n"
        "baseline: memory optimization %.1f%%, latency hiding %.1f%%.\n",
        vecLoss / (vecLoss + lbLoss) * 100.0,
        lbLoss / (vecLoss + lbLoss) * 100.0);
  }
  std::printf(
      "\nPaper reference: memory optimization 56.23%%, latency hiding\n"
      "41.29%%; inline PTX + loop unrolling <3%% (Sec. VI-E).\n");

  // Predictor ablation: a second-order difference cannot beat the paper's
  // first-order design under the single-outlier block format (the r_1
  // residual pins the fixed length either way) — structural evidence for
  // the design choice.
  std::printf("\n--- Predictor ablation (ratio, REL 1E-3) ---\n");
  io::Table pred({"dataset", "first-order", "second-order", "2nd/1st"});
  for (const char* name : {"cesm_atm", "hacc", "miranda", "qmcpack"}) {
    const auto data = datagen::generateF32(name, 0, elems);
    auto ratioFor = [&](Predictor p) {
      core::Config cfg;
      cfg.relErrorBound = rel;
      cfg.predictor = p;
      baselines::Cuszp2Baseline c("pred", cfg);
      return c.run(data, rel).ratio;
    };
    const f64 r1 = ratioFor(Predictor::FirstOrder);
    const f64 r2 = ratioFor(Predictor::SecondOrder);
    pred.addRow({name, io::Table::num(r1, 2), io::Table::num(r2, 2),
                 io::Table::num(r2 / r1, 2) + "x"});
  }
  pred.print();
  std::printf(
      "\nReading guide: deeper prediction lands at or below parity here\n"
      "because the block format exempts only one residual from the fixed\n"
      "length — first-order + Outlier-FLE is the right pairing.\n");
  return 0;
}
