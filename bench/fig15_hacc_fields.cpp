// E4 — Paper Fig. 15: CUSZP2-O vs CUSZP2-P on all 6 HACC fields.
//
// Expected shape: on the smooth position fields (xx/yy/zz) Outlier-FLE
// roughly doubles the ratio, so CUSZP2-O writes far fewer bytes and can
// even beat CUSZP2-P in throughput despite the extra selection work (the
// paper measures e.g. 380.36 vs 315.64 GB/s on xx). On the velocity
// fields the two modes stay close.
#include <cstdio>
#include <vector>

#include "baselines/cuszp2_adapter.hpp"
#include "bench_util.hpp"
#include "core/stream.hpp"
#include "datagen/fields.hpp"
#include "io/table.hpp"

using namespace cuszp2;

int main() {
  bench::banner("E4 / Figure 15", "CUSZP2-O vs CUSZP2-P on 6 HACC fields");

  const usize elems = bench::fieldElems();
  const f64 rel = 1e-3;

  io::Table table({"field", "P comp", "O comp", "P decomp", "O decomp",
                   "P ratio", "O ratio"});
  for (u32 f = 0; f < 6; ++f) {
    const auto data = datagen::generateF32("hacc", f, elems);
    const auto rP = baselines::Cuszp2Baseline::cuszp2Plain()->run(data, rel);
    const auto rO = baselines::Cuszp2Baseline::cuszp2Outlier()->run(data,
                                                                    rel);
    table.addRow({datagen::haccFieldNames()[f],
                  io::Table::gbps(rP.compressGBps),
                  io::Table::gbps(rO.compressGBps),
                  io::Table::gbps(rP.decompressGBps),
                  io::Table::gbps(rO.decompressGBps),
                  io::Table::num(rP.ratio, 2), io::Table::num(rO.ratio, 2)});
  }
  table.print();
  std::printf(
      "\nPaper reference: on smooth fields CUSZP2-O's ~2x ratio advantage\n"
      "reduces bytes written enough to raise throughput despite the extra\n"
      "encoding-selection computation (Sec. V-B).\n");

  // ---- Batched multi-field launch ---------------------------------------
  // All 6 fields of the snapshot in one batched launch: one latch and one
  // task-submission pass over the shared worker pool instead of 6 separate
  // kernel dispatches (CompressorStream::compressBatch). Host wall time is
  // what changes — the modelled per-field device time is unaffected.
  {
    std::vector<std::vector<f32>> fields;
    std::vector<std::span<const f32>> views;
    for (u32 f = 0; f < 6; ++f) {
      fields.push_back(datagen::generateF32("hacc", f, elems));
      views.emplace_back(fields.back());
    }
    core::Config cfg;
    cfg.absErrorBound = 1e-3;
    core::CompressorStream stream(cfg);

    const auto sequential = bench::measureRepeated(5, [&] {
      for (const auto& v : views) stream.compress<f32>(v);
    });
    const auto batched = bench::measureRepeated(5, [&] {
      stream.compressBatch<f32>(views);
    });
    std::printf(
        "\nAll 6 fields, one warm stream (host wall, median of 5):\n"
        "  sequential launches: %8.2f ms\n"
        "  one batched launch:  %8.2f ms  (%.2fx)\n",
        sequential.medianSeconds * 1e3, batched.medianSeconds * 1e3,
        sequential.medianSeconds / batched.medianSeconds);
  }
  return 0;
}
