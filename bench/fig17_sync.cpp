// E6 — Paper Fig. 17: device-level synchronization throughput — fine-tuned
// decoupled lookback (cuSZp2) vs the state-of-the-art single-pass plain
// chained scan (cuSZp / StreamScan) on every dataset.
//
// Expected shape: lookback sustains TB-level sync throughput, ~2.4x the
// chained scan (paper: 846.85 GB/s average, 2.41x).
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/block_codec.hpp"
#include "core/quantizer.hpp"
#include "datagen/fields.hpp"
#include "gpusim/timing.hpp"
#include "io/table.hpp"
#include "metrics/error_stats.hpp"
#include "scan/device_scan.hpp"

using namespace cuszp2;

namespace {

/// Builds the real per-tile compressed-length array for a field — the
/// actual prefix-sum input of the compression kernel.
std::vector<u64> tileLengths(const std::vector<f32>& data, f64 rel) {
  const f64 absEb =
      core::Quantizer::absFromRel(rel, metrics::valueRange<f32>(data));
  const core::Quantizer q(absEb);
  const core::BlockCodec codec(32);
  const usize numBlocks = (data.size() + 31) / 32;
  std::vector<u64> lengths(numBlocks, 0);
  std::vector<i32> quants(32, 0);
  for (usize blk = 0; blk < numBlocks; ++blk) {
    const usize first = blk * 32;
    const usize last = std::min(data.size(), first + 32);
    for (usize e = first; e < last; ++e) {
      quants[e - first] = q.quantize(data[e]);
    }
    for (usize e = last; e < first + 32; ++e) {
      quants[e - first] = quants[last - first - 1];
    }
    lengths[blk] = codec.plan(quants, EncodingMode::Outlier).payloadBytes;
  }
  return lengths;
}

}  // namespace

int main() {
  bench::banner("E6 / Figure 17",
                "Sync throughput: decoupled lookback vs chained scan");

  const usize elems = bench::fieldElems();
  const gpusim::TimingModel model(gpusim::a100_40gb());
  gpusim::Launcher launcher;

  io::Table table({"dataset", "chained scan", "reduce-then-scan",
                   "decoupled lookback", "speedup vs chained"});
  f64 sumChained = 0.0;
  f64 sumRts = 0.0;
  f64 sumLookback = 0.0;
  u32 n = 0;
  for (const auto& info : datagen::singlePrecisionDatasets()) {
    const auto data = datagen::generateF32(info.name, 0, elems);
    const auto lengths = tileLengths(data, 1e-3);
    const u64 dataBytes = data.size() * sizeof(f32);

    const auto chained = scan::deviceExclusiveScan(
        lengths, 128, scan::Algorithm::ChainedScan, launcher);
    auto rts = scan::deviceExclusiveScan(
        lengths, 128, scan::Algorithm::ReduceThenScan, launcher);
    // The scan's own tiles stand in for compression tiles: charge the
    // re-staging at the real per-tile data coverage (128 blocks x 32
    // floats).
    rts.launch.sync.tileDataBytes = 128 * 32 * sizeof(f32);
    const auto lookback = scan::deviceExclusiveScan(
        lengths, 128, scan::Algorithm::DecoupledLookback, launcher);

    const f64 gChained =
        gpusim::gbps(dataBytes, model.syncSeconds(chained.launch.sync));
    const f64 gRts =
        gpusim::gbps(dataBytes, model.syncSeconds(rts.launch.sync));
    const f64 gLookback =
        gpusim::gbps(dataBytes, model.syncSeconds(lookback.launch.sync));
    sumChained += gChained;
    sumRts += gRts;
    sumLookback += gLookback;
    ++n;
    table.addRow({info.name, io::Table::gbps(gChained),
                  io::Table::gbps(gRts), io::Table::gbps(gLookback),
                  io::Table::num(gLookback / gChained, 2) + "x"});
  }
  table.addRow({"AVERAGE", io::Table::gbps(sumChained / n),
                io::Table::gbps(sumRts / n),
                io::Table::gbps(sumLookback / n),
                io::Table::num(sumLookback / sumChained, 2) + "x"});
  table.print();
  std::printf(
      "\nPaper reference: 846.85 GB/s average for the fine-tuned decoupled\n"
      "lookback, 2.41x the single-pass plain chained scan.\n");
  return 0;
}
