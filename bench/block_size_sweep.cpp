// Supplementary — block-size selection: the paper fixes the block size at
// 32 because it is "the overall best choice in balancing high throughput
// and high compression ratio" (Sec. V-A). This harness sweeps block sizes
// and prints the ratio/throughput trade-off that motivates 32.
#include <cstdio>

#include "bench_util.hpp"
#include "core/compressor.hpp"
#include "core/quantizer.hpp"
#include "datagen/fields.hpp"
#include "io/table.hpp"
#include "metrics/error_stats.hpp"

using namespace cuszp2;

int main() {
  bench::banner("Supplementary / Sec. V-A",
                "Block-size sweep: ratio vs throughput");

  const usize elems = bench::fieldElems();

  io::Table table({"block size", "avg ratio", "avg comp GB/s",
                   "avg decomp GB/s", "offset overhead"});
  for (const u32 bs : {8u, 16u, 32u, 64u, 128u, 256u}) {
    f64 ratio = 0.0;
    f64 comp = 0.0;
    f64 decomp = 0.0;
    u32 n = 0;
    for (const auto& info : datagen::singlePrecisionDatasets()) {
      const auto data = datagen::generateF32(info.name, 0, elems);
      core::Config cfg;
      cfg.blockSize = bs;
      cfg.absErrorBound =
          core::Quantizer::absFromRel(1e-3, metrics::valueRange<f32>(data));
      const core::Compressor compressor(cfg);
      const auto c = compressor.compress<f32>(data);
      const auto d = compressor.decompress<f32>(c.stream);
      ratio += c.ratio;
      comp += c.profile.endToEndGBps;
      decomp += d.profile.endToEndGBps;
      ++n;
    }
    char overhead[32];
    std::snprintf(overhead, sizeof(overhead), "1 byte / %u elems", bs);
    table.addRow({std::to_string(bs), io::Table::num(ratio / n, 2),
                  io::Table::num(comp / n, 1), io::Table::num(decomp / n, 1),
                  overhead});
  }
  table.print();
  std::printf(
      "\nReading guide: small blocks adapt the fixed length tightly but\n"
      "pay one offset byte per block and more per-block bookkeeping; large\n"
      "blocks amortize overhead but a single rough value inflates a whole\n"
      "block's fixed length. 32 is the paper's balance point.\n");
  return 0;
}
