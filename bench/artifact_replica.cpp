// Artifact-fidelity replica: emits the same output structure as the SC'24
// artifact's `1-execution.py` wrapper (AD/AE appendix), so results can be
// eyeballed against the appendix's reference transcript line for line —
// per dataset: GSZ-P / GSZ-O compression & decompression throughput and
// max/min/avg compression ratios at one REL bound.
//
// Usage: artifact_replica [1E-2|1E-3|1E-4]   (default 1E-3)
#include <cstdio>
#include <cstring>
#include <string>

#include "baselines/cuszp2_adapter.hpp"
#include "bench_util.hpp"
#include "datagen/fields.hpp"
#include "metrics/ratio.hpp"

using namespace cuszp2;

int main(int argc, char** argv) {
  f64 rel = 1e-3;
  std::string relName = "1e-3";
  if (argc > 1) {
    if (std::strcmp(argv[1], "1E-2") == 0 ||
        std::strcmp(argv[1], "1e-2") == 0) {
      rel = 1e-2;
      relName = "1e-2";
    } else if (std::strcmp(argv[1], "1E-4") == 0 ||
               std::strcmp(argv[1], "1e-4") == 0) {
      rel = 1e-4;
      relName = "1e-4";
    }
  }

  bench::banner("Artifact replica (AE appendix)",
                "1-execution.py-format output at REL " + relName);

  const usize elems = bench::fieldElems();
  const u32 maxFields = bench::maxFieldsPerDataset();

  for (const auto& info : datagen::singlePrecisionDatasets()) {
    struct ModeStats {
      f64 comp = 0.0;
      f64 decomp = 0.0;
      metrics::RatioCell ratios;
    };
    ModeStats p;
    ModeStats o;
    const u32 fields = std::min(info.numFields, maxFields);
    for (u32 f = 0; f < fields; ++f) {
      const auto data = datagen::generateF32(info.name, f, elems);
      const auto rP =
          baselines::Cuszp2Baseline::cuszp2Plain()->run(data, rel);
      const auto rO =
          baselines::Cuszp2Baseline::cuszp2Outlier()->run(data, rel);
      p.comp += rP.compressGBps;
      p.decomp += rP.decompressGBps;
      p.ratios.add(rP.ratio);
      o.comp += rO.compressGBps;
      o.decomp += rO.decompressGBps;
      o.ratios.add(rO.ratio);
    }
    std::printf("=====\n");
    std::printf("Done with Execution GSZ-P and GSZ-O on %s under %s\n",
                info.name.c_str(), relName.c_str());
    std::printf("GSZ-P    compression throughput: %f GB/s\n",
                p.comp / fields);
    std::printf("GSZ-P    decompression throughput: %f GB/s\n",
                p.decomp / fields);
    std::printf("GSZ-P    max compression ratio: %f\n", p.ratios.max());
    std::printf("GSZ-P    min compression ratio: %f\n", p.ratios.min());
    std::printf("GSZ-P    avg compression ratio: %f\n", p.ratios.avg());
    std::printf("\n");
    std::printf("GSZ-O    compression throughput: %f GB/s\n",
                o.comp / fields);
    std::printf("GSZ-O    decompression throughput: %f GB/s\n",
                o.decomp / fields);
    std::printf("GSZ-O    max compression ratio: %f\n", o.ratios.max());
    std::printf("GSZ-O    min compression ratio: %f\n", o.ratios.min());
    std::printf("GSZ-O    avg compression ratio: %f\n", o.ratios.avg());
    std::printf("=====\n");
  }
  return 0;
}
