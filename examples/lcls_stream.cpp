// Scenario: reducing data-stream intensity at a light source (paper
// Sec. I-A). The LCLS free-electron laser acquires X-ray detector frames
// at ~250 GB/s — beyond any CPU compressor. This example streams a
// sequence of detector-like frames through cuSZp2 and checks whether the
// modelled device throughput keeps up with the acquisition rate, then
// demonstrates random access into an archived compressed frame (paper
// Sec. VI-B: analysts fetch regions of interest without full decode).
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "core/compressor.hpp"
#include "core/quantizer.hpp"
#include "io/table.hpp"
#include "metrics/error_stats.hpp"

using namespace cuszp2;

namespace {

/// Detector-like frame: mostly dark (readout noise) with bright Bragg
/// peaks — sparse, like the paper's JetIn regime.
std::vector<f32> makeFrame(usize n, u64 seed) {
  Rng rng(seed);
  std::vector<f32> frame(n, 0.0f);
  for (auto& v : frame) {
    const f64 noise = rng.normal(0.0, 0.8);
    v = noise > 2.0 ? static_cast<f32>(noise) : 0.0f;  // thresholded dark
  }
  const usize peaks = n / 5000;
  for (usize p = 0; p < peaks; ++p) {
    const usize center = rng.uniformInt(n);
    const f64 intensity = rng.uniform(500.0, 5000.0);
    for (usize off = 0; off < 16 && center + off < n; ++off) {
      frame[center + off] +=
          static_cast<f32>(intensity * std::exp(-0.2 * (f64)(off * off)));
    }
  }
  return frame;
}

}  // namespace

int main() {
  std::printf("LCLS-style stream-reduction scenario (paper Sec. I-A):\n"
              "X-ray frames arrive at ~250 GB/s; compression must keep\n"
              "up on the GPU or frames are dropped.\n\n");

  const usize frameElems = 1 << 20;
  const f64 acquisitionGBps = 250.0;
  const f64 rel = 1e-3;

  core::Config cfg;
  cfg.mode = EncodingMode::Outlier;

  io::Table table({"frame", "ratio", "comp GB/s", "keeps up?",
                   "max err vs bound"});
  f64 sumGBps = 0.0;
  const u32 frames = 5;
  for (u32 frame = 0; frame < frames; ++frame) {
    const auto data = makeFrame(frameElems, 7000 + frame);
    cfg.absErrorBound =
        core::Quantizer::absFromRel(rel, metrics::valueRange<f32>(data));
    const core::Compressor compressor(cfg);
    const auto c = compressor.compress<f32>(data);
    const auto d = compressor.decompress<f32>(c.stream);
    const auto stats = metrics::computeErrorStats<f32>(data, d.data);
    sumGBps += c.profile.endToEndGBps;
    table.addRow({std::to_string(frame), io::Table::num(c.ratio, 1),
                  io::Table::gbps(c.profile.endToEndGBps),
                  c.profile.endToEndGBps >= acquisitionGBps ? "yes" : "NO",
                  io::Table::num(stats.maxAbsError, 5) + " <= " +
                      io::Table::num(cfg.absErrorBound, 5)});
  }
  table.print();
  std::printf("\naverage modelled compression throughput: %.1f GB/s "
              "(acquisition: %.0f GB/s)\n",
              sumGBps / frames, acquisitionGBps);

  // Region-of-interest fetch from the archived compressed frame.
  {
    const auto data = makeFrame(frameElems, 7000);
    cfg.absErrorBound =
        core::Quantizer::absFromRel(rel, metrics::valueRange<f32>(data));
    const core::Compressor compressor(cfg);
    const auto c = compressor.compress<f32>(data);
    const auto header = core::StreamHeader::parse(c.stream);
    const u64 roiBlock = header.numBlocks() / 3;
    const auto roi = compressor.decompressBlocks<f32>(c.stream, roiBlock, 8);
    std::printf("\nROI fetch: blocks [%llu, %llu) -> %zu samples at "
                "%.1f GB/s effective (offset-array scan + 8 payload\n"
                "decodes only; paper Fig. 20 reports ~1 TB/s).\n",
                static_cast<unsigned long long>(roiBlock),
                static_cast<unsigned long long>(roiBlock + 8),
                roi.values.size(), roi.profile.endToEndGBps);
  }
  return 0;
}
