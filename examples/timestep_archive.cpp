// Scenario: in-situ archiving of a running simulation. A (toy) 1-D
// advection-diffusion solver emits a field every K steps; each snapshot
// streams through a SegmentedCompressor with bounded memory, and the
// finished containers are packed into a named Archive — the full
// production loop: simulate -> compress inline -> archive -> reopen ->
// analyze a region without decompressing everything.
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "core/segmented.hpp"
#include "io/archive.hpp"
#include "io/table.hpp"
#include "metrics/error_stats.hpp"

using namespace cuszp2;

namespace {

/// Explicit advection-diffusion step with a source term.
void simulationStep(std::vector<f32>& field, f64 t) {
  const usize n = field.size();
  std::vector<f32> next(n);
  for (usize i = 0; i < n; ++i) {
    const f32 left = field[(i + n - 1) % n];
    const f32 right = field[(i + 1) % n];
    const f32 advect = field[i] - 0.2f * (field[i] - left);
    const f32 diffuse = 0.1f * (left - 2.0f * field[i] + right);
    const f32 source = static_cast<f32>(
        0.01 * std::sin(0.002 * static_cast<f64>(i) + 0.1 * t));
    next[i] = advect + diffuse + source;
  }
  field = std::move(next);
}

}  // namespace

int main() {
  std::printf("In-situ timestep archive: simulate -> compress inline ->\n"
              "archive -> reopen -> region query.\n\n");

  const usize n = 1 << 18;
  const u32 snapshots = 5;
  const u32 stepsPerSnapshot = 20;

  // Initial condition: a localized pulse.
  std::vector<f32> field(n, 0.0f);
  for (usize i = n / 2 - 500; i < n / 2 + 500; ++i) {
    const f64 x = (static_cast<f64>(i) - static_cast<f64>(n) / 2) / 200.0;
    field[i] = static_cast<f32>(std::exp(-x * x));
  }

  core::Config cfg;
  cfg.mode = EncodingMode::Outlier;
  cfg.absErrorBound = 1e-4;
  cfg.checksum = true;  // archival data gets integrity stamps

  io::ArchiveWriter archive;
  std::vector<std::vector<f32>> originals;
  io::Table progress({"snapshot", "raw MB", "compressed MB", "ratio"});
  f64 t = 0.0;
  for (u32 snap = 0; snap < snapshots; ++snap) {
    for (u32 s = 0; s < stepsPerSnapshot; ++s) {
      simulationStep(field, t);
      t += 1.0;
    }
    originals.push_back(field);

    // Stream the snapshot through the segmented compressor in 64K-element
    // chunks (bounded memory even for huge fields).
    core::SegmentedCompressor<f32> sc(cfg, 1 << 16);
    for (usize pos = 0; pos < n; pos += 1 << 15) {
      sc.append(std::span<const f32>(field.data() + pos,
                                     std::min<usize>(1 << 15, n - pos)));
    }
    const auto container = sc.finish();
    const std::string name = "step_" + std::to_string((snap + 1) *
                                                      stepsPerSnapshot);
    progress.addRow({name, io::Table::num(n * 4.0 / 1e6, 2),
                     io::Table::num(container.size() / 1e6, 2),
                     io::Table::num(n * 4.0 / container.size(), 2)});
    archive.addField(name, container);
  }
  const auto archiveBytes = archive.finalize();
  progress.print();
  std::printf("\narchive total: %.2f MB for %u snapshots\n",
              archiveBytes.size() / 1e6, snapshots);

  // ---- Reopen and analyze -------------------------------------------------
  const io::ArchiveReader reader(archiveBytes);
  std::printf("\nreopened archive with %zu snapshots: ", reader.fieldCount());
  for (const auto& name : reader.fieldNames()) {
    std::printf("%s ", name.c_str());
  }
  std::printf("\n");

  // Verify the last snapshot against the live field.
  {
    const core::SegmentedReader<f32> segments(
        reader.field("step_" + std::to_string(snapshots *
                                              stepsPerSnapshot)));
    const auto rec = segments.all();
    const auto stats =
        metrics::computeErrorStats<f32>(originals.back(), rec);
    std::printf("\nlast snapshot: max error %.2e (bound %.2e) -> %s\n",
                stats.maxAbsError, cfg.absErrorBound,
                stats.withinBoundFp(cfg.absErrorBound, Precision::F32)
                    ? "Pass error check!"
                    : "FAILED");
  }

  // Region query: decode only the segment containing the pulse center.
  {
    const core::SegmentedReader<f32> segments(reader.field("step_20"));
    const usize centerSegment = (n / 2) / (1 << 16);
    const auto region = segments.segment(centerSegment);
    f32 peak = 0.0f;
    for (f32 v : region) peak = std::max(peak, v);
    std::printf("region query: decoded segment %zu only (%zu of %zu "
                "elements); pulse peak there = %.3f\n",
                centerSegment, region.size(), static_cast<usize>(n), peak);
  }
  return 0;
}
