// Scenario: compressing gradients in distributed LLM/DNN training — the
// motivating example of the paper's Fig. 1. A layer's gradient tensor
// lives on the GPU; before it crosses to the next device it is compressed
// in place. The example contrasts a pure-GPU compressor (cuSZp2) with a
// CPU-GPU hybrid (cuSZ-like) on the same gradients, showing why the
// hybrid's kernel throughput is meaningless for training step time.
#include <cstdio>
#include <vector>

#include "baselines/hybrid.hpp"
#include "common/rng.hpp"
#include "core/compressor.hpp"
#include "core/quantizer.hpp"
#include "io/table.hpp"
#include "metrics/error_stats.hpp"

using namespace cuszp2;

namespace {

/// Synthetic layer gradients: zero-mean, heavy concentration near zero
/// with rare large entries — the standard shape of DNN gradients.
std::vector<f32> makeGradients(usize n, u64 seed) {
  Rng rng(seed);
  std::vector<f32> g(n);
  for (auto& v : g) {
    const f64 u = rng.uniform();
    if (u < 0.97) {
      v = static_cast<f32>(rng.normal(0.0, 1e-4));
    } else {
      v = static_cast<f32>(rng.normal(0.0, 1e-2));
    }
  }
  return g;
}

}  // namespace

int main() {
  std::printf("Gradient-exchange scenario (paper Fig. 1): 3 layers of a\n"
              "model-parallel network exchange gradients every step.\n\n");

  const usize gradElems = 1 << 20;  // 4 MB per layer
  const f64 rel = 1e-3;

  io::Table table({"layer", "compressor", "ratio", "comp GB/s (e2e)",
                   "exchange bytes", "step share"});

  f64 pureTotalSeconds = 0.0;
  f64 hybridTotalSeconds = 0.0;
  for (u32 layer = 0; layer < 3; ++layer) {
    const auto grads = makeGradients(gradElems, 100 + layer);
    const u64 rawBytes = grads.size() * sizeof(f32);

    // Pure-GPU path: cuSZp2-O.
    core::Config cfg;
    cfg.mode = EncodingMode::Outlier;
    cfg.absErrorBound =
        core::Quantizer::absFromRel(rel, metrics::valueRange<f32>(grads));
    const core::Compressor compressor(cfg);
    const auto c = compressor.compress<f32>(grads);
    pureTotalSeconds += c.profile.endToEndSeconds;
    table.addRow({"layer " + std::to_string(layer), "cuSZp2-O",
                  io::Table::num(c.ratio, 2),
                  io::Table::gbps(c.profile.endToEndGBps),
                  std::to_string(c.stream.size()),
                  io::Table::num(c.profile.endToEndSeconds * 1e6, 1) +
                      " us"});

    // Hybrid path: cuSZ-like (kernel fast, end-to-end slow).
    baselines::HybridBaseline hybrid(baselines::HybridBaseline::Kind::CuszLike);
    const auto h = hybrid.run(grads, rel);
    const f64 hybridSeconds =
        static_cast<f64>(rawBytes) / (h.compressGBps * 1e9);
    hybridTotalSeconds += hybridSeconds;
    table.addRow({"layer " + std::to_string(layer), "cuSZ (hybrid)",
                  io::Table::num(h.ratio, 2),
                  io::Table::gbps(h.compressGBps),
                  std::to_string(static_cast<u64>(rawBytes / h.ratio)),
                  io::Table::num(hybridSeconds * 1e6, 1) + " us"});
  }
  table.print();

  std::printf("\nPer-step compression cost across all 3 layers:\n"
              "  pure GPU (cuSZp2-O): %.1f us\n"
              "  CPU-GPU hybrid:      %.1f us  (%.0fx slower)\n",
              pureTotalSeconds * 1e6, hybridTotalSeconds * 1e6,
              hybridTotalSeconds / pureTotalSeconds);
  std::printf("\nAny CPU computation or PCIe hop in the compression path\n"
              "multiplies training time — the case for pure-GPU designs\n"
              "(paper Secs. I-A and II).\n");
  return 0;
}
