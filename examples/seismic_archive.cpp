// Scenario: archiving reverse-time-migration (RTM) pressure snapshots
// (paper Sec. I + Fig. 18). A seismic imaging run produces a sequence of
// wavefield snapshots; the archive must trade ratio against fidelity of
// the isosurfaces interpreters look at. This example sweeps error bounds
// on the three RTM snapshots, prints the rate-quality table, and compares
// the multi-dimensional variants on the same data (paper Table VI).
#include <cstdio>
#include <cmath>

#include "core/compressor.hpp"
#include "core/lorenzo_nd.hpp"
#include "core/quantizer.hpp"
#include "datagen/fields.hpp"
#include "io/table.hpp"
#include "metrics/error_stats.hpp"
#include "metrics/ssim.hpp"

using namespace cuszp2;

int main() {
  std::printf("Seismic RTM archive scenario: choosing an error bound for\n"
              "wavefield snapshots (quality table + 1D/2D/3D choice).\n\n");

  const usize elems = 1 << 19;

  std::printf("--- Rate-quality sweep (cuSZp2-O, 1-D) ---\n");
  io::Table quality({"field", "REL", "ratio", "PSNR (dB)", "SSIM",
                     "iso fidelity"});
  for (u32 f = 0; f < 3; ++f) {
    const auto data = datagen::generateF32("rtm", f, elems);
    for (const f64 rel : {1e-2, 1e-3, 1e-4}) {
      core::Config cfg;
      cfg.mode = EncodingMode::Outlier;
      cfg.absErrorBound =
          core::Quantizer::absFromRel(rel, metrics::valueRange<f32>(data));
      const core::Compressor comp(cfg);
      const auto c = comp.compress<f32>(data);
      const auto d = comp.decompress<f32>(c.stream);
      const auto stats = metrics::computeErrorStats<f32>(data, d.data);
      const auto fid =
          metrics::isoCrossingFidelity<f32>(data, d.data, 100.0);
      char relBuf[16];
      std::snprintf(relBuf, sizeof(relBuf), "%.0e", rel);
      quality.addRow({datagen::rtmFieldNames()[f], relBuf,
                      io::Table::num(c.ratio, 1),
                      io::Table::num(stats.psnrDb, 1),
                      io::Table::num(metrics::ssim<f32>(data, d.data), 4),
                      io::Table::num(fid.matchRatio * 100.0, 1) + "%"});
    }
  }
  quality.print();

  std::printf("\n--- 1D vs 2D vs 3D on P3000 (paper Table VI) ---\n");
  const usize nx = static_cast<usize>(std::cbrt(static_cast<f64>(elems)));
  const core::Dims3 grid{nx, nx, (elems + nx * nx - 1) / (nx * nx)};
  const auto p3000 = datagen::generateF32("rtm", 2, grid.count());
  io::Table nd({"variant", "ratio @ REL 1E-3"});
  for (const auto dims :
       {core::LorenzoDims::D1, core::LorenzoDims::D2, core::LorenzoDims::D3}) {
    core::NdConfig cfg;
    cfg.dims = dims;
    cfg.relErrorBound = 1e-3;
    const core::NdCompressor comp(cfg);
    nd.addRow({core::toString(dims),
               io::Table::num(comp.compress<f32>(p3000, grid).ratio, 2)});
  }
  nd.print();
  std::printf("\nThe 2-D/3-D ratio edge is within a few percent at this\n"
              "bound — not worth >50%% throughput (paper Sec. VI-D), so\n"
              "the archive uses the 1-D pipeline.\n");
  return 0;
}
