// Quickstart: compress a floating-point field with cuSZp2, decompress it,
// and verify the error bound — the equivalent of the paper artifact's
// `./gsz_p vx.f32 1e-3` run.
//
// Usage:
//   quickstart                      (self-generates a HACC-like vx field)
//   quickstart <file.f32> <relEb>   (compress a raw SDRBench-style file)
#include <cstdio>
#include <string>

#include "core/compressor.hpp"
#include "core/quantizer.hpp"
#include "datagen/fields.hpp"
#include "io/raw.hpp"
#include "metrics/error_stats.hpp"

using namespace cuszp2;

int main(int argc, char** argv) {
  f64 rel = 1e-3;
  std::vector<f32> data;
  if (argc >= 2) {
    data = io::readRaw<f32>(argv[1]);
    if (argc >= 3) rel = std::stod(argv[2]);
    std::printf("loaded %zu floats from %s\n", data.size(), argv[1]);
  } else {
    data = datagen::generateF32("hacc", 3, 1 << 20);  // vx-like field
    std::printf("no input file given; generated a HACC-like vx field "
                "(%zu floats)\n",
                data.size());
  }

  // Configure: outlier mode (cuSZp2-O), REL error bound resolved against
  // the field's value range, exactly like the paper's artifact.
  core::Config cfg;
  cfg.mode = EncodingMode::Outlier;
  cfg.absErrorBound =
      core::Quantizer::absFromRel(rel, metrics::valueRange<f32>(data));

  const core::Compressor compressor(cfg);
  const auto compressed = compressor.compress<f32>(data);
  const auto decompressed = compressor.decompress<f32>(compressed.stream);

  const auto stats =
      metrics::computeErrorStats<f32>(data, decompressed.data);

  std::printf("\nGSZ finished!\n");
  std::printf("GSZ compression end-to-end speed: %f GB/s (modelled, %s)\n",
              compressed.profile.endToEndGBps,
              compressor.device().name.c_str());
  std::printf("GSZ decompression end-to-end speed: %f GB/s (modelled)\n",
              decompressed.profile.endToEndGBps);
  std::printf("GSZ compression ratio: %f\n", compressed.ratio);
  std::printf("\n%s\n",
              stats.withinBoundFp(cfg.absErrorBound, Precision::F32)
                  ? "Pass error check!"
                  : "ERROR CHECK FAILED");
  return stats.withinBoundFp(cfg.absErrorBound, Precision::F32) ? 0 : 1;
}
