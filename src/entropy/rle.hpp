// Run-length codec over 16-bit symbols.
//
// Exists for two reasons: (1) it is a real, tested codec usable on
// quantization codes with long constant runs; (2) it is the counterexample
// in the paper's vectorization argument (Sec. IV-B) — its data-dependent
// control flow is what makes RLE (like Huffman) hostile to GPU warps,
// while fixed-length encoding vectorizes trivially. The
// encoding_vectorizability bench quantifies exactly that.
#pragma once

#include <vector>

#include "common/types.hpp"

namespace cuszp2::entropy {

struct RleEncoded {
  /// (symbol, run length) pairs; run lengths are capped at 2^16 - 1.
  std::vector<std::pair<u16, u16>> runs;
  usize symbolCount = 0;

  usize totalBytes() const { return runs.size() * 4 + 16; }
};

class RleCodec {
 public:
  static RleEncoded encode(std::span<const u16> symbols);
  static std::vector<u16> decode(const RleEncoded& encoded);
};

}  // namespace cuszp2::entropy
