// Canonical Huffman codec over 16-bit symbols.
//
// This is the CPU stage of the cuSZ-style hybrid baseline (paper Fig. 2):
// cuSZ quantizes on the GPU but builds the Huffman tree and encodes on the
// host, which — together with PCIe transfers — is what collapses its
// end-to-end throughput. The codec is a complete, tested implementation
// (tree build, canonical code assignment, length-limited fallback, decode
// table), not a stub.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "entropy/bitstream.hpp"

namespace cuszp2::entropy {

struct HuffmanEncoded {
  std::vector<std::byte> payload;       // bit-packed code stream
  std::vector<u8> codeLengths;          // canonical table: length per symbol
  usize symbolCount = 0;                // number of encoded symbols
  u32 alphabetSize = 0;

  /// Serialized size: payload + a compact canonical table listing only the
  /// used symbols (symbol id u16 + length u8) + a small header. A dense
  /// 64 K-entry table would swamp small inputs; real codecs ship compact
  /// tables, so the size model does too.
  usize totalBytes() const {
    usize used = 0;
    for (u8 l : codeLengths) {
      if (l > 0) ++used;
    }
    return payload.size() + used * 3 + 16;
  }
};

class HuffmanCodec {
 public:
  /// Builds codes from symbol frequencies and encodes `symbols`.
  /// `alphabetSize` bounds the symbol values (all symbols < alphabetSize).
  static HuffmanEncoded encode(std::span<const u16> symbols,
                               u32 alphabetSize);

  /// Decodes an encoded stream back into symbols.
  static std::vector<u16> decode(const HuffmanEncoded& enc);

  /// Canonical code assignment from code lengths (exposed for tests).
  static std::vector<u32> canonicalCodes(std::span<const u8> lengths);

  /// Code lengths from a frequency histogram (0 = unused symbol). Exposed
  /// so stream-level dictionaries (format v3's shared per-stream table)
  /// can reuse the tree build without re-encoding through this codec.
  static std::vector<u8> codeLengthsFromFrequencies(
      std::span<const u64> freq);
};

}  // namespace cuszp2::entropy
