#include "entropy/huffman.hpp"

#include <algorithm>
#include <queue>

#include "common/error.hpp"

namespace cuszp2::entropy {

namespace {

constexpr u32 kMaxCodeLength = 32;

/// Computes code lengths via a standard Huffman tree build over the
/// frequency histogram. Returns a per-symbol length (0 = unused symbol).
std::vector<u8> buildCodeLengths(std::span<const u64> freq) {
  const u32 n = static_cast<u32>(freq.size());
  struct Node {
    u64 weight;
    i32 left;   // child node index or -1
    i32 right;
    i32 symbol; // >= 0 for leaves
  };
  std::vector<Node> nodes;
  nodes.reserve(2 * n);

  using Entry = std::pair<u64, i32>;  // (weight, node index)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (u32 s = 0; s < n; ++s) {
    if (freq[s] == 0) continue;
    nodes.push_back({freq[s], -1, -1, static_cast<i32>(s)});
    heap.emplace(freq[s], static_cast<i32>(nodes.size() - 1));
  }

  std::vector<u8> lengths(n, 0);
  if (heap.empty()) return lengths;
  if (heap.size() == 1) {
    // Single distinct symbol: 1-bit code by convention.
    lengths[static_cast<usize>(nodes[0].symbol)] = 1;
    return lengths;
  }

  while (heap.size() > 1) {
    const auto [wa, a] = heap.top();
    heap.pop();
    const auto [wb, b] = heap.top();
    heap.pop();
    nodes.push_back({wa + wb, a, b, -1});
    heap.emplace(wa + wb, static_cast<i32>(nodes.size() - 1));
  }

  // Depth-first traversal to assign depths as code lengths.
  struct Frame {
    i32 node;
    u8 depth;
  };
  std::vector<Frame> stack{{heap.top().second, 0}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    const Node& node = nodes[static_cast<usize>(f.node)];
    if (node.symbol >= 0) {
      lengths[static_cast<usize>(node.symbol)] = std::max<u8>(1, f.depth);
      continue;
    }
    require(f.depth < kMaxCodeLength, "Huffman: code length overflow");
    stack.push_back({node.left, static_cast<u8>(f.depth + 1)});
    stack.push_back({node.right, static_cast<u8>(f.depth + 1)});
  }
  return lengths;
}

}  // namespace

std::vector<u8> HuffmanCodec::codeLengthsFromFrequencies(
    std::span<const u64> freq) {
  return buildCodeLengths(freq);
}

std::vector<u32> HuffmanCodec::canonicalCodes(std::span<const u8> lengths) {
  // Kraft-ordered canonical assignment: codes sorted by (length, symbol).
  std::vector<u32> codes(lengths.size(), 0);
  u8 maxLen = 0;
  for (u8 l : lengths) maxLen = std::max(maxLen, l);
  if (maxLen == 0) return codes;

  std::vector<u32> countPerLength(maxLen + 1, 0);
  for (u8 l : lengths) {
    if (l > 0) ++countPerLength[l];
  }
  std::vector<u32> nextCode(maxLen + 2, 0);
  u32 code = 0;
  for (u32 len = 1; len <= maxLen; ++len) {
    code = (code + countPerLength[len - 1]) << 1;
    nextCode[len] = code;
  }
  for (usize s = 0; s < lengths.size(); ++s) {
    if (lengths[s] > 0) codes[s] = nextCode[lengths[s]]++;
  }
  return codes;
}

HuffmanEncoded HuffmanCodec::encode(std::span<const u16> symbols,
                                    u32 alphabetSize) {
  require(alphabetSize > 0, "Huffman: empty alphabet");
  std::vector<u64> freq(alphabetSize, 0);
  for (u16 s : symbols) {
    require(s < alphabetSize, "Huffman: symbol out of alphabet range");
    ++freq[s];
  }

  HuffmanEncoded enc;
  enc.alphabetSize = alphabetSize;
  enc.symbolCount = symbols.size();
  enc.codeLengths = buildCodeLengths(freq);
  const auto codes = canonicalCodes(enc.codeLengths);

  BitWriter writer;
  for (u16 s : symbols) {
    const u8 len = enc.codeLengths[s];
    require(len > 0, "Huffman: encoding symbol with no code");
    // Canonical codes are MSB-first by construction; emit MSB first so the
    // decoder can walk lengths in increasing order.
    for (i32 bit = len - 1; bit >= 0; --bit) {
      writer.writeBit((codes[s] >> bit) & 1u);
    }
  }
  enc.payload = writer.take();
  return enc;
}

std::vector<u16> HuffmanCodec::decode(const HuffmanEncoded& enc) {
  const auto codes = canonicalCodes(enc.codeLengths);

  // Build (length -> first code, symbol list) canonical decode structures.
  u8 maxLen = 0;
  for (u8 l : enc.codeLengths) maxLen = std::max(maxLen, l);
  require(enc.symbolCount == 0 || maxLen > 0,
          "Huffman: empty table with nonzero symbol count");

  // symbolsByLength[len] holds symbols in canonical order.
  std::vector<std::vector<u16>> symbolsByLength(maxLen + 1);
  std::vector<u32> firstCode(maxLen + 1, 0);
  {
    std::vector<u32> countPerLength(maxLen + 1, 0);
    for (u8 l : enc.codeLengths) {
      if (l > 0) ++countPerLength[l];
    }
    u32 code = 0;
    for (u32 len = 1; len <= maxLen; ++len) {
      code = (code + (len >= 2 ? countPerLength[len - 1] : 0)) << 1;
      // Align with canonicalCodes(): nextCode[1] starts at (0 + count[0])<<1
      // where count[0] == 0.
      firstCode[len] = code;
    }
    for (usize s = 0; s < enc.codeLengths.size(); ++s) {
      const u8 l = enc.codeLengths[s];
      if (l > 0) symbolsByLength[l].push_back(static_cast<u16>(s));
    }
    for (auto& v : symbolsByLength) std::sort(v.begin(), v.end());
  }

  std::vector<u16> out;
  out.reserve(enc.symbolCount);
  BitReader reader(enc.payload);
  for (usize i = 0; i < enc.symbolCount; ++i) {
    u32 code = 0;
    for (u32 len = 1; len <= maxLen; ++len) {
      code = (code << 1) | reader.readBit();
      const auto& syms = symbolsByLength[len];
      if (!syms.empty() && code >= firstCode[len] &&
          code < firstCode[len] + syms.size()) {
        out.push_back(syms[code - firstCode[len]]);
        code = 0;
        break;
      }
      require(len < maxLen, "Huffman: invalid code in stream");
    }
  }
  return out;
}

}  // namespace cuszp2::entropy
