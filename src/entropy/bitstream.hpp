// LSB-first bit writer/reader over a byte vector. Used by the Huffman codec
// and the ZFP-style embedded coder.
#pragma once

#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace cuszp2::entropy {

class BitWriter {
 public:
  /// Appends the `nbits` low bits of `value`, LSB first. nbits in [0, 64].
  void write(u64 value, u32 nbits) {
    require(nbits <= 64, "BitWriter: nbits > 64");
    for (u32 i = 0; i < nbits; ++i) {
      if (bitPos_ == 0) bytes_.push_back(std::byte{0});
      if ((value >> i) & 1u) {
        bytes_.back() |= static_cast<std::byte>(1u << bitPos_);
      }
      bitPos_ = (bitPos_ + 1) & 7;
    }
  }

  void writeBit(bool bit) { write(bit ? 1 : 0, 1); }

  /// Pads to a byte boundary with zero bits.
  void alignToByte() { bitPos_ = 0; }

  usize bitCount() const {
    return bytes_.empty() ? 0
                          : (bytes_.size() - 1) * 8 +
                                (bitPos_ == 0 ? 8 : bitPos_);
  }

  const std::vector<std::byte>& bytes() const { return bytes_; }
  std::vector<std::byte> take() { bitPos_ = 0; return std::move(bytes_); }

 private:
  std::vector<std::byte> bytes_;
  u32 bitPos_ = 0;  // next free bit within bytes_.back(); 0 = byte full/none
};

class BitReader {
 public:
  explicit BitReader(ConstByteSpan data) : data_(data) {}

  /// Reads `nbits` bits, LSB first. Throws on overrun.
  u64 read(u32 nbits) {
    require(nbits <= 64, "BitReader: nbits > 64");
    u64 v = 0;
    for (u32 i = 0; i < nbits; ++i) {
      v |= static_cast<u64>(readBit()) << i;
    }
    return v;
  }

  u32 readBit() {
    require(pos_ < data_.size() * 8, "BitReader: read past end of stream");
    const u32 bit =
        (std::to_integer<u32>(data_[pos_ >> 3]) >> (pos_ & 7)) & 1u;
    ++pos_;
    return bit;
  }

  void alignToByte() { pos_ = (pos_ + 7) & ~usize{7}; }

  usize bitPosition() const { return pos_; }
  usize bitsRemaining() const { return data_.size() * 8 - pos_; }

 private:
  ConstByteSpan data_;
  usize pos_ = 0;
};

}  // namespace cuszp2::entropy
