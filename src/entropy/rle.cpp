#include "entropy/rle.hpp"

#include <limits>

#include "common/error.hpp"

namespace cuszp2::entropy {

RleEncoded RleCodec::encode(std::span<const u16> symbols) {
  RleEncoded out;
  out.symbolCount = symbols.size();
  constexpr u16 kMaxRun = std::numeric_limits<u16>::max();
  usize i = 0;
  while (i < symbols.size()) {
    const u16 symbol = symbols[i];
    u16 run = 0;
    while (i < symbols.size() && symbols[i] == symbol && run < kMaxRun) {
      ++run;
      ++i;
    }
    out.runs.emplace_back(symbol, run);
  }
  return out;
}

std::vector<u16> RleCodec::decode(const RleEncoded& encoded) {
  std::vector<u16> out;
  out.reserve(encoded.symbolCount);
  for (const auto& [symbol, run] : encoded.runs) {
    require(run > 0, "RleCodec: zero-length run");
    out.insert(out.end(), run, symbol);
  }
  require(out.size() == encoded.symbolCount,
          "RleCodec: symbol count mismatch");
  return out;
}

}  // namespace cuszp2::entropy
