#include "distributed/allreduce.hpp"

#include <algorithm>
#include <memory>

#include <cmath>

#include "common/error.hpp"
#include "core/stream.hpp"
#include "telemetry/metrics.hpp"

namespace cuszp2::distributed {

RingAllreduce::RingAllreduce(u32 devices, LinkSpec link)
    : devices_(devices), link_(link) {
  require(devices >= 2, "RingAllreduce: need at least 2 devices");
}

std::vector<f32> RingAllreduce::exactSum(
    const std::vector<std::vector<f32>>& gradients) {
  require(!gradients.empty(), "RingAllreduce: no gradients");
  std::vector<f32> out(gradients[0].size(), 0.0f);
  for (const auto& g : gradients) {
    require(g.size() == out.size(), "RingAllreduce: length mismatch");
    for (usize i = 0; i < out.size(); ++i) out[i] += g[i];
  }
  return out;
}

ExchangeCodec rawCodec() {
  ExchangeCodec codec;
  codec.name = "uncompressed";
  codec.transform = [](std::span<const f32> values,
                       std::vector<f32>& reconstructed, u64& wireBytes,
                       f64& codecSeconds) {
    reconstructed.assign(values.begin(), values.end());
    wireBytes = values.size() * sizeof(f32);
    codecSeconds = 0.0;
  };
  return codec;
}

ExchangeCodec cuszp2StreamCodec(f64 absErrorBound, gpusim::DeviceSpec device) {
  core::Config cfg;
  cfg.absErrorBound = absErrorBound;
  auto stream =
      std::make_shared<core::CompressorStream>(cfg, std::move(device));

  ExchangeCodec codec;
  codec.name = "cuSZp2-O";
  codec.transform = [stream](std::span<const f32> values,
                             std::vector<f32>& reconstructed, u64& wireBytes,
                             f64& codecSeconds) {
    const auto c = stream->compress<f32>(values);
    auto d = stream->decompress<f32>(c.stream);
    wireBytes = c.stream.size();
    codecSeconds = c.profile.endToEndSeconds + d.profile.endToEndSeconds;
    reconstructed = std::move(d.data);
  };
  codec.batchTransform = [stream](
                             std::span<const std::span<const f32>> chunks,
                             std::vector<std::vector<f32>>& reconstructed,
                             std::vector<u64>& wireBytes,
                             std::vector<f64>& codecSeconds) {
    const auto compressed = stream->compressBatch(chunks);
    reconstructed.resize(chunks.size());
    wireBytes.resize(chunks.size());
    codecSeconds.resize(chunks.size());
    for (usize i = 0; i < chunks.size(); ++i) {
      auto d = stream->decompress<f32>(compressed[i].stream);
      wireBytes[i] = compressed[i].stream.size();
      codecSeconds[i] =
          compressed[i].profile.endToEndSeconds + d.profile.endToEndSeconds;
      reconstructed[i] = std::move(d.data);
    }
  };
  return codec;
}

AllreduceResult RingAllreduce::run(
    const std::vector<std::vector<f32>>& gradients,
    const ExchangeCodec& codec, f64 perHopErrorBound) const {
  require(gradients.size() == devices_,
          "RingAllreduce: gradient count must equal device count");
  const usize n = gradients[0].size();
  for (const auto& g : gradients) {
    require(g.size() == n, "RingAllreduce: gradient length mismatch");
  }
  require(n % devices_ == 0,
          "RingAllreduce: vector length must divide into device count");
  require(static_cast<bool>(codec.transform) ||
              static_cast<bool>(codec.batchTransform),
          "RingAllreduce: codec has no transform");

  const usize chunk = n / devices_;
  const u32 P = devices_;

  // Working copy per device.
  std::vector<std::vector<f32>> buf = gradients;

  AllreduceResult result;
  std::vector<f32> wire;  // reconstructed payload of one transfer

  auto chunkSpan = [&](u32 device, u32 c) {
    return std::span<f32>(buf[device].data() + static_cast<usize>(c) * chunk,
                          chunk);
  };

  // Runs one ring step's P concurrent sends: device d ships chunk
  // sendChunkOf(d) to its right neighbour. Fills `incoming[d]` with what
  // device d receives, accumulates wire bytes, and returns the step's
  // critical-path time (slowest codec + link pair; the step is a
  // synchronization point). A codec with batchTransform compresses all P
  // sends through one batched launch.
  auto exchangeStep = [&](auto sendChunkOf,
                          std::vector<std::vector<f32>>& incoming) -> f64 {
    f64 stepSeconds = 0.0;
    f64 roundCodecSeconds = 0.0;  // critical-path codec time of this round
    u64 roundWireBytes = 0;
    if (codec.batchTransform) {
      std::vector<std::span<const f32>> sends(P);
      for (u32 d = 0; d < P; ++d) sends[d] = chunkSpan(d, sendChunkOf(d));
      std::vector<std::vector<f32>> recon;
      std::vector<u64> bytes;
      std::vector<f64> codecSeconds;
      codec.batchTransform(sends, recon, bytes, codecSeconds);
      require(recon.size() == P && bytes.size() == P &&
                  codecSeconds.size() == P,
              "RingAllreduce: batchTransform output size mismatch");
      for (u32 d = 0; d < P; ++d) {
        incoming[(d + 1) % P] = std::move(recon[d]);
        result.wireBytes += bytes[d];
        roundWireBytes += bytes[d];
        roundCodecSeconds = std::max(roundCodecSeconds, codecSeconds[d]);
        stepSeconds = std::max(
            stepSeconds, codecSeconds[d] + link_.transferSeconds(bytes[d]));
      }
    } else {
      for (u32 d = 0; d < P; ++d) {
        u64 bytes = 0;
        f64 codecSeconds = 0.0;
        codec.transform(chunkSpan(d, sendChunkOf(d)), wire, bytes,
                        codecSeconds);
        incoming[(d + 1) % P] = wire;
        result.wireBytes += bytes;
        roundWireBytes += bytes;
        roundCodecSeconds = std::max(roundCodecSeconds, codecSeconds);
        stepSeconds = std::max(stepSeconds,
                               codecSeconds + link_.transferSeconds(bytes));
      }
    }
    // Per-round telemetry: the round's critical-path codec time (in µs,
    // the histogram is integer-valued) and the ring's wire traffic.
    telemetry::MetricsRegistry& reg = telemetry::registry();
    reg.histogram("allreduce.round_codec_us")
        .record(static_cast<u64>(std::llround(roundCodecSeconds * 1e6)));
    reg.counter("allreduce.steps").add(1);
    reg.counter("allreduce.wire_bytes").add(roundWireBytes);
    return stepSeconds;
  };

  // ---- Reduce-scatter: P-1 steps ---------------------------------------
  for (u32 step = 0; step < P - 1; ++step) {
    // Compute all sends of this step before applying receives (devices
    // run concurrently; the step is a synchronization point).
    std::vector<std::vector<f32>> incoming(P);
    const f64 stepSeconds = exchangeStep(
        [&](u32 d) { return (d + P - step) % P; }, incoming);
    for (u32 d = 0; d < P; ++d) {
      const u32 recvChunk = (d + 2 * P - step - 1) % P;
      auto dst = chunkSpan(d, recvChunk);
      const auto& src = incoming[d];
      require(src.size() == dst.size(), "RingAllreduce: bad wire size");
      for (usize i = 0; i < dst.size(); ++i) dst[i] += src[i];
    }
    result.seconds += stepSeconds;
  }

  // After reduce-scatter, device d owns fully reduced chunk (d+1) mod P.
  // ---- All-gather: P-1 steps --------------------------------------------
  for (u32 step = 0; step < P - 1; ++step) {
    std::vector<std::vector<f32>> incoming(P);
    const f64 stepSeconds = exchangeStep(
        [&](u32 d) { return (d + 1 + P - step) % P; }, incoming);
    for (u32 d = 0; d < P; ++d) {
      // The sender was device (d - 1 + P) % P; reconstruct which chunk it
      // shipped so the receive lands in place.
      const u32 sender = (d + P - 1) % P;
      const u32 recvChunk = (sender + 1 + P - step) % P;
      auto dst = chunkSpan(d, recvChunk);
      const auto& src = incoming[d];
      require(src.size() == dst.size(), "RingAllreduce: bad wire size");
      std::copy(src.begin(), src.end(), dst.begin());
    }
    result.seconds += stepSeconds;
  }

  // All devices now hold the full reduced vector; they agree up to the
  // lossy exchanges. Report device 0's copy.
  result.reduced = std::move(buf[0]);
  const f64 idealBytes = 2.0 * (P - 1) / P * static_cast<f64>(n) * 4.0;
  result.algbwGBps =
      result.seconds > 0.0 ? idealBytes / result.seconds / 1e9 : 0.0;
  // Each reduce-scatter hop adds one quantization error; the gather pass
  // adds one more (re-quantization of already-quantized data is
  // idempotent, so forwarding is lossless afterwards).
  result.errorBound = perHopErrorBound * static_cast<f64>(P);
  return result;
}

}  // namespace cuszp2::distributed
