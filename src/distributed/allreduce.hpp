// Simulated multi-GPU ring allreduce with inline gradient compression —
// the paper's motivating application (Fig. 1: layer-wise distributed
// training exchanging gradients between GPUs).
//
// The algorithm is a real ring allreduce: reduce-scatter followed by
// all-gather over P simulated devices, each holding its own gradient
// vector. Communication volume and link time follow the standard model
// (2 * (P-1)/P * bytes per device over the slowest link); with inline
// compression every transfer ships the compressed stream instead, paying
// the compressor's (modelled) time per hop. Reduction happens on
// reconstructed values, so the result carries quantization error bounded
// by (P-1) * eb per reduce-scatter chain — reported and tested.
//
// This substrate exists to turn the paper's Sec. I-A/II argument into a
// measurable experiment: hybrid compressors lose the exchange time they
// save, pure-GPU compression wins end-to-end.
#pragma once

#include <functional>
#include <vector>

#include "common/types.hpp"
#include "gpusim/device_spec.hpp"

namespace cuszp2::distributed {

/// Inter-device link model.
struct LinkSpec {
  /// Per-direction bandwidth between neighbouring devices, GB/s.
  /// NVLink-class ~ 50; PCIe-class ~ 12; cross-node IB ~ 12.5.
  f64 bandwidthGBps = 12.0;

  /// Per-message latency, microseconds.
  f64 latencyUs = 5.0;

  f64 transferSeconds(u64 bytes) const {
    return latencyUs * 1e-6 +
           static_cast<f64>(bytes) / (bandwidthGBps * 1e9);
  }
};

/// Pluggable compression for the exchange step. `compress` returns the
/// wire bytes and fills `reconstructed` with what the receiver will see;
/// `seconds` are the modelled compressor+decompressor cost of one hop.
struct ExchangeCodec {
  std::string name;

  /// nullopt-like: empty function => uncompressed exchange.
  std::function<void(std::span<const f32> values,
                     std::vector<f32>& reconstructed, u64& wireBytes,
                     f64& codecSeconds)>
      transform;

  /// Optional batched variant: all P sends of one ring step at once (the
  /// devices run concurrently, so a codec backed by a CompressorStream can
  /// dispatch them as a single batched launch). Output vectors must be
  /// resized to chunks.size(); entry i corresponds to chunks[i]. When set,
  /// RingAllreduce::run prefers it over per-chunk `transform`.
  std::function<void(std::span<const std::span<const f32>> chunks,
                     std::vector<std::vector<f32>>& reconstructed,
                     std::vector<u64>& wireBytes,
                     std::vector<f64>& codecSeconds)>
      batchTransform;
};

struct AllreduceResult {
  /// The reduced vector every device ends with.
  std::vector<f32> reduced;

  /// Total modelled wall time of the collective (critical path).
  f64 seconds = 0.0;

  /// Total bytes that crossed links (all hops, all devices).
  u64 wireBytes = 0;

  /// Effective algorithmic bandwidth: 2*(P-1)/P*N*4 bytes / seconds.
  f64 algbwGBps = 0.0;

  /// Worst-case absolute deviation bound from lossy exchanges, given the
  /// codec's per-hop bound (0 for lossless).
  f64 errorBound = 0.0;
};

class RingAllreduce {
 public:
  /// `devices` >= 2; all gradient vectors must be the same length,
  /// divisible into P chunks.
  RingAllreduce(u32 devices, LinkSpec link);

  /// Runs the collective over per-device gradients. `perHopErrorBound` is
  /// the codec's absolute bound per compress/decompress cycle (0 if
  /// lossless); used only for the reported worst-case bound.
  AllreduceResult run(const std::vector<std::vector<f32>>& gradients,
                      const ExchangeCodec& codec,
                      f64 perHopErrorBound = 0.0) const;

  /// Reference: exact elementwise sum (for tests).
  static std::vector<f32> exactSum(
      const std::vector<std::vector<f32>>& gradients);

 private:
  u32 devices_;
  LinkSpec link_;
};

/// Uncompressed exchange codec.
ExchangeCodec rawCodec();

/// cuSZp2 exchange codec holding a long-lived core::CompressorStream: the
/// arena scratch stays warm across hops and the batched path compresses
/// all P sends of a ring step in one launch. Copies of the codec share the
/// stream, so one hop's scratch serves the whole collective.
ExchangeCodec cuszp2StreamCodec(f64 absErrorBound,
                                gpusim::DeviceSpec device = gpusim::a100_40gb());

}  // namespace cuszp2::distributed
