// Trace sessions: span/event recording that exports chrome://tracing /
// Perfetto-compatible JSON ("trace event format", JSON-array flavour).
//
// A TraceSession owns an in-memory event list; recording takes one mutex
// (tracing is opt-in — when no session is active the only cost anywhere is
// one relaxed atomic load of the active-session pointer). Install a
// session with setActiveTrace()/ScopedTrace and gpusim::Launcher
// auto-emits one complete ("X") event per kernel launch, carrying memory
// transactions, sync behaviour, fault injection and modelled timing as
// event args; core::CompressorStream adds B/E spans around API calls and
// instant events for detected faults.
//
// Timestamps are microseconds since session start, taken from a monotonic
// clock and clamped to be non-decreasing in emission order per phase
// domain, so consumers (and tests/test_telemetry.cpp) can rely on
// balanced, ordered B/E pairs. See docs/OBSERVABILITY.md for the schema
// and how to open a trace in Perfetto.
#pragma once

#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace cuszp2::telemetry {

/// One event arg rendered into the event's "args" object. `number` is
/// used when `isString` is false; string values are JSON-escaped on
/// serialization.
struct TraceArg {
  std::string key;
  f64 number = 0.0;
  std::string text;
  bool isString = false;

  static TraceArg num(std::string key, f64 v) {
    TraceArg a;
    a.key = std::move(key);
    a.number = v;
    return a;
  }
  static TraceArg str(std::string key, std::string v) {
    TraceArg a;
    a.key = std::move(key);
    a.text = std::move(v);
    a.isString = true;
    return a;
  }
};

struct TraceEvent {
  std::string name;
  char phase = 'i';  // 'B', 'E', 'X', 'i'
  f64 tsUs = 0.0;    // microseconds since session start
  f64 durUs = 0.0;   // 'X' events only
  u64 tid = 0;
  std::vector<TraceArg> args;
};

class TraceSession {
 public:
  TraceSession();

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// Microseconds since session start (monotonic clock).
  f64 nowUs() const;

  /// Duration span delimiters; ts is assigned internally and is
  /// non-decreasing in emission order.
  void begin(const std::string& name, std::vector<TraceArg> args = {});
  void end(const std::string& name);

  /// Complete event covering the last `durUs` microseconds (ts = now -
  /// dur, floored at the previous event's ts so file order stays sorted).
  void complete(const std::string& name, f64 durUs,
                std::vector<TraceArg> args = {});

  /// Instant event.
  void instant(const std::string& name, std::vector<TraceArg> args = {});

  /// RAII B/E pair.
  class Span {
   public:
    Span(TraceSession& session, std::string name)
        : session_(&session), name_(std::move(name)) {
      session_->begin(name_);
    }
    ~Span() { session_->end(name_); }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

   private:
    TraceSession* session_;
    std::string name_;
  };

  /// Ends every span that was begun but not yet ended (innermost first),
  /// tagging each synthetic 'E' with args {"aborted": 1} so consumers can
  /// tell a crash-closed span from a normal one. Exception unwinding and
  /// std::exit paths call this before serialization so aborted runs still
  /// export balanced, loadable JSON. Returns the number of spans closed.
  usize closeOpenSpans();

  /// Spans currently open (begun, not ended).
  usize openSpanCount() const;

  usize eventCount() const;
  std::vector<TraceEvent> events() const;

  /// {"traceEvents": [...], "displayTimeUnit": "ms"} — loadable by
  /// chrome://tracing and https://ui.perfetto.dev.
  std::string json() const;

  /// Writes json() to `path` (truncating); false + warning on I/O failure.
  bool writeJson(const std::string& path) const;

 private:
  void push(TraceEvent event);
  void pushLocked(TraceEvent event);

  std::chrono::steady_clock::time_point start_;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  /// Names of 'B' events without a matching 'E' yet, outermost first.
  std::vector<std::string> openSpans_;
  f64 lastTsUs_ = 0.0;
};

/// The session gpusim::Launcher (and other auto-instrumented layers)
/// emit into; nullptr = tracing off. Not owned.
TraceSession* activeTrace();
void setActiveTrace(TraceSession* session);

/// RAII activation of a caller-owned session (restores the previous
/// active session on destruction).
class ScopedTrace {
 public:
  explicit ScopedTrace(TraceSession& session)
      : previous_(activeTrace()) {
    setActiveTrace(&session);
  }
  ~ScopedTrace() { setActiveTrace(previous_); }
  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

 private:
  TraceSession* previous_;
};

}  // namespace cuszp2::telemetry
