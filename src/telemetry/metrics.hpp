// Run-wide metrics surface: named counters, gauges and histograms with
// cheap thread-safe recording, plus a per-kernel accumulation table fed by
// gpusim::Launcher.
//
// Design constraints (mirrors the zero-allocation hot path of
// core::CompressorStream):
//   * Instrument handles are resolved once (find-or-create under a mutex,
//     allocating) and stay valid for the registry's lifetime; recording
//     through a handle is lock-free atomics only.
//   * Every instrument checks its registry's enabled flag with one relaxed
//     load, so a disabled registry adds a branch — no locks, no heap
//     traffic — to hot paths (guarded by tests/test_stream_reuse.cpp).
//   * The process-global registry() starts DISABLED; the CLI, benches and
//     tests opt in via registry().setEnabled(true).
//
// Snapshots serialize to JSON with deterministic (sorted) key order; see
// docs/OBSERVABILITY.md for the metric name catalogue and schema.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/bits.hpp"
#include "common/types.hpp"

namespace cuszp2::telemetry {

class MetricsRegistry;

/// Monotonic counter. add() is a relaxed fetch_add when the owning
/// registry is enabled, a single relaxed load otherwise.
class Counter {
 public:
  void add(u64 delta = 1) {
    if (enabled_->load(std::memory_order_relaxed)) {
      value_.fetch_add(delta, std::memory_order_relaxed);
    }
  }

  u64 value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  Counter(std::string name, const std::atomic<bool>* enabled)
      : name_(std::move(name)), enabled_(enabled) {}

  std::string name_;
  const std::atomic<bool>* enabled_;
  std::atomic<u64> value_{0};
};

/// Last-value gauge holding an f64 (stored as bits for atomicity).
class Gauge {
 public:
  void set(f64 v) {
    if (enabled_->load(std::memory_order_relaxed)) {
      bits_.store(bitCast<u64>(v), std::memory_order_relaxed);
    }
  }

  f64 value() const {
    return bitCast<f64>(bits_.load(std::memory_order_relaxed));
  }
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  Gauge(std::string name, const std::atomic<bool>* enabled)
      : name_(std::move(name)), enabled_(enabled) {}

  std::string name_;
  const std::atomic<bool>* enabled_;
  std::atomic<u64> bits_{bitCast<u64>(0.0)};
};

/// Fixed-bucket log2 histogram over u64 samples. Bucket i counts samples
/// whose bit width is i (bucket 0 holds the value 0, bucket 1 holds 1,
/// bucket 2 holds 2..3, ...), so recording is a bit_width plus one
/// fetch_add — no allocation, no locks, any value range.
class Histogram {
 public:
  static constexpr usize kBuckets = 65;  // bit widths 0..64

  void record(u64 sample) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    buckets_[bucketOf(sample)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(sample, std::memory_order_relaxed);
    u64 seen = max_.load(std::memory_order_relaxed);
    while (sample > seen &&
           !max_.compare_exchange_weak(seen, sample,
                                       std::memory_order_relaxed)) {
    }
  }

  u64 count() const { return count_.load(std::memory_order_relaxed); }
  u64 sum() const { return sum_.load(std::memory_order_relaxed); }
  u64 max() const { return max_.load(std::memory_order_relaxed); }
  f64 mean() const {
    const u64 c = count();
    return c == 0 ? 0.0 : static_cast<f64>(sum()) / static_cast<f64>(c);
  }
  u64 bucketCount(usize bucket) const {
    return buckets_[bucket].load(std::memory_order_relaxed);
  }
  const std::string& name() const { return name_; }

  static usize bucketOf(u64 sample) {
    usize w = 0;
    while (sample != 0) {
      ++w;
      sample >>= 1;
    }
    return w;
  }

 private:
  friend class MetricsRegistry;
  Histogram(std::string name, const std::atomic<bool>* enabled)
      : name_(std::move(name)), enabled_(enabled) {}

  std::string name_;
  const std::atomic<bool>* enabled_;
  std::atomic<u64> buckets_[kBuckets] = {};
  std::atomic<u64> count_{0};
  std::atomic<u64> sum_{0};
  std::atomic<u64> max_{0};
};

/// Per-kernel accumulation row, fed by gpusim::Launcher after every
/// launch. Modelled time is accumulated in integer picoseconds so
/// concurrent adds stay exact (no float-summation order dependence).
struct KernelStats {
  std::atomic<u64> launches{0};
  std::atomic<u64> dramBytes{0};
  std::atomic<u64> modelledPicos{0};
  std::atomic<u64> wallPicos{0};
};

/// Snapshot row of the per-kernel table (see snapshotKernels()).
struct KernelRow {
  std::string name;
  u64 launches = 0;
  u64 dramBytes = 0;
  f64 modelledSeconds = 0.0;
  f64 wallSeconds = 0.0;

  /// DRAM traffic over host wall time — what the host substrate actually
  /// sustained, vs the modelled GB/s from the device parameter sheet.
  f64 achievedGbps() const {
    return wallSeconds > 0.0
               ? static_cast<f64>(dramBytes) / wallSeconds / 1e9
               : 0.0;
  }

  /// wall / modelled: how many host-seconds each modelled device-second
  /// costs. A rising ratio means the host path got slower relative to the
  /// model (or the model more optimistic) — the substrate's headline number.
  f64 modelRatio() const {
    return modelledSeconds > 0.0 ? wallSeconds / modelledSeconds : 0.0;
  }
};

class MetricsRegistry {
 public:
  /// Registries constructed directly are enabled (convenient for tests);
  /// the process-global registry() starts disabled.
  explicit MetricsRegistry(bool enabled = true) : enabled_(enabled) {}

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void setEnabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Find-or-create by name. The returned reference stays valid for the
  /// registry's lifetime; resolve once, record many times.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);
  KernelStats& kernel(const std::string& name);

  /// Accumulates one launch into the per-kernel table and the global
  /// gpusim.* counters. No-op when disabled.
  void noteKernelLaunch(const char* name, u64 dramBytes, f64 modelledSeconds,
                        f64 wallSeconds);

  /// Zeroes every instrument's value (names and handles survive).
  void reset();

  /// Deterministic JSON snapshot: {"counters": {...}, "gauges": {...},
  /// "histograms": {...}, "kernels": {...}} with keys sorted.
  std::string snapshotJson() const;

  /// Per-kernel table rows, sorted by modelled seconds descending.
  std::vector<KernelRow> snapshotKernels() const;

 private:
  std::atomic<bool> enabled_;
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<KernelStats>> kernels_;
};

/// Process-global registry, created on first use, DISABLED by default so
/// the hot path pays one branch until someone opts in.
MetricsRegistry& registry();

}  // namespace cuszp2::telemetry
