#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace cuszp2::telemetry {

namespace {

/// Formats an f64 so it round-trips bit-exactly (shortest form that does:
/// %.17g) — snapshots of the same state are byte-identical.
std::string formatF64(f64 v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(name, std::unique_ptr<Counter>(
                                new Counter(name, &enabled_)))
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(name,
                      std::unique_ptr<Gauge>(new Gauge(name, &enabled_)))
             .first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(name, std::unique_ptr<Histogram>(
                                new Histogram(name, &enabled_)))
             .first;
  }
  return *it->second;
}

KernelStats& MetricsRegistry::kernel(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = kernels_.find(name);
  if (it == kernels_.end()) {
    it = kernels_.emplace(name, std::make_unique<KernelStats>()).first;
  }
  return *it->second;
}

void MetricsRegistry::noteKernelLaunch(const char* name, u64 dramBytes,
                                       f64 modelledSeconds,
                                       f64 wallSeconds) {
  if (!enabled()) return;
  KernelStats& k = kernel(name);
  k.launches.fetch_add(1, std::memory_order_relaxed);
  k.dramBytes.fetch_add(dramBytes, std::memory_order_relaxed);
  k.modelledPicos.fetch_add(
      static_cast<u64>(std::llround(modelledSeconds * 1e12)),
      std::memory_order_relaxed);
  k.wallPicos.fetch_add(static_cast<u64>(std::llround(wallSeconds * 1e12)),
                        std::memory_order_relaxed);
  counter("gpusim.kernel_launches").add(1);
  counter("gpusim.dram_bytes").add(dramBytes);
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) {
    c->value_.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, g] : gauges_) {
    g->bits_.store(bitCast<u64>(0.0), std::memory_order_relaxed);
  }
  for (auto& [name, h] : histograms_) {
    for (auto& b : h->buckets_) b.store(0, std::memory_order_relaxed);
    h->count_.store(0, std::memory_order_relaxed);
    h->sum_.store(0, std::memory_order_relaxed);
    h->max_.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, k] : kernels_) {
    k->launches.store(0, std::memory_order_relaxed);
    k->dramBytes.store(0, std::memory_order_relaxed);
    k->modelledPicos.store(0, std::memory_order_relaxed);
    k->wallPicos.store(0, std::memory_order_relaxed);
  }
}

std::string MetricsRegistry::snapshotJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "\": " + std::to_string(c->value());
  }
  out += first ? "}" : "\n  }";
  out += ",\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "\": " + formatF64(g->value());
  }
  out += first ? "}" : "\n  }";
  out += ",\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "\": {\"count\": " +
           std::to_string(h->count()) + ", \"sum\": " +
           std::to_string(h->sum()) + ", \"max\": " +
           std::to_string(h->max()) + ", \"mean\": " + formatF64(h->mean()) +
           ", \"buckets\": [";
    // Trailing empty buckets are elided so small histograms stay small.
    usize last = Histogram::kBuckets;
    while (last > 0 && h->bucketCount(last - 1) == 0) --last;
    for (usize b = 0; b < last; ++b) {
      if (b > 0) out += ", ";
      out += std::to_string(h->bucketCount(b));
    }
    out += "]}";
  }
  out += first ? "}" : "\n  }";
  out += ",\n  \"kernels\": {";
  first = true;
  for (const auto& [name, k] : kernels_) {
    out += first ? "\n" : ",\n";
    first = false;
    KernelRow row;
    row.launches = k->launches.load(std::memory_order_relaxed);
    row.dramBytes = k->dramBytes.load(std::memory_order_relaxed);
    row.modelledSeconds =
        static_cast<f64>(k->modelledPicos.load(std::memory_order_relaxed)) *
        1e-12;
    row.wallSeconds =
        static_cast<f64>(k->wallPicos.load(std::memory_order_relaxed)) *
        1e-12;
    out += "    \"" + name + "\": {\"launches\": " +
           std::to_string(row.launches) +
           ", \"dram_bytes\": " + std::to_string(row.dramBytes) +
           ", \"modelled_seconds\": " + formatF64(row.modelledSeconds) +
           ", \"wall_seconds\": " + formatF64(row.wallSeconds) +
           ", \"achieved_gbps\": " + formatF64(row.achievedGbps()) +
           ", \"model_ratio\": " + formatF64(row.modelRatio()) + "}";
  }
  out += first ? "}" : "\n  }";
  out += "\n}\n";
  return out;
}

std::vector<KernelRow> MetricsRegistry::snapshotKernels() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<KernelRow> rows;
  rows.reserve(kernels_.size());
  for (const auto& [name, k] : kernels_) {
    KernelRow row;
    row.name = name;
    row.launches = k->launches.load(std::memory_order_relaxed);
    row.dramBytes = k->dramBytes.load(std::memory_order_relaxed);
    row.modelledSeconds =
        static_cast<f64>(k->modelledPicos.load(std::memory_order_relaxed)) *
        1e-12;
    row.wallSeconds =
        static_cast<f64>(k->wallPicos.load(std::memory_order_relaxed)) *
        1e-12;
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(),
            [](const KernelRow& a, const KernelRow& b) {
              return a.modelledSeconds != b.modelledSeconds
                         ? a.modelledSeconds > b.modelledSeconds
                         : a.name < b.name;
            });
  return rows;
}

MetricsRegistry& registry() {
  static MetricsRegistry global(/*enabled=*/false);
  return global;
}

}  // namespace cuszp2::telemetry
