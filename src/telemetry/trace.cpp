#include "telemetry/trace.hpp"

#include <algorithm>
#include <cstdio>

namespace cuszp2::telemetry {

namespace {

std::atomic<TraceSession*> gActiveTrace{nullptr};

void appendEscaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string formatF64(f64 v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

TraceSession* activeTrace() {
  return gActiveTrace.load(std::memory_order_relaxed);
}

void setActiveTrace(TraceSession* session) {
  gActiveTrace.store(session, std::memory_order_release);
}

TraceSession::TraceSession() : start_(std::chrono::steady_clock::now()) {}

f64 TraceSession::nowUs() const {
  return std::chrono::duration<f64, std::micro>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

void TraceSession::push(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mutex_);
  pushLocked(std::move(event));
}

void TraceSession::pushLocked(TraceEvent event) {
  if (event.tsUs < lastTsUs_) event.tsUs = lastTsUs_;
  lastTsUs_ = event.tsUs;
  events_.push_back(std::move(event));
}

void TraceSession::begin(const std::string& name,
                         std::vector<TraceArg> args) {
  TraceEvent e;
  e.name = name;
  e.phase = 'B';
  e.tsUs = nowUs();
  e.args = std::move(args);
  std::lock_guard<std::mutex> lock(mutex_);
  openSpans_.push_back(name);
  pushLocked(std::move(e));
}

void TraceSession::end(const std::string& name) {
  TraceEvent e;
  e.name = name;
  e.phase = 'E';
  e.tsUs = nowUs();
  std::lock_guard<std::mutex> lock(mutex_);
  // Pop the innermost matching open span (spans close LIFO in practice;
  // the scan tolerates interleaved threads).
  for (usize i = openSpans_.size(); i > 0; --i) {
    if (openSpans_[i - 1] == name) {
      openSpans_.erase(openSpans_.begin() +
                       static_cast<std::ptrdiff_t>(i - 1));
      break;
    }
  }
  pushLocked(std::move(e));
}

usize TraceSession::closeOpenSpans() {
  const f64 ts = nowUs();
  std::lock_guard<std::mutex> lock(mutex_);
  const usize closed = openSpans_.size();
  while (!openSpans_.empty()) {
    TraceEvent e;
    e.name = openSpans_.back();  // innermost first: keeps nesting valid
    e.phase = 'E';
    e.tsUs = ts;
    e.args.push_back(TraceArg::num("aborted", 1.0));
    openSpans_.pop_back();
    pushLocked(std::move(e));
  }
  return closed;
}

usize TraceSession::openSpanCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return openSpans_.size();
}

void TraceSession::complete(const std::string& name, f64 durUs,
                            std::vector<TraceArg> args) {
  TraceEvent e;
  e.name = name;
  e.phase = 'X';
  e.tsUs = std::max(0.0, nowUs() - durUs);
  e.durUs = durUs;
  e.args = std::move(args);
  push(std::move(e));
}

void TraceSession::instant(const std::string& name,
                           std::vector<TraceArg> args) {
  TraceEvent e;
  e.name = name;
  e.phase = 'i';
  e.tsUs = nowUs();
  e.args = std::move(args);
  push(std::move(e));
}

usize TraceSession::eventCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::vector<TraceEvent> TraceSession::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

std::string TraceSession::json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"traceEvents\": [\n";
  for (usize i = 0; i < events_.size(); ++i) {
    const TraceEvent& e = events_[i];
    out += "  {\"name\": \"";
    appendEscaped(out, e.name);
    out += "\", \"ph\": \"";
    out += e.phase;
    out += "\", \"ts\": " + formatF64(e.tsUs);
    if (e.phase == 'X') out += ", \"dur\": " + formatF64(e.durUs);
    if (e.phase == 'i') out += ", \"s\": \"t\"";
    out += ", \"pid\": 1, \"tid\": " + std::to_string(e.tid);
    if (!e.args.empty()) {
      out += ", \"args\": {";
      for (usize a = 0; a < e.args.size(); ++a) {
        if (a > 0) out += ", ";
        out += "\"";
        appendEscaped(out, e.args[a].key);
        out += "\": ";
        if (e.args[a].isString) {
          out += "\"";
          appendEscaped(out, e.args[a].text);
          out += "\"";
        } else {
          out += formatF64(e.args[a].number);
        }
      }
      out += "}";
    }
    out += "}";
    if (i + 1 < events_.size()) out += ",";
    out += "\n";
  }
  out += "], \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

bool TraceSession::writeJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "TraceSession: cannot open %s for writing\n",
                 path.c_str());
    return false;
  }
  const std::string body = json();
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  return ok;
}

}  // namespace cuszp2::telemetry
