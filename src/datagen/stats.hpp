// Field statistics: the structural properties that determine compression
// behaviour (paper Sec. IV-A's smoothness argument). Used by the dataset
// report harness and by tests that pin the synthetic generators to their
// real-dataset characters.
#pragma once

#include <span>

#include "common/types.hpp"

namespace cuszp2::datagen {

struct FieldStats {
  f64 min = 0.0;
  f64 max = 0.0;
  f64 mean = 0.0;
  f64 stddev = 0.0;

  /// Fraction of exactly-zero samples (drives zero-block fast paths).
  f64 zeroFraction = 0.0;

  /// Mean |first-order difference| / value range — the smoothness proxy:
  /// low values mean few effective bits per FLE block.
  f64 roughness = 0.0;

  /// Fraction of 32-element blocks whose head |difference| dominates the
  /// block (>= 4x the tail maximum) — the outlier motif Outlier-FLE
  /// exploits (paper Fig. 6).
  f64 outlierBlockFraction = 0.0;

  f64 range() const { return max - min; }
};

template <FloatingPoint T>
FieldStats computeFieldStats(std::span<const T> data);

extern template FieldStats computeFieldStats<f32>(std::span<const f32>);
extern template FieldStats computeFieldStats<f64>(std::span<const f64>);

}  // namespace cuszp2::datagen
