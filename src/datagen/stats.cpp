#include "datagen/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace cuszp2::datagen {

template <FloatingPoint T>
FieldStats computeFieldStats(std::span<const T> data) {
  require(!data.empty(), "computeFieldStats: empty field");
  FieldStats s;
  s.min = static_cast<f64>(data[0]);
  s.max = static_cast<f64>(data[0]);

  f64 sum = 0.0;
  f64 sumSq = 0.0;
  usize zeros = 0;
  f64 diffSum = 0.0;
  for (usize i = 0; i < data.size(); ++i) {
    const f64 v = static_cast<f64>(data[i]);
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
    sum += v;
    sumSq += v * v;
    if (v == 0.0) ++zeros;
    if (i > 0) diffSum += std::abs(v - static_cast<f64>(data[i - 1]));
  }
  const f64 n = static_cast<f64>(data.size());
  s.mean = sum / n;
  s.stddev = std::sqrt(std::max(0.0, sumSq / n - s.mean * s.mean));
  s.zeroFraction = static_cast<f64>(zeros) / n;
  if (data.size() > 1 && s.range() > 0.0) {
    s.roughness = diffSum / static_cast<f64>(data.size() - 1) / s.range();
  }

  // Outlier-motif detection over 32-element blocks.
  constexpr usize kBlock = 32;
  usize outlierBlocks = 0;
  usize blocks = 0;
  for (usize start = 0; start + kBlock <= data.size(); start += kBlock) {
    // The block head is differenced against 0 (block independence), so
    // its magnitude is the candidate outlier.
    const f64 head = std::abs(static_cast<f64>(data[start]));
    f64 tailMax = 0.0;
    for (usize i = start + 1; i < start + kBlock; ++i) {
      tailMax = std::max(tailMax,
                         std::abs(static_cast<f64>(data[i]) -
                                  static_cast<f64>(data[i - 1])));
    }
    ++blocks;
    if (head > 4.0 * tailMax && head > 0.0) ++outlierBlocks;
  }
  if (blocks > 0) {
    s.outlierBlockFraction =
        static_cast<f64>(outlierBlocks) / static_cast<f64>(blocks);
  }
  return s;
}

template FieldStats computeFieldStats<f32>(std::span<const f32>);
template FieldStats computeFieldStats<f64>(std::span<const f64>);

}  // namespace cuszp2::datagen
