// Synthetic stand-ins for the paper's evaluation datasets (Tables II & IV).
//
// The real SDRBench / Open-SciVis downloads are not available in this
// environment, so each dataset is replaced by a seeded generator engineered
// to match its documented character — the properties cuSZp2's results
// actually depend on:
//   * smoothness        -> small first-order differences, outlier at block
//                          heads (drives Outlier-FLE gains, Sec. IV-A)
//   * sparsity          -> all-zero blocks (drives the memset fast path and
//                          the huge JetIn/RTM ratios)
//   * dynamic range     -> fixed-length growth across blocks
//   * noise floor       -> ratio ceiling at small error bounds
//
// Generation is deterministic: (dataset, fieldIndex, elementCount) fully
// determines the output.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace cuszp2::datagen {

struct DatasetInfo {
  std::string name;      // lowercase id, e.g. "cesm_atm"
  std::string suite;     // "SDRBench" or "Open-SciVis"
  u32 numFields = 1;     // matches the paper's Table II / IV
  Precision precision = Precision::F32;
  std::string character;  // one-line description of the synthetic model
};

/// All single-precision datasets of Table II, in paper order.
const std::vector<DatasetInfo>& singlePrecisionDatasets();

/// The double-precision datasets of Table IV (S3D, NWChem).
const std::vector<DatasetInfo>& doublePrecisionDatasets();

/// Looks up a dataset by name across both tables; throws if unknown.
const DatasetInfo& datasetInfo(const std::string& name);

/// Generates field `fieldIndex` (< numFields) of a dataset with `elems`
/// elements. The f64 overload is only valid for double-precision datasets
/// and vice versa.
std::vector<f32> generateF32(const std::string& dataset, u32 fieldIndex,
                             usize elems);
std::vector<f64> generateF64(const std::string& dataset, u32 fieldIndex,
                             usize elems);

/// Names of the HACC particle fields, index-aligned with generateF32
/// ("xx","yy","zz","vx","vy","vz") — used by the Fig. 15 harness.
const std::vector<std::string>& haccFieldNames();

/// Names of the RTM pressure snapshots ("P1000","P2000","P3000").
const std::vector<std::string>& rtmFieldNames();

}  // namespace cuszp2::datagen
