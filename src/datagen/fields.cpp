#include "datagen/fields.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace cuszp2::datagen {

namespace {

constexpr f64 kPi = 3.14159265358979323846;

u64 fieldSeed(const std::string& dataset, u32 fieldIndex) {
  // FNV-1a over the name, mixed with the field index.
  u64 h = 1469598103934665603ull;
  for (char c : dataset) {
    h ^= static_cast<u64>(static_cast<unsigned char>(c));
    h *= 1099511628211ull;
  }
  return h ^ (0x9E3779B97F4A7C15ull * (fieldIndex + 1));
}

/// Sum of `terms` random low-frequency sinusoids — a generic smooth field.
/// maxCycles bounds the highest frequency (in cycles over the whole field).
std::vector<f64> smoothField(Rng& rng, usize elems, u32 terms, f64 maxCycles,
                             f64 amplitude) {
  std::vector<f64> out(elems, 0.0);
  for (u32 t = 0; t < terms; ++t) {
    const f64 cycles = rng.uniform(0.5, maxCycles);
    const f64 phase = rng.uniform(0.0, 2.0 * kPi);
    const f64 amp = amplitude * rng.uniform(0.2, 1.0) / (1.0 + t);
    const f64 w = 2.0 * kPi * cycles / static_cast<f64>(elems);
    for (usize i = 0; i < elems; ++i) {
      out[i] += amp * std::sin(w * static_cast<f64>(i) + phase);
    }
  }
  return out;
}

template <typename T>
std::vector<T> narrow(const std::vector<f64>& in) {
  std::vector<T> out(in.size());
  for (usize i = 0; i < in.size(); ++i) out[i] = static_cast<T>(in[i]);
  return out;
}

/// Derives a cube-ish 3-D shape covering exactly `elems` samples when the
/// generator needs spatial structure (RTM, JetIn).
void cubeDims(usize elems, usize& nx, usize& ny, usize& nz) {
  nx = std::max<usize>(1, static_cast<usize>(std::cbrt(
                              static_cast<f64>(elems))));
  ny = nx;
  nz = (elems + nx * ny - 1) / (nx * ny);
}

// ---- Per-dataset models -------------------------------------------------

/// CESM-ATM: smooth layered climate slices; the paper's textbook case of
/// global smoothness (Fig. 6). Some fields are near-constant (high ratio),
/// others carry more texture. Field index modulates roughness.
std::vector<f64> genCesmAtm(u32 field, usize elems, Rng& rng) {
  const f64 roughness = 0.002 + 0.02 * ((field % 7) / 6.0);
  auto base = smoothField(rng, elems, 6, 8.0 + (field % 5) * 6.0, 100.0);
  const f64 offset = rng.uniform(-50.0, 250.0);
  for (usize i = 0; i < elems; ++i) {
    base[i] += offset + rng.normal(0.0, roughness * 100.0);
  }
  return base;
}

/// HACC: positions (xx/yy/zz, fields 0..2) are near-sorted particle
/// coordinates — extremely smooth ramps; velocities (vx/vy/vz, fields 3..5)
/// are heavy-tailed and barely smooth (the paper notes VX defeats
/// Outlier-FLE's advantage).
std::vector<f64> genHacc(u32 field, usize elems, Rng& rng) {
  std::vector<f64> out(elems);
  if (field < 3) {
    // Position: monotone ramp over the 256 Mpc box with local jitter.
    f64 x = 0.0;
    const f64 step = 256.0 / static_cast<f64>(elems);
    for (usize i = 0; i < elems; ++i) {
      x += step * rng.uniform(0.0, 2.0);
      out[i] = x + rng.normal(0.0, 0.01);
    }
  } else {
    // Velocity: Ornstein-Uhlenbeck with weak correlation + occasional
    // high-velocity particles (cluster infall).
    f64 v = 0.0;
    for (usize i = 0; i < elems; ++i) {
      v = 0.6 * v + rng.normal(0.0, 120.0);
      f64 val = v;
      if (rng.uniform() < 0.002) val += rng.normal(0.0, 2000.0);
      out[i] = val;
    }
  }
  return out;
}

/// RTM: seismic pressure snapshot — an expanding spherical wavefront with
/// oscillatory ringing inside the ball and exact zeros outside. Field 0
/// (P1000) is early (small radius, mostly zero); field 2 (P3000) nearly
/// fills the volume. Reproduces the paper's ratio spread (P1000 ~80-158 vs
/// P3000 ~6-12) and the zero-block fast path.
std::vector<f64> genRtm(u32 field, usize elems, Rng& rng) {
  usize nx = 0;
  usize ny = 0;
  usize nz = 0;
  cubeDims(elems, nx, ny, nz);
  const f64 radiusFrac = 0.18 + 0.32 * static_cast<f64>(field);  // grows
  const f64 radius = radiusFrac * static_cast<f64>(nx);
  const f64 k = 2.0 * kPi / (0.08 * static_cast<f64>(nx));  // ring wavelength
  std::vector<f64> out(elems, 0.0);
  const f64 cx = static_cast<f64>(nx) / 2.0;
  const f64 cy = static_cast<f64>(ny) / 2.0;
  const f64 cz = static_cast<f64>(nz) / 2.0;
  for (usize e = 0; e < elems; ++e) {
    const usize x = e % nx;
    const usize y = (e / nx) % ny;
    const usize z = e / (nx * ny);
    const f64 dx = static_cast<f64>(x) - cx;
    const f64 dy = static_cast<f64>(y) - cy;
    const f64 dz = static_cast<f64>(z) - cz;
    const f64 r = std::sqrt(dx * dx + dy * dy + dz * dz);
    if (r < radius) {
      const f64 envelope = 1.0 - r / radius;
      out[e] = 1000.0 * envelope * std::sin(k * r) +
               rng.normal(0.0, 0.5 * envelope);
    }
  }
  return out;
}

/// SCALE-LETKF: weather fields — smooth background plus sparse convective
/// spikes; field index sweeps from near-constant to noisy, covering the
/// paper's wide per-field ratio spread (2.75 ~ 105).
std::vector<f64> genScale(u32 field, usize elems, Rng& rng) {
  const f64 noise = (field % 4 == 0) ? 0.001 : 0.05 * (1.0 + (field % 4));
  auto base = smoothField(rng, elems, 5, 12.0, 20.0);
  for (usize i = 0; i < elems; ++i) {
    f64 v = base[i] + rng.normal(0.0, noise);
    if (rng.uniform() < 0.0005) v += rng.uniform(50.0, 150.0);  // cell spike
    base[i] = v;
  }
  return base;
}

/// QMCPack: electronic orbitals — rapid oscillation under a smooth
/// envelope; low spatial smoothness, so Plain and Outlier land close
/// together (paper Sec. IV-A).
std::vector<f64> genQmcpack(u32 field, usize elems, Rng& rng) {
  auto envelope = smoothField(rng, elems, 4, 6.0, 1.0);
  const f64 freq = 2.0 * kPi * (0.11 + 0.07 * field);
  std::vector<f64> out(elems);
  for (usize i = 0; i < elems; ++i) {
    out[i] = (1.0 + envelope[i]) *
                 std::sin(freq * static_cast<f64>(i)) +
             rng.normal(0.0, 0.02);
  }
  return out;
}

/// NYX: cosmological baryon/dark-matter fields — log-normal density with
/// huge dynamic range; temperature-like fields are smoother. Matches the
/// paper's per-field ratio spread (5 ~ 125).
std::vector<f64> genNyx(u32 field, usize elems, Rng& rng) {
  auto logField = smoothField(rng, elems, 6, 10.0, 1.2);
  std::vector<f64> out(elems);
  if (field % 3 == 0) {
    // Density: exp of a smooth field -> most of the volume is near the
    // floor (compresses extremely well), with rare dense filaments.
    for (usize i = 0; i < elems; ++i) {
      out[i] = std::exp(2.5 * logField[i]) - 1.0;
      if (out[i] < 0.05) out[i] = 0.0;
    }
  } else {
    const f64 noise = 0.01 * (1 + field % 3);
    for (usize i = 0; i < elems; ++i) {
      out[i] = 1e4 * (1.0 + logField[i]) + rng.normal(0.0, 1e4 * noise);
    }
  }
  return out;
}

/// JetIn: a turbulent jet in a quiescent box — highly sparse (the paper
/// reports ~120x ratios and >1 TB/s decompression from zero-block
/// flushing). Only a thin slab around the jet axis is nonzero.
std::vector<f64> genJetIn(u32 /*field*/, usize elems, Rng& rng) {
  usize nx = 0;
  usize ny = 0;
  usize nz = 0;
  cubeDims(elems, nx, ny, nz);
  std::vector<f64> out(elems, 0.0);
  const f64 cy = static_cast<f64>(ny) / 2.0;
  const f64 cz = static_cast<f64>(nz) / 2.0;
  const f64 jetRadius = 0.06 * static_cast<f64>(ny);
  for (usize e = 0; e < elems; ++e) {
    const usize x = e % nx;
    const usize y = (e / nx) % ny;
    const usize z = e / (nx * ny);
    const f64 dy = static_cast<f64>(y) - cy;
    const f64 dz = static_cast<f64>(z) - cz;
    const f64 r = std::sqrt(dy * dy + dz * dz);
    const f64 spread =
        jetRadius * (1.0 + 2.0 * static_cast<f64>(x) / static_cast<f64>(nx));
    if (r < spread) {
      const f64 core = std::exp(-r * r / (spread * spread));
      out[e] = 40.0 * core *
               (1.0 + 0.3 * std::sin(0.4 * static_cast<f64>(x)) +
                rng.normal(0.0, 0.05));
    }
  }
  return out;
}

/// Miranda: Rayleigh-Taylor mixing — dense band-limited turbulence on top
/// of a strong mean density. Globally smooth with a large DC offset, the
/// regime where Outlier-FLE roughly doubles Plain-FLE's ratio (paper
/// Table III: 3.04 -> 5.98 at REL 1e-3).
std::vector<f64> genMiranda(u32 /*field*/, usize elems, Rng& rng) {
  auto turb = smoothField(rng, elems, 12, 300.0, 0.35);
  std::vector<f64> out(elems);
  for (usize i = 0; i < elems; ++i) {
    out[i] = 2.5 + turb[i] + rng.normal(0.0, 0.004);
  }
  return out;
}

/// SynTruss: CT scan of an additively manufactured lattice — two-phase
/// piecewise-constant material/void with sharp boundaries and scanner
/// noise. Block-head outliers are rare relative to edge-crossing blocks,
/// so Outlier gains little over Plain (paper: 6.37 vs 6.47).
std::vector<f64> genSynTruss(u32 /*field*/, usize elems, Rng& rng) {
  std::vector<f64> out(elems);
  const usize period = 97;  // strut spacing in samples
  for (usize i = 0; i < elems; ++i) {
    const usize phase = i % period;
    const bool material = phase < period / 3;
    const f64 base = material ? 1800.0 : 40.0;
    out[i] = base + rng.normal(0.0, 6.0);
  }
  return out;
}

/// S3D (f64): combustion species mass fractions — very smooth exponential
/// reaction fronts; the double-precision showcase where Outlier-FLE
/// reaches ~3x Plain-FLE (paper Table V).
std::vector<f64> genS3d(u32 field, usize elems, Rng& rng) {
  auto front = smoothField(rng, elems, 5, 4.0 + field, 1.0);
  std::vector<f64> out(elems);
  for (usize i = 0; i < elems; ++i) {
    out[i] = 0.2 + 0.1 * std::tanh(3.0 * front[i]) +
             1e-5 * rng.normal(0.0, 1.0);
  }
  return out;
}

/// NWChem (f64): two-electron integral stream — most entries near zero
/// with rare large magnitudes; extremely compressible at loose bounds,
/// with Plain and Outlier nearly identical (paper Table V).
std::vector<f64> genNwchem(u32 /*field*/, usize elems, Rng& rng) {
  std::vector<f64> out(elems);
  for (usize i = 0; i < elems; ++i) {
    const f64 u = rng.uniform();
    if (u < 0.9) {
      out[i] = rng.normal(0.0, 1e-7);
    } else if (u < 0.995) {
      out[i] = rng.normal(0.0, 1e-3);
    } else {
      out[i] = rng.normal(0.0, 1.0);
    }
  }
  return out;
}

std::vector<f64> generate(const std::string& dataset, u32 field,
                          usize elems) {
  require(elems > 0, "datagen: element count must be positive");
  const DatasetInfo& info = datasetInfo(dataset);
  require(field < info.numFields,
          "datagen: field index out of range for " + dataset);
  Rng rng(fieldSeed(dataset, field));

  if (dataset == "cesm_atm") return genCesmAtm(field, elems, rng);
  if (dataset == "hacc") return genHacc(field, elems, rng);
  if (dataset == "rtm") return genRtm(field, elems, rng);
  if (dataset == "scale") return genScale(field, elems, rng);
  if (dataset == "qmcpack") return genQmcpack(field, elems, rng);
  if (dataset == "nyx") return genNyx(field, elems, rng);
  if (dataset == "jetin") return genJetIn(field, elems, rng);
  if (dataset == "miranda") return genMiranda(field, elems, rng);
  if (dataset == "syntruss") return genSynTruss(field, elems, rng);
  if (dataset == "s3d") return genS3d(field, elems, rng);
  if (dataset == "nwchem") return genNwchem(field, elems, rng);
  throw Error("datagen: no generator for dataset " + dataset);
}

}  // namespace

const std::vector<DatasetInfo>& singlePrecisionDatasets() {
  static const std::vector<DatasetInfo> kDatasets = {
      {"cesm_atm", "SDRBench", 33, Precision::F32,
       "smooth layered climate slices, near-constant to textured"},
      {"hacc", "SDRBench", 6, Precision::F32,
       "particle positions (smooth ramps) + heavy-tailed velocities"},
      {"rtm", "SDRBench", 3, Precision::F32,
       "expanding seismic wavefront, zero outside the ball"},
      {"scale", "SDRBench", 12, Precision::F32,
       "smooth weather background + sparse convective spikes"},
      {"qmcpack", "SDRBench", 2, Precision::F32,
       "rapidly oscillating orbitals under a smooth envelope"},
      {"nyx", "SDRBench", 6, Precision::F32,
       "log-normal cosmological density, huge dynamic range"},
      {"jetin", "Open-SciVis", 1, Precision::F32,
       "highly sparse turbulent jet in a quiescent box"},
      {"miranda", "Open-SciVis", 1, Precision::F32,
       "dense band-limited turbulence over a strong mean"},
      {"syntruss", "Open-SciVis", 1, Precision::F32,
       "two-phase CT lattice with sharp edges + scanner noise"},
  };
  return kDatasets;
}

const std::vector<DatasetInfo>& doublePrecisionDatasets() {
  static const std::vector<DatasetInfo> kDatasets = {
      {"s3d", "SDRBench", 5, Precision::F64,
       "very smooth combustion reaction fronts"},
      {"nwchem", "SDRBench", 1, Precision::F64,
       "near-zero integral stream with rare large magnitudes"},
  };
  return kDatasets;
}

const DatasetInfo& datasetInfo(const std::string& name) {
  for (const auto& d : singlePrecisionDatasets()) {
    if (d.name == name) return d;
  }
  for (const auto& d : doublePrecisionDatasets()) {
    if (d.name == name) return d;
  }
  throw Error("datagen: unknown dataset " + name);
}

std::vector<f32> generateF32(const std::string& dataset, u32 fieldIndex,
                             usize elems) {
  require(datasetInfo(dataset).precision == Precision::F32,
          "datagen: " + dataset + " is a double-precision dataset");
  return narrow<f32>(generate(dataset, fieldIndex, elems));
}

std::vector<f64> generateF64(const std::string& dataset, u32 fieldIndex,
                             usize elems) {
  require(datasetInfo(dataset).precision == Precision::F64,
          "datagen: " + dataset + " is a single-precision dataset");
  return generate(dataset, fieldIndex, elems);
}

const std::vector<std::string>& haccFieldNames() {
  static const std::vector<std::string> kNames = {"xx", "yy", "zz",
                                                  "vx", "vy", "vz"};
  return kNames;
}

const std::vector<std::string>& rtmFieldNames() {
  static const std::vector<std::string> kNames = {"P1000", "P2000", "P3000"};
  return kNames;
}

}  // namespace cuszp2::datagen
