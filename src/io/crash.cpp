#include "io/crash.hpp"

#include <mutex>
#include <optional>

#include "common/rng.hpp"
#include "telemetry/metrics.hpp"

namespace cuszp2::io {

namespace {

struct Injector {
  std::mutex mu;
  std::optional<CrashPlan> plan;
  u64 planOps = 0;  // matching ops seen since install

  bool counting = false;
  CrashSite countSite = CrashSite::Write;
  std::string countPattern;
  u64 counted = 0;
};

Injector& injector() {
  static Injector g;
  return g;
}

bool pathMatches(const std::string& pattern, const std::string& path) {
  return pattern.empty() || path.find(pattern) != std::string::npos;
}

}  // namespace

void installCrashPlan(const CrashPlan& plan) {
  Injector& g = injector();
  std::lock_guard<std::mutex> lock(g.mu);
  g.plan = plan;
  g.planOps = 0;
}

void clearCrashPlan() {
  Injector& g = injector();
  std::lock_guard<std::mutex> lock(g.mu);
  g.plan.reset();
  g.planOps = 0;
}

bool crashPlanArmed() {
  Injector& g = injector();
  std::lock_guard<std::mutex> lock(g.mu);
  return g.plan.has_value();
}

void startCrashCounting(CrashSite site, const std::string& pathPattern) {
  Injector& g = injector();
  std::lock_guard<std::mutex> lock(g.mu);
  g.counting = true;
  g.countSite = site;
  g.countPattern = pathPattern;
  g.counted = 0;
}

u64 stopCrashCounting() {
  Injector& g = injector();
  std::lock_guard<std::mutex> lock(g.mu);
  g.counting = false;
  return g.counted;
}

CrashAction crashCheckpoint(CrashSite site, const std::string& path,
                            usize pendingBytes) {
  Injector& g = injector();
  std::lock_guard<std::mutex> lock(g.mu);

  if (g.counting && site == g.countSite && pathMatches(g.countPattern, path)) {
    ++g.counted;
  }

  CrashAction action;
  if (!g.plan || site != g.plan->site || !pathMatches(g.plan->pathPattern, path)) {
    return action;
  }
  const u64 op = g.planOps++;
  if (op != g.plan->triggerOp) return action;

  action.fire = true;
  action.mode = g.plan->mode;
  if (site == CrashSite::Write && pendingBytes > 0 &&
      action.mode != CrashMode::Drop) {
    // Seeded, schedule-independent tear shape: prefix length and garbage
    // derive from (seed, op) alone.
    SplitMix64 mix(g.plan->seed ^ (op * 0x9e3779b97f4a7c15ULL));
    action.keepBytes = static_cast<usize>(mix.next() % pendingBytes);
    if (action.mode == CrashMode::Tear) {
      const usize tail = pendingBytes - action.keepBytes;
      action.garbage.resize(tail);
      const bool zeros = (mix.next() & 1ULL) != 0;  // zero-filled vs garbage tail
      u64 word = 0;
      for (usize i = 0; i < tail; ++i) {
        if (!zeros) {
          if (i % 8 == 0) word = mix.next();
          action.garbage[i] = static_cast<std::byte>((word >> ((i % 8) * 8)) & 0xff);
        } else {
          action.garbage[i] = std::byte{0};
        }
      }
    }
  }
  telemetry::registry().counter("journal.injected_crashes").add(1);
  return action;
}

void throwCrash(CrashSite site, const std::string& path) {
  throw CrashError(std::string("injected crash at ") + toString(site) + " on " +
                   path);
}

}  // namespace cuszp2::io
