#include "io/table.hpp"

#include <cstdio>
#include <iostream>
#include <sstream>

#include "common/error.hpp"

namespace cuszp2::io {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  require(!header_.empty(), "Table: header must be non-empty");
}

void Table::addRow(std::vector<std::string> cells) {
  require(cells.size() == header_.size(), "Table: row width mismatch");
  rows_.push_back(std::move(cells));
}

std::string Table::render() const {
  std::vector<usize> width(header_.size(), 0);
  for (usize c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (usize c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emitRow = [&](const std::vector<std::string>& row) {
    for (usize c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c];
      os << std::string(width[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  emitRow(header_);
  for (usize c = 0; c < header_.size(); ++c) {
    os << (c == 0 ? "|-" : "-|-") << std::string(width[c], '-');
  }
  os << "-|\n";
  for (const auto& row : rows_) emitRow(row);
  return os.str();
}

std::string Table::csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (usize c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::print() const { std::cout << render() << std::flush; }

std::string Table::num(f64 v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::gbps(f64 v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f GB/s", v);
  return buf;
}

}  // namespace cuszp2::io
