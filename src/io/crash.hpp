// Seeded crash injection for the persistence boundary (durability drills).
//
// Every write that matters for crash consistency — journal flushes,
// atomic-rename saves, their sync barriers — funnels through a named
// *crash site*. A CrashPlan arms one simulated process death: the Nth
// matching operation tears, truncates, or drops its bytes and then throws
// CrashError, modelling a machine that died mid-write. The plan is a pure
// function of (seed, site, count): the torn prefix length and the garbage
// bytes it leaves behind are derived only from the seed and the
// operation ordinal, never from addresses, clocks, or scheduling — so a
// drill that crashes at (site, N) is replayable bit-for-bit, and
// tools/crash_drill can enumerate every crash point of a scripted
// workload and prove recovery at each one.
//
// Mirrors gpusim::FaultPlan (the compute-fault analogue): seeded,
// deterministic, armed process-globally, and consumed by the layer under
// test rather than by the test poking internals.
#pragma once

#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace cuszp2::io {

/// Simulated process death at an injected crash point. Derives from
/// cuszp2::Error so unaware code treats it as a fatal I/O error; drills
/// catch it specifically to proceed to the recovery phase.
class CrashError : public Error {
 public:
  explicit CrashError(const std::string& what) : Error(what) {}
};

/// Operation classes a CrashPlan can target. Each persistence primitive
/// announces the sites it passes through (the crash-point catalogue in
/// docs/DURABILITY.md):
///   * Write   — payload bytes hitting a file (journal flush, temp-file
///               body of an atomic save). Tear/Truncate/Drop meaningful.
///   * Sync    — an fsync barrier (journal sync, temp-file sync). The
///               process dies before the barrier completes.
///   * Rename  — the atomic rename publishing a temp file. The process
///               dies with the temp file written but never published.
///   * DirSync — the directory sync after a rename. The process dies
///               with the rename applied but its durability unconfirmed.
enum class CrashSite : u8 { Write = 0, Sync = 1, Rename = 2, DirSync = 3 };

constexpr const char* toString(CrashSite s) {
  switch (s) {
    case CrashSite::Write: return "write";
    case CrashSite::Sync: return "sync";
    case CrashSite::Rename: return "rename";
    default: return "dirsync";
  }
}

/// What the dying write leaves on disk (Write site only; barrier sites
/// write nothing by definition):
///   * Tear     — a seeded-length prefix of the payload plus a seeded
///                garbage tail (half the seeds leave zeros — the
///                zero-filled-tail case — the other half random bytes).
///   * Truncate — a seeded-length prefix, nothing after it.
///   * Drop     — none of the payload reaches the file.
enum class CrashMode : u8 { Tear = 0, Truncate = 1, Drop = 2 };

constexpr const char* toString(CrashMode m) {
  switch (m) {
    case CrashMode::Tear: return "tear";
    case CrashMode::Truncate: return "truncate";
    default: return "drop";
  }
}

/// One armed simulated crash. Fires on the `triggerOp`-th (0-based)
/// operation whose site matches `site` and whose target path contains
/// `pathPattern` (empty pattern matches every path).
struct CrashPlan {
  u64 seed = 1;
  std::string pathPattern;
  CrashSite site = CrashSite::Write;
  CrashMode mode = CrashMode::Truncate;
  u64 triggerOp = 0;
};

/// Arms `plan` process-globally (replacing any armed plan) and resets the
/// plan's matching-operation counter.
void installCrashPlan(const CrashPlan& plan);

/// Disarms any armed plan.
void clearCrashPlan();

bool crashPlanArmed();

/// Crash-point enumeration: counts operations matching (site, pattern)
/// without crashing, so a drill can run its workload once and learn how
/// many crash points exist. Counting and an armed plan are independent.
void startCrashCounting(CrashSite site, const std::string& pathPattern);

/// Stops counting and returns the operations observed since start.
u64 stopCrashCounting();

/// What an announced crash point must do before dying (Write site).
/// keepBytes/garbage are pure in (seed, site ordinal): replaying the same
/// plan against the same workload tears identically.
struct CrashAction {
  bool fire = false;
  CrashMode mode = CrashMode::Truncate;
  usize keepBytes = 0;              ///< payload prefix to persist
  std::vector<std::byte> garbage;   ///< trailing bytes after the prefix (Tear)
};

/// Announces one operation at a crash site. Returns the action the armed
/// plan demands: `fire == false` means proceed normally. When it fires,
/// the caller persists keepBytes of its payload plus `garbage`, then
/// calls throwCrash() — barrier sites (pendingBytes == 0) fire with
/// keepBytes == 0 and empty garbage.
CrashAction crashCheckpoint(CrashSite site, const std::string& path,
                            usize pendingBytes);

/// Throws CrashError naming the site and path (the simulated death).
[[noreturn]] void throwCrash(CrashSite site, const std::string& path);

}  // namespace cuszp2::io
