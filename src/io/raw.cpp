#include "io/raw.hpp"

#include <atomic>
#include <cstdio>
#include <memory>

#include "common/error.hpp"
#include "io/crash.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define CUSZP2_IO_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace cuszp2::io {

namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

usize fileSize(std::FILE* f) {
  require(std::fseek(f, 0, SEEK_END) == 0, "io: fseek failed");
  const long size = std::ftell(f);
  require(size >= 0, "io: ftell failed");
  require(std::fseek(f, 0, SEEK_SET) == 0, "io: fseek failed");
  return static_cast<usize>(size);
}

}  // namespace

template <FloatingPoint T>
std::vector<T> readRaw(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  require(f != nullptr, "io: cannot open " + path);
  const usize bytes = fileSize(f.get());
  require(bytes % sizeof(T) == 0,
          "io: file size is not a multiple of the element size: " + path);
  std::vector<T> out(bytes / sizeof(T));
  if (!out.empty()) {
    require(std::fread(out.data(), sizeof(T), out.size(), f.get()) ==
                out.size(),
            "io: short read from " + path);
  }
  return out;
}

template <FloatingPoint T>
void writeRaw(const std::string& path, std::span<const T> values) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  require(f != nullptr, "io: cannot open " + path + " for writing");
  if (!values.empty()) {
    require(std::fwrite(values.data(), sizeof(T), values.size(), f.get()) ==
                values.size(),
            "io: short write to " + path);
  }
}

std::vector<std::byte> readBytes(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  require(f != nullptr, "io: cannot open " + path);
  const usize bytes = fileSize(f.get());
  std::vector<std::byte> out(bytes);
  if (bytes > 0) {
    require(std::fread(out.data(), 1, bytes, f.get()) == bytes,
            "io: short read from " + path);
  }
  return out;
}

void writeBytes(const std::string& path, ConstByteSpan bytes) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  require(f != nullptr, "io: cannot open " + path + " for writing");
  if (!bytes.empty()) {
    require(std::fwrite(bytes.data(), 1, bytes.size(), f.get()) ==
                bytes.size(),
            "io: short write to " + path);
  }
}

namespace {

/// Unique temp-file suffix: pid + a process-wide counter, so two stores
/// saving to sibling paths (or two threads saving the same path) never
/// collide on the temp name the way a fixed ".tmp" suffix would.
std::string uniqueTempName(const std::string& path) {
  static std::atomic<u64> counter{0};
#if defined(CUSZP2_IO_HAS_MMAP)
  const u64 pid = static_cast<u64>(::getpid());
#else
  const u64 pid = 0;
#endif
  return path + ".tmp." + std::to_string(pid) + "." +
         std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
}

/// fsyncs the directory containing `path` so the rename itself is durable
/// (a crash after rename but before the directory sync can otherwise lose
/// the new directory entry).
void syncParentDir(const std::string& path) {
#if defined(CUSZP2_IO_HAS_MMAP)
  const usize slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.empty() ? "/" : dir.c_str(), O_RDONLY);
  require(fd >= 0, "io: cannot open directory " + dir + " for sync");
  const int rc = ::fsync(fd);
  ::close(fd);
  require(rc == 0, "io: directory sync failed for " + dir);
#else
  (void)path;
#endif
}

}  // namespace

void writeBytesAtomic(const std::string& path, ConstByteSpan bytes) {
  const std::string tmp = uniqueTempName(path);

  // Crash checkpoints key on the *destination* path so drills target the
  // logical file, not the ephemeral temp name.
  {
    const CrashAction act = crashCheckpoint(CrashSite::Write, path, bytes.size());
    FilePtr f(std::fopen(tmp.c_str(), "wb"));
    require(f != nullptr, "io: cannot open " + tmp + " for writing");
    if (act.fire) {
      if (act.keepBytes > 0) std::fwrite(bytes.data(), 1, act.keepBytes, f.get());
      if (!act.garbage.empty()) {
        std::fwrite(act.garbage.data(), 1, act.garbage.size(), f.get());
      }
      std::fflush(f.get());
      throwCrash(CrashSite::Write, path);  // stray temp file left behind
    }
    if (!bytes.empty()) {
      require(std::fwrite(bytes.data(), 1, bytes.size(), f.get()) ==
                  bytes.size(),
              "io: short write to " + tmp);
    }
    require(std::fflush(f.get()) == 0, "io: flush failed for " + tmp);
    if (crashCheckpoint(CrashSite::Sync, path, 0).fire) {
      throwCrash(CrashSite::Sync, path);
    }
#if defined(CUSZP2_IO_HAS_MMAP)
    require(::fsync(::fileno(f.get())) == 0, "io: fsync failed for " + tmp);
#endif
  }

  if (crashCheckpoint(CrashSite::Rename, path, 0).fire) {
    throwCrash(CrashSite::Rename, path);  // temp written, never published
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    require(false, "io: cannot rename " + tmp + " over " + path);
  }
  if (crashCheckpoint(CrashSite::DirSync, path, 0).fire) {
    throwCrash(CrashSite::DirSync, path);  // rename applied, not yet durable
  }
  syncParentDir(path);
}

MappedBytes::MappedBytes(const std::string& path) {
#if defined(CUSZP2_IO_HAS_MMAP)
  const int fd = ::open(path.c_str(), O_RDONLY);
  require(fd >= 0, "io: cannot open " + path);
  struct ::stat st = {};
  if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
    ::close(fd);
    require(false, "io: not a regular file: " + path);
  }
  const usize bytes = static_cast<usize>(st.st_size);
  if (bytes == 0) {
    ::close(fd);
    return;
  }
  void* map = ::mmap(nullptr, bytes, PROT_READ, MAP_PRIVATE, fd, 0);
  if (map != MAP_FAILED) {
    ::close(fd);
    map_ = map;
    mapBytes_ = bytes;
    view_ = ConstByteSpan(static_cast<const std::byte*>(map), bytes);
    return;
  }
  // pread fallback: same bytes, one copy into a heap buffer.
  buffer_.resize(bytes);
  usize off = 0;
  while (off < bytes) {
    const ssize_t got = ::pread(fd, buffer_.data() + off, bytes - off,
                                static_cast<off_t>(off));
    if (got <= 0) {
      ::close(fd);
      require(false, "io: short read from " + path);
    }
    off += static_cast<usize>(got);
  }
  ::close(fd);
  view_ = buffer_;
#else
  buffer_ = readBytes(path);
  view_ = buffer_;
#endif
}

MappedBytes::~MappedBytes() {
#if defined(CUSZP2_IO_HAS_MMAP)
  if (map_ != nullptr) ::munmap(map_, mapBytes_);
#endif
}

MappedBytes& MappedBytes::operator=(MappedBytes&& o) noexcept {
  if (this == &o) return *this;
#if defined(CUSZP2_IO_HAS_MMAP)
  if (map_ != nullptr) ::munmap(map_, mapBytes_);
#endif
  map_ = std::exchange(o.map_, nullptr);
  mapBytes_ = std::exchange(o.mapBytes_, 0);
  buffer_ = std::move(o.buffer_);
  view_ = std::exchange(o.view_, ConstByteSpan{});
  return *this;
}

template std::vector<f32> readRaw<f32>(const std::string&);
template std::vector<f64> readRaw<f64>(const std::string&);
template void writeRaw<f32>(const std::string&, std::span<const f32>);
template void writeRaw<f64>(const std::string&, std::span<const f64>);

}  // namespace cuszp2::io
