#include "io/raw.hpp"

#include <cstdio>
#include <memory>

#include "common/error.hpp"

namespace cuszp2::io {

namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

usize fileSize(std::FILE* f) {
  require(std::fseek(f, 0, SEEK_END) == 0, "io: fseek failed");
  const long size = std::ftell(f);
  require(size >= 0, "io: ftell failed");
  require(std::fseek(f, 0, SEEK_SET) == 0, "io: fseek failed");
  return static_cast<usize>(size);
}

}  // namespace

template <FloatingPoint T>
std::vector<T> readRaw(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  require(f != nullptr, "io: cannot open " + path);
  const usize bytes = fileSize(f.get());
  require(bytes % sizeof(T) == 0,
          "io: file size is not a multiple of the element size: " + path);
  std::vector<T> out(bytes / sizeof(T));
  if (!out.empty()) {
    require(std::fread(out.data(), sizeof(T), out.size(), f.get()) ==
                out.size(),
            "io: short read from " + path);
  }
  return out;
}

template <FloatingPoint T>
void writeRaw(const std::string& path, std::span<const T> values) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  require(f != nullptr, "io: cannot open " + path + " for writing");
  if (!values.empty()) {
    require(std::fwrite(values.data(), sizeof(T), values.size(), f.get()) ==
                values.size(),
            "io: short write to " + path);
  }
}

std::vector<std::byte> readBytes(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  require(f != nullptr, "io: cannot open " + path);
  const usize bytes = fileSize(f.get());
  std::vector<std::byte> out(bytes);
  if (bytes > 0) {
    require(std::fread(out.data(), 1, bytes, f.get()) == bytes,
            "io: short read from " + path);
  }
  return out;
}

void writeBytes(const std::string& path, ConstByteSpan bytes) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  require(f != nullptr, "io: cannot open " + path + " for writing");
  if (!bytes.empty()) {
    require(std::fwrite(bytes.data(), 1, bytes.size(), f.get()) ==
                bytes.size(),
            "io: short write to " + path);
  }
}

template std::vector<f32> readRaw<f32>(const std::string&);
template std::vector<f64> readRaw<f64>(const std::string&);
template void writeRaw<f32>(const std::string&, std::span<const f32>);
template void writeRaw<f64>(const std::string&, std::span<const f64>);

}  // namespace cuszp2::io
