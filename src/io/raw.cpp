#include "io/raw.hpp"

#include <cstdio>
#include <memory>

#include "common/error.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define CUSZP2_IO_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace cuszp2::io {

namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

usize fileSize(std::FILE* f) {
  require(std::fseek(f, 0, SEEK_END) == 0, "io: fseek failed");
  const long size = std::ftell(f);
  require(size >= 0, "io: ftell failed");
  require(std::fseek(f, 0, SEEK_SET) == 0, "io: fseek failed");
  return static_cast<usize>(size);
}

}  // namespace

template <FloatingPoint T>
std::vector<T> readRaw(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  require(f != nullptr, "io: cannot open " + path);
  const usize bytes = fileSize(f.get());
  require(bytes % sizeof(T) == 0,
          "io: file size is not a multiple of the element size: " + path);
  std::vector<T> out(bytes / sizeof(T));
  if (!out.empty()) {
    require(std::fread(out.data(), sizeof(T), out.size(), f.get()) ==
                out.size(),
            "io: short read from " + path);
  }
  return out;
}

template <FloatingPoint T>
void writeRaw(const std::string& path, std::span<const T> values) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  require(f != nullptr, "io: cannot open " + path + " for writing");
  if (!values.empty()) {
    require(std::fwrite(values.data(), sizeof(T), values.size(), f.get()) ==
                values.size(),
            "io: short write to " + path);
  }
}

std::vector<std::byte> readBytes(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  require(f != nullptr, "io: cannot open " + path);
  const usize bytes = fileSize(f.get());
  std::vector<std::byte> out(bytes);
  if (bytes > 0) {
    require(std::fread(out.data(), 1, bytes, f.get()) == bytes,
            "io: short read from " + path);
  }
  return out;
}

void writeBytes(const std::string& path, ConstByteSpan bytes) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  require(f != nullptr, "io: cannot open " + path + " for writing");
  if (!bytes.empty()) {
    require(std::fwrite(bytes.data(), 1, bytes.size(), f.get()) ==
                bytes.size(),
            "io: short write to " + path);
  }
}

void writeBytesAtomic(const std::string& path, ConstByteSpan bytes) {
  const std::string tmp = path + ".tmp";
  writeBytes(tmp, bytes);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    require(false, "io: cannot rename " + tmp + " over " + path);
  }
}

MappedBytes::MappedBytes(const std::string& path) {
#if defined(CUSZP2_IO_HAS_MMAP)
  const int fd = ::open(path.c_str(), O_RDONLY);
  require(fd >= 0, "io: cannot open " + path);
  struct ::stat st = {};
  if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
    ::close(fd);
    require(false, "io: not a regular file: " + path);
  }
  const usize bytes = static_cast<usize>(st.st_size);
  if (bytes == 0) {
    ::close(fd);
    return;
  }
  void* map = ::mmap(nullptr, bytes, PROT_READ, MAP_PRIVATE, fd, 0);
  if (map != MAP_FAILED) {
    ::close(fd);
    map_ = map;
    mapBytes_ = bytes;
    view_ = ConstByteSpan(static_cast<const std::byte*>(map), bytes);
    return;
  }
  // pread fallback: same bytes, one copy into a heap buffer.
  buffer_.resize(bytes);
  usize off = 0;
  while (off < bytes) {
    const ssize_t got = ::pread(fd, buffer_.data() + off, bytes - off,
                                static_cast<off_t>(off));
    if (got <= 0) {
      ::close(fd);
      require(false, "io: short read from " + path);
    }
    off += static_cast<usize>(got);
  }
  ::close(fd);
  view_ = buffer_;
#else
  buffer_ = readBytes(path);
  view_ = buffer_;
#endif
}

MappedBytes::~MappedBytes() {
#if defined(CUSZP2_IO_HAS_MMAP)
  if (map_ != nullptr) ::munmap(map_, mapBytes_);
#endif
}

MappedBytes& MappedBytes::operator=(MappedBytes&& o) noexcept {
  if (this == &o) return *this;
#if defined(CUSZP2_IO_HAS_MMAP)
  if (map_ != nullptr) ::munmap(map_, mapBytes_);
#endif
  map_ = std::exchange(o.map_, nullptr);
  mapBytes_ = std::exchange(o.mapBytes_, 0);
  buffer_ = std::move(o.buffer_);
  view_ = std::exchange(o.view_, ConstByteSpan{});
  return *this;
}

template std::vector<f32> readRaw<f32>(const std::string&);
template std::vector<f64> readRaw<f64>(const std::string&);
template void writeRaw<f32>(const std::string&, std::span<const f32>);
template void writeRaw<f64>(const std::string&, std::span<const f64>);

}  // namespace cuszp2::io
