// Console table printer used by the bench harness to emit paper-style rows
// (aligned columns, optional CSV dump for plotting).
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace cuszp2::io {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Adds one row; must match the header width.
  void addRow(std::vector<std::string> cells);

  /// Renders with aligned columns and a separator under the header.
  std::string render() const;

  /// Renders as CSV.
  std::string csv() const;

  /// Prints render() to stdout.
  void print() const;

  usize rows() const { return rows_.size(); }

  // Cell formatting helpers.
  static std::string num(f64 v, int precision = 2);
  static std::string gbps(f64 v);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cuszp2::io
