// Raw binary field IO in the SDRBench convention (headerless little-endian
// f32/f64 arrays, e.g. "vx.f32"). Lets users run the library on real
// SDRBench downloads exactly like the paper's artifact.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace cuszp2::io {

/// Reads a whole file as raw little-endian T values.
template <FloatingPoint T>
std::vector<T> readRaw(const std::string& path);

/// Writes values as raw little-endian bytes.
template <FloatingPoint T>
void writeRaw(const std::string& path, std::span<const T> values);

/// Reads/writes arbitrary bytes (compressed streams).
std::vector<std::byte> readBytes(const std::string& path);
void writeBytes(const std::string& path, ConstByteSpan bytes);

extern template std::vector<f32> readRaw<f32>(const std::string&);
extern template std::vector<f64> readRaw<f64>(const std::string&);
extern template void writeRaw<f32>(const std::string&, std::span<const f32>);
extern template void writeRaw<f64>(const std::string&, std::span<const f64>);

}  // namespace cuszp2::io
