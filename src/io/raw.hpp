// Raw binary field IO in the SDRBench convention (headerless little-endian
// f32/f64 arrays, e.g. "vx.f32"). Lets users run the library on real
// SDRBench downloads exactly like the paper's artifact.
#pragma once

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace cuszp2::io {

/// Reads a whole file as raw little-endian T values.
template <FloatingPoint T>
std::vector<T> readRaw(const std::string& path);

/// Writes values as raw little-endian bytes.
template <FloatingPoint T>
void writeRaw(const std::string& path, std::span<const T> values);

/// Reads/writes arbitrary bytes (compressed streams).
std::vector<std::byte> readBytes(const std::string& path);
void writeBytes(const std::string& path, ConstByteSpan bytes);

/// Crash-safe writeBytes: the bytes land in "<path>.tmp" and are renamed
/// over `path` only once fully written, so a crash mid-write never
/// destroys an existing file at `path`. On POSIX the rename also means an
/// io::MappedBytes still mapping the old file keeps reading the old
/// (unchanged) inode — overwriting a file that is currently mapped is
/// safe.
void writeBytesAtomic(const std::string& path, ConstByteSpan bytes);

/// Read-only zero-copy view of a file. Prefers mmap — no read copy, pages
/// fault in on demand, so reading a multi-GB archive to decode one field
/// touches only that field's pages. Falls back to a pread-filled heap
/// buffer when mmap is unavailable (non-regular files, platforms without
/// it); the bytes() contract is identical either way. Move-only RAII: the
/// mapping (or buffer) lives exactly as long as the object, and every
/// span handed out must not outlive it.
class MappedBytes {
 public:
  MappedBytes() = default;
  explicit MappedBytes(const std::string& path);
  ~MappedBytes();

  MappedBytes(MappedBytes&& o) noexcept { *this = std::move(o); }
  MappedBytes& operator=(MappedBytes&& o) noexcept;
  MappedBytes(const MappedBytes&) = delete;
  MappedBytes& operator=(const MappedBytes&) = delete;

  ConstByteSpan bytes() const { return view_; }
  const std::byte* data() const { return view_.data(); }
  usize size() const { return view_.size(); }

  /// True when the view is a zero-copy mmap (false: pread fallback).
  bool zeroCopy() const { return map_ != nullptr; }

  /// Typed view of the whole file (raw SDRBench fields). mmap regions are
  /// page-aligned and the fallback buffer allocator-aligned, so the
  /// reinterpret is always valid for element types.
  template <FloatingPoint T>
  std::span<const T> view() const {
    require(view_.size() % sizeof(T) == 0,
            "io: mapped file size is not a multiple of the element size");
    return {reinterpret_cast<const T*>(view_.data()),
            view_.size() / sizeof(T)};
  }

 private:
  void* map_ = nullptr;  // mmap region base (nullptr when buffered/empty)
  usize mapBytes_ = 0;
  std::vector<std::byte> buffer_;  // pread fallback storage
  ConstByteSpan view_;
};

extern template std::vector<f32> readRaw<f32>(const std::string&);
extern template std::vector<f64> readRaw<f64>(const std::string&);
extern template void writeRaw<f32>(const std::string&, std::span<const f32>);
extern template void writeRaw<f64>(const std::string&, std::span<const f64>);

}  // namespace cuszp2::io
