#include "io/journal.hpp"

#include <cstring>

#include "common/crc32.hpp"
#include "common/error.hpp"
#include "io/crash.hpp"
#include "io/raw.hpp"
#include "telemetry/metrics.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define CUSZP2_IO_HAS_POSIX_SYNC 1
#include <unistd.h>
#endif

namespace cuszp2::io {

namespace {

void putU32(std::vector<std::byte>& out, u32 v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::byte>((v >> (i * 8)) & 0xff));
  }
}

void putU64(std::vector<std::byte>& out, u64 v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::byte>((v >> (i * 8)) & 0xff));
  }
}

u32 readU32(const std::byte* p) {
  u32 v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<u32>(std::to_integer<u8>(p[i])) << (i * 8);
  }
  return v;
}

u64 readU64(const std::byte* p) {
  u64 v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<u64>(std::to_integer<u8>(p[i])) << (i * 8);
  }
  return v;
}

std::vector<std::byte> buildHeader(u64 ownerTag, u64 baseTick) {
  std::vector<std::byte> h;
  h.reserve(kJournalHeaderBytes);
  putU32(h, kJournalMagic);
  putU32(h, kJournalVersion);
  putU64(h, ownerTag);
  putU64(h, baseTick);
  putU32(h, 0);  // reserved
  putU32(h, crc32(ConstByteSpan(h.data(), h.size())));
  return h;
}

void syncFile(std::FILE* f, const std::string& path) {
#if defined(CUSZP2_IO_HAS_POSIX_SYNC)
  require(::fsync(::fileno(f)) == 0, "journal: fsync failed for " + path);
#else
  (void)f;
  (void)path;
#endif
}

void truncateFile(const std::string& path, usize bytes) {
#if defined(CUSZP2_IO_HAS_POSIX_SYNC)
  require(::truncate(path.c_str(), static_cast<off_t>(bytes)) == 0,
          "journal: cannot truncate " + path);
#else
  std::vector<std::byte> keep = readBytes(path);
  require(bytes <= keep.size(), "journal: truncate beyond end of " + path);
  keep.resize(bytes);
  writeBytes(path, keep);
#endif
}

}  // namespace

ReplayResult replayJournal(const std::string& path) {
  const std::vector<std::byte> bytes = readBytes(path);
  require(bytes.size() >= kJournalHeaderBytes,
          "journal: header truncated in " + path);
  require(readU32(bytes.data()) == kJournalMagic,
          "journal: bad magic in " + path);
  require(readU32(bytes.data() + 4) == kJournalVersion,
          "journal: unsupported version in " + path);
  const u32 headerCrc = readU32(bytes.data() + kJournalHeaderBytes - 4);
  require(crc32(ConstByteSpan(bytes.data(), kJournalHeaderBytes - 4)) ==
              headerCrc,
          "journal: header checksum mismatch in " + path);

  ReplayResult out;
  out.ownerTag = readU64(bytes.data() + 8);
  out.baseTick = readU64(bytes.data() + 16);

  usize off = kJournalHeaderBytes;
  while (true) {
    if (bytes.size() - off < kRecordFrameBytes) break;
    const std::byte* frame = bytes.data() + off;
    if (readU32(frame) != kRecordMagic) break;
    const u32 type = readU32(frame + 4);
    const u32 payloadBytes = readU32(frame + 8);
    const u32 payloadCrc = readU32(frame + 12);
    if (payloadBytes > bytes.size() - off - kRecordFrameBytes) break;
    const ConstByteSpan payload(frame + kRecordFrameBytes, payloadBytes);
    if (crc32(payload) != payloadCrc) break;
    JournalRecord rec;
    rec.type = type;
    rec.payload.assign(payload.begin(), payload.end());
    out.records.push_back(std::move(rec));
    off += kRecordFrameBytes + payloadBytes;
  }

  out.validBytes = off;
  out.discardedBytes = bytes.size() - off;
  out.torn = out.discardedBytes > 0;

  auto& reg = telemetry::registry();
  reg.counter("journal.replays").add(1);
  reg.counter("journal.replayed_records").add(out.records.size());
  if (out.torn) {
    reg.counter("journal.torn_tails").add(1);
    reg.counter("journal.discarded_bytes").add(out.discardedBytes);
  }
  return out;
}

JournalWriter::JournalWriter(const std::string& path, u64 ownerTag,
                             u64 baseTick)
    : JournalWriter(path, ownerTag, baseTick, /*fresh=*/true, 0) {}

std::unique_ptr<JournalWriter> JournalWriter::resume(const std::string& path,
                                                     u64 ownerTag,
                                                     u64 baseTick,
                                                     usize validBytes) {
  require(validBytes >= kJournalHeaderBytes,
          "journal: resume offset inside the header of " + path);
  return std::unique_ptr<JournalWriter>(
      new JournalWriter(path, ownerTag, baseTick, /*fresh=*/false, validBytes));
}

JournalWriter::JournalWriter(std::string path, u64 ownerTag, u64 baseTick,
                             bool fresh, usize resumeValidBytes)
    : path_(std::move(path)), ownerTag_(ownerTag), baseTick_(baseTick) {
  if (fresh) {
    const std::vector<std::byte> header = buildHeader(ownerTag_, baseTick_);
    writeBytesAtomic(path_, ConstByteSpan(header.data(), header.size()));
    openForAppend(0);
  } else {
    openForAppend(resumeValidBytes);
  }
}

JournalWriter::~JournalWriter() {
  // Unsynced records are intentionally dropped: they were never
  // acknowledged as durable.
  if (file_ != nullptr) std::fclose(file_);
}

void JournalWriter::openForAppend(usize truncateTo) {
  if (truncateTo > 0) truncateFile(path_, truncateTo);
  file_ = std::fopen(path_.c_str(), "ab");
  require(file_ != nullptr, "journal: cannot open " + path_ + " for append");
}

void JournalWriter::append(u32 type, ConstByteSpan payload) {
  require(payload.size() <= static_cast<usize>(UINT32_MAX),
          "journal: record payload too large");
  std::lock_guard<std::mutex> lock(mu_);
  putU32(pending_, kRecordMagic);
  putU32(pending_, type);
  putU32(pending_, static_cast<u32>(payload.size()));
  putU32(pending_, crc32(payload));
  pending_.insert(pending_.end(), payload.begin(), payload.end());
  ++appended_;
  telemetry::registry().counter("journal.appends").add(1);
}

void JournalWriter::flushLocked() {
  if (pending_.empty()) return;
  const CrashAction act =
      crashCheckpoint(CrashSite::Write, path_, pending_.size());
  if (act.fire) {
    // Persist the torn prefix (plus any seeded garbage tail) exactly as a
    // dying kernel would have, then die.
    if (act.keepBytes > 0) {
      std::fwrite(pending_.data(), 1, act.keepBytes, file_);
    }
    if (!act.garbage.empty()) {
      std::fwrite(act.garbage.data(), 1, act.garbage.size(), file_);
    }
    std::fflush(file_);
    throwCrash(CrashSite::Write, path_);
  }
  require(std::fwrite(pending_.data(), 1, pending_.size(), file_) ==
              pending_.size(),
          "journal: short write to " + path_);
  require(std::fflush(file_) == 0, "journal: flush failed for " + path_);
  telemetry::registry().counter("journal.bytes_appended").add(pending_.size());
  pending_.clear();
}

void JournalWriter::sync() {
  std::lock_guard<std::mutex> lock(mu_);
  flushLocked();
  const CrashAction act = crashCheckpoint(CrashSite::Sync, path_, 0);
  if (act.fire) throwCrash(CrashSite::Sync, path_);
  syncFile(file_, path_);
  synced_ = appended_;
  telemetry::registry().counter("journal.syncs").add(1);
}

void JournalWriter::reset(u64 newBaseTick) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  // Pending (unsynced) records are superseded by the snapshot the caller
  // just wrote; drop them. The atomic header replacement means a crash
  // here leaves either the old journal or the fresh one — both replayable.
  pending_.clear();
  baseTick_ = newBaseTick;
  const std::vector<std::byte> header = buildHeader(ownerTag_, baseTick_);
  writeBytesAtomic(path_, ConstByteSpan(header.data(), header.size()));
  openForAppend(0);
  appended_ = 0;
  synced_ = 0;
  telemetry::registry().counter("journal.resets").add(1);
}

u64 JournalWriter::recordsAppended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return appended_;
}

u64 JournalWriter::recordsSynced() const {
  std::lock_guard<std::mutex> lock(mu_);
  return synced_;
}

}  // namespace cuszp2::io
