// Multi-field archive container.
//
// HPC datasets are collections of named fields (CESM-ATM has 33, HACC 6,
// ...). This container packs one compressed stream per field with a table
// of contents so a whole dataset round-trips through a single file, and
// individual fields can be located without touching the rest — the
// file-level analogue of cuSZp2's block-level random access.
//
// Layout (little-endian):
//   [magic u64][field count u64]
//   per field: [name length u32][name bytes][stream length u64]
//   concatenated streams
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "core/stream.hpp"

namespace cuszp2::io {

class ArchiveWriter {
 public:
  /// Adds a field; names must be unique and non-empty.
  void addField(const std::string& name, ConstByteSpan stream);

  /// Compresses several same-precision fields through one batched launch
  /// on `stream` (one latch, one task-submission pass — see
  /// core::CompressorStream::compressBatch) and adds each resulting
  /// cuSZp2 stream under the matching name. `names` and `fields` must have
  /// equal size; name rules are as for addField. Returns the per-field
  /// compression results (profile, ratio) in input order.
  template <FloatingPoint T>
  std::vector<core::Compressed> addFieldsCompressed(
      core::CompressorStream& stream, std::span<const std::string> names,
      std::span<const std::span<const T>> fields);

  bool hasField(const std::string& name) const;
  usize fieldCount() const { return fields_.size(); }

  /// Serializes the archive. The writer remains usable afterwards.
  std::vector<std::byte> finalize() const;

 private:
  struct Field {
    std::string name;
    std::vector<std::byte> stream;
  };
  std::vector<Field> fields_;
};

class ArchiveReader {
 public:
  /// Parses and validates the table of contents; the archive bytes must
  /// outlive the reader (field() returns views into them).
  explicit ArchiveReader(ConstByteSpan archive);

  usize fieldCount() const { return entries_.size(); }
  std::vector<std::string> fieldNames() const;
  bool hasField(const std::string& name) const;

  /// Returns the compressed stream of a field; throws if absent.
  ConstByteSpan field(const std::string& name) const;

 private:
  struct Entry {
    std::string name;
    usize offset;
    usize length;
  };
  ConstByteSpan archive_;
  std::vector<Entry> entries_;
};

}  // namespace cuszp2::io
