// Multi-field archive container.
//
// HPC datasets are collections of named fields (CESM-ATM has 33, HACC 6,
// ...). This container packs one compressed stream per field with a table
// of contents so a whole dataset round-trips through a single file, and
// individual fields can be located without touching the rest — the
// file-level analogue of cuSZp2's block-level random access.
//
// Layout (little-endian):
//   [magic u64][field count u64]
//   per field: [name length u32][name bytes][stream length u64]
//   concatenated streams
//   optional parity trailer (see ParityOptions / docs/FORMAT.md §6)
//
// The parity trailer is self-locating from the end of the file and covers
// the whole archive before it (header + TOC + streams) with per-chunk
// CRC-32s plus one XOR parity chunk per group of chunks, so a single
// damaged chunk per group can be located and rebuilt in place
// (repairParity). Readers unaware of the trailer ignore it: the TOC
// tolerates trailing bytes.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "core/stream.hpp"

namespace cuszp2::io {

/// Parity-trailer parameters (ArchiveWriter::finalize overload). The
/// protected region is split into `chunkBytes` chunks; each group of
/// `groupSize` consecutive chunks gets one XOR parity chunk, so one
/// damaged chunk per group is recoverable at an overhead of roughly
/// 1/groupSize plus 4 bytes per chunk for the CRC table.
struct ParityOptions {
  usize chunkBytes = 4096;
  usize groupSize = 8;
};

/// Outcome of verifyParity / repairParity over an archive.
struct RepairReport {
  /// False when the archive carries no parity trailer (nothing to check;
  /// the other fields are meaningless).
  bool parityPresent = false;

  /// False when a trailer is present but itself damaged (bad framing or
  /// trailer CRC); no chunk verdicts are available then.
  bool trailerOk = false;

  u64 protectedBytes = 0;
  u64 totalChunks = 0;

  /// Chunks whose CRC-32 no longer matches.
  u64 badChunks = 0;

  /// verifyParity: bad chunks whose XOR reconstruction checks out (what a
  /// repair would fix). repairParity: always 0 (see repairedChunks).
  u64 repairableChunks = 0;

  /// repairParity: bad chunks rebuilt in place (reconstruction verified
  /// against the stored chunk CRC before writing).
  u64 repairedChunks = 0;

  /// Bad chunks beyond parity's reach: more than one damaged chunk in the
  /// group, or the reconstruction failed its CRC (damaged parity chunk or
  /// damaged CRC table entry).
  u64 unrepairableChunks = 0;

  /// No integrity problem found (vacuously true without a trailer).
  bool clean() const {
    return !parityPresent || (trailerOk && badChunks == 0);
  }
};

/// True when the bytes start with the archive magic (cheap container
/// sniff for tools that accept both streams and archives).
bool isArchive(ConstByteSpan bytes);

/// Checks an archive's parity trailer without modifying anything.
RepairReport verifyParity(ConstByteSpan archive);

/// Rebuilds damaged chunks in place using the parity trailer. Each
/// reconstruction is verified against the stored chunk CRC before any
/// byte is written back.
RepairReport repairParity(std::span<std::byte> archive);

/// Appends a self-healing parity trailer (see ParityOptions) covering
/// `bytes` and returns the sealed result. ArchiveWriter::finalize(parity)
/// is this applied to finalize(); the cluster's replicated archive store
/// seals every stored copy the same way, so cross-shard replicas verify
/// and self-repair with the file-level verifyParity/repairParity
/// machinery.
std::vector<std::byte> withParityTrailer(std::vector<std::byte> bytes,
                                         const ParityOptions& parity);

class ArchiveWriter {
 public:
  /// Adds a field; names must be unique and non-empty.
  void addField(const std::string& name, ConstByteSpan stream);

  /// Compresses several same-precision fields through one batched launch
  /// on `stream` (one latch, one task-submission pass — see
  /// core::CompressorStream::compressBatch) and adds each resulting
  /// cuSZp2 stream under the matching name. `names` and `fields` must have
  /// equal size; name rules are as for addField. Returns the per-field
  /// compression results (profile, ratio) in input order.
  template <FloatingPoint T>
  std::vector<core::Compressed> addFieldsCompressed(
      core::CompressorStream& stream, std::span<const std::string> names,
      std::span<const std::span<const T>> fields);

  bool hasField(const std::string& name) const;
  usize fieldCount() const { return fields_.size(); }

  /// Serializes the archive. The writer remains usable afterwards.
  std::vector<std::byte> finalize() const;

  /// Serializes the archive with a self-healing parity trailer appended
  /// (see ParityOptions). Readers unaware of parity read the result
  /// unchanged.
  std::vector<std::byte> finalize(const ParityOptions& parity) const;

 private:
  struct Field {
    std::string name;
    std::vector<std::byte> stream;
  };
  std::vector<Field> fields_;
};

class ArchiveReader {
 public:
  /// Parses and validates the table of contents; the archive bytes must
  /// outlive the reader (field() returns views into them).
  explicit ArchiveReader(ConstByteSpan archive);

  usize fieldCount() const { return entries_.size(); }
  std::vector<std::string> fieldNames() const;
  bool hasField(const std::string& name) const;

  /// Returns the compressed stream of a field; throws if absent.
  ConstByteSpan field(const std::string& name) const;

 private:
  struct Entry {
    std::string name;
    usize offset;
    usize length;
  };
  ConstByteSpan archive_;
  std::vector<Entry> entries_;
};

}  // namespace cuszp2::io
