// Append-only write-ahead journal with CRC-framed records and explicit
// sync barriers.
//
// Wire format (all integers little-endian):
//
//   header  : u32 magic "JNL1" | u32 version | u64 ownerTag |
//             u64 baseTick | u32 reserved(0) | u32 crc32(header bytes)
//   record  : u32 recordMagic   (kRecordMagic, never zero)
//             u32 type          (owner-defined record kind)
//             u32 payloadBytes
//             u32 crc32(payload)
//             payloadBytes of payload
//   ...records repeat until end of file.
//
// Durability contract: append() only buffers in memory. sync() flushes
// the buffered records and issues an fsync — *only after sync() returns
// may the caller acknowledge the operation as durable*. A crash between
// append() and sync() loses exactly the unsynced suffix, which is the
// honest write-back semantics the recovery drills exercise.
//
// Torn tails: a crash mid-flush can leave a truncated, zero-filled, or
// garbage suffix. replayJournal() stops at the first frame whose magic,
// length, or payload CRC fails and reports the suffix as discarded —
// torn tails are *tolerated*, never fatal. Only a bad header (wrong
// magic/version, header CRC mismatch) is unrecoverable and throws.
//
// Both the flush and the fsync pass through the crash-injection
// checkpoints (crash.hpp), so drills can kill the process at either
// barrier with a seeded tear.
#pragma once

#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace cuszp2::io {

constexpr u32 kJournalMagic = 0x314c4e4a;  // "JNL1"
constexpr u32 kJournalVersion = 1;
constexpr u32 kRecordMagic = 0x4352454a;   // "JREC" — nonzero, so a
                                           // zero-filled tail can't frame
constexpr usize kJournalHeaderBytes = 4 + 4 + 8 + 8 + 4 + 4;
constexpr usize kRecordFrameBytes = 4 * 4;

/// Live accounting of an attached journal, for health lines and tests.
struct JournalStatus {
  bool attached = false;
  std::string path;
  u64 baseTick = 0;         ///< owner's logical clock at the last reset
  u64 recordsAppended = 0;  ///< records since the last reset
  u64 recordsSynced = 0;    ///< of those, records covered by a sync barrier
};

/// One replayed record.
struct JournalRecord {
  u32 type = 0;
  std::vector<std::byte> payload;
};

/// Result of replayJournal(). `torn` reports whether a damaged suffix was
/// discarded (informational — the records before it are all intact).
struct ReplayResult {
  u64 ownerTag = 0;        ///< identity stamp from the header
  u64 baseTick = 0;        ///< owner's logical clock when the journal began
  std::vector<JournalRecord> records;
  bool torn = false;
  usize validBytes = 0;    ///< header + intact records
  usize discardedBytes = 0;
};

/// Parses `path`, returning every intact record and truncation info for
/// any torn tail. Throws cuszp2::Error if the file is missing or the
/// header itself is damaged (the unrecoverable case — exit 2 in the CLI).
ReplayResult replayJournal(const std::string& path);

/// Appender over a journal file. Thread-safe: append()/sync() may be
/// called from concurrent workers (the service journals from its worker
/// pool). Not copyable or movable — hold it behind a unique_ptr.
class JournalWriter {
 public:
  /// Creates a fresh journal at `path` (atomically replacing any previous
  /// file) with the given identity header, then opens it for appending.
  JournalWriter(const std::string& path, u64 ownerTag, u64 baseTick);

  /// Reopens an existing journal for appending after replay, first
  /// truncating it to `validBytes` so a torn tail never precedes new
  /// records.
  static std::unique_ptr<JournalWriter> resume(const std::string& path,
                                               u64 ownerTag, u64 baseTick,
                                               usize validBytes);

  ~JournalWriter();

  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Buffers one record. Cheap; no I/O. The record is NOT durable until
  /// the next sync() returns.
  void append(u32 type, ConstByteSpan payload);

  /// Flushes buffered records through the Write crash checkpoint, then
  /// fsyncs through the Sync checkpoint. After this returns, every
  /// appended record is durable.
  void sync();

  /// Atomically replaces the journal with a fresh empty one stamped
  /// `newBaseTick` (called after the owner writes a full snapshot). A
  /// crash mid-reset leaves either the old or the new journal intact.
  void reset(u64 newBaseTick);

  const std::string& path() const { return path_; }
  u64 baseTick() const { return baseTick_; }

  /// Records appended since construction/reset (including unsynced ones).
  u64 recordsAppended() const;
  /// Records known durable (covered by a completed sync()).
  u64 recordsSynced() const;

 private:
  JournalWriter(std::string path, u64 ownerTag, u64 baseTick, bool fresh,
                usize resumeValidBytes);
  void openForAppend(usize truncateTo);
  void flushLocked();  // requires mu_ held

  std::string path_;
  u64 ownerTag_ = 0;
  u64 baseTick_ = 0;

  mutable std::mutex mu_;
  std::FILE* file_ = nullptr;
  std::vector<std::byte> pending_;  // framed records not yet flushed
  u64 appended_ = 0;
  u64 synced_ = 0;
};

}  // namespace cuszp2::io
