#include "io/archive.hpp"

#include <algorithm>
#include <cstring>

#include "common/crc32.hpp"
#include "common/error.hpp"

namespace cuszp2::io {

namespace {

constexpr u64 kArchiveMagic = 0x32505A43'48435241ull;  // "ARCHCZP2"
constexpr u64 kParityMagic = 0x32505A43'52415001ull;   // parity trailer
constexpr u32 kParityVersion = 1;

/// Fixed trailer byte counts: the header fields after the leading magic,
/// and the self-locating tail [trailer CRC u32][trailer bytes u64][magic
/// u64] at the very end of the archive.
constexpr usize kParityHeadBytes = 48;
constexpr usize kParityTailBytes = 20;

void put64(std::vector<std::byte>& out, u64 v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFFu));
  }
}

void put32(std::vector<std::byte>& out, u32 v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFFu));
  }
}

class Cursor {
 public:
  explicit Cursor(ConstByteSpan data) : data_(data) {}

  u64 get64() {
    require(pos_ + 8 <= data_.size(), "Archive: truncated header");
    u64 v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<u64>(std::to_integer<u64>(data_[pos_ + i])) << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  u32 get32() {
    require(pos_ + 4 <= data_.size(), "Archive: truncated header");
    u32 v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<u32>(std::to_integer<u32>(data_[pos_ + i])) << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  std::string getString(usize len) {
    require(pos_ + len <= data_.size(), "Archive: truncated field name");
    std::string s(len, '\0');
    for (usize i = 0; i < len; ++i) {
      s[i] = static_cast<char>(std::to_integer<u8>(data_[pos_ + i]));
    }
    pos_ += len;
    return s;
  }

  usize position() const { return pos_; }

 private:
  ConstByteSpan data_;
  usize pos_ = 0;
};

u32 read32(ConstByteSpan data, usize pos) {
  u32 v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<u32>(std::to_integer<u32>(data[pos + i])) << (8 * i);
  }
  return v;
}

u64 read64(ConstByteSpan data, usize pos) {
  u64 v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<u64>(std::to_integer<u64>(data[pos + i])) << (8 * i);
  }
  return v;
}

/// Resolved parity-trailer geometry (absolute positions in the archive).
struct TrailerView {
  usize trailerStart = 0;
  u64 protectedBytes = 0;
  u64 chunkBytes = 0;
  u64 groupSize = 0;
  u64 chunkCount = 0;
  u64 groupCount = 0;
  usize crcTable = 0;
  usize parity = 0;
};

enum class TrailerStatus { Absent, Damaged, Ok };

/// Locates and validates the parity trailer from the end of the archive:
/// tail magic -> framing -> trailer CRC -> geometry consistency. Any
/// inconsistency after the tail magic matched reports Damaged rather than
/// Absent, so a corrupted trailer is never silently treated as "no
/// parity".
TrailerStatus locateTrailer(ConstByteSpan archive, TrailerView& t) {
  const usize minTrailer = kParityHeadBytes + kParityTailBytes;
  if (archive.size() < minTrailer ||
      read64(archive, archive.size() - 8) != kParityMagic) {
    return TrailerStatus::Absent;
  }
  const u64 trailerBytes = read64(archive, archive.size() - 16);
  if (trailerBytes < minTrailer || trailerBytes > archive.size()) {
    return TrailerStatus::Damaged;
  }
  t.trailerStart = archive.size() - static_cast<usize>(trailerBytes);
  if (read64(archive, t.trailerStart) != kParityMagic) {
    return TrailerStatus::Damaged;
  }
  const u32 storedCrc = read32(archive, archive.size() - kParityTailBytes);
  const u32 actualCrc = crc32(archive.subspan(
      t.trailerStart, archive.size() - kParityTailBytes - t.trailerStart));
  if (storedCrc != actualCrc) return TrailerStatus::Damaged;
  if ((read64(archive, t.trailerStart + 8) & 0xFFFFFFFFu) != kParityVersion) {
    return TrailerStatus::Damaged;
  }
  t.protectedBytes = read64(archive, t.trailerStart + 16);
  t.chunkBytes = read64(archive, t.trailerStart + 24);
  t.groupSize = read64(archive, t.trailerStart + 32);
  t.chunkCount = read64(archive, t.trailerStart + 40);
  if (t.chunkBytes == 0 || t.groupSize < 2 ||
      t.protectedBytes != t.trailerStart ||
      t.chunkCount !=
          (t.protectedBytes + t.chunkBytes - 1) / t.chunkBytes) {
    return TrailerStatus::Damaged;
  }
  t.groupCount = (t.chunkCount + t.groupSize - 1) / t.groupSize;
  t.crcTable = t.trailerStart + kParityHeadBytes;
  t.parity = t.crcTable + static_cast<usize>(t.chunkCount) * 4;
  const usize expectEnd = t.parity +
                          static_cast<usize>(t.groupCount * t.chunkBytes) +
                          kParityTailBytes;
  if (expectEnd != archive.size()) return TrailerStatus::Damaged;
  return TrailerStatus::Ok;
}

/// Shared verify/repair walk. `mut` is null for verify (reconstructions
/// are attempted into scratch and counted as repairable) and the
/// archive's mutable base for repair (verified reconstructions are
/// written back).
RepairReport scanParity(ConstByteSpan archive, std::byte* mut) {
  RepairReport rep;
  TrailerView t;
  const TrailerStatus status = locateTrailer(archive, t);
  if (status == TrailerStatus::Absent) return rep;
  rep.parityPresent = true;
  if (status == TrailerStatus::Damaged) return rep;
  rep.trailerOk = true;
  rep.protectedBytes = t.protectedBytes;
  rep.totalChunks = t.chunkCount;

  const auto chunkLen = [&](u64 c) {
    return static_cast<usize>(std::min<u64>(
        t.chunkBytes, t.protectedBytes - c * t.chunkBytes));
  };

  std::vector<std::byte> acc(static_cast<usize>(t.chunkBytes));
  std::vector<u64> bad;
  for (u64 g = 0; g < t.groupCount; ++g) {
    const u64 first = g * t.groupSize;
    const u64 last = std::min(t.chunkCount, first + t.groupSize);
    bad.clear();
    for (u64 c = first; c < last; ++c) {
      const u32 crc = crc32(archive.subspan(
          static_cast<usize>(c * t.chunkBytes), chunkLen(c)));
      if (crc != read32(archive, t.crcTable + static_cast<usize>(c) * 4)) {
        bad.push_back(c);
      }
    }
    if (bad.empty()) continue;
    rep.badChunks += bad.size();
    if (bad.size() > 1) {
      rep.unrepairableChunks += bad.size();
      continue;
    }

    // XOR of the parity chunk with every intact chunk of the group
    // reconstructs the damaged one (short final chunk zero-padded).
    const u64 target = bad[0];
    std::memcpy(acc.data(),
                archive.data() + t.parity +
                    static_cast<usize>(g * t.chunkBytes),
                static_cast<usize>(t.chunkBytes));
    for (u64 c = first; c < last; ++c) {
      if (c == target) continue;
      const std::byte* src =
          archive.data() + static_cast<usize>(c * t.chunkBytes);
      const usize len = chunkLen(c);
      for (usize i = 0; i < len; ++i) acc[i] ^= src[i];
    }
    const usize targetLen = chunkLen(target);
    const u32 rebuiltCrc = crc32(ConstByteSpan(acc.data(), targetLen));
    if (rebuiltCrc !=
        read32(archive, t.crcTable + static_cast<usize>(target) * 4)) {
      ++rep.unrepairableChunks;
      continue;
    }
    if (mut != nullptr) {
      std::memcpy(mut + static_cast<usize>(target * t.chunkBytes),
                  acc.data(), targetLen);
      ++rep.repairedChunks;
    } else {
      ++rep.repairableChunks;
    }
  }
  return rep;
}

}  // namespace

bool isArchive(ConstByteSpan bytes) {
  return bytes.size() >= 8 && read64(bytes, 0) == kArchiveMagic;
}

RepairReport verifyParity(ConstByteSpan archive) {
  return scanParity(archive, nullptr);
}

RepairReport repairParity(std::span<std::byte> archive) {
  return scanParity(ConstByteSpan(archive.data(), archive.size()),
                    archive.data());
}

void ArchiveWriter::addField(const std::string& name, ConstByteSpan stream) {
  require(!name.empty(), "ArchiveWriter: field name must be non-empty");
  require(name.size() <= 4096, "ArchiveWriter: field name too long");
  require(!hasField(name), "ArchiveWriter: duplicate field " + name);
  fields_.push_back(
      {name, std::vector<std::byte>(stream.begin(), stream.end())});
}

template <FloatingPoint T>
std::vector<core::Compressed> ArchiveWriter::addFieldsCompressed(
    core::CompressorStream& stream, std::span<const std::string> names,
    std::span<const std::span<const T>> fields) {
  require(names.size() == fields.size(),
          "ArchiveWriter: one name per field required");
  // Validate every name up front so a mid-batch failure cannot leave a
  // partially-added batch behind.
  for (usize i = 0; i < names.size(); ++i) {
    require(!names[i].empty(), "ArchiveWriter: field name must be non-empty");
    require(names[i].size() <= 4096, "ArchiveWriter: field name too long");
    require(!hasField(names[i]), "ArchiveWriter: duplicate field " + names[i]);
    for (usize j = i + 1; j < names.size(); ++j) {
      require(names[i] != names[j],
              "ArchiveWriter: duplicate field " + names[i]);
    }
  }
  std::vector<core::Compressed> results = stream.compressBatch(fields);
  for (usize i = 0; i < names.size(); ++i) {
    fields_.push_back({names[i], results[i].stream});
  }
  return results;
}

template std::vector<core::Compressed> ArchiveWriter::addFieldsCompressed<f32>(
    core::CompressorStream&, std::span<const std::string>,
    std::span<const std::span<const f32>>);
template std::vector<core::Compressed> ArchiveWriter::addFieldsCompressed<f64>(
    core::CompressorStream&, std::span<const std::string>,
    std::span<const std::span<const f64>>);

bool ArchiveWriter::hasField(const std::string& name) const {
  return std::any_of(fields_.begin(), fields_.end(),
                     [&](const Field& f) { return f.name == name; });
}

std::vector<std::byte> ArchiveWriter::finalize() const {
  std::vector<std::byte> out;
  put64(out, kArchiveMagic);
  put64(out, fields_.size());
  for (const auto& f : fields_) {
    put32(out, static_cast<u32>(f.name.size()));
    for (char c : f.name) {
      out.push_back(static_cast<std::byte>(static_cast<u8>(c)));
    }
    put64(out, f.stream.size());
  }
  for (const auto& f : fields_) {
    out.insert(out.end(), f.stream.begin(), f.stream.end());
  }
  return out;
}

std::vector<std::byte> ArchiveWriter::finalize(
    const ParityOptions& parity) const {
  return withParityTrailer(finalize(), parity);
}

std::vector<std::byte> withParityTrailer(std::vector<std::byte> out,
                                         const ParityOptions& parity) {
  require(parity.chunkBytes >= 16,
          "withParityTrailer: parity chunkBytes must be at least 16");
  require(parity.groupSize >= 2,
          "withParityTrailer: parity groupSize must be at least 2");

  const u64 protectedBytes = out.size();
  const u64 chunkCount =
      (protectedBytes + parity.chunkBytes - 1) / parity.chunkBytes;
  const u64 groupCount =
      (chunkCount + parity.groupSize - 1) / parity.groupSize;
  const usize trailerStart = out.size();
  out.reserve(out.size() + kParityHeadBytes +
              static_cast<usize>(chunkCount) * 4 +
              static_cast<usize>(groupCount) * parity.chunkBytes +
              kParityTailBytes);

  put64(out, kParityMagic);
  put64(out, kParityVersion);  // version u32 + reserved u32
  put64(out, protectedBytes);
  put64(out, parity.chunkBytes);
  put64(out, parity.groupSize);
  put64(out, chunkCount);

  const auto chunkLen = [&](u64 c) {
    return std::min<usize>(parity.chunkBytes,
                           static_cast<usize>(protectedBytes) -
                               c * parity.chunkBytes);
  };
  for (u64 c = 0; c < chunkCount; ++c) {
    put32(out, crc32(ConstByteSpan(out.data() + c * parity.chunkBytes,
                                   chunkLen(c))));
  }
  std::vector<std::byte> acc(parity.chunkBytes);
  for (u64 g = 0; g < groupCount; ++g) {
    std::fill(acc.begin(), acc.end(), std::byte{0});
    const u64 first = g * parity.groupSize;
    const u64 last = std::min(chunkCount, first + parity.groupSize);
    for (u64 c = first; c < last; ++c) {
      const std::byte* src = out.data() + c * parity.chunkBytes;
      const usize len = chunkLen(c);
      for (usize i = 0; i < len; ++i) acc[i] ^= src[i];
    }
    out.insert(out.end(), acc.begin(), acc.end());
  }

  const usize bodyBytes = out.size() - trailerStart;
  put32(out, crc32(ConstByteSpan(out.data() + trailerStart, bodyBytes)));
  put64(out, bodyBytes + kParityTailBytes);
  put64(out, kParityMagic);
  return out;
}

ArchiveReader::ArchiveReader(ConstByteSpan archive) : archive_(archive) {
  Cursor cursor(archive);
  require(cursor.get64() == kArchiveMagic,
          "ArchiveReader: bad magic (not a cuSZp2 archive)");
  const u64 count = cursor.get64();
  require(count <= 1'000'000, "ArchiveReader: implausible field count");

  std::vector<usize> lengths;
  entries_.reserve(count);
  for (u64 i = 0; i < count; ++i) {
    Entry e;
    const u32 nameLen = cursor.get32();
    require(nameLen > 0 && nameLen <= 4096,
            "ArchiveReader: invalid field-name length");
    e.name = cursor.getString(nameLen);
    e.length = cursor.get64();
    entries_.push_back(std::move(e));
  }
  usize offset = cursor.position();
  for (auto& e : entries_) {
    e.offset = offset;
    require(offset + e.length >= offset, "ArchiveReader: length overflow");
    offset += e.length;
  }
  require(offset <= archive.size(),
          "ArchiveReader: archive shorter than its table of contents");
}

std::vector<std::string> ArchiveReader::fieldNames() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& e : entries_) names.push_back(e.name);
  return names;
}

bool ArchiveReader::hasField(const std::string& name) const {
  return std::any_of(entries_.begin(), entries_.end(),
                     [&](const Entry& e) { return e.name == name; });
}

ConstByteSpan ArchiveReader::field(const std::string& name) const {
  for (const auto& e : entries_) {
    if (e.name == name) return archive_.subspan(e.offset, e.length);
  }
  throw Error("ArchiveReader: no field named " + name);
}

}  // namespace cuszp2::io
