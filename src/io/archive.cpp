#include "io/archive.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace cuszp2::io {

namespace {

constexpr u64 kArchiveMagic = 0x32505A43'48435241ull;  // "ARCHCZP2"

void put64(std::vector<std::byte>& out, u64 v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFFu));
  }
}

void put32(std::vector<std::byte>& out, u32 v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFFu));
  }
}

class Cursor {
 public:
  explicit Cursor(ConstByteSpan data) : data_(data) {}

  u64 get64() {
    require(pos_ + 8 <= data_.size(), "Archive: truncated header");
    u64 v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<u64>(std::to_integer<u64>(data_[pos_ + i])) << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  u32 get32() {
    require(pos_ + 4 <= data_.size(), "Archive: truncated header");
    u32 v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<u32>(std::to_integer<u32>(data_[pos_ + i])) << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  std::string getString(usize len) {
    require(pos_ + len <= data_.size(), "Archive: truncated field name");
    std::string s(len, '\0');
    for (usize i = 0; i < len; ++i) {
      s[i] = static_cast<char>(std::to_integer<u8>(data_[pos_ + i]));
    }
    pos_ += len;
    return s;
  }

  usize position() const { return pos_; }

 private:
  ConstByteSpan data_;
  usize pos_ = 0;
};

}  // namespace

void ArchiveWriter::addField(const std::string& name, ConstByteSpan stream) {
  require(!name.empty(), "ArchiveWriter: field name must be non-empty");
  require(name.size() <= 4096, "ArchiveWriter: field name too long");
  require(!hasField(name), "ArchiveWriter: duplicate field " + name);
  fields_.push_back(
      {name, std::vector<std::byte>(stream.begin(), stream.end())});
}

template <FloatingPoint T>
std::vector<core::Compressed> ArchiveWriter::addFieldsCompressed(
    core::CompressorStream& stream, std::span<const std::string> names,
    std::span<const std::span<const T>> fields) {
  require(names.size() == fields.size(),
          "ArchiveWriter: one name per field required");
  // Validate every name up front so a mid-batch failure cannot leave a
  // partially-added batch behind.
  for (usize i = 0; i < names.size(); ++i) {
    require(!names[i].empty(), "ArchiveWriter: field name must be non-empty");
    require(names[i].size() <= 4096, "ArchiveWriter: field name too long");
    require(!hasField(names[i]), "ArchiveWriter: duplicate field " + names[i]);
    for (usize j = i + 1; j < names.size(); ++j) {
      require(names[i] != names[j],
              "ArchiveWriter: duplicate field " + names[i]);
    }
  }
  std::vector<core::Compressed> results = stream.compressBatch(fields);
  for (usize i = 0; i < names.size(); ++i) {
    fields_.push_back({names[i], results[i].stream});
  }
  return results;
}

template std::vector<core::Compressed> ArchiveWriter::addFieldsCompressed<f32>(
    core::CompressorStream&, std::span<const std::string>,
    std::span<const std::span<const f32>>);
template std::vector<core::Compressed> ArchiveWriter::addFieldsCompressed<f64>(
    core::CompressorStream&, std::span<const std::string>,
    std::span<const std::span<const f64>>);

bool ArchiveWriter::hasField(const std::string& name) const {
  return std::any_of(fields_.begin(), fields_.end(),
                     [&](const Field& f) { return f.name == name; });
}

std::vector<std::byte> ArchiveWriter::finalize() const {
  std::vector<std::byte> out;
  put64(out, kArchiveMagic);
  put64(out, fields_.size());
  for (const auto& f : fields_) {
    put32(out, static_cast<u32>(f.name.size()));
    for (char c : f.name) {
      out.push_back(static_cast<std::byte>(static_cast<u8>(c)));
    }
    put64(out, f.stream.size());
  }
  for (const auto& f : fields_) {
    out.insert(out.end(), f.stream.begin(), f.stream.end());
  }
  return out;
}

ArchiveReader::ArchiveReader(ConstByteSpan archive) : archive_(archive) {
  Cursor cursor(archive);
  require(cursor.get64() == kArchiveMagic,
          "ArchiveReader: bad magic (not a cuSZp2 archive)");
  const u64 count = cursor.get64();
  require(count <= 1'000'000, "ArchiveReader: implausible field count");

  std::vector<usize> lengths;
  entries_.reserve(count);
  for (u64 i = 0; i < count; ++i) {
    Entry e;
    const u32 nameLen = cursor.get32();
    require(nameLen > 0 && nameLen <= 4096,
            "ArchiveReader: invalid field-name length");
    e.name = cursor.getString(nameLen);
    e.length = cursor.get64();
    entries_.push_back(std::move(e));
  }
  usize offset = cursor.position();
  for (auto& e : entries_) {
    e.offset = offset;
    require(offset + e.length >= offset, "ArchiveReader: length overflow");
    offset += e.length;
  }
  require(offset <= archive.size(),
          "ArchiveReader: archive shorter than its table of contents");
}

std::vector<std::string> ArchiveReader::fieldNames() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& e : entries_) names.push_back(e.name);
  return names;
}

bool ArchiveReader::hasField(const std::string& name) const {
  return std::any_of(entries_.begin(), entries_.end(),
                     [&](const Entry& e) { return e.name == name; });
}

ConstByteSpan ArchiveReader::field(const std::string& name) const {
  for (const auto& e : entries_) {
    if (e.name == name) return archive_.subspan(e.offset, e.length);
  }
  throw Error("ArchiveReader: no field named " + name);
}

}  // namespace cuszp2::io
