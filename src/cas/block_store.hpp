// Content-addressed block store with cross-tenant dedup (ROADMAP item 4).
//
// A BlockStore holds named byte objects (compressed cuSZp2 streams,
// sealed archives, anything) for many tenants. Each object is split into
// fixed-size chunks; a chunk is keyed by its seeded 128-bit content hash
// (common/hash128.hpp) and stored ONCE no matter how many objects — or
// tenants — reference it. Every object keeps a per-tenant logical view
// (its own name, byte count and chunk list) while physically sharing
// chunk entries through refcounts:
//
//   * put() walks the object's chunks: a hash already present bumps its
//     refcount (a dedup hit — zero new bytes); a new hash inserts the
//     payload. Re-putting an existing key releases the old chunk list
//     first (copy-on-write rewrite).
//   * erase() decrements refcounts. A chunk reaching zero is freed
//     immediately, or — with StoreConfig::deferGc — parked at refcount 0
//     until gc() sweeps it, which lets an identical put() "resurrect" the
//     entry (refcount 0 -> 1, no byte copied) instead of re-storing it.
//   * get() reassembles the object and re-hashes every chunk on the way
//     out, so silent corruption of shared storage is detected at read
//     time rather than served to a tenant.
//
// On-disk form (save()/load(), docs/CAS.md): the store serializes as a
// standard io::ArchiveWriter container with two fields — "cas.index"
// (chunk table + object table, CRC-32-guarded) and "cas.data" (unique
// chunk payloads, CRC-32-trailed) — so io::MappedBytes + io::ArchiveReader
// give zero-copy reads: a loaded store serves chunk payloads as views
// into the mapped file and only the pages an object actually touches
// fault in. Being a real archive, a saved store can also be sealed with
// the XOR-parity trailer and checked/healed by the existing
// verify/repair machinery.
//
// All methods are thread-safe (one store mutex). Telemetry: every store
// feeds the cas.* counters/gauges (docs/OBSERVABILITY.md).
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/hash128.hpp"
#include "common/types.hpp"
#include "io/archive.hpp"
#include "io/journal.hpp"
#include "io/raw.hpp"
#include "telemetry/metrics.hpp"

namespace cuszp2::cas {

struct StoreConfig {
  /// Perturbs every chunk hash; two stores with different seeds address
  /// the same content differently (no cross-store chunk replay).
  u64 hashSeed = 0xCA5B10C5ull;

  /// Fixed chunking granularity. Smaller chunks dedup partial overlap at
  /// more index overhead; whole-object dedup works at any setting.
  usize chunkBytes = 64 * 1024;

  /// false: a chunk is freed the moment its refcount hits zero.
  /// true: zero-refcount chunks are parked until gc() sweeps them, so a
  /// re-put of identical content resurrects the entry for free.
  bool deferGc = false;
};

/// What one put() did (accounting for the dedup satellite assertions).
struct PutResult {
  u64 logicalBytes = 0;        ///< bytes of the object as the tenant sees it
  u64 physicalBytesAdded = 0;  ///< bytes actually stored (new chunks only)
  u64 newChunks = 0;
  u64 dedupChunks = 0;  ///< chunks served by an existing (or parked) entry
  bool replaced = false;  ///< the key existed; its old chunks were released
};

/// Point-in-time store accounting. Monotonic counters plus current
/// occupancy; value-comparable so chaos drills can assert two same-seed
/// runs produce identical snapshots.
struct StoreStats {
  // Occupancy (current).
  u64 objects = 0;
  u64 logicalChunks = 0;   ///< sum of object chunk-list lengths
  u64 uniqueChunks = 0;    ///< live chunk entries (refcount > 0)
  u64 parkedChunks = 0;    ///< zero-refcount entries awaiting gc()
  u64 logicalBytes = 0;    ///< sum of object sizes
  u64 physicalBytes = 0;   ///< sum of live unique chunk sizes

  // Monotonic activity counters.
  u64 puts = 0;
  u64 gets = 0;
  u64 erases = 0;
  u64 chunkHits = 0;    ///< dedup hits (incl. resurrections)
  u64 chunkMisses = 0;  ///< chunks that had to be stored
  u64 refIncs = 0;      ///< refcount churn, up
  u64 refDecs = 0;      ///< refcount churn, down
  u64 gcFreedChunks = 0;
  u64 gcFreedBytes = 0;
  u64 resurrections = 0;  ///< parked chunk re-referenced before its sweep
  u64 compactionMigrations = 0;     ///< objects rewritten by a compactor
  u64 compactionBytesReclaimed = 0; ///< size delta those rewrites won

  bool operator==(const StoreStats&) const = default;

  u64 bytesSaved() const {
    return logicalBytes >= physicalBytes ? logicalBytes - physicalBytes : 0;
  }
  /// Logical over physical bytes — the dedup headline (1.0 = no sharing).
  f64 dedupRatio() const {
    return physicalBytes > 0
               ? static_cast<f64>(logicalBytes) /
                     static_cast<f64>(physicalBytes)
               : 0.0;
  }
};

/// Live journal accounting for the CLI/serve health line (io-layer
/// struct; the store's baseTick is the tick of its last snapshot).
using JournalStatus = io::JournalStatus;

/// What BlockStore::recover() did (docs/DURABILITY.md).
struct RecoveryReport {
  bool snapshotLoaded = false;  ///< false: no index file — replayed onto fresh
  u64 snapshotTick = 0;         ///< store clock of the loaded snapshot
  u64 journalRecords = 0;       ///< intact records found in the journal
  u64 replayedRecords = 0;      ///< applied (tick after the snapshot)
  u64 skippedRecords = 0;       ///< already covered by the snapshot
  bool tornTail = false;        ///< a damaged suffix was discarded
  u64 discardedBytes = 0;
};

/// Public view of one stored object (objects(), compaction scans).
struct ObjectInfo {
  std::string tenant;
  std::string name;
  u64 bytes = 0;
  /// cuSZp2 stream format version of the content (parsed at put time);
  /// 0 when the object is not a parseable stream. Versions 1/2 are the
  /// hot FLE encodings the compaction worker migrates to v3.
  u32 formatVersion = 0;
  /// Store ticks (put/get operations) since this object was last touched.
  u64 idleTicks = 0;
  /// Assigned from the store-global tick clock on every create/rewrite of
  /// the key — globally unique, so even a delete-then-recreate of the same
  /// key yields a fresh value. Compaction commits only against the
  /// generation they scanned (delete/overwrite/recreate-while-compacting
  /// safety).
  u64 generation = 0;
};

class BlockStore {
 public:
  explicit BlockStore(StoreConfig config = {});

  BlockStore(const BlockStore&) = delete;
  BlockStore& operator=(const BlockStore&) = delete;
  BlockStore(BlockStore&&) = delete;
  BlockStore& operator=(BlockStore&&) = delete;

  const StoreConfig& config() const { return config_; }

  /// Stores (or rewrites) `tenant`'s object `name`. Tenant and name must
  /// be non-empty and free of '/' in the tenant (the key separator).
  PutResult put(const std::string& tenant, const std::string& name,
                ConstByteSpan bytes);

  /// Reassembles an object, verifying every chunk's content hash on the
  /// way out. Throws cuszp2::Error when the key is unknown or a chunk
  /// fails verification.
  std::vector<std::byte> get(const std::string& tenant,
                             const std::string& name) const;

  bool contains(const std::string& tenant, const std::string& name) const;

  /// Releases the object's chunk references. Returns false when the key
  /// is unknown. Zero-refcount chunks are freed here unless deferGc.
  bool erase(const std::string& tenant, const std::string& name);

  /// Sweeps parked zero-refcount chunks (deferGc mode; a no-op
  /// otherwise). Returns the number of chunks freed.
  u64 gc();

  /// Chained CRC-32 over the object's chunk views in order — equals
  /// crc32() of the assembled bytes, computed without assembling (the
  /// zero-copy verification path the cluster read-path uses). Throws on
  /// an unknown key.
  u32 crcOf(const std::string& tenant, const std::string& name) const;

  /// Full integrity pass: every chunk re-hashed, every object's byte
  /// count checked against its chunk list. Returns false (with a first
  /// failure description in `error`) instead of throwing.
  bool verifyAll(std::string* error = nullptr) const;

  /// Internal-consistency audit for tests and drills: refcounts equal
  /// the number of referencing chunk-list slots, occupancy tallies match
  /// the maps. Throws cuszp2::Error naming the first violated invariant.
  void checkInvariants() const;

  StoreStats stats() const;

  /// Deterministic (key-sorted) object listing; empty tenant = all.
  std::vector<ObjectInfo> objects(const std::string& tenant = {}) const;

  /// The names `tenant` stored (its logical view), key-sorted.
  std::vector<std::string> names(const std::string& tenant) const;

  // ---- compaction protocol (cas/compaction.hpp drives this) ----------

  /// One scanned compaction candidate: the object's assembled bytes plus
  /// the generation the rewrite must commit against.
  struct Candidate {
    std::string tenant;
    std::string name;
    std::vector<std::byte> bytes;
    u64 generation = 0;
  };

  /// Cold (idleTicks >= coldTicks), hot-encoded (stream version 1/2)
  /// objects, oldest-key-first, at most `limit`. Does NOT touch the
  /// objects' idle clocks (a scan must not keep its own targets warm).
  std::vector<Candidate> compactionCandidates(u64 coldTicks,
                                              usize limit) const;

  /// Atomically replaces the object's content iff its generation still
  /// matches the scanned one (false = the object was deleted or
  /// rewritten while the compactor worked — nothing changes). Counts a
  /// compaction migration and the bytes reclaimed.
  bool commitCompaction(const std::string& tenant, const std::string& name,
                        ConstByteSpan newBytes, u64 scannedGeneration);

  // ---- persistence ----------------------------------------------------

  /// Serializes the store to `path` as an io archive ("cas.index" +
  /// "cas.data" fields); with `parity`, seals it with the XOR-parity
  /// trailer so `cuszp2 verify`/`repair` can check and heal the file.
  /// The write is atomic (temp file + rename), so a crash mid-save keeps
  /// the previous file and saving over the path this store was load()ed
  /// from leaves the live mapping — and its view-backed chunks — intact.
  void save(const std::string& path,
            const io::ParityOptions* parity = nullptr) const;

  /// Loads a saved store. The returned store keeps the file mapped
  /// (io::MappedBytes) and serves loaded chunk payloads as zero-copy
  /// views into it; chunks written after the load are heap-owned. Both
  /// section guards are verified eagerly — the index CRC and the data
  /// section's payload CRC trailer — and chunk payloads are additionally
  /// verified by content hash on get() (use verifyAll() for an eager
  /// per-chunk pass). The serialized hashSeed and chunkBytes are adopted
  /// (they are properties of the stored chunks); `config` supplies policy
  /// only (deferGc).
  static std::unique_ptr<BlockStore> load(const std::string& path,
                                          StoreConfig config = {});

  /// True when `path` holds a saved BlockStore (archive with the CAS
  /// index field) — cheap sniff for the CLI.
  static bool isStoreFile(ConstByteSpan bytes);

  // ---- incremental durability (docs/DURABILITY.md) --------------------

  /// Attaches a fresh write-ahead journal at `path` (ownerTag = the
  /// store's hashSeed, baseTick = the current store clock). From here on
  /// every acknowledged mutation — put/erase/gc/compaction-commit/drill
  /// corruption — appends a CRC-framed record and syncs it *before* the
  /// mutator returns, so an acknowledged op survives any later crash.
  /// save() resets the journal (the snapshot supersedes its records).
  void attachJournal(const std::string& path);

  JournalStatus journalStatus() const;

  /// Crash recovery: loads the last good snapshot from `indexPath` (a
  /// missing file means the store never completed a save — recovery
  /// starts from an empty store), replays the journal's intact records
  /// on top, discards any torn tail, and resumes the journal for
  /// appending. Records the snapshot already covers (a crash between the
  /// snapshot rename and the journal reset) are skipped by store tick.
  /// Throws cuszp2::Error when the journal header is damaged or its
  /// ownerTag disagrees with the store's hashSeed — the unrecoverable
  /// case (CLI exit 2). The recovered store passes checkInvariants().
  static std::unique_ptr<BlockStore> recover(const std::string& indexPath,
                                             const std::string& journalPath,
                                             StoreConfig config = {},
                                             RecoveryReport* report = nullptr);

  // ---- drills ---------------------------------------------------------

  /// Chaos-drill hook: flips one byte of the object's content, as a
  /// copy-on-write rewrite of that object only (shared chunks stay
  /// intact for every other referent — corrupting one replica must not
  /// damage its dedup peers).
  void corruptForDrill(const std::string& tenant, const std::string& name,
                       usize byteOffset);

 private:
  struct Chunk {
    u32 refs = 0;
    u64 bytes = 0;
    /// Heap payload (owning) — empty when `view` points into backing_.
    std::vector<std::byte> owned;
    ConstByteSpan view;  ///< zero-copy view into the mapped file

    ConstByteSpan payload() const {
      return owned.empty() ? view : ConstByteSpan(owned);
    }
  };

  struct Object {
    std::string tenant;
    std::string name;
    u64 bytes = 0;
    u32 formatVersion = 0;
    u64 generation = 0;
    u64 lastTouch = 0;
    std::vector<Hash128> chunks;
  };

  struct Instruments {
    telemetry::Counter* puts;
    telemetry::Counter* gets;
    telemetry::Counter* erases;
    telemetry::Counter* chunkHits;
    telemetry::Counter* chunkMisses;
    telemetry::Counter* refIncs;
    telemetry::Counter* refDecs;
    telemetry::Counter* gcChunks;
    telemetry::Counter* resurrections;
    telemetry::Counter* compactionMigrations;
    telemetry::Counter* compactionBytes;
    telemetry::Gauge* objects;
    telemetry::Gauge* uniqueChunks;
    telemetry::Gauge* bytesLogical;
    telemetry::Gauge* bytesPhysical;
    telemetry::Gauge* bytesSaved;
    telemetry::Gauge* dedupRatio;
  };

  static std::string keyOf(const std::string& tenant,
                           const std::string& name);

  /// Chunk-reference acquisition for one object's bytes; fills refs/hit
  /// accounting into `result`. Requires mutex_ held.
  std::vector<Hash128> referenceChunksLocked(ConstByteSpan bytes,
                                             PutResult& result);
  /// Drops one object's chunk references (erase / rewrite). Requires
  /// mutex_ held.
  void releaseChunksLocked(const std::vector<Hash128>& chunks);
  /// Rewrites `obj` in place with `bytes` (put-over / compaction / drill
  /// corruption). Requires mutex_ held.
  PutResult rewriteLocked(Object& obj, ConstByteSpan bytes);
  /// Appends one WAL record and syncs it (the durability barrier every
  /// acknowledged mutator crosses before returning). No-op when no
  /// journal is attached. Requires mutex_ held.
  void journalOpLocked(u32 type, const std::string& tenant,
                       const std::string& name, ConstByteSpan bytes) const;
  /// Applies one replayed record (recover() only; no journal attached).
  void applyJournalRecord(const io::JournalRecord& rec);
  void refreshGaugesLocked() const;
  std::vector<std::byte> assembleLocked(const Object& obj,
                                        bool verifyHashes) const;
  static u32 parseFormatVersion(ConstByteSpan bytes);

  StoreConfig config_;
  Instruments instruments_;

  mutable std::mutex mutex_;
  // objects_/tick_/stats_ are mutable because const reads still advance
  // the logical clock and activity counters (get() warms its object).
  mutable std::map<std::string, Object> objects_;
  std::map<Hash128, Chunk> chunks_;
  /// Logical operation clock: put/get/erase each advance it; object
  /// coldness is measured in these ticks (deterministic, no wall clock).
  mutable u64 tick_ = 0;
  mutable StoreStats stats_;
  /// Keeps a loaded store's file mapped for the lifetime of its views.
  io::MappedBytes backing_;
  /// Write-ahead journal (attachJournal). Mutable: save() is const yet
  /// must reset the journal once the snapshot is durable.
  mutable std::unique_ptr<io::JournalWriter> journal_;
};

}  // namespace cuszp2::cas
