#include "cas/block_store.hpp"

#include <algorithm>
#include <cstring>

#include "common/error.hpp"
#include "common/crc32.hpp"
#include "core/format.hpp"

namespace cuszp2::cas {

namespace {

// ---- index serialization helpers (little-endian, bounds-checked) ------

constexpr u32 kIndexMagic = 0x31534143u;  // "CAS1"
constexpr u32 kIndexVersion = 1;
constexpr const char* kIndexField = "cas.index";
constexpr const char* kDataField = "cas.data";

// WAL record kinds (docs/DURABILITY.md). Every payload starts with the
// u64 store tick the mutator ran at, so recovery can tell which records
// a snapshot already covers.
constexpr u32 kRecPut = 1;      // tick, tenant, name, size, bytes
constexpr u32 kRecErase = 2;    // tick, tenant, name
constexpr u32 kRecGc = 3;       // tick
constexpr u32 kRecCompact = 4;  // tick, tenant, name, size, bytes
constexpr u32 kRecCorrupt = 5;  // tick, tenant, name, size, bytes

void putU32(std::vector<std::byte>& out, u32 v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFF));
  }
}

void putU64(std::vector<std::byte>& out, u64 v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFF));
  }
}

void putString(std::vector<std::byte>& out, const std::string& s) {
  putU32(out, static_cast<u32>(s.size()));
  const auto* p = reinterpret_cast<const std::byte*>(s.data());
  out.insert(out.end(), p, p + s.size());
}

class Cursor {
 public:
  explicit Cursor(ConstByteSpan bytes) : bytes_(bytes) {}

  u32 takeU32() {
    need(4);
    u32 v = 0;
    for (int i = 3; i >= 0; --i) {
      v = (v << 8) | std::to_integer<u32>(bytes_[off_ + static_cast<usize>(i)]);
    }
    off_ += 4;
    return v;
  }

  u64 takeU64() {
    need(8);
    u64 v = 0;
    for (int i = 7; i >= 0; --i) {
      v = (v << 8) | std::to_integer<u64>(bytes_[off_ + static_cast<usize>(i)]);
    }
    off_ += 8;
    return v;
  }

  std::string takeString() {
    const u32 len = takeU32();
    need(len);
    std::string s(reinterpret_cast<const char*>(bytes_.data() + off_), len);
    off_ += len;
    return s;
  }

  usize offset() const { return off_; }
  usize remaining() const { return bytes_.size() - off_; }

 private:
  void need(usize n) const {
    require(bytes_.size() - off_ >= n, "cas: truncated index section");
  }

  ConstByteSpan bytes_;
  usize off_ = 0;
};

}  // namespace

std::string BlockStore::keyOf(const std::string& tenant,
                              const std::string& name) {
  return tenant + "/" + name;
}

BlockStore::BlockStore(StoreConfig config) : config_(config) {
  require(config_.chunkBytes > 0, "cas: chunkBytes must be positive");
  auto& reg = telemetry::registry();
  instruments_.puts = &reg.counter("cas.puts");
  instruments_.gets = &reg.counter("cas.gets");
  instruments_.erases = &reg.counter("cas.erases");
  instruments_.chunkHits = &reg.counter("cas.chunk_hits");
  instruments_.chunkMisses = &reg.counter("cas.chunk_misses");
  instruments_.refIncs = &reg.counter("cas.ref_incs");
  instruments_.refDecs = &reg.counter("cas.ref_decs");
  instruments_.gcChunks = &reg.counter("cas.gc_chunks");
  instruments_.resurrections = &reg.counter("cas.resurrections");
  instruments_.compactionMigrations = &reg.counter("cas.compaction.migrations");
  instruments_.compactionBytes =
      &reg.counter("cas.compaction.bytes_reclaimed");
  instruments_.objects = &reg.gauge("cas.objects");
  instruments_.uniqueChunks = &reg.gauge("cas.chunks_unique");
  instruments_.bytesLogical = &reg.gauge("cas.bytes_logical");
  instruments_.bytesPhysical = &reg.gauge("cas.bytes_physical");
  instruments_.bytesSaved = &reg.gauge("cas.bytes_saved");
  instruments_.dedupRatio = &reg.gauge("cas.dedup_ratio");
}

u32 BlockStore::parseFormatVersion(ConstByteSpan bytes) {
  const auto header = core::StreamHeader::tryParse(bytes);
  return header ? header->version : 0;
}

std::vector<Hash128> BlockStore::referenceChunksLocked(ConstByteSpan bytes,
                                                       PutResult& result) {
  std::vector<Hash128> refs;
  refs.reserve((bytes.size() + config_.chunkBytes - 1) / config_.chunkBytes);
  for (usize off = 0; off < bytes.size(); off += config_.chunkBytes) {
    const usize len = std::min(config_.chunkBytes, bytes.size() - off);
    const ConstByteSpan slice = bytes.subspan(off, len);
    const Hash128 h = hash128(slice, config_.hashSeed);
    auto [it, inserted] = chunks_.try_emplace(h);
    Chunk& chunk = it->second;
    if (inserted) {
      chunk.refs = 1;
      chunk.bytes = len;
      chunk.owned.assign(slice.begin(), slice.end());
      ++result.newChunks;
      result.physicalBytesAdded += len;
      ++stats_.chunkMisses;
      ++stats_.uniqueChunks;
      stats_.physicalBytes += len;
      instruments_.chunkMisses->add();
    } else if (chunk.refs == 0) {
      // Parked zero-refcount entry (deferGc): resurrect instead of
      // re-storing — the bytes are already here.
      chunk.refs = 1;
      ++result.dedupChunks;
      ++stats_.chunkHits;
      ++stats_.resurrections;
      --stats_.parkedChunks;
      ++stats_.uniqueChunks;
      stats_.physicalBytes += chunk.bytes;
      instruments_.chunkHits->add();
      instruments_.resurrections->add();
    } else {
      ++chunk.refs;
      ++result.dedupChunks;
      ++stats_.chunkHits;
      instruments_.chunkHits->add();
    }
    ++stats_.refIncs;
    instruments_.refIncs->add();
    ++stats_.logicalChunks;
    refs.push_back(h);
  }
  return refs;
}

void BlockStore::releaseChunksLocked(const std::vector<Hash128>& chunks) {
  for (const Hash128& h : chunks) {
    auto it = chunks_.find(h);
    require(it != chunks_.end() && it->second.refs > 0,
            "cas: internal error — releasing an unreferenced chunk");
    Chunk& chunk = it->second;
    --chunk.refs;
    ++stats_.refDecs;
    instruments_.refDecs->add();
    --stats_.logicalChunks;
    if (chunk.refs == 0) {
      --stats_.uniqueChunks;
      stats_.physicalBytes -= chunk.bytes;
      if (config_.deferGc) {
        ++stats_.parkedChunks;  // payload retained until gc()
      } else {
        ++stats_.gcFreedChunks;
        stats_.gcFreedBytes += chunk.bytes;
        instruments_.gcChunks->add();
        chunks_.erase(it);
      }
    }
  }
}

PutResult BlockStore::rewriteLocked(Object& obj, ConstByteSpan bytes) {
  PutResult result;
  result.logicalBytes = bytes.size();
  result.replaced = true;
  // Reference the new content before releasing the old so shared chunks
  // never dip to refcount zero mid-rewrite (no free/re-store churn when
  // the two versions overlap).
  std::vector<Hash128> fresh = referenceChunksLocked(bytes, result);
  releaseChunksLocked(obj.chunks);
  obj.chunks = std::move(fresh);
  stats_.logicalBytes -= obj.bytes;
  stats_.logicalBytes += bytes.size();
  obj.bytes = bytes.size();
  obj.formatVersion = parseFormatVersion(bytes);
  // Generations come from the store-global tick clock, not a per-object
  // counter: every mutator advances tick_ (under mutex_) before rewriting,
  // so a deleted-and-recreated key can never replay a generation a
  // compaction scan captured earlier (ABA on stale commits).
  obj.generation = tick_;
  obj.lastTouch = tick_;
  return result;
}

PutResult BlockStore::put(const std::string& tenant, const std::string& name,
                          ConstByteSpan bytes) {
  require(!tenant.empty() && tenant.find('/') == std::string::npos,
          "cas: tenant must be non-empty and free of '/'");
  require(!name.empty(), "cas: object name must be non-empty");
  std::lock_guard lock(mutex_);
  ++tick_;
  PutResult result;
  const std::string key = keyOf(tenant, name);
  auto it = objects_.find(key);
  if (it != objects_.end()) {
    result = rewriteLocked(it->second, bytes);
  } else {
    Object obj;
    obj.tenant = tenant;
    obj.name = name;
    result.logicalBytes = bytes.size();
    obj.chunks = referenceChunksLocked(bytes, result);
    obj.bytes = bytes.size();
    obj.formatVersion = parseFormatVersion(bytes);
    obj.generation = tick_;  // globally unique (see rewriteLocked)
    obj.lastTouch = tick_;
    objects_.emplace(key, std::move(obj));
    ++stats_.objects;
    stats_.logicalBytes += bytes.size();
  }
  ++stats_.puts;
  instruments_.puts->add();
  refreshGaugesLocked();
  journalOpLocked(kRecPut, tenant, name, bytes);
  return result;
}

std::vector<std::byte> BlockStore::assembleLocked(const Object& obj,
                                                  bool verifyHashes) const {
  std::vector<std::byte> out;
  out.reserve(obj.bytes);
  for (const Hash128& h : obj.chunks) {
    auto it = chunks_.find(h);
    require(it != chunks_.end(),
            "cas: object references a missing chunk (store damaged)");
    const ConstByteSpan payload = it->second.payload();
    if (verifyHashes) {
      require(hash128(payload, config_.hashSeed) == h,
              "cas: chunk failed content-hash verification (corrupt chunk " +
                  h.hex() + ")");
    }
    out.insert(out.end(), payload.begin(), payload.end());
  }
  require(out.size() == obj.bytes,
          "cas: assembled size disagrees with the object's byte count");
  return out;
}

std::vector<std::byte> BlockStore::get(const std::string& tenant,
                                       const std::string& name) const {
  std::lock_guard lock(mutex_);
  auto it = objects_.find(keyOf(tenant, name));
  require(it != objects_.end(), "cas: unknown object " + keyOf(tenant, name));
  ++tick_;
  it->second.lastTouch = tick_;
  ++stats_.gets;
  instruments_.gets->add();
  return assembleLocked(it->second, /*verifyHashes=*/true);
}

bool BlockStore::contains(const std::string& tenant,
                          const std::string& name) const {
  std::lock_guard lock(mutex_);
  return objects_.find(keyOf(tenant, name)) != objects_.end();
}

bool BlockStore::erase(const std::string& tenant, const std::string& name) {
  std::lock_guard lock(mutex_);
  auto it = objects_.find(keyOf(tenant, name));
  if (it == objects_.end()) return false;
  ++tick_;
  releaseChunksLocked(it->second.chunks);
  stats_.logicalBytes -= it->second.bytes;
  --stats_.objects;
  objects_.erase(it);
  ++stats_.erases;
  instruments_.erases->add();
  refreshGaugesLocked();
  journalOpLocked(kRecErase, tenant, name, {});
  return true;
}

u64 BlockStore::gc() {
  std::lock_guard lock(mutex_);
  u64 freed = 0;
  for (auto it = chunks_.begin(); it != chunks_.end();) {
    if (it->second.refs == 0) {
      ++freed;
      --stats_.parkedChunks;
      ++stats_.gcFreedChunks;
      stats_.gcFreedBytes += it->second.bytes;
      instruments_.gcChunks->add();
      it = chunks_.erase(it);
    } else {
      ++it;
    }
  }
  refreshGaugesLocked();
  journalOpLocked(kRecGc, {}, {}, {});
  return freed;
}

u32 BlockStore::crcOf(const std::string& tenant,
                      const std::string& name) const {
  std::lock_guard lock(mutex_);
  auto it = objects_.find(keyOf(tenant, name));
  require(it != objects_.end(), "cas: unknown object " + keyOf(tenant, name));
  u32 crc = 0;
  for (const Hash128& h : it->second.chunks) {
    auto cit = chunks_.find(h);
    require(cit != chunks_.end(),
            "cas: object references a missing chunk (store damaged)");
    crc = crc32(cit->second.payload(), crc);
  }
  return crc;
}

bool BlockStore::verifyAll(std::string* error) const {
  std::lock_guard lock(mutex_);
  for (const auto& [hash, chunk] : chunks_) {
    if (hash128(chunk.payload(), config_.hashSeed) != hash) {
      if (error) *error = "chunk " + hash.hex() + " fails its content hash";
      return false;
    }
  }
  for (const auto& [key, obj] : objects_) {
    u64 total = 0;
    for (const Hash128& h : obj.chunks) {
      auto it = chunks_.find(h);
      if (it == chunks_.end()) {
        if (error) *error = "object " + key + " references a missing chunk";
        return false;
      }
      total += it->second.bytes;
    }
    if (total != obj.bytes) {
      if (error) {
        *error = "object " + key + " chunk sizes disagree with its byte count";
      }
      return false;
    }
  }
  return true;
}

void BlockStore::checkInvariants() const {
  std::lock_guard lock(mutex_);
  std::map<Hash128, u32> expected;
  u64 objects = 0;
  u64 logicalChunks = 0;
  u64 logicalBytes = 0;
  for (const auto& [key, obj] : objects_) {
    ++objects;
    logicalBytes += obj.bytes;
    logicalChunks += obj.chunks.size();
    for (const Hash128& h : obj.chunks) ++expected[h];
  }
  u64 uniqueChunks = 0;
  u64 parkedChunks = 0;
  u64 physicalBytes = 0;
  for (const auto& [hash, chunk] : chunks_) {
    auto it = expected.find(hash);
    const u32 want = it == expected.end() ? 0 : it->second;
    require(chunk.refs == want,
            "cas invariant: chunk " + hash.hex() + " refcount disagrees with "
            "its referencing objects");
    if (chunk.refs == 0) {
      ++parkedChunks;
    } else {
      ++uniqueChunks;
      physicalBytes += chunk.bytes;
    }
  }
  for (const auto& [hash, want] : expected) {
    require(chunks_.count(hash) != 0,
            "cas invariant: referenced chunk " + hash.hex() + " is missing");
    (void)want;
  }
  require(parkedChunks == 0 || config_.deferGc,
          "cas invariant: parked chunks present without deferGc");
  require(stats_.objects == objects, "cas invariant: object tally drifted");
  require(stats_.logicalChunks == logicalChunks,
          "cas invariant: logical chunk tally drifted");
  require(stats_.logicalBytes == logicalBytes,
          "cas invariant: logical byte tally drifted");
  require(stats_.uniqueChunks == uniqueChunks,
          "cas invariant: unique chunk tally drifted");
  require(stats_.parkedChunks == parkedChunks,
          "cas invariant: parked chunk tally drifted");
  require(stats_.physicalBytes == physicalBytes,
          "cas invariant: physical byte tally drifted");
}

StoreStats BlockStore::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

std::vector<ObjectInfo> BlockStore::objects(const std::string& tenant) const {
  std::lock_guard lock(mutex_);
  std::vector<ObjectInfo> out;
  for (const auto& [key, obj] : objects_) {
    if (!tenant.empty() && obj.tenant != tenant) continue;
    ObjectInfo info;
    info.tenant = obj.tenant;
    info.name = obj.name;
    info.bytes = obj.bytes;
    info.formatVersion = obj.formatVersion;
    info.idleTicks = tick_ - obj.lastTouch;
    info.generation = obj.generation;
    out.push_back(std::move(info));
  }
  return out;
}

std::vector<std::string> BlockStore::names(const std::string& tenant) const {
  std::lock_guard lock(mutex_);
  std::vector<std::string> out;
  for (const auto& [key, obj] : objects_) {
    if (obj.tenant == tenant) out.push_back(obj.name);
  }
  return out;
}

std::vector<BlockStore::Candidate> BlockStore::compactionCandidates(
    u64 coldTicks, usize limit) const {
  std::lock_guard lock(mutex_);
  std::vector<Candidate> out;
  for (const auto& [key, obj] : objects_) {
    if (out.size() >= limit) break;
    const bool hotEncoded = obj.formatVersion == core::kFormatVersion ||
                            obj.formatVersion == core::kFormatVersionV2;
    if (!hotEncoded) continue;
    if (tick_ - obj.lastTouch < coldTicks) continue;
    Candidate c;
    c.tenant = obj.tenant;
    c.name = obj.name;
    c.bytes = assembleLocked(obj, /*verifyHashes=*/true);
    c.generation = obj.generation;
    out.push_back(std::move(c));
  }
  return out;
}

bool BlockStore::commitCompaction(const std::string& tenant,
                                  const std::string& name,
                                  ConstByteSpan newBytes,
                                  u64 scannedGeneration) {
  std::lock_guard lock(mutex_);
  auto it = objects_.find(keyOf(tenant, name));
  if (it == objects_.end()) return false;  // deleted while compacting
  Object& obj = it->second;
  if (obj.generation != scannedGeneration) {
    return false;  // rewritten while compacting — the scan is stale
  }
  ++tick_;
  const u64 oldBytes = obj.bytes;
  rewriteLocked(obj, newBytes);
  ++stats_.compactionMigrations;
  instruments_.compactionMigrations->add();
  if (oldBytes > obj.bytes) {
    stats_.compactionBytesReclaimed += oldBytes - obj.bytes;
    instruments_.compactionBytes->add(oldBytes - obj.bytes);
  }
  refreshGaugesLocked();
  // The commit window is the trickiest crash point: the record makes the
  // rewrite durable the instant the commit is acknowledged.
  journalOpLocked(kRecCompact, tenant, name, newBytes);
  return true;
}

void BlockStore::corruptForDrill(const std::string& tenant,
                                 const std::string& name, usize byteOffset) {
  std::lock_guard lock(mutex_);
  auto it = objects_.find(keyOf(tenant, name));
  require(it != objects_.end(), "cas: unknown object " + keyOf(tenant, name));
  Object& obj = it->second;
  require(obj.bytes > 0, "cas: cannot corrupt an empty object");
  std::vector<std::byte> bytes =
      assembleLocked(obj, /*verifyHashes=*/false);
  bytes[byteOffset % bytes.size()] ^= std::byte{0x40};
  ++tick_;
  rewriteLocked(obj, bytes);
  refreshGaugesLocked();
  journalOpLocked(kRecCorrupt, tenant, name, bytes);
}

void BlockStore::refreshGaugesLocked() const {
  instruments_.objects->set(static_cast<f64>(stats_.objects));
  instruments_.uniqueChunks->set(static_cast<f64>(stats_.uniqueChunks));
  instruments_.bytesLogical->set(static_cast<f64>(stats_.logicalBytes));
  instruments_.bytesPhysical->set(static_cast<f64>(stats_.physicalBytes));
  instruments_.bytesSaved->set(static_cast<f64>(stats_.bytesSaved()));
  instruments_.dedupRatio->set(stats_.dedupRatio());
}

// ---- persistence ------------------------------------------------------

void BlockStore::save(const std::string& path,
                      const io::ParityOptions* parity) const {
  std::lock_guard lock(mutex_);

  // Chunk table in map (= hash-ascending) order: deterministic bytes for
  // identical store content.
  std::vector<std::byte> index;
  std::vector<std::byte> data;
  putU32(index, kIndexMagic);
  putU32(index, kIndexVersion);
  putU64(index, config_.hashSeed);
  putU64(index, static_cast<u64>(config_.chunkBytes));
  putU64(index, tick_);
  putU64(index, static_cast<u64>(chunks_.size()));
  putU64(index, static_cast<u64>(objects_.size()));

  std::map<Hash128, u64> tableIndex;
  u64 next = 0;
  for (const auto& [hash, chunk] : chunks_) {
    putU64(index, hash.hi);
    putU64(index, hash.lo);
    putU64(index, chunk.bytes);
    putU32(index, chunk.refs);
    const ConstByteSpan payload = chunk.payload();
    data.insert(data.end(), payload.begin(), payload.end());
    tableIndex.emplace(hash, next++);
  }

  for (const auto& [key, obj] : objects_) {
    putString(index, obj.tenant);
    putString(index, obj.name);
    putU32(index, obj.formatVersion);
    putU64(index, obj.bytes);
    putU64(index, obj.generation);
    putU64(index, obj.lastTouch);
    putU64(index, static_cast<u64>(obj.chunks.size()));
    for (const Hash128& h : obj.chunks) {
      putU64(index, tableIndex.at(h));
    }
  }
  putU32(index, crc32(index));
  putU32(data, crc32(data));

  io::ArchiveWriter writer;
  writer.addField(kIndexField, index);
  writer.addField(kDataField, data);
  // Atomic temp+rename: a crash mid-save never destroys the previous
  // file, and saving over the very path this store was load()ed from is
  // safe — backing_ keeps mapping the old inode, so view-backed chunks
  // stay valid after the rename.
  io::writeBytesAtomic(path,
                       parity ? writer.finalize(*parity) : writer.finalize());
  // The snapshot supersedes every journaled record: reset the journal so
  // replay work stays proportional to activity since the last save. A
  // crash between the rename above and this reset leaves a snapshot
  // *newer* than the journal — recover() skips the covered records by
  // tick, so the window is safe.
  if (journal_) journal_->reset(tick_);
}

std::unique_ptr<BlockStore> BlockStore::load(const std::string& path,
                                             StoreConfig config) {
  auto store = std::unique_ptr<BlockStore>(new BlockStore(config));
  store->backing_ = io::MappedBytes(path);
  const ConstByteSpan file = store->backing_.bytes();
  require(io::isArchive(file), "cas: not an archive file: " + path);
  io::ArchiveReader reader(file);
  require(reader.hasField(kIndexField) && reader.hasField(kDataField),
          "cas: archive has no CAS index: " + path);

  const ConstByteSpan index = reader.field(kIndexField);
  require(index.size() >= 4, "cas: truncated index section");
  const ConstByteSpan body = index.subspan(0, index.size() - 4);
  Cursor trailer(index.subspan(index.size() - 4));
  require(trailer.takeU32() == crc32(body),
          "cas: index section fails its CRC guard");

  Cursor cur(body);
  require(cur.takeU32() == kIndexMagic, "cas: bad index magic");
  require(cur.takeU32() == kIndexVersion, "cas: unsupported index version");
  // The hash seed and chunk size are properties of the serialized chunks;
  // adopt them (the caller's config supplies policy: deferGc).
  store->config_.hashSeed = cur.takeU64();
  const u64 chunkBytes = cur.takeU64();
  require(chunkBytes > 0, "cas: serialized chunkBytes must be positive");
  store->config_.chunkBytes = static_cast<usize>(chunkBytes);
  store->tick_ = cur.takeU64();
  const u64 chunkCount = cur.takeU64();
  const u64 objectCount = cur.takeU64();

  const ConstByteSpan data = reader.field(kDataField);
  require(data.size() >= 4, "cas: truncated data section");
  const ConstByteSpan payloads = data.subspan(0, data.size() - 4);
  // Eager whole-section guard: hash-bypassing reads (crcOf, re-save)
  // must never see corrupt payloads. get() still re-hashes each chunk,
  // which also covers damage that postdates this pass.
  Cursor dataTrailer(data.subspan(data.size() - 4));
  require(dataTrailer.takeU32() == crc32(payloads),
          "cas: data section fails its CRC trailer");

  std::vector<Hash128> table;
  table.reserve(static_cast<usize>(chunkCount));
  u64 offset = 0;
  for (u64 i = 0; i < chunkCount; ++i) {
    Hash128 h;
    h.hi = cur.takeU64();
    h.lo = cur.takeU64();
    const u64 bytes = cur.takeU64();
    const u32 refs = cur.takeU32();
    require(offset + bytes <= payloads.size(),
            "cas: chunk table overruns the data section");
    Chunk chunk;
    chunk.refs = refs;
    chunk.bytes = bytes;
    chunk.view = payloads.subspan(static_cast<usize>(offset),
                                  static_cast<usize>(bytes));
    offset += bytes;
    const bool inserted = store->chunks_.emplace(h, std::move(chunk)).second;
    require(inserted, "cas: duplicate chunk hash in index");
    table.push_back(h);
  }
  require(offset == payloads.size(),
          "cas: data section size disagrees with the chunk table");

  for (u64 i = 0; i < objectCount; ++i) {
    Object obj;
    obj.tenant = cur.takeString();
    obj.name = cur.takeString();
    obj.formatVersion = cur.takeU32();
    obj.bytes = cur.takeU64();
    obj.generation = cur.takeU64();
    obj.lastTouch = cur.takeU64();
    const u64 refs = cur.takeU64();
    obj.chunks.reserve(static_cast<usize>(refs));
    for (u64 j = 0; j < refs; ++j) {
      const u64 idx = cur.takeU64();
      require(idx < table.size(), "cas: object references an out-of-range "
                                  "chunk table slot");
      obj.chunks.push_back(table[static_cast<usize>(idx)]);
    }
    require(!obj.tenant.empty() && !obj.name.empty(),
            "cas: serialized object with an empty key");
    const std::string key = keyOf(obj.tenant, obj.name);
    const bool inserted =
        store->objects_.emplace(key, std::move(obj)).second;
    require(inserted, "cas: duplicate object key in index");
  }
  require(cur.remaining() == 0, "cas: trailing bytes in index section");

  // Rebuild occupancy from the loaded maps; monotonic activity counters
  // start fresh (they describe this process's activity, not history).
  for (const auto& [key, obj] : store->objects_) {
    ++store->stats_.objects;
    store->stats_.logicalBytes += obj.bytes;
    store->stats_.logicalChunks += obj.chunks.size();
  }
  for (const auto& [hash, chunk] : store->chunks_) {
    if (chunk.refs == 0) {
      ++store->stats_.parkedChunks;
    } else {
      ++store->stats_.uniqueChunks;
      store->stats_.physicalBytes += chunk.bytes;
    }
  }
  require(store->stats_.parkedChunks == 0 || store->config_.deferGc,
          "cas: store was saved with parked chunks; load it with deferGc "
          "(or gc() before saving)");
  store->checkInvariants();
  store->refreshGaugesLocked();
  return store;
}

bool BlockStore::isStoreFile(ConstByteSpan bytes) {
  if (!io::isArchive(bytes)) return false;
  try {
    return io::ArchiveReader(bytes).hasField(kIndexField);
  } catch (const Error&) {
    return false;
  }
}

// ---- incremental durability -------------------------------------------

void BlockStore::journalOpLocked(u32 type, const std::string& tenant,
                                 const std::string& name,
                                 ConstByteSpan bytes) const {
  if (!journal_) return;
  std::vector<std::byte> payload;
  putU64(payload, tick_);
  if (type != kRecGc) {
    putString(payload, tenant);
    putString(payload, name);
  }
  if (type == kRecPut || type == kRecCompact || type == kRecCorrupt) {
    putU64(payload, static_cast<u64>(bytes.size()));
    payload.insert(payload.end(), bytes.begin(), bytes.end());
  }
  journal_->append(type, payload);
  // The durability barrier: the mutator only returns — only *acks* —
  // once the record is synced. A crash here (injected or real) leaves
  // the op un-acknowledged, which recovery is allowed to lose.
  journal_->sync();
}

void BlockStore::attachJournal(const std::string& path) {
  std::lock_guard lock(mutex_);
  journal_ =
      std::make_unique<io::JournalWriter>(path, config_.hashSeed, tick_);
}

JournalStatus BlockStore::journalStatus() const {
  std::lock_guard lock(mutex_);
  JournalStatus st;
  if (!journal_) return st;
  st.attached = true;
  st.path = journal_->path();
  st.baseTick = journal_->baseTick();
  st.recordsAppended = journal_->recordsAppended();
  st.recordsSynced = journal_->recordsSynced();
  return st;
}

void BlockStore::applyJournalRecord(const io::JournalRecord& rec) {
  Cursor cur(ConstByteSpan(rec.payload));
  const u64 tick = cur.takeU64();
  switch (rec.type) {
    case kRecPut: {
      const std::string tenant = cur.takeString();
      const std::string name = cur.takeString();
      const u64 size = cur.takeU64();
      require(cur.remaining() == size, "cas: malformed put record payload");
      const ConstByteSpan bytes(rec.payload.data() + cur.offset(),
                                static_cast<usize>(size));
      // Re-run the public mutator with the recorded tick so generations
      // and stats come out exactly as they did live.
      tick_ = tick - 1;
      put(tenant, name, bytes);
      break;
    }
    case kRecErase: {
      const std::string tenant = cur.takeString();
      const std::string name = cur.takeString();
      tick_ = tick - 1;
      require(erase(tenant, name),
              "cas: erase record names an object the snapshot+replay state "
              "does not hold");
      break;
    }
    case kRecGc: {
      // gc() does not advance the store clock; replay at the recorded one.
      tick_ = tick;
      gc();
      break;
    }
    case kRecCompact:
    case kRecCorrupt: {
      const std::string tenant = cur.takeString();
      const std::string name = cur.takeString();
      const u64 size = cur.takeU64();
      require(cur.remaining() == size,
              "cas: malformed rewrite record payload");
      const ConstByteSpan bytes(rec.payload.data() + cur.offset(),
                                static_cast<usize>(size));
      std::lock_guard lock(mutex_);
      auto it = objects_.find(keyOf(tenant, name));
      require(it != objects_.end(),
              "cas: rewrite record names an object the snapshot+replay "
              "state does not hold");
      tick_ = tick - 1;
      ++tick_;
      const u64 oldBytes = it->second.bytes;
      rewriteLocked(it->second, bytes);
      if (rec.type == kRecCompact) {
        // The commit succeeded live (it was journaled), so replay applies
        // it unconditionally and restores the compaction accounting.
        ++stats_.compactionMigrations;
        instruments_.compactionMigrations->add();
        if (oldBytes > it->second.bytes) {
          stats_.compactionBytesReclaimed += oldBytes - it->second.bytes;
          instruments_.compactionBytes->add(oldBytes - it->second.bytes);
        }
      }
      refreshGaugesLocked();
      break;
    }
    default:
      require(false, "cas: unknown journal record type " +
                         std::to_string(rec.type));
  }
}

std::unique_ptr<BlockStore> BlockStore::recover(const std::string& indexPath,
                                                const std::string& journalPath,
                                                StoreConfig config,
                                                RecoveryReport* report) {
  // A damaged journal header throws here — the unrecoverable case.
  const io::ReplayResult replay = io::replayJournal(journalPath);

  std::unique_ptr<BlockStore> store;
  RecoveryReport rep;
  if (std::FILE* probe = std::fopen(indexPath.c_str(), "rb")) {
    std::fclose(probe);
    store = load(indexPath, config);
    rep.snapshotLoaded = true;
  } else {
    // The store crashed before its first completed save(): every durable
    // op lives in the journal alone.
    store = std::unique_ptr<BlockStore>(new BlockStore(config));
  }
  rep.snapshotTick = store->tick_;
  rep.journalRecords = replay.records.size();
  rep.tornTail = replay.torn;
  rep.discardedBytes = replay.discardedBytes;

  require(replay.ownerTag == store->config_.hashSeed,
          "cas: journal " + journalPath + " belongs to a different store "
          "(ownerTag mismatch)");

  // baseTick >= snapshotTick means the journal was reset at (or after)
  // the snapshot — everything in it postdates the snapshot. An older
  // baseTick means the process died between the snapshot rename and the
  // journal reset: skip the records the snapshot already covers.
  const bool replayAll = replay.baseTick >= rep.snapshotTick;
  for (const io::JournalRecord& rec : replay.records) {
    require(rec.payload.size() >= 8, "cas: journal record missing its tick");
    u64 tick = 0;
    for (int i = 7; i >= 0; --i) {
      tick = (tick << 8) |
             std::to_integer<u64>(rec.payload[static_cast<usize>(i)]);
    }
    if (!replayAll && tick <= rep.snapshotTick) {
      ++rep.skippedRecords;
      continue;
    }
    store->applyJournalRecord(rec);
    ++rep.replayedRecords;
  }

  store->checkInvariants();
  // Resume the journal in place (truncating any torn tail) so the
  // recovered store keeps journaling where the dead process stopped.
  store->journal_ = io::JournalWriter::resume(
      journalPath, store->config_.hashSeed, replay.baseTick,
      replay.validBytes);
  if (report) *report = rep;
  return store;
}

}  // namespace cuszp2::cas
