#include "cas/compaction.hpp"

#include <chrono>

#include "common/error.hpp"

namespace cuszp2::cas {

CompactionWorker::CompactionWorker(BlockStore& store, CompactionConfig config)
    : store_(store), config_(std::move(config)) {
  require(config_.pipeline != core::PipelineMode::Legacy,
          "cas: compaction target pipeline must be a v3 mode (not Legacy)");
  require(config_.maxPerSweep > 0, "cas: maxPerSweep must be positive");
}

CompactionWorker::~CompactionWorker() { stop(); }

template <FloatingPoint T>
std::optional<std::vector<std::byte>> CompactionWorker::reencodeTyped(
    const BlockStore::Candidate& candidate,
    const core::StreamHeader& header) {
  // Re-encode with exactly the parameters the old stream records: same
  // resolved absolute bound, block size and encoding mode — only the
  // wire pipeline changes.
  core::Config cfg;
  cfg.absErrorBound = header.absErrorBound;
  cfg.mode = header.mode;
  cfg.blockSize = header.blockSize;
  cfg.checksum = header.checksum != 0;
  cfg.blockChecksums = true;
  cfg.pipeline = config_.pipeline;
  stream_.reconfigure(cfg);

  std::vector<std::byte> encoded;
  try {
    const auto before = stream_.decompress<T>(candidate.bytes);
    const ConstByteSpan beforeBytes{
        reinterpret_cast<const std::byte*>(before.data.data()),
        before.data.size() * sizeof(T)};
    const Hash128 want = hash128(beforeBytes);

    auto compressed =
        stream_.compress<T>(std::span<const T>(before.data));
    const auto after = stream_.decompress<T>(compressed.stream);
    const ConstByteSpan afterBytes{
        reinterpret_cast<const std::byte*>(after.data.data()),
        after.data.size() * sizeof(T)};

    // The byte-exact proof: migration happens only when the v3 stream
    // reconstructs the identical element bytes the old stream did.
    if (after.data.size() != before.data.size() ||
        hash128(afterBytes) != want) {
      std::lock_guard lock(mutex_);
      ++stats_.roundTripRejects;
      return std::nullopt;
    }
    encoded = std::move(compressed.stream);
  } catch (const Error&) {
    // Undecodable candidate (corrupt replica, foreign bytes): never
    // migrated, never fatal to the sweep.
    std::lock_guard lock(mutex_);
    ++stats_.unsupportedSkips;
    return std::nullopt;
  }

  if (config_.requireSmaller && encoded.size() >= candidate.bytes.size()) {
    std::lock_guard lock(mutex_);
    ++stats_.notSmallerSkips;
    return std::nullopt;
  }
  return encoded;
}

bool CompactionWorker::processCandidate(const BlockStore::Candidate& candidate,
                                        u64 sweepIndex,
                                        usize candidateIndex) {
  {
    std::lock_guard lock(mutex_);
    ++stats_.scanned;
  }
  const auto header = core::StreamHeader::tryParse(candidate.bytes);
  if (!header || header->predictor != Predictor::FirstOrder ||
      header->absErrorBound <= 0.0) {
    std::lock_guard lock(mutex_);
    ++stats_.unsupportedSkips;
    return true;
  }

  std::optional<std::vector<std::byte>> encoded =
      header->precision == Precision::F32
          ? reencodeTyped<f32>(candidate, *header)
          : reencodeTyped<f64>(candidate, *header);
  if (!encoded) return true;

  // Kill window for chaos drills: the re-encode is done, the commit has
  // not happened. Aborting here must leave the old object fully intact.
  if (config_.chaosAbort && config_.chaosAbort(sweepIndex, candidateIndex)) {
    std::lock_guard lock(mutex_);
    ++stats_.chaosAborts;
    return false;
  }

  const bool committed = store_.commitCompaction(
      candidate.tenant, candidate.name, *encoded, candidate.generation);
  std::lock_guard lock(mutex_);
  if (committed) {
    ++stats_.migrated;
    if (candidate.bytes.size() > encoded->size()) {
      stats_.bytesReclaimed += candidate.bytes.size() - encoded->size();
    }
  } else {
    ++stats_.staleDrops;  // deleted or rewritten while we re-encoded
  }
  return true;
}

u64 CompactionWorker::runOnce() {
  // One sweep at a time: reencodeTyped drives the shared stream_ codec,
  // so an owner-driven sweep must wait out a background sweep in flight.
  std::lock_guard sweepLock(sweepMutex_);
  u64 sweepIndex;
  u64 migratedBefore;
  {
    std::lock_guard lock(mutex_);
    sweepIndex = stats_.sweeps++;
    migratedBefore = stats_.migrated;
  }
  const auto candidates =
      store_.compactionCandidates(config_.coldTicks, config_.maxPerSweep);
  for (usize i = 0; i < candidates.size(); ++i) {
    if (!processCandidate(candidates[i], sweepIndex, i)) break;
  }
  std::lock_guard lock(mutex_);
  return stats_.migrated - migratedBefore;
}

void CompactionWorker::start() {
  if (config_.pollMillis == 0) return;
  std::lock_guard lock(wakeMutex_);
  if (threadRunning_) return;
  stopRequested_ = false;
  threadRunning_ = true;
  thread_ = std::thread([this] { threadMain(); });
}

void CompactionWorker::threadMain() {
  for (;;) {
    runOnce();
    std::unique_lock lock(wakeMutex_);
    wake_.wait_for(lock, std::chrono::milliseconds(config_.pollMillis),
                   [this] { return stopRequested_; });
    if (stopRequested_) return;
  }
}

void CompactionWorker::stop() {
  {
    std::lock_guard lock(wakeMutex_);
    if (!threadRunning_) return;
    stopRequested_ = true;
  }
  wake_.notify_all();
  if (thread_.joinable()) thread_.join();
  std::lock_guard lock(wakeMutex_);
  threadRunning_ = false;
}

bool CompactionWorker::running() const {
  std::lock_guard lock(wakeMutex_);
  return threadRunning_;
}

CompactionStats CompactionWorker::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

}  // namespace cuszp2::cas
