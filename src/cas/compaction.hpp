// Background cold-tier re-encode worker for the block store.
//
// Objects land in the CAS in whatever encoding the hot path produced —
// format v1/v2 FLE streams tuned for throughput. A CompactionWorker
// migrates the cold ones to the format-v3 ratio pipelines (Auto/Huffman,
// PR 8) off the foreground path, the same tiering cuSZ-i argues for
// (ratio-over-speed once data stops being touched; PAPERS.md):
//
//   scan    BlockStore::compactionCandidates — cold (idleTicks >=
//           coldTicks), hot-encoded (stream version 1/2) objects, with
//           the generation each was scanned at.
//   prove   decompress the old stream, re-encode through the v3 pipeline
//           (same error bound, block size and mode the header records),
//           decompress THAT, and require the two reconstructions to be
//           byte-identical (hash128 over the raw element bytes). A
//           candidate that cannot prove the byte-exact round trip is
//           skipped, never migrated.
//   commit  BlockStore::commitCompaction, which refuses when the object's
//           generation moved (deleted or rewritten while the worker was
//           re-encoding) — foreground always wins; the worker's work is
//           simply dropped.
//
// All heavy work (decode, re-encode, verification) happens on the
// worker's own CompressorStream outside the store lock; the store is only
// touched to scan and to commit, so foreground puts/gets never block on
// compaction. The worker runs as a background thread (service
// worker/watchdog idiom: start/stop + condition-variable pacing) or
// fully deterministically via runOnce() when pollMillis == 0.
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "cas/block_store.hpp"
#include "core/format.hpp"
#include "core/pipeline.hpp"
#include "core/stream.hpp"

namespace cuszp2::cas {

struct CompactionConfig {
  /// An object is cold when it has been idle for at least this many store
  /// ticks (logical put/get operations, not wall time — deterministic).
  u64 coldTicks = 16;

  /// Candidates re-encoded per sweep (bounds one sweep's work).
  usize maxPerSweep = 8;

  /// Target encoding for migrated objects. Must not be Legacy (that is
  /// the hot format compaction migrates away from).
  core::PipelineMode pipeline = core::PipelineMode::Auto;

  /// Skip migrations that do not shrink the object (Auto usually wins,
  /// but a pinned pipeline can lose on some fields; false keeps such
  /// migrations anyway, e.g. to retire a deprecated format).
  bool requireSmaller = true;

  /// Background pacing: sweep every this many milliseconds. 0 = no
  /// thread; the owner drives sweeps via runOnce() (deterministic tests
  /// and drills).
  u64 pollMillis = 0;

  /// Chaos hook for kill drills: called before each candidate's commit
  /// with (sweep index, candidate index); returning true aborts the sweep
  /// right there — the re-encoded bytes are dropped, the store keeps the
  /// old object (a compaction kill must never lose data). nullptr = off.
  std::function<bool(u64 sweep, usize candidate)> chaosAbort;
};

/// Monotonic worker accounting; value-comparable so two same-seed chaos
/// runs can assert identical histories.
struct CompactionStats {
  u64 sweeps = 0;
  u64 scanned = 0;     ///< candidates pulled from the store
  u64 migrated = 0;    ///< commits accepted by the store
  u64 staleDrops = 0;  ///< commits refused (object moved under the worker)
  u64 roundTripRejects = 0;  ///< re-encode failed the byte-exact proof
  u64 notSmallerSkips = 0;   ///< requireSmaller filtered the migration
  u64 unsupportedSkips = 0;  ///< header unparseable / non-migratable config
  u64 chaosAborts = 0;       ///< sweeps cut short by the chaos hook
  u64 bytesReclaimed = 0;    ///< old size minus new size, summed

  bool operator==(const CompactionStats&) const = default;
};

class CompactionWorker {
 public:
  /// The store must outlive the worker. Throws on an invalid config
  /// (Legacy pipeline, zero maxPerSweep).
  CompactionWorker(BlockStore& store, CompactionConfig config = {});
  ~CompactionWorker();

  CompactionWorker(const CompactionWorker&) = delete;
  CompactionWorker& operator=(const CompactionWorker&) = delete;

  const CompactionConfig& config() const { return config_; }

  /// One synchronous sweep: scan, prove, commit. Safe to call whether or
  /// not the background thread runs: sweeps serialize on a sweep-level
  /// mutex (the worker's codec is shared state), and the store arbitrates
  /// commits via generations. Returns the number of objects migrated this
  /// sweep.
  u64 runOnce();

  /// Starts the background thread (no-op when pollMillis == 0 or already
  /// running).
  void start();

  /// Stops and joins the background thread (idempotent; the destructor
  /// calls it). A sweep in flight finishes its current candidate first.
  void stop();

  bool running() const;

  CompactionStats stats() const;

 private:
  /// Re-encodes one candidate; returns true to continue the sweep, false
  /// to abort it (chaos kill).
  bool processCandidate(const BlockStore::Candidate& candidate,
                        u64 sweepIndex, usize candidateIndex);

  /// Decode -> v3 re-encode -> decode -> byte-exact proof. nullopt when
  /// the candidate must be skipped (stats already updated).
  template <FloatingPoint T>
  std::optional<std::vector<std::byte>> reencodeTyped(
      const BlockStore::Candidate& candidate,
      const core::StreamHeader& header);

  void threadMain();

  BlockStore& store_;
  CompactionConfig config_;
  core::CompressorStream stream_;  ///< worker-owned warm codec

  /// Serializes whole sweeps: runOnce() from the owner must not share
  /// stream_ with a background-thread sweep in flight.
  std::mutex sweepMutex_;
  mutable std::mutex mutex_;  // guards stats_ and sweep counter
  CompactionStats stats_;

  // Background-thread machinery (watchdog idiom from src/service/).
  std::thread thread_;
  mutable std::mutex wakeMutex_;
  std::condition_variable wake_;
  bool stopRequested_ = false;
  bool threadRunning_ = false;
};

}  // namespace cuszp2::cas
