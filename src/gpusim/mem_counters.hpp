// Per-kernel memory and compute accounting.
//
// Kernels running under the execution model record what a real GPU's memory
// pipeline would see: how many load/store *instructions* issue (scalar 32-bit
// vs vectorized 128-bit), how many DRAM transactions those instructions
// generate (coalesced warps merge; strided warps do not), how many bytes move,
// how many atomics fire, and roughly how many arithmetic ops execute. The
// TimingModel turns these into kernel seconds; the bench harness turns them
// into the memory-throughput figures (paper Figs. 9 and 16).
#pragma once

#include "common/types.hpp"

namespace cuszp2::gpusim {

struct MemCounters {
  // Instruction counts (one per warp-lane issue in the scalar case; the
  // model charges per-thread instructions, matching the SASS view of
  // Fig. 10 where vectorization divides the count by 4).
  u64 scalarLoadInstr = 0;
  u64 vectorLoadInstr = 0;   // 128-bit LD.E.128
  u64 scalarStoreInstr = 0;
  u64 vectorStoreInstr = 0;  // 128-bit ST.E.128

  // DRAM transaction counts.
  u64 coalescedTransactions = 0;
  u64 stridedTransactions = 0;

  // Raw bytes through global memory.
  u64 bytesRead = 0;
  u64 bytesWritten = 0;

  // Global-memory atomic RMW operations.
  u64 atomicOps = 0;

  // Approximate arithmetic operations (quantization, diffs, bit packing...).
  u64 arithmeticOps = 0;

  // Bytes moved through the on-chip hierarchy (shared memory / L1):
  // staging scratch, bit-plane packing buffers, shuffle tiles. No DRAM
  // time is charged for these, but Nsight's "memory throughput" counts
  // them, so the Figs. 9/16 metric includes them too.
  u64 l1Bytes = 0;

  // Bytes flushed with device-side memset (the zero-block fast path: the
  // paper flushes all-zero blocks with cudaMemset instead of running the
  // decode path, which is why sparse datasets like JetIn decompress at
  // >1 TB/s). Charged at memset bandwidth, no instruction-issue cost.
  u64 memsetBytes = 0;

  u64 totalMemInstr() const {
    return scalarLoadInstr + vectorLoadInstr + scalarStoreInstr +
           vectorStoreInstr;
  }

  u64 totalTransactions() const {
    return coalescedTransactions + stridedTransactions;
  }

  u64 totalBytes() const { return bytesRead + bytesWritten + memsetBytes; }

  MemCounters& operator+=(const MemCounters& o) {
    scalarLoadInstr += o.scalarLoadInstr;
    vectorLoadInstr += o.vectorLoadInstr;
    scalarStoreInstr += o.scalarStoreInstr;
    vectorStoreInstr += o.vectorStoreInstr;
    coalescedTransactions += o.coalescedTransactions;
    stridedTransactions += o.stridedTransactions;
    bytesRead += o.bytesRead;
    bytesWritten += o.bytesWritten;
    atomicOps += o.atomicOps;
    arithmeticOps += o.arithmeticOps;
    l1Bytes += o.l1Bytes;
    memsetBytes += o.memsetBytes;
    return *this;
  }

  // ---- Bulk recording helpers used by kernels -------------------------
  // `transactionBytes` is DeviceSpec::transactionBytes (32 on all presets).

  /// Coalesced vectorized read of `bytes` bytes: one 128-bit instruction per
  /// 16 bytes, transactions fully merged across the warp.
  void noteVectorRead(u64 bytes, u32 transactionBytes) {
    vectorLoadInstr += (bytes + 15) / 16;
    coalescedTransactions += (bytes + transactionBytes - 1) / transactionBytes;
    bytesRead += bytes;
  }

  void noteVectorWrite(u64 bytes, u32 transactionBytes) {
    vectorStoreInstr += (bytes + 15) / 16;
    coalescedTransactions += (bytes + transactionBytes - 1) / transactionBytes;
    bytesWritten += bytes;
  }

  /// Coalesced scalar read: one instruction per `elemBytes` element, but the
  /// warp's lanes still merge into full transactions.
  void noteScalarRead(u64 bytes, u32 elemBytes, u32 transactionBytes) {
    scalarLoadInstr += (bytes + elemBytes - 1) / elemBytes;
    coalescedTransactions += (bytes + transactionBytes - 1) / transactionBytes;
    bytesRead += bytes;
  }

  void noteScalarWrite(u64 bytes, u32 elemBytes, u32 transactionBytes) {
    scalarStoreInstr += (bytes + elemBytes - 1) / elemBytes;
    coalescedTransactions += (bytes + transactionBytes - 1) / transactionBytes;
    bytesWritten += bytes;
  }

  /// Strided scalar read (the per-thread-contiguous-chunk pattern of
  /// cuSZp v1, paper Fig. 11 left): the warp's lanes touch scattered
  /// sectors, so only ~8 useful bytes land per 32-byte transaction (4x
  /// bandwidth waste) and every element costs an instruction.
  void noteStridedRead(u64 bytes, u32 elemBytes) {
    scalarLoadInstr += (bytes + elemBytes - 1) / elemBytes;
    stridedTransactions += (bytes + 7) / 8;
    bytesRead += bytes;
  }

  void noteStridedWrite(u64 bytes, u32 elemBytes) {
    scalarStoreInstr += (bytes + elemBytes - 1) / elemBytes;
    stridedTransactions += (bytes + 7) / 8;
    bytesWritten += bytes;
  }

  void noteAtomics(u64 n) { atomicOps += n; }
  void noteL1(u64 bytes) { l1Bytes += bytes; }
  void noteOps(u64 n) { arithmeticOps += n; }
  void noteMemset(u64 bytes) { memsetBytes += bytes; }
};

}  // namespace cuszp2::gpusim
