// Statistics recorded by the device-level synchronization (prefix-sum)
// protocols, consumed by the TimingModel to produce Fig. 17-style numbers.
#pragma once

#include "common/types.hpp"

namespace cuszp2::gpusim {

enum class SyncMethod : u8 {
  None = 0,             // kernel has no device-level synchronization
  ChainedScan = 1,      // plain serial chained scan (cuSZp v1 / FZ-GPU era)
  DecoupledLookback = 2,// Merrill-Garland style lookback (cuSZp2, Sec. IV-C)
  AtomicAggregate = 3,  // global atomic accumulation (FZ-GPU)
  ReduceThenScan = 4,   // classic 3-kernel reduce/scan/distribute
};

struct SyncStats {
  SyncMethod method = SyncMethod::None;

  /// Number of participating tiles (thread blocks).
  u64 tiles = 0;

  /// Total lookback inspection steps summed over all tiles.
  u64 lookbackSteps = 0;

  /// Longest observed lookback depth for a single tile — the protocol's
  /// critical path contribution.
  u64 maxLookbackDepth = 0;

  /// Spin iterations spent waiting on an unpublished predecessor.
  u64 waitSpins = 0;

  /// Data bytes each tile covers (used by the reduce-then-scan cost model,
  /// whose dominant term is re-staging the tiles across kernel
  /// boundaries). 0 falls back to the 16 KiB standard compression tile.
  u64 tileDataBytes = 0;

  SyncStats& operator+=(const SyncStats& o) {
    tiles += o.tiles;
    lookbackSteps += o.lookbackSteps;
    if (o.maxLookbackDepth > maxLookbackDepth)
      maxLookbackDepth = o.maxLookbackDepth;
    waitSpins += o.waitSpins;
    if (tileDataBytes == 0) tileDataBytes = o.tileDataBytes;
    if (method == SyncMethod::None) method = o.method;
    return *this;
  }

  f64 avgLookbackDepth() const {
    return tiles == 0 ? 0.0
                      : static_cast<f64>(lookbackSteps) / static_cast<f64>(tiles);
  }
};

}  // namespace cuszp2::gpusim
