// Device parameter sheets for the GPU execution model.
//
// The reproduction has no physical GPU, so kernel time is *modelled* from
// first-principles quantities the kernels record while they run on the host:
// bytes moved, memory instructions issued, arithmetic ops, and
// synchronization hop statistics. A DeviceSpec holds the per-device constants
// that convert those counts into seconds. Presets mirror the GPUs evaluated
// in the paper (A100 40 GB, RTX 3090, RTX 3080).
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace cuszp2::gpusim {

struct DeviceSpec {
  std::string name;

  /// Streaming multiprocessor count (A100: 108).
  u32 smCount = 108;

  /// Warp width. Fixed at 32 for all NVIDIA parts.
  u32 warpSize = 32;

  /// Peak DRAM bandwidth in GB/s (A100 40GB: 1555).
  f64 memBandwidthGBps = 1555.0;

  /// DRAM transaction (sector) size in bytes.
  u32 transactionBytes = 32;

  /// Aggregate memory-instruction issue rate across the device, in
  /// instructions per second. A scalar 32-bit load and a 128-bit vector load
  /// cost one instruction each, which is why vectorization pays (Fig. 10).
  f64 memInstrPerSec = 90e9;

  /// Effective arithmetic throughput for the codecs' integer pipelines,
  /// in ops per second. Deliberately far below the device's peak FMA rate:
  /// quantization/diff/bit-packing chains are serial integer ALU work with
  /// little ILP, and this is the term that makes compression (two passes,
  /// ~16 ops/elem) slower than decompression (~6 ops/elem) as the paper
  /// observes in Sec. V-B.
  f64 opsPerSec = 2.0e12;

  /// Latency of one hop of the serial chained-scan dependency chain, in ns
  /// (one thread block observing its predecessor's published prefix through
  /// L2). Drives Fig. 17.
  f64 chainHopNs = 45.0;

  /// Latency of one decoupled-lookback inspection step, in ns. Lookback
  /// reads run concurrently across all resident blocks, so only the measured
  /// critical-path depth is charged (Sec. IV-C).
  f64 lookbackHopNs = 45.0;

  /// How many thread blocks are simultaneously resident and can overlap
  /// their waiting with useful work under decoupled lookback.
  f64 lookbackOverlap = 2.6;

  /// Fixed kernel launch + driver overhead per kernel, in microseconds.
  f64 launchOverheadUs = 6.0;

  /// Host<->device PCIe bandwidth in GB/s (for hybrid-compressor modelling).
  f64 pcieGBps = 12.0;

  /// Aggregate throughput of global-memory atomic RMW operations,
  /// in atomics per second (FZ-GPU's sync bottleneck, Fig. 16).
  f64 atomicsPerSec = 1.2e9;

  /// Device-side memset bandwidth (zero-block fast path uses cudaMemset).
  f64 memsetGBps = 2000.0;
};

/// NVIDIA A100 (40 GB), the paper's primary platform (Sec. V-A).
DeviceSpec a100_40gb();

/// NVIDIA GeForce RTX 3090 (Sec. VI-C).
DeviceSpec rtx3090();

/// NVIDIA GeForce RTX 3080 10 GB (Sec. VI-C).
DeviceSpec rtx3080();

/// `count` copies of `base` with ordinal-suffixed names ("... [dev0]",
/// "... [dev1]", ...): the simulated multi-device node a
/// service::CompressionService places its device-affine workers onto.
std::vector<DeviceSpec> homogeneousFleet(const DeviceSpec& base, u32 count);

/// `count` devices cycling through the paper's evaluation parts (A100
/// 40 GB, RTX 3090, RTX 3080) with ordinal-suffixed names: the mixed
/// fleet a cluster::CompressionCluster shards across. Output bytes are
/// device-independent — only the modelled timing differs per shard.
std::vector<DeviceSpec> heterogeneousFleet(u32 count);

/// First-order modelled wall estimate for one codec pass over `bytes` of
/// input on `dev`: launch overhead plus `sweeps` full traversals of the
/// input at modelled DRAM bandwidth. Deliberately coarse — the service
/// watchdog sizes deadlines from it and the cluster placement/steal
/// heuristics rank shards with it, and both only need relative order.
f64 modelledPassSeconds(u64 bytes, const DeviceSpec& dev, f64 sweeps = 3.0);

}  // namespace cuszp2::gpusim
