// Thread-block grid launcher: the execution engine of the GPU model.
//
// A "kernel" is a callable invoked once per thread block with a BlockCtx.
// Blocks are dispatched FIFO onto the shared thread pool, giving the same
// forward-progress guarantee GPU hardware gives the decoupled-lookback scan:
// the lowest-indexed unfinished block is always running, so spinning on a
// predecessor always terminates (see common/thread_pool.hpp).
//
// Each block records its memory traffic and sync behaviour into its own
// counters; the launcher reduces them into one LaunchResult the TimingModel
// can convert into modelled kernel seconds.
#pragma once

#include <atomic>
#include <functional>

#include "common/thread_pool.hpp"
#include "common/types.hpp"
#include "gpusim/mem_counters.hpp"
#include "gpusim/sync_stats.hpp"

namespace cuszp2::gpusim {

struct BlockCtx {
  u32 blockIdx = 0;
  u32 gridSize = 0;
  MemCounters mem;
  SyncStats sync;
};

struct LaunchResult {
  u32 gridSize = 0;
  MemCounters mem;
  SyncStats sync;
  /// Host wall-clock time of the simulated launch (diagnostic only; the
  /// figures use modelled time, not this).
  f64 wallSeconds = 0.0;
};

class Launcher {
 public:
  /// Uses an internally owned pool with ThreadPool::defaultWorkers() workers.
  Launcher();

  /// Uses an external pool (shared across launches).
  explicit Launcher(ThreadPool& pool);

  ~Launcher();

  Launcher(const Launcher&) = delete;
  Launcher& operator=(const Launcher&) = delete;

  /// Runs `body` once per block index in [0, gridSize). Consecutive blocks
  /// are batched into tasks of `blocksPerTask` (0 = choose automatically);
  /// batching preserves dispatch order and hence lookback progress.
  LaunchResult launch(u32 gridSize,
                      const std::function<void(BlockCtx&)>& body,
                      u32 blocksPerTask = 0);

  usize workerCount() const { return pool_->workerCount(); }

 private:
  ThreadPool* pool_;
  bool ownsPool_;
};

/// Abort propagation for in-flight launches. When a block throws, the
/// launcher raises the current launch's abort flag so that other blocks
/// spinning on inter-block state (decoupled lookback, chained scan) can
/// unwind instead of waiting forever on a publish that will never come.
/// The first exception is rethrown from launch() after all tasks drain.
bool launchAborted();

/// Raises Error if the current launch has been aborted; called from spin
/// loops.
void throwIfLaunchAborted();

namespace detail {
void setCurrentAbortFlag(std::atomic<bool>* flag);
}

}  // namespace cuszp2::gpusim
