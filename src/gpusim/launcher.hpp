// Thread-block grid launcher: the execution engine of the GPU model.
//
// A "kernel" is a callable invoked once per thread block with a BlockCtx.
// Blocks are dispatched FIFO onto the shared thread pool, giving the same
// forward-progress guarantee GPU hardware gives the decoupled-lookback scan:
// the lowest-indexed unfinished block is always running, so spinning on a
// predecessor always terminates (see common/thread_pool.hpp).
//
// Each block records its memory traffic and sync behaviour into its own
// counters; the launcher reduces them into one LaunchResult the TimingModel
// can convert into modelled kernel seconds.
//
// Observability: every launch is auto-instrumented. When the process-wide
// telemetry registry is enabled, the launch accumulates into the
// per-kernel table (launches, DRAM bytes, modelled + wall seconds) under
// the kernel's name; when a telemetry::TraceSession is active, a complete
// trace event is emitted carrying memory-transaction, sync, fault and
// modelled-timing attributes. Both are a single relaxed atomic load when
// off. Modelled attributes need a TimingModel: owners register theirs via
// setTimingModel() (core::CompressorStream does).
#pragma once

#include <atomic>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "common/thread_pool.hpp"
#include "common/types.hpp"
#include "gpusim/mem_counters.hpp"
#include "gpusim/sync_stats.hpp"

namespace cuszp2::telemetry {
class TraceSession;
}

namespace cuszp2::gpusim {

class TimingModel;

struct BlockCtx {
  u32 blockIdx = 0;
  u32 gridSize = 0;
  MemCounters mem;
  SyncStats sync;
};

struct LaunchResult {
  u32 gridSize = 0;
  MemCounters mem;
  SyncStats sync;
  /// Host wall-clock time of the simulated launch (diagnostic only; the
  /// figures use modelled time, not this).
  f64 wallSeconds = 0.0;
  /// Bits the active FaultPlan flipped in this kernel's fault target
  /// (diagnostic; tests assert the injection actually happened).
  u32 injectedBitFlips = 0;
  /// Model ticks the launch was stalled / a pool worker was wedged by the
  /// active FaultPlan (diagnostic, mirrors FaultPlan::stallTicks /
  /// wedgeTicks when the plan fired on this launch).
  u32 injectedStallTicks = 0;
  u32 injectedWedgeTicks = 0;
};

/// One independent grid of a batched launch (see Launcher::launchBatch).
struct KernelDesc {
  u32 gridSize = 0;
  std::function<void(BlockCtx&)> body;
  u32 blocksPerTask = 0;  ///< 0 = choose automatically
  /// Telemetry name: the per-kernel metrics table and trace events
  /// aggregate under it. Must be a string literal (not copied).
  const char* name = "kernel";
  /// The kernel's written bytes, as far as fault injection is concerned:
  /// an armed FaultPlan flips bits here after the grid completes (the
  /// soft-error model — memory damaged after the write retires, caught
  /// only by a later read-back). Empty = this kernel is not a fault
  /// target.
  std::span<std::byte> faultTarget;
};

/// Deterministic fault-injection plan for a Launcher (soft-error model for
/// the detect-and-retry policy in core::CompressorStream). Launches are
/// numbered per Launcher instance in submission order (each kernel of a
/// batch counts once); the plan fires on launch index `triggerLaunch`, or
/// on every launch from it onward when `sticky` is set (for testing retry
/// exhaustion).
struct FaultPlan {
  u64 seed = 1;
  u64 triggerLaunch = 0;
  /// Bits to flip at seeded-uniform positions of the kernel's faultTarget.
  u32 bitFlips = 0;
  /// When >= 0, the block with this index throws instead of running —
  /// the aborted-kernel fault mode.
  i64 abortBlock = -1;
  /// Kernel-stall fault: the triggering launch sleeps this many model
  /// ticks (1 tick = 1 ms of host time) before any block runs. The latency
  /// mode: the kernel eventually completes correctly, it is just slow —
  /// what a service-level watchdog must detect and route around.
  u32 stallTicks = 0;
  /// Worker-wedge fault: the pool worker that picks up the launch's first
  /// task sleeps this many ticks mid-drain. The liveness mode: unlike a
  /// stall, the grid is already in flight and one executor has stopped
  /// draining while the rest of the pool keeps running.
  u32 wedgeTicks = 0;
  /// Arena-exhaustion fault: when nonzero, the owning stream caps its
  /// scratch arena at this many bytes for the operation that would issue
  /// the triggering launch (consumed via takeArenaFault()), making the
  /// arena throw — the resource-exhaustion mode.
  u64 arenaBudgetBytes = 0;
  bool sticky = false;
};

class Launcher {
 public:
  /// Uses the process-shared worker pool (see shared()). Creating launchers
  /// is therefore cheap: no threads are spawned per instance.
  Launcher();

  /// Uses an external pool (shared across launches).
  explicit Launcher(ThreadPool& pool);

  Launcher(const Launcher&) = delete;
  Launcher& operator=(const Launcher&) = delete;

  /// Lazily-created process-wide worker pool sized by
  /// ThreadPool::defaultWorkers(). All default-constructed launchers
  /// dispatch onto it, so repeated compressor construction pays no pool
  /// startup cost.
  static ThreadPool& shared();

  /// Runs `body` once per block index in [0, gridSize). Consecutive blocks
  /// are batched into tasks of `blocksPerTask` (0 = choose automatically);
  /// batching preserves dispatch order and hence lookback progress.
  /// `faultTarget` (optional) is the kernel's written bytes for fault
  /// injection — see KernelDesc::faultTarget.
  LaunchResult launch(u32 gridSize,
                      const std::function<void(BlockCtx&)>& body,
                      u32 blocksPerTask = 0,
                      std::span<std::byte> faultTarget = {},
                      const char* name = "kernel");

  /// Dispatches several independent grids through one completion latch and
  /// one task-submission pass, amortizing dispatch overhead the way CUDA
  /// streams amortize kernel launches. Counters are reduced per kernel;
  /// wallSeconds of every result is the whole batch's wall time (the
  /// kernels run interleaved, so per-kernel wall time is not observable).
  /// A failing block aborts the whole batch; the first exception is
  /// rethrown after all tasks drain.
  std::vector<LaunchResult> launchBatch(std::span<const KernelDesc> kernels);

  usize workerCount() const { return pool_->workerCount(); }

  /// Arms deterministic fault injection (replacing any previous plan).
  /// Affects only launches issued through this Launcher instance.
  void setFaultPlan(const FaultPlan& plan) { faultPlan_ = plan; }

  /// Disarms fault injection.
  void clearFaultPlan() { faultPlan_.reset(); }

  bool faultPlanArmed() const { return faultPlan_.has_value(); }

  /// Consumes a pending arena-exhaustion fault: returns the injected
  /// budget when the armed plan carries one and would fire on the next
  /// launch index, std::nullopt otherwise. Non-sticky plans hand the
  /// budget out once (the relaunch after the failure observes a healthy
  /// arena); sticky plans keep returning it. Called by the owning
  /// stream's operation entry points, never by pool workers.
  std::optional<u64> takeArenaFault();

  /// Kernels launched through this instance so far (the index space
  /// FaultPlan::triggerLaunch addresses).
  u64 launchCount() const {
    return launchSeq_.load(std::memory_order_relaxed);
  }

  /// Registers the timing model used to attach modelled-seconds attributes
  /// to telemetry (per-kernel table rows and trace event args). The model
  /// must outlive the launcher (or be cleared with nullptr). Telemetry
  /// works without one; modelled attributes are then reported as 0.
  void setTimingModel(const TimingModel* timing) { timing_ = timing; }

 private:
  struct KernelRef {
    u32 gridSize = 0;
    const std::function<void(BlockCtx&)>* body = nullptr;
    u32 blocksPerTask = 0;
    std::span<std::byte> faultTarget;
    const char* name = "kernel";
  };

  bool faultActive(u64 launchIdx) const;
  void injectWriteFaults(u64 launchIdx, std::span<std::byte> target,
                         LaunchResult& result) const;

  /// Telemetry sink for the finished kernels of one launch()/launchBatch()
  /// call. When a trace session is active every kernel emits its own
  /// complete event with mem/sync/fault/modelled-timing args; the
  /// per-kernel metrics table, however, accumulates same-named kernels of
  /// one batch as a SINGLE fused launch (launches += 1, bytes and modelled
  /// time summed) — the batch is one dispatch as far as launch overhead is
  /// concerned, which is what the service layer's batching scheduler
  /// amortizes. No-op (one relaxed load each) when both sinks are off.
  void noteLaunches(std::span<const KernelRef> kernels,
                    std::span<const LaunchResult> results) const;

  /// Emits one complete trace event for a finished kernel.
  void noteLaunchTrace(telemetry::TraceSession& session, const char* name,
                       const LaunchResult& result, f64 modelled) const;

  std::vector<LaunchResult> runKernels(std::span<const KernelRef> kernels);
  std::vector<LaunchResult> runKernelsInline(std::span<const KernelRef> kernels);

  ThreadPool* pool_;
  std::optional<FaultPlan> faultPlan_;
  std::atomic<u64> launchSeq_{0};
  const TimingModel* timing_ = nullptr;
};

/// Abort propagation for in-flight launches. When a block throws, the
/// launcher raises the current launch's abort flag so that other blocks
/// spinning on inter-block state (decoupled lookback, chained scan) can
/// unwind instead of waiting forever on a publish that will never come.
/// The first exception is rethrown from launch() after all tasks drain.
bool launchAborted();

/// Raises Error if the current launch has been aborted; called from spin
/// loops.
void throwIfLaunchAborted();

namespace detail {
void setCurrentAbortFlag(std::atomic<bool>* flag);
}

}  // namespace cuszp2::gpusim
