#include "gpusim/device_spec.hpp"

namespace cuszp2::gpusim {

DeviceSpec a100_40gb() {
  DeviceSpec s;
  s.name = "NVIDIA A100 (40 GB)";
  s.smCount = 108;
  s.memBandwidthGBps = 1555.0;
  s.memInstrPerSec = 90e9;
  s.opsPerSec = 2.0e12;
  s.chainHopNs = 45.0;
  s.lookbackHopNs = 45.0;
  s.lookbackOverlap = 2.6;
  s.launchOverheadUs = 6.0;
  s.pcieGBps = 12.0;
  s.atomicsPerSec = 1.2e9;
  s.memsetGBps = 2000.0;
  return s;
}

DeviceSpec rtx3090() {
  DeviceSpec s;
  s.name = "NVIDIA RTX 3090";
  s.smCount = 82;
  s.memBandwidthGBps = 936.0;
  s.memInstrPerSec = 62e9;
  s.opsPerSec = 1.5e12;
  s.chainHopNs = 60.0;
  s.lookbackHopNs = 60.0;
  s.lookbackOverlap = 2.4;
  s.launchOverheadUs = 7.0;
  s.pcieGBps = 12.0;
  s.atomicsPerSec = 0.9e9;
  s.memsetGBps = 1200.0;
  return s;
}

DeviceSpec rtx3080() {
  DeviceSpec s;
  s.name = "NVIDIA RTX 3080 (10 GB)";
  s.smCount = 68;
  s.memBandwidthGBps = 760.0;
  s.memInstrPerSec = 52e9;
  s.opsPerSec = 1.3e12;
  s.chainHopNs = 70.0;
  s.lookbackHopNs = 70.0;
  s.lookbackOverlap = 2.3;
  s.launchOverheadUs = 7.0;
  s.pcieGBps = 12.0;
  s.atomicsPerSec = 0.8e9;
  s.memsetGBps = 1000.0;
  return s;
}

std::vector<DeviceSpec> homogeneousFleet(const DeviceSpec& base, u32 count) {
  std::vector<DeviceSpec> fleet;
  fleet.reserve(count);
  for (u32 i = 0; i < count; ++i) {
    DeviceSpec s = base;
    s.name = base.name + " [dev" + std::to_string(i) + "]";
    fleet.push_back(std::move(s));
  }
  return fleet;
}

std::vector<DeviceSpec> heterogeneousFleet(u32 count) {
  const DeviceSpec parts[3] = {a100_40gb(), rtx3090(), rtx3080()};
  std::vector<DeviceSpec> fleet;
  fleet.reserve(count);
  for (u32 i = 0; i < count; ++i) {
    DeviceSpec s = parts[i % 3];
    s.name += " [shard" + std::to_string(i) + "]";
    fleet.push_back(std::move(s));
  }
  return fleet;
}

f64 modelledPassSeconds(u64 bytes, const DeviceSpec& dev, f64 sweeps) {
  return dev.launchOverheadUs * 1e-6 +
         sweeps * static_cast<f64>(bytes) / (dev.memBandwidthGBps * 1e9);
}

}  // namespace cuszp2::gpusim
