// Analytic kernel timing model.
//
// Converts the quantities a kernel records while running under the execution
// model (MemCounters, SyncStats) into modelled seconds on a given DeviceSpec.
// The model is deliberately simple and fully documented so that every figure
// the bench harness regenerates can be traced back to a handful of
// first-principles terms:
//
//   t_bandwidth = transactions * transactionBytes / DRAM_bandwidth
//   t_issue     = memory_instructions / device_issue_rate
//   t_compute   = arithmetic_ops / device_op_rate
//   t_atomics   = atomic_ops / device_atomic_rate       (serializing)
//   t_sync      = f(method, tiles, lookback depth)      (see below)
//   kernel      = max(t_bandwidth, t_issue, t_compute) + t_atomics + t_sync
//                 + launch_overhead
//
// Sync term: a plain chained scan serializes one L2 hop per tile; decoupled
// lookback overlaps the chain with resident-block computation so only
// tiles/overlap hops plus the measured critical lookback depth remain
// exposed (paper Fig. 12/13, evaluated in Fig. 17).
#pragma once

#include "gpusim/device_spec.hpp"
#include "gpusim/mem_counters.hpp"
#include "gpusim/sync_stats.hpp"

namespace cuszp2::gpusim {

struct KernelTiming {
  f64 bandwidthSeconds = 0.0;
  f64 issueSeconds = 0.0;
  f64 computeSeconds = 0.0;
  f64 atomicSeconds = 0.0;
  f64 memsetSeconds = 0.0;
  f64 syncSeconds = 0.0;
  f64 launchSeconds = 0.0;

  /// Total modelled kernel time.
  f64 totalSeconds = 0.0;

  /// Achieved memory-pipeline throughput in GB/s: global + on-chip
  /// hierarchy bytes divided by total kernel time — the quantity Nsight
  /// Compute reports in the paper's Figs. 9 and 16.
  f64 memThroughputGBps = 0.0;
};

class TimingModel {
 public:
  explicit TimingModel(DeviceSpec spec) : spec_(std::move(spec)) {}

  const DeviceSpec& spec() const { return spec_; }

  /// Retargets the model. Copy-assigns in place so a long-lived stream can
  /// be reconfigured without reallocating the spec's name string.
  void setSpec(const DeviceSpec& spec) { spec_ = spec; }

  /// Models one kernel.
  KernelTiming kernel(const MemCounters& mem, const SyncStats& sync) const;

  /// Sync-only time (used by the Fig. 17 harness to isolate the
  /// synchronization stage).
  f64 syncSeconds(const SyncStats& sync) const;

  /// Host<->device transfer time over PCIe.
  f64 pcieSeconds(u64 bytes) const;

  /// Device-side memset time (zero-block flush fast path).
  f64 memsetSeconds(u64 bytes) const;

  /// Fixed launch overhead of one kernel.
  f64 launchSeconds() const { return spec_.launchOverheadUs * 1e-6; }

 private:
  DeviceSpec spec_;
};

/// Convenience: GB/s for `bytes` processed in `seconds`.
inline f64 gbps(u64 bytes, f64 seconds) {
  return seconds <= 0.0 ? 0.0
                        : static_cast<f64>(bytes) / seconds / 1.0e9;
}

}  // namespace cuszp2::gpusim
