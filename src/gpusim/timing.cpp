#include "gpusim/timing.hpp"

#include <algorithm>

namespace cuszp2::gpusim {

f64 TimingModel::syncSeconds(const SyncStats& sync) const {
  switch (sync.method) {
    case SyncMethod::None:
      return 0.0;
    case SyncMethod::ChainedScan:
      // Fully serialized: one hop of L2 visibility latency per tile.
      return static_cast<f64>(sync.tiles) * spec_.chainHopNs * 1e-9;
    case SyncMethod::DecoupledLookback: {
      // The chain still exists but overlaps with the work of all resident
      // blocks; only 1/overlap of it is exposed, plus the measured critical
      // lookback depth.
      const f64 chain = static_cast<f64>(sync.tiles) * spec_.chainHopNs /
                        std::max(1.0, spec_.lookbackOverlap);
      const f64 depth =
          static_cast<f64>(sync.maxLookbackDepth) * spec_.lookbackHopNs;
      return (chain + depth) * 1e-9;
    }
    case SyncMethod::AtomicAggregate:
      // Modelled through MemCounters::atomicOps instead; charge only the
      // tile-count visibility term here.
      return static_cast<f64>(sync.tiles) * spec_.chainHopNs * 0.5e-9;
    case SyncMethod::ReduceThenScan: {
      // Three kernels: two extra launches, a serial single-block scan of
      // the tile sums, and — the dominant term — the per-tile state that
      // must round-trip global memory across the kernel boundaries
      // (single-pass designs keep it in registers/shared memory).
      const f64 tileBytes =
          sync.tileDataBytes > 0 ? static_cast<f64>(sync.tileDataBytes)
                                 : 16384.0;
      const f64 restage = static_cast<f64>(sync.tiles) * tileBytes * 2.0 /
                          (spec_.memBandwidthGBps * 1e9);
      const f64 serialScan = static_cast<f64>(sync.tiles) * 2.0e-9;
      return 2.0 * launchSeconds() + restage + serialScan;
    }
  }
  return 0.0;
}

f64 TimingModel::pcieSeconds(u64 bytes) const {
  return static_cast<f64>(bytes) / (spec_.pcieGBps * 1e9);
}

f64 TimingModel::memsetSeconds(u64 bytes) const {
  return static_cast<f64>(bytes) / (spec_.memsetGBps * 1e9);
}

KernelTiming TimingModel::kernel(const MemCounters& mem,
                                 const SyncStats& sync) const {
  KernelTiming t;
  const f64 transBytes = static_cast<f64>(mem.totalTransactions()) *
                         static_cast<f64>(spec_.transactionBytes);
  t.bandwidthSeconds = transBytes / (spec_.memBandwidthGBps * 1e9);
  t.issueSeconds =
      static_cast<f64>(mem.totalMemInstr()) / spec_.memInstrPerSec;
  t.computeSeconds = static_cast<f64>(mem.arithmeticOps) / spec_.opsPerSec;
  t.atomicSeconds = static_cast<f64>(mem.atomicOps) / spec_.atomicsPerSec;
  t.memsetSeconds = memsetSeconds(mem.memsetBytes);
  t.syncSeconds = syncSeconds(sync);
  t.launchSeconds = launchSeconds();
  t.totalSeconds = std::max({t.bandwidthSeconds, t.issueSeconds,
                             t.computeSeconds}) +
                   t.atomicSeconds + t.memsetSeconds + t.syncSeconds +
                   t.launchSeconds;
  t.memThroughputGBps =
      gbps(mem.totalBytes() + mem.l1Bytes, t.totalSeconds);
  return t;
}

}  // namespace cuszp2::gpusim
