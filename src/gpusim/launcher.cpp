#include "gpusim/launcher.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <vector>

#include "common/error.hpp"

namespace cuszp2::gpusim {

namespace {

thread_local std::atomic<bool>* tCurrentAbortFlag = nullptr;

/// Per-launch completion latch, so concurrent launches sharing one pool
/// wait only on their own tasks (two streams compressing on the same
/// device must not serialize on each other's completion).
class Latch {
 public:
  explicit Latch(usize count) : remaining_(count) {}

  void countDown() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (--remaining_ == 0) cv_.notify_all();
  }

  void wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return remaining_ == 0; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  usize remaining_;
};

}  // namespace

bool launchAborted() {
  return tCurrentAbortFlag != nullptr &&
         tCurrentAbortFlag->load(std::memory_order_acquire);
}

void throwIfLaunchAborted() {
  if (launchAborted()) {
    throw Error("gpusim: launch aborted by a failing thread block");
  }
}

namespace detail {
void setCurrentAbortFlag(std::atomic<bool>* flag) {
  tCurrentAbortFlag = flag;
}
}  // namespace detail

Launcher::Launcher() : pool_(&shared()) {}

Launcher::Launcher(ThreadPool& pool) : pool_(&pool) {}

ThreadPool& Launcher::shared() {
  static ThreadPool pool(ThreadPool::defaultWorkers());
  return pool;
}

LaunchResult Launcher::launch(u32 gridSize,
                              const std::function<void(BlockCtx&)>& body,
                              u32 blocksPerTask) {
  const KernelRef ref{gridSize, &body, blocksPerTask};
  return runKernels({&ref, 1})[0];
}

std::vector<LaunchResult> Launcher::launchBatch(
    std::span<const KernelDesc> kernels) {
  std::vector<KernelRef> refs;
  refs.reserve(kernels.size());
  for (const KernelDesc& k : kernels) {
    refs.push_back(KernelRef{k.gridSize, &k.body, k.blocksPerTask});
  }
  return runKernels(refs);
}

/// Fallback for launches issued from inside a kernel body running on this
/// launcher's own pool (the host-model analogue of CUDA dynamic
/// parallelism). Submitting to the pool could deadlock — every worker might
/// be blocked waiting for a nested launch — so the blocks run sequentially
/// on the calling thread. Ascending block order trivially satisfies the
/// forward-progress requirement of the scan protocols.
std::vector<LaunchResult> Launcher::runKernelsInline(
    std::span<const KernelRef> kernels) {
  std::vector<LaunchResult> results(kernels.size());
  for (usize k = 0; k < kernels.size(); ++k) {
    const KernelRef& kernel = kernels[k];
    results[k].gridSize = kernel.gridSize;
    const auto t0 = std::chrono::steady_clock::now();
    for (u32 b = 0; b < kernel.gridSize; ++b) {
      BlockCtx ctx;
      ctx.blockIdx = b;
      ctx.gridSize = kernel.gridSize;
      (*kernel.body)(ctx);
      results[k].mem += ctx.mem;
      results[k].sync += ctx.sync;
    }
    const auto t1 = std::chrono::steady_clock::now();
    results[k].wallSeconds = std::chrono::duration<f64>(t1 - t0).count();
  }
  return results;
}

std::vector<LaunchResult> Launcher::runKernels(
    std::span<const KernelRef> kernels) {
  if (ThreadPool::currentPool() == pool_) return runKernelsInline(kernels);

  std::vector<LaunchResult> results(kernels.size());

  // Resolve per-kernel task partitions and the flattened task count so one
  // latch can cover the whole batch.
  struct Partition {
    u32 blocksPerTask = 0;
    u32 numTasks = 0;
    u32 taskBase = 0;  // offset into the flattened per-task counter arrays
  };
  std::vector<Partition> parts(kernels.size());
  u32 totalTasks = 0;
  for (usize k = 0; k < kernels.size(); ++k) {
    const u32 gridSize = kernels[k].gridSize;
    results[k].gridSize = gridSize;
    if (gridSize == 0) continue;
    u32 blocksPerTask = kernels[k].blocksPerTask;
    if (blocksPerTask == 0) {
      // Enough tasks to keep every worker busy several times over, but not
      // so many that queue overhead dominates.
      const u32 targetTasks = static_cast<u32>(pool_->workerCount()) * 8;
      blocksPerTask =
          std::max<u32>(1, gridSize / std::max<u32>(1, targetTasks));
    }
    parts[k].blocksPerTask = blocksPerTask;
    parts[k].numTasks = static_cast<u32>(
        (static_cast<u64>(gridSize) + blocksPerTask - 1) / blocksPerTask);
    parts[k].taskBase = totalTasks;
    totalTasks += parts[k].numTasks;
  }
  if (totalTasks == 0) return results;

  // Per-task accumulation avoids false sharing on per-block counters.
  std::vector<MemCounters> taskMem(totalTasks);
  std::vector<SyncStats> taskSync(totalTasks);

  std::atomic<bool> abortFlag{false};
  std::mutex exceptionMutex;
  std::exception_ptr firstException;
  Latch done(totalTasks);

  const auto t0 = std::chrono::steady_clock::now();
  for (usize k = 0; k < kernels.size(); ++k) {
    const u32 gridSize = kernels[k].gridSize;
    const std::function<void(BlockCtx&)>* body = kernels[k].body;
    for (u32 task = 0; task < parts[k].numTasks; ++task) {
      const u32 first = task * parts[k].blocksPerTask;
      const u32 last = std::min(gridSize, first + parts[k].blocksPerTask);
      const u32 slot = parts[k].taskBase + task;
      pool_->submit([&, gridSize, body, slot, first, last] {
        detail::setCurrentAbortFlag(&abortFlag);
        try {
          for (u32 b = first; b < last; ++b) {
            BlockCtx ctx;
            ctx.blockIdx = b;
            ctx.gridSize = gridSize;
            (*body)(ctx);
            taskMem[slot] += ctx.mem;
            taskSync[slot] += ctx.sync;
          }
        } catch (...) {
          // Record the exception before raising the abort flag so that
          // secondary "launch aborted" errors from spinning blocks never
          // mask the root cause.
          {
            std::lock_guard<std::mutex> lock(exceptionMutex);
            if (!firstException) firstException = std::current_exception();
          }
          abortFlag.store(true, std::memory_order_release);
        }
        detail::setCurrentAbortFlag(nullptr);
        done.countDown();
      });
    }
  }
  done.wait();
  const auto t1 = std::chrono::steady_clock::now();

  if (firstException) std::rethrow_exception(firstException);

  const f64 wall = std::chrono::duration<f64>(t1 - t0).count();
  for (usize k = 0; k < kernels.size(); ++k) {
    for (u32 task = 0; task < parts[k].numTasks; ++task) {
      results[k].mem += taskMem[parts[k].taskBase + task];
      results[k].sync += taskSync[parts[k].taskBase + task];
    }
    results[k].wallSeconds = wall;
  }
  return results;
}

}  // namespace cuszp2::gpusim
