#include "gpusim/launcher.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <vector>

#include "common/error.hpp"

namespace cuszp2::gpusim {

namespace {

thread_local std::atomic<bool>* tCurrentAbortFlag = nullptr;

/// Per-launch completion latch, so concurrent launches sharing one pool
/// wait only on their own tasks (two streams compressing on the same
/// device must not serialize on each other's completion).
class Latch {
 public:
  explicit Latch(usize count) : remaining_(count) {}

  void countDown() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (--remaining_ == 0) cv_.notify_all();
  }

  void wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return remaining_ == 0; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  usize remaining_;
};

}  // namespace

bool launchAborted() {
  return tCurrentAbortFlag != nullptr &&
         tCurrentAbortFlag->load(std::memory_order_acquire);
}

void throwIfLaunchAborted() {
  if (launchAborted()) {
    throw Error("gpusim: launch aborted by a failing thread block");
  }
}

namespace detail {
void setCurrentAbortFlag(std::atomic<bool>* flag) {
  tCurrentAbortFlag = flag;
}
}  // namespace detail

Launcher::Launcher() : pool_(new ThreadPool(ThreadPool::defaultWorkers())),
                       ownsPool_(true) {}

Launcher::Launcher(ThreadPool& pool) : pool_(&pool), ownsPool_(false) {}

Launcher::~Launcher() {
  if (ownsPool_) delete pool_;
}

LaunchResult Launcher::launch(u32 gridSize,
                              const std::function<void(BlockCtx&)>& body,
                              u32 blocksPerTask) {
  LaunchResult result;
  result.gridSize = gridSize;
  if (gridSize == 0) return result;

  if (blocksPerTask == 0) {
    // Enough tasks to keep every worker busy several times over, but not so
    // many that queue overhead dominates.
    const u32 targetTasks =
        static_cast<u32>(pool_->workerCount()) * 8;
    blocksPerTask = std::max<u32>(1, gridSize / std::max<u32>(1, targetTasks));
  }

  // Per-task accumulation avoids false sharing on per-block counters.
  const u32 numTasks = static_cast<u32>(
      (static_cast<u64>(gridSize) + blocksPerTask - 1) / blocksPerTask);
  std::vector<MemCounters> taskMem(numTasks);
  std::vector<SyncStats> taskSync(numTasks);

  std::atomic<bool> abortFlag{false};
  std::mutex exceptionMutex;
  std::exception_ptr firstException;
  Latch done(numTasks);

  const auto t0 = std::chrono::steady_clock::now();
  for (u32 task = 0; task < numTasks; ++task) {
    const u32 first = task * blocksPerTask;
    const u32 last = std::min(gridSize, first + blocksPerTask);
    pool_->submit([&, task, first, last] {
      detail::setCurrentAbortFlag(&abortFlag);
      try {
        for (u32 b = first; b < last; ++b) {
          BlockCtx ctx;
          ctx.blockIdx = b;
          ctx.gridSize = gridSize;
          body(ctx);
          taskMem[task] += ctx.mem;
          taskSync[task] += ctx.sync;
        }
      } catch (...) {
        // Record the exception before raising the abort flag so that
        // secondary "launch aborted" errors from spinning blocks never
        // mask the root cause.
        {
          std::lock_guard<std::mutex> lock(exceptionMutex);
          if (!firstException) firstException = std::current_exception();
        }
        abortFlag.store(true, std::memory_order_release);
      }
      detail::setCurrentAbortFlag(nullptr);
      done.countDown();
    });
  }
  done.wait();
  const auto t1 = std::chrono::steady_clock::now();

  if (firstException) std::rethrow_exception(firstException);

  for (u32 task = 0; task < numTasks; ++task) {
    result.mem += taskMem[task];
    result.sync += taskSync[task];
  }
  result.wallSeconds =
      std::chrono::duration<f64>(t1 - t0).count();
  return result;
}

}  // namespace cuszp2::gpusim
