#include "gpusim/launcher.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "gpusim/timing.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace cuszp2::gpusim {

namespace {

const char* syncMethodName(SyncMethod m) {
  switch (m) {
    case SyncMethod::None: return "none";
    case SyncMethod::ChainedScan: return "chained_scan";
    case SyncMethod::DecoupledLookback: return "decoupled_lookback";
    case SyncMethod::AtomicAggregate: return "atomic_aggregate";
    case SyncMethod::ReduceThenScan: return "reduce_then_scan";
  }
  return "unknown";
}

thread_local std::atomic<bool>* tCurrentAbortFlag = nullptr;

/// Duration of one fault-injection model tick (FaultPlan::stallTicks /
/// wedgeTicks). Coarse enough that a handful of ticks dominates any real
/// kernel on the host model, small enough that tests stay fast.
constexpr std::chrono::milliseconds kFaultTick{1};

/// Per-launch completion latch, so concurrent launches sharing one pool
/// wait only on their own tasks (two streams compressing on the same
/// device must not serialize on each other's completion).
class Latch {
 public:
  explicit Latch(usize count) : remaining_(count) {}

  void countDown() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (--remaining_ == 0) cv_.notify_all();
  }

  void wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return remaining_ == 0; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  usize remaining_;
};

}  // namespace

bool launchAborted() {
  return tCurrentAbortFlag != nullptr &&
         tCurrentAbortFlag->load(std::memory_order_acquire);
}

void throwIfLaunchAborted() {
  if (launchAborted()) {
    throw Error("gpusim: launch aborted by a failing thread block");
  }
}

namespace detail {
void setCurrentAbortFlag(std::atomic<bool>* flag) {
  tCurrentAbortFlag = flag;
}
}  // namespace detail

Launcher::Launcher() : pool_(&shared()) {}

Launcher::Launcher(ThreadPool& pool) : pool_(&pool) {}

ThreadPool& Launcher::shared() {
  static ThreadPool pool(ThreadPool::defaultWorkers());
  return pool;
}

LaunchResult Launcher::launch(u32 gridSize,
                              const std::function<void(BlockCtx&)>& body,
                              u32 blocksPerTask,
                              std::span<std::byte> faultTarget,
                              const char* name) {
  const KernelRef ref{gridSize, &body, blocksPerTask, faultTarget, name};
  return runKernels({&ref, 1})[0];
}

std::vector<LaunchResult> Launcher::launchBatch(
    std::span<const KernelDesc> kernels) {
  std::vector<KernelRef> refs;
  refs.reserve(kernels.size());
  for (const KernelDesc& k : kernels) {
    refs.push_back(KernelRef{k.gridSize, &k.body, k.blocksPerTask,
                             k.faultTarget, k.name});
  }
  return runKernels(refs);
}

void Launcher::noteLaunches(std::span<const KernelRef> kernels,
                            std::span<const LaunchResult> results) const {
  // Per-kernel modelled seconds (0 without a registered TimingModel).
  std::vector<f64> modelled(results.size(), 0.0);
  if (timing_ != nullptr) {
    for (usize k = 0; k < results.size(); ++k) {
      modelled[k] =
          timing_->kernel(results[k].mem, results[k].sync).totalSeconds;
    }
  }

  // Metrics table: one fused launch per distinct kernel name in the batch.
  // Bytes and modelled seconds are summed; wall time takes the max (batched
  // kernels run interleaved, so per-kernel wall time is not observable).
  if (telemetry::registry().enabled()) {
    struct Agg {
      const char* name;
      u64 bytes = 0;
      f64 modelledSeconds = 0.0;
      f64 wallSeconds = 0.0;
    };
    std::vector<Agg> groups;
    for (usize k = 0; k < kernels.size(); ++k) {
      Agg* agg = nullptr;
      for (Agg& g : groups) {
        if (std::strcmp(g.name, kernels[k].name) == 0) {
          agg = &g;
          break;
        }
      }
      if (agg == nullptr) {
        groups.push_back(Agg{kernels[k].name});
        agg = &groups.back();
      }
      agg->bytes += results[k].mem.totalBytes();
      agg->modelledSeconds += modelled[k];
      agg->wallSeconds = std::max(agg->wallSeconds, results[k].wallSeconds);
    }
    for (const Agg& g : groups) {
      telemetry::registry().noteKernelLaunch(g.name, g.bytes,
                                             g.modelledSeconds,
                                             g.wallSeconds);
    }
  }

  telemetry::TraceSession* trace = telemetry::activeTrace();
  if (trace == nullptr) return;
  for (usize k = 0; k < kernels.size(); ++k) {
    noteLaunchTrace(*trace, kernels[k].name, results[k], modelled[k]);
  }
}

void Launcher::noteLaunchTrace(telemetry::TraceSession& session,
                               const char* name, const LaunchResult& result,
                               f64 modelled) const {
  telemetry::TraceSession* trace = &session;
  using telemetry::TraceArg;
  std::vector<TraceArg> args;
  args.reserve(12);
  args.push_back(TraceArg::num("grid_size", result.gridSize));
  args.push_back(
      TraceArg::num("bytes_read", static_cast<f64>(result.mem.bytesRead)));
  args.push_back(TraceArg::num(
      "bytes_written", static_cast<f64>(result.mem.bytesWritten)));
  args.push_back(TraceArg::num(
      "transactions", static_cast<f64>(result.mem.totalTransactions())));
  args.push_back(TraceArg::num("atomic_ops",
                               static_cast<f64>(result.mem.atomicOps)));
  args.push_back(
      TraceArg::str("sync_method", syncMethodName(result.sync.method)));
  args.push_back(
      TraceArg::num("sync_tiles", static_cast<f64>(result.sync.tiles)));
  args.push_back(TraceArg::num(
      "max_lookback_depth",
      static_cast<f64>(result.sync.maxLookbackDepth)));
  args.push_back(TraceArg::num("wait_spins",
                               static_cast<f64>(result.sync.waitSpins)));
  args.push_back(TraceArg::num("injected_bit_flips",
                               static_cast<f64>(result.injectedBitFlips)));
  args.push_back(TraceArg::num("modelled_seconds", modelled));
  // The simulated launch's host wall time is the trace span's duration;
  // the modelled GPU time rides along as an arg so both views line up.
  trace->complete(name, result.wallSeconds * 1e6, std::move(args));
}

std::optional<u64> Launcher::takeArenaFault() {
  if (!faultPlan_ || faultPlan_->arenaBudgetBytes == 0) return std::nullopt;
  if (!faultActive(launchCount())) return std::nullopt;
  const u64 budget = faultPlan_->arenaBudgetBytes;
  if (!faultPlan_->sticky) faultPlan_->arenaBudgetBytes = 0;
  return budget;
}

bool Launcher::faultActive(u64 launchIdx) const {
  if (!faultPlan_) return false;
  return faultPlan_->sticky ? launchIdx >= faultPlan_->triggerLaunch
                            : launchIdx == faultPlan_->triggerLaunch;
}

/// Soft-error injection: flips `bitFlips` bits of the kernel's written
/// bytes at seeded-uniform positions. Deterministic per (seed, launches
/// since the trigger) — NOT the absolute launch index, which depends on
/// how much work this launcher happened to run before (schedule-dependent
/// in a multi-worker service). A non-sticky plan therefore damages
/// positions that are a pure function of its seed; a sticky plan varies
/// them per firing so relaunches observe fresh damage.
void Launcher::injectWriteFaults(u64 launchIdx, std::span<std::byte> target,
                                 LaunchResult& result) const {
  if (!faultPlan_ || faultPlan_->bitFlips == 0 || target.empty()) return;
  Rng rng(SplitMix64(faultPlan_->seed ^ (launchIdx - faultPlan_->triggerLaunch))
              .next());
  for (u32 i = 0; i < faultPlan_->bitFlips; ++i) {
    const usize pos = rng.uniformInt(target.size());
    target[pos] ^= static_cast<std::byte>(1u << rng.uniformInt(8));
  }
  result.injectedBitFlips += faultPlan_->bitFlips;
}

/// Fallback for launches issued from inside a kernel body running on this
/// launcher's own pool (the host-model analogue of CUDA dynamic
/// parallelism). Submitting to the pool could deadlock — every worker might
/// be blocked waiting for a nested launch — so the blocks run sequentially
/// on the calling thread. Ascending block order trivially satisfies the
/// forward-progress requirement of the scan protocols.
std::vector<LaunchResult> Launcher::runKernelsInline(
    std::span<const KernelRef> kernels) {
  std::vector<LaunchResult> results(kernels.size());
  for (usize k = 0; k < kernels.size(); ++k) {
    const KernelRef& kernel = kernels[k];
    const u64 launchIdx = launchSeq_.fetch_add(1, std::memory_order_relaxed);
    const bool fault = faultActive(launchIdx);
    results[k].gridSize = kernel.gridSize;
    const auto t0 = std::chrono::steady_clock::now();
    if (fault && (faultPlan_->stallTicks > 0 || faultPlan_->wedgeTicks > 0)) {
      // Inline (nested) launches run on the calling pool worker, so a
      // wedge is indistinguishable from a stall here: both delay the
      // sequential block sweep.
      results[k].injectedStallTicks = faultPlan_->stallTicks;
      results[k].injectedWedgeTicks = faultPlan_->wedgeTicks;
      std::this_thread::sleep_for(
          (faultPlan_->stallTicks + faultPlan_->wedgeTicks) * kFaultTick);
    }
    for (u32 b = 0; b < kernel.gridSize; ++b) {
      if (fault && faultPlan_->abortBlock == static_cast<i64>(b)) {
        throw Error("gpusim: injected block abort (FaultPlan)");
      }
      BlockCtx ctx;
      ctx.blockIdx = b;
      ctx.gridSize = kernel.gridSize;
      (*kernel.body)(ctx);
      results[k].mem += ctx.mem;
      results[k].sync += ctx.sync;
    }
    const auto t1 = std::chrono::steady_clock::now();
    results[k].wallSeconds = std::chrono::duration<f64>(t1 - t0).count();
    if (fault) injectWriteFaults(launchIdx, kernel.faultTarget, results[k]);
  }
  noteLaunches(kernels, results);
  return results;
}

std::vector<LaunchResult> Launcher::runKernels(
    std::span<const KernelRef> kernels) {
  if (ThreadPool::currentPool() == pool_) return runKernelsInline(kernels);

  std::vector<LaunchResult> results(kernels.size());

  // Resolve per-kernel task partitions and the flattened task count so one
  // latch can cover the whole batch.
  struct Partition {
    u32 blocksPerTask = 0;
    u32 numTasks = 0;
    u32 taskBase = 0;  // offset into the flattened per-task counter arrays
  };
  std::vector<Partition> parts(kernels.size());
  std::vector<u64> launchIdx(kernels.size());
  u32 totalTasks = 0;
  for (usize k = 0; k < kernels.size(); ++k) {
    const u32 gridSize = kernels[k].gridSize;
    launchIdx[k] = launchSeq_.fetch_add(1, std::memory_order_relaxed);
    results[k].gridSize = gridSize;
    if (gridSize == 0) continue;
    u32 blocksPerTask = kernels[k].blocksPerTask;
    if (blocksPerTask == 0) {
      // Enough tasks to keep every worker busy several times over, but not
      // so many that queue overhead dominates.
      const u32 targetTasks = static_cast<u32>(pool_->workerCount()) * 8;
      blocksPerTask =
          std::max<u32>(1, gridSize / std::max<u32>(1, targetTasks));
    }
    parts[k].blocksPerTask = blocksPerTask;
    parts[k].numTasks = static_cast<u32>(
        (static_cast<u64>(gridSize) + blocksPerTask - 1) / blocksPerTask);
    parts[k].taskBase = totalTasks;
    totalTasks += parts[k].numTasks;
  }
  if (totalTasks == 0) return results;

  // Per-task accumulation avoids false sharing on per-block counters.
  std::vector<MemCounters> taskMem(totalTasks);
  std::vector<SyncStats> taskSync(totalTasks);

  std::atomic<bool> abortFlag{false};
  std::mutex exceptionMutex;
  std::exception_ptr firstException;
  Latch done(totalTasks);

  const auto t0 = std::chrono::steady_clock::now();
  for (usize k = 0; k < kernels.size(); ++k) {
    const u32 gridSize = kernels[k].gridSize;
    const std::function<void(BlockCtx&)>* body = kernels[k].body;
    // Resolve fault parameters for this kernel up front so workers never
    // touch faultPlan_ (it may be cleared while tasks drain).
    const bool fault = faultActive(launchIdx[k]);
    const i64 abortBlock = fault ? faultPlan_->abortBlock : -1;
    const u32 wedgeTicks = fault ? faultPlan_->wedgeTicks : 0;
    if (fault && faultPlan_->stallTicks > 0) {
      // Kernel-stall fault: the launching thread hangs before any task is
      // dispatched — the grid exists but makes no progress, exactly what a
      // deadline watchdog should observe as a hung launch.
      results[k].injectedStallTicks = faultPlan_->stallTicks;
      std::this_thread::sleep_for(faultPlan_->stallTicks * kFaultTick);
    }
    if (wedgeTicks > 0) results[k].injectedWedgeTicks = wedgeTicks;
    for (u32 task = 0; task < parts[k].numTasks; ++task) {
      const u32 first = task * parts[k].blocksPerTask;
      const u32 last = std::min(gridSize, first + parts[k].blocksPerTask);
      const u32 slot = parts[k].taskBase + task;
      // Worker-wedge fault: whichever pool worker picks up the kernel's
      // first task stops draining for wedgeTicks. Later blocks of the same
      // grid may run (and spin on their predecessor) in the meantime; FIFO
      // dispatch guarantees the wedged block eventually finishes, so the
      // launch is slow but never deadlocked.
      const u32 wedge = task == 0 ? wedgeTicks : 0;
      pool_->submit([&, gridSize, body, slot, first, last, abortBlock,
                     wedge] {
        detail::setCurrentAbortFlag(&abortFlag);
        try {
          if (wedge > 0) std::this_thread::sleep_for(wedge * kFaultTick);
          for (u32 b = first; b < last; ++b) {
            if (abortBlock == static_cast<i64>(b)) {
              throw Error("gpusim: injected block abort (FaultPlan)");
            }
            BlockCtx ctx;
            ctx.blockIdx = b;
            ctx.gridSize = gridSize;
            (*body)(ctx);
            taskMem[slot] += ctx.mem;
            taskSync[slot] += ctx.sync;
          }
        } catch (...) {
          // Record the exception before raising the abort flag so that
          // secondary "launch aborted" errors from spinning blocks never
          // mask the root cause.
          {
            std::lock_guard<std::mutex> lock(exceptionMutex);
            if (!firstException) firstException = std::current_exception();
          }
          abortFlag.store(true, std::memory_order_release);
        }
        detail::setCurrentAbortFlag(nullptr);
        done.countDown();
      });
    }
  }
  done.wait();
  const auto t1 = std::chrono::steady_clock::now();

  if (firstException) std::rethrow_exception(firstException);

  const f64 wall = std::chrono::duration<f64>(t1 - t0).count();
  for (usize k = 0; k < kernels.size(); ++k) {
    for (u32 task = 0; task < parts[k].numTasks; ++task) {
      results[k].mem += taskMem[parts[k].taskBase + task];
      results[k].sync += taskSync[parts[k].taskBase + task];
    }
    results[k].wallSeconds = wall;
    if (faultActive(launchIdx[k])) {
      injectWriteFaults(launchIdx[k], kernels[k].faultTarget, results[k]);
    }
  }
  noteLaunches(kernels, results);
  return results;
}

}  // namespace cuszp2::gpusim
