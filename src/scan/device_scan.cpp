#include "scan/device_scan.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "scan/chained.hpp"
#include "scan/lookback.hpp"

namespace cuszp2::scan {

namespace {

/// The classic three-kernel strategy the single-pass designs replaced.
DeviceScanResult reduceThenScan(std::span<const u64> values, u32 tileSize,
                                u32 numTiles, gpusim::Launcher& launcher) {
  DeviceScanResult result;
  result.exclusive.assign(values.size(), 0);
  auto* out = result.exclusive.data();

  std::vector<u64> tileSums(numTiles, 0);
  // Kernel 1: per-tile reduce.
  auto launch1 = launcher.launch(numTiles, [&](gpusim::BlockCtx& ctx) {
    const usize first = static_cast<usize>(ctx.blockIdx) * tileSize;
    const usize last = std::min(values.size(), first + tileSize);
    u64 sum = 0;
    for (usize i = first; i < last; ++i) sum += values[i];
    tileSums[ctx.blockIdx] = sum;
    ctx.mem.noteVectorRead((last - first) * sizeof(u64), 32);
    ctx.mem.noteScalarWrite(8, 8, 32);
    ctx.mem.noteOps(last - first);
  });

  // Kernel 2: one block serially scans the tile sums.
  std::vector<u64> tileBases(numTiles, 0);
  auto launch2 = launcher.launch(1, [&](gpusim::BlockCtx& ctx) {
    u64 acc = 0;
    for (u32 t = 0; t < numTiles; ++t) {
      tileBases[t] = acc;
      acc += tileSums[t];
    }
    ctx.mem.noteScalarRead(numTiles * 8, 8, 32);
    ctx.mem.noteScalarWrite(numTiles * 8, 8, 32);
    ctx.mem.noteOps(numTiles);
  });

  // Kernel 3: distribute — every tile re-reads its values and writes the
  // final prefixes (the round trip single-pass designs avoid).
  auto launch3 = launcher.launch(numTiles, [&](gpusim::BlockCtx& ctx) {
    const usize first = static_cast<usize>(ctx.blockIdx) * tileSize;
    const usize last = std::min(values.size(), first + tileSize);
    u64 acc = tileBases[ctx.blockIdx];
    for (usize i = first; i < last; ++i) {
      out[i] = acc;
      acc += values[i];
    }
    ctx.mem.noteVectorRead((last - first) * sizeof(u64) + 8, 32);
    ctx.mem.noteVectorWrite((last - first) * sizeof(u64), 32);
    ctx.mem.noteOps(last - first);
  });

  result.launch = launch1;
  result.launch.mem += launch2.mem;
  result.launch.mem += launch3.mem;
  result.launch.wallSeconds += launch2.wallSeconds + launch3.wallSeconds;
  result.launch.sync.method = gpusim::SyncMethod::ReduceThenScan;
  result.launch.sync.tiles = numTiles;
  result.launch.sync.tileDataBytes = static_cast<u64>(tileSize) * sizeof(u64);
  return result;
}

}  // namespace

DeviceScanResult deviceExclusiveScan(std::span<const u64> values,
                                     u32 tileSize, Algorithm algorithm,
                                     gpusim::Launcher& launcher) {
  require(tileSize > 0, "deviceExclusiveScan: tileSize must be > 0");
  DeviceScanResult result;
  result.exclusive.assign(values.size(), 0);
  if (values.empty()) return result;

  const u32 numTiles = static_cast<u32>(
      (values.size() + tileSize - 1) / tileSize);

  if (algorithm == Algorithm::ReduceThenScan) {
    return reduceThenScan(values, tileSize, numTiles, launcher);
  }

  LookbackState lookback(algorithm == Algorithm::DecoupledLookback ? numTiles
                                                                   : 1);
  ChainedScanState chained(algorithm == Algorithm::ChainedScan ? numTiles : 1);

  auto* out = result.exclusive.data();
  result.launch = launcher.launch(numTiles, [&](gpusim::BlockCtx& ctx) {
    const usize first = static_cast<usize>(ctx.blockIdx) * tileSize;
    const usize last = std::min(values.size(), first + tileSize);

    // Local reduce (each tile reads its values once; coalesced vector loads).
    u64 aggregate = 0;
    for (usize i = first; i < last; ++i) aggregate += values[i];
    ctx.mem.noteVectorRead((last - first) * sizeof(u64), 32);
    ctx.mem.noteOps(last - first);

    // Device-level synchronization.
    const u64 exclusiveBase =
        algorithm == Algorithm::DecoupledLookback
            ? lookback.processTile(ctx.blockIdx, aggregate, ctx.sync, ctx.mem)
            : chained.processTile(ctx.blockIdx, aggregate, ctx.sync, ctx.mem);

    // Local scan distributing the base (paper's "Scan" step).
    u64 acc = exclusiveBase;
    for (usize i = first; i < last; ++i) {
      out[i] = acc;
      acc += values[i];
    }
    ctx.mem.noteVectorWrite((last - first) * sizeof(u64), 32);
    ctx.mem.noteOps(last - first);
  });
  return result;
}

}  // namespace cuszp2::scan
