// Decoupled-lookback device-level prefix sum (paper Sec. IV-C; Merrill &
// Garland, NVR-2016-002).
//
// Each tile (thread block) publishes its local AGGREGATE, then walks its
// predecessors backwards, summing AGGREGATE values until it meets a tile
// whose inclusive PREFIX is already published; it then knows its exclusive
// prefix without waiting for the full serial chain, publishes its own
// inclusive PREFIX, and proceeds. State words pack a 2-bit flag with a
// 62-bit value in one 64-bit atomic so flag+value are observed together.
#pragma once

#include <atomic>
#include <memory>
#include <span>

#include "common/types.hpp"
#include "gpusim/mem_counters.hpp"
#include "gpusim/sync_stats.hpp"

namespace cuszp2::scan {

class LookbackState {
 public:
  static constexpr u64 kValueMask = (u64{1} << 62) - 1;
  static constexpr u64 kFlagInvalid = 0;
  static constexpr u64 kFlagAggregate = 1;
  static constexpr u64 kFlagPrefix = 2;

  explicit LookbackState(u32 numTiles);

  /// Non-owning variant over caller-provided state words (>= numTiles),
  /// e.g. carved from a scratch arena so repeated scans allocate nothing.
  LookbackState(u32 numTiles, std::span<std::atomic<u64>> storage);

  u32 numTiles() const { return numTiles_; }

  /// Full per-tile protocol: publish AGGREGATE, look back to compute the
  /// exclusive prefix, publish the inclusive PREFIX, and return the
  /// exclusive prefix. Safe to call concurrently from different tiles as
  /// long as every predecessor tile eventually calls it too (guaranteed by
  /// the launcher's FIFO dispatch).
  u64 processTile(u32 tile, u64 aggregate, gpusim::SyncStats& sync,
                  gpusim::MemCounters& mem);

  /// Reads a tile's published inclusive prefix; spins until available.
  /// Used by the random-access decoder to locate one block without
  /// recomputing the whole scan.
  u64 waitInclusivePrefix(u32 tile) const;

  /// Resets all tiles to INVALID for reuse.
  void reset();

 private:
  void publish(u32 tile, u64 flag, u64 value);

  u32 numTiles_;
  std::unique_ptr<std::atomic<u64>[]> owned_;
  std::atomic<u64>* state_;
};

}  // namespace cuszp2::scan
