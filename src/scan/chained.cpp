#include "scan/chained.hpp"

#include <thread>

#include "common/error.hpp"
#include "gpusim/launcher.hpp"

namespace cuszp2::scan {

ChainedScanState::ChainedScanState(u32 numTiles)
    : numTiles_(numTiles),
      owned_(std::make_unique<std::atomic<u64>[]>(numTiles)),
      state_(owned_.get()) {
  require(numTiles > 0, "ChainedScanState: numTiles must be > 0");
  reset();
}

ChainedScanState::ChainedScanState(u32 numTiles,
                                   std::span<std::atomic<u64>> storage)
    : numTiles_(numTiles), state_(storage.data()) {
  require(numTiles > 0, "ChainedScanState: numTiles must be > 0");
  require(storage.size() >= numTiles,
          "ChainedScanState: external storage too small");
  reset();
}

void ChainedScanState::reset() {
  for (u32 i = 0; i < numTiles_; ++i) {
    state_[i].store(kFlagInvalid << 62, std::memory_order_relaxed);
  }
  std::atomic_thread_fence(std::memory_order_seq_cst);
}

u64 ChainedScanState::processTile(u32 tile, u64 aggregate,
                                  gpusim::SyncStats& sync,
                                  gpusim::MemCounters& mem) {
  require(tile < numTiles_, "ChainedScanState: tile out of range");
  require((aggregate & ~kValueMask) == 0,
          "ChainedScanState: aggregate exceeds 62-bit value field");

  sync.method = gpusim::SyncMethod::ChainedScan;
  sync.tiles += 1;

  u64 exclusive = 0;
  if (tile > 0) {
    u64 spins = 0;
    u64 packed = state_[tile - 1].load(std::memory_order_acquire);
    while ((packed >> 62) != kFlagPrefix) {
      gpusim::throwIfLaunchAborted();
      ++spins;
      std::this_thread::yield();
      packed = state_[tile - 1].load(std::memory_order_acquire);
    }
    mem.noteScalarRead(8, 8, 32);
    sync.waitSpins += spins;
    exclusive = packed & kValueMask;
  }

  state_[tile].store((kFlagPrefix << 62) |
                         ((exclusive + aggregate) & kValueMask),
                     std::memory_order_release);
  mem.noteScalarWrite(8, 8, 32);
  return exclusive;
}

}  // namespace cuszp2::scan
