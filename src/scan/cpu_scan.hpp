// Serial reference prefix sums used as ground truth by tests and by the
// host-side (hybrid baseline) code paths.
#pragma once

#include <span>

#include "common/error.hpp"
#include "common/types.hpp"

namespace cuszp2::scan {

/// out[i] = sum of in[0..i) (out[0] == 0). `out.size() == in.size()`.
inline void exclusiveScan(std::span<const u64> in, std::span<u64> out) {
  require(in.size() == out.size(), "exclusiveScan: size mismatch");
  u64 acc = 0;
  for (usize i = 0; i < in.size(); ++i) {
    out[i] = acc;
    acc += in[i];
  }
}

/// out[i] = sum of in[0..i].
inline void inclusiveScan(std::span<const u64> in, std::span<u64> out) {
  require(in.size() == out.size(), "inclusiveScan: size mismatch");
  u64 acc = 0;
  for (usize i = 0; i < in.size(); ++i) {
    acc += in[i];
    out[i] = acc;
  }
}

/// Total of all values.
inline u64 reduce(std::span<const u64> in) {
  u64 acc = 0;
  for (u64 v : in) acc += v;
  return acc;
}

}  // namespace cuszp2::scan
