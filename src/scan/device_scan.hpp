// Device-level exclusive prefix sum over an array of tile values, executed
// as one kernel under the GPU execution model. This is the standalone form
// used by the Fig. 17 synchronization benchmark and by tests; the compressor
// kernels embed the same per-tile protocol inline.
#pragma once

#include <span>
#include <vector>

#include "gpusim/launcher.hpp"
#include "gpusim/sync_stats.hpp"

namespace cuszp2::scan {

enum class Algorithm : u8 {
  ChainedScan = 0,
  DecoupledLookback = 1,

  /// Classic three-kernel strategy (paper Sec. IV-C): a reduce kernel
  /// writes per-tile sums, a single-block kernel scans them, a third
  /// kernel distributes the bases. Pays two extra kernel launches and a
  /// full round trip of the tile sums through global memory — the
  /// approach single-pass designs (chained scan, lookback) replaced.
  /// Only available through deviceExclusiveScan: it cannot live inside a
  /// single compression kernel, which is exactly why cuSZp2 does not use
  /// it.
  ReduceThenScan = 2,
};

constexpr const char* toString(Algorithm a) {
  switch (a) {
    case Algorithm::ChainedScan: return "chained-scan";
    case Algorithm::DecoupledLookback: return "decoupled-lookback";
    case Algorithm::ReduceThenScan: return "reduce-then-scan";
  }
  return "?";
}

struct DeviceScanResult {
  /// Exclusive prefix for every input value.
  std::vector<u64> exclusive;
  gpusim::LaunchResult launch;
};

/// Computes the exclusive prefix sum of `values`, processing `tileSize`
/// values per thread block with the selected device-level synchronization.
DeviceScanResult deviceExclusiveScan(std::span<const u64> values,
                                     u32 tileSize, Algorithm algorithm,
                                     gpusim::Launcher& launcher);

}  // namespace cuszp2::scan
