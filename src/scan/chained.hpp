// Plain chained-scan device-level prefix sum — the state-of-the-art
// synchronization the paper benchmarks against (Fig. 12 left, Fig. 17;
// used by cuSZp v1 and StreamScan-style compressors).
//
// Tile t spins until tile t-1 has published its inclusive prefix, adds its
// own aggregate, and publishes. The dependency chain is fully serial, which
// is exactly the latency problem decoupled lookback removes.
#pragma once

#include <atomic>
#include <memory>
#include <span>

#include "common/types.hpp"
#include "gpusim/mem_counters.hpp"
#include "gpusim/sync_stats.hpp"

namespace cuszp2::scan {

class ChainedScanState {
 public:
  static constexpr u64 kValueMask = (u64{1} << 62) - 1;
  static constexpr u64 kFlagInvalid = 0;
  static constexpr u64 kFlagPrefix = 2;

  explicit ChainedScanState(u32 numTiles);

  /// Non-owning variant over caller-provided state words (>= numTiles).
  ChainedScanState(u32 numTiles, std::span<std::atomic<u64>> storage);

  u32 numTiles() const { return numTiles_; }

  /// Publishes this tile's inclusive prefix after waiting on the
  /// predecessor; returns the exclusive prefix.
  u64 processTile(u32 tile, u64 aggregate, gpusim::SyncStats& sync,
                  gpusim::MemCounters& mem);

  void reset();

 private:
  u32 numTiles_;
  std::unique_ptr<std::atomic<u64>[]> owned_;
  std::atomic<u64>* state_;
};

}  // namespace cuszp2::scan
