#include "scan/lookback.hpp"

#include <algorithm>
#include <span>
#include <thread>

#include "common/error.hpp"
#include "common/simd.hpp"
#include "gpusim/launcher.hpp"
#include "telemetry/metrics.hpp"

namespace cuszp2::scan {

LookbackState::LookbackState(u32 numTiles)
    : numTiles_(numTiles),
      owned_(std::make_unique<std::atomic<u64>[]>(numTiles)),
      state_(owned_.get()) {
  require(numTiles > 0, "LookbackState: numTiles must be > 0");
  reset();
}

LookbackState::LookbackState(u32 numTiles,
                             std::span<std::atomic<u64>> storage)
    : numTiles_(numTiles), state_(storage.data()) {
  require(numTiles > 0, "LookbackState: numTiles must be > 0");
  require(storage.size() >= numTiles,
          "LookbackState: external storage too small");
  reset();
}

void LookbackState::reset() {
  for (u32 i = 0; i < numTiles_; ++i) {
    state_[i].store(kFlagInvalid << 62, std::memory_order_relaxed);
  }
  std::atomic_thread_fence(std::memory_order_seq_cst);
}

void LookbackState::publish(u32 tile, u64 flag, u64 value) {
  state_[tile].store((flag << 62) | (value & kValueMask),
                     std::memory_order_release);
}

u64 LookbackState::processTile(u32 tile, u64 aggregate,
                               gpusim::SyncStats& sync,
                               gpusim::MemCounters& mem) {
  require(tile < numTiles_, "LookbackState: tile out of range");
  require((aggregate & ~kValueMask) == 0,
          "LookbackState: aggregate exceeds 62-bit value field");

  sync.method = gpusim::SyncMethod::DecoupledLookback;
  sync.tiles += 1;

  // Observed lookback depth distribution (the protocol's critical-path
  // term, paper Fig. 13). Tile 0 records depth 0: it publishes its prefix
  // without looking back. The handle is resolved once per process; the
  // record itself is a branch when telemetry is off.
  static telemetry::Histogram& depthHist =
      telemetry::registry().histogram("scan.lookback.depth");

  if (tile == 0) {
    publish(0, kFlagPrefix, aggregate);
    mem.noteScalarWrite(8, 8, 32);
    depthHist.record(0);
    return 0;
  }

  publish(tile, kFlagAggregate, aggregate);
  mem.noteScalarWrite(8, 8, 32);

  // The walk gathers published predecessor words into a small window and
  // combines each window with one vector masked-sum (u64 adds are exact in
  // any order, so the result is identical to the scalar accumulation); the
  // per-word acquire loads and spin-wait semantics are unchanged.
  u64 exclusive = 0;
  u64 depth = 0;
  u64 spins = 0;
  u64 window[8];
  usize filled = 0;
  const auto combineWindow = [&] {
    u64 sum = 0;
    if (!simd::sumMaskedU64(std::span<const u64>(window, filled), kValueMask,
                            &sum)) {
      for (usize i = 0; i < filled; ++i) sum += window[i] & kValueMask;
    }
    exclusive += sum;
    filled = 0;
  };
  for (u32 look = tile; look-- > 0;) {
    ++depth;
    u64 packed = state_[look].load(std::memory_order_acquire);
    while ((packed >> 62) == kFlagInvalid) {
      gpusim::throwIfLaunchAborted();
      ++spins;
      std::this_thread::yield();
      packed = state_[look].load(std::memory_order_acquire);
    }
    mem.noteScalarRead(8, 8, 32);
    window[filled++] = packed;
    if ((packed >> 62) == kFlagPrefix) break;
    if (filled == sizeof(window) / sizeof(window[0])) combineWindow();
  }
  combineWindow();

  sync.lookbackSteps += depth;
  sync.maxLookbackDepth = std::max(sync.maxLookbackDepth, depth);
  sync.waitSpins += spins;

  depthHist.record(depth);

  publish(tile, kFlagPrefix, (exclusive + aggregate) & kValueMask);
  mem.noteScalarWrite(8, 8, 32);
  return exclusive;
}

u64 LookbackState::waitInclusivePrefix(u32 tile) const {
  require(tile < numTiles_, "LookbackState: tile out of range");
  u64 packed = state_[tile].load(std::memory_order_acquire);
  while ((packed >> 62) != kFlagPrefix) {
    std::this_thread::yield();
    packed = state_[tile].load(std::memory_order_acquire);
  }
  return packed & kValueMask;
}

}  // namespace cuszp2::scan
