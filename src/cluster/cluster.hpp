// Sharded compression cluster: N in-process CompressionService shards
// over a heterogeneous gpusim fleet, glued together by a consistent-hash
// ring (cluster/ring.hpp) and a ShardSupervisor.
//
// Deterministic by construction — no sockets, no wall-clock decisions:
//
//   * Routing: a tenant's jobs go to the first live shard on its ring
//     walk (Up preferred over Degraded, Down skipped). Shard services
//     keep their own FIFO lanes, batching, watchdog/retry/breaker
//     ladder — the cluster layer only decides placement.
//   * Failover: when a shard dies, its queued jobs resolve Abandoned at
//     the shard level (shutdown drain) and the cluster resubmits each to
//     the next untried live replica in ring order, reusing the
//     exactly-once commit: whichever execution publishes first wins, and
//     a job's ClusterTicket resolves exactly once with a typed Outcome.
//     Output bytes are device-independent (DeviceSpec only feeds the
//     timing model), so a failed-over job is byte-identical to a
//     single-shard run.
//   * Replicated archives: putArchive seals each copy with the XOR-
//     parity trailer (io::withParityTrailer) and writes it to the first
//     R live shards on the blob key's ring walk. getArchive verifies
//     CRC-32 digests, self-heals single-chunk damage via repairParity,
//     fails over past missing/corrupt/Down copies, and read-repairs the
//     replica set back to R intact copies.
//   * Supervision: heartbeat() probes every live shard through an
//     optional seeded chaos hook (ShardChaosSchedule — pure in (seed,
//     shard, heartbeat), same contract as service::SeededChaosSchedule),
//     walks the Up -> Degraded -> Down ladder, drains + requeues a dead
//     shard's work, removes it from the ring (only that shard's tenants
//     move — tests assert), and runs placement-cost-aware work stealing
//     from the most-backlogged shard to the idlest one.
//
// docs/SERVICE.md "Cluster topology & failure semantics" is the prose
// spec; docs/OBSERVABILITY.md lists the cluster.* metrics.
#pragma once

#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cas/block_store.hpp"
#include "cluster/ring.hpp"
#include "io/archive.hpp"
#include "service/service.hpp"

namespace cuszp2::cluster {

/// Health ladder of one shard. Up shards take new work; Degraded shards
/// are routed around when an Up replica exists but keep their queue;
/// Down shards are drained, removed from the ring, and hold no work.
enum class ShardState : u8 { Up = 0, Degraded = 1, Down = 2 };

constexpr const char* toString(ShardState s) {
  switch (s) {
    case ShardState::Up: return "up";
    case ShardState::Degraded: return "degraded";
    default: return "down";
  }
}

/// One probe verdict for a shard heartbeat (returned by a ShardChaosHook).
struct ShardFault {
  enum class Mode : u8 {
    None = 0,     ///< probe succeeded (a Degraded shard recovers)
    Degrade = 1,  ///< probe slow/flaky: Up -> Degraded, Degraded -> ladder
    Kill = 2,     ///< probe dead: shard goes Down (subject to minShardsUp)
  };
  Mode mode = Mode::None;
};

/// What a ShardChaosHook learns about the probe it may fault.
struct ShardProbeInfo {
  u32 shard = 0;
  /// 1-based heartbeat ordinal (cluster-wide, monotonic).
  u64 heartbeat = 0;
};

/// Consulted once per (shard, heartbeat) by the supervisor. Must be a
/// pure function of its input for reproducible kill schedules.
using ShardChaosHook = std::function<ShardFault(const ShardProbeInfo&)>;

struct ShardChaosConfig {
  u64 seed = 1;
  /// Probability a probe reads Degrade / Kill. Evaluated edge-cascaded
  /// (kill first) from one uniform draw per (seed, shard, heartbeat).
  f64 degradeRate = 0.0;
  f64 killRate = 0.0;
};

/// Seeded shard-probe fault schedule: decide() is pure in (seed, shard,
/// heartbeat), so a run's Degraded/Down transitions — and therefore its
/// failover counters — replay identically for the same seed. The
/// shard-level analogue of service::SeededChaosSchedule.
class ShardChaosSchedule {
 public:
  explicit ShardChaosSchedule(ShardChaosConfig config = {})
      : config_(config) {}

  ShardFault decide(const ShardProbeInfo& info) const;

  /// A copyable hook for ClusterConfig::shardChaos.
  ShardChaosHook hook() const {
    return [schedule = *this](const ShardProbeInfo& info) {
      return schedule.decide(info);
    };
  }

 private:
  ShardChaosConfig config_;
};

struct ClusterConfig {
  /// Shard count. Shard i runs one CompressionService built from the
  /// `shard` template with its workers pinned to devices[i].
  u32 shards = 4;

  /// Archive replication factor (primary + followers), clamped to the
  /// live shard count at write time.
  u32 replicas = 2;

  /// Ring geometry (see ConsistentHashRing).
  u32 vnodesPerShard = 64;
  u64 ringSeed = 0xC1A57E12u;

  /// Per-shard service template. `workers` is workers PER SHARD;
  /// `devices` and `startPaused` are overridden per shard from the
  /// fields below.
  service::ServiceConfig shard;

  /// One device per shard; empty = gpusim::heterogeneousFleet(shards)
  /// (A100 / RTX 3090 / RTX 3080 round-robin).
  std::vector<gpusim::DeviceSpec> devices;

  /// Supervisor floor: a Kill verdict is vetoed (stats.killsVetoed)
  /// when honoring it would leave fewer live shards than this.
  u32 minShardsUp = 1;

  /// Consecutive Degrade verdicts that escalate Degraded -> Down.
  u32 degradedProbesToDown = 2;

  /// Cross-shard resubmissions per job (0 = shards - 1).
  u32 maxJobFailovers = 0;

  /// Placement-cost-aware work stealing during heartbeat(): move queued
  /// jobs from the most-backlogged shard to the idlest Up shard while
  /// the move strictly improves the modelled finish time.
  bool workStealing = true;
  f64 stealMarginSeconds = 0.0;
  u32 maxStealsPerHeartbeat = 8;

  /// Start every shard paused (deterministic replay: submit everything,
  /// run heartbeats/kills, then resume()).
  bool startPaused = false;

  /// Probe fault injection (chaos drills); nullptr = every probe is
  /// healthy and only explicit killShard()/reviveShard() change state.
  ShardChaosHook shardChaos;

  /// Parity geometry for sealed archive replicas.
  io::ParityOptions replicaParity{};

  /// Per-shard replica stores: every shard holds its archive copies in a
  /// cas::BlockStore, so replicas of the same sealed bytes — and replicas
  /// of different tenants' identical archives — share physical chunks on
  /// that shard, and reads verify copies by chained CRC over the chunk
  /// views without reassembling them (docs/CAS.md). deferGc here makes
  /// deleteArchive park chunks until a store gc() (resurrection drills).
  cas::StoreConfig replicaStore{};

  /// Drain budget granted to a dying shard's queue before its queued
  /// jobs are abandoned (and failed over). Keep at 0 for deterministic
  /// drills: running jobs still always complete.
  std::chrono::milliseconds shardDrainDeadline{0};

  /// >0: the supervisor probes on its own thread every this many ms.
  /// 0 (default): heartbeats happen only via explicit heartbeat() calls,
  /// which is what deterministic tests and soaks want.
  u32 heartbeatMillis = 0;

  /// Non-empty: durable shard intake (docs/DURABILITY.md). Each shard's
  /// service journals accepted jobs at
  /// `<journalDir>/shard-<id>.jobs.jnl`; a revived shard replays its
  /// accepted-but-unresolved jobs (exactly-once) inside makeService —
  /// i.e. BEFORE it re-joins the ring and before the archive re-sync.
  /// The directory must exist.
  std::string journalDir;
};

/// Monotonic cluster counters. Value-comparable so chaos drills can
/// assert two runs of the same seed produce identical snapshots.
struct ClusterStats {
  u64 submitted = 0;
  u64 accepted = 0;
  u64 rejected = 0;
  u64 completed = 0;   ///< jobs resolved Completed
  u64 failed = 0;      ///< jobs resolved Failed
  u64 degraded = 0;    ///< jobs resolved Degraded (salvaged decode)
  u64 canceled = 0;    ///< jobs resolved Canceled (client cancel)
  u64 abandoned = 0;   ///< jobs resolved Abandoned (cluster shutdown)
  u64 failovers = 0;   ///< cross-shard resubmissions after a shard died
  u64 spills = 0;      ///< submissions placed past a full primary
  u64 steals = 0;      ///< queued jobs moved by work stealing
  u64 heartbeats = 0;
  u64 probeFaults = 0;       ///< Degrade/Kill verdicts observed
  u64 shardDegrades = 0;     ///< Up -> Degraded transitions
  u64 shardRecoveries = 0;   ///< Degraded -> Up transitions
  u64 shardKills = 0;        ///< -> Down transitions
  u64 shardRevives = 0;      ///< Down -> Up transitions
  u64 killsVetoed = 0;       ///< Kill verdicts blocked by minShardsUp
  u64 archivePuts = 0;
  u64 archiveCopies = 0;     ///< replica copies written by puts
  u64 archiveReads = 0;
  u64 archiveReadFailovers = 0;  ///< bad/missing copies skipped by reads
  u64 archiveRepairs = 0;        ///< copies rebuilt (read-repair/revive)
  u64 archiveDeletes = 0;        ///< deleteArchive calls that found the key
  u64 archiveDeleteCopies = 0;   ///< shard copies released by deletes

  bool operator==(const ClusterStats&) const = default;
};

/// Terminal result of one cluster job: the winning shard execution's
/// JobResult plus the cluster-level routing history.
struct ClusterJobResult {
  service::JobResult job;
  u32 shard = 0;      ///< shard whose execution published the result
  u32 failovers = 0;  ///< cross-shard resubmissions this job consumed
  u32 steals = 0;     ///< work-stealing moves this job consumed
};

namespace detail {
struct ClusterJob;
struct ClusterState;
}  // namespace detail

/// Async handle to one cluster job. Copyable; safe to wait on after the
/// cluster has shut down or been destroyed. Waiting drives failover:
/// when the current shard execution resolves badly because its shard
/// died, the waiter resubmits to the next replica and keeps waiting.
class ClusterTicket {
 public:
  ClusterTicket() = default;

  bool valid() const { return job_ != nullptr; }
  u64 id() const;

  /// True once the cluster-level result is available. Never blocks on
  /// job completion (it may briefly contend the cluster mutex).
  bool poll() const;

  /// Blocks until the job resolves (across failovers) and returns the
  /// result. The reference stays valid for the ticket's lifetime.
  const ClusterJobResult& wait() const;

  /// Bounded wait; true when the result became available in time.
  bool waitFor(std::chrono::milliseconds timeout) const;

  /// Result accessor once poll()/wait() reported completion.
  const ClusterJobResult& result() const;

  /// Attempts to cancel before dispatch (forwards to the current shard
  /// ticket). Returns true when the cancel won; false when the job is
  /// already running or finished.
  bool cancel();

 private:
  friend class CompressionCluster;
  ClusterTicket(std::shared_ptr<detail::ClusterState> state,
                std::shared_ptr<detail::ClusterJob> job)
      : state_(std::move(state)), job_(std::move(job)) {}

  std::shared_ptr<detail::ClusterState> state_;
  std::shared_ptr<detail::ClusterJob> job_;
};

/// Outcome of a cluster submit: an accepted ticket or a typed rejection
/// (service::RejectReason — QueueFull only after every live replica
/// refused; quota/breaker rejections are tenant-scoped and propagate
/// from the primary).
struct ClusterSubmitResult {
  ClusterTicket ticket;
  service::RejectReason reason = service::RejectReason::QueueFull;
  std::string detail;

  bool accepted() const { return ticket.valid(); }
};

/// Point-in-time public view of one shard.
struct ShardInfo {
  u32 id = 0;
  ShardState state = ShardState::Up;
  std::string device;
  usize queueDepth = 0;        ///< admitted-but-unfinished at the shard
  u64 replayedJobs = 0;        ///< jobs replayed from the shard journal
  service::ServiceStats stats; ///< the shard service's own counters
};

class ShardSupervisor;

class CompressionCluster {
 public:
  explicit CompressionCluster(ClusterConfig config = {});
  ~CompressionCluster();

  CompressionCluster(const CompressionCluster&) = delete;
  CompressionCluster& operator=(const CompressionCluster&) = delete;

  /// Submits a compression job for `tenant` (input copied; the cluster
  /// retains a copy for failover resubmission).
  template <FloatingPoint T>
  ClusterSubmitResult submitCompress(const std::string& tenant,
                                     std::span<const T> data,
                                     const core::Config& config,
                                     u8 priority = 0) {
    std::vector<std::byte> bytes(data.size() * sizeof(T));
    if (!bytes.empty()) {
      std::memcpy(bytes.data(), data.data(), bytes.size());
    }
    return submit(tenant, service::JobKind::Compress, precisionOf<T>(),
                  std::move(bytes), config, priority);
  }

  ClusterSubmitResult submitDecompress(const std::string& tenant,
                                       ConstByteSpan stream,
                                       const core::Config& config = {},
                                       u8 priority = 0) {
    return submit(tenant, service::JobKind::Decompress, Precision::F32,
                  {stream.begin(), stream.end()}, config, priority);
  }

  /// Pauses/resumes dispatch on every live shard (paused + submit-all +
  /// heartbeat + resume is the deterministic drill recipe).
  void pause();
  void resume();

  /// Stops intake, drains every live shard fully, and resolves every
  /// outstanding ticket. Idempotent; the destructor calls it.
  void shutdown();

  /// One synchronous probe round: chaos verdicts, the Degraded/Down
  /// ladder (kills drain + requeue + rebalance the ring), work stealing,
  /// and per-shard gauge refresh. Returns the heartbeat ordinal.
  u64 heartbeat();

  /// Operator/drill controls: force a shard Down (drain + requeue +
  /// ring rebalance) or bring a Down shard back (fresh service, ring
  /// re-add, archive re-replication).
  void killShard(u32 shard);
  void reviveShard(u32 shard);

  /// Replicated archive store. putArchive seals `archive` with the XOR-
  /// parity trailer and writes it to the first `replicas` live shards on
  /// the blob's ring walk; getArchive returns the sealed bytes (readers
  /// ignore the trailer) from the first intact copy, failing over past
  /// missing/corrupt/Down replicas and read-repairing the set.
  void putArchive(const std::string& tenant, const std::string& name,
                  ConstByteSpan archive);

  struct ArchiveFetch {
    std::vector<std::byte> archive;  ///< sealed bytes (parity trailer on)
    u32 shard = 0;                   ///< replica that served the read
    u32 failovers = 0;               ///< bad/missing copies skipped
    u32 repairs = 0;                 ///< copies rebuilt by this read
  };
  ArchiveFetch getArchive(const std::string& tenant,
                          const std::string& name);

  /// Removes a replicated archive cluster-wide: the catalog entry plus
  /// every shard's copy — Down shards' included, so a later reviveShard
  /// re-replication cannot resurrect deleted data. The shard stores
  /// release the copies' chunk refcounts (refcount GC; chunks still
  /// shared by other archives survive). Returns false for an unknown key.
  bool deleteArchive(const std::string& tenant, const std::string& name);

  /// Sum of every shard store's CAS accounting (dedup hit rate, logical
  /// vs. physical bytes across the whole replica fleet) — what the CLI
  /// cluster health line prints.
  cas::StoreStats casTotals() const;

  /// Chaos-drill hook: flips one byte of a stored replica in place (the
  /// cluster-level analogue of gpusim::FaultPlan bit flips).
  void corruptArchiveCopy(u32 shard, const std::string& tenant,
                          const std::string& name, usize byteOffset);

  ClusterStats stats() const;
  u32 shardCount() const;
  ShardState shardState(u32 shard) const;
  std::vector<ShardInfo> shardInfos() const;
  /// The shard a tenant's next submission routes to (ring primary over
  /// the current membership).
  u32 primaryShardFor(const std::string& tenant) const;

 private:
  ClusterSubmitResult submit(const std::string& tenant,
                             service::JobKind kind, Precision precision,
                             std::vector<std::byte> input,
                             const core::Config& config, u8 priority);

  std::shared_ptr<detail::ClusterState> state_;
  std::unique_ptr<ShardSupervisor> supervisor_;
};

/// Probe + ladder + rebalance engine, split from CompressionCluster so
/// the failure-handling policy reads in one place (supervisor.cpp). The
/// cluster forwards heartbeat()/killShard()/reviveShard() here; with
/// ClusterConfig::heartbeatMillis > 0 it also probes on its own thread.
class ShardSupervisor {
 public:
  ShardSupervisor(std::shared_ptr<detail::ClusterState> state,
                  u32 heartbeatMillis);
  ~ShardSupervisor();

  u64 heartbeat();
  void killShard(u32 shard);
  void reviveShard(u32 shard);
  void stop();

 private:
  void probeShardLocked(u32 shard, u64 heartbeatOrdinal);
  void killShardLocked(u32 shard);
  void stealLocked();
  void refreshGaugesLocked();

  std::shared_ptr<detail::ClusterState> state_;
  std::thread prober_;
  std::mutex proberMutex_;
  std::condition_variable proberCv_;
  bool proberStop_ = false;
};

}  // namespace cuszp2::cluster
