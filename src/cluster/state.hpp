// Internal shared state of a CompressionCluster (cluster.cpp and
// supervisor.cpp compile against this; nothing here is public API).
//
// Locking protocol: `mutex` guards every field below plus every
// ClusterJob routing field (shard/inner/tried/failovers/steals/
// clientCanceled). Each ClusterJob additionally owns a leaf mutex for
// its completion channel (finished/result/cv). Lock order is ALWAYS
// state mutex -> job mutex; no code holds a job mutex while acquiring
// the state mutex, and no code holds the state mutex while blocking on
// a job cv. Shard-service calls made under the state mutex (submit,
// shutdown) are safe: services never call back into the cluster.
#pragma once

#include "cluster/cluster.hpp"

namespace cuszp2::cluster::detail {

/// One cluster-level job: the routing envelope around a chain of shard
/// submissions (initial placement, failovers, steals) that resolves
/// exactly once.
struct ClusterJob {
  u64 id = 0;
  std::string tenant;
  service::JobKind kind = service::JobKind::Compress;
  Precision precision = Precision::F32;
  core::Config config;
  u8 priority = 0;
  /// Retained for cross-shard resubmission (the shard service holds its
  /// own copy).
  std::vector<std::byte> input;

  // Routing fields — guarded by ClusterState::mutex.
  u32 shard = 0;
  service::Ticket inner;  ///< current shard attempt
  std::vector<u32> tried; ///< shards whose execution already failed
  u32 failovers = 0;
  u32 steals = 0;
  bool clientCanceled = false;

  // Completion channel — guarded by `mutex` below (leaf lock).
  std::mutex mutex;
  std::condition_variable cv;
  bool finished = false;
  ClusterJobResult result;
};

struct ClusterState {
  explicit ClusterState(ClusterConfig cfg);

  ClusterConfig config;

  mutable std::mutex mutex;

  struct Shard {
    u32 id = 0;
    ShardState state = ShardState::Up;
    /// Consecutive Degrade verdicts while Degraded (ladder escalation).
    u32 degradedProbes = 0;
    gpusim::DeviceSpec device;
    std::unique_ptr<service::CompressionService> svc;
    /// Replicated archive copies (sealed bytes) in a content-addressed
    /// store: tenant = archive tenant, name = archive name, so identical
    /// bytes across replicas/tenants share chunks. Survives Down state
    /// (revive only re-replicates what the catalog still lists).
    std::unique_ptr<cas::BlockStore> store;
  };
  std::vector<Shard> shards;

  ConsistentHashRing ring;
  /// Every accepted, not-yet-resolved job by cluster job id (std::map:
  /// kill-time requeues iterate in submission order, deterministically).
  std::map<u64, std::shared_ptr<ClusterJob>> outstanding;
  /// Blob key -> CRC-32 of the sealed copy (all replicas are identical
  /// bytes, so one digest arbitrates which copies are intact).
  std::map<std::string, u32> catalog;

  u64 nextJobId = 1;
  u64 heartbeats = 0;
  bool paused = false;
  bool shuttingDown = false;
  ClusterStats stats;

  // ---- helpers (cluster.cpp); *Locked requires `mutex` held ----

  /// Builds one shard service from the template on `device`. When
  /// config.journalDir is set the service gets its per-shard job
  /// journal, so construction replays any accepted-but-unresolved jobs
  /// before the shard is visible to the ring.
  std::unique_ptr<service::CompressionService> makeService(
      u32 shardId, const gpusim::DeviceSpec& device) const;

  u32 liveCount() const;  // Up + Degraded, under mutex (callers hold it)

  /// Live shards on `key`'s ring walk, Up shards ordered before
  /// Degraded ones (both keep ring order internally).
  std::vector<u32> routeCandidatesLocked(std::string_view key) const;

  /// The first min(replicas, live) live shards on the blob's ring walk.
  std::vector<u32> replicaTargetsLocked(const std::string& key) const;

  service::SubmitResult submitToShardLocked(Shard& sh,
                                            const ClusterJob& job);

  /// Thread-safe snapshot of the job's current shard ticket.
  service::Ticket snapshotInner(const std::shared_ptr<ClusterJob>& job);

  /// Drives a job toward resolution: commits a finished shard result,
  /// or — when the shard died under it — resubmits to the next live
  /// replica. Exactly-once; safe to call from any thread at any time.
  void settle(const std::shared_ptr<ClusterJob>& job);
  void settleLocked(const std::shared_ptr<ClusterJob>& job);

  /// True when the resubmission succeeded (the job stays outstanding).
  bool failoverLocked(const std::shared_ptr<ClusterJob>& job);

  void commitLocked(const std::shared_ptr<ClusterJob>& job,
                    const service::JobResult& inner);

  /// Modelled seconds of queued-but-unstarted work per shard (the
  /// placement cost work stealing ranks shards by).
  std::vector<f64> backlogSecondsLocked() const;

  void bump(const char* name, u64 delta = 1) const;
};

}  // namespace cuszp2::cluster::detail
