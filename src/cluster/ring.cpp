#include "cluster/ring.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace cuszp2::cluster {

ConsistentHashRing::ConsistentHashRing(u32 vnodesPerShard, u64 seed)
    : vnodes_(vnodesPerShard), seed_(seed) {
  require(vnodesPerShard > 0,
          "ConsistentHashRing: vnodesPerShard must be positive");
}

void ConsistentHashRing::addShard(u32 shard) {
  if (contains(shard)) return;
  points_.reserve(points_.size() + vnodes_);
  for (u32 v = 0; v < vnodes_; ++v) {
    // Golden-ratio stride decorrelates (shard, vnode) pairs before the
    // SplitMix64 finalizer; +1 keeps shard 0 / vnode 0 off the seed.
    SplitMix64 mix(seed_ ^ ((u64{shard} + 1) * 0x9E3779B97F4A7C15ull) ^
                   ((u64{v} + 1) * 0xD1B54A32D192ED03ull));
    points_.push_back(VNode{mix.next(), shard});
  }
  std::sort(points_.begin(), points_.end(),
            [](const VNode& a, const VNode& b) {
              return a.point != b.point ? a.point < b.point
                                        : a.shard < b.shard;
            });
  shards_.insert(std::lower_bound(shards_.begin(), shards_.end(), shard),
                 shard);
}

void ConsistentHashRing::removeShard(u32 shard) {
  points_.erase(std::remove_if(points_.begin(), points_.end(),
                               [&](const VNode& n) {
                                 return n.shard == shard;
                               }),
                points_.end());
  auto it = std::lower_bound(shards_.begin(), shards_.end(), shard);
  if (it != shards_.end() && *it == shard) shards_.erase(it);
}

bool ConsistentHashRing::contains(u32 shard) const {
  return std::binary_search(shards_.begin(), shards_.end(), shard);
}

u64 ConsistentHashRing::hashKey(std::string_view key) const {
  // Byte-at-a-time SplitMix64 absorption: deterministic across
  // platforms, and every byte perturbs the full 64-bit state.
  u64 h = seed_ ^ 0xA0761D6478BD642Full;
  for (char c : key) {
    h = SplitMix64(h ^ static_cast<u8>(c)).next();
  }
  return SplitMix64(h ^ key.size()).next();
}

usize ConsistentHashRing::firstAt(u64 point) const {
  auto it = std::lower_bound(points_.begin(), points_.end(), point,
                             [](const VNode& n, u64 p) {
                               return n.point < p;
                             });
  if (it == points_.end()) it = points_.begin();  // wrap past 2^64 - 1
  return static_cast<usize>(it - points_.begin());
}

u32 ConsistentHashRing::primaryFor(std::string_view key) const {
  require(!points_.empty(), "ConsistentHashRing: ring is empty");
  return points_[firstAt(hashKey(key))].shard;
}

std::vector<u32> ConsistentHashRing::replicasFor(std::string_view key,
                                                 u32 count) const {
  require(!points_.empty(), "ConsistentHashRing: ring is empty");
  std::vector<u32> out;
  const u32 want = std::min<u32>(count, static_cast<u32>(shards_.size()));
  out.reserve(want);
  usize i = firstAt(hashKey(key));
  for (usize step = 0; step < points_.size() && out.size() < want;
       ++step) {
    const u32 shard = points_[(i + step) % points_.size()].shard;
    if (std::find(out.begin(), out.end(), shard) == out.end()) {
      out.push_back(shard);
    }
  }
  return out;
}

}  // namespace cuszp2::cluster
