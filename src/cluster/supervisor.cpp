#include <algorithm>

#include "cluster/state.hpp"
#include "common/crc32.hpp"
#include "common/error.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace cuszp2::cluster {

ShardSupervisor::ShardSupervisor(
    std::shared_ptr<detail::ClusterState> state, u32 heartbeatMillis)
    : state_(std::move(state)) {
  if (heartbeatMillis > 0) {
    prober_ = std::thread([this, heartbeatMillis] {
      std::unique_lock<std::mutex> lock(proberMutex_);
      for (;;) {
        if (proberCv_.wait_for(lock,
                               std::chrono::milliseconds(heartbeatMillis),
                               [&] { return proberStop_; })) {
          return;
        }
        lock.unlock();
        heartbeat();
        lock.lock();
      }
    });
  }
}

ShardSupervisor::~ShardSupervisor() { stop(); }

void ShardSupervisor::stop() {
  {
    std::lock_guard<std::mutex> lock(proberMutex_);
    proberStop_ = true;
  }
  proberCv_.notify_all();
  if (prober_.joinable()) prober_.join();
}

u64 ShardSupervisor::heartbeat() {
  std::lock_guard<std::mutex> lock(state_->mutex);
  if (state_->shuttingDown) return state_->heartbeats;
  const u64 hb = ++state_->heartbeats;
  state_->stats.heartbeats += 1;
  state_->bump("cluster.heartbeats");
  for (u32 i = 0; i < state_->shards.size(); ++i) {
    probeShardLocked(i, hb);
  }
  stealLocked();
  refreshGaugesLocked();
  return hb;
}

void ShardSupervisor::probeShardLocked(u32 shard, u64 heartbeatOrdinal) {
  detail::ClusterState::Shard& sh = state_->shards[shard];
  if (sh.state == ShardState::Down) return;

  ShardFault fault;
  if (state_->config.shardChaos) {
    fault = state_->config.shardChaos(
        ShardProbeInfo{shard, heartbeatOrdinal});
  }

  const auto maybeKill = [&] {
    // The floor keeps a chaos schedule from taking the whole fleet
    // down: a kill is honored only while survivors remain.
    if (state_->liveCount() > state_->config.minShardsUp) {
      killShardLocked(shard);
    } else {
      state_->stats.killsVetoed += 1;
      state_->bump("cluster.kills_vetoed");
    }
  };

  switch (fault.mode) {
    case ShardFault::Mode::None:
      if (sh.state == ShardState::Degraded) {
        sh.state = ShardState::Up;
        sh.degradedProbes = 0;
        state_->stats.shardRecoveries += 1;
        state_->bump("cluster.shard_recoveries");
      }
      break;
    case ShardFault::Mode::Degrade:
      state_->stats.probeFaults += 1;
      state_->bump("cluster.probe_faults");
      if (sh.state == ShardState::Up) {
        sh.state = ShardState::Degraded;
        sh.degradedProbes = 1;
        state_->stats.shardDegrades += 1;
        state_->bump("cluster.shard_degrades");
      } else if (++sh.degradedProbes >=
                 state_->config.degradedProbesToDown) {
        maybeKill();  // ladder escalation: Degraded -> Down
      }
      break;
    case ShardFault::Mode::Kill:
      state_->stats.probeFaults += 1;
      state_->bump("cluster.probe_faults");
      maybeKill();
      break;
  }
}

void ShardSupervisor::killShard(u32 shard) {
  std::lock_guard<std::mutex> lock(state_->mutex);
  require(shard < state_->shards.size(), "killShard: bad shard");
  killShardLocked(shard);
}

void ShardSupervisor::killShardLocked(u32 shard) {
  detail::ClusterState::Shard& sh = state_->shards[shard];
  if (sh.state == ShardState::Down) return;
  sh.state = ShardState::Down;
  sh.degradedProbes = 0;
  // Membership change first: new submissions and failover targets must
  // never route at the dead shard. Only tenants whose arcs the shard
  // owned move — the rebalance invariant tests/test_cluster.cpp asserts.
  state_->ring.removeShard(shard);
  state_->stats.shardKills += 1;
  state_->bump("cluster.shard_kills");
  if (telemetry::TraceSession* trace = telemetry::activeTrace()) {
    trace->instant("cluster.shard.kill",
                   {telemetry::TraceArg::num(
                       "shard", static_cast<f64>(shard))});
  }

  // Victims in submission order (outstanding is an ordered map).
  std::vector<std::shared_ptr<detail::ClusterJob>> victims;
  for (auto& [id, job] : state_->outstanding) {
    if (job->shard == shard) victims.push_back(job);
  }

  // Cancel-first: the queued/running partition is decided by the cancel
  // CAS *before* shutdown wakes any worker, so on a paused shard every
  // queued job deterministically cancels (and fails over below) instead
  // of racing the drain sweep. Jobs already executing lose the CAS, run
  // to completion under the shutdown drain, and keep their results —
  // the exactly-once commit makes both ends safe.
  for (auto& job : victims) job->inner.cancel();
  sh.svc->shutdown(state_->config.shardDrainDeadline);

  // Every inner ticket is resolved once shutdown returns, so settle
  // either commits a completed execution or fails the job over.
  for (auto& job : victims) state_->settleLocked(job);
}

void ShardSupervisor::reviveShard(u32 shard) {
  std::lock_guard<std::mutex> lock(state_->mutex);
  require(shard < state_->shards.size(), "reviveShard: bad shard");
  detail::ClusterState::Shard& sh = state_->shards[shard];
  if (sh.state != ShardState::Down) return;
  // makeService replays the shard's job journal (when configured) before
  // the shard is marked Up, so replayed jobs run ahead of new intake.
  sh.svc = state_->makeService(sh.id, sh.device);
  sh.state = ShardState::Up;
  sh.degradedProbes = 0;
  state_->ring.addShard(shard);
  state_->stats.shardRevives += 1;
  state_->bump("cluster.shard_revives");

  // Re-replicate: any blob whose replica set now includes this shard is
  // copied back from an intact survivor, bit-exactly (digest-checked).
  // Survivor verification is the zero-copy chained-CRC path over the
  // store's chunk views; only the chosen survivor is reassembled. The
  // catalog is the source of truth — an archive deleted while this shard
  // was Down has no catalog entry and is never resurrected here.
  for (const auto& [key, digest] : state_->catalog) {
    const auto slash = key.find('/');
    const std::string tenant = key.substr(0, slash);
    const std::string name = key.substr(slash + 1);
    const std::vector<u32> targets = state_->replicaTargetsLocked(key);
    if (std::find(targets.begin(), targets.end(), shard) ==
            targets.end() ||
        sh.store->contains(tenant, name)) {
      continue;
    }
    for (u32 s : state_->routeCandidatesLocked(key)) {
      if (s == shard) continue;
      const cas::BlockStore& donor = *state_->shards[s].store;
      if (donor.contains(tenant, name) &&
          donor.crcOf(tenant, name) == digest) {
        sh.store->put(tenant, name, donor.get(tenant, name));
        state_->stats.archiveRepairs += 1;
        state_->bump("cluster.archive.repairs");
        break;
      }
    }
  }
}

void ShardSupervisor::stealLocked() {
  if (!state_->config.workStealing) return;
  for (u32 moves = 0; moves < state_->config.maxStealsPerHeartbeat;
       ++moves) {
    const std::vector<f64> backlog = state_->backlogSecondsLocked();
    i64 src = -1;
    i64 dst = -1;
    for (u32 i = 0; i < state_->shards.size(); ++i) {
      const ShardState st = state_->shards[i].state;
      if (st == ShardState::Down) continue;
      if (src < 0 || backlog[i] > backlog[static_cast<usize>(src)]) {
        src = i;
      }
      // Steal targets must be fully healthy — pushing work onto a
      // Degraded shard would trade one backlog for a riskier one.
      if (st == ShardState::Up &&
          (dst < 0 || backlog[i] < backlog[static_cast<usize>(dst)])) {
        dst = i;
      }
    }
    if (src < 0 || dst < 0 || src == dst) return;
    const u32 from = static_cast<u32>(src);
    const u32 to = static_cast<u32>(dst);

    // Newest queued job first (tail steal): the head of the lane is
    // closest to dispatch, and moving it would reorder a tenant's FIFO
    // more than necessary.
    bool stole = false;
    for (auto it = state_->outstanding.rbegin();
         it != state_->outstanding.rend() && !stole; ++it) {
      const std::shared_ptr<detail::ClusterJob>& job = it->second;
      if (job->shard != from || job->clientCanceled) continue;
      {
        std::lock_guard<std::mutex> jobLock(job->mutex);
        if (job->finished) continue;
      }
      const f64 costDst = gpusim::modelledPassSeconds(
          job->input.size(), state_->shards[to].device);
      // Placement cost: the move must strictly beat the job's current
      // modelled finish time (the backlog it sits behind on `from`).
      if (backlog[to] + costDst + state_->config.stealMarginSeconds >=
          backlog[from]) {
        continue;
      }
      if (!job->inner.cancel()) continue;  // already executing — skip
      service::SubmitResult sub =
          state_->submitToShardLocked(state_->shards[to], *job);
      if (!sub.accepted()) {
        // Target refused after we canceled: put the job back where it
        // was (the cancel released its slot, so this admits) rather
        // than strand it.
        sub = state_->submitToShardLocked(state_->shards[from], *job);
        if (!sub.accepted()) {
          service::JobResult r;
          r.outcome = service::Outcome::Failed;
          r.error = "work-steal stranded: no shard re-accepted the job";
          r.tenant = job->tenant;
          r.kind = job->kind;
          r.jobId = job->id;
          state_->commitLocked(job, r);
          continue;
        }
        job->inner = sub.ticket;
        continue;
      }
      job->inner = sub.ticket;
      job->shard = to;
      job->steals += 1;
      state_->stats.steals += 1;
      state_->bump("cluster.steals");
      stole = true;
    }
    if (!stole) return;
  }
}

void ShardSupervisor::refreshGaugesLocked() {
  telemetry::MetricsRegistry& reg = telemetry::registry();
  if (!reg.enabled()) return;
  for (const auto& sh : state_->shards) {
    const std::string prefix =
        "cluster.shard." + std::to_string(sh.id);
    reg.gauge(prefix + ".state")
        .set(static_cast<f64>(static_cast<u8>(sh.state)));
    reg.gauge(prefix + ".queue_depth")
        .set(sh.state == ShardState::Down
                 ? 0.0
                 : static_cast<f64>(sh.svc->queueDepth()));
  }
}

}  // namespace cuszp2::cluster
