// Consistent-hash ring with virtual nodes.
//
// Tenants (and archive blob keys) hash onto a 64-bit ring; each shard
// owns `vnodesPerShard` points on it, and a key routes to the shard
// owning the first point clockwise from the key's hash. Virtual nodes
// smooth the per-shard key share toward 1/N, and — the property the
// cluster's failover leans on — membership changes move only the keys
// whose owning arc changed hands:
//
//   * removeShard(s): exactly the keys whose primary was s move (to the
//     next point clockwise); every other key keeps its primary.
//   * addShard(s): only the ~1/N of keys that land on s's new arcs move;
//     the rest keep their primary.
//
// tests/test_cluster.cpp asserts both invariants. All hashing is seeded
// SplitMix64 (common/rng.hpp), so placement is deterministic across
// runs and platforms.
#pragma once

#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace cuszp2::cluster {

class ConsistentHashRing {
 public:
  explicit ConsistentHashRing(u32 vnodesPerShard = 64,
                              u64 seed = 0xC1A57E12u);

  /// Adds a shard's virtual nodes (no-op when already present).
  void addShard(u32 shard);

  /// Removes a shard's virtual nodes (no-op when absent).
  void removeShard(u32 shard);

  bool contains(u32 shard) const;
  usize shardCount() const { return shards_.size(); }
  const std::vector<u32>& shards() const { return shards_; }

  /// The shard owning `key` (first virtual node clockwise from the
  /// key's hash). Requires a non-empty ring.
  u32 primaryFor(std::string_view key) const;

  /// Up to `count` distinct shards in ring order starting at the key's
  /// primary: the replica set for an archive write, and the failover
  /// order for reads and requeues. Fewer than `count` entries when the
  /// ring holds fewer shards.
  std::vector<u32> replicasFor(std::string_view key, u32 count) const;

 private:
  struct VNode {
    u64 point;
    u32 shard;
  };

  u64 hashKey(std::string_view key) const;
  usize firstAt(u64 point) const;

  u32 vnodes_;
  u64 seed_;
  std::vector<VNode> points_;  // sorted by (point, shard)
  std::vector<u32> shards_;    // sorted member ids
};

}  // namespace cuszp2::cluster
