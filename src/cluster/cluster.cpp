#include "cluster/cluster.hpp"

#include <algorithm>

#include "cluster/state.hpp"
#include "common/crc32.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace cuszp2::cluster {

ShardFault ShardChaosSchedule::decide(const ShardProbeInfo& info) const {
  ShardFault fault;
  // Whiten (seed, shard, heartbeat) into an independent stream per
  // probe; same recipe as SeededChaosSchedule so the two layers'
  // schedules never correlate by accident.
  SplitMix64 mix(config_.seed ^
                 ((u64{info.shard} + 1) * 0x9E3779B97F4A7C15ull) ^
                 (info.heartbeat * 0xD1B54A32D192ED03ull));
  Rng rng(mix.next());
  const f64 u = rng.uniform();
  f64 edge = config_.killRate;
  if (u < edge) {
    fault.mode = ShardFault::Mode::Kill;
  } else if (u < (edge += config_.degradeRate)) {
    fault.mode = ShardFault::Mode::Degrade;
  }
  return fault;
}

namespace detail {

ClusterState::ClusterState(ClusterConfig cfg)
    : config(std::move(cfg)),
      ring(config.vnodesPerShard, config.ringSeed) {
  require(config.shards > 0, "CompressionCluster: need at least 1 shard");
  if (config.devices.empty()) {
    config.devices = gpusim::heterogeneousFleet(config.shards);
  }
  require(config.devices.size() == config.shards,
          "CompressionCluster: one device per shard required");
  if (config.replicas == 0) config.replicas = 1;
  if (config.maxJobFailovers == 0) {
    config.maxJobFailovers = config.shards - 1;
  }
  paused = config.startPaused;
  shards.reserve(config.shards);
  for (u32 i = 0; i < config.shards; ++i) {
    Shard sh;
    sh.id = i;
    sh.device = config.devices[i];
    sh.svc = makeService(i, sh.device);
    sh.store = std::make_unique<cas::BlockStore>(config.replicaStore);
    shards.push_back(std::move(sh));
    ring.addShard(i);
  }
}

std::unique_ptr<service::CompressionService> ClusterState::makeService(
    u32 shardId, const gpusim::DeviceSpec& device) const {
  service::ServiceConfig sc = config.shard;
  // Every worker of a shard sits on that shard's one device; placement
  // across devices is the cluster's job, not the shard's.
  sc.devices.assign(std::max<u32>(1, sc.workers), device);
  sc.startPaused = paused;
  if (!config.journalDir.empty()) {
    sc.jobJournalPath =
        config.journalDir + "/shard-" + std::to_string(shardId) + ".jobs.jnl";
  }
  return std::make_unique<service::CompressionService>(std::move(sc));
}

u32 ClusterState::liveCount() const {
  u32 n = 0;
  for (const Shard& sh : shards) {
    if (sh.state != ShardState::Down) ++n;
  }
  return n;
}

std::vector<u32> ClusterState::routeCandidatesLocked(
    std::string_view key) const {
  std::vector<u32> out;
  if (ring.shardCount() == 0) return out;
  const std::vector<u32> walk =
      ring.replicasFor(key, static_cast<u32>(ring.shardCount()));
  for (u32 s : walk) {
    if (shards[s].state == ShardState::Up) out.push_back(s);
  }
  for (u32 s : walk) {
    if (shards[s].state == ShardState::Degraded) out.push_back(s);
  }
  return out;
}

std::vector<u32> ClusterState::replicaTargetsLocked(
    const std::string& key) const {
  std::vector<u32> out;
  if (ring.shardCount() == 0) return out;
  const std::vector<u32> walk =
      ring.replicasFor(key, static_cast<u32>(ring.shardCount()));
  for (u32 s : walk) {
    if (shards[s].state == ShardState::Down) continue;
    out.push_back(s);
    if (out.size() >= config.replicas) break;
  }
  return out;
}

service::SubmitResult ClusterState::submitToShardLocked(
    Shard& sh, const ClusterJob& job) {
  if (job.kind == service::JobKind::Decompress) {
    return sh.svc->submitDecompress(job.tenant, ConstByteSpan(job.input),
                                    job.config, job.priority);
  }
  if (job.precision == Precision::F64) {
    return sh.svc->submitCompress<f64>(
        job.tenant,
        std::span<const f64>(
            reinterpret_cast<const f64*>(job.input.data()),
            job.input.size() / sizeof(f64)),
        job.config, job.priority);
  }
  return sh.svc->submitCompress<f32>(
      job.tenant,
      std::span<const f32>(reinterpret_cast<const f32*>(job.input.data()),
                           job.input.size() / sizeof(f32)),
      job.config, job.priority);
}

service::Ticket ClusterState::snapshotInner(
    const std::shared_ptr<ClusterJob>& job) {
  std::lock_guard<std::mutex> lock(mutex);
  return job->inner;
}

void ClusterState::settle(const std::shared_ptr<ClusterJob>& job) {
  std::lock_guard<std::mutex> lock(mutex);
  settleLocked(job);
}

void ClusterState::settleLocked(const std::shared_ptr<ClusterJob>& job) {
  {
    std::lock_guard<std::mutex> jobLock(job->mutex);
    if (job->finished) return;
  }
  if (!job->inner.poll()) return;  // current shard attempt still running
  const service::JobResult& r = job->inner.result();
  switch (r.outcome) {
    case service::Outcome::Completed:
    case service::Outcome::Degraded:
      commitLocked(job, r);
      return;
    case service::Outcome::Canceled:
      // Steal-canceled tickets are swapped out before anyone can observe
      // them as current (see ShardSupervisor::stealLocked), so a current
      // Canceled is either the client's or a kill-cancel (the supervisor
      // cancels a dying shard's queued work before draining it) — the
      // latter falls through to the shard-loss path.
      if (job->clientCanceled) {
        commitLocked(job, r);
        return;
      }
      [[fallthrough]];
    case service::Outcome::Failed:
    case service::Outcome::Abandoned:
      // Failover only when the shard actually died under the job; a
      // failure on a healthy shard already burned the shard-level retry
      // ladder and is genuine.
      if (!job->clientCanceled && !shuttingDown &&
          shards[job->shard].state == ShardState::Down &&
          job->failovers < config.maxJobFailovers &&
          failoverLocked(job)) {
        return;
      }
      if (r.outcome == service::Outcome::Canceled) {
        // A kill-cancel with nowhere left to go is a loss, not a cancel:
        // the client never asked for it.
        service::JobResult lost = r;
        lost.outcome = service::Outcome::Failed;
        lost.canceled = false;
        lost.error = "shard lost: no surviving replica accepted the job";
        commitLocked(job, lost);
        return;
      }
      commitLocked(job, r);
      return;
  }
}

bool ClusterState::failoverLocked(
    const std::shared_ptr<ClusterJob>& job) {
  job->tried.push_back(job->shard);
  for (u32 s : routeCandidatesLocked(job->tenant)) {
    if (std::find(job->tried.begin(), job->tried.end(), s) !=
        job->tried.end()) {
      continue;
    }
    service::SubmitResult sub = submitToShardLocked(shards[s], *job);
    if (!sub.accepted()) continue;
    job->shard = s;
    job->inner = sub.ticket;
    job->failovers += 1;
    stats.failovers += 1;
    bump("cluster.failovers");
    if (telemetry::TraceSession* trace = telemetry::activeTrace()) {
      trace->instant(
          "cluster.failover",
          {telemetry::TraceArg::str("tenant", job->tenant),
           telemetry::TraceArg::num("job_id", static_cast<f64>(job->id)),
           telemetry::TraceArg::num("to_shard", static_cast<f64>(s))});
    }
    return true;
  }
  return false;  // no surviving replica accepted it -> commit the failure
}

void ClusterState::commitLocked(const std::shared_ptr<ClusterJob>& job,
                                const service::JobResult& inner) {
  {
    std::lock_guard<std::mutex> jobLock(job->mutex);
    if (job->finished) return;
    job->result.job = inner;
    job->result.shard = job->shard;
    job->result.failovers = job->failovers;
    job->result.steals = job->steals;
    job->finished = true;
  }
  outstanding.erase(job->id);
  switch (inner.outcome) {
    case service::Outcome::Completed:
      stats.completed += 1;
      bump("cluster.completed");
      break;
    case service::Outcome::Degraded:
      stats.degraded += 1;
      bump("cluster.degraded");
      break;
    case service::Outcome::Canceled:
      stats.canceled += 1;
      bump("cluster.canceled");
      break;
    case service::Outcome::Abandoned:
      stats.abandoned += 1;
      bump("cluster.abandoned");
      break;
    default:
      stats.failed += 1;
      bump("cluster.failed");
      break;
  }
  job->cv.notify_all();
}

std::vector<f64> ClusterState::backlogSecondsLocked() const {
  std::vector<f64> backlog(shards.size(), 0.0);
  for (const auto& [id, job] : outstanding) {
    // Only queued work is movable (and only queued work waits); jobs
    // already executing are charged to nobody.
    if (!job->inner.poll()) {
      backlog[job->shard] +=
          gpusim::modelledPassSeconds(job->input.size(),
                                      shards[job->shard].device);
    }
  }
  return backlog;
}

void ClusterState::bump(const char* name, u64 delta) const {
  telemetry::MetricsRegistry& reg = telemetry::registry();
  if (reg.enabled()) reg.counter(name).add(delta);
}

}  // namespace detail

// ---------------------------------------------------------------------
// ClusterTicket

u64 ClusterTicket::id() const { return job_ == nullptr ? 0 : job_->id; }

bool ClusterTicket::poll() const {
  if (job_ == nullptr) return false;
  {
    std::lock_guard<std::mutex> lock(job_->mutex);
    if (job_->finished) return true;
  }
  if (state_->snapshotInner(job_).poll()) {
    state_->settle(job_);
  }
  std::lock_guard<std::mutex> lock(job_->mutex);
  return job_->finished;
}

const ClusterJobResult& ClusterTicket::wait() const {
  require(job_ != nullptr, "ClusterTicket::wait: invalid ticket");
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(job_->mutex);
      if (job_->finished) return job_->result;
    }
    // Wait on the current shard attempt, then settle: either it
    // committed (good outcome / genuine failure) or the shard died and
    // settle installed a fresh attempt on a surviving replica — loop
    // and wait on that one.
    state_->snapshotInner(job_).wait();
    state_->settle(job_);
  }
}

bool ClusterTicket::waitFor(std::chrono::milliseconds timeout) const {
  require(job_ != nullptr, "ClusterTicket::waitFor: invalid ticket");
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(job_->mutex);
      if (job_->finished) return true;
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return false;
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                              now);
    if (!state_->snapshotInner(job_).waitFor(
            std::max(remaining, std::chrono::milliseconds(1)))) {
      continue;  // re-check the deadline (and any inner swap) and retry
    }
    state_->settle(job_);
  }
}

const ClusterJobResult& ClusterTicket::result() const {
  require(job_ != nullptr, "ClusterTicket::result: invalid ticket");
  std::lock_guard<std::mutex> lock(job_->mutex);
  require(job_->finished, "ClusterTicket::result: job has not finished");
  return job_->result;
}

bool ClusterTicket::cancel() {
  if (job_ == nullptr) return false;
  service::Ticket inner;
  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    {
      std::lock_guard<std::mutex> jobLock(job_->mutex);
      if (job_->finished) return false;
    }
    job_->clientCanceled = true;
    inner = job_->inner;
  }
  const bool won = inner.cancel();
  state_->settle(job_);
  return won;
}

// ---------------------------------------------------------------------
// CompressionCluster

CompressionCluster::CompressionCluster(ClusterConfig config) {
  const u32 heartbeatMillis = config.heartbeatMillis;
  state_ = std::make_shared<detail::ClusterState>(std::move(config));
  supervisor_ =
      std::make_unique<ShardSupervisor>(state_, heartbeatMillis);
}

CompressionCluster::~CompressionCluster() { shutdown(); }

ClusterSubmitResult CompressionCluster::submit(
    const std::string& tenant, service::JobKind kind, Precision precision,
    std::vector<std::byte> input, const core::Config& config,
    u8 priority) {
  std::lock_guard<std::mutex> lock(state_->mutex);
  state_->stats.submitted += 1;
  state_->bump("cluster.submitted");

  ClusterSubmitResult out;
  if (state_->shuttingDown) {
    out.reason = service::RejectReason::ShuttingDown;
    out.detail = "cluster is shutting down";
    state_->stats.rejected += 1;
    state_->bump("cluster.rejected");
    return out;
  }

  auto job = std::make_shared<detail::ClusterJob>();
  job->tenant = tenant;
  job->kind = kind;
  job->precision = precision;
  job->config = config;
  job->priority = priority;
  job->input = std::move(input);

  const std::vector<u32> candidates =
      state_->routeCandidatesLocked(tenant);
  bool first = true;
  for (u32 s : candidates) {
    service::SubmitResult sub =
        state_->submitToShardLocked(state_->shards[s], *job);
    if (sub.accepted()) {
      job->id = state_->nextJobId++;
      job->shard = s;
      job->inner = sub.ticket;
      state_->outstanding[job->id] = job;
      state_->stats.accepted += 1;
      state_->bump("cluster.accepted");
      if (!first) {
        state_->stats.spills += 1;
        state_->bump("cluster.spills");
      }
      out.ticket = ClusterTicket(state_, job);
      return out;
    }
    out.reason = sub.reason;
    out.detail = std::move(sub.detail);
    // Quota and breaker rejections are tenant-scoped verdicts from the
    // tenant's primary — spilling them to a replica would just dodge
    // the limit, so they propagate. A full queue spills.
    if (sub.reason != service::RejectReason::QueueFull) break;
    first = false;
  }
  if (candidates.empty()) {
    out.reason = service::RejectReason::ShuttingDown;
    out.detail = "no live shard available";
  }
  state_->stats.rejected += 1;
  state_->bump("cluster.rejected");
  return out;
}

void CompressionCluster::pause() {
  std::lock_guard<std::mutex> lock(state_->mutex);
  state_->paused = true;
  for (auto& sh : state_->shards) {
    if (sh.state != ShardState::Down) sh.svc->pause();
  }
}

void CompressionCluster::resume() {
  std::lock_guard<std::mutex> lock(state_->mutex);
  state_->paused = false;
  for (auto& sh : state_->shards) {
    if (sh.state != ShardState::Down) sh.svc->resume();
  }
}

void CompressionCluster::shutdown() {
  supervisor_->stop();  // no probes once teardown begins
  std::lock_guard<std::mutex> lock(state_->mutex);
  if (state_->shuttingDown) return;
  state_->shuttingDown = true;
  for (auto& sh : state_->shards) {
    if (sh.state != ShardState::Down) sh.svc->shutdown();
  }
  // Every shard drained fully, so every inner ticket is resolved;
  // settle the stragglers (jobs nobody is waiting on) in id order.
  std::vector<std::shared_ptr<detail::ClusterJob>> open;
  open.reserve(state_->outstanding.size());
  for (auto& [id, job] : state_->outstanding) open.push_back(job);
  for (auto& job : open) state_->settleLocked(job);
}

u64 CompressionCluster::heartbeat() { return supervisor_->heartbeat(); }

void CompressionCluster::killShard(u32 shard) {
  supervisor_->killShard(shard);
}

void CompressionCluster::reviveShard(u32 shard) {
  supervisor_->reviveShard(shard);
}

void CompressionCluster::putArchive(const std::string& tenant,
                                    const std::string& name,
                                    ConstByteSpan archive) {
  std::lock_guard<std::mutex> lock(state_->mutex);
  const std::string key = tenant + "/" + name;
  std::vector<std::byte> sealed = io::withParityTrailer(
      std::vector<std::byte>(archive.begin(), archive.end()),
      state_->config.replicaParity);
  state_->catalog[key] = crc32(ConstByteSpan(sealed));
  const std::vector<u32> targets = state_->replicaTargetsLocked(key);
  require(!targets.empty(), "putArchive: no live shard to store on");
  for (u32 s : targets) {
    state_->shards[s].store->put(tenant, name, sealed);
    state_->stats.archiveCopies += 1;
  }
  state_->stats.archivePuts += 1;
  state_->bump("cluster.archive.puts");
  state_->bump("cluster.archive.copies", targets.size());
}

CompressionCluster::ArchiveFetch CompressionCluster::getArchive(
    const std::string& tenant, const std::string& name) {
  std::lock_guard<std::mutex> lock(state_->mutex);
  const std::string key = tenant + "/" + name;
  auto cat = state_->catalog.find(key);
  require(cat != state_->catalog.end(),
          "getArchive: unknown archive " + key);
  const u32 digest = cat->second;

  ArchiveFetch fetch;
  state_->stats.archiveReads += 1;
  state_->bump("cluster.archive.reads");

  // Walk every live shard in ring order; the first copy that is intact
  // (or self-heals via its parity trailer) serves the read. Candidate
  // verification is zero-copy: crcOf chains CRC-32 over the store's
  // chunk views (mirroring the CLI's MappedBytes read sites), so losing
  // candidates are never reassembled — bytes are materialized on the
  // heap only for the winning copy and where repair must mutate.
  const std::vector<u32> walk = state_->routeCandidatesLocked(key);
  bool found = false;
  for (u32 s : walk) {
    cas::BlockStore& store = *state_->shards[s].store;
    if (store.contains(tenant, name)) {
      if (store.crcOf(tenant, name) == digest) {
        fetch.archive = store.get(tenant, name);
        fetch.shard = s;
        found = true;
        break;
      }
      // Single damaged chunks are the parity trailer's job; anything it
      // can't rebuild (or damage inside the trailer itself) makes this
      // copy a failover. Repair mutates, so this path assembles a heap
      // copy (hash verification off: the chunks are known damaged).
      std::vector<std::byte> copy;
      try {
        copy = store.get(tenant, name);
      } catch (const Error&) {
        copy.clear();  // chunk-level damage: nothing to repair in place
      }
      if (!copy.empty()) {
        io::repairParity(copy);
        if (crc32(ConstByteSpan(copy)) == digest) {
          store.put(tenant, name, copy);  // write the healed copy back
          fetch.repairs += 1;
          fetch.archive = std::move(copy);
          fetch.shard = s;
          found = true;
          break;
        }
      }
    }
    fetch.failovers += 1;
    state_->stats.archiveReadFailovers += 1;
    state_->bump("cluster.archive.read_failovers");
  }
  require(found, "getArchive: no intact replica of " + key);

  // Read-repair: restore the replica set to `replicas` intact copies so
  // the next failure starts from full redundancy again (verification
  // again by chained chunk CRC, no reassembly of intact copies).
  for (u32 s : state_->replicaTargetsLocked(key)) {
    cas::BlockStore& store = *state_->shards[s].store;
    if (store.contains(tenant, name) &&
        store.crcOf(tenant, name) == digest) {
      continue;
    }
    store.put(tenant, name, fetch.archive);
    fetch.repairs += 1;
  }
  if (fetch.repairs > 0) {
    state_->stats.archiveRepairs += fetch.repairs;
    state_->bump("cluster.archive.repairs", fetch.repairs);
  }
  return fetch;
}

bool CompressionCluster::deleteArchive(const std::string& tenant,
                                       const std::string& name) {
  std::lock_guard<std::mutex> lock(state_->mutex);
  const std::string key = tenant + "/" + name;
  auto cat = state_->catalog.find(key);
  if (cat == state_->catalog.end()) return false;
  state_->catalog.erase(cat);
  // Every shard's copy goes — Down shards' too, so a revive that runs
  // after this delete finds neither a catalog entry nor a stale object
  // to resurrect. The stores do the refcount GC.
  u64 copies = 0;
  for (auto& sh : state_->shards) {
    if (sh.store->erase(tenant, name)) ++copies;
  }
  state_->stats.archiveDeletes += 1;
  state_->stats.archiveDeleteCopies += copies;
  state_->bump("cluster.archive.deletes");
  state_->bump("cluster.archive.delete_copies", copies);
  return true;
}

cas::StoreStats CompressionCluster::casTotals() const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  cas::StoreStats total;
  for (const auto& sh : state_->shards) {
    const cas::StoreStats s = sh.store->stats();
    total.objects += s.objects;
    total.logicalChunks += s.logicalChunks;
    total.uniqueChunks += s.uniqueChunks;
    total.parkedChunks += s.parkedChunks;
    total.logicalBytes += s.logicalBytes;
    total.physicalBytes += s.physicalBytes;
    total.puts += s.puts;
    total.gets += s.gets;
    total.erases += s.erases;
    total.chunkHits += s.chunkHits;
    total.chunkMisses += s.chunkMisses;
    total.refIncs += s.refIncs;
    total.refDecs += s.refDecs;
    total.gcFreedChunks += s.gcFreedChunks;
    total.gcFreedBytes += s.gcFreedBytes;
    total.resurrections += s.resurrections;
    total.compactionMigrations += s.compactionMigrations;
    total.compactionBytesReclaimed += s.compactionBytesReclaimed;
  }
  return total;
}

void CompressionCluster::corruptArchiveCopy(u32 shard,
                                            const std::string& tenant,
                                            const std::string& name,
                                            usize byteOffset) {
  std::lock_guard<std::mutex> lock(state_->mutex);
  require(shard < state_->shards.size(), "corruptArchiveCopy: bad shard");
  require(state_->shards[shard].store->contains(tenant, name),
          "corruptArchiveCopy: shard holds no such copy");
  // The store rewrites the object copy-on-write, so a shared chunk is
  // never damaged for the other replicas referencing it.
  state_->shards[shard].store->corruptForDrill(tenant, name, byteOffset);
}

ClusterStats CompressionCluster::stats() const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->stats;
}

u32 CompressionCluster::shardCount() const {
  return static_cast<u32>(state_->shards.size());
}

ShardState CompressionCluster::shardState(u32 shard) const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  require(shard < state_->shards.size(), "shardState: bad shard");
  return state_->shards[shard].state;
}

std::vector<ShardInfo> CompressionCluster::shardInfos() const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  std::vector<ShardInfo> out;
  out.reserve(state_->shards.size());
  for (const auto& sh : state_->shards) {
    ShardInfo info;
    info.id = sh.id;
    info.state = sh.state;
    info.device = sh.device.name;
    info.queueDepth = sh.svc->queueDepth();
    info.replayedJobs = sh.svc->replayedJobs().size();
    info.stats = sh.svc->stats();
    out.push_back(std::move(info));
  }
  return out;
}

u32 CompressionCluster::primaryShardFor(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  const std::vector<u32> candidates =
      state_->routeCandidatesLocked(tenant);
  require(!candidates.empty(), "primaryShardFor: no live shard");
  return candidates.front();
}

}  // namespace cuszp2::cluster
