// Reconstruction quality metrics: max error, PSNR, NRMSE, error-bound check.
// These implement the standard definitions used across the SZ literature
// (paper Sec. V-D).
#pragma once

#include <span>

#include "common/types.hpp"

namespace cuszp2::metrics {

struct ErrorStats {
  f64 maxAbsError = 0.0;
  f64 mse = 0.0;
  f64 psnrDb = 0.0;      // 20*log10(range) - 10*log10(mse)
  f64 nrmse = 0.0;       // sqrt(mse) / range
  f64 valueRange = 0.0;   // max - min of the original data
  f64 maxAbsValue = 0.0;  // largest |original| value
  usize count = 0;

  /// True when every reconstructed point is within `absErrorBound` of the
  /// original ("Pass error check!" in the paper's artifact output).
  bool withinBound(f64 absErrorBound) const {
    return maxAbsError <= absErrorBound * (1.0 + 1e-12);
  }

  /// Like withinBound, but allows the half-ulp the final rounding to the
  /// storage precision can add when the bound approaches the ulp scale
  /// (inherent to any floating-point compressor, not a defect).
  bool withinBoundFp(f64 absErrorBound, Precision precision) const {
    const f64 halfUlp =
        maxAbsValue * (precision == Precision::F32 ? 6.0e-8 : 1.2e-16);
    return maxAbsError <= absErrorBound * (1.0 + 1e-12) + halfUlp;
  }
};

template <FloatingPoint T>
ErrorStats computeErrorStats(std::span<const T> original,
                             std::span<const T> reconstructed);

/// Value range (max - min) of a field; REL error bounds are relative to it.
template <FloatingPoint T>
f64 valueRange(std::span<const T> data);

extern template ErrorStats computeErrorStats<f32>(std::span<const f32>,
                                                  std::span<const f32>);
extern template ErrorStats computeErrorStats<f64>(std::span<const f64>,
                                                  std::span<const f64>);
extern template f64 valueRange<f32>(std::span<const f32>);
extern template f64 valueRange<f64>(std::span<const f64>);

}  // namespace cuszp2::metrics
