#include "metrics/ratio.hpp"

#include <cstdio>

namespace cuszp2::metrics {

std::string RatioCell::format() const {
  if (empty()) return "N.A.";
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%.2f~%.2f (avg: %.2f)", min(), max(),
                avg());
  return buf;
}

}  // namespace cuszp2::metrics
