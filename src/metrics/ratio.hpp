// Compression-ratio bookkeeping: per-field ratios aggregated into the
// "min~max (avg: X)" cells of the paper's Table III / Table V.
#pragma once

#include <algorithm>
#include <limits>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace cuszp2::metrics {

/// Ratio of one field: originalBytes / compressedBytes.
inline f64 compressionRatio(usize originalBytes, usize compressedBytes) {
  return compressedBytes == 0
             ? 0.0
             : static_cast<f64>(originalBytes) /
                   static_cast<f64>(compressedBytes);
}

/// Aggregates per-field ratios for one (compressor, dataset, eb) cell.
class RatioCell {
 public:
  void add(f64 ratio) { ratios_.push_back(ratio); }

  bool empty() const { return ratios_.empty(); }
  usize count() const { return ratios_.size(); }

  f64 min() const {
    return empty() ? 0.0 : *std::min_element(ratios_.begin(), ratios_.end());
  }
  f64 max() const {
    return empty() ? 0.0 : *std::max_element(ratios_.begin(), ratios_.end());
  }
  f64 avg() const {
    if (empty()) return 0.0;
    f64 s = 0.0;
    for (f64 r : ratios_) s += r;
    return s / static_cast<f64>(ratios_.size());
  }

  /// Formats as the paper's "min~max (avg: X)" cell.
  std::string format() const;

 private:
  std::vector<f64> ratios_;
};

}  // namespace cuszp2::metrics
