// Structural similarity (SSIM) over sliding 1-D windows, plus an
// iso-crossing fidelity metric that stands in for the paper's isosurface
// visualisation (Fig. 18): it counts how often the reconstructed field
// crosses a given isovalue at the same sample positions as the original.
#pragma once

#include <span>

#include "common/types.hpp"

namespace cuszp2::metrics {

/// Mean SSIM over non-overlapping windows of `windowSize` samples.
/// Uses the standard constants C1=(0.01*range)^2, C2=(0.03*range)^2.
template <FloatingPoint T>
f64 ssim(std::span<const T> original, std::span<const T> reconstructed,
         usize windowSize = 64);

struct IsoFidelity {
  usize originalCrossings = 0;
  usize matchedCrossings = 0;   // crossings preserved within +-1 sample
  usize spuriousCrossings = 0;  // reconstructed crossings with no original
  /// matched / original (1.0 = isosurface topology fully preserved).
  f64 matchRatio = 0.0;
};

/// Compares the iso-crossing structure of two fields at `isoValue`.
template <FloatingPoint T>
IsoFidelity isoCrossingFidelity(std::span<const T> original,
                                std::span<const T> reconstructed,
                                f64 isoValue);

extern template f64 ssim<f32>(std::span<const f32>, std::span<const f32>,
                              usize);
extern template f64 ssim<f64>(std::span<const f64>, std::span<const f64>,
                              usize);
extern template IsoFidelity isoCrossingFidelity<f32>(std::span<const f32>,
                                                     std::span<const f32>,
                                                     f64);
extern template IsoFidelity isoCrossingFidelity<f64>(std::span<const f64>,
                                                     std::span<const f64>,
                                                     f64);

}  // namespace cuszp2::metrics
