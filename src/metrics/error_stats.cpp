#include "metrics/error_stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace cuszp2::metrics {

template <FloatingPoint T>
f64 valueRange(std::span<const T> data) {
  if (data.empty()) return 0.0;
  T lo = data[0];
  T hi = data[0];
  for (T v : data) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  return static_cast<f64>(hi) - static_cast<f64>(lo);
}

template <FloatingPoint T>
ErrorStats computeErrorStats(std::span<const T> original,
                             std::span<const T> reconstructed) {
  require(original.size() == reconstructed.size(),
          "computeErrorStats: size mismatch");
  ErrorStats s;
  s.count = original.size();
  if (original.empty()) return s;

  f64 sumSq = 0.0;
  for (usize i = 0; i < original.size(); ++i) {
    const f64 err = static_cast<f64>(original[i]) -
                    static_cast<f64>(reconstructed[i]);
    s.maxAbsError = std::max(s.maxAbsError, std::abs(err));
    s.maxAbsValue =
        std::max(s.maxAbsValue, std::abs(static_cast<f64>(original[i])));
    sumSq += err * err;
  }
  s.mse = sumSq / static_cast<f64>(original.size());
  s.valueRange = valueRange(original);
  if (s.mse > 0.0 && s.valueRange > 0.0) {
    s.psnrDb = 20.0 * std::log10(s.valueRange) - 10.0 * std::log10(s.mse);
    s.nrmse = std::sqrt(s.mse) / s.valueRange;
  } else if (s.mse == 0.0) {
    s.psnrDb = std::numeric_limits<f64>::infinity();
    s.nrmse = 0.0;
  }
  return s;
}

template ErrorStats computeErrorStats<f32>(std::span<const f32>,
                                           std::span<const f32>);
template ErrorStats computeErrorStats<f64>(std::span<const f64>,
                                           std::span<const f64>);
template f64 valueRange<f32>(std::span<const f32>);
template f64 valueRange<f64>(std::span<const f64>);

}  // namespace cuszp2::metrics
