#include "metrics/ssim.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "metrics/error_stats.hpp"

namespace cuszp2::metrics {

template <FloatingPoint T>
f64 ssim(std::span<const T> original, std::span<const T> reconstructed,
         usize windowSize) {
  require(original.size() == reconstructed.size(), "ssim: size mismatch");
  require(windowSize >= 2, "ssim: window too small");
  if (original.size() < windowSize) windowSize = original.size();
  if (original.empty()) return 1.0;

  const f64 range = valueRange(original);
  const f64 c1 = (0.01 * range) * (0.01 * range);
  const f64 c2 = (0.03 * range) * (0.03 * range);

  f64 total = 0.0;
  usize windows = 0;
  for (usize start = 0; start + windowSize <= original.size();
       start += windowSize) {
    f64 muX = 0.0;
    f64 muY = 0.0;
    for (usize i = start; i < start + windowSize; ++i) {
      muX += static_cast<f64>(original[i]);
      muY += static_cast<f64>(reconstructed[i]);
    }
    muX /= static_cast<f64>(windowSize);
    muY /= static_cast<f64>(windowSize);

    f64 varX = 0.0;
    f64 varY = 0.0;
    f64 cov = 0.0;
    for (usize i = start; i < start + windowSize; ++i) {
      const f64 dx = static_cast<f64>(original[i]) - muX;
      const f64 dy = static_cast<f64>(reconstructed[i]) - muY;
      varX += dx * dx;
      varY += dy * dy;
      cov += dx * dy;
    }
    varX /= static_cast<f64>(windowSize - 1);
    varY /= static_cast<f64>(windowSize - 1);
    cov /= static_cast<f64>(windowSize - 1);

    const f64 num = (2.0 * muX * muY + c1) * (2.0 * cov + c2);
    const f64 den = (muX * muX + muY * muY + c1) * (varX + varY + c2);
    total += den == 0.0 ? 1.0 : num / den;
    ++windows;
  }
  return windows == 0 ? 1.0 : total / static_cast<f64>(windows);
}

namespace {

template <FloatingPoint T>
std::vector<usize> crossings(std::span<const T> data, f64 iso) {
  std::vector<usize> out;
  for (usize i = 1; i < data.size(); ++i) {
    const bool below = static_cast<f64>(data[i - 1]) < iso;
    const bool above = static_cast<f64>(data[i]) >= iso;
    if (below == above) out.push_back(i);
  }
  return out;
}

}  // namespace

template <FloatingPoint T>
IsoFidelity isoCrossingFidelity(std::span<const T> original,
                                std::span<const T> reconstructed,
                                f64 isoValue) {
  require(original.size() == reconstructed.size(),
          "isoCrossingFidelity: size mismatch");
  IsoFidelity fid;
  const auto origX = crossings(original, isoValue);
  const auto recoX = crossings(reconstructed, isoValue);
  fid.originalCrossings = origX.size();

  // Two-pointer match with a +-1 sample tolerance.
  usize j = 0;
  usize matchedReco = 0;
  for (usize i = 0; i < origX.size(); ++i) {
    while (j < recoX.size() && recoX[j] + 1 < origX[i]) ++j;
    if (j < recoX.size() && recoX[j] <= origX[i] + 1) {
      ++fid.matchedCrossings;
      ++matchedReco;
      ++j;
    }
  }
  fid.spuriousCrossings = recoX.size() - matchedReco;
  fid.matchRatio =
      fid.originalCrossings == 0
          ? 1.0
          : static_cast<f64>(fid.matchedCrossings) /
                static_cast<f64>(fid.originalCrossings);
  return fid;
}

template f64 ssim<f32>(std::span<const f32>, std::span<const f32>, usize);
template f64 ssim<f64>(std::span<const f64>, std::span<const f64>, usize);
template IsoFidelity isoCrossingFidelity<f32>(std::span<const f32>,
                                              std::span<const f32>, f64);
template IsoFidelity isoCrossingFidelity<f64>(std::span<const f64>,
                                              std::span<const f64>, f64);

}  // namespace cuszp2::metrics
