#include "service/durability.hpp"

#include <bit>
#include <map>

#include "common/error.hpp"

namespace cuszp2::service {

namespace {

void putU8(std::vector<std::byte>& out, u8 v) {
  out.push_back(static_cast<std::byte>(v));
}

void putU32(std::vector<std::byte>& out, u32 v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFF));
  }
}

void putU64(std::vector<std::byte>& out, u64 v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFF));
  }
}

void putF64(std::vector<std::byte>& out, f64 v) {
  putU64(out, std::bit_cast<u64>(v));
}

void putString(std::vector<std::byte>& out, const std::string& s) {
  putU32(out, static_cast<u32>(s.size()));
  const auto* p = reinterpret_cast<const std::byte*>(s.data());
  out.insert(out.end(), p, p + s.size());
}

class Cursor {
 public:
  explicit Cursor(ConstByteSpan bytes) : bytes_(bytes) {}

  u8 takeU8() {
    need(1);
    return std::to_integer<u8>(bytes_[off_++]);
  }

  u32 takeU32() {
    need(4);
    u32 v = 0;
    for (int i = 3; i >= 0; --i) {
      v = (v << 8) | std::to_integer<u32>(bytes_[off_ + static_cast<usize>(i)]);
    }
    off_ += 4;
    return v;
  }

  u64 takeU64() {
    need(8);
    u64 v = 0;
    for (int i = 7; i >= 0; --i) {
      v = (v << 8) | std::to_integer<u64>(bytes_[off_ + static_cast<usize>(i)]);
    }
    off_ += 8;
    return v;
  }

  f64 takeF64() { return std::bit_cast<f64>(takeU64()); }

  std::string takeString() {
    const u32 len = takeU32();
    need(len);
    std::string s(reinterpret_cast<const char*>(bytes_.data() + off_), len);
    off_ += len;
    return s;
  }

  std::vector<std::byte> takeBytes(usize n) {
    need(n);
    std::vector<std::byte> out(bytes_.data() + off_, bytes_.data() + off_ + n);
    off_ += n;
    return out;
  }

  usize remaining() const { return bytes_.size() - off_; }

 private:
  void need(usize n) const {
    require(bytes_.size() - off_ >= n,
            "service: truncated job journal record");
  }

  ConstByteSpan bytes_;
  usize off_ = 0;
};

}  // namespace

std::vector<std::byte> encodeJobAccept(const JobAcceptRecord& rec) {
  std::vector<std::byte> out;
  out.reserve(64 + rec.tenant.size() + rec.input.size());
  putU64(out, rec.jobId);
  putU64(out, rec.supersedesId);
  putString(out, rec.tenant);
  putU8(out, static_cast<u8>(rec.kind));
  putU8(out, static_cast<u8>(rec.precision));
  putU8(out, rec.priority);
  // core::Config, field by field (f64s bit-cast so the replayed Config
  // compares == to the submitted one).
  putF64(out, rec.config.relErrorBound);
  putF64(out, rec.config.absErrorBound);
  putU8(out, static_cast<u8>(rec.config.mode));
  putU32(out, rec.config.blockSize);
  putU32(out, rec.config.blocksPerTile);
  putU8(out, static_cast<u8>(rec.config.syncAlgorithm));
  putU8(out, rec.config.vectorizedAccess ? 1 : 0);
  putU8(out, rec.config.checksum ? 1 : 0);
  putU8(out, rec.config.blockChecksums ? 1 : 0);
  putU32(out, rec.config.faultRetries);
  putU8(out, static_cast<u8>(rec.config.roundingMode));
  putU8(out, static_cast<u8>(rec.config.predictor));
  putU8(out, static_cast<u8>(rec.config.pipeline));
  putU64(out, static_cast<u64>(rec.input.size()));
  out.insert(out.end(), rec.input.begin(), rec.input.end());
  return out;
}

JobAcceptRecord decodeJobAccept(ConstByteSpan payload) {
  Cursor cur(payload);
  JobAcceptRecord rec;
  rec.jobId = cur.takeU64();
  rec.supersedesId = cur.takeU64();
  rec.tenant = cur.takeString();
  rec.kind = static_cast<JobKind>(cur.takeU8());
  rec.precision = static_cast<Precision>(cur.takeU8());
  rec.priority = cur.takeU8();
  rec.config.relErrorBound = cur.takeF64();
  rec.config.absErrorBound = cur.takeF64();
  rec.config.mode = static_cast<EncodingMode>(cur.takeU8());
  rec.config.blockSize = cur.takeU32();
  rec.config.blocksPerTile = cur.takeU32();
  rec.config.syncAlgorithm = static_cast<scan::Algorithm>(cur.takeU8());
  rec.config.vectorizedAccess = cur.takeU8() != 0;
  rec.config.checksum = cur.takeU8() != 0;
  rec.config.blockChecksums = cur.takeU8() != 0;
  rec.config.faultRetries = cur.takeU32();
  rec.config.roundingMode = static_cast<core::RoundingMode>(cur.takeU8());
  rec.config.predictor = static_cast<Predictor>(cur.takeU8());
  rec.config.pipeline = static_cast<core::PipelineMode>(cur.takeU8());
  const u64 inputBytes = cur.takeU64();
  require(cur.remaining() == inputBytes,
          "service: accept record input length disagrees with its payload");
  rec.input = cur.takeBytes(static_cast<usize>(inputBytes));
  return rec;
}

std::vector<std::byte> encodeJobResolve(u64 jobId, Outcome outcome) {
  std::vector<std::byte> out;
  out.reserve(9);
  putU64(out, jobId);
  putU8(out, static_cast<u8>(outcome));
  return out;
}

JobResolveRecord decodeJobResolve(ConstByteSpan payload) {
  Cursor cur(payload);
  JobResolveRecord rec;
  rec.jobId = cur.takeU64();
  rec.outcome = static_cast<Outcome>(cur.takeU8());
  require(static_cast<u8>(rec.outcome) <= static_cast<u8>(Outcome::Degraded),
          "service: resolve record carries an unknown outcome");
  return rec;
}

JobJournalSummary summarizeJobJournal(const io::ReplayResult& replay) {
  JobJournalSummary out;
  // std::map: pending jobs come out in original id order, and a
  // duplicate accept of the same id (impossible from one process life,
  // conceivable from a crafted journal) dedups to one entry.
  std::map<u64, JobAcceptRecord> pending;
  for (const io::JournalRecord& rec : replay.records) {
    if (rec.type == kJobRecordAccept) {
      JobAcceptRecord acc = decodeJobAccept(ConstByteSpan(rec.payload));
      ++out.accepts;
      if (acc.supersedesId != 0) pending.erase(acc.supersedesId);
      pending.insert_or_assign(acc.jobId, std::move(acc));
    } else if (rec.type == kJobRecordResolve) {
      const JobResolveRecord res =
          decodeJobResolve(ConstByteSpan(rec.payload));
      ++out.resolves;
      ++out.outcomes[static_cast<usize>(res.outcome)];
      pending.erase(res.jobId);
    } else {
      require(false, "service: unknown job journal record type " +
                         std::to_string(rec.type));
    }
  }
  out.pending.reserve(pending.size());
  for (auto& [id, acc] : pending) out.pending.push_back(std::move(acc));
  return out;
}

}  // namespace cuszp2::service
