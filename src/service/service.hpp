// In-process multi-tenant compression service.
//
// A CompressionService owns N worker threads, each bound to one simulated
// device (gpusim::homogeneousFleet by default) and holding its own warm
// core::CompressorStream. Clients submit compress/decompress jobs tagged
// with a tenant id and receive an async Ticket; a lock-guarded scheduler
// with one FIFO lane per tenant picks the next job by priority then
// round-robin (no tenant can starve another at equal priority), and a
// batching pass coalesces small compatible compress jobs — same Config,
// same precision — into a single fused compressBatch launch, which the
// kernel telemetry table accounts as ONE launch (the amortization the
// service exists to win). Output bytes per job are identical to a serial
// CompressorStream call with the same Config.
//
// Admission control sheds load instead of blocking: submissions beyond
// ServiceConfig::maxQueueDepth admitted-but-unfinished jobs, beyond a
// tenant's outstanding-byte quota, or after shutdown() return a typed
// rejection (RejectReason) immediately. shutdown(deadline) stops intake
// and drains accepted work; jobs still queued when the deadline expires
// complete with ok == false rather than hanging their tickets.
//
// Fault tolerance (see docs/SERVICE.md "Failure semantics"): a Watchdog
// thread deadline-monitors in-flight jobs (timeout derived from the
// modelled device timing times a configurable multiplier) and relaunches
// hung work on another worker; a retry policy with exponential seeded-
// jitter backoff wraps the stream-level Config::faultRetries relaunches;
// a per-tenant circuit breaker (closed -> open -> half-open) sheds a
// tenant whose jobs fail consecutively; and decompress jobs that exhaust
// their retries fall back to decompressResilient and resolve with a typed
// Degraded outcome carrying the salvage DecodeReport. A ChaosHook lets
// harnesses (tools/chaos_soak, `serve --chaos-seed`) inject seeded
// gpusim faults per dispatch attempt.
//
// Observability: queue-depth gauge, wait/service-time and batch-size
// histograms, per-tenant counters (see docs/SERVICE.md for the name
// catalogue) and one trace span per job when a TraceSession is active.
#pragma once

#include <cstring>
#include <functional>
#include <map>
#include <optional>
#include <span>
#include <string_view>
#include <thread>

#include "cas/block_store.hpp"
#include "gpusim/device_spec.hpp"
#include "service/job.hpp"
#include "service/queue.hpp"
#include "telemetry/metrics.hpp"

namespace cuszp2::service {

/// Deadline monitoring of in-flight jobs. A job's deadline is
/// max(minTimeoutMillis, modelled-execution-seconds * modelledMultiplier)
/// after dispatch; a job still Running past it is requeued to run on
/// whichever worker frees up first (usually a different one — the hung
/// worker is by definition busy). The original execution is not killed
/// (threads can't be safely killed); instead, whichever execution
/// finishes first publishes the result and the loser is discarded —
/// safe because executions are deterministic and side-effect-free.
struct WatchdogConfig {
  bool enabled = true;
  /// Scan period of the watchdog thread.
  u32 pollMillis = 5;
  /// Deadline floor (host wall clock). Generous by default so only
  /// genuinely wedged work trips it even under sanitizers.
  u32 minTimeoutMillis = 2000;
  /// Wall-clock budget as a multiple of the job's modelled device
  /// seconds (the host simulation runs orders of magnitude slower than
  /// the modelled GPU, hence the large default).
  f64 modelledMultiplier = 20000.0;
  /// Recoveries per job before the watchdog leaves it alone (bounds the
  /// number of concurrent duplicate executions to maxRecoveries + 1).
  u32 maxRecoveries = 1;
};

/// Service-level retry of failed executions, wrapping the stream-level
/// Config::faultRetries relaunch budget: a job gets up to
/// maxAttempts * (faultRetries + 1) kernel launches in the worst case.
struct RetryConfig {
  /// Total dispatch attempts per job (1 = no service-level retry).
  u32 maxAttempts = 2;
  /// Backoff before attempt k is requeued: uniform in
  /// (0, min(backoffBaseMillis * 2^(k-1), backoffCapMillis)] with
  /// deterministic jitter seeded by (jitterSeed, job id, attempt).
  u32 backoffBaseMillis = 1;
  u32 backoffCapMillis = 50;
  u64 jitterSeed = 0x7a0b;
};

/// Per-tenant circuit breaker: `threshold` consecutive failures open the
/// circuit (submissions rejected with RejectReason::CircuitOpen); after
/// cooldownMillis the breaker goes half-open and admits one probe per
/// cooldown window; `probeSuccesses` successful probes close it again,
/// while a failed probe reopens it.
struct BreakerConfig {
  /// Consecutive failures that open a tenant's circuit (0 disables).
  u32 threshold = 8;
  u32 cooldownMillis = 250;
  u32 probeSuccesses = 1;
};

enum class BreakerState : u8 { Closed = 0, Open = 1, HalfOpen = 2 };

constexpr const char* toString(BreakerState s) {
  switch (s) {
    case BreakerState::Closed: return "closed";
    case BreakerState::Open: return "open";
    default: return "half-open";
  }
}

/// One injected fault decision for a dispatch attempt (returned by a
/// ChaosHook; armed as a gpusim::FaultPlan on the executing stream).
struct ChaosFault {
  enum class Mode : u8 {
    None = 0,
    BitFlip,       ///< flip bits in the kernel's written bytes
    Abort,         ///< a thread block throws mid-launch
    Stall,         ///< the launch hangs before any block runs
    Wedge,         ///< a pool worker stops draining mid-grid
    ArenaExhaust,  ///< the operation's scratch arena refuses to grow
  };
  Mode mode = Mode::None;
  u32 bitFlips = 0;         ///< BitFlip
  u32 stallTicks = 0;       ///< Stall (1 tick = 1 ms)
  u32 wedgeTicks = 0;       ///< Wedge
  u64 arenaBudgetBytes = 0; ///< ArenaExhaust
  u64 seed = 1;             ///< FaultPlan seed (bit-flip positions)
};

/// What a ChaosHook learns about the dispatch attempt it may fault.
struct ChaosJobInfo {
  u64 jobId = 0;
  std::string_view tenant;
  JobKind kind = JobKind::Compress;
  u64 inputBytes = 0;
  /// 0-based dispatch attempt (service retries and watchdog relaunches
  /// increment it).
  u32 attempt = 0;
};

/// Consulted once per dispatched batch (for its head job) when set; the
/// returned fault is armed on the executing worker's stream for exactly
/// that execution. Must be a pure function of its input for reproducible
/// chaos runs (see SeededChaosSchedule in service/chaos.hpp). Called
/// concurrently from worker threads.
using ChaosHook = std::function<ChaosFault(const ChaosJobInfo&)>;

struct ServiceConfig {
  /// Worker threads; worker i is pinned to devices[i % devices.size()].
  u32 workers = 2;

  /// Admitted-but-unfinished job cap. The cap is checked at submission
  /// with no scheduler involvement, so rejection is deterministic: the
  /// (maxQueueDepth + 1)-th outstanding submission is refused.
  usize maxQueueDepth = 256;

  /// Outstanding input bytes allowed per tenant (0 = unlimited).
  u64 tenantQuotaBytes = 0;

  /// Jobs a single fused launch may serve (1 disables coalescing).
  u32 maxBatchJobs = 8;

  /// Total input bytes a fused launch may cover (bounds staging growth).
  u64 maxBatchBytes = u64{64} << 20;

  /// Device-affine worker placement; empty = homogeneousFleet of A100s,
  /// one per worker.
  std::vector<gpusim::DeviceSpec> devices;

  /// Start with the scheduler paused (tests and deterministic replay:
  /// submit everything, then resume() to drain with a fully known queue).
  bool startPaused = false;

  WatchdogConfig watchdog;
  RetryConfig retry;
  BreakerConfig breaker;

  /// When a decompress job exhausts its retries, fall back to
  /// decompressResilient and resolve with Outcome::Degraded (salvaged
  /// output + DecodeReport) instead of Outcome::Failed.
  bool degradedDecode = true;

  /// Optional seeded fault injection per dispatch attempt (chaos drills).
  ChaosHook chaosHook;

  /// Optional content-addressed store. When set, putObject/getObject/
  /// eraseObject route tenants' named objects through it: each tenant
  /// keeps its own logical namespace while identical bytes across
  /// tenants share physical chunks (docs/CAS.md). Shared so the CLI and
  /// a CompactionWorker can hold the same store.
  std::shared_ptr<cas::BlockStore> store;

  /// Non-empty: durable intake (docs/DURABILITY.md). Every accepted
  /// submission is journaled (and synced) at this path before its
  /// ticket is returned, and resolved jobs append their Outcome; a
  /// restarted service replays accepted-but-unresolved jobs exactly-once
  /// (replayedJobs()) before taking new work. A damaged journal header
  /// throws from the constructor (unrecoverable).
  std::string jobJournalPath;
};

/// One job the constructor replayed from the job journal: the id it had
/// in its previous life, plus the live ticket of its resubmission.
struct ReplayedJob {
  u64 originalJobId = 0;
  Ticket ticket;
};

/// Point-in-time counters snapshot (monotonic except queueDepth).
struct ServiceStats {
  u64 submitted = 0;
  u64 accepted = 0;
  u64 rejectedQueueFull = 0;
  u64 rejectedQuota = 0;
  u64 rejectedShutdown = 0;
  u64 rejectedCircuitOpen = 0;
  u64 completed = 0;  ///< finished ok
  u64 failed = 0;     ///< finished with an error
  u64 abandoned = 0;  ///< queued past the shutdown deadline
  u64 degraded = 0;   ///< resolved via the decompressResilient fallback
  u64 dispatched = 0; ///< jobs handed to a worker
  u64 batches = 0;    ///< fused launches (execute() passes)
  usize queueDepth = 0;  ///< admitted-but-unfinished right now

  // Fault-tolerance counters. Deterministic for a fixed chaos seed and
  // schedule — tools/chaos_soak asserts run-to-run equality.
  u64 watchdogRecoveries = 0;  ///< hung jobs requeued by the watchdog
  u64 retries = 0;             ///< failed executions requeued for retry
  u64 retriesExhausted = 0;    ///< jobs that burned every attempt
  u64 batchSplits = 0;         ///< failed batches split into solo retries
  u64 breakerOpens = 0;        ///< circuit-open transitions (incl. reopens)
  u64 chaosInjected = 0;       ///< faults armed by the chaos hook
  u64 streamFaultsDetected = 0;   ///< in-stream detections (all workers)
  u64 streamFaultRelaunches = 0;  ///< in-stream relaunches (all workers)

  /// Launches the batching scheduler saved versus one launch per job.
  u64 launchesSaved() const {
    return dispatched >= batches ? dispatched - batches : 0;
  }
};

class CompressionService {
 public:
  explicit CompressionService(ServiceConfig config = {});
  ~CompressionService();

  CompressionService(const CompressionService&) = delete;
  CompressionService& operator=(const CompressionService&) = delete;

  /// Submits a compression job (the input is copied). Lower `priority`
  /// values run earlier across tenants; order within a tenant is always
  /// submission order.
  template <FloatingPoint T>
  SubmitResult submitCompress(const std::string& tenant,
                              std::span<const T> data,
                              const core::Config& config,
                              u8 priority = 0) {
    std::vector<std::byte> bytes(data.size() * sizeof(T));
    if (!bytes.empty()) {
      std::memcpy(bytes.data(), data.data(), bytes.size());
    }
    return submit(tenant, JobKind::Compress, precisionOf<T>(),
                  std::move(bytes), config, priority);
  }

  /// Submits a decompression job (the stream is copied; precision comes
  /// from the stream header at execution time). `config` carries the
  /// execution knobs (blocksPerTile, syncAlgorithm, faultRetries).
  SubmitResult submitDecompress(const std::string& tenant,
                                ConstByteSpan stream,
                                const core::Config& config = {},
                                u8 priority = 0) {
    return submit(tenant, JobKind::Decompress, Precision::F32,
                  {stream.begin(), stream.end()}, config, priority);
  }

  /// Stops/resumes dispatch (submissions stay open). Paused + submit-all +
  /// resume gives deterministic batch formation.
  void pause();
  void resume();

  /// Stops intake and drains accepted work. With a deadline, jobs still
  /// queued when it expires finish with ok == false ("abandoned") instead
  /// of running; jobs already on a worker always complete. Returns true
  /// when every accepted job actually ran. Idempotent; the destructor
  /// calls shutdown() with no deadline (full drain).
  bool shutdown();
  bool shutdown(std::chrono::milliseconds drainDeadline);

  ServiceStats stats() const;
  usize queueDepth() const;
  u32 workerCount() const {
    return static_cast<u32>(workers_.size());
  }
  const std::vector<gpusim::DeviceSpec>& devices() const {
    return devices_;
  }

  /// Current breaker state for a tenant (Closed when never tripped).
  /// Open -> HalfOpen transitions happen lazily on the next submission
  /// after the cooldown, so a cooled-down breaker still reads Open here
  /// until someone probes it.
  BreakerState breakerState(const std::string& tenant) const;

  /// The tenant's outstanding (admitted-but-unfinished) input bytes.
  u64 tenantOutstandingBytes(const std::string& tenant) const;

  // ---- durable intake (ServiceConfig::jobJournalPath) -----------------

  /// Jobs the constructor found accepted-but-unresolved in the journal
  /// and resubmitted (exactly-once, original id order). Empty when the
  /// journal was clean or durable intake is off. Stable for the
  /// service's lifetime.
  const std::vector<ReplayedJob>& replayedJobs() const {
    return replayedJobs_;
  }

  /// Live job-journal accounting (attached == false without durability).
  io::JournalStatus jobJournalStatus() const;

  // ---- content-addressed object path (ServiceConfig::store) ----------

  /// The attached CAS, or nullptr when the service runs without one.
  const std::shared_ptr<cas::BlockStore>& store() const {
    return config_.store;
  }

  /// Stores a tenant's named object through the CAS (cross-tenant dedup;
  /// see cas::BlockStore::put). Throws when no store is attached.
  cas::PutResult putObject(const std::string& tenant,
                           const std::string& name, ConstByteSpan bytes);

  /// Fetches a tenant's named object from the CAS, chunk hashes verified.
  std::vector<std::byte> getObject(const std::string& tenant,
                                   const std::string& name) const;

  /// Drops a tenant's named object (refcount GC in the store). Returns
  /// false when the tenant never stored that name.
  bool eraseObject(const std::string& tenant, const std::string& name);

 private:
  struct Instruments {
    telemetry::Counter* submitted;
    telemetry::Counter* accepted;
    telemetry::Counter* completed;
    telemetry::Counter* failed;
    telemetry::Counter* abandoned;
    telemetry::Counter* degraded;
    telemetry::Counter* rejectedQueueFull;
    telemetry::Counter* rejectedQuota;
    telemetry::Counter* rejectedShutdown;
    telemetry::Counter* rejectedCircuitOpen;
    telemetry::Counter* batches;
    telemetry::Counter* jobsDispatched;
    telemetry::Counter* watchdogRecoveries;
    telemetry::Counter* retries;
    telemetry::Counter* retriesExhausted;
    telemetry::Counter* batchSplits;
    telemetry::Counter* breakerOpens;
    telemetry::Counter* chaosInjected;
    telemetry::Histogram* waitUs;
    telemetry::Histogram* serviceUs;
    telemetry::Histogram* batchJobs;
  };

  /// Per-tenant circuit breaker record (under breakerMutex_).
  struct Breaker {
    BreakerState state = BreakerState::Closed;
    u32 consecutiveFailures = 0;
    u32 probeSuccesses = 0;
    /// Open: when half-open probing may begin.
    std::chrono::steady_clock::time_point reopenAt{};
    /// HalfOpen: earliest next probe admission (one probe per window).
    std::chrono::steady_clock::time_point nextProbeAt{};
  };

  /// Watchdog bookkeeping for one dispatched job (under watchdogMutex_).
  struct InFlight {
    std::shared_ptr<detail::Job> job;
    std::chrono::steady_clock::time_point deadline;
  };

  SubmitResult submit(const std::string& tenant, JobKind kind,
                      Precision precision, std::vector<std::byte> input,
                      const core::Config& config, u8 priority,
                      u64 supersedesId = 0);
  SubmitResult reject(RejectReason reason, std::string detail,
                      const std::string& tenant);

  /// Constructor-time job-journal recovery: replays accepted-unresolved
  /// jobs, resubmits them (superseding their old ids), and leaves the
  /// journal open for appending.
  void recoverJobJournal();

  bool shutdownImpl(std::optional<std::chrono::milliseconds> deadline);

  void workerLoop(u32 worker);
  void execute(std::vector<std::shared_ptr<detail::Job>>& batch,
               core::CompressorStream& stream, u32 worker);
  template <FloatingPoint T>
  void runCompress(std::vector<std::shared_ptr<detail::Job>>& batch,
                   core::CompressorStream& stream,
                   std::vector<JobResult>& results);
  void runDecompress(std::vector<std::shared_ptr<detail::Job>>& batch,
                     core::CompressorStream& stream,
                     std::vector<JobResult>& results);
  void runDegradedDecode(detail::Job& job, core::CompressorStream& stream,
                         JobResult& result, const std::string& failure);
  void finishJob(detail::Job& job, JobResult result, bool abandoned);

  // Fault-tolerance machinery.
  void armChaosFault(core::CompressorStream& stream,
                     const ChaosFault& fault);
  void requeueSolo(std::shared_ptr<detail::Job> job);
  /// Requeues a job whose phase the caller already moved back to Queued,
  /// or — once the shutdown drain has abandoned the lanes — resolves it
  /// as Outcome::Abandoned instead of re-entering the queue.
  void requeueOrAbandon(std::shared_ptr<detail::Job> job);
  void backoffSleep(u64 jobId, u32 attempt) const;
  void watchdogLoop();
  void watchdogWatch(const std::vector<std::shared_ptr<detail::Job>>& batch,
                     std::chrono::steady_clock::time_point dispatched,
                     const gpusim::DeviceSpec& device);
  void watchdogForget(u64 jobId);
  std::chrono::milliseconds jobTimeout(
      const detail::Job& job, const gpusim::DeviceSpec& device) const;
  bool breakerAdmits(const std::string& tenant, std::string* detail);
  void recordBreakerOutcome(const std::string& tenant, bool success);
  void setBreakerState(const std::string& tenant, Breaker& breaker,
                       BreakerState state);

  ServiceConfig config_;
  std::vector<gpusim::DeviceSpec> devices_;
  std::shared_ptr<detail::Ledger> ledger_;
  Instruments instruments_;

  /// Durable intake (nullptr without jobJournalPath). Created — and any
  /// previous life's pending jobs replayed — before workers spawn, so
  /// replayed work is first in line.
  std::unique_ptr<io::JournalWriter> jobJournal_;
  std::vector<ReplayedJob> replayedJobs_;

  mutable std::mutex mutex_;          // scheduler state below
  std::condition_variable workCv_;
  detail::TenantLanes lanes_;
  bool paused_ = false;
  /// Atomic so submit() can shed ShuttingDown loads without mutex_; the
  /// authoritative flip (and the final re-check before enqueue) happen
  /// under mutex_.
  std::atomic<bool> accepting_{true};
  bool stopping_ = false;
  /// Set (under mutex_) the moment the shutdown-deadline drain empties
  /// the lanes: any requeue that lands afterwards (a watchdog twin or a
  /// retry waking from backoff) must resolve its job as Abandoned rather
  /// than slip back into a queue the drain already swept.
  bool requeuesAbandon_ = false;
  u64 nextJobId_ = 1;
  u64 dispatchSeq_ = 0;

  // Shutdown is serialized (idempotent for concurrent callers).
  std::mutex shutdownMutex_;
  bool shutdownDone_ = false;
  bool drained_ = true;

  // Watchdog state. The map is keyed by job id; entries for jobs no
  // longer Running are reaped lazily during scans.
  mutable std::mutex watchdogMutex_;
  std::condition_variable watchdogCv_;
  bool watchdogStop_ = false;
  std::map<u64, InFlight> inFlight_;
  std::thread watchdog_;

  // Circuit-breaker state, lazily created per tenant.
  mutable std::mutex breakerMutex_;
  std::map<std::string, Breaker> breakers_;

  std::atomic<u64> statSubmitted_{0};
  std::atomic<u64> statAccepted_{0};
  std::atomic<u64> statRejectedQueueFull_{0};
  std::atomic<u64> statRejectedQuota_{0};
  std::atomic<u64> statRejectedShutdown_{0};
  std::atomic<u64> statRejectedCircuitOpen_{0};
  std::atomic<u64> statCompleted_{0};
  std::atomic<u64> statFailed_{0};
  std::atomic<u64> statAbandoned_{0};
  std::atomic<u64> statDegraded_{0};
  std::atomic<u64> statDispatched_{0};
  std::atomic<u64> statBatches_{0};
  std::atomic<u64> statWatchdogRecoveries_{0};
  std::atomic<u64> statRetries_{0};
  std::atomic<u64> statRetriesExhausted_{0};
  std::atomic<u64> statBatchSplits_{0};
  std::atomic<u64> statBreakerOpens_{0};
  std::atomic<u64> statChaosInjected_{0};
  std::atomic<u64> statStreamFaultsDetected_{0};
  std::atomic<u64> statStreamFaultRelaunches_{0};

  std::vector<std::thread> workers_;
};

}  // namespace cuszp2::service
