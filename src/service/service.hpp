// In-process multi-tenant compression service.
//
// A CompressionService owns N worker threads, each bound to one simulated
// device (gpusim::homogeneousFleet by default) and holding its own warm
// core::CompressorStream. Clients submit compress/decompress jobs tagged
// with a tenant id and receive an async Ticket; a lock-guarded scheduler
// with one FIFO lane per tenant picks the next job by priority then
// round-robin (no tenant can starve another at equal priority), and a
// batching pass coalesces small compatible compress jobs — same Config,
// same precision — into a single fused compressBatch launch, which the
// kernel telemetry table accounts as ONE launch (the amortization the
// service exists to win). Output bytes per job are identical to a serial
// CompressorStream call with the same Config.
//
// Admission control sheds load instead of blocking: submissions beyond
// ServiceConfig::maxQueueDepth admitted-but-unfinished jobs, beyond a
// tenant's outstanding-byte quota, or after shutdown() return a typed
// rejection (RejectReason) immediately. shutdown(deadline) stops intake
// and drains accepted work; jobs still queued when the deadline expires
// complete with ok == false rather than hanging their tickets.
//
// Observability: queue-depth gauge, wait/service-time and batch-size
// histograms, per-tenant counters (see docs/SERVICE.md for the name
// catalogue) and one trace span per job when a TraceSession is active.
#pragma once

#include <cstring>
#include <optional>
#include <span>
#include <thread>

#include "gpusim/device_spec.hpp"
#include "service/job.hpp"
#include "service/queue.hpp"
#include "telemetry/metrics.hpp"

namespace cuszp2::service {

struct ServiceConfig {
  /// Worker threads; worker i is pinned to devices[i % devices.size()].
  u32 workers = 2;

  /// Admitted-but-unfinished job cap. The cap is checked at submission
  /// with no scheduler involvement, so rejection is deterministic: the
  /// (maxQueueDepth + 1)-th outstanding submission is refused.
  usize maxQueueDepth = 256;

  /// Outstanding input bytes allowed per tenant (0 = unlimited).
  u64 tenantQuotaBytes = 0;

  /// Jobs a single fused launch may serve (1 disables coalescing).
  u32 maxBatchJobs = 8;

  /// Total input bytes a fused launch may cover (bounds staging growth).
  u64 maxBatchBytes = u64{64} << 20;

  /// Device-affine worker placement; empty = homogeneousFleet of A100s,
  /// one per worker.
  std::vector<gpusim::DeviceSpec> devices;

  /// Start with the scheduler paused (tests and deterministic replay:
  /// submit everything, then resume() to drain with a fully known queue).
  bool startPaused = false;
};

/// Point-in-time counters snapshot (monotonic except queueDepth).
struct ServiceStats {
  u64 submitted = 0;
  u64 accepted = 0;
  u64 rejectedQueueFull = 0;
  u64 rejectedQuota = 0;
  u64 rejectedShutdown = 0;
  u64 completed = 0;  ///< finished ok
  u64 failed = 0;     ///< finished with an error
  u64 abandoned = 0;  ///< queued past the shutdown deadline
  u64 dispatched = 0; ///< jobs handed to a worker
  u64 batches = 0;    ///< fused launches (execute() passes)
  usize queueDepth = 0;  ///< admitted-but-unfinished right now

  /// Launches the batching scheduler saved versus one launch per job.
  u64 launchesSaved() const {
    return dispatched >= batches ? dispatched - batches : 0;
  }
};

class CompressionService {
 public:
  explicit CompressionService(ServiceConfig config = {});
  ~CompressionService();

  CompressionService(const CompressionService&) = delete;
  CompressionService& operator=(const CompressionService&) = delete;

  /// Submits a compression job (the input is copied). Lower `priority`
  /// values run earlier across tenants; order within a tenant is always
  /// submission order.
  template <FloatingPoint T>
  SubmitResult submitCompress(const std::string& tenant,
                              std::span<const T> data,
                              const core::Config& config,
                              u8 priority = 0) {
    std::vector<std::byte> bytes(data.size() * sizeof(T));
    if (!bytes.empty()) {
      std::memcpy(bytes.data(), data.data(), bytes.size());
    }
    return submit(tenant, JobKind::Compress, precisionOf<T>(),
                  std::move(bytes), config, priority);
  }

  /// Submits a decompression job (the stream is copied; precision comes
  /// from the stream header at execution time). `config` carries the
  /// execution knobs (blocksPerTile, syncAlgorithm, faultRetries).
  SubmitResult submitDecompress(const std::string& tenant,
                                ConstByteSpan stream,
                                const core::Config& config = {},
                                u8 priority = 0) {
    return submit(tenant, JobKind::Decompress, Precision::F32,
                  {stream.begin(), stream.end()}, config, priority);
  }

  /// Stops/resumes dispatch (submissions stay open). Paused + submit-all +
  /// resume gives deterministic batch formation.
  void pause();
  void resume();

  /// Stops intake and drains accepted work. With a deadline, jobs still
  /// queued when it expires finish with ok == false ("abandoned") instead
  /// of running; jobs already on a worker always complete. Returns true
  /// when every accepted job actually ran. Idempotent; the destructor
  /// calls shutdown() with no deadline (full drain).
  bool shutdown();
  bool shutdown(std::chrono::milliseconds drainDeadline);

  ServiceStats stats() const;
  usize queueDepth() const;
  u32 workerCount() const {
    return static_cast<u32>(workers_.size());
  }
  const std::vector<gpusim::DeviceSpec>& devices() const {
    return devices_;
  }

 private:
  struct Instruments {
    telemetry::Counter* submitted;
    telemetry::Counter* accepted;
    telemetry::Counter* completed;
    telemetry::Counter* failed;
    telemetry::Counter* abandoned;
    telemetry::Counter* rejectedQueueFull;
    telemetry::Counter* rejectedQuota;
    telemetry::Counter* rejectedShutdown;
    telemetry::Counter* batches;
    telemetry::Counter* jobsDispatched;
    telemetry::Histogram* waitUs;
    telemetry::Histogram* serviceUs;
    telemetry::Histogram* batchJobs;
  };

  SubmitResult submit(const std::string& tenant, JobKind kind,
                      Precision precision, std::vector<std::byte> input,
                      const core::Config& config, u8 priority);
  SubmitResult reject(RejectReason reason, std::string detail,
                      const std::string& tenant);

  bool shutdownImpl(std::optional<std::chrono::milliseconds> deadline);

  void workerLoop(u32 worker);
  void execute(std::vector<std::shared_ptr<detail::Job>>& batch,
               core::CompressorStream& stream, u32 worker);
  template <FloatingPoint T>
  void runCompress(std::vector<std::shared_ptr<detail::Job>>& batch,
                   core::CompressorStream& stream,
                   std::vector<JobResult>& results);
  void runDecompress(detail::Job& job, core::CompressorStream& stream,
                     JobResult& result);
  void finishJob(detail::Job& job, JobResult result, bool abandoned);

  ServiceConfig config_;
  std::vector<gpusim::DeviceSpec> devices_;
  std::shared_ptr<detail::Ledger> ledger_;
  Instruments instruments_;

  mutable std::mutex mutex_;          // scheduler state below
  std::condition_variable workCv_;
  detail::TenantLanes lanes_;
  bool paused_ = false;
  /// Atomic so submit() can shed ShuttingDown loads without mutex_; the
  /// authoritative flip (and the final re-check before enqueue) happen
  /// under mutex_.
  std::atomic<bool> accepting_{true};
  bool stopping_ = false;
  u64 nextJobId_ = 1;
  u64 dispatchSeq_ = 0;

  // Shutdown is serialized (idempotent for concurrent callers).
  std::mutex shutdownMutex_;
  bool shutdownDone_ = false;
  bool drained_ = true;

  std::atomic<u64> statSubmitted_{0};
  std::atomic<u64> statAccepted_{0};
  std::atomic<u64> statRejectedQueueFull_{0};
  std::atomic<u64> statRejectedQuota_{0};
  std::atomic<u64> statRejectedShutdown_{0};
  std::atomic<u64> statCompleted_{0};
  std::atomic<u64> statFailed_{0};
  std::atomic<u64> statAbandoned_{0};
  std::atomic<u64> statDispatched_{0};
  std::atomic<u64> statBatches_{0};

  std::vector<std::thread> workers_;
};

}  // namespace cuszp2::service
