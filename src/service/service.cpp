#include "service/service.hpp"

#include "core/format.hpp"
#include "telemetry/trace.hpp"

namespace cuszp2::service {

namespace {

f64 microsBetween(std::chrono::steady_clock::time_point from,
                  std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<f64, std::micro>(to - from).count();
}

}  // namespace

CompressionService::CompressionService(ServiceConfig config)
    : config_(std::move(config)) {
  require(config_.workers > 0, "ServiceConfig: workers must be positive");
  require(config_.maxQueueDepth > 0,
          "ServiceConfig: maxQueueDepth must be positive");
  require(config_.maxBatchJobs > 0,
          "ServiceConfig: maxBatchJobs must be positive");
  require(config_.maxBatchBytes > 0,
          "ServiceConfig: maxBatchBytes must be positive");

  devices_ = config_.devices.empty()
                 ? gpusim::homogeneousFleet(gpusim::a100_40gb(),
                                            config_.workers)
                 : config_.devices;
  ledger_ = std::make_shared<detail::Ledger>();

  telemetry::MetricsRegistry& reg = telemetry::registry();
  instruments_ = Instruments{
      &reg.counter("service.submitted"),
      &reg.counter("service.accepted"),
      &reg.counter("service.completed"),
      &reg.counter("service.failed"),
      &reg.counter("service.abandoned"),
      &reg.counter("service.rejected.queue_full"),
      &reg.counter("service.rejected.quota"),
      &reg.counter("service.rejected.shutdown"),
      &reg.counter("service.batches"),
      &reg.counter("service.jobs_dispatched"),
      &reg.histogram("service.wait_us"),
      &reg.histogram("service.service_us"),
      &reg.histogram("service.batch_jobs"),
  };
  ledger_->depthGauge = &reg.gauge("service.queue_depth");

  paused_ = config_.startPaused;
  workers_.reserve(config_.workers);
  for (u32 i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this, i] { workerLoop(i); });
  }
}

CompressionService::~CompressionService() {
  shutdownImpl(std::nullopt);
}

SubmitResult CompressionService::reject(RejectReason reason,
                                        std::string detail,
                                        const std::string& tenant) {
  switch (reason) {
    case RejectReason::QueueFull:
      instruments_.rejectedQueueFull->add(1);
      statRejectedQueueFull_.fetch_add(1, std::memory_order_relaxed);
      break;
    case RejectReason::QuotaExceeded:
      instruments_.rejectedQuota->add(1);
      statRejectedQuota_.fetch_add(1, std::memory_order_relaxed);
      break;
    case RejectReason::ShuttingDown:
      instruments_.rejectedShutdown->add(1);
      statRejectedShutdown_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  telemetry::MetricsRegistry& reg = telemetry::registry();
  if (reg.enabled()) {
    reg.counter("service.tenant." + tenant + ".rejected").add(1);
  }
  SubmitResult out;
  out.reason = reason;
  out.detail = std::move(detail);
  return out;
}

SubmitResult CompressionService::submit(const std::string& tenant,
                                        JobKind kind, Precision precision,
                                        std::vector<std::byte> input,
                                        const core::Config& config,
                                        u8 priority) {
  require(!tenant.empty(), "CompressionService::submit: empty tenant id");
  config.validate();
  instruments_.submitted->add(1);
  statSubmitted_.fetch_add(1, std::memory_order_relaxed);

  if (!accepting_.load(std::memory_order_acquire)) {
    return reject(RejectReason::ShuttingDown, "service is shutting down",
                  tenant);
  }

  // Admission: reserve a queue slot and the tenant's bytes, or shed load.
  {
    std::lock_guard<std::mutex> lock(ledger_->mutex);
    if (ledger_->depth >= config_.maxQueueDepth) {
      return reject(RejectReason::QueueFull,
                    "queue depth at configured maximum (" +
                        std::to_string(config_.maxQueueDepth) + ")",
                    tenant);
    }
    if (config_.tenantQuotaBytes > 0) {
      u64 outstanding = 0;
      auto it = ledger_->tenantBytes.find(tenant);
      if (it != ledger_->tenantBytes.end()) outstanding = it->second;
      if (outstanding + input.size() > config_.tenantQuotaBytes) {
        return reject(
            RejectReason::QuotaExceeded,
            "tenant '" + tenant + "' outstanding bytes " +
                std::to_string(outstanding + input.size()) +
                " would exceed quota " +
                std::to_string(config_.tenantQuotaBytes),
            tenant);
      }
    }
    ledger_->depth += 1;
    ledger_->tenantBytes[tenant] += input.size();
    if (ledger_->depthGauge != nullptr) {
      ledger_->depthGauge->set(static_cast<f64>(ledger_->depth));
    }
  }

  auto job = std::make_shared<detail::Job>();
  job->tenant = tenant;
  job->kind = kind;
  job->precision = precision;
  job->priority = priority;
  job->config = config;
  job->input = std::move(input);
  job->submitted = std::chrono::steady_clock::now();
  job->ledger = ledger_;

  bool lostToShutdown = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!accepting_.load(std::memory_order_relaxed)) {
      lostToShutdown = true;
    } else {
      job->id = nextJobId_++;
      lanes_.push(job);
    }
  }
  if (lostToShutdown) {
    ledger_->release(tenant, job->input.size());
    return reject(RejectReason::ShuttingDown, "service is shutting down",
                  tenant);
  }
  workCv_.notify_one();

  instruments_.accepted->add(1);
  statAccepted_.fetch_add(1, std::memory_order_relaxed);
  SubmitResult out;
  out.ticket = Ticket(std::move(job));
  return out;
}

void CompressionService::pause() {
  std::lock_guard<std::mutex> lock(mutex_);
  paused_ = true;
}

void CompressionService::resume() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    paused_ = false;
  }
  workCv_.notify_all();
}

bool CompressionService::shutdown() {
  return shutdownImpl(std::nullopt);
}

bool CompressionService::shutdown(std::chrono::milliseconds drainDeadline) {
  return shutdownImpl(drainDeadline);
}

bool CompressionService::shutdownImpl(
    std::optional<std::chrono::milliseconds> deadline) {
  std::lock_guard<std::mutex> shutdownLock(shutdownMutex_);
  if (shutdownDone_) return drained_;

  {
    std::lock_guard<std::mutex> lock(mutex_);
    accepting_.store(false, std::memory_order_release);
    paused_ = false;  // a paused service must still drain accepted work
  }
  workCv_.notify_all();

  bool drained = true;
  {
    std::unique_lock<std::mutex> lock(ledger_->mutex);
    auto idle = [&] { return ledger_->depth == 0; };
    if (deadline.has_value()) {
      drained = ledger_->cv.wait_for(lock, *deadline, idle);
    } else {
      ledger_->cv.wait(lock, idle);
    }
  }

  if (!drained) {
    // Deadline expired: still-queued jobs complete as failures instead of
    // hanging their tickets; jobs already on a worker run to completion.
    std::vector<std::shared_ptr<detail::Job>> abandoned;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      abandoned = lanes_.drain();
    }
    for (std::shared_ptr<detail::Job>& job : abandoned) {
      JobResult r;
      r.error = "abandoned: shutdown deadline expired before dispatch";
      r.tenant = job->tenant;
      r.kind = job->kind;
      r.jobId = job->id;
      finishJob(*job, std::move(r), /*abandoned=*/true);
    }
    std::unique_lock<std::mutex> lock(ledger_->mutex);
    ledger_->cv.wait(lock, [&] { return ledger_->depth == 0; });
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  workCv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }

  shutdownDone_ = true;
  drained_ = drained;
  return drained;
}

ServiceStats CompressionService::stats() const {
  ServiceStats s;
  s.submitted = statSubmitted_.load(std::memory_order_relaxed);
  s.accepted = statAccepted_.load(std::memory_order_relaxed);
  s.rejectedQueueFull =
      statRejectedQueueFull_.load(std::memory_order_relaxed);
  s.rejectedQuota = statRejectedQuota_.load(std::memory_order_relaxed);
  s.rejectedShutdown =
      statRejectedShutdown_.load(std::memory_order_relaxed);
  s.completed = statCompleted_.load(std::memory_order_relaxed);
  s.failed = statFailed_.load(std::memory_order_relaxed);
  s.abandoned = statAbandoned_.load(std::memory_order_relaxed);
  s.dispatched = statDispatched_.load(std::memory_order_relaxed);
  s.batches = statBatches_.load(std::memory_order_relaxed);
  s.queueDepth = queueDepth();
  return s;
}

usize CompressionService::queueDepth() const {
  std::lock_guard<std::mutex> lock(ledger_->mutex);
  return ledger_->depth;
}

void CompressionService::workerLoop(u32 worker) {
  // Each worker owns one warm stream pinned to its device; reconfigure()
  // per batch re-targets the codec without dropping the scratch arena.
  core::CompressorStream stream(core::Config{},
                                devices_[worker % devices_.size()]);
  for (;;) {
    std::vector<std::shared_ptr<detail::Job>> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      workCv_.wait(lock, [&] {
        return stopping_ || (!paused_ && lanes_.entries() > 0);
      });
      if (stopping_) return;
      std::shared_ptr<detail::Job> head = lanes_.pop();
      if (head == nullptr) continue;  // only tombstones were queued
      batch.push_back(std::move(head));
      if (config_.maxBatchJobs > 1 && batch[0]->kind == JobKind::Compress) {
        lanes_.popBatch(*batch[0], batch, config_.maxBatchJobs - 1,
                        config_.maxBatchBytes);
      }
      for (std::shared_ptr<detail::Job>& job : batch) {
        job->dispatchSeq = ++dispatchSeq_;
      }
    }
    execute(batch, stream, worker);
  }
}

void CompressionService::execute(
    std::vector<std::shared_ptr<detail::Job>>& batch,
    core::CompressorStream& stream, u32 worker) {
  const auto dispatched = std::chrono::steady_clock::now();
  statDispatched_.fetch_add(batch.size(), std::memory_order_relaxed);
  statBatches_.fetch_add(1, std::memory_order_relaxed);
  instruments_.jobsDispatched->add(batch.size());
  instruments_.batches->add(1);
  instruments_.batchJobs->record(batch.size());

  std::vector<JobResult> results(batch.size());
  std::string failure;
  try {
    stream.reconfigure(batch[0]->config);
    if (batch[0]->kind == JobKind::Compress) {
      if (batch[0]->precision == Precision::F32) {
        runCompress<f32>(batch, stream, results);
      } else {
        runCompress<f64>(batch, stream, results);
      }
    } else {
      runDecompress(*batch[0], stream, results[0]);
    }
  } catch (const std::exception& e) {
    failure = e.what();
    if (failure.empty()) failure = "unknown codec error";
  }

  const auto finishedAt = std::chrono::steady_clock::now();
  for (usize i = 0; i < batch.size(); ++i) {
    detail::Job& job = *batch[i];
    JobResult& r = results[i];
    if (!failure.empty()) {
      r = JobResult{};
      r.error = failure;
    }
    r.tenant = job.tenant;
    r.kind = job.kind;
    r.jobId = job.id;
    r.dispatchSeq = job.dispatchSeq;
    r.batchJobs = static_cast<u32>(batch.size());
    r.worker = worker;
    r.device = stream.device().name;
    r.waitUs = microsBetween(job.submitted, dispatched);
    r.serviceUs = microsBetween(dispatched, finishedAt);
    finishJob(job, std::move(r), /*abandoned=*/false);
  }
}

template <FloatingPoint T>
void CompressionService::runCompress(
    std::vector<std::shared_ptr<detail::Job>>& batch,
    core::CompressorStream& stream, std::vector<JobResult>& results) {
  auto fieldOf = [](const detail::Job& job) {
    return std::span<const T>(
        reinterpret_cast<const T*>(job.input.data()),
        job.input.size() / sizeof(T));
  };
  if (batch.size() == 1) {
    results[0].compressed = stream.compress<T>(fieldOf(*batch[0]));
    results[0].ok = true;
    return;
  }
  std::vector<std::span<const T>> fields;
  fields.reserve(batch.size());
  for (const std::shared_ptr<detail::Job>& job : batch) {
    fields.push_back(fieldOf(*job));
  }
  std::vector<core::Compressed> outs = stream.compressBatch<T>(fields);
  for (usize i = 0; i < batch.size(); ++i) {
    results[i].compressed = std::move(outs[i]);
    results[i].ok = true;
  }
}

template void CompressionService::runCompress<f32>(
    std::vector<std::shared_ptr<detail::Job>>&, core::CompressorStream&,
    std::vector<JobResult>&);
template void CompressionService::runCompress<f64>(
    std::vector<std::shared_ptr<detail::Job>>&, core::CompressorStream&,
    std::vector<JobResult>&);

void CompressionService::runDecompress(detail::Job& job,
                                       core::CompressorStream& stream,
                                       JobResult& result) {
  const core::StreamHeader header = core::StreamHeader::parse(job.input);
  if (header.precision == Precision::F32) {
    core::Decompressed<f32> out = stream.decompress<f32>(job.input);
    result.decodedElements = out.data.size();
    result.decompressed.resize(out.data.size() * sizeof(f32));
    if (!out.data.empty()) {
      std::memcpy(result.decompressed.data(), out.data.data(),
                  result.decompressed.size());
    }
  } else {
    core::Decompressed<f64> out = stream.decompress<f64>(job.input);
    result.decodedElements = out.data.size();
    result.decompressed.resize(out.data.size() * sizeof(f64));
    if (!out.data.empty()) {
      std::memcpy(result.decompressed.data(), out.data.data(),
                  result.decompressed.size());
    }
  }
  result.ok = true;
}

void CompressionService::finishJob(detail::Job& job, JobResult result,
                                   bool abandoned) {
  const u64 bytesIn = job.input.size();
  const u64 bytesOut = result.kind == JobKind::Compress
                           ? result.compressed.stream.size()
                           : result.decompressed.size();
  if (abandoned) {
    instruments_.abandoned->add(1);
    statAbandoned_.fetch_add(1, std::memory_order_relaxed);
  } else if (result.ok) {
    instruments_.completed->add(1);
    statCompleted_.fetch_add(1, std::memory_order_relaxed);
  } else {
    instruments_.failed->add(1);
    statFailed_.fetch_add(1, std::memory_order_relaxed);
  }
  if (!abandoned) {
    instruments_.waitUs->record(static_cast<u64>(result.waitUs));
    instruments_.serviceUs->record(static_cast<u64>(result.serviceUs));
  }

  telemetry::MetricsRegistry& reg = telemetry::registry();
  if (reg.enabled()) {
    const std::string prefix = "service.tenant." + job.tenant;
    reg.counter(prefix + ".jobs").add(1);
    reg.counter(prefix + ".bytes_in").add(bytesIn);
    reg.counter(prefix + ".bytes_out").add(bytesOut);
  }
  if (telemetry::TraceSession* trace = telemetry::activeTrace()) {
    trace->complete(
        "service.job", result.serviceUs,
        {telemetry::TraceArg::str("tenant", job.tenant),
         telemetry::TraceArg::str("kind", toString(job.kind)),
         telemetry::TraceArg::num("job_id", static_cast<f64>(job.id)),
         telemetry::TraceArg::num("batch_jobs", result.batchJobs),
         telemetry::TraceArg::num("wait_us", result.waitUs),
         telemetry::TraceArg::num("ok", result.ok ? 1.0 : 0.0)});
  }

  job.phase.store(detail::Phase::Done, std::memory_order_release);
  const std::string tenant = job.tenant;
  job.finish(std::move(result));
  ledger_->release(tenant, bytesIn);
}

}  // namespace cuszp2::service
